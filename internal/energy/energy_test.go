package energy

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/wpu"
)

func TestBreakdownTotals(t *testing.T) {
	b := Breakdown{Fetch: 1, ALU: 2, RegFile: 3, Bus: 4, L1: 5, L2: 6, Xbar: 7, DRAM: 8, Clock: 9, Leakage: 10}
	if b.Total() != 55 {
		t.Fatalf("Total = %g", b.Total())
	}
	if b.TotalmJ() != 55/1e6 {
		t.Fatalf("TotalmJ = %g", b.TotalmJ())
	}
	if b.DynamicmJ() != 36/1e6 {
		t.Fatalf("DynamicmJ = %g", b.DynamicmJ())
	}
	if b.LeakagemJ() != 19/1e6 {
		t.Fatalf("LeakagemJ = %g", b.LeakagemJ())
	}
}

func TestEstimateRawComponents(t *testing.T) {
	st := wpu.Stats{Issued: 100, ThreadOps: 1000, FloatOps: 200}
	l1 := mem.L1Stats{Accesses: 50}
	b := EstimateRaw(st, l1, 10, 20, 2, 1000, 4, 32, 4)
	if b.Fetch != FetchDecodeNJ*100 {
		t.Fatalf("Fetch = %g", b.Fetch)
	}
	if b.ALU != IntOpNJ*1000+FloatOpNJ*200 {
		t.Fatalf("ALU = %g", b.ALU)
	}
	if b.L1 != L1AccessNJ*50 || b.L2 != L2AccessNJ*10 || b.Xbar != XbarNJ*20 {
		t.Fatalf("cache energies wrong: %+v", b)
	}
	if b.DRAM != DRAMNJ*2 {
		t.Fatalf("DRAM = %g", b.DRAM)
	}
	if b.Clock != ClockPerWPUNJ*4*1000 {
		t.Fatalf("Clock = %g", b.Clock)
	}
	wantLeak := (LeakPerWPUNJ*4 + LeakL2NJ) * 1000
	if b.Leakage != wantLeak {
		t.Fatalf("Leakage = %g, want %g", b.Leakage, wantLeak)
	}
}

func TestLeakageScalesWithCacheSizes(t *testing.T) {
	var st wpu.Stats
	var l1 mem.L1Stats
	small := EstimateRaw(st, l1, 0, 0, 0, 1000, 4, 8, 4)
	base := EstimateRaw(st, l1, 0, 0, 0, 1000, 4, 32, 4)
	big := EstimateRaw(st, l1, 0, 0, 0, 1000, 4, 128, 4)
	if !(small.Leakage < base.Leakage && base.Leakage < big.Leakage) {
		t.Fatalf("L1 leakage not monotonic: %g %g %g", small.Leakage, base.Leakage, big.Leakage)
	}
	bigL2 := EstimateRaw(st, l1, 0, 0, 0, 1000, 4, 32, 8)
	if bigL2.Leakage <= base.Leakage {
		t.Fatal("L2 leakage not monotonic in size")
	}
}

func TestLeakageFloors(t *testing.T) {
	var st wpu.Stats
	var l1 mem.L1Stats
	// Tiny caches must not produce zero or negative leakage.
	b := EstimateRaw(st, l1, 0, 0, 0, 1000, 1, 1, 0)
	if b.Leakage <= 0 {
		t.Fatalf("Leakage = %g, want > 0", b.Leakage)
	}
}

// Property: energy is monotonic in every counter.
func TestPropertyMonotonicInActivity(t *testing.T) {
	f := func(issued, ops uint32) bool {
		a := EstimateRaw(wpu.Stats{Issued: uint64(issued), ThreadOps: uint64(ops)},
			mem.L1Stats{}, 0, 0, 0, 1000, 4, 32, 4)
		b := EstimateRaw(wpu.Stats{Issued: uint64(issued) + 1, ThreadOps: uint64(ops) + 1},
			mem.L1Stats{}, 0, 0, 0, 1000, 4, 32, 4)
		return b.Total() > a.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: leakage scales linearly with cycles.
func TestPropertyLeakageLinearInTime(t *testing.T) {
	f := func(cyc uint16) bool {
		c := uint64(cyc) + 1
		a := EstimateRaw(wpu.Stats{}, mem.L1Stats{}, 0, 0, 0, c, 4, 32, 4)
		b := EstimateRaw(wpu.Stats{}, mem.L1Stats{}, 0, 0, 0, 2*c, 4, 32, 4)
		return almostEq(b.Leakage, 2*a.Leakage) && almostEq(b.Clock, 2*a.Clock)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func almostEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9*(1+a+b)
}

// End-to-end: Estimate over a real (tiny) simulation must attribute energy
// to every active component.
func TestEstimateEndToEnd(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.WPUs = 1
	cfg.WPU.Warps = 1
	cfg.WPU.Width = 4
	sys, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := program.NewBuilder("e2e")
	b.Shli(8, 1, 3)
	b.Add(8, 8, 4)
	b.Ld(9, 8, 0)
	b.Fadd(10, 9, 9)
	b.St(10, 8, 0)
	b.Halt()
	p := b.MustBuild()
	base := sys.Memory().AllocWords(4)
	threads := sim.Threads(4, func(tid int, r *isa.RegFile) {
		r.Set(4, int64(base))
	})
	if _, err := sys.RunKernel(p, threads); err != nil {
		t.Fatal(err)
	}
	e := Estimate(sys)
	for name, v := range map[string]float64{
		"fetch": e.Fetch, "alu": e.ALU, "regfile": e.RegFile,
		"l1": e.L1, "l2": e.L2, "xbar": e.Xbar, "dram": e.DRAM,
		"clock": e.Clock, "leakage": e.Leakage,
	} {
		if v <= 0 {
			t.Errorf("component %s has zero energy", name)
		}
	}
	if e.TotalmJ() <= 0 {
		t.Fatal("total energy zero")
	}
}
