// Package energy implements the paper's §3.3 energy model in the style of
// Cacti 4.2 + Wattch at 65 nm: per-event dynamic energies for the pipeline
// (fetch/decode, integer and floating-point ALUs, register files, result
// bus), the caches, the crossbar and DRAM, plus per-cycle clock and leakage
// power. At 65 nm leakage is a significant, runtime-proportional component
// — which is exactly why the paper finds DWS's ≈1.7× speedup translating
// into ≈30 % energy savings (§6.5).
//
// Coefficients are plausible 65 nm values; the paper's conclusions depend
// on their relative magnitudes (DRAM ≫ L2 ≫ L1 ≫ ALU, leakage ∝ time),
// which are preserved.
package energy

import (
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/wpu"
)

// Per-event dynamic energies, in nanojoules.
const (
	FetchDecodeNJ = 0.040 // I-cache read + decode per issued instruction
	IntOpNJ       = 0.020 // integer ALU per thread operation
	FloatOpNJ     = 0.060 // FPU surcharge per floating thread operation
	RegFileNJ     = 0.015 // 2 reads + 1 write per thread operation
	ResultBusNJ   = 0.010 // per issued instruction
	L1AccessNJ    = 0.060 // per D-cache line access (32 KB, 8-way)
	L2AccessNJ    = 0.400 // per shared-cache access (4 MB, 16-way)
	XbarNJ        = 0.150 // per crossbar transfer (Pullini et al. [24])
	DRAMNJ        = 220.0 // per memory access (Hur & Lin [13], as in §3.3)

	// Per-cycle power, in nanojoules per cycle (= watts at 1 GHz).
	ClockPerWPUNJ   = 0.150 // clock tree per active WPU
	LeakPerWPUNJ    = 0.200 // WPU pipeline + L1 leakage
	LeakL2NJ        = 1.000 // 4 MB L2 leakage
	LeakPerWPUKBNJ  = 0.004 // additional leakage per KB of private cache
	LeakL2PerMBNJ   = 0.250 // scaling for non-default L2 sizes
	defaultL1KB     = 32
	defaultL2MB     = 4
	leakL2BaselineX = 0 // (kept for doc symmetry; L2 leakage scales purely by size)
)

// Breakdown is the estimated energy by component, in nanojoules.
type Breakdown struct {
	Fetch   float64
	ALU     float64
	RegFile float64
	Bus     float64
	L1      float64
	L2      float64
	Xbar    float64
	DRAM    float64
	Clock   float64
	Leakage float64
}

// Total returns the summed energy in nanojoules.
func (b Breakdown) Total() float64 {
	return b.Fetch + b.ALU + b.RegFile + b.Bus + b.L1 + b.L2 + b.Xbar + b.DRAM + b.Clock + b.Leakage
}

// TotalmJ returns the summed energy in millijoules.
func (b Breakdown) TotalmJ() float64 { return b.Total() / 1e6 }

// DynamicmJ returns the event-driven (non-leakage, non-clock) energy in mJ.
func (b Breakdown) DynamicmJ() float64 {
	return (b.Total() - b.Clock - b.Leakage) / 1e6
}

// LeakagemJ returns clock + leakage energy in mJ (the runtime-proportional
// component DWS shrinks).
func (b Breakdown) LeakagemJ() float64 { return (b.Clock + b.Leakage) / 1e6 }

// EstimateRaw computes the breakdown from raw counters.
func EstimateRaw(st wpu.Stats, l1 mem.L1Stats, l2Requests, xbarTransfers, dramAccesses, cycles uint64, numWPUs, l1KB, l2MB int) Breakdown {
	var b Breakdown
	b.Fetch = FetchDecodeNJ * float64(st.Issued)
	b.ALU = IntOpNJ*float64(st.ThreadOps) + FloatOpNJ*float64(st.FloatOps)
	b.RegFile = RegFileNJ * float64(st.ThreadOps)
	b.Bus = ResultBusNJ * float64(st.Issued)
	b.L1 = L1AccessNJ * float64(l1.Accesses)
	b.L2 = L2AccessNJ * float64(l2Requests)
	b.Xbar = XbarNJ * float64(xbarTransfers)
	b.DRAM = DRAMNJ * float64(dramAccesses)
	b.Clock = ClockPerWPUNJ * float64(numWPUs) * float64(cycles)
	perWPULeak := LeakPerWPUNJ + LeakPerWPUKBNJ*float64(l1KB-defaultL1KB)
	if perWPULeak < 0.05 {
		perWPULeak = 0.05
	}
	l2Leak := LeakL2NJ + LeakL2PerMBNJ*float64(l2MB-defaultL2MB)
	if l2Leak < 0.1 {
		l2Leak = 0.1
	}
	b.Leakage = (perWPULeak*float64(numWPUs) + l2Leak) * float64(cycles)
	return b
}

// Estimate computes the breakdown for a finished system run.
func Estimate(sys *sim.System) Breakdown {
	st := sys.TotalStats()
	l1 := sys.L1Stats()
	return EstimateRaw(
		st,
		l1,
		sys.Hier.L2.Stats.Requests,
		sys.Hier.Xbar.Transfers(),
		sys.Hier.DRAM.Accesses,
		sys.Cycles(),
		sys.Cfg.WPUs,
		sys.Cfg.Hier.L1.SizeBytes/1024,
		sys.Cfg.Hier.L2.SizeBytes/(1024*1024),
	)
}
