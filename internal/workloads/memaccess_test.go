package workloads

// Trace-backed soundness checks for the static memory-access analysis
// (program.MemAccessInfo): replay the whole benchmark suite with tracing
// on and assert that no access ever exceeds its static worst-case
// transaction bound (the WPU emits obs.EvMemBoundExceeded and counts
// Stats.MemBoundExceeded when one does), and that the single-transaction
// hint (isa.DFMemHint) is behaviour-neutral. The per-class dynamic
// transaction averages logged here are the precision table in
// EXPERIMENTS.md.

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/wpu"
)

func TestMemAccessConcordance(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// Conv exercises lockstep warps (full-width accesses, the worst case
	// for the transaction bounds); ReviveSplit exercises narrow warp-split
	// masks, run-ahead and revival — subsets of the lanes the static bound
	// was computed over, which the bound must dominate too.
	for _, scheme := range []wpu.Scheme{wpu.SchemeConv, wpu.SchemeRevive} {
		var total wpu.Stats
		kernels := make(map[string]bool)
		for _, spec := range All() {
			trace := obs.New(0)
			cfg := sim.DefaultConfig()
			cfg.WPU = scheme.Apply(cfg.WPU)
			cfg.Trace = trace
			sys, err := sim.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			inst, err := spec.Build(sys)
			if err != nil {
				t.Fatalf("%s: %v", spec.Name, err)
			}
			for i, st := range inst.Steps() {
				kernels[st.Prog.Name] = true
				if _, err := sys.RunKernel(st.Prog, st.Threads); err != nil {
					t.Fatalf("%s step %d: %v", spec.Name, i, err)
				}
			}
			if err := inst.Verify(); err != nil {
				t.Fatal(err)
			}
			for _, ev := range trace.Events {
				if ev.Kind == obs.EvMemBoundExceeded {
					t.Errorf("%s: access @pc %d observed %d line transactions, above its static bound",
						spec.Name, ev.PC, ev.Mask2)
				}
			}
			st := sys.TotalStats()
			if st.MemBoundExceeded != 0 {
				t.Errorf("%s under %s: %d accesses exceeded their static transaction bound",
					spec.Name, scheme, st.MemBoundExceeded)
			}
			total.Add(&st)
		}
		if len(kernels) != 13 {
			t.Fatalf("suite has %d distinct kernels, want 13", len(kernels))
		}

		// The precision table: per static class, how many line transactions
		// one SIMD access actually issued on average, against the static
		// worst-case bound the class promises (uniform: 1; gather: Width).
		var sum uint64
		for c := 0; c < program.NumAccessClasses; c++ {
			sum += total.MemClassAccesses[c]
		}
		if sum != total.MemAccesses {
			t.Errorf("per-class access counts sum to %d, want MemAccesses = %d", sum, total.MemAccesses)
		}
		for c := 0; c < program.NumAccessClasses; c++ {
			n, tx := total.MemClassAccesses[c], total.MemClassTransactions[c]
			if n == 0 {
				continue
			}
			if program.AccessClass(c) == program.AccessUniform && tx != n {
				t.Errorf("uniform accesses issued %d transactions over %d accesses, want exactly 1 each", tx, n)
			}
			t.Logf("%s %-10s %9d accesses, %10d transactions, %.2f tx/access",
				scheme, program.AccessClass(c), n, tx, float64(tx)/float64(n))
		}
		t.Logf("%s: %d accesses total, %d probe skips under the uniform hint", scheme, total.MemAccesses, total.MemDivHintSkips)
	}
}

// TestMemHintEquivalence pins the hint-soundness argument dynamically: the
// static single-transaction hint prunes the subdivide-on-miss probe, and
// by construction that probe could never have fired — so cycle counts and
// the architectural memory image must be bit-identical with hints on and
// off, under the scheme where the probe matters most.
func TestMemHintEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			var cycles [2]uint64
			var hash [2]uint64
			var skips [2]uint64
			for i, disable := range []bool{false, true} {
				cfg := sim.DefaultConfig()
				cfg.WPU = wpu.SchemeRevive.Apply(cfg.WPU)
				cfg.WPU.DisableMemHints = disable
				sys, err := sim.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				inst, err := spec.Build(sys)
				if err != nil {
					t.Fatal(err)
				}
				if err := inst.Run(sys); err != nil {
					t.Fatal(err)
				}
				if err := inst.Verify(); err != nil {
					t.Fatal(err)
				}
				cycles[i] = sys.Cycles()
				hash[i] = sys.Memory().Hash()
				skips[i] = sys.TotalStats().MemDivHintSkips
			}
			if cycles[0] != cycles[1] {
				t.Errorf("cycles differ with hints on (%d) vs off (%d)", cycles[0], cycles[1])
			}
			if hash[0] != hash[1] {
				t.Errorf("memory image differs with hints on (%#x) vs off (%#x)", hash[0], hash[1])
			}
			if skips[1] != 0 {
				t.Errorf("DisableMemHints still skipped %d probes", skips[1])
			}
		})
	}
}

// The per-kernel memory-access report is part of the verification surface
// (cmd/dwsverify -memaccess and make ci); pin it with a golden file so
// classification or bound regressions show up as a reviewable diff.
func TestMemAccessReportGolden(t *testing.T) {
	progs := kernelPrograms(t)
	names := make([]string, 0, len(progs))
	for name := range progs {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		sb.WriteString(progs[name].MemAccessReport())
		sb.WriteString("\n")
	}
	got := sb.String()

	path := filepath.Join("testdata", "memaccess_report.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/workloads -run MemAccessReportGolden -update`)", err)
	}
	if got != string(want) {
		t.Errorf("memory-access report drifted from golden; rerun with -update if intended.\ndiff:\n%s",
			firstDiff(got, string(want)))
	}
}
