package workloads

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/sim"
)

// Short: winning-path search for chess (dynamic programming over rows,
// Table 2). Paper input: 6 steps × 150,000 choices; scaled: 5 × 16,384
// (two 128 KB rows ping-ponging — together 64 KB per WPU quarter, twice an
// L1, so the row streams continuously). Each cell takes the minimum over
// its {left, centre, right} predecessors plus a position-dependent move
// cost; the min updates and boundary tests branch on data — the paper's
// highest divergent-branch rate (22 %) — and the row streaming produces
// hit/miss divergence at cache-line boundaries.
const (
	shortSteps   = 5
	shortChoices = 16384
	shortCostMod = 15 // cost = (j + 3k + s) & shortCostMod
)

// shortKernel ABI: R4=&prev, R5=&next, R6=choices, R7=step.
func shortKernel(choices, maxThreads int) *program.Program {
	b := program.NewBuilder("short")
	b.DeclareRegion(4, int64(choices))
	b.DeclareRegion(5, int64(choices))
	b.DeclareUniformRange(6, int64(choices), int64(choices))
	b.DeclareUniformRange(7, 0, shortSteps-1)
	b.DeclareThreads(maxThreads)
	b.Mov(8, 1) // j = tid
	b.Label("loop")
	b.Slt(9, 8, 6)
	b.Beqz(9, "done")
	b.Movi(10, 1<<40) // best

	emitCandidate := func(kReg isa.Reg, minLabel string) {
		// cand = prev[k] + ((j + 3k + step) & 15)
		b.Shli(13, kReg, 3)
		b.Add(14, 4, 13)
		b.Ld(15, 14, 0) // prev[k]
		b.Muli(16, kReg, 3)
		b.Add(16, 16, 8)
		b.Add(16, 16, 7)
		b.Andi(16, 16, shortCostMod)
		b.Add(16, 15, 16)
		b.Slt(17, 16, 10)
		b.Beqz(17, minLabel) // min update: data-dependent divergence
		b.Mov(10, 16)
		b.Label(minLabel)
	}

	// Candidate k = j-1 (skipped on the left boundary).
	b.Slti(11, 8, 1)
	b.Bnez(11, "skipL")
	b.Addi(12, 8, -1)
	emitCandidate(12, "minL")
	b.Label("skipL")

	// Candidate k = j (always available).
	emitCandidate(8, "minC")

	// Candidate k = j+1 (skipped on the right boundary).
	b.Addi(18, 6, -1)
	b.Slt(11, 8, 18)
	b.Beqz(11, "skipR")
	b.Addi(12, 8, 1)
	emitCandidate(12, "minR")
	b.Label("skipR")

	b.Shli(19, 8, 3)
	b.Add(20, 5, 19)
	b.St(10, 20, 0)
	b.Add(8, 8, 2)
	b.Jmp("loop")
	b.Label("done")
	b.Halt()
	return b.MustVerify()
}

func shortCost(step, j, k int) int64 {
	return int64((j + 3*k + step) & shortCostMod)
}

// buildShort prepares the Short benchmark at 16384·scale choices per row.
func buildShort(sys *sim.System, scale int) (*Instance, error) {
	m := sys.Memory()
	c := shortChoices * scale
	rowA := m.AllocWords(c)
	rowB := m.AllocWords(c)

	init := make([]int64, c)
	for j := range init {
		init[j] = int64((j*7919 + 13) % 97)
		m.Write(rowA+uint64(j)*8, init[j])
	}

	nt := threadsFor(sys, c)
	p := shortKernel(c, nt)
	var steps []Step
	src, dst := rowA, rowB
	for s := 0; s < shortSteps; s++ {
		sp, dp, step := src, dst, s
		steps = append(steps, launch(p, nt, func(tid int, r *isa.RegFile) {
			r.Set(4, int64(sp))
			r.Set(5, int64(dp))
			r.Set(6, int64(c))
			r.Set(7, int64(step))
		}))
		src, dst = dst, src
	}
	final := src

	verify := func() error {
		cur := append([]int64(nil), init...)
		next := make([]int64, c)
		for s := 0; s < shortSteps; s++ {
			for j := 0; j < c; j++ {
				best := int64(1) << 40
				for _, k := range []int{j - 1, j, j + 1} {
					if k < 0 || k >= c {
						continue
					}
					if v := cur[k] + shortCost(s, j, k); v < best {
						best = v
					}
				}
				next[j] = best
			}
			cur, next = next, cur
		}
		for j := 0; j < c; j++ {
			if got := m.Read(final + uint64(j)*8); got != cur[j] {
				return fmt.Errorf("short: out[%d] = %d, want %d", j, got, cur[j])
			}
		}
		return nil
	}
	return &Instance{name: "Short", steps: steps, verify: verify}, nil
}
