package workloads

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/sim"
)

// SVM: support-vector-machine kernel computation (MineBench, Table 2).
// Paper input: 100,000 vectors × 20 dimensions; scaled: 384 × 12 (36 KB of
// vectors — larger than one L1) with a 64-wide band of the gram matrix
// computed per row. Each thread strides over (i, offset) pairs, gathering
// two rows and applying a polynomial kernel when the dot product is
// positive and a reflected linear kernel otherwise — the sign test
// supplies the paper's ~4 % divergent branches; the strided row gathers
// and streamed result stores supply divergent memory accesses.
const (
	svmN    = 384
	svmD    = 12
	svmBand = 64
)

// svmKernel ABI: R4=&x, R5=&out, R6=N, R7=D, R8=N*Band, R9=Band.
func svmKernel(n, d, band, maxThreads int) *program.Program {
	b := program.NewBuilder("svm")
	b.DeclareRegion(4, int64(n*d))
	b.DeclareRegion(5, int64(n*band))
	b.DeclareUniformRange(6, int64(n), int64(n))
	b.DeclareUniformRange(7, int64(d), int64(d))
	b.DeclareUniformRange(8, int64(n*band), int64(n*band))
	b.DeclareUniformRange(9, int64(band), int64(band))
	b.DeclareThreads(maxThreads)
	b.Mov(10, 1) // pair = tid
	b.Label("loop")
	b.Slt(11, 10, 8)
	b.Beqz(11, "done")
	b.Div(12, 10, 9) // i
	b.Rem(13, 10, 9) // offset
	b.Add(14, 12, 13)
	b.Rem(14, 14, 6) // j = (i + offset) mod N
	b.Mul(15, 12, 7)
	b.Shli(15, 15, 3)
	b.Add(15, 15, 4) // &x[i][0]
	b.Mul(16, 14, 7)
	b.Shli(16, 16, 3)
	b.Add(16, 16, 4) // &x[j][0]
	b.Fmovi(17, 0)   // dot
	b.Movi(18, 0)    // d
	b.Label("dloop")
	b.Slt(19, 18, 7)
	b.Beqz(19, "ddone")
	b.Shli(20, 18, 3)
	b.Add(21, 15, 20)
	b.Ld(22, 21, 0)
	b.Add(23, 16, 20)
	b.Ld(24, 23, 0)
	b.Fmul(25, 22, 24)
	b.Fadd(17, 17, 25)
	b.Addi(18, 18, 1)
	b.Jmp("dloop")
	b.Label("ddone")
	b.Fmovi(26, 0)
	b.Fslt(27, 17, 26)
	b.Bnez(27, "neg") // sign test: data-dependent divergence
	b.Fmul(28, 17, 17)
	b.Jmp("store")
	b.Label("neg")
	b.Fneg(28, 17)
	b.Label("store")
	b.Shli(29, 10, 3)
	b.Add(30, 5, 29)
	b.St(28, 30, 0)
	b.Add(10, 10, 2)
	b.Jmp("loop")
	b.Label("done")
	b.Halt()
	return b.MustVerify()
}

// buildSVM prepares the SVM benchmark at 384·scale vectors.
func buildSVM(sys *sim.System, scale int) (*Instance, error) {
	m := sys.Memory()
	n, d, band := svmN*scale, svmD, svmBand
	x := m.AllocWords(n * d)
	out := m.AllocWords(n * band)

	vecs := make([]float64, n*d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			v := float64((i*29+j*13)%17)/17 - 0.45
			vecs[i*d+j] = v
			m.WriteF(x+uint64(i*d+j)*8, v)
		}
	}

	nt := threadsFor(sys, n*band)
	p := svmKernel(n, d, band, nt)
	step := launch(p, nt, func(tid int, r *isa.RegFile) {
		r.Set(4, int64(x))
		r.Set(5, int64(out))
		r.Set(6, int64(n))
		r.Set(7, int64(d))
		r.Set(8, int64(n*band))
		r.Set(9, int64(band))
	})

	verify := func() error {
		for i := 0; i < n; i++ {
			for b := 0; b < band; b++ {
				j := (i + b) % n
				dot := 0.0
				for k := 0; k < d; k++ {
					dot += vecs[i*d+k] * vecs[j*d+k]
				}
				want := dot * dot
				if dot < 0 {
					want = -dot
				}
				got := m.ReadF(out + uint64(i*band+b)*8)
				if !almostEqual(got, want) {
					return fmt.Errorf("svm: out[%d,%d] = %g, want %g", i, b, got, want)
				}
			}
		}
		return nil
	}
	return &Instance{name: "SVM", steps: []Step{step}, verify: verify}, nil
}
