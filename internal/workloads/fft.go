package workloads

import (
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/sim"
)

// FFT: radix-2 decimation-in-time fast Fourier transform (Splash2,
// Table 2). Paper input: 65,536 points; scaled: 2,048 complex points
// (re+im+twiddles ≈ 48 KB). A bit-reversal kernel runs first, then one
// butterfly kernel per stage; the power-of-two strides thrash cache sets
// and produce the paper's frequent memory divergence (misses every ~7
// instructions).
const fftN = 2048

// fftBitrevKernel ABI: R4=&srcRe, R5=&srcIm, R6=&dstRe, R7=&dstIm, R8=n,
// R9=log2(n).
func fftBitrevKernel(n, maxThreads int) *program.Program {
	b := program.NewBuilder("fft-bitrev")
	b.DeclareRegion(4, int64(n))
	b.DeclareRegion(5, int64(n))
	b.DeclareRegion(6, int64(n))
	b.DeclareRegion(7, int64(n))
	lg := 0
	for 1<<lg < n {
		lg++
	}
	b.DeclareUniformRange(8, int64(n), int64(n))
	b.DeclareUniformRange(9, int64(lg), int64(lg))
	b.DeclareThreads(maxThreads)
	b.Mov(10, 1) // i = tid
	b.Label("loop")
	b.Slt(11, 10, 8)
	b.Beqz(11, "done")
	b.Movi(12, 0) // rev
	b.Movi(13, 0) // bit
	b.Label("bitloop")
	b.Slt(14, 13, 9)
	b.Beqz(14, "bitdone")
	b.Shli(12, 12, 1)
	b.Shr(15, 10, 13)
	b.Andi(15, 15, 1)
	b.Or(12, 12, 15)
	b.Addi(13, 13, 1)
	b.Jmp("bitloop")
	b.Label("bitdone")
	b.Shli(16, 10, 3)
	b.Add(17, 4, 16)
	b.Ld(18, 17, 0)
	b.Add(19, 5, 16)
	b.Ld(20, 19, 0)
	b.Shli(21, 12, 3)
	b.Add(22, 6, 21)
	b.St(18, 22, 0)
	b.Add(23, 7, 21)
	b.St(20, 23, 0)
	b.Add(10, 10, 2)
	b.Jmp("loop")
	b.Label("done")
	b.Halt()
	return b.MustVerify()
}

// fftStageKernel ABI: R4=&re, R5=&im, R6=&twRe, R7=&twIm, R9=m (2^stage),
// R10=half (m/2), R11=twiddleStride (n/m), R12=numButterflies (n/2).
func fftStageKernel(n, maxThreads int) *program.Program {
	b := program.NewBuilder("fft-stage")
	b.DeclareRegion(4, int64(n))
	b.DeclareRegion(5, int64(n))
	b.DeclareRegion(6, int64(n/2))
	b.DeclareRegion(7, int64(n/2))
	// Stage s launches m = 2^s (s = 1..log2 n), half = m/2, stride = n/m,
	// and a fixed n/2 butterflies; the ranges cover every stage.
	b.DeclareUniformRange(9, 2, int64(n))
	b.DeclareUniformRange(10, 1, int64(n/2))
	b.DeclareUniformRange(11, 1, int64(n/2))
	b.DeclareUniformRange(12, int64(n/2), int64(n/2))
	b.DeclareThreads(maxThreads)
	b.Mov(13, 1) // b = tid
	b.Label("loop")
	b.Slt(14, 13, 12)
	b.Beqz(14, "done")
	b.Div(15, 13, 10) // group
	b.Rem(16, 13, 10) // pos
	b.Mul(17, 15, 9)
	b.Add(18, 17, 16) // idx1
	b.Add(19, 18, 10) // idx2
	b.Mul(20, 16, 11) // twiddle index
	b.Shli(21, 20, 3)
	b.Add(22, 6, 21)
	b.Ld(23, 22, 0) // wr
	b.Add(22, 7, 21)
	b.Ld(24, 22, 0) // wi
	b.Shli(25, 19, 3)
	b.Add(26, 4, 25)
	b.Ld(27, 26, 0) // re2
	b.Add(28, 5, 25)
	b.Ld(29, 28, 0) // im2
	// t = w * x2: tr = wr*re2 - wi*im2 ; ti = wr*im2 + wi*re2
	b.Fmul(30, 23, 27)
	b.Fmul(31, 24, 29)
	b.Fsub(30, 30, 31) // tr
	b.Fmul(31, 24, 27)
	b.Fmul(23, 23, 29) // wr reused: wr*im2
	b.Fadd(31, 31, 23) // ti
	b.Shli(25, 18, 3)
	b.Add(26, 4, 25)
	b.Ld(27, 26, 0) // re1
	b.Add(28, 5, 25)
	b.Ld(29, 28, 0) // im1
	// x1' = x1 + t ; x2' = x1 - t
	b.Fadd(23, 27, 30)
	b.St(23, 26, 0)
	b.Fadd(24, 29, 31)
	b.St(24, 28, 0)
	b.Fsub(23, 27, 30)
	b.Fsub(24, 29, 31)
	b.Shli(25, 19, 3)
	b.Add(26, 4, 25)
	b.St(23, 26, 0)
	b.Add(28, 5, 25)
	b.St(24, 28, 0)
	b.Add(13, 13, 2)
	b.Jmp("loop")
	b.Label("done")
	b.Halt()
	return b.MustVerify()
}

// buildFFT prepares the FFT benchmark at n = 2048·scale points.
func buildFFT(sys *sim.System, scale int) (*Instance, error) {
	m := sys.Memory()
	n := fftN * scale
	logN := 0
	for 1<<logN < n {
		logN++
	}
	srcRe := m.AllocWords(n)
	srcIm := m.AllocWords(n)
	re := m.AllocWords(n)
	im := m.AllocWords(n)
	twRe := m.AllocWords(n / 2)
	twIm := m.AllocWords(n / 2)

	inRe := make([]float64, n)
	inIm := make([]float64, n)
	for i := 0; i < n; i++ {
		inRe[i] = math.Sin(2*math.Pi*float64(i)/64) + 0.25*float64((i*7)%13)/13
		inIm[i] = 0
		m.WriteF(srcRe+uint64(i)*8, inRe[i])
		m.WriteF(srcIm+uint64(i)*8, inIm[i])
	}
	wr := make([]float64, n/2)
	wi := make([]float64, n/2)
	for j := 0; j < n/2; j++ {
		ang := -2 * math.Pi * float64(j) / float64(n)
		wr[j] = math.Cos(ang)
		wi[j] = math.Sin(ang)
		m.WriteF(twRe+uint64(j)*8, wr[j])
		m.WriteF(twIm+uint64(j)*8, wi[j])
	}

	var steps []Step
	steps = append(steps, launch(fftBitrevKernel(n, threadsFor(sys, n)), threadsFor(sys, n), func(tid int, r *isa.RegFile) {
		r.Set(4, int64(srcRe))
		r.Set(5, int64(srcIm))
		r.Set(6, int64(re))
		r.Set(7, int64(im))
		r.Set(8, int64(n))
		r.Set(9, int64(logN))
	}))
	stage := fftStageKernel(n, threadsFor(sys, n/2))
	for s := 1; s <= logN; s++ {
		mm := 1 << s
		steps = append(steps, launch(stage, threadsFor(sys, n/2), func(tid int, r *isa.RegFile) {
			r.Set(4, int64(re))
			r.Set(5, int64(im))
			r.Set(6, int64(twRe))
			r.Set(7, int64(twIm))
			r.Set(9, int64(mm))
			r.Set(10, int64(mm/2))
			r.Set(11, int64(n/mm))
			r.Set(12, int64(n/2))
		}))
	}

	verify := func() error {
		// Reference: the identical iterative radix-2 algorithm.
		refRe := make([]float64, n)
		refIm := make([]float64, n)
		for i := 0; i < n; i++ {
			rev := 0
			for b := 0; b < logN; b++ {
				rev = rev<<1 | (i >> b & 1)
			}
			refRe[rev] = inRe[i]
			refIm[rev] = inIm[i]
		}
		for s := 1; s <= logN; s++ {
			mm := 1 << s
			half := mm / 2
			stride := n / mm
			for b := 0; b < n/2; b++ {
				group, pos := b/half, b%half
				i1 := group*mm + pos
				i2 := i1 + half
				cr, ci := wr[pos*stride], wi[pos*stride]
				tr := cr*refRe[i2] - ci*refIm[i2]
				ti := cr*refIm[i2] + ci*refRe[i2]
				refRe[i1], refRe[i2] = refRe[i1]+tr, refRe[i1]-tr
				refIm[i1], refIm[i2] = refIm[i1]+ti, refIm[i1]-ti
			}
		}
		for i := 0; i < n; i++ {
			gr := m.ReadF(re + uint64(i)*8)
			gi := m.ReadF(im + uint64(i)*8)
			if math.Abs(gr-refRe[i]) > 1e-6 || math.Abs(gi-refIm[i]) > 1e-6 {
				return fmt.Errorf("fft: X[%d] = (%g,%g), want (%g,%g)", i, gr, gi, refRe[i], refIm[i])
			}
		}
		return nil
	}
	return &Instance{name: "FFT", steps: steps, verify: verify}, nil
}
