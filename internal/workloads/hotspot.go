package workloads

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/sim"
)

// HotSpot: iterative thermal-simulation PDE solver (Rodinia, Table 2).
// Paper input: 300×300 grid, 100 iterations; scaled: 60×68, 6 iterations
// (two 32 KB buffers + power array ≈ 96 KB working set). Interior cells do
// a 5-point stencil; boundary cells copy through — the boundary test is the
// benchmark's (rarely) divergent branch (paper: 1.4 %).
const (
	hotspotW     = 60 // deliberately not line-aligned: warp accesses straddle lines
	hotspotH     = 68
	hotspotIters = 6
	hotspotC1    = 0.15 // diffusion coefficient
	hotspotC2    = 0.02 // power coupling
)

// hotspotKernel ABI: R4=&src, R5=&dst, R6=&power, R8=count (W*H).
func hotspotKernel(width, height, maxThreads int) *program.Program {
	b := program.NewBuilder("hotspot")
	w := int64(width)
	cells := w * int64(height)
	b.DeclareRegion(4, cells)
	b.DeclareRegion(5, cells)
	b.DeclareRegion(6, cells)
	b.DeclareUniformRange(8, cells, cells)
	b.DeclareThreads(maxThreads)
	b.Mov(10, 1) // cell = tid
	b.Label("loop")
	b.Slt(11, 10, 8)
	b.Beqz(11, "done")
	b.Movi(30, w)
	b.Div(12, 10, 30) // y
	b.Rem(13, 10, 30) // x
	// boundary = (y==0) | (y==H-1) | (x==0) | (x==W-1)
	b.Seq(14, 12, 0)
	b.Movi(15, int64(height-1))
	b.Seq(16, 12, 15)
	b.Or(14, 14, 16)
	b.Seq(16, 13, 0)
	b.Or(14, 14, 16)
	b.Movi(15, w-1)
	b.Seq(16, 13, 15)
	b.Or(14, 14, 16)
	b.Shli(17, 10, 3) // byte offset
	b.Add(18, 4, 17)  // &src[cell]
	b.Ld(19, 18, 0)   // t
	b.Bnez(14, "boundary")
	// Interior: dst = t + c1*(up+down+left+right - 4t) + c2*power.
	b.Ld(20, 18, -w*8)
	b.Ld(21, 18, w*8)
	b.Fadd(20, 20, 21)
	b.Ld(21, 18, -8)
	b.Fadd(20, 20, 21)
	b.Ld(21, 18, 8)
	b.Fadd(20, 20, 21)
	b.Fmovi(22, 4.0)
	b.Fmul(23, 19, 22)
	b.Fsub(20, 20, 23) // neighbours - 4t
	b.Fmovi(22, hotspotC1)
	b.Fmul(20, 20, 22)
	b.Add(24, 6, 17)
	b.Ld(25, 24, 0) // power
	b.Fmovi(22, hotspotC2)
	b.Fmul(25, 25, 22)
	b.Fadd(20, 20, 25)
	b.Fadd(19, 19, 20)
	b.Label("boundary") // boundary cells just copy t through
	b.Add(26, 5, 17)
	b.St(19, 26, 0)
	b.Add(10, 10, 2)
	b.Jmp("loop")
	b.Label("done")
	b.Halt()
	return b.MustVerify()
}

// buildHotSpot prepares the HotSpot benchmark; scale multiplies the grid
// height (60×68·scale cells).
func buildHotSpot(sys *sim.System, scale int) (*Instance, error) {
	m := sys.Memory()
	w, h := hotspotW, hotspotH*scale
	n := w * h
	bufA := m.AllocWords(n)
	bufB := m.AllocWords(n)
	power := m.AllocWords(n)

	temp := make([]float64, n)
	pw := make([]float64, n)
	for i := range temp {
		x, y := i%w, i/w
		temp[i] = 60 + 20*float64((x*y)%7)/7
		pw[i] = float64((x+3*y)%11) / 11
		m.WriteF(bufA+uint64(i)*8, temp[i])
		m.WriteF(power+uint64(i)*8, pw[i])
	}

	nt := threadsFor(sys, n)
	p := hotspotKernel(w, h, nt)
	var steps []Step
	src, dst := bufA, bufB
	for it := 0; it < hotspotIters; it++ {
		s, d := src, dst
		steps = append(steps, launch(p, nt, func(tid int, r *isa.RegFile) {
			r.Set(4, int64(s))
			r.Set(5, int64(d))
			r.Set(6, int64(power))
			r.Set(8, int64(n))
		}))
		src, dst = dst, src
	}
	final := src // after the last swap, src holds the latest buffer

	verify := func() error {
		cur := append([]float64(nil), temp...)
		next := make([]float64, n)
		for it := 0; it < hotspotIters; it++ {
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					i := y*w + x
					if y == 0 || y == h-1 || x == 0 || x == w-1 {
						next[i] = cur[i]
						continue
					}
					nb := cur[i-w] + cur[i+w] + cur[i-1] + cur[i+1]
					next[i] = cur[i] + hotspotC1*(nb-4*cur[i]) + hotspotC2*pw[i]
				}
			}
			cur, next = next, cur
		}
		for i := 0; i < n; i++ {
			got := m.ReadF(final + uint64(i)*8)
			if !almostEqual(got, cur[i]) {
				return fmt.Errorf("hotspot: cell %d = %g, want %g", i, got, cur[i])
			}
		}
		return nil
	}
	return &Instance{name: "HotSpot", steps: steps, verify: verify}, nil
}
