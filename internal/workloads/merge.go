package workloads

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/sim"
)

// Merge: parallel merge sort (Table 2). Paper input: 300,000 integers;
// scaled: 4,096 key/payload records (96 KB — three times an L1), sorted with a
// bitonic merge network — the classic data-parallel formulation of merge
// sort, where every pass is fully parallel. The compare-exchange decision
// branches on element values, so branch divergence is pervasive (the paper
// measures 13.1 % divergent branches and a branch every ~9 instructions),
// and the power-of-two partner strides walk far apart in memory, producing
// memory divergence.
const mergeN = 4096

// mergeKernel performs one bitonic substage. ABI: R4=&a, R6=n, R7=j
// (partner stride), R8=k (direction block size).
func mergeKernel(n, maxThreads int) *program.Program {
	b := program.NewBuilder("merge-bitonic")
	b.DeclareRegion(4, 3*int64(n)) // 24-byte records
	b.DeclareUniformRange(6, int64(n), int64(n))
	b.DeclareUniformRange(7, 1, int64(n/2)) // partner stride j
	b.DeclareUniformRange(8, 2, int64(n))   // direction block size k
	b.DeclareThreads(maxThreads)
	b.Mov(9, 1) // idx = tid
	b.Label("loop")
	b.Slt(10, 9, 6)
	b.Beqz(10, "done")
	b.Xor(11, 9, 7) // partner
	b.Sle(12, 11, 9)
	b.Bnez(12, "skip") // only the lower index of each pair works
	b.Muli(13, 9, 24)  // records are 24 bytes (key, payload, pad): accesses straddle lines
	b.Add(14, 4, 13)
	b.Ld(15, 14, 0) // key[idx]
	b.Muli(16, 11, 24)
	b.Add(17, 4, 16)
	b.Ld(18, 17, 0) // key[partner]
	b.And(19, 9, 8)
	b.Seq(20, 19, 0)  // ascending block?
	b.Slt(21, 18, 15) // key[partner] < key[idx]
	b.Seq(22, 21, 20)
	b.Beqz(22, "skip") // swap needed iff out-of-order for the direction
	b.St(18, 14, 0)
	b.St(15, 17, 0)
	b.Ld(23, 14, 8) // payloads travel with their keys
	b.Ld(24, 17, 8)
	b.St(24, 14, 8)
	b.St(23, 17, 8)
	b.Label("skip")
	b.Add(9, 9, 2)
	b.Jmp("loop")
	b.Label("done")
	b.Halt()
	return b.MustVerify()
}

// buildMerge prepares the Merge benchmark at 4096·scale records (scale
// must be a power of two: bitonic networks need power-of-two sizes).
func buildMerge(sys *sim.System, scale int) (*Instance, error) {
	m := sys.Memory()
	n := mergeN * scale
	a := m.AllocWords(3 * n) // 24-byte records (key, payload, pad)

	input := make([]int64, n)
	seed := int64(0x2545F4914F6CDD1D)
	for i := range input {
		// xorshift-style deterministic pseudo-random values
		seed ^= seed << 13
		seed ^= int64(uint64(seed) >> 7)
		seed ^= seed << 17
		input[i] = seed % 1000003
		m.Write(a+uint64(i)*24, input[i])
		m.Write(a+uint64(i)*24+8, int64(i)) // payload: original position
	}

	nt := threadsFor(sys, n)
	p := mergeKernel(n, nt)
	var steps []Step
	for k := 2; k <= n; k *= 2 {
		for j := k / 2; j >= 1; j /= 2 {
			jj, kk := j, k
			steps = append(steps, launch(p, nt, func(tid int, r *isa.RegFile) {
				r.Set(4, int64(a))
				r.Set(6, int64(n))
				r.Set(7, int64(jj))
				r.Set(8, int64(kk))
			}))
		}
	}

	verify := func() error {
		var prev int64 = -1 << 62
		seen := make([]bool, n)
		for i := 0; i < n; i++ {
			v := m.Read(a + uint64(i)*24)
			if v < prev {
				return fmt.Errorf("merge: out[%d]=%d < out[%d]=%d, not sorted", i, v, i-1, prev)
			}
			prev = v
			pay := m.Read(a + uint64(i)*24 + 8)
			if pay < 0 || pay >= int64(n) || seen[pay] {
				return fmt.Errorf("merge: payload %d at %d invalid or duplicated", pay, i)
			}
			seen[pay] = true
			if input[pay] != v {
				return fmt.Errorf("merge: record %d separated from its key (%d != %d)", pay, v, input[pay])
			}
		}
		return nil
	}
	return &Instance{name: "Merge", steps: steps, verify: verify}, nil
}
