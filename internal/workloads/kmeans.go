package workloads

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/sim"
)

// KMeans: unsupervised classification with map-reduce distance aggregation
// (MineBench, Table 2). Paper input: 10,000 points in 20 dimensions;
// scaled: 4,096 points × 8 dimensions (256 KB of points — 8× an L1),
// 8 clusters, 2 iterations. The assignment kernel's argmin and the update
// kernel's membership test are data-dependent branches (paper: 2 %
// divergent branches), and every thread streams points far beyond its L1.
// The update is the paper's map-reduce: (cluster, chunk) threads produce
// partial sums, a reduce kernel folds the chunks, a finalize kernel
// divides by the member counts.
const (
	kmeansP      = 4096
	kmeansD      = 8 // kernels unroll the dimension loop for this D
	kmeansK      = 8
	kmeansIters  = 2
	kmeansChunks = 32
)

// kmeansAssignKernel ABI: R4=&x, R5=&cent, R6=&assign, R7=P, R8=K, R9=D.
func kmeansAssignKernel(p, k, d, maxThreads int) *program.Program {
	b := program.NewBuilder("kmeans-assign")
	b.DeclareRegion(4, int64(p*d))
	b.DeclareRegion(5, int64(k*d))
	b.DeclareRegion(6, int64(p))
	b.DeclareUniformRange(7, int64(p), int64(p))
	b.DeclareUniformRange(8, int64(k), int64(k))
	b.DeclareUniformRange(9, int64(d), int64(d))
	b.DeclareThreads(maxThreads)
	b.Mov(10, 1) // p = tid
	b.Label("ploop")
	b.Slt(11, 10, 7)
	b.Beqz(11, "pdone")
	b.Mul(12, 10, 9)
	b.Shli(12, 12, 3)
	b.Add(12, 12, 4) // &x[p][0]
	b.Movi(13, 0)    // k
	b.Fmovi(14, 1e30)
	b.Movi(15, 0) // best k
	b.Label("kloop")
	b.Slt(16, 13, 8)
	b.Beqz(16, "kdone")
	b.Mul(17, 13, 9)
	b.Shli(17, 17, 3)
	b.Add(17, 17, 5) // &cent[k][0]
	b.Fmovi(18, 0)   // dist
	b.Movi(19, 0)    // d
	b.Label("dloop")
	b.Slt(20, 19, 9)
	b.Beqz(20, "ddone")
	b.Shli(21, 19, 3)
	b.Add(22, 12, 21)
	b.Ld(23, 22, 0)
	b.Add(24, 17, 21)
	b.Ld(25, 24, 0)
	b.Fsub(26, 23, 25)
	b.Fmul(26, 26, 26)
	b.Fadd(18, 18, 26)
	b.Addi(19, 19, 1)
	b.Jmp("dloop")
	b.Label("ddone")
	b.Fslt(27, 18, 14)
	b.Beqz(27, "notbest") // the argmin update: data-dependent divergence
	b.Mov(14, 18)
	b.Mov(15, 13)
	b.Label("notbest")
	b.Addi(13, 13, 1)
	b.Jmp("kloop")
	b.Label("kdone")
	b.Shli(28, 10, 3)
	b.Add(29, 6, 28)
	b.St(15, 29, 0)
	b.Add(10, 10, 2)
	b.Jmp("ploop")
	b.Label("pdone")
	b.Halt()
	return b.MustVerify()
}

// kmeansUpdateKernel: one thread per (cluster, chunk) accumulates the
// D-dimensional partial sum of its chunk's members in registers.
// ABI: R4=&x, R5=&assign, R6=&psums (K·Chunks·D), R7=&pcounts (K·Chunks),
// R9=D, R10=K·Chunks, R11=Chunks, R12=chunkSize.
func kmeansUpdateKernel(p, k, ch, maxThreads int) *program.Program {
	b := program.NewBuilder("kmeans-update")
	d := kmeansD
	b.DeclareRegion(4, int64(p*d))
	b.DeclareRegion(5, int64(p))
	b.DeclareRegion(6, int64(k*ch*d))
	b.DeclareRegion(7, int64(k*ch))
	b.DeclareUniformRange(9, int64(d), int64(d))
	b.DeclareUniformRange(10, int64(k*ch), int64(k*ch))
	b.DeclareUniformRange(11, int64(ch), int64(ch))
	b.DeclareUniformRange(12, int64(p/ch), int64(p/ch))
	b.DeclareThreads(maxThreads)
	b.Mov(13, 1) // t = tid
	b.Label("loop")
	b.Slt(14, 13, 10)
	b.Beqz(14, "done")
	b.Div(15, 13, 11) // k
	b.Rem(16, 13, 11) // chunk
	b.Mul(17, 16, 12) // pstart
	b.Add(18, 17, 12) // pend
	b.Movi(19, 0)     // count
	for j := 0; j < d; j++ {
		b.Fmovi(isa.Reg(20+j), 0) // accumulators r20..r27
	}
	b.Mov(28, 17) // p
	b.Label("ploop")
	b.Slt(29, 28, 18)
	b.Beqz(29, "pdone")
	b.Shli(30, 28, 3)
	b.Add(31, 5, 30)
	b.Ld(31, 31, 0) // assign[p]
	b.Sne(31, 31, 15)
	b.Bnez(31, "skip") // membership test: data-dependent divergence
	b.Mul(30, 28, 9)
	b.Shli(30, 30, 3)
	b.Add(30, 30, 4) // &x[p][0]
	for j := 0; j < d; j++ {
		b.Ld(29, 30, int64(j*8))
		b.Fadd(isa.Reg(20+j), isa.Reg(20+j), 29)
	}
	b.Addi(19, 19, 1)
	b.Label("skip")
	b.Addi(28, 28, 1)
	b.Jmp("ploop")
	b.Label("pdone")
	b.Muli(29, 13, int64(d*8))
	b.Add(29, 29, 6) // &psums[t*D]
	for j := 0; j < d; j++ {
		b.St(isa.Reg(20+j), 29, int64(j*8))
	}
	b.Shli(30, 13, 3)
	b.Add(30, 30, 7)
	b.St(19, 30, 0)
	b.Add(13, 13, 2)
	b.Jmp("loop")
	b.Label("done")
	b.Halt()
	return b.MustVerify()
}

// kmeansReduceKernel folds the per-chunk partials: one thread per (k, d).
// ABI: R4=&psums, R5=&pcounts, R6=&sums, R7=&counts, R8=K·D, R9=D,
// R10=Chunks.
func kmeansReduceKernel(k, d, ch, maxThreads int) *program.Program {
	b := program.NewBuilder("kmeans-reduce")
	b.DeclareRegion(4, int64(k*ch*d))
	b.DeclareRegion(5, int64(k*ch))
	b.DeclareRegion(6, int64(k*d))
	b.DeclareRegion(7, int64(k))
	b.DeclareUniformRange(8, int64(k*d), int64(k*d))
	b.DeclareUniformRange(9, int64(d), int64(d))
	b.DeclareUniformRange(10, int64(ch), int64(ch))
	b.DeclareThreads(maxThreads)
	b.Mov(11, 1)
	b.Label("loop")
	b.Slt(12, 11, 8)
	b.Beqz(12, "done")
	b.Div(13, 11, 9) // k
	b.Rem(14, 11, 9) // d
	b.Fmovi(15, 0)   // sum
	b.Movi(16, 0)    // count
	b.Movi(17, 0)    // c
	b.Label("cloop")
	b.Slt(18, 17, 10)
	b.Beqz(18, "cdone")
	b.Mul(19, 13, 10)
	b.Add(19, 19, 17) // k*Chunks + c
	b.Mul(20, 19, 9)
	b.Add(20, 20, 14)
	b.Shli(20, 20, 3)
	b.Add(21, 4, 20)
	b.Ld(22, 21, 0)
	b.Fadd(15, 15, 22)
	b.Bnez(14, "nocnt")
	b.Shli(23, 19, 3)
	b.Add(24, 5, 23)
	b.Ld(25, 24, 0)
	b.Add(16, 16, 25)
	b.Label("nocnt")
	b.Addi(17, 17, 1)
	b.Jmp("cloop")
	b.Label("cdone")
	b.Shli(26, 11, 3)
	b.Add(27, 6, 26)
	b.St(15, 27, 0)
	b.Bnez(14, "nostore")
	b.Shli(28, 13, 3)
	b.Add(29, 7, 28)
	b.St(16, 29, 0)
	b.Label("nostore")
	b.Add(11, 11, 2)
	b.Jmp("loop")
	b.Label("done")
	b.Halt()
	return b.MustVerify()
}

// kmeansFinalizeKernel ABI: R4=&cent, R5=&sums, R6=&counts, R7=K·D, R8=D.
func kmeansFinalizeKernel(k, d, maxThreads int) *program.Program {
	b := program.NewBuilder("kmeans-finalize")
	b.DeclareRegion(4, int64(k*d))
	b.DeclareRegion(5, int64(k*d))
	b.DeclareRegion(6, int64(k))
	b.DeclareUniformRange(7, int64(k*d), int64(k*d))
	b.DeclareUniformRange(8, int64(d), int64(d))
	b.DeclareThreads(maxThreads)
	b.Mov(9, 1)
	b.Label("loop")
	b.Slt(10, 9, 7)
	b.Beqz(10, "done")
	b.Div(11, 9, 8) // k
	b.Shli(12, 11, 3)
	b.Add(13, 6, 12)
	b.Ld(14, 13, 0) // counts[k]
	b.Beqz(14, "skip")
	b.Shli(15, 9, 3)
	b.Add(16, 5, 15)
	b.Ld(17, 16, 0) // sums[kd]
	b.Itof(18, 14)
	b.Fdiv(19, 17, 18)
	b.Add(20, 4, 15)
	b.St(19, 20, 0)
	b.Label("skip")
	b.Add(9, 9, 2)
	b.Jmp("loop")
	b.Label("done")
	b.Halt()
	return b.MustVerify()
}

// buildKMeans prepares the KMeans benchmark at 4096·scale points.
func buildKMeans(sys *sim.System, scale int) (*Instance, error) {
	m := sys.Memory()
	p, d, k, ch := kmeansP*scale, kmeansD, kmeansK, kmeansChunks
	x := m.AllocWords(p * d)
	cent := m.AllocWords(k * d)
	assign := m.AllocWords(p)
	psums := m.AllocWords(k * ch * d)
	pcounts := m.AllocWords(k * ch)
	sums := m.AllocWords(k * d)
	counts := m.AllocWords(k)

	points := make([]float64, p*d)
	for i := 0; i < p; i++ {
		cluster := i % k
		for j := 0; j < d; j++ {
			v := float64(cluster*10) + float64((i*13+j*7)%23)/23
			points[i*d+j] = v
			m.WriteF(x+uint64(i*d+j)*8, v)
		}
	}
	initCent := make([]float64, k*d)
	for c := 0; c < k; c++ {
		for j := 0; j < d; j++ {
			initCent[c*d+j] = points[((c*17)%p)*d+j]
			m.WriteF(cent+uint64(c*d+j)*8, initCent[c*d+j])
		}
	}

	aK := kmeansAssignKernel(p, k, d, threadsFor(sys, p))
	uK := kmeansUpdateKernel(p, k, ch, threadsFor(sys, k*ch))
	rK := kmeansReduceKernel(k, d, ch, threadsFor(sys, k*d))
	fK := kmeansFinalizeKernel(k, d, threadsFor(sys, k*d))
	var steps []Step
	for it := 0; it < kmeansIters; it++ {
		steps = append(steps,
			launch(aK, threadsFor(sys, p), func(tid int, r *isa.RegFile) {
				r.Set(4, int64(x))
				r.Set(5, int64(cent))
				r.Set(6, int64(assign))
				r.Set(7, int64(p))
				r.Set(8, int64(k))
				r.Set(9, int64(d))
			}),
			launch(uK, threadsFor(sys, k*ch), func(tid int, r *isa.RegFile) {
				r.Set(4, int64(x))
				r.Set(5, int64(assign))
				r.Set(6, int64(psums))
				r.Set(7, int64(pcounts))
				r.Set(9, int64(d))
				r.Set(10, int64(k*ch))
				r.Set(11, int64(ch))
				r.Set(12, int64(p/ch))
			}),
			launch(rK, threadsFor(sys, k*d), func(tid int, r *isa.RegFile) {
				r.Set(4, int64(psums))
				r.Set(5, int64(pcounts))
				r.Set(6, int64(sums))
				r.Set(7, int64(counts))
				r.Set(8, int64(k*d))
				r.Set(9, int64(d))
				r.Set(10, int64(ch))
			}),
			launch(fK, threadsFor(sys, k*d), func(tid int, r *isa.RegFile) {
				r.Set(4, int64(cent))
				r.Set(5, int64(sums))
				r.Set(6, int64(counts))
				r.Set(7, int64(k*d))
				r.Set(8, int64(d))
			}),
		)
	}

	verify := func() error {
		c := append([]float64(nil), initCent...)
		asg := make([]int, p)
		for it := 0; it < kmeansIters; it++ {
			for i := 0; i < p; i++ {
				best, bestK := 1e30, 0
				for cc := 0; cc < k; cc++ {
					dist := 0.0
					for j := 0; j < d; j++ {
						t := points[i*d+j] - c[cc*d+j]
						dist += t * t
					}
					if dist < best {
						best, bestK = dist, cc
					}
				}
				asg[i] = bestK
			}
			for cc := 0; cc < k; cc++ {
				cnt := 0
				sum := make([]float64, d)
				for i := 0; i < p; i++ {
					if asg[i] != cc {
						continue
					}
					cnt++
					for j := 0; j < d; j++ {
						sum[j] += points[i*d+j]
					}
				}
				if cnt > 0 {
					for j := 0; j < d; j++ {
						c[cc*d+j] = sum[j] / float64(cnt)
					}
				}
			}
		}
		for i := 0; i < p; i++ {
			if got := m.Read(assign + uint64(i)*8); got != int64(asg[i]) {
				return fmt.Errorf("kmeans: assign[%d] = %d, want %d", i, got, asg[i])
			}
		}
		for i := 0; i < k*d; i++ {
			if got := m.ReadF(cent + uint64(i)*8); !almostEqual(got, c[i]) {
				return fmt.Errorf("kmeans: cent[%d] = %g, want %g", i, got, c[i])
			}
		}
		return nil
	}
	return &Instance{name: "KMeans", steps: steps, verify: verify}, nil
}
