package workloads

// Kernel-level tests: the benchmark kernels' static structure (branch
// metadata from the compiler layer) and cross-scheme determinism for the
// branchiest benchmarks.

import (
	"strings"
	"testing"

	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/wpu"
)

func kernelPrograms(t *testing.T) map[string]*program.Program {
	t.Helper()
	cfg := sim.DefaultConfig()
	sys, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]*program.Program)
	for _, spec := range All() {
		inst, err := spec.Build(sys)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		for _, st := range inst.Steps() {
			out[st.Prog.Name] = st.Prog
		}
	}
	return out
}

func TestEveryKernelBuildsAndDisassembles(t *testing.T) {
	progs := kernelPrograms(t)
	if len(progs) < 10 {
		t.Fatalf("only %d distinct kernels", len(progs))
	}
	for name, p := range progs {
		d := p.Disassemble()
		if !strings.Contains(d, "halt") {
			t.Errorf("%s: disassembly lacks a halt:\n%s", name, d)
		}
		if len(p.Code) < 3 {
			t.Errorf("%s: implausibly small kernel", name)
		}
	}
}

func TestEveryKernelLoopBranchHasIPdom(t *testing.T) {
	// Every kernel is a strided loop: its loop-exit branch must have a
	// real immediate post-dominator (the halt block), and at least one
	// branch per kernel must be subdividable.
	progs := kernelPrograms(t)
	for name, p := range progs {
		if p.NumBranches() == 0 {
			t.Errorf("%s: no conditional branches", name)
			continue
		}
		subdividable := false
		for pc := range p.Code {
			bi, ok := p.Branch(pc)
			if !ok {
				continue
			}
			if bi.Subdividable {
				subdividable = true
			}
			if bi.Subdividable && bi.IPdom == program.NoIPdom {
				t.Errorf("%s: subdividable branch at %d without an ipdom", name, pc)
			}
		}
		if !subdividable {
			t.Errorf("%s: no subdividable branch at all", name)
		}
	}
}

func TestKernelRegisterDiscipline(t *testing.T) {
	// No kernel may write R1/R2 (the launch ABI) or read R0 expecting
	// anything but zero. Writes to R0 are legal (discarded) but suspicious
	// in our kernels.
	progs := kernelPrograms(t)
	for name, p := range progs {
		for pc, in := range p.Code {
			if in.Op.IsMem() || in.Op.IsControl() ||
				in.Op.String() == "nop" || in.Op.String() == "halt" || in.Op.String() == "barrier" {
				continue
			}
			if in.Dst == 1 || in.Dst == 2 {
				t.Errorf("%s@%d: kernel overwrites ABI register r%d: %s", name, pc, in.Dst, in)
			}
			if in.Dst == 0 {
				t.Errorf("%s@%d: kernel writes r0: %s", name, pc, in)
			}
		}
	}
}

// The branchy benchmarks must produce identical results under every
// scheme (Merge and KMeans are covered in workloads_test.go).
func TestBranchyBenchmarksAllSchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	for _, name := range []string{"Short", "SVM"} {
		spec, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range wpu.AllSchemes {
			s := s
			t.Run(name+"/"+string(s), func(t *testing.T) {
				runBench(t, spec, s)
			})
		}
	}
}

// Cycle counts must be identical across repeated runs for every scheme on
// one benchmark (global determinism).
func TestCycleDeterminismAcrossSchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	spec := mustSpec(t, "HotSpot")
	for _, s := range []wpu.Scheme{wpu.SchemeRevive, wpu.SchemeSlipBranchBypass} {
		a := runBench(t, spec, s).Cycles()
		b := runBench(t, spec, s).Cycles()
		if a != b {
			t.Fatalf("%s: %d vs %d cycles across runs", s, a, b)
		}
	}
}

// The workloads must exercise the machine hard enough to be meaningful:
// working sets beyond the L1 (so misses recur) and nontrivial instruction
// volume.
func TestWorkloadsAreMemoryResident(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			sys := runBench(t, spec, wpu.SchemeConv)
			st := sys.TotalStats()
			l1 := sys.L1Stats()
			if st.ThreadOps < 100_000 {
				t.Errorf("only %d thread-ops: input too small", st.ThreadOps)
			}
			if l1.MissRate() < 0.005 {
				t.Errorf("L1 miss rate %.4f: workload fits in cache", l1.MissRate())
			}
		})
	}
}

// Scaled inputs must still verify (the -scale knob of cmd/dwsim).
func TestScaledWorkloadsVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	for _, name := range []string{"Filter", "KMeans", "Merge"} {
		spec, err := ByNameScaled(name, 2)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			runBench(t, spec, wpu.SchemeRevive)
		})
	}
}

func TestAllWithScaleClampsAndLists(t *testing.T) {
	if got := len(AllWithScale(0)); got != 8 {
		t.Fatalf("AllWithScale(0) has %d entries", got)
	}
	if _, err := ByNameScaled("nope", 2); err == nil {
		t.Fatal("unknown scaled benchmark accepted")
	}
}

func TestIsqrt(t *testing.T) {
	for _, c := range []struct{ in, want int }{
		{1, 1}, {2, 1}, {3, 1}, {4, 2}, {8, 2}, {9, 3}, {16, 4}, {17, 4},
	} {
		if got := isqrt(c.in); got != c.want {
			t.Fatalf("isqrt(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}
