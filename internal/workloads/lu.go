package workloads

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/sim"
)

// LU: dense LU decomposition without pivoting (Splash2, Table 2). Paper
// input: 300×300; scaled: 72×72 (≈ 41 KB matrix). Per elimination step k a
// column-scale kernel and a trailing-submatrix update kernel run; the
// shrinking iteration space makes the loop-exit branches divergent for the
// tail warps (paper: 4.3 % divergent branches) and the alternating
// row-/column-major accesses produce memory divergence.
const luN = 72

// luScaleKernel ABI: R4=&A, R5=N, R6=k. Threads stride over rows i>k:
// A[i][k] /= A[k][k].
func luScaleKernel(n, maxThreads int) *program.Program {
	b := program.NewBuilder("lu-scale")
	b.DeclareRegion(4, int64(n)*int64(n))
	b.DeclareUniformRange(5, int64(n), int64(n))
	b.DeclareUniformRange(6, 0, int64(n-2)) // elimination step k
	b.DeclareThreads(maxThreads)
	b.Addi(8, 6, 1)
	b.Add(8, 8, 1) // i = k+1+tid
	b.Mul(9, 6, 5)
	b.Add(9, 9, 6)
	b.Shli(9, 9, 3)
	b.Add(9, 9, 4)
	b.Ld(10, 9, 0) // pivot = A[k][k]
	b.Label("loop")
	b.Slt(11, 8, 5)
	b.Beqz(11, "done")
	b.Mul(12, 8, 5)
	b.Add(12, 12, 6)
	b.Shli(12, 12, 3)
	b.Add(12, 12, 4)
	b.Ld(13, 12, 0)
	b.Fdiv(14, 13, 10)
	b.St(14, 12, 0)
	b.Add(8, 8, 2)
	b.Jmp("loop")
	b.Label("done")
	b.Halt()
	return b.MustVerify()
}

// luUpdateKernel ABI: R4=&A, R5=N, R6=k, R7=span (N-k-1), R8=span².
// Threads stride over the trailing submatrix: A[i][j] -= A[i][k]*A[k][j].
func luUpdateKernel(n, maxThreads int) *program.Program {
	b := program.NewBuilder("lu-update")
	b.DeclareRegion(4, int64(n)*int64(n))
	b.DeclareUniformRange(5, int64(n), int64(n))
	b.DeclareUniformRange(6, 0, int64(n-2))            // elimination step k
	b.DeclareUniformRange(7, 1, int64(n-1))            // span = N-k-1
	b.DeclareUniformRange(8, 1, int64(n-1)*int64(n-1)) // span²
	b.DeclareThreads(maxThreads)
	b.Mov(9, 1) // m = tid
	b.Label("loop")
	b.Slt(10, 9, 8)
	b.Beqz(10, "done")
	b.Div(11, 9, 7)
	b.Rem(12, 9, 7)
	b.Addi(13, 6, 1)
	b.Add(14, 11, 13) // i
	b.Add(15, 12, 13) // j
	b.Mul(16, 14, 5)  // i*N
	b.Add(17, 16, 6)
	b.Shli(17, 17, 3)
	b.Add(17, 17, 4)
	b.Ld(18, 17, 0) // A[i][k]
	b.Mul(19, 6, 5)
	b.Add(20, 19, 15)
	b.Shli(20, 20, 3)
	b.Add(20, 20, 4)
	b.Ld(21, 20, 0) // A[k][j]
	b.Add(22, 16, 15)
	b.Shli(22, 22, 3)
	b.Add(22, 22, 4)
	b.Ld(23, 22, 0) // A[i][j]
	b.Fmul(24, 18, 21)
	b.Fsub(25, 23, 24)
	b.St(25, 22, 0)
	b.Add(9, 9, 2)
	b.Jmp("loop")
	b.Label("done")
	b.Halt()
	return b.MustVerify()
}

// buildLU prepares the LU benchmark; the matrix side grows by √scale so
// the O(n³) work grows ≈ scale^1.5.
func buildLU(sys *sim.System, scale int) (*Instance, error) {
	m := sys.Memory()
	n := luN * isqrt(scale)
	a := m.AllocWords(n * n)

	orig := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := float64((i*37+j*11)%19)/19 + 0.25
			if i == j {
				v += float64(n) // diagonal dominance: no pivoting needed
			}
			orig[i*n+j] = v
			m.WriteF(a+uint64(i*n+j)*8, v)
		}
	}

	// The first elimination step launches the most threads; declare that as
	// the kernels' thread bound.
	scaleK := luScaleKernel(n, threadsFor(sys, n-1))
	update := luUpdateKernel(n, threadsFor(sys, (n-1)*(n-1)))
	var steps []Step
	for k := 0; k < n-1; k++ {
		kk := k
		rows := n - k - 1
		steps = append(steps, launch(scaleK, threadsFor(sys, rows), func(tid int, r *isa.RegFile) {
			r.Set(4, int64(a))
			r.Set(5, int64(n))
			r.Set(6, int64(kk))
		}))
		span := n - k - 1
		steps = append(steps, launch(update, threadsFor(sys, span*span), func(tid int, r *isa.RegFile) {
			r.Set(4, int64(a))
			r.Set(5, int64(n))
			r.Set(6, int64(kk))
			r.Set(7, int64(span))
			r.Set(8, int64(span*span))
		}))
	}

	verify := func() error {
		ref := append([]float64(nil), orig...)
		for k := 0; k < n-1; k++ {
			for i := k + 1; i < n; i++ {
				ref[i*n+k] /= ref[k*n+k]
			}
			for i := k + 1; i < n; i++ {
				for j := k + 1; j < n; j++ {
					ref[i*n+j] -= ref[i*n+k] * ref[k*n+j]
				}
			}
		}
		for i := 0; i < n*n; i++ {
			got := m.ReadF(a + uint64(i)*8)
			if !almostEqual(got, ref[i]) {
				return fmt.Errorf("lu: A[%d,%d] = %g, want %g", i/n, i%n, got, ref[i])
			}
		}
		return nil
	}
	return &Instance{name: "LU", steps: steps, verify: verify}, nil
}
