package workloads

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/sim"
)

// Filter: 3×3 edge-detection convolution over a grayscale image (Table 2).
// Paper input: 500×500; scaled input: 96×96 (in+out ≈ 147 KB, several times
// the 32 KB L1). Each thread strides over interior pixels and gathers its
// 3×3 neighbourhood — no data-dependent branches (the paper measures 0 %
// divergent branches) but highly divergent memory accesses (88 %).
const (
	filterW = 96
	filterH = 96
)

// filterKernel ABI: R4=&in, R5=&out, R7=interiorW, R8=interiorCount.
// The image width is baked into the load offsets like a compiler would.
func filterKernel(width, height, maxThreads int) *program.Program {
	b := program.NewBuilder("filter")
	w := int64(width)
	b.DeclareRegion(4, w*int64(height))
	b.DeclareRegion(5, w*int64(height))
	iw := w - 2
	b.DeclareUniformRange(7, iw, iw)
	b.DeclareUniformRange(8, iw*int64(height-2), iw*int64(height-2))
	b.DeclareThreads(maxThreads)
	b.Mov(9, 1) // p = tid
	b.Label("loop")
	b.Slt(10, 9, 8)
	b.Beqz(10, "done")
	b.Div(11, 9, 7)
	b.Rem(12, 9, 7)
	b.Addi(11, 11, 1) // y
	b.Addi(12, 12, 1) // x
	b.Muli(13, 11, w)
	b.Add(13, 13, 12)
	b.Shli(13, 13, 3) // byte offset of centre
	b.Add(14, 4, 13)  // centre address
	b.Ld(15, 14, 0)   // centre value
	// Accumulate the 8 neighbours.
	b.Ld(16, 14, -(w+1)*8)
	b.Ld(17, 14, -w*8)
	b.Fadd(16, 16, 17)
	b.Ld(17, 14, -(w-1)*8)
	b.Fadd(16, 16, 17)
	b.Ld(17, 14, -8)
	b.Fadd(16, 16, 17)
	b.Ld(17, 14, 8)
	b.Fadd(16, 16, 17)
	b.Ld(17, 14, (w-1)*8)
	b.Fadd(16, 16, 17)
	b.Ld(17, 14, w*8)
	b.Fadd(16, 16, 17)
	b.Ld(17, 14, (w+1)*8)
	b.Fadd(16, 16, 17)
	// out = |8*c - sum| (discrete Laplacian magnitude).
	b.Fmovi(18, 8.0)
	b.Fmul(19, 15, 18)
	b.Fsub(19, 19, 16)
	b.Fabs(19, 19)
	b.Add(20, 5, 13)
	b.St(19, 20, 0)
	b.Add(9, 9, 2)
	b.Jmp("loop")
	b.Label("done")
	b.Halt()
	return b.MustVerify()
}

// buildFilter prepares the Filter benchmark; scale multiplies the image
// height (96×96·scale pixels).
func buildFilter(sys *sim.System, scale int) (*Instance, error) {
	m := sys.Memory()
	w, h := filterW, filterH*scale
	in := m.AllocWords(w * h)
	out := m.AllocWords(w * h)

	img := make([]float64, w*h)
	for i := range img {
		// A deterministic synthetic image with edges: tiles plus gradient.
		x, y := i%w, i/w
		v := float64((x/8+y/8)%2)*100 + float64(x%8) + 0.5*float64(y%8)
		img[i] = v
		m.WriteF(in+uint64(i)*8, v)
	}

	iw := w - 2
	count := iw * (h - 2)
	nt := threadsFor(sys, count)
	p := filterKernel(w, h, nt)
	step := launch(p, nt, func(tid int, r *isa.RegFile) {
		r.Set(4, int64(in))
		r.Set(5, int64(out))
		r.Set(7, int64(iw))
		r.Set(8, int64(count))
	})

	verify := func() error {
		for y := 1; y < h-1; y++ {
			for x := 1; x < w-1; x++ {
				c := img[y*w+x]
				sum := img[(y-1)*w+x-1] + img[(y-1)*w+x] + img[(y-1)*w+x+1] +
					img[y*w+x-1] + img[y*w+x+1] +
					img[(y+1)*w+x-1] + img[(y+1)*w+x] + img[(y+1)*w+x+1]
				want := 8*c - sum
				if want < 0 {
					want = -want
				}
				got := m.ReadF(out + uint64(y*w+x)*8)
				if !almostEqual(got, want) {
					return fmt.Errorf("filter: out[%d,%d] = %g, want %g", y, x, got, want)
				}
			}
		}
		return nil
	}
	return &Instance{name: "Filter", steps: []Step{step}, verify: verify}, nil
}
