// Package workloads implements the paper's eight data-parallel benchmarks
// (Table 2) as real programs against the simulator's ISA: FFT, Filter,
// HotSpot, LU, Merge, Short, KMeans and SVM. Each is functionally verified
// against a host-side Go reference implementation after simulation.
//
// Input sizes are scaled down from the paper (which budgeted six-hour MV5
// runs) so a full experiment sweep finishes in minutes, while keeping each
// working set comfortably larger than the 32 KB L1 D-cache — the property
// that produces the paper's miss rates and memory-divergence frequencies.
// Every file documents its scaled input next to the paper's original.
package workloads

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/sim"
)

// Step is one kernel launch: a program plus per-thread initial registers.
type Step struct {
	Prog    *program.Program
	Threads []isa.RegFile
}

// Instance is a prepared workload bound to one system's memory.
type Instance struct {
	name   string
	steps  []Step
	verify func() error
}

// Run executes every kernel launch in order.
func (in *Instance) Run(sys *sim.System) error {
	for i, st := range in.steps {
		if _, err := sys.RunKernel(st.Prog, st.Threads); err != nil {
			return fmt.Errorf("%s step %d: %w", in.name, i, err)
		}
	}
	return nil
}

// Verify checks the computed results against the host reference.
func (in *Instance) Verify() error {
	if err := in.verify(); err != nil {
		return fmt.Errorf("%s: %w", in.name, err)
	}
	return nil
}

// Steps exposes the launch plan (used by characterisation tooling).
func (in *Instance) Steps() []Step { return in.steps }

// Spec names a benchmark and knows how to instantiate it on a system.
type Spec struct {
	Name  string
	Desc  string
	Build func(sys *sim.System) (*Instance, error)
}

// All returns the benchmark suite in the paper's presentation order, at the
// default (fast) input scale.
func All() []Spec { return AllWithScale(1) }

// AllWithScale returns the suite with each benchmark's primary input
// dimension multiplied by scale (a power of two; FFT and Merge require it).
// Scale 1 is the documented fast default; larger scales move the working
// sets toward the paper's original inputs at proportionally longer
// simulation times (Filter and HotSpot grow their image height; LU grows
// its matrix side by √scale steps, so its O(n³) work grows ≈ scale^1.5).
func AllWithScale(scale int) []Spec {
	if scale < 1 {
		scale = 1
	}
	bld := func(fn func(sys *sim.System, scale int) (*Instance, error)) func(*sim.System) (*Instance, error) {
		return func(sys *sim.System) (*Instance, error) { return fn(sys, scale) }
	}
	return []Spec{
		{Name: "FFT", Desc: "radix-2 fast Fourier transform (Splash2), butterfly computation", Build: bld(buildFFT)},
		{Name: "Filter", Desc: "3x3 edge-detection convolution over a grayscale image", Build: bld(buildFilter)},
		{Name: "HotSpot", Desc: "iterative thermal simulation PDE solver (Rodinia)", Build: bld(buildHotSpot)},
		{Name: "LU", Desc: "dense LU decomposition (Splash2)", Build: bld(buildLU)},
		{Name: "Merge", Desc: "bottom-up parallel merge sort", Build: bld(buildMerge)},
		{Name: "Short", Desc: "winning-path search, dynamic programming over rows", Build: bld(buildShort)},
		{Name: "KMeans", Desc: "unsupervised classification, map-reduce distance aggregation (MineBench)", Build: bld(buildKMeans)},
		{Name: "SVM", Desc: "support vector machine kernel computation (MineBench)", Build: bld(buildSVM)},
	}
}

// BuildFFT and friends build each benchmark at the default scale (the
// public per-benchmark entry points).
func BuildFFT(sys *sim.System) (*Instance, error)     { return buildFFT(sys, 1) }
func BuildFilter(sys *sim.System) (*Instance, error)  { return buildFilter(sys, 1) }
func BuildHotSpot(sys *sim.System) (*Instance, error) { return buildHotSpot(sys, 1) }
func BuildLU(sys *sim.System) (*Instance, error)      { return buildLU(sys, 1) }
func BuildMerge(sys *sim.System) (*Instance, error)   { return buildMerge(sys, 1) }
func BuildShort(sys *sim.System) (*Instance, error)   { return buildShort(sys, 1) }
func BuildKMeans(sys *sim.System) (*Instance, error)  { return buildKMeans(sys, 1) }
func BuildSVM(sys *sim.System) (*Instance, error)     { return buildSVM(sys, 1) }

// ByName returns the named benchmark spec at the default scale.
func ByName(name string) (Spec, error) { return ByNameScaled(name, 1) }

// ByNameScaled returns the named benchmark spec at the given scale.
func ByNameScaled(name string, scale int) (Spec, error) {
	for _, s := range AllWithScale(scale) {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// isqrt returns the integer square root, used by LU's side scaling.
func isqrt(n int) int {
	r := 1
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

// threadsFor picks the launch width: every hardware thread when the work is
// large (threads stride over items), or one thread per item for small work.
func threadsFor(sys *sim.System, items int) int {
	cap := sys.ThreadCapacity()
	if items < cap {
		return items
	}
	return cap
}

// launch builds the per-thread register files with the standard ABI
// (R1 = tid, R2 = nthreads) plus workload registers from setup.
func launch(p *program.Program, n int, setup func(tid int, r *isa.RegFile)) Step {
	return Step{Prog: p, Threads: sim.Threads(n, setup)}
}

func almostEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := 1.0
	if a > scale {
		scale = a
	} else if a < -1 {
		scale = -a
	}
	return d <= 1e-6*scale
}
