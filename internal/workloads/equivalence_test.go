package workloads

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/wpu"
)

// TestPolicyEquivalence is the full functional-equivalence sweep: every
// benchmark, run under every named scheduling policy, must leave a
// byte-identical memory image. Subdivision, slip, and re-convergence
// policies reorder and overlap work in time, but the architectural results
// may never depend on the policy — the paper's speedups are timing-only.
// Each run also passes the host-reference Verify, so a policy that broke a
// kernel AND happened to break it identically everywhere would still be
// caught.
//
// In -short mode the sweep keeps every policy but trims the benchmark list
// to the three with the most divergent control flow.
func TestPolicyEquivalence(t *testing.T) {
	specs := All()
	if testing.Short() {
		short := specs[:0]
		for _, spec := range specs {
			switch spec.Name {
			case "Merge", "KMeans", "Short":
				short = append(short, spec)
			}
		}
		specs = short
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			var baseline uint64
			var baseScheme wpu.Scheme
			for i, scheme := range wpu.AllSchemes {
				sys := runBench(t, spec, scheme)
				h := sys.Memory().Hash()
				if i == 0 {
					baseline, baseScheme = h, scheme
					continue
				}
				if h != baseline {
					t.Errorf("memory image under %s (%#x) differs from %s (%#x)",
						scheme, h, baseScheme, baseline)
				}
			}
		})
	}
}

// TestMemoryHashDetectsDifferences guards the equivalence sweep's oracle:
// the digest must react to a single changed word and must not depend on
// whether untouched pages were instantiated.
func TestMemoryHashDetectsDifferences(t *testing.T) {
	sysA, err := sim.New(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := sysA.Memory()
	a.Write(0x100000, 42)
	a.Write(0x300000, -7)
	h1 := a.Hash()
	if a.Hash() != h1 {
		t.Fatal("hash not deterministic")
	}
	a.Read(0x900000) // must not change the digest
	if a.Hash() != h1 {
		t.Fatal("hash depends on reads")
	}
	a.Write(0x500000, 0) // writing zero instantiates a page but changes nothing
	if a.Hash() != h1 {
		t.Fatal("hash depends on zero-page instantiation")
	}
	a.Write(0x300000, -8)
	if a.Hash() == h1 {
		t.Fatal("hash missed a changed word")
	}
}
