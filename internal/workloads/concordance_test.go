package workloads

// Trace-backed soundness checks for the static divergence analysis: replay
// the whole benchmark suite with the uniform-branch fast path disabled and
// event tracing on, and confront every dynamically-observed divergent
// branch with the analysis verdict. A statically-uniform branch that
// diverges at runtime is an analysis soundness bug and fails the test; the
// converse (divergence-capable branches that never diverge on these
// inputs) is the measured precision gap reported in EXPERIMENTS.md.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/wpu"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// branchKey identifies one static branch site across the suite.
type branchKey struct {
	kernel string
	pc     int
}

// replaySuite runs every benchmark under one scheme with tracing enabled
// and returns the set of branch sites that dynamically diverged, plus the
// kernel programs seen.
func replaySuite(t *testing.T, scheme wpu.Scheme) (map[branchKey]bool, map[string]*program.Program) {
	t.Helper()
	diverged := make(map[branchKey]bool)
	progs := make(map[string]*program.Program)
	for _, spec := range All() {
		trace := obs.New(0)
		cfg := sim.DefaultConfig()
		cfg.WPU = scheme.Apply(cfg.WPU)
		// Evaluate every branch lane by lane so a divergence the analysis
		// failed to predict is observed, not steered away by the fast path.
		cfg.WPU.DisableUniformFast = true
		cfg.Trace = trace
		sys, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := spec.Build(sys)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		for i, st := range inst.Steps() {
			progs[st.Prog.Name] = st.Prog
			evStart := len(trace.Events)
			if _, err := sys.RunKernel(st.Prog, st.Threads); err != nil {
				t.Fatalf("%s step %d: %v", spec.Name, i, err)
			}
			for _, ev := range trace.Events[evStart:] {
				if ev.Kind == obs.EvBranchDiverge {
					diverged[branchKey{st.Prog.Name, ev.PC}] = true
				}
			}
		}
		if err := inst.Verify(); err != nil {
			t.Fatal(err)
		}
	}
	return diverged, progs
}

func TestDivergenceConcordance(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// Conv exercises lockstep warps; ReviveSplit exercises DWS warp-splits,
	// BranchBypass run-ahead and PC re-convergence — the mechanisms that
	// could expose an unsound uniformity claim if one existed.
	diverged := make(map[branchKey]bool)
	var progs map[string]*program.Program
	for _, scheme := range []wpu.Scheme{wpu.SchemeConv, wpu.SchemeRevive} {
		d, p := replaySuite(t, scheme)
		for k := range d {
			diverged[k] = true
		}
		progs = p
	}
	if len(progs) != 13 {
		t.Fatalf("suite has %d distinct kernels, want 13", len(progs))
	}

	names := make([]string, 0, len(progs))
	for name := range progs {
		names = append(names, name)
	}
	sort.Strings(names)

	var capableTotal, divergedTotal, uniformTotal, branchTotal int
	for _, name := range names {
		p := progs[name]
		var capable, observed, uniform, branches int
		for pc, in := range p.Code {
			if !in.Op.IsBranch() {
				continue
			}
			bi, _ := p.Branch(pc)
			branches++
			dyn := diverged[branchKey{name, pc}]
			if bi.Uniform {
				uniform++
				if dyn {
					t.Errorf("%s: branch @pc %d is statically uniform but dynamically diverged (class %s)",
						name, pc, bi.Class)
				}
				continue
			}
			capable++
			if dyn {
				observed++
			}
		}
		capableTotal += capable
		divergedTotal += observed
		uniformTotal += uniform
		branchTotal += branches
		t.Logf("%-14s %2d branches: %d uniform, %d divergence-capable, %d diverged dynamically",
			name, branches, uniform, capable, observed)
	}
	// Any dynamically-divergent site claimed uniform already failed above;
	// summarise the precision of the capable set for EXPERIMENTS.md.
	if capableTotal == 0 {
		t.Fatal("no divergence-capable branches across the suite")
	}
	t.Logf("suite: %d branches, %d proved uniform, precision %d/%d = %.0f%% of capable branches diverged",
		branchTotal, uniformTotal, divergedTotal, capableTotal,
		100*float64(divergedTotal)/float64(capableTotal))
}

// The per-kernel divergence report is part of the verification surface
// (cmd/dwsverify -divergence and make ci); pin it with a golden file so
// analysis regressions show up as a reviewable diff.
func TestDivergenceReportGolden(t *testing.T) {
	progs := kernelPrograms(t)
	names := make([]string, 0, len(progs))
	for name := range progs {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		sb.WriteString(progs[name].DivergenceReport())
		sb.WriteString("\n")
	}
	got := sb.String()

	path := filepath.Join("testdata", "divergence_report.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/workloads -run DivergenceReportGolden -update`)", err)
	}
	if got != string(want) {
		t.Errorf("divergence report drifted from golden; rerun with -update if intended.\ndiff:\n%s",
			firstDiff(got, string(want)))
	}
}

// firstDiff returns a small context window around the first differing line.
func firstDiff(got, want string) string {
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(g) || i < len(w); i++ {
		var gl, wl string
		if i < len(g) {
			gl = g[i]
		}
		if i < len(w) {
			wl = w[i]
		}
		if gl != wl {
			return fmt.Sprintf("line %d:\n  got:  %q\n  want: %q", i+1, gl, wl)
		}
	}
	return "(identical?)"
}
