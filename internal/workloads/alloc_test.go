package workloads

import (
	"runtime"
	"testing"

	"repro/internal/sim"
	"repro/internal/wpu"
)

// steadyStateAllocBudget is the allowed number of heap objects allocated
// during the measured 100k-cycle steady-state window of the KMeans run.
// After the allocation-free event-engine rewrite (pooled events, MSHRs,
// tokens, and re-convergence stacks) the window measures ~15.5k objects,
// nearly all of them Split structs — one per subdivision/revive, i.e. per
// architectural event, not per cycle or per message. Splits are not
// pooled deliberately: dead splits persist as wait-merge forwarding stubs
// reachable from in-flight memory tokens and mergedInto chains, so
// recycling them safely would need reference counting across three edge
// types for little GC gain. The budget leaves ~60% headroom over the
// measured value while still failing loudly if a per-event or per-access
// allocation sneaks back into the hot path — the cheapest such mistake
// costs >100k objects per window.
const steadyStateAllocBudget = 25_000

// TestKMeansSteadyStateAllocBudget measures cumulative heap allocations
// (MemStats.Mallocs, which GC never decreases) across a mid-run window of
// the heaviest benchmark. The first 50k cycles are warmup: event pool,
// MSHR pools, token pools, and scratch slices grow to their high-water
// marks there. Past that point the engine is designed to run
// allocation-free, so the window's object count stays flat no matter how
// many events are scheduled inside it.
func TestKMeansSteadyStateAllocBudget(t *testing.T) {
	spec := specByName(t, "KMeans")
	cfg := sim.DefaultConfig()
	cfg.WPU = wpu.SchemeRevive.Apply(cfg.WPU)
	sys, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := spec.Build(sys)
	if err != nil {
		t.Fatal(err)
	}

	const startCycle, endCycle = 50_000, 150_000
	var m0, m1 runtime.MemStats
	sampled := 0
	sys.Tracer = func(cycle uint64) {
		switch cycle {
		case startCycle:
			runtime.ReadMemStats(&m0)
			sampled++
		case endCycle:
			runtime.ReadMemStats(&m1)
			sampled++
		}
	}
	if err := inst.Run(sys); err != nil {
		t.Fatal(err)
	}
	if sampled != 2 {
		t.Fatalf("run ended after %d cycles, before the [%d, %d] measurement window",
			sys.Cycles(), startCycle, endCycle)
	}
	allocs := m1.Mallocs - m0.Mallocs
	t.Logf("steady-state window [%d, %d]: %d heap objects", startCycle, endCycle, allocs)
	if allocs > steadyStateAllocBudget {
		t.Errorf("%d heap objects allocated in the steady-state window, budget %d",
			allocs, steadyStateAllocBudget)
	}
}

func specByName(t *testing.T, name string) Spec {
	t.Helper()
	for _, spec := range All() {
		if spec.Name == name {
			return spec
		}
	}
	t.Fatalf("benchmark %s not found", name)
	return Spec{}
}
