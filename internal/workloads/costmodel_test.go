package workloads

// Trace-backed soundness checks for the static cost model: replay the
// whole benchmark suite under every named scheme and confront the
// measured TickCycles and per-bucket stall cycles of every kernel launch
// with the static bounds. A measured value outside its interval is a
// cost-model soundness bug and fails the test. The same replay collects
// the per-benchmark cycle totals that grade the static scheme ranking
// (EXPERIMENTS.md); the consistency tests pin the cross-package constants
// the model mirrors (scheme names and flags, bucket labels, icache line
// packing), since internal/program cannot import internal/wpu.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/wpu"
)

func TestCostSchemesMatchWPU(t *testing.T) {
	if len(program.CostSchemes) != len(wpu.AllSchemes) {
		t.Fatalf("program.CostSchemes has %d entries, wpu.AllSchemes %d",
			len(program.CostSchemes), len(wpu.AllSchemes))
	}
	for i, tr := range program.CostSchemes {
		s := wpu.AllSchemes[i]
		if tr.Name != string(s) {
			t.Errorf("CostSchemes[%d] = %q, want %q", i, tr.Name, s)
			continue
		}
		c := s.Apply(wpu.Config{Warps: 4, Width: 16})
		if tr.SubdivBranch != c.SubdivideOnBranch {
			t.Errorf("%s: SubdivBranch=%v, wpu SubdivideOnBranch=%v", s, tr.SubdivBranch, c.SubdivideOnBranch)
		}
		if tr.PCReconv != c.PCReconv {
			t.Errorf("%s: PCReconv=%v, wpu PCReconv=%v", s, tr.PCReconv, c.PCReconv)
		}
		if tr.MemSplit != (c.MemScheme != wpu.MemNone) {
			t.Errorf("%s: MemSplit=%v, wpu MemScheme=%v", s, tr.MemSplit, c.MemScheme)
		}
		if tr.MemLazy != (c.MemScheme == wpu.LazySplit) {
			t.Errorf("%s: MemLazy=%v, wpu MemScheme=%v", s, tr.MemLazy, c.MemScheme)
		}
		if tr.MemRevive != (c.MemScheme == wpu.ReviveSplit) {
			t.Errorf("%s: MemRevive=%v, wpu MemScheme=%v", s, tr.MemRevive, c.MemScheme)
		}
		if tr.MemPredictive != (c.MemScheme == wpu.PredictiveSplit) {
			t.Errorf("%s: MemPredictive=%v, wpu MemScheme=%v", s, tr.MemPredictive, c.MemScheme)
		}
		if tr.MemBranchLimited != (c.MemScheme != wpu.MemNone && c.MemReconv == wpu.BranchLimited) {
			t.Errorf("%s: MemBranchLimited=%v, wpu MemReconv=%v", s, tr.MemBranchLimited, c.MemReconv)
		}
		if tr.Slip != (c.Slip != wpu.SlipOff) {
			t.Errorf("%s: Slip=%v, wpu Slip=%v", s, tr.Slip, c.Slip)
		}
		if tr.SlipBypass != (c.Slip == wpu.SlipBranchBypass) {
			t.Errorf("%s: SlipBypass=%v, wpu Slip=%v", s, tr.SlipBypass, c.Slip)
		}
	}
}

func TestCostBucketLabelsMatchWPU(t *testing.T) {
	if program.CostBucketLabels != wpu.CycleBucketLabels {
		t.Errorf("program.CostBucketLabels = %v\nwpu.CycleBucketLabels = %v",
			program.CostBucketLabels, wpu.CycleBucketLabels)
	}
	if program.CostInstPerLine != wpu.ICacheInstPerLine {
		t.Errorf("program.CostInstPerLine = %d, wpu.ICacheInstPerLine = %d",
			program.CostInstPerLine, wpu.ICacheInstPerLine)
	}
}

// costModelKey memoizes CostModelFor per (kernel, thread-count): LU alone
// launches 142 steps and the model only depends on the program and the
// launch geometry.
type costModelKey struct {
	prog    *program.Program
	threads int
}

// runSuiteForCost replays every benchmark under one scheme, asserting per
// launch that the measured cycle totals satisfy the static bounds, and
// returns each benchmark's summed TickCycles.
func runSuiteForCost(t *testing.T, si int, models map[costModelKey]*program.CostModel) map[string]uint64 {
	t.Helper()
	scheme := wpu.AllSchemes[si]
	traits := program.CostSchemes[si]
	totals := make(map[string]uint64)
	for _, spec := range All() {
		cfg := sim.DefaultConfig()
		cfg.WPU = scheme.Apply(cfg.WPU)
		sys, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := spec.Build(sys)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		for i, st := range inst.Steps() {
			key := costModelKey{st.Prog, len(st.Threads)}
			m := models[key]
			if m == nil {
				m = st.Prog.CostModelFor(sim.CostParamsFor(cfg, len(st.Threads)))
				models[key] = m
			}
			before := sys.TotalStats()
			if _, err := sys.RunKernel(st.Prog, st.Threads); err != nil {
				t.Fatalf("%s step %d: %v", spec.Name, i, err)
			}
			after := sys.TotalStats()

			ticks := after.TickCycles - before.TickCycles
			totals[spec.Name] += ticks
			if !m.Ticks.Contains(int64(ticks)) {
				t.Errorf("%s/%s step %d (%s, %d threads): measured TickCycles %d outside static bound %s",
					scheme, spec.Name, i, st.Prog.Name, len(st.Threads), ticks, m.Ticks)
			}
			bb, ba := before.CycleBuckets(), after.CycleBuckets()
			bounds := m.BucketBoundsFor(traits)
			for b := range bounds {
				d := ba[b] - bb[b]
				if !bounds[b].Contains(int64(d)) {
					t.Errorf("%s/%s step %d (%s, %d threads): bucket %s measured %d outside static bound %s",
						scheme, spec.Name, i, st.Prog.Name, len(st.Threads), wpu.CycleBucketLabels[b], d, bounds[b])
				}
			}
		}
		if err := inst.Verify(); err != nil {
			t.Fatal(err)
		}
	}
	return totals
}

// TestCostModelConcordance checks every kernel launch of every benchmark
// under all 13 schemes against the static cycle bounds, then grades the
// static scheme ranking: for each benchmark the measured-best scheme must
// appear in the static top 3 (of 13) on at least 6 of the 8 benchmarks.
func TestCostModelConcordance(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	models := make(map[costModelKey]*program.CostModel)
	// measured[bench][scheme] = summed TickCycles across the benchmark.
	measured := make(map[string]map[string]uint64)
	for si := range wpu.AllSchemes {
		totals := runSuiteForCost(t, si, models)
		for bench, ticks := range totals {
			if measured[bench] == nil {
				measured[bench] = make(map[string]uint64)
			}
			measured[bench][string(wpu.AllSchemes[si])] = ticks
		}
	}
	if t.Failed() {
		return // bound violations make the ranking grade meaningless
	}

	// Static per-benchmark estimate: sum each scheme's per-kernel estimate
	// over the benchmark's launches (the same weighting the measurement
	// gets from running every step).
	cfg := sim.DefaultConfig()
	static := make(map[string]map[string]float64)
	for _, spec := range All() {
		sys, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := spec.Build(sys)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		static[spec.Name] = make(map[string]float64)
		for _, st := range inst.Steps() {
			m := models[costModelKey{st.Prog, len(st.Threads)}]
			if m == nil {
				m = st.Prog.CostModelFor(sim.CostParamsFor(cfg, len(st.Threads)))
			}
			for _, sc := range m.Ranking {
				static[spec.Name][sc.Scheme] += sc.Est
			}
		}
	}

	benches := make([]string, 0, len(measured))
	for b := range measured {
		benches = append(benches, b)
	}
	sort.Strings(benches)
	if len(benches) != 8 {
		t.Fatalf("suite has %d benchmarks, want 8", len(benches))
	}

	agree := 0
	var table strings.Builder
	fmt.Fprintf(&table, "%-8s %-24s %-4s %s\n", "bench", "measured best", "rank", "static top 3")
	for _, bench := range benches {
		best, bestTicks := "", uint64(0)
		for _, s := range wpu.AllSchemes { // fixed order: deterministic ties
			if ticks := measured[bench][string(s)]; best == "" || ticks < bestTicks {
				best, bestTicks = string(s), ticks
			}
		}
		order := make([]string, 0, len(static[bench]))
		for sc := range static[bench] {
			order = append(order, sc)
		}
		sort.SliceStable(order, func(i, j int) bool {
			a, b := static[bench][order[i]], static[bench][order[j]]
			if a != b {
				return a < b
			}
			return order[i] < order[j]
		})
		rank := 0
		for i, sc := range order {
			if sc == best {
				rank = i + 1
				break
			}
		}
		if rank >= 1 && rank <= 3 {
			agree++
		}
		fmt.Fprintf(&table, "%-8s %-24s %-4d %s\n", bench, best, rank, strings.Join(order[:3], " < "))
	}
	t.Logf("static-vs-measured scheme ranking:\n%s", table.String())
	if agree < 6 {
		t.Errorf("static ranking places the measured-best scheme in its top 3 on only %d of 8 benchmarks, want >= 6", agree)
	}
}

// TestCostModelReportGolden pins the Build-time cost-model report of every
// suite kernel. Regenerate with -update (or make update-goldens).
func TestCostModelReportGolden(t *testing.T) {
	progs := make(map[string]*program.Program)
	for _, spec := range All() {
		sys, err := sim.New(sim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		inst, err := spec.Build(sys)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		for _, st := range inst.Steps() {
			progs[st.Prog.Name] = st.Prog
		}
	}
	names := make([]string, 0, len(progs))
	for name := range progs {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		sb.WriteString(progs[name].CostModelReport())
		sb.WriteString("\n")
	}
	got := sb.String()
	path := filepath.Join("testdata", "costmodel_report.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("cost-model report drifted from %s (run with -update to regenerate)\ngot:\n%s", path, got)
	}
}

// BenchmarkCostModel times the full static analysis on the suite's
// largest kernel (guarded by the dwsbench regression gate).
func BenchmarkCostModel(b *testing.B) {
	p := kmeansAssignKernel(kmeansP, kmeansK, kmeansD, 256)
	cp := sim.CostParamsFor(sim.DefaultConfig(), 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m := p.CostModelFor(cp); m == nil {
			b.Fatal("nil cost model")
		}
	}
}
