package workloads

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/wpu"
)

func runBench(t *testing.T, spec Spec, scheme wpu.Scheme) *sim.System {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.WPU = scheme.Apply(cfg.WPU)
	sys, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := spec.Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(sys); err != nil {
		t.Fatal(err)
	}
	if err := inst.Verify(); err != nil {
		t.Fatal(err)
	}
	return sys
}

// Every benchmark must produce verified results under the conventional
// configuration.
func TestAllBenchmarksConv(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			sys := runBench(t, spec, wpu.SchemeConv)
			st := sys.TotalStats()
			if st.Issued == 0 {
				t.Fatal("no instructions issued")
			}
			if st.MemAccesses == 0 {
				t.Fatal("no memory accesses")
			}
		})
	}
}

// DWS must never change results, only timing.
func TestAllBenchmarksDWSRevive(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			runBench(t, spec, wpu.SchemeRevive)
		})
	}
}

func TestAllBenchmarksSlipBranchBypass(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			runBench(t, spec, wpu.SchemeSlipBranchBypass)
		})
	}
}

// Merge and KMeans are the divergence-heavy benchmarks the paper leans on;
// run them under every scheme.
func TestDivergenceHeavyBenchmarksAllSchemes(t *testing.T) {
	for _, name := range []string{"Merge", "KMeans"} {
		spec, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range wpu.AllSchemes {
			s := s
			t.Run(name+"/"+string(s), func(t *testing.T) {
				runBench(t, spec, s)
			})
		}
	}
}

func TestBenchmarkCharacteristics(t *testing.T) {
	t.Run("Filter has no divergent branches", func(t *testing.T) {
		sys := runBench(t, mustSpec(t, "Filter"), wpu.SchemeConv)
		st := sys.TotalStats()
		if frac := float64(st.DivBranch) / float64(st.Branches); frac > 0.01 {
			t.Fatalf("filter divergent-branch fraction = %.3f, want ~0", frac)
		}
	})
	t.Run("Merge has divergent branches", func(t *testing.T) {
		sys := runBench(t, mustSpec(t, "Merge"), wpu.SchemeConv)
		st := sys.TotalStats()
		if frac := float64(st.DivBranch) / float64(st.Branches); frac < 0.02 {
			t.Fatalf("merge divergent-branch fraction = %.3f, want noticeable", frac)
		}
	})
	t.Run("benchmarks exhibit memory divergence", func(t *testing.T) {
		for _, name := range []string{"FFT", "Filter", "Merge", "KMeans"} {
			sys := runBench(t, mustSpec(t, name), wpu.SchemeConv)
			st := sys.TotalStats()
			if st.MemDivergent == 0 {
				t.Errorf("%s: no divergent memory accesses", name)
			}
		}
	})
}

func mustSpec(t *testing.T, name string) Spec {
	t.Helper()
	s, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestSuiteComplete(t *testing.T) {
	want := []string{"FFT", "Filter", "HotSpot", "LU", "Merge", "Short", "KMeans", "SVM"}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("suite has %d benchmarks, want %d", len(got), len(want))
	}
	for i, s := range got {
		if s.Name != want[i] {
			t.Fatalf("suite[%d] = %s, want %s", i, s.Name, want[i])
		}
		if s.Desc == "" {
			t.Fatalf("%s has no description", s.Name)
		}
	}
}
