package wpu

import (
	"testing"

	"repro/internal/program"
)

// loopProgram is a small two-line kernel that loops a few times.
func loopProgram(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder("loopy")
	b.Movi(8, 5)
	b.Label("head")
	b.Addi(8, 8, -1)
	b.Bnez(8, "head")
	b.Halt()
	return b.MustBuild()
}

func TestICacheColdThenHot(t *testing.T) {
	c := newICache(8, 2)
	if c.Fetch(0) {
		t.Fatal("cold fetch hit")
	}
	for pc := 0; pc < icacheInstPerLine; pc++ {
		if !c.Fetch(pc) {
			t.Fatalf("pc %d missed within a filled line", pc)
		}
	}
	if c.Misses != 1 {
		t.Fatalf("misses = %d, want 1", c.Misses)
	}
	if c.Fetches != uint64(icacheInstPerLine)+1 {
		t.Fatalf("fetches = %d", c.Fetches)
	}
}

func TestICacheLRUWithinSet(t *testing.T) {
	c := newICache(4, 2) // 2 sets x 2 ways
	// Lines 0, 2, 4 map to set 0 (lineNo % 2 == 0).
	c.Fetch(0 * icacheInstPerLine)
	c.Fetch(2 * icacheInstPerLine)
	c.Fetch(0 * icacheInstPerLine) // touch line 0: line 2 is LRU
	c.Fetch(4 * icacheInstPerLine) // evicts line 2
	if !c.Fetch(0 * icacheInstPerLine) {
		t.Fatal("recently used line evicted")
	}
	if c.Fetch(2 * icacheInstPerLine) {
		t.Fatal("LRU line survived")
	}
}

func TestICacheDefaultGeometry(t *testing.T) {
	c := newICache(0, 0)
	if len(c.sets) != icacheDefaultLines/icacheDefaultWays {
		t.Fatalf("sets = %d", len(c.sets))
	}
	if len(c.sets[0]) != icacheDefaultWays {
		t.Fatalf("ways = %d", len(c.sets[0]))
	}
}

func TestKernelsStayICacheResident(t *testing.T) {
	// After the cold start a small kernel must never miss again: fetch
	// misses stay bounded by the kernel's line count per launch.
	b := loopProgram(t)
	w, q, _ := newBareWPU(t, Config{Warps: 2, Width: 4})
	launchSimple(t, w, b, 8, nil)
	runToCompletion(t, w, q)
	lines := uint64(len(b.Code)/icacheInstPerLine + 1)
	if w.Stats.IFetchMisses > lines {
		t.Fatalf("IFetchMisses = %d, want <= %d cold lines", w.Stats.IFetchMisses, lines)
	}
}

func TestProgramsGetDisjointFetchBases(t *testing.T) {
	w, q, _ := newBareWPU(t, Config{Warps: 1, Width: 4})
	p1 := loopProgram(t)
	p2 := loopProgram(t)
	launchSimple(t, w, p1, 4, nil)
	runToCompletion(t, w, q)
	base1 := w.fetchBase
	launchSimple(t, w, p2, 4, nil)
	runToCompletion(t, w, q)
	base2 := w.fetchBase
	if base1 == base2 {
		t.Fatal("distinct programs share a fetch base")
	}
	// Relaunching p1 reuses its base (and stays cache-resident).
	misses := w.Stats.IFetchMisses
	launchSimple(t, w, p1, 4, nil)
	runToCompletion(t, w, q)
	if w.fetchBase != base1 {
		t.Fatal("relaunch did not reuse the program's fetch base")
	}
	if w.Stats.IFetchMisses != misses {
		t.Fatalf("relaunch of resident code missed %d times", w.Stats.IFetchMisses-misses)
	}
}
