package wpu

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/isa"
)

// SplitState is the scheduling state of one SIMD group (a full warp or a
// warp-split; the paper's term for both is "SIMD group").
type SplitState uint8

const (
	// Ready: can issue instructions when the scheduler selects it.
	Ready SplitState = iota
	// WaitMem: waiting for outstanding D-cache accesses to complete.
	WaitMem
	// WaitSlip: an adaptive-slip warp stalled at a branch (or halt) until a
	// fall-behind slip group's data arrives and can be swapped in.
	WaitSlip
	// AtBarrier: parked at a kernel-wide barrier.
	AtBarrier
	// Dead: removed (merged away or retired); kept for debugging asserts.
	Dead
)

func (s SplitState) String() string {
	switch s {
	case Ready:
		return "ready"
	case WaitMem:
		return "wait-mem"
	case WaitSlip:
		return "wait-slip"
	case AtBarrier:
		return "at-barrier"
	case Dead:
		return "dead"
	}
	return "?"
}

// StackEntry is one level of a re-convergence stack (Fung et al. [11]):
// the active mask and PC of one control path, and the PC at which the path
// re-converges with its sibling.
type StackEntry struct {
	ReconvPC int // program.NoIPdom when the paths only re-join at exit
	PC       int
	Mask     Mask
}

// SyncScope is the bookkeeping behind stack-based re-convergence of
// warp-splits (§4.4): when a SIMD group subdivides, its re-convergence
// stack is frozen here and the resulting warp-splits run asynchronously
// until every expected thread arrives at the scope's re-convergence PC
// (the post-dominator on top of the frozen stack), where the group is
// re-created and the stack resumes in the conventional manner.
type SyncScope struct {
	warp *Warp
	// reconvPC is where arrivals are forced; program.NoIPdom means kernel
	// termination (or a barrier).
	reconvPC int
	// limitControl marks BranchLimited scopes (§5.3.1): member splits also
	// stall immediately before any conditional branch.
	limitControl bool
	expected     Mask
	arrived      Mask
	arrivedPC    int
	frozen       []StackEntry
	parent       *SyncScope
}

// slipEntry is a fall-behind thread group under adaptive slip: threads that
// missed and were left behind, to be re-united when the run-ahead portion
// revisits their PC (or swapped in when the run-ahead stalls).
type slipEntry struct {
	split   *Split // the warp's schedulable split this group fell behind
	mask    Mask
	pc      int
	pending Mask // threads whose data has not arrived yet
	// scope captures the sync-scope context at slip time; the group may
	// only re-join a split in the same context (mask bookkeeping of frozen
	// stacks and scopes would corrupt otherwise).
	scope *SyncScope
	// asSplit is set when the group was promoted to an independent split
	// (its owner retired or arrived at a scope); completions forward there.
	asSplit *Split
}

// parkedEntry is the run-ahead portion of a slip warp parked at a branch
// while a fall-behind group catches up.
type parkedEntry struct {
	mask Mask
	pc   int
}

// Split is one scheduling entity: a full warp (root split) or a warp-split.
// Warp-splits own no register state — threads stay bound to their lanes —
// so a split is just {mask, PC, status}, exactly the paper's WST entry.
type Split struct {
	id   int
	warp *Warp

	mask  Mask
	pc    int
	state SplitState

	// stack is the split's private re-convergence stack; stack[0] is the
	// base entry (never popped). A freshly subdivided split starts at base.
	stack []StackEntry
	// scope is the innermost sync scope this split must eventually arrive
	// at; nil when the split is (a descendant of) the root with no pending
	// stack-based re-convergence.
	scope *SyncScope

	// pending marks threads with outstanding memory accesses (WaitMem).
	pending Mask
	// waitDiv marks a wait (WaitMem/WaitSlip) caused by a divergent access —
	// some lanes hit while others missed. Set by the wait-entry sites before
	// setState; setState/removeSplit keep the WPU's memWaitDiv count in sync
	// and clear the flag when the wait ends.
	waitDiv bool
	// born is the cycle this scheduling entity was created (split-lifetime
	// histogram); waitSince is the cycle of the most recent entry into a
	// wait state (wait-merge wait-time histogram).
	born      engine.Cycle
	waitSince engine.Cycle
	// memSince counts memory instructions issued since this split was
	// created by subdivision; wait-merging (re-convergence of two splits
	// suspended at the same PC) is only legal once both have moved past
	// their own subdivision point.
	memSince uint64
	// mergedInto forwards in-flight line completions after a wait-merge.
	mergedInto *Split
	// subRec observes this split's subdivision outcome for the
	// PredictiveSplit miss-history predictor.
	subRec *subdivRecord
	// prog counts instructions this split's threads have retired; the
	// scheduler favours the least-progressed ready group so siblings stay
	// near-lockstep (Figure 6d) and PC-based re-convergence can catch them.
	prog uint64

	// resident: holds one of the scheduler's bounded slots (§6.6);
	// slotIdx is the held slot's index (meaningful only while resident),
	// kept so state transitions can update the scheduler's ready bitmask
	// without searching the slot array. queued mirrors membership in the
	// WPU's slotWait queue so transitions can maintain slotWaitReady
	// without rescanning the queue every stalled cycle.
	resident bool
	queued   bool
	slotIdx  int

	// Adaptive slip state (slip modes only).
	slipped []*slipEntry
	parked  []parkedEntry
}

func (s *Split) String() string {
	return fmt.Sprintf("split%d[w%d pc=%d mask=%#x %s]", s.id, s.warp.id, s.pc, uint64(s.mask), s.state)
}

// baseStack reports whether the private stack is fully unwound.
func (s *Split) baseStack() bool { return len(s.stack) == 1 }

// syncPC returns the innermost enforced re-convergence PC around this
// split: the post-dominator on top of its private stack when it has one,
// else the enclosing sync scope's re-convergence PC, else kernel
// termination. A scope created for a nested subdivision must inherit this
// — otherwise its children would sail past the enclosing sync point.
func (s *Split) syncPC() int {
	if !s.baseStack() {
		return s.tos().ReconvPC
	}
	if s.scope != nil {
		return s.scope.reconvPC
	}
	return -1 // program.NoIPdom
}

// tos returns the top re-convergence stack entry.
func (s *Split) tos() *StackEntry { return &s.stack[len(s.stack)-1] }

// slipCount returns how many threads this split currently has slipped or
// parked (they count against the adaptive divergence cap).
func (s *Split) slipCount() int {
	n := 0
	for _, e := range s.slipped {
		n += e.mask.Count()
	}
	return n
}

// memToken routes a cache-line completion to whichever entity owns the
// affected threads by then (the issuing split, a subdivided child, or a
// slip entry). Ownership is assigned after the subdivision decision, which
// happens in the same cycle the accesses are issued — before any completion
// can fire.
type memToken struct {
	lanes Mask
	owner completionTarget
}

type completionTarget interface {
	onLineDone(lanes Mask)
}

// Warp is one set of lanes sharing a register file and (initially) a PC.
// The register file is struct-of-arrays over lanes (isa.LaneRegs): register
// r across all lanes is one contiguous row, so the per-instruction execute
// loop streams over the active lanes instead of dispatching per lane.
type Warp struct {
	id     int
	wpu    *WPU
	regs   *isa.LaneRegs
	live   Mask // lanes with launched threads
	halted Mask
	splits []*Split
}

// liveUnhalted returns lanes still executing.
func (w *Warp) liveUnhalted() Mask { return w.live &^ w.halted }
