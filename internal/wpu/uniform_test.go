package wpu

// Tests for the statically-uniform branch fast path: branches the
// divergence analysis proved uniform are steered by one representative
// lane, never touch the re-convergence stack, and produce architectural
// state identical to lane-by-lane evaluation.

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

// uniformLoopProgram counts a uniform register to 8 in a loop; the
// loop-exit branch predicate depends only on constants, so the analysis
// classifies it uniform and every dynamic execution is non-divergent.
func uniformLoopProgram(t testing.TB) *program.Program {
	b := program.NewBuilder("uniform-loop")
	b.Movi(4, 0)
	b.Label("head")
	b.Addi(4, 4, 1)
	b.Muli(5, 4, 3)
	b.Slti(6, 4, 8)
	b.Bnez(6, "head")
	b.Halt()
	p := b.MustBuild()
	for pc, in := range p.Code {
		if !in.Op.IsBranch() {
			continue
		}
		bi, _ := p.Branch(pc)
		if !bi.Uniform {
			t.Fatalf("test premise broken: branch @pc %d not statically uniform\n%s", pc, p.Disassemble())
		}
	}
	return p
}

func TestUniformBranchFastPath(t *testing.T) {
	p := uniformLoopProgram(t)
	cfg := SchemeBranchOnly.Apply(Config{Warps: 2, Width: 4})
	w, q, _ := newBareWPU(t, cfg)
	launchSimple(t, w, p, 8, nil)

	// Tick by hand so the stack-depth invariant is checked at every instant:
	// a statically-uniform branch must never push a re-convergence entry.
	var cycle engine.Cycle
	for i := 0; !w.Done(); i++ {
		if i > 1_000_000 {
			t.Fatalf("kernel did not finish:\n%s", w.DebugDump())
		}
		q.RunUntil(cycle)
		w.Tick()
		for _, warp := range w.warps {
			for _, s := range warp.splits {
				if !s.baseStack() {
					t.Fatalf("re-convergence stack grew on a uniform branch: depth %d\n%s",
						len(s.stack), w.DebugDump())
				}
			}
		}
		cycle++
	}

	if w.Stats.UniformBranchFast == 0 {
		t.Fatal("fast path never taken on a statically-uniform loop")
	}
	if w.Stats.DivBranch != 0 || w.Stats.BranchSubdivisions != 0 {
		t.Fatalf("uniform loop diverged: DivBranch=%d subdivisions=%d",
			w.Stats.DivBranch, w.Stats.BranchSubdivisions)
	}
	if w.Stats.Branches != w.Stats.UniformBranchFast {
		t.Fatalf("Branches=%d but UniformBranchFast=%d; every branch here is uniform",
			w.Stats.Branches, w.Stats.UniformBranchFast)
	}
}

// The fast path is an optimisation, not a semantics change: with it
// disabled the same kernel must produce identical registers and cycles.
func TestUniformFastPathPreservesSemantics(t *testing.T) {
	p := uniformLoopProgram(t)
	run := func(disable bool) (*WPU, uint64) {
		cfg := SchemeBranchOnly.Apply(Config{Warps: 2, Width: 4})
		cfg.DisableUniformFast = disable
		w, q, _ := newBareWPU(t, cfg)
		launchSimple(t, w, p, 8, nil)
		return w, runToCompletion(t, w, q)
	}
	fast, fastCycles := run(false)
	slow, slowCycles := run(true)

	if fast.Stats.UniformBranchFast == 0 {
		t.Fatal("fast run did not use the fast path")
	}
	if slow.Stats.UniformBranchFast != 0 {
		t.Fatal("DisableUniformFast did not disable the fast path")
	}
	if fastCycles != slowCycles {
		t.Fatalf("cycle count changed: fast=%d slow=%d", fastCycles, slowCycles)
	}
	for wi := range fast.warps {
		for lane := 0; lane < 4; lane++ {
			for _, r := range []isa.Reg{4, 5, 6} {
				got := fast.warps[wi].regs.Get(lane, r)
				want := slow.warps[wi].regs.Get(lane, r)
				if got != want {
					t.Fatalf("warp %d lane %d r%d: fast=%d slow=%d", wi, lane, r, got, want)
				}
			}
		}
	}
	if fast.Stats.Branches != slow.Stats.Branches {
		t.Fatalf("branch count changed: fast=%d slow=%d", fast.Stats.Branches, slow.Stats.Branches)
	}
}

// benchWPU is newBareWPU without the *testing.T plumbing.
func benchWPU(b *testing.B, cfg Config) (*WPU, *engine.Queue) {
	q := &engine.Queue{}
	h := mem.NewHierarchy(q, 1, mem.HierarchyConfig{
		L1:      mem.L1Config{SizeBytes: 2048, Ways: 2, LineSize: 128, HitLat: 3, Banks: 4, MSHRs: 8},
		L2:      mem.L2Config{SizeBytes: 64 * 1024, Ways: 8, LineSize: 128, LookupLat: 10, ProbeLat: 4, MSHRs: 16},
		XbarLat: 2, XbarOcc: 1, MemBusOcc: 4, DRAMLat: 50,
	})
	w, err := New(0, q, cfg, h.L1s[0], h.Mem, nil)
	if err != nil {
		b.Fatal(err)
	}
	return w, q
}

func benchmarkUniformLoop(b *testing.B, disable bool) {
	p := uniformLoopProgram(b)
	cfg := SchemeBranchOnly.Apply(Config{Warps: 2, Width: 4})
	cfg.DisableUniformFast = disable
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w, q := benchWPU(b, cfg)
		regs := make([]isa.RegFile, 8)
		for tid := range regs {
			regs[tid].Set(1, int64(tid))
			regs[tid].Set(2, 8)
		}
		if err := w.Launch(p, regs); err != nil {
			b.Fatal(err)
		}
		var cycle engine.Cycle
		for !w.Done() {
			q.RunUntil(cycle)
			w.Tick()
			cycle++
		}
	}
}

func BenchmarkUniformBranchFast(b *testing.B)     { benchmarkUniformLoop(b, false) }
func BenchmarkUniformBranchLaneLoop(b *testing.B) { benchmarkUniformLoop(b, true) }
