package wpu

// White-box tests of the split machinery: slot bookkeeping, re-convergence
// stack pops, sync-scope lifecycle, PC/wait merges, the WST bound and the
// subdivision predictor. These drive a real WPU over a tiny memory
// hierarchy and inspect package-private state directly.

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

func newBareWPU(t *testing.T, cfg Config) (*WPU, *engine.Queue, *mem.Hierarchy) {
	t.Helper()
	q := &engine.Queue{}
	h := mem.NewHierarchy(q, 1, mem.HierarchyConfig{
		L1:      mem.L1Config{SizeBytes: 2048, Ways: 2, LineSize: 128, HitLat: 3, Banks: 4, MSHRs: 8},
		L2:      mem.L2Config{SizeBytes: 64 * 1024, Ways: 8, LineSize: 128, LookupLat: 10, ProbeLat: 4, MSHRs: 16},
		XbarLat: 2, XbarOcc: 1, MemBusOcc: 4, DRAMLat: 50,
	})
	w, err := New(0, q, cfg, h.L1s[0], h.Mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	return w, q, h
}

// runToCompletion ticks the WPU (interleaving events) until done,
// releasing barriers when everything parks.
func runToCompletion(t *testing.T, w *WPU, q *engine.Queue) uint64 {
	t.Helper()
	var cycle engine.Cycle
	for i := 0; !w.Done(); i++ {
		if i > 5_000_000 {
			t.Fatalf("WPU did not finish:\n%s", w.DebugDump())
		}
		q.RunUntil(cycle)
		before := w.Progress()
		w.Tick()
		if w.AnyAtBarrier() && w.BarrierReady() {
			w.ReleaseBarrier()
		} else if q.Len() == 0 && w.Progress() == before && !w.Done() {
			t.Fatalf("deadlock at cycle %d:\n%s", cycle, w.DebugDump())
		}
		cycle++
	}
	return uint64(cycle)
}

func launchSimple(t *testing.T, w *WPU, p *program.Program, n int, setup func(tid int, r *isa.RegFile)) {
	t.Helper()
	regs := make([]isa.RegFile, n)
	for i := range regs {
		regs[i].Set(1, int64(i))
		regs[i].Set(2, int64(n))
		if setup != nil {
			setup(i, &regs[i])
		}
	}
	if err := w.Launch(p, regs); err != nil {
		t.Fatal(err)
	}
}

func haltOnly(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder("halt")
	b.Halt()
	return b.MustBuild()
}

func TestLaunchCreatesRootSplits(t *testing.T) {
	w, _, _ := newBareWPU(t, Config{Warps: 2, Width: 4})
	launchSimple(t, w, haltOnly(t), 6, nil) // warp0 full, warp1 half
	if w.splitCount != 2 {
		t.Fatalf("splitCount = %d, want 2", w.splitCount)
	}
	if w.warps[0].live != 0xF {
		t.Fatalf("warp0 live = %#x", uint64(w.warps[0].live))
	}
	if w.warps[1].live != 0x3 {
		t.Fatalf("warp1 live = %#x", uint64(w.warps[1].live))
	}
	for _, warp := range w.warps {
		for _, s := range warp.splits {
			if !s.resident || s.state != Ready || !s.baseStack() {
				t.Fatalf("root split malformed: %v", s)
			}
		}
	}
}

func TestLaunchRejectsWhileRunning(t *testing.T) {
	w, _, _ := newBareWPU(t, Config{Warps: 1, Width: 4})
	b := program.NewBuilder("spin")
	b.Nop()
	b.Halt()
	p := b.MustBuild()
	launchSimple(t, w, p, 4, nil)
	if err := w.Launch(p, make([]isa.RegFile, 4)); err == nil {
		t.Fatal("relaunch while running accepted")
	}
}

func TestSlotBookkeeping(t *testing.T) {
	w, _, _ := newBareWPU(t, Config{Warps: 2, Width: 4, SchedSlots: 1})
	launchSimple(t, w, haltOnly(t), 8, nil)
	// One slot: warp0 resident, warp1 queued.
	if !w.warps[0].splits[0].resident {
		t.Fatal("first split not resident")
	}
	s1 := w.warps[1].splits[0]
	if s1.resident {
		t.Fatal("second split resident despite single slot")
	}
	if len(w.slotWait) != 1 {
		t.Fatalf("slotWait = %d, want 1", len(w.slotWait))
	}
	// Removing the resident split must admit the waiter.
	w.removeSplit(w.warps[0].splits[0])
	if !s1.resident {
		t.Fatal("waiter not admitted after slot freed")
	}
	if w.slots[0] != s1 {
		t.Fatal("slot does not hold the admitted split")
	}
}

func TestAdmitWaiterSkipsDead(t *testing.T) {
	w, _, _ := newBareWPU(t, Config{Warps: 3, Width: 4, SchedSlots: 1})
	launchSimple(t, w, haltOnly(t), 12, nil)
	dead := w.warps[1].splits[0]
	alive := w.warps[2].splits[0]
	// Kill the first waiter while it is still queued.
	w.removeSplit(dead)
	w.removeSplit(w.warps[0].splits[0])
	if !alive.resident {
		t.Fatal("live waiter skipped")
	}
}

func TestWSTRoomCountsAndRefuses(t *testing.T) {
	w, _, _ := newBareWPU(t, Config{Warps: 2, Width: 4, WSTEntries: 2})
	launchSimple(t, w, haltOnly(t), 8, nil)
	if w.wstRoom() {
		t.Fatal("WST reported room at capacity")
	}
	if w.Stats.WSTFullRefusals != 1 {
		t.Fatalf("refusals = %d, want 1", w.Stats.WSTFullRefusals)
	}
	w.removeSplit(w.warps[0].splits[0])
	if !w.wstRoom() {
		t.Fatal("WST full after a removal")
	}
}

// postPCUpdate must pop serialised branch paths at their re-convergence PC
// and switch to the sibling path.
func TestPostPCUpdatePopsStack(t *testing.T) {
	w, _, _ := newBareWPU(t, Config{Warps: 1, Width: 4})
	launchSimple(t, w, haltOnly(t), 4, nil)
	s := w.warps[0].splits[0]
	// Manufacture a serialised divergence: taken at pc 5, sibling at pc 9,
	// re-converging at pc 12.
	s.tos().PC = 12
	s.stack = append(s.stack,
		StackEntry{ReconvPC: 12, PC: 9, Mask: 0x3},
		StackEntry{ReconvPC: 12, PC: 5, Mask: 0xC},
	)
	s.pc = 5
	s.mask = 0xC
	// Taken path reaches the post-dominator.
	s.pc = 12
	w.postPCUpdate(s)
	if s.pc != 9 || s.mask != 0x3 {
		t.Fatalf("after pop: pc=%d mask=%#x, want sibling 9/0x3", s.pc, uint64(s.mask))
	}
	// Sibling reaches it too: resume the parent mask at the join.
	s.pc = 12
	w.postPCUpdate(s)
	if s.pc != 12 || s.mask != 0xF || !s.baseStack() {
		t.Fatalf("after second pop: pc=%d mask=%#x depth=%d", s.pc, uint64(s.mask), len(s.stack))
	}
}

func TestPostPCUpdateRetiresEmptyMask(t *testing.T) {
	w, _, _ := newBareWPU(t, Config{Warps: 1, Width: 4})
	launchSimple(t, w, haltOnly(t), 4, nil)
	s := w.warps[0].splits[0]
	w.warpHalt(s.warp, 0xF)
	w.postPCUpdate(s)
	if s.state != Dead || w.splitCount != 0 {
		t.Fatalf("empty-mask split not retired: %v, count %d", s, w.splitCount)
	}
}

func TestScopeArrivalAndCompletion(t *testing.T) {
	w, _, _ := newBareWPU(t, Config{Warps: 1, Width: 4})
	launchSimple(t, w, haltOnly(t), 4, nil)
	root := w.warps[0].splits[0]
	sc := &SyncScope{warp: root.warp, reconvPC: 7, expected: 0xF,
		frozen: []StackEntry{{ReconvPC: program.NoIPdom, PC: 0, Mask: 0xF}}}
	a := w.newSplit(root.warp, 0x3, 7, sc)
	b := w.newSplit(root.warp, 0xC, 7, sc)
	w.removeSplit(root)
	w.addSplit(a)
	w.addSplit(b)

	w.arriveAtScope(a)
	if sc.arrived != 0x3 {
		t.Fatalf("arrived = %#x", uint64(sc.arrived))
	}
	if w.splitCount != 1 {
		t.Fatalf("splitCount = %d after first arrival", w.splitCount)
	}
	w.arriveAtScope(b)
	// Scope complete: a merged split with the full mask exists at pc 7.
	if w.splitCount != 1 {
		t.Fatalf("splitCount = %d after completion", w.splitCount)
	}
	merged := w.warps[0].splits[0]
	if merged.mask != 0xF || merged.pc != 7 || merged.state != Ready {
		t.Fatalf("merged split wrong: %v", merged)
	}
	if w.Stats.ScopeMerges != 1 {
		t.Fatalf("ScopeMerges = %d", w.Stats.ScopeMerges)
	}
}

func TestScopeCompletionExcludesHalted(t *testing.T) {
	w, _, _ := newBareWPU(t, Config{Warps: 1, Width: 4})
	launchSimple(t, w, haltOnly(t), 4, nil)
	root := w.warps[0].splits[0]
	sc := &SyncScope{warp: root.warp, reconvPC: 7, expected: 0xF,
		frozen: []StackEntry{{ReconvPC: program.NoIPdom, PC: 0, Mask: 0xF}}}
	a := w.newSplit(root.warp, 0x3, 7, sc)
	b := w.newSplit(root.warp, 0xC, 3, sc)
	w.removeSplit(root)
	w.addSplit(a)
	w.addSplit(b)
	w.arriveAtScope(a)
	// b's threads halt before reaching the scope.
	w.warpHalt(b.warp, 0xC)
	b.mask = 0
	w.postPCUpdate(b) // retires b, subtracts from the scope
	if w.splitCount != 1 {
		t.Fatalf("splitCount = %d, want merged survivor only", w.splitCount)
	}
	merged := w.warps[0].splits[0]
	if merged.mask != 0x3 {
		t.Fatalf("merged mask = %#x, want surviving threads 0x3", uint64(merged.mask))
	}
}

func TestSyncPCInheritance(t *testing.T) {
	w, _, _ := newBareWPU(t, Config{Warps: 1, Width: 4})
	launchSimple(t, w, haltOnly(t), 4, nil)
	s := w.warps[0].splits[0]
	if s.syncPC() != program.NoIPdom {
		t.Fatalf("root syncPC = %d", s.syncPC())
	}
	s.stack = append(s.stack, StackEntry{ReconvPC: 42, PC: 1, Mask: 0xF})
	if s.syncPC() != 42 {
		t.Fatalf("stacked syncPC = %d, want 42", s.syncPC())
	}
	s.stack = s.stack[:1]
	s.scope = &SyncScope{reconvPC: 17}
	if s.syncPC() != 17 {
		t.Fatalf("scoped syncPC = %d, want inherited 17", s.syncPC())
	}
}

func TestTryPCMergeRequiresSameContext(t *testing.T) {
	w, _, _ := newBareWPU(t, Config{Warps: 1, Width: 4, PCReconv: true})
	launchSimple(t, w, haltOnly(t), 4, nil)
	root := w.warps[0].splits[0]
	w.removeSplit(root)
	scA := &SyncScope{warp: root.warp, reconvPC: 9}
	a := w.newSplit(root.warp, 0x3, 5, scA)
	b := w.newSplit(root.warp, 0xC, 5, nil) // different scope: no merge
	w.addSplit(a)
	w.addSplit(b)
	w.tryPCMerge(a)
	if w.splitCount != 2 {
		t.Fatal("merged across different scopes")
	}
	b.scope = scA
	w.tryPCMerge(a)
	if w.splitCount != 1 || a.mask != 0xF {
		t.Fatalf("same-scope merge failed: count=%d mask=%#x", w.splitCount, uint64(a.mask))
	}
	if w.Stats.PCMerges != 1 {
		t.Fatalf("PCMerges = %d", w.Stats.PCMerges)
	}
}

func TestPredictorTrainsAndVetoes(t *testing.T) {
	var p subdivPredictor
	pc := 12
	if !p.allow(pc) {
		t.Fatal("fresh predictor must be weakly taken")
	}
	p.train(pc, false)
	p.train(pc, false)
	if p.allow(pc) {
		t.Fatal("predictor did not learn failures")
	}
	if p.Vetoes == 0 {
		t.Fatal("veto not counted")
	}
	p.train(pc, true)
	p.train(pc, true)
	if !p.allow(pc) {
		t.Fatal("predictor did not recover on successes")
	}
	if p.Successes != 2 || p.Failures != 2 {
		t.Fatalf("train counters: %d/%d", p.Successes, p.Failures)
	}
}

func TestPredictorSaturates(t *testing.T) {
	var p subdivPredictor
	pc := 5
	for i := 0; i < 10; i++ {
		p.train(pc, true)
	}
	if p.table[p.idx(pc)] != predictorMax {
		t.Fatal("counter exceeded max")
	}
	for i := 0; i < 10; i++ {
		p.train(pc, false)
	}
	if p.table[p.idx(pc)] != 0 {
		t.Fatal("counter went negative")
	}
}

// End-to-end: a kernel whose threads halt inside divergent arms must still
// terminate, exercising the halt-driven stack pops.
func TestHaltInsideDivergentArm(t *testing.T) {
	b := program.NewBuilder("halt-in-arm")
	b.Andi(9, 1, 1)
	b.Bnez(9, "odd")
	b.Movi(10, 1)
	b.Halt() // even threads die inside the arm
	b.Label("odd")
	b.Movi(10, 2)
	b.Halt()
	p := b.MustBuild()

	for _, scheme := range []Scheme{SchemeConv, SchemeBranchOnly, SchemeRevive} {
		cfg := scheme.Apply(Config{Warps: 2, Width: 4})
		w, q, _ := newBareWPU(t, cfg)
		launchSimple(t, w, p, 8, nil)
		runToCompletion(t, w, q)
	}
}

// End-to-end: nested divergence with halts on every path.
func TestNestedDivergenceWithMixedHalts(t *testing.T) {
	b := program.NewBuilder("nested-halts")
	b.Andi(9, 1, 1)
	b.Bnez(9, "outer")
	b.Andi(10, 1, 2)
	b.Bnez(10, "innerB")
	b.Movi(11, 1)
	b.Jmp("join")
	b.Label("innerB")
	b.Movi(11, 2)
	b.Label("join")
	b.Addi(11, 11, 10)
	b.Halt()
	b.Label("outer")
	b.Movi(11, 3)
	b.Halt()
	p := b.MustBuild()

	for _, scheme := range AllSchemes {
		cfg := scheme.Apply(Config{Warps: 2, Width: 8})
		w, q, _ := newBareWPU(t, cfg)
		launchSimple(t, w, p, 16, nil)
		runToCompletion(t, w, q)
		for lane := 0; lane < 8; lane++ {
			for wi := 0; wi < 2; wi++ {
				tid := wi*8 + lane
				got := w.warps[wi].regs.Get(lane, 11)
				want := int64(11) // inner A path
				switch {
				case tid&1 == 1:
					want = 3
				case tid&2 == 2:
					want = 12
				}
				if got != want {
					t.Fatalf("%s: thread %d r11 = %d, want %d", scheme, tid, got, want)
				}
			}
		}
	}
}

// The WST bound must hold at every instant, whatever the policy mix.
func TestWSTBoundNeverExceeded(t *testing.T) {
	b := program.NewBuilder("churn")
	b.Mov(8, 1)
	b.Movi(12, 0)
	b.Label("loop")
	b.Slti(9, 12, 6)
	b.Beqz(9, "done")
	b.Andi(10, 8, 3)
	b.Muli(11, 8, 128)
	b.Andi(11, 11, 4095)
	b.Add(13, 4, 11)
	b.Ld(14, 13, 0) // scattered loads: memory divergence
	b.Bnez(10, "skip")
	b.Addi(14, 14, 1)
	b.Label("skip")
	b.Muli(8, 8, 7)
	b.Addi(8, 8, 3)
	b.Addi(12, 12, 1)
	b.Jmp("loop")
	b.Label("done")
	b.Halt()
	p := b.MustBuild()

	cfg := SchemeAggress.Apply(Config{Warps: 4, Width: 8, WSTEntries: 6})
	w, q, _ := newBareWPU(t, cfg)
	launchSimple(t, w, p, 32, func(tid int, r *isa.RegFile) {
		r.Set(4, 1<<20)
	})
	var cycle engine.Cycle
	for !w.Done() {
		q.RunUntil(cycle)
		w.Tick()
		if w.splitCount > 6 {
			t.Fatalf("WST bound exceeded: %d > 6", w.splitCount)
		}
		cycle++
		if cycle > 1_000_000 {
			t.Fatal("kernel did not finish")
		}
	}
	if w.Stats.PeakSplits > 6 {
		t.Fatalf("PeakSplits = %d > bound", w.Stats.PeakSplits)
	}
}
