package wpu

import (
	"testing"
	"testing/quick"
)

func TestFullMask(t *testing.T) {
	if FullMask(4) != 0xF {
		t.Fatalf("FullMask(4) = %#x", uint64(FullMask(4)))
	}
	if FullMask(64) != ^Mask(0) {
		t.Fatal("FullMask(64) should be all ones")
	}
	if FullMask(1) != 1 {
		t.Fatal("FullMask(1) wrong")
	}
}

func TestMaskOps(t *testing.T) {
	m := LaneMask(3) | LaneMask(7)
	if m.Count() != 2 {
		t.Fatalf("Count = %d", m.Count())
	}
	if !m.Has(3) || !m.Has(7) || m.Has(0) {
		t.Fatal("Has misreports")
	}
	if m.Empty() || !Mask(0).Empty() {
		t.Fatal("Empty misreports")
	}
	var lanes []int
	m.Lanes(func(l int) { lanes = append(lanes, l) })
	if len(lanes) != 2 || lanes[0] != 3 || lanes[1] != 7 {
		t.Fatalf("Lanes = %v", lanes)
	}
}

func TestPropertyMaskLanesMatchesCount(t *testing.T) {
	f := func(v uint64) bool {
		m := Mask(v)
		n := 0
		m.Lanes(func(l int) {
			if !m.Has(l) {
				t.Fatalf("lane %d reported but not set", l)
			}
			n++
		})
		return n == m.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	ok := Config{Warps: 4, Width: 16}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Warps: 0, Width: 16},
		{Warps: 4, Width: 0},
		{Warps: 4, Width: 128},
		{Warps: 4, Width: 16, Slip: SlipOn, MemScheme: ReviveSplit},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d validated but should not", i)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Warps: 4, Width: 16}.withDefaults()
	if c.SchedSlots != 8 {
		t.Fatalf("SchedSlots = %d, want 8 (2x warps)", c.SchedSlots)
	}
	if c.WSTEntries != 16 {
		t.Fatalf("WSTEntries = %d, want 16", c.WSTEntries)
	}
	if c.SlipInterval != 100000 || c.SlipRaise != 0.70 || c.SlipLower != 0.50 {
		t.Fatal("slip defaults wrong")
	}
}

func TestSchemesApply(t *testing.T) {
	base := Config{Warps: 4, Width: 16}
	cases := []struct {
		s      Scheme
		branch bool
		pc     bool
		mem    MemScheme
		rec    MemReconv
		slip   SlipMode
	}{
		{SchemeConv, false, false, MemNone, BranchBypass, SlipOff},
		{SchemeBranchOnlyStack, true, false, MemNone, BranchBypass, SlipOff},
		{SchemeBranchOnly, true, true, MemNone, BranchBypass, SlipOff},
		{SchemeAggressBL, false, true, AggressSplit, BranchLimited, SlipOff},
		{SchemeLazyBL, false, true, LazySplit, BranchLimited, SlipOff},
		{SchemeReviveBL, false, true, ReviveSplit, BranchLimited, SlipOff},
		{SchemeReviveMemOnly, false, true, ReviveSplit, BranchBypass, SlipOff},
		{SchemeAggress, true, true, AggressSplit, BranchBypass, SlipOff},
		{SchemeLazy, true, true, LazySplit, BranchBypass, SlipOff},
		{SchemeRevive, true, true, ReviveSplit, BranchBypass, SlipOff},
		{SchemePredictive, true, true, PredictiveSplit, BranchBypass, SlipOff},
		{SchemeSlip, false, false, MemNone, BranchBypass, SlipOn},
		{SchemeSlipBranchBypass, true, true, MemNone, BranchBypass, SlipBranchBypass},
	}
	for _, c := range cases {
		got := c.s.Apply(base)
		if got.SubdivideOnBranch != c.branch || got.PCReconv != c.pc ||
			got.MemScheme != c.mem || got.MemReconv != c.rec || got.Slip != c.slip {
			t.Errorf("%s applied wrong: %+v", c.s, got)
		}
		if err := got.Validate(); err != nil {
			t.Errorf("%s: %v", c.s, err)
		}
	}
}

func TestAllSchemesListed(t *testing.T) {
	if len(AllSchemes) != 13 {
		t.Fatalf("AllSchemes has %d entries, want 13", len(AllSchemes))
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{TickCycles: 18, BusyCycles: 10, StallMemCoherent: 3,
		StallMemDivergent: 2, StallBarrier: 3, Issued: 7, PeakSplits: 3}
	b := Stats{TickCycles: 3, BusyCycles: 1, StallICache: 1, StallWSTFull: 1,
		StallSlotWait: 1, IdleNoLiveWarp: 1, Issued: 3, PeakSplits: 5}
	a.Add(&b)
	if a.BusyCycles != 11 || a.MemStallCycles() != 5 || a.StallOtherCycles() != 7 {
		t.Fatalf("cycle sums wrong: %+v", a)
	}
	if a.Issued != 10 || a.PeakSplits != 5 {
		t.Fatalf("Issued/PeakSplits wrong: %+v", a)
	}
	if a.Cycles() != 21 {
		t.Fatalf("Cycles = %d, want 21", a.Cycles())
	}
	if a.StallSum() != 23 {
		t.Fatalf("StallSum = %d, want 23", a.StallSum())
	}
}

func TestStatsDerived(t *testing.T) {
	s := Stats{Issued: 4, WidthAccum: 40, TickCycles: 100, BusyCycles: 25,
		StallMemCoherent: 50, StallMemDivergent: 25}
	if s.MeanSIMDWidth() != 10 {
		t.Fatalf("MeanSIMDWidth = %g", s.MeanSIMDWidth())
	}
	if s.MemStallFraction() != 0.75 {
		t.Fatalf("MemStallFraction = %g", s.MemStallFraction())
	}
	if s.StallSum() != s.Cycles() {
		t.Fatalf("StallSum %d != Cycles %d", s.StallSum(), s.Cycles())
	}
	var zero Stats
	if zero.MeanSIMDWidth() != 0 || zero.MemStallFraction() != 0 {
		t.Fatal("zero stats should yield zero derived values")
	}
}
