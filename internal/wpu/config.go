package wpu

import "fmt"

// MemScheme selects when a warp subdivides upon memory divergence (§5.2).
type MemScheme uint8

const (
	// MemNone disables subdivision on memory divergence: the whole SIMD
	// group waits for its slowest thread (the conventional behaviour).
	MemNone MemScheme = iota
	// AggressSplit subdivides on every memory divergence.
	AggressSplit
	// LazySplit subdivides only when no other SIMD group on the WPU is
	// ready to issue.
	LazySplit
	// ReviveSplit extends LazySplit: when the pipeline stalls, one
	// suspended SIMD group whose outstanding requests have partially
	// completed is subdivided so the satisfied threads can run ahead.
	ReviveSplit
	// PredictiveSplit extends ReviveSplit with the paper's §8 future-work
	// idea: a per-PC miss-history predictor estimates whether a run-ahead
	// split will issue another long-latency request before its fall-behind
	// sibling resumes (the Figure 10 failure case), and vetoes subdivision
	// when past run-aheads at this PC achieved nothing.
	PredictiveSplit
)

func (s MemScheme) String() string {
	switch s {
	case MemNone:
		return "none"
	case AggressSplit:
		return "aggress"
	case LazySplit:
		return "lazy"
	case ReviveSplit:
		return "revive"
	case PredictiveSplit:
		return "predictive"
	}
	return "?"
}

// MemReconv selects how memory-divergence warp-splits behave at branches
// (§5.3).
type MemReconv uint8

const (
	// BranchLimited forces warp-splits born of memory divergence to stall
	// and re-merge at the next conditional branch or post-dominator, keeping
	// the re-convergence stack authoritative (§5.3.1).
	BranchLimited MemReconv = iota
	// BranchBypass lets run-ahead warp-splits pass branches (subdividing
	// further on divergent ones) and loop boundaries, re-converging via the
	// PC-based mechanism (§5.3.2).
	BranchBypass
)

func (r MemReconv) String() string {
	if r == BranchLimited {
		return "branch-limited"
	}
	return "branch-bypass"
}

// SlipMode selects the adaptive-slip baseline (§5.7) instead of DWS memory
// subdivision.
type SlipMode uint8

const (
	// SlipOff disables adaptive slip.
	SlipOff SlipMode = iota
	// SlipOn is Tarjan et al.'s adaptive slip without branch predication:
	// run-ahead threads stall at conditional branches.
	SlipOn
	// SlipBranchBypass combines slip with DWS branch subdivision so
	// run-ahead threads can slip past branches into later iterations.
	SlipBranchBypass
)

func (s SlipMode) String() string {
	switch s {
	case SlipOff:
		return "off"
	case SlipOn:
		return "slip"
	case SlipBranchBypass:
		return "slip-bb"
	}
	return "?"
}

// Config describes one WPU's microarchitecture and DWS policy.
type Config struct {
	// Warps and Width give the multi-threading depth and SIMD width
	// (Table 3: 4 warps × 16 lanes = 64 thread contexts).
	Warps int
	Width int

	// SchedSlots bounds how many SIMD groups the scheduler tracks at once
	// (§5.6 doubles a conventional scheduler: 2×Warps). 0 means 2×Warps.
	SchedSlots int
	// WSTEntries bounds the total number of scheduling entities (full warps
	// count as root warp-splits). Subdivision is refused when the table is
	// full. 0 means 16 (§5.6).
	WSTEntries int

	// ICacheLines and ICacheWays size the per-WPU instruction cache
	// (Table 3: 16 KB 4-way with 128 B lines = 128 lines). IMissLat is the
	// refill penalty charged to issue on a cold fetch (crossbar + L2).
	// Zero values select the Table 3 defaults.
	ICacheLines int
	ICacheWays  int
	IMissLat    int

	// SubdivideOnBranch enables DWS upon branch divergence (§4) at branches
	// the compiler marked subdividable.
	SubdivideOnBranch bool
	// BranchLazyThreshold gates branch subdivision on need: a divergent
	// subdividable branch subdivides only when fewer than this many other
	// SIMD groups are ready to issue (the pipeline is about to run dry).
	// 0 selects the default of 2.
	BranchLazyThreshold int
	// PCReconv enables PC-based re-convergence (§4.5): ready sibling
	// warp-splits at the same PC re-unite. Without it only stack-based
	// re-convergence applies.
	PCReconv bool
	// MemScheme enables DWS upon memory divergence (§5).
	MemScheme MemScheme
	// MemReconv selects BranchLimited or BranchBypass behaviour for
	// memory-divergence splits.
	MemReconv MemReconv
	// Slip selects the adaptive-slip baseline; it must be SlipOff when
	// MemScheme is not MemNone.
	Slip SlipMode

	// Ablation switches (beyond-paper; used by the ablation study to
	// quantify this implementation's design choices).
	//
	// DisableWaitMerge turns off re-convergence of SIMD groups suspended
	// at the same PC, leaving only ready-ready PC merges.
	DisableWaitMerge bool
	// DisableUniformFast turns off the statically-uniform branch fast path
	// (single-lane predicate evaluation for branches the divergence
	// analysis proved uniform, see program.BranchInfo.Uniform); every
	// branch is then evaluated lane by lane. The trace-backed concordance
	// test uses this so that any divergence the analysis failed to predict
	// is observed rather than assumed away.
	DisableUniformFast bool
	// DisableProgSched replaces least-progressed-first issue with plain
	// round-robin over the scheduler slots.
	DisableProgSched bool
	// DisableMemHints ignores the static access-class hints
	// (isa.DFMemHint): every memory access keeps the full
	// subdivide-on-miss probe path even where the analysis proved the
	// probe fruitless. Behaviour-neutral by construction — a hinted
	// (warp-uniform) access occupies one line group and can never
	// hit/miss-diverge, so the probe it skips would never fire — this
	// knob exists to measure the pruned probe work (Stats.MemDivHintSkips).
	DisableMemHints bool

	// LaneTidStep is the global-thread-id distance between adjacent lanes
	// of a warp: 1 under block thread distribution (the default; 0 means
	// 1), the WPU count under interleaved distribution. The launcher
	// (internal/sim) sets it; the static per-pc transaction bounds are
	// scaled by it so the trace-backed concordance check stays sound for
	// any distribution.
	LaneTidStep int

	// SlipInterval, SlipRaise and SlipLower are the adaptive-slip profiling
	// parameters from §5.7: every SlipInterval cycles the maximum allowed
	// thread divergence is incremented when the WPU waited for memory more
	// than SlipRaise of the time and decremented when it actively executed
	// more than SlipLower of the time. Zero values select the paper's
	// 100000 cycles / 0.70 / 0.50.
	SlipInterval uint64
	SlipRaise    float64
	SlipLower    float64
}

// Normalized returns the configuration with every derived default filled
// in, exactly as New applies it — for callers (sim.CostParamsFor) that
// need the effective values without building a WPU.
func (c Config) Normalized() Config { return c.withDefaults() }

// withDefaults fills derived defaults.
func (c Config) withDefaults() Config {
	if c.SchedSlots <= 0 {
		c.SchedSlots = 2 * c.Warps
	}
	if c.WSTEntries <= 0 {
		c.WSTEntries = 16
	}
	if c.BranchLazyThreshold <= 0 {
		c.BranchLazyThreshold = 2
	}
	if c.ICacheLines <= 0 {
		c.ICacheLines = icacheDefaultLines
	}
	if c.ICacheWays <= 0 {
		c.ICacheWays = icacheDefaultWays
	}
	if c.IMissLat <= 0 {
		c.IMissLat = 42 // crossbar round trip + L2 lookup
	}
	if c.SlipInterval == 0 {
		c.SlipInterval = 100000
	}
	if c.SlipRaise == 0 {
		c.SlipRaise = 0.70
	}
	if c.SlipLower == 0 {
		c.SlipLower = 0.50
	}
	return c
}

// Validate rejects contradictory configurations.
func (c Config) Validate() error {
	if c.Warps <= 0 || c.Width <= 0 {
		return fmt.Errorf("wpu: need positive warps (%d) and width (%d)", c.Warps, c.Width)
	}
	if c.Width > 64 {
		return fmt.Errorf("wpu: width %d exceeds the 64-lane mask limit", c.Width)
	}
	if c.Slip != SlipOff && c.MemScheme != MemNone {
		return fmt.Errorf("wpu: adaptive slip and DWS memory subdivision are exclusive")
	}
	return nil
}

// Scheme names a paper configuration and expands to policy settings.
type Scheme string

// The named configurations evaluated in the paper (Figures 7, 11 and 13).
const (
	SchemeConv             Scheme = "Conv"
	SchemePredictive       Scheme = "DWS.PredictiveSplit"
	SchemeBranchOnlyStack  Scheme = "DWS.BranchOnly.Stack"
	SchemeBranchOnly       Scheme = "DWS.BranchOnly"
	SchemeAggressBL        Scheme = "DWS.AggressSplit.BL"
	SchemeLazyBL           Scheme = "DWS.LazySplit.BL"
	SchemeReviveBL         Scheme = "DWS.ReviveSplit.BL"
	SchemeReviveMemOnly    Scheme = "DWS.ReviveSplit.MemOnly"
	SchemeAggress          Scheme = "DWS.AggressSplit"
	SchemeLazy             Scheme = "DWS.LazySplit"
	SchemeRevive           Scheme = "DWS.ReviveSplit"
	SchemeSlip             Scheme = "Slip"
	SchemeSlipBranchBypass Scheme = "Slip.BranchBypass"
)

// AllSchemes lists every named configuration in presentation order.
var AllSchemes = []Scheme{
	SchemeConv,
	SchemeBranchOnlyStack,
	SchemeBranchOnly,
	SchemeAggressBL,
	SchemeLazyBL,
	SchemeReviveBL,
	SchemeReviveMemOnly,
	SchemeAggress,
	SchemeLazy,
	SchemeRevive,
	SchemePredictive,
	SchemeSlip,
	SchemeSlipBranchBypass,
}

// Apply overlays the scheme's policy settings onto a base configuration.
func (s Scheme) Apply(c Config) Config {
	c.SubdivideOnBranch = false
	c.PCReconv = false
	c.MemScheme = MemNone
	c.MemReconv = BranchBypass
	c.Slip = SlipOff
	switch s {
	case SchemeConv:
	case SchemeBranchOnlyStack:
		c.SubdivideOnBranch = true
	case SchemeBranchOnly:
		c.SubdivideOnBranch = true
		c.PCReconv = true
	case SchemeAggressBL:
		c.MemScheme = AggressSplit
		c.MemReconv = BranchLimited
		c.PCReconv = true
	case SchemeLazyBL:
		c.MemScheme = LazySplit
		c.MemReconv = BranchLimited
		c.PCReconv = true
	case SchemeReviveBL:
		c.MemScheme = ReviveSplit
		c.MemReconv = BranchLimited
		c.PCReconv = true
	case SchemeReviveMemOnly:
		c.MemScheme = ReviveSplit
		c.PCReconv = true
	case SchemeAggress:
		c.SubdivideOnBranch = true
		c.PCReconv = true
		c.MemScheme = AggressSplit
	case SchemeLazy:
		c.SubdivideOnBranch = true
		c.PCReconv = true
		c.MemScheme = LazySplit
	case SchemeRevive:
		c.SubdivideOnBranch = true
		c.PCReconv = true
		c.MemScheme = ReviveSplit
	case SchemePredictive:
		c.SubdivideOnBranch = true
		c.PCReconv = true
		c.MemScheme = PredictiveSplit
	case SchemeSlip:
		c.Slip = SlipOn
	case SchemeSlipBranchBypass:
		c.Slip = SlipBranchBypass
		c.SubdivideOnBranch = true
		c.PCReconv = true
	default:
		panic("wpu: unknown scheme " + string(s))
	}
	return c
}
