// Package wpu implements the warp processing unit: SIMD warps over scalar
// lanes, the conventional re-convergence stack, and the paper's dynamic
// warp subdivision (DWS) mechanisms — the warp-split table, every
// subdivision scheme (AggressSplit, LazySplit, ReviveSplit), every
// re-convergence scheme (stack-based, PC-based, BranchLimited,
// BranchBypass) — plus the adaptive-slip baseline it is compared against.
package wpu

import "math/bits"

// Mask is a set of lanes (threads) within one warp, at most 64 wide.
type Mask uint64

// FullMask returns the mask with the first width lanes set.
func FullMask(width int) Mask {
	if width >= 64 {
		return ^Mask(0)
	}
	return Mask(1)<<uint(width) - 1
}

// LaneMask returns the mask containing only the given lane.
func LaneMask(lane int) Mask { return Mask(1) << uint(lane) }

// Count returns the number of lanes in the mask.
func (m Mask) Count() int { return bits.OnesCount64(uint64(m)) }

// Has reports whether lane is in the mask.
func (m Mask) Has(lane int) bool { return m&LaneMask(lane) != 0 }

// Empty reports whether no lanes are set.
func (m Mask) Empty() bool { return m == 0 }

// First returns the lowest set lane. Undefined on an empty mask (64).
func (m Mask) First() int { return bits.TrailingZeros64(uint64(m)) }

// Lanes iterates the set lanes in ascending order.
func (m Mask) Lanes(fn func(lane int)) {
	for v := uint64(m); v != 0; v &= v - 1 {
		fn(bits.TrailingZeros64(v))
	}
}
