package wpu

// Scheme-equivalence fuzzing: generate random structured kernels — nested
// data-dependent branches, bounded loops with data-dependent early exits,
// scattered loads, thread-private stores — and check that every scheduling
// policy (Conv, every DWS variant, both slip baselines) produces exactly
// the same architectural results. Warp subdivision must only ever change
// timing, never outcomes.
//
// Loads target a read-only table and stores are thread-private, so results
// are schedule-independent by construction; any divergence between schemes
// is a subdivision/re-convergence bug.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
)

// fuzzKernel builds a random structured kernel. Registers: r8-r13 data,
// r14-r15 loop counters/temps, r16+ scratch. ABI: r4 = &roTable (mask
// tableMask), r5 = &out (4 words per thread), r6 = tableMask.
func fuzzKernel(rng *rand.Rand) *program.Program {
	b := program.NewBuilder("fuzz")
	label := 0
	fresh := func(prefix string) string {
		label++
		return fmt.Sprintf("%s%d", prefix, label)
	}
	dataReg := func() isa.Reg { return isa.Reg(8 + rng.Intn(6)) }

	emitALU := func() {
		d, a, c := dataReg(), dataReg(), dataReg()
		switch rng.Intn(7) {
		case 0:
			b.Add(d, a, c)
		case 1:
			b.Sub(d, a, c)
		case 2:
			b.Xor(d, a, c)
		case 3:
			b.Muli(d, a, int64(rng.Intn(7)+1))
		case 4:
			b.Andi(d, a, int64(rng.Intn(255)+1))
		case 5:
			b.Addi(d, a, int64(rng.Intn(32)-16))
		case 6:
			b.Shri(d, a, int64(rng.Intn(3)+1))
		}
	}
	emitLoad := func() {
		a := dataReg()
		d := dataReg()
		b.And(16, a, 6) // index = reg & tableMask
		b.Shli(16, 16, 3)
		b.Add(16, 16, 4)
		b.Ld(d, 16, 0)
	}
	emitStore := func(slot int) {
		v := dataReg()
		b.Shli(17, 1, 5) // tid * 32 bytes (4 private words)
		b.Add(17, 17, 5)
		b.St(v, 17, int64(slot%4)*8)
	}

	// Seed the data registers from the thread ID.
	for r := isa.Reg(8); r <= 13; r++ {
		b.Muli(r, 1, int64(rng.Intn(97)+3))
		b.Addi(r, r, int64(rng.Intn(50)))
	}

	var emitBlock func(depth int)
	emitBlock = func(depth int) {
		n := rng.Intn(3) + 1
		for i := 0; i < n; i++ {
			switch choice := rng.Intn(10); {
			case choice < 4:
				emitALU()
			case choice < 6:
				emitLoad()
			case choice < 7:
				emitStore(rng.Intn(4))
			case choice < 9 && depth < 3:
				// Data-dependent if/else.
				cond := dataReg()
				armT, join := fresh("t"), fresh("j")
				b.Andi(18, cond, int64(1<<rng.Intn(3)))
				b.Bnez(18, armT)
				emitBlock(depth + 1)
				b.Jmp(join)
				b.Label(armT)
				emitBlock(depth + 1)
				b.Label(join)
			case depth < 3:
				// Bounded loop with a data-dependent early exit. Each
				// nesting depth owns its counter register, or an inner loop
				// would reset the outer's count and never terminate.
				ctr := []isa.Reg{14, 15, 19}[depth]
				head, exit := fresh("h"), fresh("x")
				iters := int64(rng.Intn(4) + 2)
				b.Movi(ctr, iters)
				b.Label(head)
				emitBlock(depth + 1)
				// Early exit when a data register's low bits align.
				b.Andi(18, dataReg(), 7)
				b.Seq(18, 18, 0)
				b.Bnez(18, exit)
				b.Addi(ctr, ctr, -1)
				b.Bnez(ctr, head)
				b.Label(exit)
			default:
				emitALU()
			}
		}
	}
	emitBlock(0)

	// Publish the final data registers.
	for slot := 0; slot < 4; slot++ {
		v := isa.Reg(8 + slot)
		b.Shli(17, 1, 5)
		b.Add(17, 17, 5)
		b.St(v, 17, int64(slot)*8)
	}
	b.Halt()
	return b.MustBuild()
}

func TestFuzzSchemesComputeIdenticalResults(t *testing.T) {
	const (
		seeds      = 12
		threads    = 16
		tableWords = 8 // mask 7, but kernels use r6=6 — any power-of-two-ish mask works
	)
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			p := fuzzKernel(rand.New(rand.NewSource(seed)))
			var golden []int64
			for _, scheme := range AllSchemes {
				cfg := scheme.Apply(Config{Warps: 2, Width: 8, WSTEntries: 8, SchedSlots: 4})
				w, q, h := newBareWPU(t, cfg)
				table := h.Mem.AllocWords(tableWords)
				out := h.Mem.AllocWords(threads * 4)
				for i := 0; i < tableWords; i++ {
					h.Mem.Write(table+uint64(i)*8, int64(i*37+5))
				}
				launchSimple(t, w, p, threads, func(tid int, r *isa.RegFile) {
					r.Set(4, int64(table))
					r.Set(5, int64(out))
					r.Set(6, 6)
				})
				runToCompletion(t, w, q)
				got := make([]int64, threads*4)
				for i := range got {
					got[i] = h.Mem.Read(out + uint64(i)*8)
				}
				if golden == nil {
					golden = got
					continue
				}
				for i := range got {
					if got[i] != golden[i] {
						t.Fatalf("%s: out[%d] = %d, Conv computed %d\nkernel:\n%s",
							scheme, i, got[i], golden[i], p.Disassemble())
					}
				}
			}
		})
	}
}
