package wpu

// Unit tests of the adaptive-slip machinery (§5.7): the divergence cap,
// PC-revisit absorption, swap-in at stalls, scope-context rules, and
// orphan promotion.

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
)

func slipWPU(t *testing.T) *WPU {
	t.Helper()
	w, _, _ := newBareWPU(t, SchemeSlip.Apply(Config{Warps: 1, Width: 8}))
	launchSimple(t, w, haltOnly(t), 8, nil)
	return w
}

func TestTrySlipMovesThreadsAside(t *testing.T) {
	w := slipWPU(t)
	s := w.warps[0].splits[0]
	s.pc = 5
	if !w.trySlip(s, 0x0F, 0xF0) {
		t.Fatal("slip refused within cap")
	}
	if s.mask != 0x0F || s.state != WaitMem || s.pending != 0x0F {
		t.Fatalf("run-ahead state wrong: %v pending=%#x", s, uint64(s.pending))
	}
	if len(s.slipped) != 1 {
		t.Fatalf("slipped entries = %d", len(s.slipped))
	}
	e := s.slipped[0]
	if e.mask != 0xF0 || e.pc != 5 || e.pending != 0xF0 {
		t.Fatalf("slip entry wrong: %+v", e)
	}
	if w.Stats.SlipEvents != 1 {
		t.Fatal("SlipEvents not counted")
	}
}

func TestTrySlipRespectsCap(t *testing.T) {
	w := slipWPU(t)
	w.maxSlip = 3
	s := w.warps[0].splits[0]
	if w.trySlip(s, 0x0F, 0xF0) { // 4 threads > cap 3
		t.Fatal("slip exceeded the divergence cap")
	}
	if w.Stats.SlipRefused != 1 {
		t.Fatal("refusal not counted")
	}
	if w.trySlip(s, 0xF8, 0x07) { // 3 more... wait: 3 <= 3 OK
	} else {
		t.Fatal("slip refused within cap")
	}
	// A second slip of 1 more thread would exceed the cap (3+1 > 3).
	s.state = Ready
	if w.trySlip(s, 0xF0, 0x08) {
		t.Fatal("cumulative slip exceeded the cap")
	}
}

func TestTrySlipRequiresBaseStack(t *testing.T) {
	w := slipWPU(t)
	s := w.warps[0].splits[0]
	s.stack = append(s.stack, StackEntry{ReconvPC: 9, PC: 1, Mask: 0xFF})
	if w.trySlip(s, 0x0F, 0xF0) {
		t.Fatal("slip allowed inside a serialised branch arm")
	}
}

func TestSlipAbsorbOnPCRevisit(t *testing.T) {
	w := slipWPU(t)
	s := w.warps[0].splits[0]
	s.pc = 5
	w.trySlip(s, 0x0F, 0xF0)
	s.state = Ready
	s.pending = 0
	s.slipped[0].pending = 0 // data arrived
	s.pc = 7
	w.slipAbsorb(s) // wrong PC: nothing happens
	if len(s.slipped) != 1 {
		t.Fatal("absorbed at the wrong PC")
	}
	s.pc = 5
	w.slipAbsorb(s)
	if len(s.slipped) != 0 || s.mask != 0xFF {
		t.Fatalf("revisit absorption failed: mask=%#x entries=%d", uint64(s.mask), len(s.slipped))
	}
	if w.Stats.SlipMerges != 1 {
		t.Fatal("merge not counted")
	}
}

func TestSlipAbsorbRequiresArrivedData(t *testing.T) {
	w := slipWPU(t)
	s := w.warps[0].splits[0]
	s.pc = 5
	w.trySlip(s, 0x0F, 0xF0)
	s.state = Ready
	w.slipAbsorb(s) // pending data: must not merge
	if len(s.slipped) != 1 {
		t.Fatal("absorbed a group whose data is still outstanding")
	}
}

func TestSlipSwapInParksRunAhead(t *testing.T) {
	w := slipWPU(t)
	s := w.warps[0].splits[0]
	s.pc = 5
	w.trySlip(s, 0x0F, 0xF0)
	s.state = Ready
	s.pending = 0
	s.pc = 20 // run-ahead progressed to a stall point
	s.slipped[0].pending = 0
	if !w.slipSwapIn(s) {
		t.Fatal("swap-in failed with a runnable group")
	}
	if s.mask != 0xF0 || s.pc != 5 {
		t.Fatalf("fall-behind not activated: %v", s)
	}
	if len(s.parked) != 1 || s.parked[0].pc != 20 || s.parked[0].mask != 0x0F {
		t.Fatalf("run-ahead not parked: %+v", s.parked)
	}
	// Catching up to the parked PC re-unites.
	s.pc = 20
	w.slipAbsorb(s)
	if s.mask != 0xFF || len(s.parked) != 0 {
		t.Fatalf("parked re-union failed: %v", s)
	}
}

func TestSlipSwapInFailsWhenDataPending(t *testing.T) {
	w := slipWPU(t)
	s := w.warps[0].splits[0]
	s.pc = 5
	w.trySlip(s, 0x0F, 0xF0)
	s.state = Ready
	s.pending = 0
	if w.slipSwapIn(s) {
		t.Fatal("swapped in a group whose data is outstanding")
	}
}

func TestPromoteAllSlipCreatesSplits(t *testing.T) {
	w := slipWPU(t)
	s := w.warps[0].splits[0]
	s.pc = 5
	w.trySlip(s, 0x0F, 0xF0)
	s.parked = append(s.parked, parkedEntry{mask: 0x0F, pc: 9})
	s.mask = 0 // pretend the active portion is gone
	before := w.splitCount
	w.promoteAllSlip(s)
	if len(s.slipped) != 0 || len(s.parked) != 0 {
		t.Fatal("promotion left entries behind")
	}
	if w.splitCount != before+2 {
		t.Fatalf("splitCount = %d, want +2", w.splitCount)
	}
	// The promoted fall-behind is WaitMem with its pending set; the parked
	// group is Ready.
	var waiters, ready int
	for _, o := range w.warps[0].splits {
		switch o.state {
		case WaitMem:
			waiters++
		case Ready:
			ready++
		}
	}
	if waiters == 0 || ready == 0 {
		t.Fatalf("promoted states wrong: %d waiters, %d ready", waiters, ready)
	}
}

func TestSlipEntryForwardsAfterPromotion(t *testing.T) {
	w := slipWPU(t)
	s := w.warps[0].splits[0]
	s.pc = 5
	w.trySlip(s, 0x0F, 0xF0)
	e := s.slipped[0]
	w.promoteAllSlip(s)
	if e.asSplit == nil {
		t.Fatal("promotion did not link the entry to its split")
	}
	ns := e.asSplit
	if ns.pending != 0xF0 {
		t.Fatalf("promoted pending = %#x", uint64(ns.pending))
	}
	// A line completion through the old entry must reach the new split.
	e.onLineDone(0xF0)
	if !ns.pending.Empty() || ns.state != Ready {
		t.Fatalf("forwarded completion lost: %v pending=%#x", ns, uint64(ns.pending))
	}
}

func TestAdaptSlipAdjustsCap(t *testing.T) {
	w, _, _ := newBareWPU(t, SchemeSlip.Apply(Config{Warps: 1, Width: 8, SlipInterval: 100}))
	launchSimple(t, w, haltOnly(t), 8, nil)
	start := w.maxSlip
	// Memory-bound interval: raise.
	w.Stats.TickCycles = 100
	w.intervalBusy = 10
	w.intervalWait = 90
	w.adaptSlip()
	if w.maxSlip != start+1 {
		t.Fatalf("cap = %d after memory-bound interval, want %d", w.maxSlip, start+1)
	}
	// Busy interval: lower.
	w.Stats.TickCycles = 290
	w.intervalBusy = 150
	w.intervalWait = 5
	w.adaptSlip()
	if w.maxSlip != start {
		t.Fatalf("cap = %d after busy interval, want %d", w.maxSlip, start)
	}
}

func TestSlipEndToEndLoopKernel(t *testing.T) {
	// A strided-gather loop under plain Slip: fall-behind groups must
	// re-unite via PC revisits and the kernel must produce exact results.
	b := program.NewBuilder("sliploop")
	b.Mov(8, 1)
	b.Movi(12, 0)
	b.Label("loop")
	b.Slti(9, 12, 8)
	b.Beqz(9, "done")
	b.Muli(10, 8, 937)
	b.Andi(10, 10, 1023)
	b.Shli(10, 10, 3)
	b.Add(10, 10, 4)
	b.Ld(11, 10, 0)
	b.Add(13, 13, 11)
	b.Addi(8, 8, 3)
	b.Addi(12, 12, 1)
	b.Jmp("loop")
	b.Label("done")
	b.Shli(14, 1, 3)
	b.Add(14, 14, 5)
	b.St(13, 14, 0)
	b.Halt()
	p := b.MustBuild()

	w, q, h := newBareWPU(t, SchemeSlip.Apply(Config{Warps: 2, Width: 8}))
	table := h.Mem.AllocWords(1024)
	out := h.Mem.AllocWords(16)
	for i := 0; i < 1024; i++ {
		h.Mem.Write(table+uint64(i)*8, int64(i*3+1))
	}
	launchSimple(t, w, p, 16, func(tid int, r *isa.RegFile) {
		r.Set(4, int64(table))
		r.Set(5, int64(out))
	})
	runToCompletion(t, w, q)
	for tid := 0; tid < 16; tid++ {
		var want int64
		idx := tid
		for k := 0; k < 8; k++ {
			j := (idx * 937) & 1023
			want += int64(j*3 + 1)
			idx += 3
		}
		if got := h.Mem.Read(out + uint64(tid)*8); got != want {
			t.Fatalf("thread %d: sum = %d, want %d", tid, got, want)
		}
	}
}
