package wpu

// Stats aggregates everything one WPU observes during a kernel; the
// experiment harness derives the paper's tables and figures from these
// counters plus the cache statistics.
type Stats struct {
	// Cycle accounting. Every simulated cycle is exactly one of these.
	BusyCycles     uint64 // issued an instruction
	StallMemCycles uint64 // no ready SIMD group; some group waits on memory
	StallOtherCyc  uint64 // no ready SIMD group for any other reason

	// Instruction accounting.
	Issued       uint64 // SIMD instructions issued
	ThreadOps    uint64 // per-thread operations (sum of active-mask widths)
	FloatOps     uint64
	MemInsts     uint64 // SIMD memory instructions issued
	IFetchMisses uint64 // cold instruction-cache fetches (stall the front end)
	Branches     uint64 // conditional branches executed
	DivBranch    uint64 // ... that diverged
	// UniformBranchFast counts branches steered by the statically-uniform
	// fast path: one-lane predicate evaluation, no re-convergence
	// bookkeeping (see BranchInfo.Uniform).
	UniformBranchFast uint64
	WidthAccum        uint64 // sum of active widths, for mean SIMD width

	// Memory divergence (per SIMD memory instruction).
	MemAccesses  uint64 // SIMD memory instructions touching the D-cache
	MemWithMiss  uint64 // ... where at least one thread missed
	MemDivergent uint64 // ... where some threads hit and some missed
	LineAccesses uint64 // coalesced line requests issued to the D-cache

	// DWS mechanics.
	BranchSubdivisions uint64
	MemSubdivisions    uint64
	Revivals           uint64
	PCMerges           uint64 // PC-based re-convergence events
	WaitMerges         uint64 // suspended groups re-united at the same PC
	ScopeMerges        uint64 // stack-based (sync-scope) re-convergence events
	WSTFullRefusals    uint64 // subdivisions refused because the table was full
	SlotWaits          uint64 // splits that had to wait for a scheduler slot
	PeakSplits         int    // high-water mark of live scheduling entities

	// Slip mechanics.
	SlipEvents  uint64
	SlipMerges  uint64
	SlipRefused uint64 // divergence beyond the adaptive cap

	// Per-thread miss counts for Figure 14, indexed [warp][lane]: misses by
	// this thread on accesses where it stalled (part of) its SIMD group.
	ThreadMisses [][]uint64
}

// Cycles returns the total simulated cycles this WPU was live.
func (s *Stats) Cycles() uint64 {
	return s.BusyCycles + s.StallMemCycles + s.StallOtherCyc
}

// MeanSIMDWidth returns the average active width per issued instruction
// (the paper reports 14 → 4 under DWS.ReviveSplit, §5.5).
func (s *Stats) MeanSIMDWidth() float64 {
	if s.Issued == 0 {
		return 0
	}
	return float64(s.WidthAccum) / float64(s.Issued)
}

// MemStallFraction returns the fraction of cycles stalled on memory (the
// paper reports 76 % → 36 %, §5.5).
func (s *Stats) MemStallFraction() float64 {
	c := s.Cycles()
	if c == 0 {
		return 0
	}
	return float64(s.StallMemCycles) / float64(c)
}

// Add accumulates o into s (for summing across WPUs).
func (s *Stats) Add(o *Stats) {
	s.BusyCycles += o.BusyCycles
	s.StallMemCycles += o.StallMemCycles
	s.StallOtherCyc += o.StallOtherCyc
	s.Issued += o.Issued
	s.ThreadOps += o.ThreadOps
	s.FloatOps += o.FloatOps
	s.MemInsts += o.MemInsts
	s.IFetchMisses += o.IFetchMisses
	s.Branches += o.Branches
	s.DivBranch += o.DivBranch
	s.UniformBranchFast += o.UniformBranchFast
	s.WidthAccum += o.WidthAccum
	s.MemAccesses += o.MemAccesses
	s.MemWithMiss += o.MemWithMiss
	s.MemDivergent += o.MemDivergent
	s.LineAccesses += o.LineAccesses
	s.BranchSubdivisions += o.BranchSubdivisions
	s.MemSubdivisions += o.MemSubdivisions
	s.Revivals += o.Revivals
	s.PCMerges += o.PCMerges
	s.WaitMerges += o.WaitMerges
	s.ScopeMerges += o.ScopeMerges
	s.WSTFullRefusals += o.WSTFullRefusals
	s.SlotWaits += o.SlotWaits
	if o.PeakSplits > s.PeakSplits {
		s.PeakSplits = o.PeakSplits
	}
	for _, row := range o.ThreadMisses {
		s.ThreadMisses = append(s.ThreadMisses, append([]uint64(nil), row...))
	}
	s.SlipEvents += o.SlipEvents
	s.SlipMerges += o.SlipMerges
	s.SlipRefused += o.SlipRefused
}
