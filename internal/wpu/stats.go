package wpu

// Stats aggregates everything one WPU observes during a kernel; the
// experiment harness derives the paper's tables and figures from these
// counters plus the cache statistics.
type Stats struct {
	// Top-down cycle accounting. TickCycles counts every cycle the WPU was
	// live (ticked before completion), and each such cycle lands in exactly
	// one of the buckets below, so
	//
	//	BusyCycles + StallMemCoherent + StallMemDivergent + StallBarrier
	//	  + StallICache + StallWSTFull + StallSlotWait + IdleNoLiveWarp
	//	  == TickCycles
	//
	// holds as a hard invariant (enforced by TestStallTaxonomySums). The
	// stall ladder is priority-ordered in WPU.stallCycle; see DESIGN.md
	// ("Top-down cycle accounting") for the category → paper-mechanism map.
	TickCycles        uint64 // cycles the WPU was live (the taxonomy total)
	BusyCycles        uint64 // issued an instruction
	StallMemCoherent  uint64 // all stalled groups wait on fully-missed accesses
	StallMemDivergent uint64 // some stalled group waits on a divergent access (part hit, part missed)
	StallBarrier      uint64 // nothing runnable; threads parked at a barrier
	StallICache       uint64 // front end stalled on an instruction-cache refill
	StallWSTFull      uint64 // a subdivision/revival was refused this cycle: WST full
	StallSlotWait     uint64 // a runnable split exists but waits for a scheduler slot
	IdleNoLiveWarp    uint64 // no live work at all (residual; ~0 in practice)

	// Instruction accounting.
	Issued       uint64 // SIMD instructions issued
	ThreadOps    uint64 // per-thread operations (sum of active-mask widths)
	FloatOps     uint64
	MemInsts     uint64 // SIMD memory instructions issued
	IFetchMisses uint64 // cold instruction-cache fetches (stall the front end)
	Branches     uint64 // conditional branches executed
	DivBranch    uint64 // ... that diverged
	// UniformBranchFast counts branches steered by the statically-uniform
	// fast path: one-lane predicate evaluation, no re-convergence
	// bookkeeping (see BranchInfo.Uniform).
	UniformBranchFast uint64
	WidthAccum        uint64 // sum of active widths, for mean SIMD width

	// Memory divergence (per SIMD memory instruction).
	MemAccesses  uint64 // SIMD memory instructions touching the D-cache
	MemWithMiss  uint64 // ... where at least one thread missed
	MemDivergent uint64 // ... where some threads hit and some missed
	LineAccesses uint64 // coalesced line requests issued to the D-cache

	// Static access-class concordance: dynamic SIMD accesses and their
	// coalesced line transactions bucketed by the decoded 2-bit static
	// class (program.AccessClass order: uniform, coalesced, strided,
	// gather). Transactions/Accesses per class is the observed
	// transactions-per-access the precision table in EXPERIMENTS.md
	// confronts with the static worst-case bound.
	MemClassAccesses     [4]uint64
	MemClassTransactions [4]uint64
	// MemDivHintSkips counts memory instructions issued under the static
	// single-transaction hint (isa.DFMemHint): their subdivide-on-miss
	// probe was pruned as provably fruitless. Zero when
	// Config.DisableMemHints is set.
	MemDivHintSkips uint64
	// MemBoundExceeded counts accesses whose observed line transactions
	// exceeded the static worst-case bound — an analysis soundness
	// violation. Counted only on traced runs (the bounds are derived at
	// Launch when tracing is on); always zero unless the analysis is
	// broken.
	MemBoundExceeded uint64

	// DWS mechanics.
	BranchSubdivisions uint64
	MemSubdivisions    uint64
	Revivals           uint64
	PCMerges           uint64 // PC-based re-convergence events
	WaitMerges         uint64 // suspended groups re-united at the same PC
	ScopeMerges        uint64 // stack-based (sync-scope) re-convergence events
	WSTFullRefusals    uint64 // subdivisions refused because the table was full
	SlotWaits          uint64 // splits that had to wait for a scheduler slot
	PeakSplits         int    // high-water mark of live scheduling entities

	// Slip mechanics.
	SlipEvents  uint64
	SlipMerges  uint64
	SlipRefused uint64 // divergence beyond the adaptive cap

	// Per-thread miss counts for Figure 14, indexed [warp][lane]: misses by
	// this thread on accesses where it stalled (part of) its SIMD group.
	ThreadMisses [][]uint64
}

// Cycles returns the total simulated cycles this WPU was live.
func (s *Stats) Cycles() uint64 {
	return s.TickCycles
}

// CycleBucketLabels names the eight taxonomy buckets in canonical
// presentation order. Every consumer of the breakdown — the Prometheus
// exposition, the stall exhibit, CSV headers — renders the buckets in
// this order so the outputs line up column for column.
var CycleBucketLabels = [8]string{
	"busy",
	"mem_coherent",
	"mem_divergent",
	"barrier",
	"icache",
	"wst_full",
	"slot_wait",
	"idle",
}

// CycleBuckets returns the taxonomy counters in CycleBucketLabels
// order; their sum equals Cycles() by the accounting invariant.
func (s *Stats) CycleBuckets() [8]uint64 {
	return [8]uint64{
		s.BusyCycles,
		s.StallMemCoherent,
		s.StallMemDivergent,
		s.StallBarrier,
		s.StallICache,
		s.StallWSTFull,
		s.StallSlotWait,
		s.IdleNoLiveWarp,
	}
}

// MemStallCycles returns the cycles stalled on memory: the sum of the
// coherent and divergent sub-buckets (the legacy StallMemCycles rollup).
func (s *Stats) MemStallCycles() uint64 {
	return s.StallMemCoherent + s.StallMemDivergent
}

// StallOtherCycles returns the non-memory stall cycles (the legacy
// StallOtherCyc rollup over the finer-grained buckets).
func (s *Stats) StallOtherCycles() uint64 {
	return s.StallBarrier + s.StallICache + s.StallWSTFull + s.StallSlotWait + s.IdleNoLiveWarp
}

// StallSum adds up every taxonomy bucket; equal to Cycles() by the
// accounting invariant.
func (s *Stats) StallSum() uint64 {
	return s.BusyCycles + s.MemStallCycles() + s.StallOtherCycles()
}

// MeanSIMDWidth returns the average active width per issued instruction
// (the paper reports 14 → 4 under DWS.ReviveSplit, §5.5).
func (s *Stats) MeanSIMDWidth() float64 {
	if s.Issued == 0 {
		return 0
	}
	return float64(s.WidthAccum) / float64(s.Issued)
}

// MemStallFraction returns the fraction of cycles stalled on memory (the
// paper reports 76 % → 36 %, §5.5) — by definition the sum of the two
// memory sub-buckets over the total.
func (s *Stats) MemStallFraction() float64 {
	c := s.Cycles()
	if c == 0 {
		return 0
	}
	return float64(s.MemStallCycles()) / float64(c)
}

// Add accumulates o into s (for summing across WPUs).
func (s *Stats) Add(o *Stats) {
	s.TickCycles += o.TickCycles
	s.BusyCycles += o.BusyCycles
	s.StallMemCoherent += o.StallMemCoherent
	s.StallMemDivergent += o.StallMemDivergent
	s.StallBarrier += o.StallBarrier
	s.StallICache += o.StallICache
	s.StallWSTFull += o.StallWSTFull
	s.StallSlotWait += o.StallSlotWait
	s.IdleNoLiveWarp += o.IdleNoLiveWarp
	s.Issued += o.Issued
	s.ThreadOps += o.ThreadOps
	s.FloatOps += o.FloatOps
	s.MemInsts += o.MemInsts
	s.IFetchMisses += o.IFetchMisses
	s.Branches += o.Branches
	s.DivBranch += o.DivBranch
	s.UniformBranchFast += o.UniformBranchFast
	s.WidthAccum += o.WidthAccum
	s.MemAccesses += o.MemAccesses
	s.MemWithMiss += o.MemWithMiss
	s.MemDivergent += o.MemDivergent
	s.LineAccesses += o.LineAccesses
	for i := range s.MemClassAccesses {
		s.MemClassAccesses[i] += o.MemClassAccesses[i]
		s.MemClassTransactions[i] += o.MemClassTransactions[i]
	}
	s.MemDivHintSkips += o.MemDivHintSkips
	s.MemBoundExceeded += o.MemBoundExceeded
	s.BranchSubdivisions += o.BranchSubdivisions
	s.MemSubdivisions += o.MemSubdivisions
	s.Revivals += o.Revivals
	s.PCMerges += o.PCMerges
	s.WaitMerges += o.WaitMerges
	s.ScopeMerges += o.ScopeMerges
	s.WSTFullRefusals += o.WSTFullRefusals
	s.SlotWaits += o.SlotWaits
	if o.PeakSplits > s.PeakSplits {
		s.PeakSplits = o.PeakSplits
	}
	for _, row := range o.ThreadMisses {
		s.ThreadMisses = append(s.ThreadMisses, append([]uint64(nil), row...))
	}
	s.SlipEvents += o.SlipEvents
	s.SlipMerges += o.SlipMerges
	s.SlipRefused += o.SlipRefused
}
