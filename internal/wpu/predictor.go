package wpu

// The subdivision predictor implements the paper's §8 future-work
// direction: "speculating cache miss frequency and miss latencies in order
// to better decide when to subdivide warps". Figure 10 shows the failure
// case — a run-ahead warp-split that issues no further long-latency
// request before a suspended group resumes only wastes pipeline slots and
// re-executes instructions the fall-behind will repeat.
//
// The predictor is a small table of 2-bit saturating counters indexed by
// the (hashed) PC of the divergent memory instruction. A subdivision is a
// *success* when the run-ahead split issues another missing memory access
// before its fall-behind sibling's data returns; the counter trains up on
// success and down on failure, and PredictiveSplit vetoes subdivision at
// PCs whose counter has fallen below the taken threshold. Counters start
// weakly taken so new PCs behave like ReviveSplit.

const (
	predictorEntries   = 64
	predictorMax       = 3
	predictorThreshold = 2
)

// subdivPredictor holds the per-WPU prediction state.
type subdivPredictor struct {
	table [predictorEntries]int8
	init  bool

	Predictions uint64
	Vetoes      uint64
	Successes   uint64
	Failures    uint64
}

func (p *subdivPredictor) ensureInit() {
	if p.init {
		return
	}
	for i := range p.table {
		p.table[i] = predictorThreshold // weakly taken
	}
	p.init = true
}

func (p *subdivPredictor) idx(pc int) int { return (pc ^ pc>>6) & (predictorEntries - 1) }

// allow reports whether subdivision at pc is predicted profitable.
func (p *subdivPredictor) allow(pc int) bool {
	p.ensureInit()
	p.Predictions++
	if p.table[p.idx(pc)] >= predictorThreshold {
		return true
	}
	p.Vetoes++
	return false
}

// train updates the counter for pc with the observed outcome.
func (p *subdivPredictor) train(pc int, success bool) {
	p.ensureInit()
	i := p.idx(pc)
	if success {
		p.Successes++
		if p.table[i] < predictorMax {
			p.table[i]++
		}
		return
	}
	p.Failures++
	if p.table[i] > 0 {
		p.table[i]--
	}
}

// subdivRecord observes one subdivision's outcome: the run-ahead child
// marks success when it issues a missing access; the record closes (and
// trains the predictor) when the fall-behind child's data returns.
type subdivRecord struct {
	pc      int
	success bool
	closed  bool
}

// observeRunAheadMiss is called when a split carrying an open record
// issues a memory access with at least one miss.
func (w *WPU) observeRunAheadMiss(s *Split) {
	if s.subRec != nil && !s.subRec.closed {
		s.subRec.success = true
	}
}

// closeSubdivRecord trains the predictor when the fall-behind resumes.
func (w *WPU) closeSubdivRecord(s *Split) {
	if s.subRec == nil || s.subRec.closed {
		return
	}
	s.subRec.closed = true
	w.predictor.train(s.subRec.pc, s.subRec.success)
}
