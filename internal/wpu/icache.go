package wpu

// The per-WPU instruction cache of Table 3 (16 KB, 4-way, 128 B lines,
// 1-cycle hits). One instruction is fetched per cycle and broadcast to all
// lanes, so the I-cache is unbanked; with our fixed 8-byte instruction
// encoding a line holds 16 instructions. Kernels are small, so after the
// cold start every fetch hits — exactly the regime the paper's
// configuration implies — but the model is kept faithful: a cold fetch
// stalls issue for the refill latency.

const (
	icacheDefaultLines = 128 // 16 KB / 128 B
	icacheDefaultWays  = 4
	icacheInstPerLine  = 16 // 128 B line / 8 B encoded instruction
)

// ICacheInstPerLine exports the fetch-line packing so the static cost
// model's icache budget (program.CostInstPerLine) can be pinned against it.
const ICacheInstPerLine = icacheInstPerLine

type icacheLine struct {
	tag     int
	valid   bool
	lastUse uint64
}

// icache is a tiny set-associative tag store over instruction indices.
type icache struct {
	sets  [][]icacheLine
	clock uint64
	// MRU shortcut: sequential fetches hit the same line ~instPerLine times
	// in a row; revalidating a cached way pointer skips the set walk. The
	// pointer aims into sets' backing arrays (never reallocated), and the
	// tag check makes a stale pointer merely miss the shortcut.
	lastLineNo int
	lastWay    *icacheLine

	Fetches uint64
	Misses  uint64
}

func newICache(lines, ways int) *icache {
	if lines <= 0 {
		lines = icacheDefaultLines
	}
	if ways <= 0 || ways > lines {
		ways = icacheDefaultWays
	}
	numSets := lines / ways
	if numSets == 0 {
		numSets = 1
	}
	c := &icache{sets: make([][]icacheLine, numSets)}
	for i := range c.sets {
		c.sets[i] = make([]icacheLine, ways)
	}
	// lastLineNo = -1 never matches a real line number (PCs are ≥ 0), so
	// the fast path needs no nil or validity test on lastWay: a matching
	// lastLineNo implies lastWay was hit or filled for that very line, and
	// frames only ever change tag through a refill (re-checked by tag).
	c.lastLineNo = -1
	c.lastWay = &c.sets[0][0]
	return c
}

// Fetch looks up the line holding the instruction at pc, filling on miss.
// It reports whether the fetch hit. The body is only the MRU fast path so
// it inlines into issueOne; the set walk lives in fetchWalk.
func (c *icache) Fetch(pc int) bool {
	c.Fetches++
	c.clock++
	lineNo := pc / icacheInstPerLine
	if w := c.lastWay; lineNo == c.lastLineNo && w.tag == lineNo {
		w.lastUse = c.clock
		return true
	}
	return c.fetchWalk(lineNo)
}

// fetchWalk is Fetch's slow path: the set-associative walk and, on miss,
// the LRU fill.
func (c *icache) fetchWalk(lineNo int) bool {
	set := c.sets[lineNo%len(c.sets)]
	victim := &set[0]
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == lineNo {
			w.lastUse = c.clock
			c.lastLineNo, c.lastWay = lineNo, w
			return true
		}
		switch {
		case !victim.valid:
			// Keep the invalid frame.
		case !w.valid, w.lastUse < victim.lastUse:
			victim = w
		}
	}
	c.Misses++
	victim.valid = true
	victim.tag = lineNo
	victim.lastUse = c.clock
	c.lastLineNo, c.lastWay = lineNo, victim
	return false
}
