package wpu

// The per-WPU instruction cache of Table 3 (16 KB, 4-way, 128 B lines,
// 1-cycle hits). One instruction is fetched per cycle and broadcast to all
// lanes, so the I-cache is unbanked; with our fixed 8-byte instruction
// encoding a line holds 16 instructions. Kernels are small, so after the
// cold start every fetch hits — exactly the regime the paper's
// configuration implies — but the model is kept faithful: a cold fetch
// stalls issue for the refill latency.

const (
	icacheDefaultLines = 128 // 16 KB / 128 B
	icacheDefaultWays  = 4
	icacheInstPerLine  = 16 // 128 B line / 8 B encoded instruction
)

type icacheLine struct {
	tag     int
	valid   bool
	lastUse uint64
}

// icache is a tiny set-associative tag store over instruction indices.
type icache struct {
	sets  [][]icacheLine
	clock uint64

	Fetches uint64
	Misses  uint64
}

func newICache(lines, ways int) *icache {
	if lines <= 0 {
		lines = icacheDefaultLines
	}
	if ways <= 0 || ways > lines {
		ways = icacheDefaultWays
	}
	numSets := lines / ways
	if numSets == 0 {
		numSets = 1
	}
	c := &icache{sets: make([][]icacheLine, numSets)}
	for i := range c.sets {
		c.sets[i] = make([]icacheLine, ways)
	}
	return c
}

// Fetch looks up the line holding the instruction at pc, filling on miss.
// It reports whether the fetch hit.
func (c *icache) Fetch(pc int) bool {
	c.Fetches++
	c.clock++
	lineNo := pc / icacheInstPerLine
	set := c.sets[lineNo%len(c.sets)]
	victim := &set[0]
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == lineNo {
			w.lastUse = c.clock
			return true
		}
		switch {
		case !victim.valid:
			// Keep the invalid frame.
		case !w.valid, w.lastUse < victim.lastUse:
			victim = w
		}
	}
	c.Misses++
	victim.valid = true
	victim.tag = lineNo
	victim.lastUse = c.clock
	return false
}
