package wpu

import (
	"fmt"
	"math/bits"

	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/program"
)

// WPU is one warp processing unit: an in-order, single-issue SIMD front end
// sequencing Width lanes across Warps warps, switching SIMD groups on every
// cache access to hide latency (§3.3), and optionally subdividing warps on
// branch and memory divergence (§4, §5).
type WPU struct {
	ID  int
	cfg Config

	q    *engine.Queue
	l1   *mem.L1
	fmem *mem.Memory
	prog *program.Program
	// code is the running program's pre-decoded dispatch stream (cached at
	// Launch): the issue loop indexes it once per instruction and switches
	// on the dense Kind instead of re-classifying isa.Op per issue.
	code []isa.Decoded

	// trace is the per-System observability sink (nil = disabled). Every
	// emission site nil-checks it so untraced runs pay a single branch.
	trace *obs.Trace

	warps []*Warp

	// The bounded scheduler (§5.6/§6.6): slots hold resident SIMD groups;
	// surplus splits queue in slotWait until a slot frees.
	slots    []*Split
	slotWait []*Split
	// slotWaitReady counts Ready splits in slotWait, maintained on every
	// queue edge and state transition so stall attribution never scans the
	// queue (it can hold dozens of splits in small-slot-count sweeps).
	slotWaitReady int
	rrNext        int
	cur           *Split
	// readyMask mirrors "slots[i] holds a Ready split" per bit, so the
	// per-cycle scheduler scan only visits ready slots. Maintained by
	// acquireSlot/releaseSlot/admitWaiter and setState; usable only while
	// the slot count fits the word (maskSched).
	readyMask uint64
	maskSched bool
	// slotProg mirrors slots[i].prog for resident splits, packed as
	// prog<<6|i: the per-cycle least-progressed scan min-reduces this
	// dense row (no Split pointer chased, no branch mispredicts) and the
	// low bits of the winner give the slot back. The packing preserves
	// ordering within one scan partition because equal progs tie-break to
	// the lower slot index there anyway. Synced by acquireSlot/admitWaiter
	// and syncProg at every prog mutation of a resident split; meaningful
	// only under maskSched (slot indices then fit the 6 low bits).
	slotProg []uint64

	splitCount  int // live scheduling entities, bounded by WSTEntries
	nextSplitID int
	// atBarrier counts splits parked at the kernel barrier and unhalted
	// counts live not-yet-halted threads; both make the per-cycle driver
	// queries (AnyAtBarrier, Done) O(1) instead of warp×split scans.
	atBarrier int
	// memWait counts splits in WaitMem/WaitSlip so stallCycle classifies
	// most stalls without scanning. Maintained by setState/removeSplit.
	memWait int
	// memWaitDiv counts, of the memWait splits, those whose wait was caused
	// by a divergent access (some lanes hit, some missed — Split.waitDiv);
	// stallCycle attributes such stall cycles to StallMemDivergent.
	memWaitDiv int
	// wstFullAt holds q.Now()+1 at the most recent WST-full refusal (zero =
	// never refused), so stallCycle can attribute a same-cycle stall to the
	// full warp-split table. The +1 bias keeps cycle 0 distinguishable.
	wstFullAt engine.Cycle
	unhalted  int

	launched bool
	// progress counts state transitions that advance the machine without
	// issuing an instruction (scope arrivals, slip swaps, revivals); the
	// simulation driver uses it to distinguish stalls from deadlock.
	progress uint64

	// Per-WPU instruction cache (Table 3); cold fetches stall issue. Each
	// distinct program gets its own fetch-address range so successive
	// kernels of a multi-pass workload coexist in the cache, as their code
	// would at distinct addresses on real hardware.
	icache          *icache
	fetchStallUntil engine.Cycle
	refill          wpuRefill
	// progBases assigns each distinct program its fetch-address range. It
	// is a small insertion-ordered slice, not a pointer-keyed map: a WPU
	// sees a handful of programs per workload, and pointer-keyed maps are
	// a determinism hazard (see cmd/dwslint's ptrmaprange check).
	progBases    []progBase
	nextProgBase int
	fetchBase    int

	// execMem scratch, reused across instructions: the coalesced line
	// groups of the instruction being issued, and the pooled completion
	// tokens its cache accesses carry (indexed by the event argument; see
	// HandleEvent). freeTok is the token free list.
	memGroups []lineGroup
	tokens    []memToken
	freeTok   []int32

	// stackPool recycles re-convergence stack slices between retired and
	// newly created splits: subdivision-heavy schemes (ReviveSplit in
	// particular) create and retire splits continuously in steady state,
	// and the pool keeps that churn allocation-free. A split's current
	// stack is exclusively owned — freezing moves the slice into the sync
	// scope and the split is immediately given a replacement — so a stack
	// recycled at removeSplit can have no live aliases.
	stackPool [][]StackEntry

	// Subdivision predictor (PredictiveSplit, the §8 extension).
	predictor subdivPredictor

	// memBound holds the static worst-case line-transaction bound per pc
	// (-1 = no bound: non-memory or divergent-gather), recomputed at Launch
	// for this WPU's width/line/bank geometry. Populated only on traced
	// runs; execMem checks observed transactions against it and emits
	// EvMemBoundExceeded on violation (an analysis soundness bug).
	memBound []int32

	// Adaptive slip state (§5.7).
	maxSlip       int
	intervalStart uint64 // cycle count at last adaptation
	intervalBusy  uint64
	intervalWait  uint64

	Stats Stats
}

// New builds a WPU bound to its private L1 and the functional memory.
// trace is the per-System observability sink; nil disables event emission.
func New(id int, q *engine.Queue, cfg Config, l1 *mem.L1, fmem *mem.Memory, trace *obs.Trace) (*WPU, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := &WPU{
		ID:    id,
		cfg:   cfg,
		q:     q,
		l1:    l1,
		fmem:  fmem,
		trace: trace,
		slots: make([]*Split, cfg.SchedSlots),
		// Always 64 wide (not SchedSlots): pickNextMask reinterprets the
		// row as *[64]uint64 so its scan loop carries no bounds checks.
		slotProg: make([]uint64, max(cfg.SchedSlots, 64)),
		icache:   newICache(cfg.ICacheLines, cfg.ICacheWays),
		maxSlip:  cfg.Width / 2,
	}
	w.maskSched = cfg.SchedSlots <= 64
	w.refill = wpuRefill{w}
	w.Stats.ThreadMisses = make([][]uint64, cfg.Warps)
	for i := range w.Stats.ThreadMisses {
		w.Stats.ThreadMisses[i] = make([]uint64, cfg.Width)
	}
	for i := 0; i < cfg.Warps; i++ {
		w.warps = append(w.warps, &Warp{
			id:   i,
			wpu:  w,
			regs: isa.NewLaneRegs(cfg.Width),
		})
	}
	return w, nil
}

// progBase records the fetch-address range assigned to one program.
type progBase struct {
	prog *program.Program
	base int
}

// wpuRefill is the icache refill completion: a pre-bound handler so a cold
// fetch schedules only a pooled event.
type wpuRefill struct{ w *WPU }

func (r *wpuRefill) HandleEvent(uint64) { r.w.progress++ }

// lineGroup is one coalesced cache-line access of a SIMD memory
// instruction: the line address, the lanes it covers, and the pool index of
// the token routing its completion.
type lineGroup struct {
	addr  uint64
	lanes Mask
	tok   int32
}

// HandleEvent completes one coalesced line access; the argument indexes the
// token pool. The token is released before the owner's callback runs so the
// owner's next memory instruction can reuse it.
func (w *WPU) HandleEvent(arg uint64) {
	tok := &w.tokens[arg]
	owner, lanes := tok.owner, tok.lanes
	// The stale owner pointer stays in the pool slot — clearing it here
	// would cost a write barrier per completion, and allocToken overwrites
	// the slot before the token can be read again.
	w.freeTok = append(w.freeTok, int32(arg))
	owner.onLineDone(lanes)
}

// allocToken takes a completion token from the pool. Only indexes are held
// across the access, so pool growth is safe.
func (w *WPU) allocToken(lanes Mask) int32 {
	if n := len(w.freeTok); n > 0 {
		ti := w.freeTok[n-1]
		w.freeTok = w.freeTok[:n-1]
		// Refresh lanes only: zeroing the interface field would cost a
		// write barrier per access, and every execMem exit path routes
		// assignOwner over the full hit∪miss mask — which covers every
		// group — before a completion event can fire.
		w.tokens[ti].lanes = lanes
		return ti
	}
	w.tokens = append(w.tokens, memToken{lanes: lanes})
	return int32(len(w.tokens) - 1)
}

// assignOwner routes the current instruction's tokens whose lanes overlap
// to target. Ownership is assigned in the same cycle the accesses issue —
// before any completion can fire (completions are events).
func (w *WPU) assignOwner(target completionTarget, lanes Mask) {
	for _, g := range w.memGroups {
		if g.lanes&lanes != 0 {
			w.tokens[g.tok].owner = target
		}
	}
}

// Config returns the (defaulted) configuration.
func (w *WPU) Config() Config { return w.cfg }

// ThreadCapacity returns Warps × Width.
func (w *WPU) ThreadCapacity() int { return w.cfg.Warps * w.cfg.Width }

// Progress returns a monotonic counter of issues plus non-issue state
// transitions; when it stops changing with an empty event queue, the
// machine is deadlocked.
func (w *WPU) Progress() uint64 { return w.Stats.Issued + w.progress }

// emit records one structured trace event. Callers nil-check w.trace
// before calling so the disabled path never constructs the Event.
func (w *WPU) emit(kind obs.EventKind, warp, pc int, mask, mask2 Mask) {
	//dwslint:ignore every emit caller nil-checks w.trace first (zero-cost pattern)
	w.trace.Emit(obs.Event{
		Cycle: uint64(w.q.Now()), Kind: kind, Unit: w.ID,
		Warp: warp, PC: pc, Mask: uint64(mask), Mask2: uint64(mask2),
	})
}

// LiveSplits returns the number of live scheduling entities — the current
// warp-split table occupancy (the timeline sampler reads this).
func (w *WPU) LiveSplits() int { return w.splitCount }

// ResidentSplits counts scheduler slots currently held by a SIMD group.
func (w *WPU) ResidentSplits() int {
	n := 0
	for _, s := range w.slots {
		if s != nil {
			n++
		}
	}
	return n
}

// SlotWaiters returns how many splits are queued for a scheduler slot.
func (w *WPU) SlotWaiters() int { return len(w.slotWait) }

// Launch starts a kernel: regs[i] is the initial register file of the i-th
// hardware thread (warp-major layout: warp = i/Width, lane = i%Width).
// A previous kernel must have completed. Statistics accumulate across
// launches so multi-pass workloads report totals.
func (w *WPU) Launch(prog *program.Program, regs []isa.RegFile) error {
	if w.launched && !w.Done() {
		return fmt.Errorf("wpu %d: Launch while a kernel is still running", w.ID)
	}
	if len(regs) > w.ThreadCapacity() {
		return fmt.Errorf("wpu %d: %d threads exceed capacity %d", w.ID, len(regs), w.ThreadCapacity())
	}
	if !prog.Verified() {
		// The re-convergence stack and WST trust the program's branch
		// metadata; only programs that passed the static verifier (every
		// path through program.Build) are safe to run.
		return fmt.Errorf("wpu %d: program %q has not passed the static verifier", w.ID, prog.Name)
	}
	// The static cost model's trip bounds rest on the declared input
	// ranges; a launch value outside them would silently void every bound,
	// so reject it here the way capacity violations are rejected.
	for _, u := range prog.UniformRanges() {
		for i := range regs {
			if v := regs[i].Get(u.Reg); v < u.Lo || v > u.Hi {
				return fmt.Errorf("wpu %d: program %q: thread %d launches r%d=%d outside its declared range [%d,%d]",
					w.ID, prog.Name, i, u.Reg, v, u.Lo, u.Hi)
			}
		}
	}
	w.prog = prog
	w.code = prog.Decoded()
	// Recompute the static worst-case transaction bounds for THIS WPU's
	// geometry (width, line size, bank count, lane tid step) — the bounds
	// baked into the program table use program.DefaultMemParams, which need
	// not match. Only traced runs pay for this: the bound check exists to
	// back the concordance harness, and untraced hot paths skip it.
	w.memBound = nil
	if w.trace != nil {
		l1cfg := w.l1.Config()
		w.memBound = make([]int32, len(prog.Code))
		for i := range w.memBound {
			w.memBound[i] = -1
		}
		for _, a := range prog.MemAccessFor(program.MemParams{
			Lanes:     w.cfg.Width,
			LineBytes: int64(l1cfg.LineSize),
			Banks:     l1cfg.Banks,
			TidStep:   int64(w.cfg.LaneTidStep),
		}) {
			w.memBound[a.PC] = int32(a.Transactions)
		}
	}
	base := -1
	for _, pb := range w.progBases {
		if pb.prog == prog {
			base = pb.base
			break
		}
	}
	if base < 0 {
		base = w.nextProgBase
		w.progBases = append(w.progBases, progBase{prog: prog, base: base})
		// Round the next base up to a line boundary past this program.
		w.nextProgBase = base + (len(prog.Code)/icacheInstPerLine+1)*icacheInstPerLine
	}
	w.fetchBase = base
	w.launched = true
	w.cur = nil
	w.rrNext = 0
	w.slotWait = nil
	w.slotWaitReady = 0
	for i := range w.slots {
		w.slots[i] = nil
	}
	w.readyMask = 0
	w.splitCount = 0
	w.atBarrier = 0
	w.memWait = 0
	w.memWaitDiv = 0
	w.wstFullAt = 0
	w.unhalted = 0
	for wi, warp := range w.warps {
		warp.live = 0
		warp.halted = 0
		warp.splits = nil
		if start := wi * w.cfg.Width; start < len(regs) {
			cnt := len(regs) - start
			if cnt > w.cfg.Width {
				cnt = w.cfg.Width
			}
			warp.regs.SetThreads(regs[start : start+cnt])
			for l := 0; l < cnt; l++ {
				warp.live |= LaneMask(l)
			}
		}
		w.unhalted += warp.live.Count()
		if warp.live != 0 {
			root := w.newSplit(warp, warp.live, 0, nil)
			root.state = Ready
			w.addSplit(root)
		}
	}
	return nil
}

// Done reports whether every launched thread has halted.
func (w *WPU) Done() bool {
	if !w.launched {
		return true
	}
	return w.unhalted == 0 && w.splitCount == 0
}

// newSplit allocates a split with a fresh base stack.
func (w *WPU) newSplit(warp *Warp, mask Mask, pc int, scope *SyncScope) *Split {
	w.nextSplitID++
	return &Split{
		id:    w.nextSplitID,
		warp:  warp,
		mask:  mask,
		pc:    pc,
		state: Ready,
		stack: w.newStack(pc, mask),
		scope: scope,
		born:  w.q.Now(),
	}
}

// newStack returns a single-entry base stack, recycled from the pool when
// possible. The spare capacity covers typical branch-nesting depth so the
// conventional push path does not reallocate either.
func (w *WPU) newStack(pc int, mask Mask) []StackEntry {
	var st []StackEntry
	if n := len(w.stackPool); n > 0 {
		st = w.stackPool[n-1][:1]
		w.stackPool = w.stackPool[:n-1]
	} else {
		st = make([]StackEntry, 1, 8)
	}
	st[0] = StackEntry{ReconvPC: program.NoIPdom, PC: pc, Mask: mask}
	return st
}

// resetStack rebases s's stack to a single entry after a subdivision. When
// the old stack was frozen into a sync scope the scope now owns the slice
// and s needs a fresh one; otherwise the old slice is s's own (subdivision
// without freezing only happens at base stack) and is reused in place.
func (w *WPU) resetStack(s *Split, frozen bool, pc int, mask Mask) {
	if frozen {
		s.stack = w.newStack(pc, mask)
		return
	}
	s.stack = s.stack[:1]
	s.stack[0] = StackEntry{ReconvPC: program.NoIPdom, PC: pc, Mask: mask}
}

// addSplit registers a split in the warp and gives it a scheduler slot if
// one is free; otherwise it queues for one.
func (w *WPU) addSplit(s *Split) {
	s.warp.splits = append(s.warp.splits, s)
	w.splitCount++
	if w.splitCount > w.Stats.PeakSplits {
		w.Stats.PeakSplits = w.splitCount
	}
	w.acquireSlot(s)
}

// acquireSlot makes s resident when a slot is free, else queues it.
func (w *WPU) acquireSlot(s *Split) {
	if s.resident || s.state == Dead {
		return
	}
	for i := range w.slots {
		if w.slots[i] == nil {
			w.slots[i] = s
			s.resident = true
			s.slotIdx = i
			w.syncProg(s)
			if s.state == Ready {
				w.readyMask |= 1 << uint(i)
			}
			return
		}
	}
	w.Stats.SlotWaits++
	w.slotWait = append(w.slotWait, s)
	s.queued = true
	if s.state == Ready {
		w.slotWaitReady++
	}
}

// releaseSlot takes s out of the scheduler (it hit a synchronization
// point, §6.6) and admits a waiting split.
func (w *WPU) releaseSlot(s *Split) {
	if !s.resident {
		return
	}
	s.resident = false
	for i := range w.slots {
		if w.slots[i] == s {
			w.slots[i] = nil
			w.readyMask &^= 1 << uint(i)
			w.admitWaiter(i)
			return
		}
	}
}

// removeSplit retires a split, freeing its slot and admitting a waiter.
func (w *WPU) removeSplit(s *Split) {
	sp := s.warp.splits
	for i := range sp {
		if sp[i] == s {
			s.warp.splits = append(sp[:i], sp[i+1:]...)
			break
		}
	}
	w.splitCount--
	if w.cur == s {
		w.cur = nil
	}
	w.releaseSlot(s)
	if s.state == AtBarrier {
		w.atBarrier--
	}
	if s.state == WaitMem || s.state == WaitSlip {
		w.memWait--
		if s.waitDiv {
			w.memWaitDiv--
		}
	}
	if w.trace != nil {
		w.trace.Hists.SplitLife.Record(uint64(w.q.Now() - s.born))
	}
	if s.queued && s.state == Ready {
		w.slotWaitReady--
	}
	s.state = Dead
	// Recycle the stack: dead splits may live on as wait-merge forwarding
	// stubs (mergedInto), but forwarding never touches the stack. Nil it so
	// any unexpected use fails fast instead of corrupting a reused slice.
	if s.stack != nil {
		w.stackPool = append(w.stackPool, s.stack)
		s.stack = nil
	}
}

func (w *WPU) admitWaiter(slot int) {
	for len(w.slotWait) > 0 {
		c := w.slotWait[0]
		w.slotWait = w.slotWait[1:]
		c.queued = false
		if c.state == Ready {
			w.slotWaitReady--
		}
		if c.state == Dead || c.resident {
			continue
		}
		w.slots[slot] = c
		c.resident = true
		c.slotIdx = slot
		w.syncProg(c)
		if c.state == Ready {
			w.readyMask |= 1 << uint(slot)
		}
		return
	}
}

// syncProg mirrors a resident split's progress counter into the dense
// slotProg row scanned by pickNextMask. Every prog mutation of a split
// that may hold a slot must be followed by a call here.
func (w *WPU) syncProg(s *Split) {
	if s.resident {
		w.slotProg[s.slotIdx] = s.prog<<6 | uint64(s.slotIdx&63)
	}
}

// setState transitions a split's scheduling state, keeping the ready-slot
// bitmask in sync for resident splits. Every transition of a split that may
// hold a slot must go through here.
func (w *WPU) setState(s *Split, st SplitState) {
	wasWait := s.state == WaitMem || s.state == WaitSlip
	isWait := st == WaitMem || st == WaitSlip
	if wasWait != isWait {
		if isWait {
			w.memWait++
			if s.waitDiv {
				w.memWaitDiv++
			}
			s.waitSince = w.q.Now()
		} else {
			w.memWait--
			if s.waitDiv {
				w.memWaitDiv--
				s.waitDiv = false
			}
		}
	}
	if s.queued {
		if s.state == Ready {
			w.slotWaitReady--
		}
		if st == Ready {
			w.slotWaitReady++
		}
	}
	s.state = st
	if s.resident {
		if st == Ready {
			w.readyMask |= 1 << uint(s.slotIdx)
		} else {
			w.readyMask &^= 1 << uint(s.slotIdx)
		}
	}
}

// wstRoom reports whether the warp-split table can accept one more entry.
func (w *WPU) wstRoom() bool {
	if w.splitCount < w.cfg.WSTEntries {
		return true
	}
	w.Stats.WSTFullRefusals++
	w.wstFullAt = w.q.Now() + 1
	if w.trace != nil {
		w.emit(obs.EvWSTRefusal, -1, -1, 0, 0)
	}
	return false
}

// Tick advances the WPU by one cycle: issue one instruction from the
// current SIMD group, or pick another ready group, or stall.
func (w *WPU) Tick() {
	if w.Done() {
		return
	}
	w.Stats.TickCycles++
	w.adaptSlip()

	// Fine-grained round-robin: pick a ready SIMD group each cycle (switching
	// costs nothing, §3.3). Interleaving sibling warp-splits keeps them in
	// near-lockstep so PC-based re-convergence re-unites them promptly at
	// control-flow joins (Figure 6d).
	// A cold instruction fetch stalls the front end until the refill
	// arrives (rare: kernels are resident after the cold start).
	if w.q.Now() < w.fetchStallUntil {
		w.stallCycle()
		return
	}
	// Dispatch straight to the mask scheduler in the common configuration:
	// going through pickNext would cost a second call per simulated cycle.
	if w.maskSched {
		w.cur = w.pickNextMask()
	} else {
		w.cur = w.pickNext()
	}
	if w.cur == nil && (w.cfg.MemScheme == ReviveSplit || w.cfg.MemScheme == PredictiveSplit) {
		if w.tryRevive() {
			w.cur = w.pickNext()
		}
	}
	if w.cur == nil {
		w.stallCycle()
		return
	}
	if !w.issueOne(w.cur) {
		w.stallCycle()
	}
}

// stallCycle attributes one non-issuing cycle to exactly one taxonomy
// bucket. The ladder is priority-ordered: front-end and scheduler-structure
// stalls (icache refill, WST full, slot wait) mask the underlying memory
// wait because removing them would let the cycle do useful work regardless
// of the outstanding misses; among memory waits, one divergent waiter makes
// the cycle divergent (the subdivision mechanisms target exactly those).
func (w *WPU) stallCycle() {
	// memWait counts WaitMem/WaitSlip splits, so the common classification
	// is O(1); fall-behind slip groups (possible only in slip modes) still
	// need the scan when no split is waiting. memBound reproduces the legacy
	// memory-stall predicate exactly — intervalWait feeds adaptSlip, whose
	// inputs must not shift.
	memBound := w.memWait > 0
	if !memBound && w.cfg.Slip != SlipOff {
		memBound = w.anySlipped()
	}
	if memBound {
		w.intervalWait++
	}
	now := w.q.Now()
	switch {
	case now < w.fetchStallUntil:
		w.Stats.StallICache++
	case w.wstFullAt == now+1:
		w.Stats.StallWSTFull++
	case w.readyWaiterQueued():
		w.Stats.StallSlotWait++
	case w.memWaitDiv > 0:
		w.Stats.StallMemDivergent++
	case w.memWait > 0:
		w.Stats.StallMemCoherent++
	case memBound:
		// Only slip fall-behind groups are outstanding: threads left behind
		// by a divergent access.
		w.Stats.StallMemDivergent++
	case w.atBarrier > 0:
		w.Stats.StallBarrier++
	default:
		w.Stats.IdleNoLiveWarp++
	}
}

// anySlipped reports whether any split carries fall-behind slip groups.
func (w *WPU) anySlipped() bool {
	for _, warp := range w.warps {
		for _, s := range warp.splits {
			if len(s.slipped) > 0 {
				return true
			}
		}
	}
	return false
}

// readyWaiterQueued reports whether a runnable split is queued for a
// scheduler slot — the stall would clear with more slots, not faster
// memory. The slotWaitReady counter makes this O(1); scanning slotWait
// here cost ~40% of full-report wall time in the small-slot sweeps.
func (w *WPU) readyWaiterQueued() bool {
	return w.slotWaitReady > 0
}

// pickNext selects the ready resident SIMD group whose threads have
// retired the fewest instructions, starting the scan round-robin for
// determinism and cross-warp fairness. Least-progressed-first keeps
// divergent siblings near-lockstep — the interleaving of Figure 6d — so
// they re-converge promptly instead of chasing each other through loops.
func (w *WPU) pickNext() *Split {
	if w.maskSched {
		return w.pickNextMask()
	}
	n := len(w.slots)
	var best *Split
	bestIdx := -1
	// Wrap by comparison, not modulo: this runs every simulated cycle and
	// an integer divide per slot dominates the scan.
	idx := w.rrNext
	for i := 0; i < n; i++ {
		if idx >= n {
			idx = 0
		}
		s := w.slots[idx]
		if s == nil || s.state != Ready {
			idx++
			continue
		}
		if w.cfg.DisableProgSched {
			// Ablation: plain round-robin.
			w.rrNext = idx + 1
			if w.rrNext >= n {
				w.rrNext = 0
			}
			return s
		}
		if best == nil || s.prog < best.prog {
			best, bestIdx = s, idx
		}
		idx++
	}
	if best != nil {
		w.rrNext = bestIdx + 1
		if w.rrNext >= n {
			w.rrNext = 0
		}
	}
	return best
}

// pickNextMask is pickNext over the ready-slot bitmask: identical selection
// (round-robin start, least-progressed wins, earlier slot in round-robin
// order breaks ties) visiting only ready slots. Splitting the mask at
// rrNext preserves the rotation: bits at or past rrNext scan first.
func (w *WPU) pickNextMask() *Split {
	m := w.readyMask
	if m == 0 {
		return nil
	}
	n := len(w.slots)
	if m&(m-1) == 0 {
		// One ready slot: every policy picks it.
		idx := bits.TrailingZeros64(m)
		w.rrNext = idx + 1
		if w.rrNext >= n {
			w.rrNext = 0
		}
		return w.slots[idx]
	}
	// rrNext is always wrapped into [0, n) ⊆ [0, 63]; the &63 lets the
	// compiler drop the oversized-shift guards.
	r := uint(w.rrNext) & 63
	hi := m >> r << r
	lo := m ^ hi
	if w.cfg.DisableProgSched {
		// Ablation: plain round-robin — first ready in rotation.
		part := hi
		if part == 0 {
			part = lo
		}
		idx := bits.TrailingZeros64(part)
		w.rrNext = idx + 1
		if w.rrNext >= n {
			w.rrNext = 0
		}
		return w.slots[idx]
	}
	// Least-progressed scan over the dense packed slotProg row: a pure
	// min-reduction per partition (compiled to CMOV — no data-dependent
	// branch), with the winning slot index recovered from the low bits.
	// A lower slot index wins prog ties within a partition, matching the
	// scan order; across partitions hi wins ties, so lo's winner is taken
	// only on strictly smaller prog.
	prog := (*[64]uint64)(w.slotProg)
	bestHi := ^uint64(0)
	for b := hi; b != 0; b &= b - 1 {
		bestHi = min(bestHi, prog[bits.TrailingZeros64(b)&63])
	}
	bestLo := ^uint64(0)
	for b := lo; b != 0; b &= b - 1 {
		bestLo = min(bestLo, prog[bits.TrailingZeros64(b)&63])
	}
	best := bestHi
	if bestLo>>6 < bestHi>>6 {
		best = bestLo
	}
	idx := int(best & 63)
	w.rrNext = idx + 1
	if w.rrNext >= n {
		w.rrNext = 0
	}
	return w.slots[idx]
}

// issueOne executes one instruction for the split's active mask. It
// returns false when the cycle degenerated into a stall (slip swap wait).
// The instruction comes from the pre-decoded dispatch stream: one index,
// one switch on the dense Kind, and per-op lane loops inside the arms.
func (w *WPU) issueOne(s *Split) bool {
	// Hand-inlined icache.Fetch MRU fast path — the function is over the
	// inlining budget and this runs once per issued instruction.
	ic := w.icache
	ic.Fetches++
	ic.clock++
	lineNo := (w.fetchBase + s.pc) / icacheInstPerLine
	if lw := ic.lastWay; lineNo == ic.lastLineNo && lw.tag == lineNo {
		lw.lastUse = ic.clock
	} else if !ic.fetchWalk(lineNo) {
		w.Stats.IFetchMisses++
		w.fetchStallUntil = w.q.Now() + engine.Cycle(w.cfg.IMissLat)
		// The refill is an event: it keeps the machine's clock honest (the
		// deadlock detector knows something is still in flight).
		w.q.ScheduleAt(w.fetchStallUntil, &w.refill, 0)
		return false
	}
	d := &w.code[s.pc]

	// Adaptive slip: absorb fall-behind groups whose PC we revisit (§5.7),
	// and stall at conditional branches until all slipped threads caught up
	// (SlipOn only; Slip.BranchBypass proceeds).
	if w.cfg.Slip != SlipOff {
		w.slipAbsorb(s)
		if s.state != Ready {
			return false
		}
		needJoin := d.Kind == isa.KindBranch && w.cfg.Slip == SlipOn
		if needJoin && len(s.slipped) > 0 {
			if w.slipSwapIn(s) {
				d = &w.code[s.pc]
			} else if len(s.slipped) > 0 {
				s.waitDiv = true // slipped groups exist only after divergence
				w.setState(s, WaitSlip)
				return false
			}
			// Otherwise all fall-behind groups were promoted to their own
			// splits; the branch can proceed for the remaining mask.
		}
	}

	// BranchLimited re-convergence (§5.3.1): memory-divergence splits stall
	// and re-merge at the next conditional branch.
	if d.Kind == isa.KindBranch && s.scope != nil && s.scope.limitControl && s.baseStack() {
		w.arriveAtScope(s)
		return false
	}

	w.Stats.Issued++
	w.Stats.BusyCycles++
	w.intervalBusy++
	s.prog++
	w.syncProg(s) // s came from pickNext: always resident
	width := uint64(s.mask.Count())
	w.Stats.WidthAccum += width
	w.Stats.ThreadOps += width
	if d.Flags&isa.DFFloat != 0 {
		w.Stats.FloatOps += width
	}

	switch d.Kind {
	case isa.KindHalt:
		w.finishHalt(s)
	case isa.KindBarrier:
		w.enterBarrier(s)
	case isa.KindJmp:
		s.pc = int(d.Target)
		w.postPCUpdate(s)
	case isa.KindBranch:
		w.execBranch(s, d)
	case isa.KindMem:
		w.execMem(s, d)
		w.cur = nil // switch SIMD groups on every cache access (§3.3)
	default: // KindALU
		isa.ExecALULanes(d, s.warp.regs, uint64(s.mask))
		s.pc++
		w.postPCUpdate(s)
	}
	// PC-based re-convergence (§4.5): a ready sibling parked at the PC the
	// running split just reached re-unites with it at no cost to either —
	// the sibling was waiting for issue anyway.
	if w.cfg.PCReconv && s.state == Ready {
		w.tryPCMerge(s)
	}
	return true
}

// postPCUpdate applies re-convergence stack pops, retires empty splits and
// registers sync-scope arrivals after any PC change. It may consume s.
func (w *WPU) postPCUpdate(s *Split) {
	if s.state == Dead {
		return
	}
	for {
		s.mask &^= s.warp.halted
		if !s.baseStack() {
			if s.mask.Empty() || s.pc == s.tos().ReconvPC {
				s.stack = s.stack[:len(s.stack)-1]
				e := s.tos()
				s.pc = e.PC
				s.mask = e.Mask
				continue
			}
			return
		}
		if s.mask.Empty() {
			w.retire(s)
			return
		}
		if s.scope != nil && s.pc == s.scope.reconvPC {
			w.arriveAtScope(s)
			return
		}
		return
	}
}

// retire removes a split whose threads have all halted (or merged away),
// updating any scope waiting on them.
func (w *WPU) retire(s *Split) {
	w.promoteAllSlip(s)
	sc := s.scope
	w.removeSplit(s)
	if sc != nil {
		w.maybeCompleteScope(sc)
	}
}

// finishHalt terminates the split's active threads. With a non-base stack
// the sibling/parent paths continue; with slip leftovers the fall-behind
// threads take over; otherwise the split retires.
func (w *WPU) finishHalt(s *Split) {
	w.warpHalt(s.warp, s.mask)
	s.mask = 0
	if len(s.parked) > 0 {
		// A parked run-ahead group exists (slip): resume it.
		p := s.parked[len(s.parked)-1]
		s.parked = s.parked[:len(s.parked)-1]
		s.mask = p.mask
		s.pc = p.pc
		return
	}
	if len(s.slipped) > 0 {
		if !w.slipSwapIn(s) && len(s.slipped) > 0 {
			s.waitDiv = true
			w.setState(s, WaitSlip)
		}
		if s.state == WaitSlip || !s.mask.Empty() {
			return
		}
	}
	w.postPCUpdate(s)
}

func (w *WPU) warpHalt(warp *Warp, mask Mask) {
	w.unhalted -= (mask &^ warp.halted).Count()
	warp.halted |= mask
}

// enterBarrier parks the split at a kernel-wide barrier. Barriers are only
// legal outside divergent regions; kernels violating that are authoring
// bugs, caught here.
func (w *WPU) enterBarrier(s *Split) {
	if !s.baseStack() {
		panic(fmt.Sprintf("wpu: %s reached a barrier inside a divergent region", s))
	}
	if len(s.slipped) > 0 {
		if w.slipSwapIn(s) {
			return
		}
		if len(s.slipped) > 0 {
			s.waitDiv = true
			w.setState(s, WaitSlip)
			return
		}
	}
	w.setState(s, AtBarrier)
	w.atBarrier++
	w.releaseSlot(s)
}

// BarrierReady reports whether every live thread on this WPU is parked at
// a barrier (vacuously true when the WPU is done).
func (w *WPU) BarrierReady() bool {
	if !w.launched {
		return true
	}
	for _, warp := range w.warps {
		var at Mask
		for _, s := range warp.splits {
			if s.state == AtBarrier {
				at |= s.mask
			}
		}
		if at != warp.liveUnhalted() {
			return false
		}
	}
	return true
}

// AnyAtBarrier reports whether at least one split is parked at a barrier.
func (w *WPU) AnyAtBarrier() bool { return w.atBarrier > 0 }

// ReleaseBarrier resumes all parked splits past the barrier, re-forming one
// full SIMD group per warp.
func (w *WPU) ReleaseBarrier() {
	for _, warp := range w.warps {
		var parked []*Split
		for _, s := range warp.splits {
			if s.state == AtBarrier {
				parked = append(parked, s)
			}
		}
		if len(parked) == 0 {
			continue
		}
		root := parked[0]
		for _, o := range parked[1:] {
			root.mask |= o.mask
			o.scope = nil
			w.removeSplit(o)
		}
		root.scope = nil
		root.pc++
		root.state = Ready
		w.atBarrier--
		root.stack[0] = StackEntry{ReconvPC: program.NoIPdom, PC: root.pc, Mask: root.mask}
		w.acquireSlot(root)
		w.progress++
	}
}

// execBranch evaluates a conditional branch, handling uniform outcomes,
// dynamic warp subdivision (§4), and conventional stack push serialisation.
func (w *WPU) execBranch(s *Split, d *isa.Decoded) {
	// The predicate register across all lanes is one contiguous SoA row;
	// taken-on-nonzero vs taken-on-zero is a pre-decoded flag.
	pred := s.warp.regs.Row(d.SrcA)
	nz := d.Flags&isa.DFBranchNZ != 0

	// Statically-uniform branch fast path: the divergence analysis proved
	// every lane agrees on this predicate, so evaluate one representative
	// lane and steer the whole split — no per-lane evaluation and no
	// re-convergence bookkeeping. The concordance test (internal/workloads)
	// runs with this disabled and asserts the analysis never mislabels a
	// dynamically divergent branch as uniform.
	if !w.cfg.DisableUniformFast && d.Flags&isa.DFUniform != 0 {
		w.Stats.Branches++
		w.Stats.UniformBranchFast++
		if (pred[s.mask.First()] != 0) == nz {
			s.pc = int(d.Target)
		} else {
			s.pc++
		}
		w.postPCUpdate(s)
		if s.state == Ready && w.cfg.PCReconv {
			w.tryPCMerge(s)
		}
		return
	}

	var taken Mask
	for m := uint64(s.mask); m != 0; m &= m - 1 {
		lane := bits.TrailingZeros64(m)
		if (pred[lane] != 0) == nz {
			taken |= LaneMask(lane)
		}
	}
	notTaken := s.mask &^ taken

	w.Stats.Branches++
	if taken.Empty() || notTaken.Empty() {
		if notTaken.Empty() {
			s.pc = int(d.Target)
		} else {
			s.pc++
		}
		w.postPCUpdate(s)
		if s.state == Ready && w.cfg.PCReconv {
			w.tryPCMerge(s)
		}
		return
	}

	w.Stats.DivBranch++
	if w.trace != nil {
		w.emit(obs.EvBranchDiverge, s.warp.id, s.pc, taken, notTaken)
	}
	// Re-convergence comes from the verified table (recomputed by the
	// verifier's independent post-dominator pass), folded into the decoded
	// stream at Build time; -1 encodes program.NoIPdom.
	reconvPC := int(d.Reconv)
	if reconvPC < 0 {
		reconvPC = program.NoIPdom
	}

	subdivide := false
	switch {
	case s.scope != nil:
		// Already in asynchronous subdivided mode (§4.4): nested divergent
		// branches keep subdividing (BranchLimited scopes never get here —
		// they arrive at the branch instead).
		subdivide = w.wstRoom()
	case w.cfg.SubdivideOnBranch && d.Flags&isa.DFSubdiv != 0:
		// Subdivide only when the WPU actually needs another SIMD group to
		// hide latency; otherwise the conventional stack serialises the arms
		// at the same issue cost with a guaranteed re-join. (The paper gates
		// memory subdivision this way — LazySplit, §5.2 — and motivates the
		// same over-subdivision concern for branches in §4.3; our kernels'
		// basic blocks are small enough that the static filter alone lets
		// busy pipelines shred, so the laziness applies here too.)
		subdivide = w.readyOthers(s) < w.cfg.BranchLazyThreshold && w.wstRoom()
	}

	if subdivide {
		w.subdivideBranch(s, taken, notTaken, int(d.Target))
		return
	}

	// Conventional re-convergence stack (Fung et al.): serialise the paths.
	parent := s.tos()
	parent.PC = reconvPC
	s.stack = append(s.stack,
		StackEntry{ReconvPC: reconvPC, PC: s.pc + 1, Mask: notTaken},
		StackEntry{ReconvPC: reconvPC, PC: int(d.Target), Mask: taken},
	)
	s.pc = int(d.Target)
	s.mask = taken
	w.postPCUpdate(s)
}

// subdivideBranch forks s into two concurrently schedulable warp-splits
// (§4.2). If s carries a private stack it is frozen into a sync scope whose
// re-convergence PC is the post-dominator on top of the stack (§4.4).
func (w *WPU) subdivideBranch(s *Split, taken, notTaken Mask, target int) {
	w.Stats.BranchSubdivisions++
	if w.trace != nil {
		w.emit(obs.EvBranchSubdiv, s.warp.id, s.pc, taken, notTaken)
	}
	scope := s.scope
	frozen := !s.baseStack()
	if frozen {
		scope = &SyncScope{
			warp:     s.warp,
			reconvPC: s.syncPC(),
			expected: s.mask,
			frozen:   s.stack,
			parent:   s.scope,
		}
	}
	fallthrough_ := s.pc + 1
	// The taken path keeps the split object (and its scheduler slot).
	s.mask = taken
	s.pc = target
	w.resetStack(s, frozen, target, taken)
	s.scope = scope

	nt := w.newSplit(s.warp, notTaken, fallthrough_, scope)
	nt.prog = s.prog
	w.addSplit(nt)
	w.postPCUpdate(nt)
	w.postPCUpdate(s)
}

// coalesce merges one lane's line address into the scratch group list.
// The list is scanned linearly: a SIMD access touches at most Width lines
// and usually far fewer, so a map would cost more than it saves.
func coalesce(groups []lineGroup, la uint64, lane int) []lineGroup {
	for i := range groups {
		if groups[i].addr == la {
			groups[i].lanes |= LaneMask(lane)
			return groups
		}
	}
	return append(groups, lineGroup{addr: la, lanes: LaneMask(lane)})
}

// execMem issues one SIMD memory instruction: functional execution at
// issue, per-line coalescing into the banked L1, divergence detection, and
// the configured subdivision or slip response.
func (w *WPU) execMem(s *Split, d *isa.Decoded) {
	warp := s.warp
	write := d.Flags&isa.DFStore != 0
	s.memSince++

	// Functional execution and per-line coalescing over SoA rows: the base
	// register row gives every lane's address with one index, and loads
	// store straight into the destination row (a store to r0 was redirected
	// to the discard row at decode time). The group list is reused scratch
	// scanned linearly: a SIMD access touches at most Width lines and
	// usually far fewer, so a map would cost more than it saves.
	base := warp.regs.Row(d.SrcA)
	groups := w.memGroups[:0]
	if write {
		val := warp.regs.Row(d.SrcB)
		for v := uint64(s.mask); v != 0; v &= v - 1 {
			lane := bits.TrailingZeros64(v)
			addr := uint64(base[lane] + d.Imm)
			w.fmem.Write(addr, val[lane])
			groups = coalesce(groups, w.l1.Line(addr), lane)
		}
	} else {
		dst := warp.regs.Row(d.Dst)
		for v := uint64(s.mask); v != 0; v &= v - 1 {
			lane := bits.TrailingZeros64(v)
			addr := uint64(base[lane] + d.Imm)
			dst[lane] = w.fmem.Read(addr)
			groups = coalesce(groups, w.l1.Line(addr), lane)
		}
	}
	w.memGroups = groups

	w.Stats.MemInsts++
	w.Stats.MemAccesses++
	w.Stats.LineAccesses += uint64(len(groups))
	cls := d.MemClass()
	w.Stats.MemClassAccesses[cls]++
	w.Stats.MemClassTransactions[cls] += uint64(len(groups))
	if w.memBound != nil {
		if b := w.memBound[s.pc]; b >= 0 && int32(len(groups)) > b {
			w.Stats.MemBoundExceeded++
			w.emit(obs.EvMemBoundExceeded, warp.id, s.pc, s.mask, Mask(len(groups)))
		}
	}

	var hitMask, missMask Mask
	for i := range groups {
		g := &groups[i]
		g.tok = w.allocToken(g.lanes)
		if w.l1.AccessEvent(g.addr, write, w, uint64(g.tok)) {
			hitMask |= g.lanes
		} else {
			missMask |= g.lanes
		}
	}

	if missMask != 0 {
		w.observeRunAheadMiss(s)
		w.Stats.MemWithMiss++
		missMask.Lanes(func(lane int) {
			w.Stats.ThreadMisses[warp.id][lane]++
		})
	}
	divergent := hitMask != 0 && missMask != 0
	if divergent {
		w.Stats.MemDivergent++
	}

	// Static single-transaction hint (isa.DFMemHint): the divergence
	// analysis proved this access warp-uniform, so it occupies exactly one
	// line group and can never hit/miss-diverge — the subdivide/slip probe
	// below is provably fruitless and is pruned. Behaviour-identical by
	// construction; the panic is the runtime self-check of that proof.
	hinted := d.Flags&isa.DFMemHint != 0 && !w.cfg.DisableMemHints
	if hinted {
		w.Stats.MemDivHintSkips++
		if divergent {
			panic(fmt.Sprintf("wpu %d: access @pc %d hinted single-transaction but diverged (hit %x miss %x)",
				w.ID, s.pc, uint64(hitMask), uint64(missMask)))
		}
	}

	s.pc++ // the instruction is architecturally complete; data is pending

	if !hinted && divergent && w.cfg.Slip != SlipOff {
		if w.trySlip(s, hitMask, missMask) {
			return
		}
	} else if !hinted && divergent && w.cfg.MemScheme != MemNone {
		if w.shouldMemSubdivide(s) {
			w.subdivideMem(s, hitMask, missMask)
			return
		}
	}

	// Default: the whole group waits for its slowest thread.
	s.waitDiv = divergent
	w.setState(s, WaitMem)
	s.pending = s.mask
	w.assignOwner(s, s.mask)
	w.tryWaitMerge(s)
}

// tryWaitMerge applies PC-based re-convergence to SIMD groups suspended at
// the same PC (§4.5 compares PCs when memory instructions execute; groups
// that fell into phase-lock — e.g. a run-ahead and a fall-behind streaming
// the same loop one miss apart — re-unite here). Freshly subdivided pairs
// are exempt: their whole point is to wait separately.
func (w *WPU) tryWaitMerge(s *Split) {
	if w.cfg.DisableWaitMerge {
		return
	}
	if !w.cfg.PCReconv || s.state != WaitMem || !s.baseStack() || s.memSince == 0 {
		return
	}
	for i := 0; i < len(s.warp.splits); i++ {
		o := s.warp.splits[i]
		// Re-unite with siblings suspended at the same PC, and with ready
		// siblings parked there (they pay the remainder of s's wait — a few
		// cycles for hits; ReviveSplit re-splits them if it drags on).
		if o == s || (o.state != WaitMem && o.state != Ready) || o.pc != s.pc ||
			o.scope != s.scope || !o.baseStack() || o.memSince == 0 {
			continue
		}
		s.mask |= o.mask
		s.pending |= o.pending
		s.stack[0].Mask = s.mask
		if o.state == WaitMem {
			if o.waitDiv && !s.waitDiv {
				// The survivor now waits on a divergent access too; o's own
				// count is released by removeSplit below.
				s.waitDiv = true
				w.memWaitDiv++
			}
			if w.trace != nil {
				w.trace.Hists.WaitMergeWait.Record(uint64(w.q.Now() - o.waitSince))
			}
		}
		if o.prog > s.prog {
			s.prog = o.prog
			w.syncProg(s)
		}
		s.slipped = append(s.slipped, o.slipped...)
		s.parked = append(s.parked, o.parked...)
		for _, e := range o.slipped {
			e.split = s
		}
		o.slipped = nil
		o.parked = nil
		o.mergedInto = s
		o.scope = nil
		w.removeSplit(o)
		w.Stats.WaitMerges++
		if w.trace != nil {
			w.emit(obs.EvWaitMerge, s.warp.id, s.pc, s.mask, o.mask)
		}
		i = -1 // the splits slice changed; rescan
	}
}

// anyOtherReady reports whether a SIMD group other than s could issue.
func (w *WPU) anyOtherReady(s *Split) bool { return w.readyOthers(s) > 0 }

// readyOthers counts resident SIMD groups other than s that could issue.
func (w *WPU) readyOthers(s *Split) int {
	n := 0
	for _, o := range w.slots {
		if o != nil && o != s && o.state == Ready {
			n++
		}
	}
	return n
}

// shouldMemSubdivide applies the §5.2 subdivision schemes at access time.
func (w *WPU) shouldMemSubdivide(s *Split) bool {
	switch w.cfg.MemScheme {
	case AggressSplit:
		return w.wstRoom()
	case LazySplit, ReviveSplit:
		// Subdivide only when no other SIMD group can hide the latency.
		return !w.anyOtherReady(s) && w.wstRoom()
	case PredictiveSplit:
		return !w.anyOtherReady(s) && w.predictor.allow(s.pc) && w.wstRoom()
	}
	return false
}

// subdivideMem forks s at a memory divergence (§5.4): threads that hit form
// a run-ahead split; s remains the fall-behind split (it owns the pending
// line completions). Under BranchLimited a sync scope always binds the
// children; under BranchBypass one is needed only to freeze a non-base
// stack.
func (w *WPU) subdivideMem(s *Split, hitMask, missMask Mask) {
	w.Stats.MemSubdivisions++
	scope := s.scope
	frozen := w.cfg.MemReconv == BranchLimited || !s.baseStack()
	if frozen {
		scope = &SyncScope{
			warp:         s.warp,
			reconvPC:     s.syncPC(),
			limitControl: w.cfg.MemReconv == BranchLimited,
			expected:     s.mask,
			frozen:       s.stack,
			parent:       s.scope,
		}
	}
	pc := s.pc
	if w.trace != nil {
		w.emit(obs.EvMemSubdiv, s.warp.id, pc, hitMask, missMask)
	}

	hit := w.newSplit(s.warp, hitMask, pc, scope)
	hit.waitDiv = true
	w.setState(hit, WaitMem) // completes after the hit latency
	hit.pending = hitMask
	hit.prog = s.prog
	if w.cfg.MemScheme == PredictiveSplit {
		rec := &subdivRecord{pc: pc - 1}
		hit.subRec = rec
		s.subRec = rec
	}

	s.memSince = 0
	s.mask = missMask
	w.resetStack(s, frozen, pc, missMask)
	s.scope = scope
	s.waitDiv = true
	w.setState(s, WaitMem)
	s.pending = missMask

	w.assignOwner(hit, hitMask)
	w.assignOwner(s, missMask)
	w.addSplit(hit)
}

// tryRevive implements ReviveSplit's second trigger (§5.2): when the
// pipeline stalls, subdivide one suspended SIMD group whose outstanding
// requests have partially completed, letting the satisfied threads run.
func (w *WPU) tryRevive() bool {
	for _, s := range w.slots {
		if s == nil || s.state != WaitMem {
			continue
		}
		arrived := s.mask &^ s.pending
		if arrived.Empty() || s.pending.Empty() {
			continue
		}
		if !w.wstRoom() {
			return false
		}
		w.Stats.Revivals++
		w.Stats.MemSubdivisions++
		w.progress++
		scope := s.scope
		frozen := w.cfg.MemReconv == BranchLimited || !s.baseStack()
		if frozen {
			scope = &SyncScope{
				warp:         s.warp,
				reconvPC:     s.syncPC(),
				limitControl: w.cfg.MemReconv == BranchLimited,
				expected:     s.mask,
				frozen:       s.stack,
				parent:       s.scope,
			}
		}
		if w.trace != nil {
			w.emit(obs.EvRevive, s.warp.id, s.pc, arrived, s.pending)
		}
		ready := w.newSplit(s.warp, arrived, s.pc, scope)
		ready.state = Ready
		ready.prog = s.prog

		s.memSince = 0
		s.mask = s.pending
		w.resetStack(s, frozen, s.pc, s.mask)
		s.scope = scope

		w.addSplit(ready)
		w.postPCUpdate(ready)
		if ready.state == Ready && w.cfg.PCReconv {
			w.tryPCMerge(ready)
		}
		return true
	}
	return false
}

// onLineDone is the completion target for a split waiting on memory,
// following wait-merge forwarding so completions reach the surviving group.
func (s *Split) onLineDone(lanes Mask) {
	t := s
	for t.mergedInto != nil {
		t = t.mergedInto
	}
	t.pending &^= lanes
	if t.pending.Empty() && t.state == WaitMem {
		t.warp.wpu.becomeReady(t)
	}
}

// becomeReady transitions a split out of WaitMem, applying re-convergence.
func (w *WPU) becomeReady(s *Split) {
	w.closeSubdivRecord(s)
	w.setState(s, Ready)
	w.postPCUpdate(s)
	if s.state == Ready && w.cfg.PCReconv {
		w.tryPCMerge(s)
	}
}

// tryPCMerge implements PC-based re-convergence (§4.5): ready sibling
// splits of the same warp and scope whose PCs met re-unite into one wider
// SIMD group.
func (w *WPU) tryPCMerge(s *Split) {
	if !s.baseStack() {
		return
	}
	for {
		var other *Split
		for _, o := range s.warp.splits {
			if o == s || o.state != Ready || o.pc != s.pc || o.scope != s.scope || !o.baseStack() {
				continue
			}
			other = o
			break
		}
		if other == nil {
			return
		}
		target, victim := s, other
		if !s.resident && other.resident {
			target, victim = other, s
		}
		target.mask |= victim.mask
		target.stack[0].Mask = target.mask
		if victim.prog > target.prog {
			target.prog = victim.prog
			w.syncProg(target)
		}
		for _, e := range victim.slipped {
			e.split = target
		}
		target.slipped = append(target.slipped, victim.slipped...)
		target.parked = append(target.parked, victim.parked...)
		victim.slipped = nil
		victim.parked = nil
		victim.scope = nil // do not disturb the scope on removal
		w.removeSplit(victim)
		w.Stats.PCMerges++
		if w.trace != nil {
			w.emit(obs.EvPCMerge, target.warp.id, target.pc, target.mask, victim.mask)
		}
		if target != s {
			// s was absorbed; continue merging from the survivor.
			s = target
		}
	}
}

// arriveAtScope parks a split's threads at its sync scope (stack-based
// re-convergence, §4.4; or the BranchLimited barrier at a branch, §5.3.1).
func (w *WPU) arriveAtScope(s *Split) {
	w.progress++
	w.promoteAllSlip(s)
	sc := s.scope
	if !sc.arrived.Empty() && sc.arrivedPC != s.pc {
		panic(fmt.Sprintf("wpu: %s arrives at scope{reconvPC=%d} at pc %d but earlier arrivals parked at %d",
			s, sc.reconvPC, s.pc, sc.arrivedPC))
	}
	if w.trace != nil {
		w.emit(obs.EvScopeArrive, s.warp.id, s.pc, s.mask, sc.expected)
	}
	sc.arrived |= s.mask
	sc.arrivedPC = s.pc
	s.scope = nil
	w.removeSplit(s)
	w.maybeCompleteScope(sc)
}

// maybeCompleteScope re-creates the frozen SIMD group once every expected
// thread has arrived (or halted), then resumes the conventional stack.
func (w *WPU) maybeCompleteScope(sc *SyncScope) {
	sc.expected &^= sc.warp.halted
	sc.arrived &^= sc.warp.halted
	if sc.arrived != sc.expected {
		return
	}
	w.Stats.ScopeMerges++
	if w.trace != nil {
		w.emit(obs.EvScopeMerge, sc.warp.id, sc.arrivedPC, sc.expected, 0)
	}
	merged := &Split{
		id:    w.nextSplitIDInc(),
		warp:  sc.warp,
		mask:  sc.expected,
		pc:    sc.arrivedPC,
		state: Ready,
		stack: sc.frozen,
		scope: sc.parent,
		born:  w.q.Now(),
	}
	if sc.expected.Empty() {
		merged.pc = sc.reconvPC
	}
	merged.tos().Mask = sc.expected
	w.addSplit(merged)
	w.postPCUpdate(merged)
	if merged.state == Ready && w.cfg.PCReconv {
		w.tryPCMerge(merged)
	}
}

func (w *WPU) nextSplitIDInc() int {
	w.nextSplitID++
	return w.nextSplitID
}
