package wpu

// BenchmarkIssueALU pins the cost of the issue loop on ALU-dense code: the
// pre-decoded dispatch in issueOne, the mask scheduler, and the SoA lane
// loops in isa.ExecALULanes. It is one of the cmd/dwsbench gate's suites,
// so regressions on the per-instruction fast path fail CI.

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/program"
)

// aluKernel is a loop of straight-line integer and float ALU work: eight
// data instructions per iteration, 512 iterations, no memory traffic, so
// issue and execute dominate end to end.
func aluKernel() *program.Program {
	pb := program.NewBuilder("issue-alu")
	pb.Movi(4, 0)
	pb.Movi(5, 3)
	pb.Fmovi(8, 1.5)
	pb.Label("head")
	pb.Addi(4, 4, 1)
	pb.Mul(6, 4, 5)
	pb.Xor(7, 6, 4)
	pb.Shli(7, 7, 2)
	pb.Fmul(9, 8, 8)
	pb.Fadd(8, 9, 8)
	pb.Max(6, 6, 7)
	pb.Slti(10, 4, 512)
	pb.Bnez(10, "head")
	pb.Halt()
	return pb.MustBuild()
}

func BenchmarkIssueALU(b *testing.B) {
	p := aluKernel()
	cfg := SchemeBranchOnly.Apply(Config{Warps: 4, Width: 8})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, q := benchWPU(b, cfg)
		regs := make([]isa.RegFile, cfg.Warps*cfg.Width)
		for tid := range regs {
			regs[tid].Set(1, int64(tid))
		}
		if err := w.Launch(p, regs); err != nil {
			b.Fatal(err)
		}
		var cycle engine.Cycle
		for !w.Done() {
			q.RunUntil(cycle)
			w.Tick()
			cycle++
		}
	}
}
