package wpu

// Low-level event tracing for debugging the subdivision machinery: set
// WPU_TRACE=1 in the environment to stream scope creations, arrivals,
// completions, subdivisions and revivals to stderr. For a sampled
// state-dump view prefer cmd/dwstrace, which needs no environment flag.

import (
	"fmt"
	"os"
)

var traceScopes = os.Getenv("WPU_TRACE") != ""

func tracef(format string, args ...any) {
	if traceScopes {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
}

func scopeReconv(sc *SyncScope) int {
	if sc == nil {
		return -99 // no scope: distinct from program.NoIPdom (-1)
	}
	return sc.reconvPC
}

func parentOf(sc *SyncScope) *SyncScope {
	if sc == nil {
		return nil
	}
	return sc.parent
}
