package wpu

import "repro/internal/obs"

// Adaptive slip (§5.7, after Tarjan et al. [33]): on memory divergence the
// threads that hit continue within the same scheduling entity while the
// missing threads fall behind; fall-behind groups re-unite when the
// run-ahead portion revisits their PC (loops), or are swapped in when the
// run-ahead stalls at a conditional branch (no branch predication) or
// halts. The maximum number of slipped threads is adapted by runtime
// profiling.
//
// Slip interacts with control flow through two safety rules this
// implementation enforces (the paper's hardware has the same constraints
// implicitly, via its stack-outcome mechanism):
//   - a group may only slip from a split whose private re-convergence
//     stack is fully unwound, and only re-joins a split in the same
//     sync-scope context;
//   - when a slipped group's owner leaves that context (it retires or
//     arrives at a scope), the group is promoted to an independent split
//     so its threads are never stranded.

// trySlip lets hitting threads run ahead under adaptive slip. It returns
// false (caller falls back to a conventional full-group wait) when the
// divergence cap would be exceeded or the split is inside a serialised
// branch arm.
func (w *WPU) trySlip(s *Split, hitMask, missMask Mask) bool {
	if !s.baseStack() {
		w.Stats.SlipRefused++
		return false
	}
	if s.slipCount()+missMask.Count() > w.maxSlip {
		w.Stats.SlipRefused++
		return false
	}
	w.Stats.SlipEvents++
	if w.trace != nil {
		w.emit(obs.EvSlip, s.warp.id, s.pc, hitMask, missMask)
	}
	e := &slipEntry{split: s, mask: missMask, pc: s.pc, pending: missMask, scope: s.scope}
	s.slipped = append(s.slipped, e)
	w.assignOwner(e, missMask)

	s.mask = hitMask
	s.stack[0].Mask = hitMask
	s.waitDiv = true
	w.setState(s, WaitMem) // the hits still pay the hit latency
	s.pending = hitMask
	w.assignOwner(s, hitMask)
	return true
}

// onLineDone completes a fall-behind group's outstanding lines; if its
// split is stalled waiting to swap (WaitSlip), the group takes over the
// pipeline immediately. Promoted groups forward to their split.
func (e *slipEntry) onLineDone(lanes Mask) {
	if e.asSplit != nil {
		e.asSplit.onLineDone(lanes)
		return
	}
	e.pending &^= lanes
	s := e.split
	if e.pending.Empty() && s.state == WaitSlip {
		if s.warp.wpu.slipSwapIn(s) {
			s.warp.wpu.setState(s, Ready)
		}
	}
}

// slipAbsorb re-unites the active portion with any fall-behind or parked
// groups whose PC matches the current PC (the loop-revisit re-convergence).
func (w *WPU) slipAbsorb(s *Split) {
	for i := 0; i < len(s.slipped); {
		e := s.slipped[i]
		if e.pc == s.pc && e.pending.Empty() && e.scope == s.scope && s.baseStack() {
			s.mask |= e.mask
			s.stack[0].Mask = s.mask
			s.slipped = append(s.slipped[:i], s.slipped[i+1:]...)
			w.Stats.SlipMerges++
			if w.trace != nil {
				w.emit(obs.EvSlipMerge, s.warp.id, s.pc, s.mask, e.mask)
			}
			continue
		}
		i++
	}
	for len(s.parked) > 0 {
		p := s.parked[len(s.parked)-1]
		if p.pc != s.pc {
			break
		}
		s.mask |= p.mask
		s.stack[0].Mask = s.mask
		s.parked = s.parked[:len(s.parked)-1]
		w.Stats.SlipMerges++
		if w.trace != nil {
			w.emit(obs.EvSlipMerge, s.warp.id, s.pc, s.mask, p.mask)
		}
	}
}

// slipSwapIn parks the current run-ahead portion and activates a
// fall-behind group whose data has arrived, so it can catch up to the
// stall point. Groups from other scope contexts are promoted to
// independent splits first. It returns false when no fall-behind group is
// runnable yet.
func (w *WPU) slipSwapIn(s *Split) bool {
	w.promoteAlienSlip(s)
	for i, e := range s.slipped {
		if !e.pending.Empty() {
			continue
		}
		if !s.mask.Empty() {
			s.parked = append(s.parked, parkedEntry{mask: s.mask, pc: s.pc})
		}
		s.mask = e.mask
		s.stack[0].Mask = s.mask
		s.pc = e.pc
		s.slipped = append(s.slipped[:i], s.slipped[i+1:]...)
		w.progress++
		return true
	}
	return false
}

// promoteSlipEntry turns a fall-behind group into an independent split in
// its recorded scope context.
func (w *WPU) promoteSlipEntry(s *Split, e *slipEntry) {
	ns := w.newSplit(s.warp, e.mask, e.pc, e.scope)
	if !e.pending.Empty() {
		ns.waitDiv = true       // fall-behind threads of a divergent access
		w.setState(ns, WaitMem) // via setState: the memWait count must see it
		ns.pending = e.pending
		e.asSplit = ns // in-flight completions now target the split
	}
	w.addSplit(ns)
	w.progress++
	if ns.state == Ready {
		w.postPCUpdate(ns)
	}
}

// promoteAlienSlip promotes the slipped groups that can no longer re-join
// s because their scope context differs.
func (w *WPU) promoteAlienSlip(s *Split) {
	for i := 0; i < len(s.slipped); {
		e := s.slipped[i]
		if e.scope != s.scope {
			s.slipped = append(s.slipped[:i], s.slipped[i+1:]...)
			w.promoteSlipEntry(s, e)
			continue
		}
		i++
	}
}

// promoteAllSlip promotes every remaining fall-behind and parked group;
// called when s leaves its context entirely (retire or scope arrival).
func (w *WPU) promoteAllSlip(s *Split) {
	slipped := s.slipped
	parked := s.parked
	s.slipped = nil
	s.parked = nil
	for _, e := range slipped {
		w.promoteSlipEntry(s, e)
	}
	for _, p := range parked {
		ns := w.newSplit(s.warp, p.mask, p.pc, s.scope)
		w.addSplit(ns)
		w.progress++
		w.postPCUpdate(ns)
	}
}

// adaptSlip applies the paper's dynamic profiling: every SlipInterval
// cycles, raise the divergence cap when the WPU spent more than SlipRaise
// of the time waiting for memory, lower it when the pipeline was actively
// executing more than SlipLower of the time.
func (w *WPU) adaptSlip() {
	if w.cfg.Slip == SlipOff {
		return
	}
	elapsed := w.Stats.Cycles() - w.intervalStart
	if elapsed < w.cfg.SlipInterval {
		return
	}
	waitFrac := float64(w.intervalWait) / float64(elapsed)
	busyFrac := float64(w.intervalBusy) / float64(elapsed)
	switch {
	case waitFrac > w.cfg.SlipRaise && w.maxSlip < w.cfg.Width:
		w.maxSlip++
	case busyFrac > w.cfg.SlipLower && w.maxSlip > 0:
		w.maxSlip--
	}
	w.intervalStart = w.Stats.Cycles()
	w.intervalBusy = 0
	w.intervalWait = 0
}
