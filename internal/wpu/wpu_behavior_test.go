package wpu_test

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/wpu"
)

// smallCfg is a 1-WPU machine with a small L1 so tests exercise misses.
func smallCfg(scheme wpu.Scheme) sim.Config {
	c := sim.DefaultConfig()
	c.WPUs = 1
	c.WPU.Warps = 2
	c.WPU.Width = 4
	c.WPU = scheme.Apply(c.WPU)
	c.Hier.L1.SizeBytes = 2 * 1024
	c.Hier.L1.Banks = 4
	return c
}

// vecAddKernel: each thread strides over c[i] = a[i] + b[i].
// ABI: R4 = &a, R5 = &b, R6 = &c, R7 = n.
func vecAddKernel(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder("vecadd")
	b.Mov(8, 1) // i = tid
	b.Label("loop")
	b.Slt(9, 8, 7)
	b.Beqz(9, "done")
	b.Shli(10, 8, 3)
	b.Add(11, 4, 10)
	b.Ld(12, 11, 0)
	b.Add(13, 5, 10)
	b.Ld(14, 13, 0)
	b.Add(15, 12, 14)
	b.Add(16, 6, 10)
	b.St(15, 16, 0)
	b.Add(8, 8, 2) // i += nthreads
	b.Jmp("loop")
	b.Label("done")
	b.Halt()
	return b.MustBuild()
}

func runVecAdd(t *testing.T, cfg sim.Config, n int) (*sim.System, uint64) {
	t.Helper()
	sys, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := sys.Memory()
	a := m.AllocWords(n)
	bb := m.AllocWords(n)
	c := m.AllocWords(n)
	for i := 0; i < n; i++ {
		m.Write(a+uint64(i)*8, int64(i))
		m.Write(bb+uint64(i)*8, int64(3*i))
	}
	nt := min(n, sys.ThreadCapacity())
	threads := sim.Threads(nt, func(tid int, r *isa.RegFile) {
		r.Set(4, int64(a))
		r.Set(5, int64(bb))
		r.Set(6, int64(c))
		r.Set(7, int64(n))
	})
	cycles, err := sys.RunKernel(vecAddKernel(t), threads)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := m.Read(c + uint64(i)*8); got != int64(4*i) {
			t.Fatalf("c[%d] = %d, want %d", i, got, 4*i)
		}
	}
	return sys, cycles
}

func TestVecAddConventional(t *testing.T) {
	sys, cycles := runVecAdd(t, smallCfg(wpu.SchemeConv), 64)
	if cycles == 0 {
		t.Fatal("zero cycles")
	}
	st := sys.TotalStats()
	if st.Issued == 0 || st.MemInsts == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
	if st.DivBranch != 0 {
		t.Fatalf("vecadd has %d divergent branches, want 0", st.DivBranch)
	}
	// With n a multiple of the thread count, every loop-exit branch is
	// uniform and SIMD width stays full.
	if w := st.MeanSIMDWidth(); w != 4 {
		t.Fatalf("mean SIMD width = %g, want 4", w)
	}
}

func TestVecAddAllSchemesCorrectAndComplete(t *testing.T) {
	for _, s := range wpu.AllSchemes {
		s := s
		t.Run(string(s), func(t *testing.T) {
			runVecAdd(t, smallCfg(s), 64)
		})
	}
}

// divergentKernel: out[tid] = odd(tid) ? in[tid]*2 : in[tid]+1.
// ABI: R4 = &in, R5 = &out.
func divergentKernel(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder("divergent")
	b.Shli(10, 1, 3)
	b.Add(11, 4, 10)
	b.Ld(12, 11, 0)
	b.Andi(9, 1, 1)
	b.Bnez(9, "odd")
	b.Addi(13, 12, 1)
	b.Jmp("join")
	b.Label("odd")
	b.Muli(13, 12, 2)
	b.Label("join")
	b.Add(14, 5, 10)
	b.St(13, 14, 0)
	b.Halt()
	return b.MustBuild()
}

func runDivergent(t *testing.T, cfg sim.Config) *sim.System {
	t.Helper()
	sys, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := sys.Memory()
	n := sys.ThreadCapacity()
	in := m.AllocWords(n)
	out := m.AllocWords(n)
	for i := 0; i < n; i++ {
		m.Write(in+uint64(i)*8, int64(10+i))
	}
	threads := sim.Threads(n, func(tid int, r *isa.RegFile) {
		r.Set(4, int64(in))
		r.Set(5, int64(out))
	})
	if _, err := sys.RunKernel(divergentKernel(t), threads); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := int64(10 + i + 1)
		if i%2 == 1 {
			want = int64((10 + i) * 2)
		}
		if got := m.Read(out + uint64(i)*8); got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
	return sys
}

func TestDivergentBranchConventionalSerialises(t *testing.T) {
	sys := runDivergent(t, smallCfg(wpu.SchemeConv))
	st := sys.TotalStats()
	if st.DivBranch == 0 {
		t.Fatal("no divergent branches recorded")
	}
	if st.BranchSubdivisions != 0 {
		t.Fatal("conventional config subdivided warps")
	}
	// Serialisation halves the width on the two arms.
	if w := st.MeanSIMDWidth(); w >= 4 {
		t.Fatalf("mean width = %g, want < 4 under serialisation", w)
	}
}

func TestDivergentBranchDWSSubdivides(t *testing.T) {
	// Branch subdivision engages when the WPU has no other SIMD group to
	// hide latency with: use a single warp so every divergence qualifies.
	cfg := smallCfg(wpu.SchemeBranchOnly)
	cfg.WPU.Warps = 1
	sys := runDivergent(t, cfg)
	st := sys.TotalStats()
	if st.BranchSubdivisions == 0 {
		t.Fatal("DWS.BranchOnly never subdivided on a divergent branch")
	}
	if st.PeakSplits < 2 {
		t.Fatalf("peak splits = %d, want >= 2", st.PeakSplits)
	}
}

func TestAllSchemesAgreeOnDivergentKernel(t *testing.T) {
	for _, s := range wpu.AllSchemes {
		s := s
		t.Run(string(s), func(t *testing.T) {
			runDivergent(t, smallCfg(s))
		})
	}
}

// memDivergeKernel triggers memory divergence on one instruction: all
// threads warm a shared line, then even threads re-read it (hit) while odd
// threads read private cold lines (miss).
// ABI: R4 = &shared, R5 = &cold (one line per thread), R6 = &out.
func memDivergeKernel(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder("memdiv")
	b.Andi(9, 1, 1)  // parity
	b.Addi(10, 1, 1) // tid+1
	b.Mul(11, 9, 10) // parity ? tid+1 : 0
	b.Muli(12, 11, 128)
	b.Add(13, 5, 12) // odd: cold line; even: &cold[0]...
	b.Mul(14, 9, 13) // odd: addr, even: 0
	b.Movi(15, 1)
	b.Sub(16, 15, 9)  // 1-parity
	b.Mul(17, 16, 4)  // even: shared, odd: 0
	b.Add(13, 14, 17) // final address: even→shared, odd→cold line
	b.Ld(18, 4, 0)    // warm the shared line (uniform access)
	b.Ld(19, 13, 0)   // divergent access
	b.Shli(20, 1, 3)
	b.Add(21, 6, 20)
	b.St(19, 21, 0)
	b.Halt()
	return b.MustBuild()
}

func runMemDiverge(t *testing.T, cfg sim.Config) *sim.System {
	t.Helper()
	sys, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := sys.Memory()
	n := sys.ThreadCapacity()
	shared := m.AllocWords(16)
	cold := m.AllocWords((n + 2) * 16) // one line (16 words) per thread
	out := m.AllocWords(n)
	m.Write(shared, 777)
	for i := 0; i < n+2; i++ {
		m.Write(cold+uint64(i)*128, int64(1000+i))
	}
	threads := sim.Threads(n, func(tid int, r *isa.RegFile) {
		r.Set(4, int64(shared))
		r.Set(5, int64(cold))
		r.Set(6, int64(out))
	})
	if _, err := sys.RunKernel(memDivergeKernel(t), threads); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := int64(777)
		if i%2 == 1 {
			want = int64(1000 + i + 1)
		}
		if got := m.Read(out + uint64(i)*8); got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
	return sys
}

func TestMemoryDivergenceDetected(t *testing.T) {
	sys := runMemDiverge(t, smallCfg(wpu.SchemeConv))
	st := sys.TotalStats()
	if st.MemDivergent == 0 {
		t.Fatal("no divergent memory access recorded")
	}
	if st.MemSubdivisions != 0 {
		t.Fatal("conventional config subdivided on memory divergence")
	}
}

func TestMemoryDivergenceAggressSplits(t *testing.T) {
	sys := runMemDiverge(t, smallCfg(wpu.SchemeAggress))
	st := sys.TotalStats()
	if st.MemSubdivisions == 0 {
		t.Fatal("AggressSplit never subdivided on memory divergence")
	}
}

func TestMemoryDivergenceAllSchemesAgree(t *testing.T) {
	for _, s := range wpu.AllSchemes {
		s := s
		t.Run(string(s), func(t *testing.T) {
			runMemDiverge(t, smallCfg(s))
		})
	}
}

func TestSlipRecordsEvents(t *testing.T) {
	sys := runMemDiverge(t, smallCfg(wpu.SchemeSlip))
	st := sys.TotalStats()
	if st.SlipEvents == 0 {
		t.Fatal("slip never engaged on memory divergence")
	}
	if st.MemSubdivisions != 0 {
		t.Fatal("slip config used DWS subdivision")
	}
}

// barrierKernel: out[tid] = tid; barrier; res[tid] = out[(tid+1) mod n].
// ABI: R4 = &out, R5 = &res.
func barrierKernel(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder("barrier")
	b.Shli(10, 1, 3)
	b.Add(11, 4, 10)
	b.St(1, 11, 0)
	b.Barrier()
	b.Addi(12, 1, 1)
	b.Rem(12, 12, 2)
	b.Shli(13, 12, 3)
	b.Add(14, 4, 13)
	b.Ld(15, 14, 0)
	b.Add(16, 5, 10)
	b.St(15, 16, 0)
	b.Halt()
	return b.MustBuild()
}

func TestBarrierAcrossWPUs(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.WPUs = 2
	cfg.WPU.Warps = 2
	cfg.WPU.Width = 4
	sys, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := sys.Memory()
	n := sys.ThreadCapacity()
	out := m.AllocWords(n)
	res := m.AllocWords(n)
	threads := sim.Threads(n, func(tid int, r *isa.RegFile) {
		r.Set(4, int64(out))
		r.Set(5, int64(res))
	})
	if _, err := sys.RunKernel(barrierKernel(t), threads); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := m.Read(res + uint64(i)*8); got != int64((i+1)%n) {
			t.Fatalf("res[%d] = %d, want %d", i, got, (i+1)%n)
		}
	}
}

func TestBarrierUnderDWS(t *testing.T) {
	cfg := smallCfg(wpu.SchemeRevive)
	sys, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := sys.Memory()
	n := sys.ThreadCapacity()
	out := m.AllocWords(n)
	res := m.AllocWords(n)
	threads := sim.Threads(n, func(tid int, r *isa.RegFile) {
		r.Set(4, int64(out))
		r.Set(5, int64(res))
	})
	if _, err := sys.RunKernel(barrierKernel(t), threads); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := m.Read(res + uint64(i)*8); got != int64((i+1)%n) {
			t.Fatalf("res[%d] = %d, want %d", i, got, (i+1)%n)
		}
	}
}

func TestWSTFullFallsBackToStack(t *testing.T) {
	cfg := smallCfg(wpu.SchemeBranchOnly)
	cfg.WPU.Warps = 1
	cfg.WPU.WSTEntries = 1 // only the root warp fits: no subdivision room
	sys := func() *sim.System {
		s, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}()
	m := sys.Memory()
	n := sys.ThreadCapacity()
	in := m.AllocWords(n)
	out := m.AllocWords(n)
	for i := 0; i < n; i++ {
		m.Write(in+uint64(i)*8, int64(10+i))
	}
	threads := sim.Threads(n, func(tid int, r *isa.RegFile) {
		r.Set(4, int64(in))
		r.Set(5, int64(out))
	})
	if _, err := sys.RunKernel(divergentKernel(t), threads); err != nil {
		t.Fatal(err)
	}
	st := sys.TotalStats()
	if st.BranchSubdivisions != 0 {
		t.Fatal("subdivided despite a full WST")
	}
	if st.WSTFullRefusals == 0 {
		t.Fatal("no WST-full refusals recorded")
	}
	for i := 0; i < n; i++ {
		want := int64(10 + i + 1)
		if i%2 == 1 {
			want = int64((10 + i) * 2)
		}
		if got := m.Read(out + uint64(i)*8); got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestSchedulerSlotContention(t *testing.T) {
	cfg := smallCfg(wpu.SchemeConv)
	cfg.WPU.SchedSlots = 1
	sys, cycles := runVecAdd(t, cfg, 32)
	if cycles == 0 {
		t.Fatal("zero cycles")
	}
	st := sys.TotalStats()
	if st.SlotWaits == 0 {
		t.Fatal("second warp never waited for the single scheduler slot")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	_, a := runVecAdd(t, smallCfg(wpu.SchemeRevive), 64)
	_, b := runVecAdd(t, smallCfg(wpu.SchemeRevive), 64)
	if a != b {
		t.Fatalf("non-deterministic cycles: %d vs %d", a, b)
	}
}

func TestPCReconvergenceMerges(t *testing.T) {
	cfg := smallCfg(wpu.SchemeBranchOnly)
	cfg.WPU.Warps = 1
	sys := runDivergent(t, cfg)
	st := sys.TotalStats()
	if st.PCMerges+st.WaitMerges+st.ScopeMerges == 0 {
		t.Fatal("subdivided warps never re-converged")
	}
}

func TestMultiKernelLaunchAccumulates(t *testing.T) {
	cfg := smallCfg(wpu.SchemeConv)
	sys, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := sys.Memory()
	n := sys.ThreadCapacity()
	out := m.AllocWords(n)
	res := m.AllocWords(n)
	threads := sim.Threads(n, func(tid int, r *isa.RegFile) {
		r.Set(4, int64(out))
		r.Set(5, int64(res))
	})
	p := barrierKernel(t)
	c1, err := sys.RunKernel(p, threads)
	if err != nil {
		t.Fatal(err)
	}
	threads2 := sim.Threads(n, func(tid int, r *isa.RegFile) {
		r.Set(4, int64(out))
		r.Set(5, int64(res))
	})
	c2, err := sys.RunKernel(p, threads2)
	if err != nil {
		t.Fatal(err)
	}
	if c1 == 0 || c2 == 0 {
		t.Fatal("kernel cycles not recorded")
	}
	if sys.Cycles() < uint64(c1)+uint64(c2) {
		t.Fatal("system clock did not accumulate across kernels")
	}
}
