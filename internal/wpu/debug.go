package wpu

import (
	"fmt"
	"strings"
)

// DebugDump renders the WPU's scheduling state for deadlock diagnostics.
func (w *WPU) DebugDump() string {
	if w.Done() {
		return fmt.Sprintf("WPU %d: done\n", w.ID)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "WPU %d: %d splits, %d waiting for slots, cur=%v\n", w.ID, w.splitCount, len(w.slotWait), w.cur)
	for i, s := range w.slots {
		fmt.Fprintf(&sb, "  slot %d: %v\n", i, s)
	}
	for _, warp := range w.warps {
		if warp.live == 0 {
			continue
		}
		fmt.Fprintf(&sb, "  warp %d live=%#x halted=%#x\n", warp.id, uint64(warp.live), uint64(warp.halted))
		for _, s := range warp.splits {
			fmt.Fprintf(&sb, "    %s resident=%v pending=%#x stackDepth=%d",
				s, s.resident, uint64(s.pending), len(s.stack))
			if s.scope != nil {
				fmt.Fprintf(&sb, " scope{reconvPC=%d limit=%v expected=%#x arrived=%#x}",
					s.scope.reconvPC, s.scope.limitControl, uint64(s.scope.expected), uint64(s.scope.arrived))
			}
			for _, e := range s.slipped {
				fmt.Fprintf(&sb, " slip{pc=%d mask=%#x pending=%#x}", e.pc, uint64(e.mask), uint64(e.pending))
			}
			for _, p := range s.parked {
				fmt.Fprintf(&sb, " parked{pc=%d mask=%#x}", p.pc, uint64(p.mask))
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
