package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/report"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	Event string
	Data  string
}

// readSSE consumes a text/event-stream body into frames, stopping after
// the terminal "done" frame (or when the stream ends).
func readSSE(t *testing.T, body *bufio.Scanner) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var cur sseFrame
	for body.Scan() {
		line := body.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.Event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.Event != "" {
				frames = append(frames, cur)
				if cur.Event == "done" {
					return frames
				}
				cur = sseFrame{}
			}
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	return frames
}

// streamJob opens the job's SSE endpoint and reads it to completion.
func streamJob(t *testing.T, ts *httptest.Server, id string) []sseFrame {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	return readSSE(t, bufio.NewScanner(resp.Body))
}

const tracedFilterBody = `{"schema_version":1,"bench":"Filter","knobs":{"scheme":"DWS.ReviveSplit"},"trace":true,"trace_every":500}`

// TestStreamMatchesOfflineTrace is the streaming-equivalence contract: a
// traced run streamed over SSE delivers exactly the events and timeline
// samples an offline RunTraced of the same point records — same content,
// same order — and a subscriber connecting after completion replays the
// identical sequence a live one saw. A prefix of the event frames is
// golden-pinned (testdata/stream_filter_prefix.golden, -update to
// rewrite) so the wire rendering cannot drift silently.
func TestStreamMatchesOfflineTrace(t *testing.T) {
	srv, _, ts := testServer(t, 2, false)
	srv.every = 256 // publish often enough that frames flow mid-run

	doc, resp := postJob(t, ts, tracedFilterBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if doc.StreamURL == "" {
		t.Fatalf("traced job doc has no stream_url: %+v", doc)
	}

	// Live subscriber: attached while the simulation is (typically) still
	// running; replay-from-zero makes the race benign.
	live := streamJob(t, ts, doc.ID)
	// Late subscriber: attached strictly after completion.
	waitJob(t, ts, doc.ID)
	replay := streamJob(t, ts, doc.ID)

	if len(live) == 0 || live[len(live)-1].Event != "done" {
		t.Fatalf("live stream did not terminate with a done frame: %d frames", len(live))
	}
	if len(replay) != len(live) {
		t.Fatalf("late subscriber saw %d frames, live saw %d", len(replay), len(live))
	}
	for i := range live {
		if live[i] != replay[i] {
			t.Fatalf("frame %d differs between live and late subscribers:\n  live   %+v\n  replay %+v", i, live[i], replay[i])
		}
	}

	// The offline equivalent: same point, same sampling interval, fresh
	// session, no server anywhere near it.
	knobs := WireKnobs{Scheme: "DWS.ReviveSplit"}.Knobs()
	tr := obs.New(500)
	direct := report.NewSession()
	r, err := direct.RunTraced("Filter", knobs, tr)
	if err != nil {
		t.Fatal(err)
	}

	var evFrames, saFrames []string
	for _, f := range live[:len(live)-1] {
		switch f.Event {
		case "obs":
			evFrames = append(evFrames, f.Data)
		case "sample":
			saFrames = append(saFrames, f.Data)
		default:
			t.Fatalf("unexpected frame event %q", f.Event)
		}
	}
	if len(evFrames) != len(tr.Events) {
		t.Fatalf("streamed %d events, offline trace has %d", len(evFrames), len(tr.Events))
	}
	for i, e := range tr.Events {
		if want := string(mustJSON(e)); evFrames[i] != want {
			t.Fatalf("event %d: streamed %s, offline %s", i, evFrames[i], want)
		}
	}
	if len(saFrames) != len(tr.Samples) {
		t.Fatalf("streamed %d samples, offline trace has %d", len(saFrames), len(tr.Samples))
	}
	for i, s := range tr.Samples {
		if want := string(mustJSON(s)); saFrames[i] != want {
			t.Fatalf("sample %d: streamed %s, offline %s", i, saFrames[i], want)
		}
	}

	// The terminal done frame carries the canonical result document,
	// compacted to one SSE line.
	var compact bytes.Buffer
	if err := json.Compact(&compact, RenderResultDoc(r, knobs)); err != nil {
		t.Fatal(err)
	}
	if got := live[len(live)-1].Data; got != compact.String() {
		t.Errorf("done frame differs from the canonical result doc:\n%s\nvs\n%s", got, compact.String())
	}

	// Golden prefix: the first event frames, pinned byte-for-byte.
	const prefixN = 10
	n := prefixN
	if len(evFrames) < n {
		n = len(evFrames)
	}
	golden := filepath.Join("testdata", "stream_filter_prefix.golden")
	gotPrefix := strings.Join(evFrames[:n], "\n") + "\n"
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(gotPrefix), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if gotPrefix != string(want) {
		t.Errorf("streamed event prefix drifted from %s:\n--- got ---\n%s--- want ---\n%s(run with -update to accept)", golden, gotPrefix, want)
	}
}

// TestStreamDisconnect hangs up mid-stream and checks the two promised
// non-effects: no goroutine outlives the subscriber, and the job's cached
// result is exactly what an undisturbed run produces.
func TestStreamDisconnect(t *testing.T) {
	_, _, ts := testServer(t, 1, false)

	g0 := runtime.NumGoroutine()

	doc, resp := postJob(t, ts, tracedFilterBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}

	// Subscribe on a cancellable connection and hang up after the first
	// frame (or immediately, if the run outpaced us — the guarantees under
	// test hold either way).
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/jobs/"+doc.ID+"/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := &http.Transport{}
	client := &http.Client{Transport: tr}
	sresp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	sresp.Body.Read(buf) //nolint:errcheck // any bytes (or none) will do
	cancel()
	sresp.Body.Close()
	tr.CloseIdleConnections()

	done := waitJob(t, ts, doc.ID)
	if done.Status != StatusDone {
		t.Fatalf("job after disconnect: %+v", done)
	}

	// The cached result is unperturbed: identical bytes to a direct run.
	knobs := WireKnobs{Scheme: "DWS.ReviveSplit"}.Knobs()
	got, status := fetchResult(t, ts, done.Points[0].ResultKey)
	if status != http.StatusOK {
		t.Fatalf("result fetch after disconnect: status %d", status)
	}
	direct := report.NewSession()
	r, err := direct.Run("Filter", knobs)
	if err != nil {
		t.Fatal(err)
	}
	if want := RenderResultDoc(r, knobs); !bytes.Equal(got, want) {
		t.Errorf("disconnect perturbed the cached result:\n--- served ---\n%s\n--- direct ---\n%s", got, want)
	}

	// No goroutine outlives the subscriber. The pool workers and httptest
	// machinery predate g0; only connections opened since — the dead stream
	// plus the poll helpers' keep-alives, both closed below — could push
	// the count up, so it must settle back.
	deadline := time.Now().Add(10 * time.Second)
	for {
		http.DefaultTransport.(*http.Transport).CloseIdleConnections()
		tr.CloseIdleConnections()
		if runtime.NumGoroutine() <= g0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after disconnect: %d, baseline %d", runtime.NumGoroutine(), g0)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
