package serve

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzJobDecode fuzzes the wire-format decoder with the three invariants
// the package comment promises: it never panics, every rejection is a
// *serve.Error mapping to a 4xx status, and every accepted request is
// well-formed enough to expand into points and re-encode losslessly. The
// checked-in corpus (testdata/fuzz/FuzzJobDecode) seeds the interesting
// shapes: valid runs and sweeps, boundary knobs, and the strictness cases
// (unknown fields, trailing documents, schema skew).
func FuzzJobDecode(f *testing.F) {
	f.Add([]byte(`{"schema_version":1,"bench":"Filter","knobs":{"scheme":"DWS.ReviveSplit"}}`))
	f.Add([]byte(`{"schema_version":1,"kind":"sweep","benches":["Filter","Merge"],"schemes":["Conv","Slip"]}`))
	f.Add([]byte(`{"schema_version":1,"bench":"FFT","knobs":{"scheme":"Conv","wpus":64,"l2kb":65536},"trace":true,"trace_every":1}`))
	f.Add([]byte(`{"schema_version":2,"bench":"Filter","knobs":{"scheme":"Conv"}}`))
	f.Add([]byte(`{"schema_version":1,"bench":"Filter","knobs":{"scheme":"Conv"},"extra":1}`))
	f.Add([]byte(`{"schema_version":1}{"schema_version":1}`))
	f.Add([]byte(`{"knobs":{"dist":"diagonal"}}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`nulltrailing`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, derr := DecodeJobRequest(bytes.NewReader(data))
		if derr != nil {
			if derr.Status < 400 || derr.Status > 499 {
				t.Fatalf("rejection status %d is not a 4xx (%s)", derr.Status, derr.Msg)
			}
			if derr.Msg == "" {
				t.Fatal("rejection with empty message")
			}
			return
		}
		// Accepted requests must expand and survive a re-encode/re-decode
		// cycle without changing meaning.
		pts := req.Points()
		if len(pts) == 0 {
			t.Fatalf("accepted request expands to zero points: %s", data)
		}
		for _, p := range pts {
			if ResultKey(p.Bench, p.Knobs) == "" {
				t.Fatal("point without a result key")
			}
		}
		enc, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("re-encoding accepted request: %v", err)
		}
		again, derr2 := DecodeJobRequest(strings.NewReader(string(enc)))
		if derr2 != nil {
			t.Fatalf("re-decoding accepted request %s (from %s): %d %s", enc, data, derr2.Status, derr2.Msg)
		}
		if len(again.Points()) != len(pts) {
			t.Fatalf("re-decode changed the point count: %s", enc)
		}
	})
}
