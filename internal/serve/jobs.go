package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/report"
)

// Job lifecycle: queued → running → done | failed. The registry is the
// server's source of truth for job state and completed result documents;
// it never blocks on simulation (workers mutate it under a short mutex).
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// ResultKey addresses one simulation point: a digest of the session cache
// key, so every server process derives the same key for the same
// (benchmark, Knobs) point and clients can cache result URLs across
// daemon restarts.
func ResultKey(bench string, k report.Knobs) string {
	d := sha256.Sum256([]byte(k.Key(bench)))
	return hex.EncodeToString(d[:16])
}

// point is one simulation point of a job.
type point struct {
	bench  string
	knobs  report.Knobs
	key    string
	status string // pending | done | failed
}

// job is the registry's record of one submitted request.
type job struct {
	id     string
	req    *JobRequest
	points []point
	status string
	errMsg string
	hub    *streamHub // non-nil iff req.Trace
}

// PointDoc is the wire rendering of one point's lifecycle.
type PointDoc struct {
	Bench     string `json:"bench"`
	Scheme    string `json:"scheme"`
	ResultKey string `json:"result_key"`
	ResultURL string `json:"result_url"`
	Status    string `json:"status"`
}

// JobDoc is the wire rendering of a job: what GET /v1/jobs/{id} returns
// and what POST /v1/jobs echoes back with the assigned ID.
type JobDoc struct {
	SchemaVersion int        `json:"schema_version"`
	ID            string     `json:"id"`
	Status        string     `json:"status"`
	Kind          string     `json:"kind"`
	Trace         bool       `json:"trace,omitempty"`
	StreamURL     string     `json:"stream_url,omitempty"`
	Points        []PointDoc `json:"points"`
	Error         string     `json:"error,omitempty"`
}

// registry tracks jobs and finished result documents. IDs are a logical
// sequence — j001, j002, ... in submission order — because the package
// must stay wall-clock- and randomness-free (see the package comment);
// they reset on daemon restart, which is fine because result keys, the
// durable addresses, are content-derived.
type registry struct {
	mu      sync.Mutex
	seq     int
	jobs    map[string]*job
	order   []string          // submission order for GET /v1/jobs
	results map[string][]byte // result key -> rendered RunDoc JSON
	pending map[string]int    // result key -> jobs referencing it, not yet done
}

func newRegistry() *registry {
	return &registry{
		jobs:    make(map[string]*job),
		results: make(map[string][]byte),
		pending: make(map[string]int),
	}
}

// add registers a validated request and returns its job.
func (rg *registry) add(req *JobRequest) *job {
	pts := req.Points()
	j := &job{req: req, status: StatusQueued, points: make([]point, len(pts))}
	for i, p := range pts {
		j.points[i] = point{bench: p.Bench, knobs: p.Knobs, key: ResultKey(p.Bench, p.Knobs), status: "pending"}
	}
	if req.Trace {
		j.hub = newStreamHub()
	}
	rg.mu.Lock()
	defer rg.mu.Unlock()
	rg.seq++
	j.id = fmt.Sprintf("j%03d", rg.seq)
	rg.jobs[j.id] = j
	rg.order = append(rg.order, j.id)
	for i := range j.points {
		if _, done := rg.results[j.points[i].key]; done {
			j.points[i].status = StatusDone
		} else {
			rg.pending[j.points[i].key]++
		}
	}
	return j
}

// get returns the job by ID.
func (rg *registry) get(id string) (*job, bool) {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	j, ok := rg.jobs[id]
	return j, ok
}

// setRunning marks the job picked up by a worker.
func (rg *registry) setRunning(j *job) {
	rg.mu.Lock()
	j.status = StatusRunning
	rg.mu.Unlock()
}

// completePoint records one finished point and its rendered document.
func (rg *registry) completePoint(j *job, i int, doc []byte) {
	rg.mu.Lock()
	j.points[i].status = StatusDone
	key := j.points[i].key
	if _, ok := rg.results[key]; !ok {
		rg.results[key] = doc
	}
	delete(rg.pending, key)
	rg.mu.Unlock()
}

// finish closes out a job; err == "" means success. Points still pending
// (after a mid-sweep failure) are marked failed.
func (rg *registry) finish(j *job, errMsg string) {
	rg.mu.Lock()
	j.errMsg = errMsg
	if errMsg == "" {
		j.status = StatusDone
	} else {
		j.status = StatusFailed
		for i := range j.points {
			if j.points[i].status == "pending" {
				j.points[i].status = StatusFailed
			}
		}
	}
	rg.mu.Unlock()
}

// result returns the rendered document for a result key, with a
// three-way outcome: (doc, true, _) when done, (nil, false, true) when a
// registered job still owes it, and (nil, false, false) for keys no job
// here has ever named.
func (rg *registry) result(key string) (doc []byte, ok, pending bool) {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	if doc, ok := rg.results[key]; ok {
		return doc, true, false
	}
	_, pending = rg.pending[key]
	return nil, false, pending
}

// doc renders a job under the registry lock.
func (rg *registry) doc(j *job) JobDoc {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	kind := j.req.Kind
	if kind == "" {
		kind = "run"
	}
	d := JobDoc{
		SchemaVersion: WireSchemaVersion,
		ID:            j.id,
		Status:        j.status,
		Kind:          kind,
		Trace:         j.req.Trace,
		Error:         j.errMsg,
		Points:        make([]PointDoc, len(j.points)),
	}
	if j.req.Trace {
		d.StreamURL = "/v1/jobs/" + j.id + "/stream"
	}
	for i, p := range j.points {
		d.Points[i] = PointDoc{
			Bench:     p.bench,
			Scheme:    string(p.knobs.Scheme),
			ResultKey: p.key,
			ResultURL: "/v1/results/" + p.key,
			Status:    p.status,
		}
	}
	return d
}

// list renders every job in submission order.
func (rg *registry) list() []JobDoc {
	rg.mu.Lock()
	ids := append([]string(nil), rg.order...)
	rg.mu.Unlock()
	docs := make([]JobDoc, 0, len(ids))
	for _, id := range ids {
		if j, ok := rg.get(id); ok {
			docs = append(docs, rg.doc(j))
		}
	}
	return docs
}

// counts tallies jobs by status for /metrics.
func (rg *registry) counts() map[string]int {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	c := map[string]int{StatusQueued: 0, StatusRunning: 0, StatusDone: 0, StatusFailed: 0}
	for _, id := range rg.order {
		c[rg.jobs[id].status]++
	}
	return c
}

// RenderResultDoc is the canonical rendering of one completed point: the
// same report.RunDoc a local `dwsim -stats` run would emit, with the two
// server-independent fields pinned (source "server", wall time zero) so
// the bytes are identical no matter which process — or which of N
// deduplicated clients — asked. The e2e tests diff these bytes against a
// direct Session.Run rendering.
func RenderResultDoc(r report.Result, k report.Knobs) []byte {
	doc := report.NewRunDoc(r, k, "server", 0)
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		// RunDoc is a closed struct of marshalable fields; failure here is a
		// programming error, not an input error.
		panic(fmt.Sprintf("serve: marshal result doc: %v", err))
	}
	return append(b, '\n')
}
