package serve

import "sync"

// pool is the daemon's bounded job executor: n long-lived workers
// draining one submission-ordered feed. It is the only place in this
// package that launches goroutines (dwslint's goroutine check approves
// exactly this file alongside the report.Session worker pool) — HTTP
// handler concurrency belongs to net/http, and streaming subscribers ride
// their handler goroutines (see stream.go).
//
// Simulation-level parallelism inside one sweep job still comes from
// Session.Prefetch; the pool bounds how many *jobs* make progress at
// once, so one giant sweep cannot starve interactive single runs for
// longer than its own prefetch batch.
type pool struct {
	feed chan *job
	wg   sync.WaitGroup
}

// startPool launches n workers applying run to each job in feed order.
func startPool(n int, run func(*job)) *pool {
	if n < 1 {
		n = 1
	}
	p := &pool{feed: make(chan *job, 64)}
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for j := range p.feed {
				run(j)
			}
		}()
	}
	return p
}

// submit enqueues a job; it blocks only when the backlog buffer is full,
// which bounds the daemon's accepted-but-unstarted work.
func (p *pool) submit(j *job) { p.feed <- j }

// close drains the feed and waits for in-flight jobs to finish.
func (p *pool) close() {
	close(p.feed)
	p.wg.Wait()
}
