// Package serve is the simulation-as-a-service layer: a stdlib net/http
// daemon (cmd/dwsimd) that accepts simulation and sweep jobs as validated
// JSON, deduplicates them through the singleflight report.Session,
// executes them on a bounded worker pool, and streams observability
// events and timeline samples for in-flight traced runs over SSE.
//
// Wire format. Jobs arrive as JobRequest documents whose knob vector
// (WireKnobs) mirrors report.Knobs field for field — the mirror is
// reflection-guarded by TestWireKnobsMirrorsKnobs, so a knob added to the
// simulator cannot silently become unreachable over the wire. Decoding is
// strict (unknown fields and trailing garbage rejected, schema version
// pinned) and every failure maps to a 4xx status via *Error; the decoder
// is fuzzed (FuzzJobDecode) and must never panic.
//
// Determinism. The server adds no nondeterminism of its own: job IDs are
// a logical sequence (j001, j002, ...), result keys are content digests
// of the canonical point encoding, result documents are rendered exactly
// like a local Session.Run would render them (byte-identical — the e2e
// tests diff the bytes), and the package never reads the wall clock (the
// dwslint wallclock check applies here too).
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workloads"
	"repro/internal/wpu"
)

// WireSchemaVersion pins the request layout. Requests carrying any other
// version are rejected with 400 before validation, so schema skew between
// old clients and a new server fails loudly instead of misconfiguring a
// simulation.
const WireSchemaVersion = 1

// Error is a request-rejection error carrying the HTTP status it maps to.
// Every path out of DecodeJobRequest returns one, so handlers can blindly
// write e.Status without classifying error strings.
type Error struct {
	Status int // 4xx
	Msg    string
}

func (e *Error) Error() string { return e.Msg }

func badRequest(format string, args ...any) *Error {
	return &Error{Status: http.StatusBadRequest, Msg: fmt.Sprintf(format, args...)}
}

// WireKnobs is the JSON mirror of report.Knobs. Zero values select the
// same defaults the CLI flags do (Table 3), so a minimal request like
// {"bench":"Merge","knobs":{"scheme":"DWS.ReviveSplit"}} denotes exactly
// the configuration `dwsim -bench Merge -scheme DWS.ReviveSplit` runs,
// and two requests spelling the same point differently dedupe onto one
// cache key.
type WireKnobs struct {
	WPUs    int    `json:"wpus,omitempty"`
	Width   int    `json:"width,omitempty"`
	Warps   int    `json:"warps,omitempty"`
	Slots   int    `json:"slots,omitempty"`
	WST     int    `json:"wst,omitempty"`
	L1KB    int    `json:"l1kb,omitempty"`
	L1Assoc int    `json:"l1assoc,omitempty"`
	L2KB    int    `json:"l2kb,omitempty"`
	L2Lat   int    `json:"l2lat,omitempty"`
	Scheme  string `json:"scheme,omitempty"`
	Dist    string `json:"dist,omitempty"` // "", "block", or "interleave"
	Scale   int    `json:"scale,omitempty"`

	NoWaitMerge  bool `json:"no_wait_merge,omitempty"`
	NoProgSched  bool `json:"no_prog_sched,omitempty"`
	NoMemHints   bool `json:"no_mem_hints,omitempty"`
	BranchThresh int  `json:"branch_thresh,omitempty"`
}

// wireDefaults are the zero-value substitutions Knobs applies, one per
// field where 0 is not already the Table 3 default in report.Knobs
// (there, WPUs/Slots/L1Assoc/Scale/BranchThresh treat 0 as the default
// downstream).
var wireDefaults = WireKnobs{
	Width: 16, Warps: 4, WST: 16, L1KB: 32, L1Assoc: 8, L2KB: 4096, L2Lat: 30,
}

// Knobs expands the wire form into the simulator's knob vector, applying
// the CLI defaults for zero-valued fields. It does not validate — see
// (*JobRequest).Validate — so round-tripping arbitrary vectors stays
// total.
func (w WireKnobs) Knobs() report.Knobs {
	pick := func(v, def int) int {
		if v == 0 {
			return def
		}
		return v
	}
	k := report.Knobs{
		WPUs:    w.WPUs,
		Width:   pick(w.Width, wireDefaults.Width),
		Warps:   pick(w.Warps, wireDefaults.Warps),
		Slots:   w.Slots,
		WST:     pick(w.WST, wireDefaults.WST),
		L1KB:    pick(w.L1KB, wireDefaults.L1KB),
		L1Assoc: pick(w.L1Assoc, wireDefaults.L1Assoc),
		L2KB:    pick(w.L2KB, wireDefaults.L2KB),
		L2Lat:   pick(w.L2Lat, wireDefaults.L2Lat),
		Scheme:  wpu.Scheme(w.Scheme),
		Scale:   w.Scale,

		NoWaitMerge:  w.NoWaitMerge,
		NoProgSched:  w.NoProgSched,
		NoMemHints:   w.NoMemHints,
		BranchThresh: w.BranchThresh,
	}
	if w.Dist == "interleave" {
		k.Dist = sim.DistInterleave
	}
	return k
}

// FromKnobs is the inverse mirror: it renders a simulator knob vector in
// wire form such that FromKnobs(k).Knobs() == k for every valid k (the
// reflection test walks all fields).
func FromKnobs(k report.Knobs) WireKnobs {
	w := WireKnobs{
		WPUs: k.WPUs, Width: k.Width, Warps: k.Warps, Slots: k.Slots, WST: k.WST,
		L1KB: k.L1KB, L1Assoc: k.L1Assoc, L2KB: k.L2KB, L2Lat: k.L2Lat,
		Scheme: string(k.Scheme), Scale: k.Scale,
		NoWaitMerge: k.NoWaitMerge, NoProgSched: k.NoProgSched,
		NoMemHints: k.NoMemHints, BranchThresh: k.BranchThresh,
	}
	if k.Dist == sim.DistInterleave {
		w.Dist = "interleave"
	}
	return w
}

// JobRequest is the POST /v1/jobs body.
type JobRequest struct {
	SchemaVersion int `json:"schema_version"`
	// Kind selects the job shape: "run" (default) simulates Bench under
	// Knobs; "sweep" crosses Benches × Schemes over the shared Knobs.
	Kind  string    `json:"kind,omitempty"`
	Bench string    `json:"bench,omitempty"`
	Knobs WireKnobs `json:"knobs"`

	// Sweep dimensions (kind == "sweep" only).
	Benches []string `json:"benches,omitempty"`
	Schemes []string `json:"schemes,omitempty"`

	// Trace forces a live run with the observability sink attached and
	// enables GET /v1/jobs/{id}/stream for this job (single-point runs
	// only). TraceEvery is the timeline sampling interval in cycles
	// (0 = 1000, the dwsim default).
	Trace      bool   `json:"trace,omitempty"`
	TraceEvery uint64 `json:"trace_every,omitempty"`
}

// maxJobBody bounds a request body: the largest legitimate sweep (all
// benchmarks × all schemes, every knob spelled out) is well under 4 KiB.
const maxJobBody = 1 << 16

// DecodeJobRequest reads and strictly validates one job request. Any
// returned error is a *serve.Error carrying a 4xx status; the function
// never panics on malformed input (FuzzJobDecode).
func DecodeJobRequest(r io.Reader) (*JobRequest, *Error) {
	// The +1 keeps the handler's MaxBytesReader (capped at exactly
	// maxJobBody) as the component that trips first, so oversized bodies
	// surface as 413 rather than a truncated-JSON 400; for direct callers
	// (fuzzing) this still bounds how much we will ever read.
	dec := json.NewDecoder(io.LimitReader(r, maxJobBody+1))
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return nil, &Error{Status: http.StatusRequestEntityTooLarge, Msg: "request body too large"}
		}
		return nil, badRequest("malformed job request: %v", err)
	}
	// A second document in the body is as suspect as an unknown field.
	if dec.More() {
		return nil, badRequest("trailing data after job request")
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// knownScheme reports whether s names one of the 13 named configurations
// (wpu.Scheme.Apply panics on anything else, so this is a hard gate).
func knownScheme(s string) bool {
	for _, sc := range wpu.AllSchemes {
		if string(sc) == s {
			return true
		}
	}
	return false
}

// validateKnobs bounds every numeric knob to the ranges the sweeps
// exercise, with headroom. The caps are not about simulator correctness —
// it would happily build a 1 GiB L1 — but about a public endpoint not
// accepting jobs whose memory or run time is unbounded.
func (w WireKnobs) validate() *Error {
	type bound struct {
		name string
		v    int
		max  int
	}
	for _, b := range []bound{
		{"wpus", w.WPUs, 64},
		{"width", w.Width, 64},
		{"warps", w.Warps, 64},
		{"slots", w.Slots, 256},
		{"wst", w.WST, 1024},
		{"l1kb", w.L1KB, 1024},
		{"l1assoc", w.L1Assoc, 64},
		{"l2kb", w.L2KB, 65536},
		{"l2lat", w.L2Lat, 10000},
		{"scale", w.Scale, 8},
		{"branch_thresh", w.BranchThresh, 64},
	} {
		if b.v < 0 || b.v > b.max {
			return badRequest("knobs.%s = %d out of range [0, %d]", b.name, b.v, b.max)
		}
	}
	switch w.Dist {
	case "", "block", "interleave":
	default:
		return badRequest("knobs.dist = %q (want block or interleave)", w.Dist)
	}
	return nil
}

// Validate checks the request against the schema: version pin, job shape,
// known benchmarks and schemes, bounded knobs.
func (r *JobRequest) Validate() *Error {
	if r.SchemaVersion != WireSchemaVersion {
		return badRequest("schema_version = %d, this server speaks %d", r.SchemaVersion, WireSchemaVersion)
	}
	if err := r.Knobs.validate(); err != nil {
		return err
	}
	switch r.Kind {
	case "", "run":
		if r.Bench == "" {
			return badRequest("run job: bench required")
		}
		if len(r.Benches) > 0 || len(r.Schemes) > 0 {
			return badRequest("run job: benches/schemes are sweep fields")
		}
		if _, err := workloads.ByName(r.Bench); err != nil {
			return badRequest("unknown bench %q", r.Bench)
		}
		if r.Knobs.Scheme == "" {
			return badRequest("run job: knobs.scheme required")
		}
		if !knownScheme(r.Knobs.Scheme) {
			return badRequest("unknown scheme %q", r.Knobs.Scheme)
		}
	case "sweep":
		if r.Trace {
			return badRequest("sweep jobs cannot be traced (stream a single run instead)")
		}
		if r.Bench != "" {
			return badRequest("sweep job: use benches, not bench")
		}
		if r.Knobs.Scheme != "" {
			return badRequest("sweep job: use schemes, not knobs.scheme")
		}
		if len(r.Benches) == 0 || len(r.Schemes) == 0 {
			return badRequest("sweep job: benches and schemes both required")
		}
		if len(r.Benches)*len(r.Schemes) > 1024 {
			return badRequest("sweep of %d points exceeds the 1024-point cap", len(r.Benches)*len(r.Schemes))
		}
		for _, b := range r.Benches {
			if _, err := workloads.ByName(b); err != nil {
				return badRequest("unknown bench %q", b)
			}
		}
		for _, s := range r.Schemes {
			if !knownScheme(s) {
				return badRequest("unknown scheme %q", s)
			}
		}
	default:
		return badRequest("kind = %q (want run or sweep)", r.Kind)
	}
	if r.Trace && r.TraceEvery > 1_000_000_000 {
		return badRequest("trace_every = %d out of range", r.TraceEvery)
	}
	if !r.Trace && r.TraceEvery != 0 {
		return badRequest("trace_every without trace")
	}
	return nil
}

// Points expands a validated request into its simulation points in
// deterministic order (benches outer, schemes inner — the sweep's
// presentation order).
func (r *JobRequest) Points() []report.Job {
	if r.Kind == "" || r.Kind == "run" {
		return []report.Job{{Bench: r.Bench, Knobs: r.Knobs.Knobs()}}
	}
	pts := make([]report.Job, 0, len(r.Benches)*len(r.Schemes))
	for _, b := range r.Benches {
		for _, s := range r.Schemes {
			wk := r.Knobs
			wk.Scheme = s
			pts = append(pts, report.Job{Bench: b, Knobs: wk.Knobs()})
		}
	}
	return pts
}
