package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/sim"
)

// Config assembles a Server.
type Config struct {
	// Session executes and deduplicates runs; required. The server takes
	// over its OnSystem hook (for the live /metrics snapshot).
	Session *report.Session
	// Store is the session's sharded on-disk store, if any; the server
	// only reads its Stats for /metrics.
	Store *report.Store
	// Workers bounds concurrent jobs (0 = Session.Jobs()).
	Workers int
	// StreamEvery is the default SSE publish cadence in simulated cycles
	// for traced jobs (0 = 2048).
	StreamEvery uint64
}

// Server is the simulation-as-a-service daemon: job submission, job
// lifecycle, result fetch, live trace streaming, and Prometheus metrics,
// all on one http.Handler. Construct with New, start the workers with
// Start, and Close to drain.
type Server struct {
	session *report.Session
	store   *report.Store
	reg     *registry
	pool    *pool
	live    *sim.Live
	workers int
	every   uint64
	mux     *http.ServeMux
}

// New assembles a Server (not yet executing jobs; call Start).
func New(cfg Config) *Server {
	s := &Server{
		session: cfg.Session,
		store:   cfg.Store,
		reg:     newRegistry(),
		live:    sim.NewLive(0),
		workers: cfg.Workers,
		every:   cfg.StreamEvery,
		mux:     http.NewServeMux(),
	}
	if s.workers == 0 {
		s.workers = cfg.Session.Jobs()
	}
	// Untraced runs publish into the shared live snapshot; traced runs get
	// a per-job hook chained in runJob.
	s.session.OnSystem = s.live.Attach

	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /v1/results/{key}", s.handleResult)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"status\":\"ok\",\"schema_version\":%d}\n", WireSchemaVersion)
	})
	return s
}

// Start launches the worker pool. Separate from New so tests can submit
// against a cold registry.
func (s *Server) Start() { s.pool = startPool(s.workers, s.runJob) }

// Close drains the job feed and waits for in-flight simulations.
func (s *Server) Close() {
	if s.pool != nil {
		s.pool.close()
	}
}

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// writeJSON renders one response document.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best-effort: the peer may hang up
}

// writeError maps a *serve.Error onto the wire.
func writeError(w http.ResponseWriter, e *Error) {
	writeJSON(w, e.Status, map[string]string{"error": e.Msg})
}

// handleSubmit is POST /v1/jobs: decode, validate, register, enqueue.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxJobBody)
	req, derr := DecodeJobRequest(body)
	if derr != nil {
		writeError(w, derr)
		return
	}
	io.Copy(io.Discard, body) //nolint:errcheck // drain for keep-alive
	j := s.reg.add(req)
	if s.pool != nil { // before Start the job just sits queued
		s.pool.submit(j)
	}
	writeJSON(w, http.StatusAccepted, s.reg.doc(j))
}

// handleList is GET /v1/jobs.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.list())
}

// handleJob is GET /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeError(w, &Error{Status: http.StatusNotFound, Msg: "unknown job " + r.PathValue("id")})
		return
	}
	writeJSON(w, http.StatusOK, s.reg.doc(j))
}

// handleStream is GET /v1/jobs/{id}/stream: SSE replay of a traced job's
// obs events and timeline samples.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeError(w, &Error{Status: http.StatusNotFound, Msg: "unknown job " + r.PathValue("id")})
		return
	}
	if j.hub == nil {
		writeError(w, &Error{Status: http.StatusConflict,
			Msg: "job " + j.id + " was not submitted with \"trace\": true"})
		return
	}
	serveStream(w, r, j.hub)
}

// handleResult is GET /v1/results/{key}: the canonical RunDoc bytes for a
// completed point; 404 with a pending marker while a job still owes it.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	doc, ok, pending := s.reg.result(key)
	if ok {
		w.Header().Set("Content-Type", "application/json")
		w.Write(doc) //nolint:errcheck // best-effort: the peer may hang up
		return
	}
	if pending {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "result not ready", "status": "pending"})
		return
	}
	writeError(w, &Error{Status: http.StatusNotFound, Msg: "unknown result key " + key})
}

// handleMetrics is GET /metrics: daemon counters (jobs, session cache,
// store shards) followed by the live snapshot of whatever the simulator
// is doing right now.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	counts := s.reg.counts()
	fmt.Fprintf(w, "# HELP dwsimd_jobs Jobs by lifecycle state.\n# TYPE dwsimd_jobs gauge\n")
	for _, st := range []string{StatusQueued, StatusRunning, StatusDone, StatusFailed} {
		fmt.Fprintf(w, "dwsimd_jobs{state=%q} %d\n", st, counts[st])
	}
	cs := s.session.Stats()
	fmt.Fprintf(w, "# HELP dwsimd_session_requests_total Session.Run requests by how they were satisfied.\n# TYPE dwsimd_session_requests_total counter\n")
	fmt.Fprintf(w, "dwsimd_session_requests_total{source=\"mem\"} %d\n", cs.MemHits)
	fmt.Fprintf(w, "dwsimd_session_requests_total{source=\"disk\"} %d\n", cs.DiskHits)
	fmt.Fprintf(w, "dwsimd_session_requests_total{source=\"simulated\"} %d\n", cs.Misses)
	if s.store != nil {
		ss := s.store.Stats()
		fmt.Fprintf(w, "# HELP dwsimd_store_ops_total Sharded result-store operations.\n# TYPE dwsimd_store_ops_total counter\n")
		fmt.Fprintf(w, "dwsimd_store_ops_total{op=\"hit\"} %d\n", ss.Hits)
		fmt.Fprintf(w, "dwsimd_store_ops_total{op=\"miss\"} %d\n", ss.Misses)
		fmt.Fprintf(w, "dwsimd_store_ops_total{op=\"save\"} %d\n", ss.Saves)
		fmt.Fprintf(w, "# HELP dwsimd_store_evictions_total Records evicted by the LRU byte cap.\n# TYPE dwsimd_store_evictions_total counter\n")
		fmt.Fprintf(w, "dwsimd_store_evictions_total %d\n", ss.Evictions)
		fmt.Fprintf(w, "# HELP dwsimd_store_evicted_bytes_total Bytes reclaimed by eviction.\n# TYPE dwsimd_store_evicted_bytes_total counter\n")
		fmt.Fprintf(w, "dwsimd_store_evicted_bytes_total %d\n", ss.EvictedBytes)
		fmt.Fprintf(w, "# HELP dwsimd_store_bytes_in_use On-disk footprint of the store.\n# TYPE dwsimd_store_bytes_in_use gauge\n")
		fmt.Fprintf(w, "dwsimd_store_bytes_in_use %d\n", ss.BytesInUse)
		fmt.Fprintf(w, "# HELP dwsimd_store_records Records indexed across %d shards.\n# TYPE dwsimd_store_records gauge\n", ss.Shards)
		fmt.Fprintf(w, "dwsimd_store_records %d\n", ss.Records)
	}
	s.live.WriteMetrics(w)
}

// runJob executes one job on a pool worker.
func (s *Server) runJob(j *job) {
	s.reg.setRunning(j)
	if j.hub != nil {
		s.runTracedJob(j)
		return
	}
	// Sweeps fan out over the session's Prefetch pool first, so the points
	// simulate in parallel and the collection loop below reads warm cache.
	if len(j.points) > 1 {
		jobs := make([]report.Job, len(j.points))
		for i, p := range j.points {
			jobs[i] = report.Job{Bench: p.bench, Knobs: p.knobs}
		}
		if err := s.session.Prefetch(jobs); err != nil {
			s.reg.finish(j, err.Error())
			return
		}
	}
	for i := range j.points {
		p := &j.points[i]
		s.live.SetMeta(p.bench, string(p.knobs.Scheme))
		r, err := s.session.Run(p.bench, p.knobs)
		if err != nil {
			s.reg.finish(j, err.Error())
			return
		}
		s.reg.completePoint(j, i, RenderResultDoc(r, p.knobs))
	}
	s.reg.finish(j, "")
}

// runTracedJob executes a single-point traced job, streaming the trace
// through the job's hub while the machine runs.
func (s *Server) runTracedJob(j *job) {
	p := &j.points[0]
	every := j.req.TraceEvery
	if every == 0 {
		every = 1000 // the dwsim -obsevery default
	}
	tr := obs.New(every)
	pub := &publisher{hub: j.hub, tr: tr}
	streamEvery := s.every
	s.live.SetMeta(p.bench, string(p.knobs.Scheme))
	r, err := s.session.RunTracedWith(p.bench, p.knobs, tr, func(sys *sim.System) {
		s.live.Attach(sys)
		pub.attach(sys, streamEvery)
	})
	if err != nil {
		pub.finishError(err.Error())
		s.reg.finish(j, err.Error())
		return
	}
	doc := RenderResultDoc(r, p.knobs)
	s.reg.completePoint(j, 0, doc)
	s.reg.finish(j, "")
	pub.finishSuccess(doc)
}
