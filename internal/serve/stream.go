package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Live trace streaming. A traced job gets a streamHub: the simulation
// goroutine publishes frames into it from inside the System's per-cycle
// Tracer hook, and any number of SSE clients replay the frame log from
// the start. The design deliberately has no per-subscriber goroutines and
// no per-subscriber channels:
//
//   - The publisher appends pre-rendered frames under a mutex and closes
//     a broadcast channel; it can never block on a slow client, so a
//     stalled curl cannot stall the machine.
//   - A subscriber is just the net/http handler goroutine reading the
//     frame log by index and waiting on the broadcast channel or its own
//     request context — on disconnect it simply returns, so there is
//     nothing to leak (TestStreamDisconnect pins the goroutine count).
//   - Because frames are replayed from index zero, a late subscriber sees
//     the identical sequence an early one does, which is what makes the
//     SSE stream comparable byte-for-byte with an offline dwstrace run of
//     the same point (TestStreamMatchesOfflineTrace).
//
// Frame log growth is bounded by the same thing that bounds an offline
// obs.Trace of the run: one frame per event/sample.

// frame is one server-sent event, pre-rendered once for all subscribers.
type frame struct {
	event string // SSE event name: "obs", "sample", or "done"
	data  []byte // one-line JSON payload
}

// streamHub is the per-job frame log plus its broadcast signal.
type streamHub struct {
	mu     sync.Mutex
	frames []frame
	done   bool
	notify chan struct{} // closed and replaced on every publish
}

func newStreamHub() *streamHub {
	return &streamHub{notify: make(chan struct{})}
}

// publish appends frames and wakes every waiting subscriber; final
// publishes mark the log complete.
func (h *streamHub) publish(fs []frame, final bool) {
	if len(fs) == 0 && !final {
		return
	}
	h.mu.Lock()
	h.frames = append(h.frames, fs...)
	if final {
		h.done = true
	}
	close(h.notify)
	h.notify = make(chan struct{})
	h.mu.Unlock()
}

// snapshot returns the frames past `from` plus completion state and the
// channel that will signal the next publish.
func (h *streamHub) snapshot(from int) (fs []frame, done bool, notify <-chan struct{}) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.frames[from:len(h.frames):len(h.frames)], h.done, h.notify
}

// publisher incrementally renders a trace into hub frames. It runs
// entirely on the simulation goroutine (Tracer hook + final flush), so
// reading the still-filling obs.Trace is race-free by construction.
type publisher struct {
	hub    *streamHub
	tr     *obs.Trace
	nextEv int
	nextSa int
}

// flush renders everything newly appended to the trace. Events and
// samples are interleaved in cycle order — the same order an offline
// export walks them — with ties broken events-first (a sample at cycle c
// summarizes the interval ending at c, after its events).
func (p *publisher) flush(final bool) {
	var fs []frame
	evs, sas := p.tr.Events[p.nextEv:], p.tr.Samples[p.nextSa:]
	for len(evs) > 0 || len(sas) > 0 {
		if len(sas) == 0 || (len(evs) > 0 && evs[0].Cycle <= sas[0].Cycle) {
			fs = append(fs, frame{event: "obs", data: mustJSON(evs[0])})
			evs = evs[1:]
		} else {
			fs = append(fs, frame{event: "sample", data: mustJSON(sas[0])})
			sas = sas[1:]
		}
	}
	p.nextEv = len(p.tr.Events)
	p.nextSa = len(p.tr.Samples)
	p.hub.publish(fs, final)
}

// attach chains the publisher onto the machine's per-cycle Tracer so
// frames flow while the run is in flight, not only at the end. every is
// the publish cadence in cycles.
func (p *publisher) attach(sys *sim.System, every uint64) {
	if every == 0 {
		every = 2048
	}
	prev := sys.Tracer
	sys.Tracer = func(cycle uint64) {
		if prev != nil {
			prev(cycle)
		}
		if cycle%every == 0 {
			p.flush(false)
		}
	}
}

// finishSuccess publishes the trace tail and the terminal done frame
// carrying the canonical result document. The document renders indented
// for /v1/results; SSE payloads must be one line, so it is compacted here.
func (p *publisher) finishSuccess(doc []byte) {
	p.flush(false)
	var buf bytes.Buffer
	if err := json.Compact(&buf, doc); err != nil {
		panic(fmt.Sprintf("serve: compact result doc: %v", err))
	}
	p.hub.publish([]frame{{event: "done", data: buf.Bytes()}}, true)
}

// finishError publishes a terminal error frame.
func (p *publisher) finishError(msg string) {
	p.hub.publish([]frame{{event: "done", data: mustJSON(map[string]string{"status": StatusFailed, "error": msg})}}, true)
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("serve: marshal stream frame: %v", err))
	}
	return b
}

// serveStream writes the job's frame log as Server-Sent Events until the
// log completes or the client goes away.
func serveStream(w http.ResponseWriter, r *http.Request, h *streamHub) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported by this connection", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	next := 0
	for {
		fs, done, notify := h.snapshot(next)
		for _, f := range fs {
			if err := writeSSE(w, f); err != nil {
				return // client hung up mid-write
			}
		}
		if len(fs) > 0 {
			fl.Flush()
		}
		next += len(fs)
		if done {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE renders one frame in the SSE wire format. Payloads are
// single-line JSON, so one data: line suffices.
func writeSSE(w io.Writer, f frame) error {
	_, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", f.event, f.data)
	return err
}
