package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/report"
)

// testServer assembles a started Server over a fresh Session (optionally
// store-backed) and an httptest front end, torn down with the test.
func testServer(t *testing.T, workers int, withStore bool) (*Server, *report.Session, *httptest.Server) {
	t.Helper()
	opts := []report.Option{report.WithJobs(workers)}
	var st *report.Store
	if withStore {
		var err error
		st, err = report.OpenStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		opts = append(opts, report.WithStore(st))
	}
	session := report.NewSession(opts...)
	srv := New(Config{Session: session, Store: st, Workers: workers})
	srv.Start()
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, session, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (JobDoc, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc JobDoc
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatalf("decoding job doc: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
	}
	return doc, resp
}

func getJob(t *testing.T, ts *httptest.Server, id string) JobDoc {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs/%s: status %d", id, resp.StatusCode)
	}
	var doc JobDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// waitJob polls the lifecycle endpoint until the job leaves the
// queued/running states, exactly as an HTTP client would.
func waitJob(t *testing.T, ts *httptest.Server, id string) JobDoc {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		doc := getJob(t, ts, id)
		if doc.Status == StatusDone || doc.Status == StatusFailed {
			return doc
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in status %q", id, doc.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func fetchResult(t *testing.T, ts *httptest.Server, key string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/results/" + key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b, resp.StatusCode
}

const runFilterBody = `{"schema_version":1,"bench":"Filter","knobs":{"scheme":"DWS.ReviveSplit"}}`

// TestSubmitPollFetch is the core e2e contract: submit → poll → fetch
// returns byte-for-byte what a direct Session.Run of the same point
// renders, through a completely separate session in this process.
func TestSubmitPollFetch(t *testing.T) {
	_, _, ts := testServer(t, 2, true)

	doc, resp := postJob(t, ts, runFilterBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if doc.ID != "j001" || doc.Kind != "run" || len(doc.Points) != 1 {
		t.Fatalf("submit echo: %+v", doc)
	}

	done := waitJob(t, ts, doc.ID)
	if done.Status != StatusDone || done.Points[0].Status != StatusDone {
		t.Fatalf("job finished as %+v", done)
	}

	got, status := fetchResult(t, ts, done.Points[0].ResultKey)
	if status != http.StatusOK {
		t.Fatalf("fetch result: status %d", status)
	}

	// The reference rendering: a direct run on an unrelated session.
	knobs := WireKnobs{Scheme: "DWS.ReviveSplit"}.Knobs()
	if ResultKey("Filter", knobs) != done.Points[0].ResultKey {
		t.Fatalf("server derived result key %s, client derives %s", done.Points[0].ResultKey, ResultKey("Filter", knobs))
	}
	direct := report.NewSession()
	r, err := direct.Run("Filter", knobs)
	if err != nil {
		t.Fatal(err)
	}
	want := RenderResultDoc(r, knobs)
	if !bytes.Equal(got, want) {
		t.Errorf("served result differs from direct Session.Run rendering:\n--- served ---\n%s\n--- direct ---\n%s", got, want)
	}
}

// TestDuplicateSubmissionsSingleflight submits the same point from many
// concurrent clients: exactly one simulation runs (the session counts
// misses), every job completes, and every fetch returns identical bytes.
func TestDuplicateSubmissionsSingleflight(t *testing.T) {
	const clients = 8
	_, session, ts := testServer(t, 4, false)

	var wg sync.WaitGroup
	ids := make([]string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(runFilterBody))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var doc JobDoc
			if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
				t.Error(err)
				return
			}
			ids[i] = doc.ID
		}(i)
	}
	wg.Wait()

	var first []byte
	for _, id := range ids {
		if id == "" {
			t.Fatal("a submission failed")
		}
		doc := waitJob(t, ts, id)
		if doc.Status != StatusDone {
			t.Fatalf("job %s: %+v", id, doc)
		}
		b, status := fetchResult(t, ts, doc.Points[0].ResultKey)
		if status != http.StatusOK {
			t.Fatalf("job %s result fetch: status %d", id, status)
		}
		if first == nil {
			first = b
		} else if !bytes.Equal(first, b) {
			t.Fatalf("job %s fetched different bytes than its duplicates", id)
		}
	}

	cs := session.Stats()
	if cs.Misses != 1 {
		t.Errorf("%d duplicate submissions ran %d simulations, want exactly 1 (stats %+v)", clients, cs.Misses, cs)
	}
	if cs.MemHits != clients-1 {
		t.Errorf("MemHits = %d, want %d (every duplicate served from the singleflight cache)", cs.MemHits, clients-1)
	}
}

// TestSweepJob submits a benches × schemes sweep and checks every point
// completes with its own result.
func TestSweepJob(t *testing.T) {
	_, _, ts := testServer(t, 2, false)
	doc, resp := postJob(t, ts,
		`{"schema_version":1,"kind":"sweep","benches":["Filter"],"schemes":["Conv","DWS.ReviveSplit"]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if doc.Kind != "sweep" || len(doc.Points) != 2 {
		t.Fatalf("submit echo: %+v", doc)
	}
	done := waitJob(t, ts, doc.ID)
	keys := map[string]bool{}
	for _, p := range done.Points {
		if p.Status != StatusDone {
			t.Fatalf("point %+v not done (job %+v)", p, done)
		}
		keys[p.ResultKey] = true
		if _, status := fetchResult(t, ts, p.ResultKey); status != http.StatusOK {
			t.Errorf("point %s/%s: result fetch status %d", p.Bench, p.Scheme, status)
		}
	}
	if len(keys) != 2 {
		t.Errorf("sweep points share result keys: %+v", done.Points)
	}
}

// TestResultPendingVsUnknown distinguishes the three fetch outcomes using
// a server whose workers were never started: submitted keys are pending,
// unnamed keys are unknown.
func TestResultPendingVsUnknown(t *testing.T) {
	session := report.NewSession()
	srv := New(Config{Session: session}) // no Start: jobs stay queued
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	doc, resp := postJob(t, ts, runFilterBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if doc.Status != StatusQueued {
		t.Fatalf("cold server job status %q, want queued", doc.Status)
	}

	b, status := fetchResult(t, ts, doc.Points[0].ResultKey)
	if status != http.StatusNotFound || !bytes.Contains(b, []byte(`"pending"`)) {
		t.Errorf("pending key: status %d body %s, want 404 with a pending marker", status, b)
	}
	b, status = fetchResult(t, ts, strings.Repeat("0", 32))
	if status != http.StatusNotFound || bytes.Contains(b, []byte(`"pending"`)) {
		t.Errorf("unknown key: status %d body %s, want plain 404", status, b)
	}
}

func TestJobEndpointsErrors(t *testing.T) {
	_, _, ts := testServer(t, 1, false)

	resp, err := http.Get(ts.URL + "/v1/jobs/j999")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}

	// Stream of an untraced job is a 409: the trace was never recorded.
	doc, _ := postJob(t, ts, runFilterBody)
	waitJob(t, ts, doc.ID)
	resp, err = http.Get(ts.URL + "/v1/jobs/" + doc.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("stream of untraced job: status %d, want 409", resp.StatusCode)
	}

	// Oversized body: the handler's MaxBytesReader maps it to 413.
	huge := fmt.Sprintf(`{"schema_version":1,"bench":%q,"knobs":{"scheme":"Conv"}}`, strings.Repeat("a", maxJobBody))
	_, resp = postJob(t, ts, huge)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", resp.StatusCode)
	}
}

// TestJobList checks GET /v1/jobs preserves submission order.
func TestJobList(t *testing.T) {
	_, _, ts := testServer(t, 1, false)
	a, _ := postJob(t, ts, runFilterBody)
	b, _ := postJob(t, ts, `{"schema_version":1,"bench":"Filter","knobs":{"scheme":"Conv"}}`)
	waitJob(t, ts, a.ID)
	waitJob(t, ts, b.ID)

	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var docs []JobDoc
	if err := json.NewDecoder(resp.Body).Decode(&docs); err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 || docs[0].ID != a.ID || docs[1].ID != b.ID {
		t.Errorf("job list %+v, want [%s %s] in submission order", docs, a.ID, b.ID)
	}
}

// TestMetricsEndpoint checks the daemon counters surface after a run,
// including the sharded-store series.
func TestMetricsEndpoint(t *testing.T) {
	_, _, ts := testServer(t, 1, true)
	doc, _ := postJob(t, ts, runFilterBody)
	waitJob(t, ts, doc.ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`dwsimd_jobs{state="done"} 1`,
		`dwsimd_session_requests_total{source="simulated"} 1`,
		`dwsimd_store_ops_total{op="save"} 1`,
		"dwsimd_store_records 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, _, ts := testServer(t, 1, false)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(b), `"ok"`) {
		t.Errorf("healthz: status %d body %s", resp.StatusCode, b)
	}
}
