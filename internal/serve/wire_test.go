package serve

import (
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"repro/internal/report"
	"repro/internal/sim"
)

// TestWireKnobsMirrorsKnobs is the reflection guard promised by the
// package comment: every field of report.Knobs must survive the wire
// round trip FromKnobs(k).Knobs() == k. It mutates each field of a base
// vector in turn, so a knob added to the simulator but forgotten in
// WireKnobs (or in either conversion) fails here by name instead of
// silently becoming unreachable over the wire.
//
// The mirror identity holds for vectors whose defaulted fields are
// nonzero (the wire form spells zero as "use the CLI default"); the base
// is the expansion of an empty WireKnobs, which has exactly that shape.
func TestWireKnobsMirrorsKnobs(t *testing.T) {
	base := WireKnobs{}.Knobs()
	rt := reflect.TypeOf(report.Knobs{})
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		k := base
		fv := reflect.ValueOf(&k).Elem().Field(i)
		switch {
		case f.Type == reflect.TypeOf(sim.Distribution(0)):
			fv.Set(reflect.ValueOf(sim.DistInterleave))
		case f.Type.Kind() == reflect.Int:
			fv.SetInt(fv.Int() + 1)
		case f.Type.Kind() == reflect.Bool:
			fv.SetBool(true)
		case f.Type.Kind() == reflect.String: // wpu.Scheme
			fv.SetString("DWS.ReviveSplit")
		default:
			t.Fatalf("report.Knobs.%s has kind %s: teach the wire mirror (and this test) about it", f.Name, f.Type.Kind())
		}
		if got := FromKnobs(k).Knobs(); got != k {
			t.Errorf("mutating Knobs.%s does not survive the wire round trip:\n  want %#v\n  got  %#v", f.Name, k, got)
		}
	}
}

// TestWireKnobsJSONRoundTrip checks the JSON rendering itself is lossless.
func TestWireKnobsJSONRoundTrip(t *testing.T) {
	w := FromKnobs(report.DefaultKnobs("DWS.ReviveSplit"))
	w.Dist = "interleave"
	w.NoWaitMerge = true
	w.BranchThresh = 3
	b, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var got WireKnobs
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got != w {
		t.Errorf("JSON round trip lost knobs:\n  sent %#v\n  got  %#v", w, got)
	}
}

// TestWireDefaultsMatchTable3 pins the zero-value substitutions to the
// Table 3 defaults DefaultKnobs encodes, so a minimal request denotes the
// same machine the CLI builds.
func TestWireDefaultsMatchTable3(t *testing.T) {
	got := WireKnobs{}.Knobs()
	want := report.DefaultKnobs("")
	// The wire form leaves "0 means default downstream" fields at zero.
	want.WPUs = 0
	if got != want {
		t.Errorf("empty WireKnobs expands to %#v, want the Table 3 defaults %#v", got, want)
	}
}

func TestDecodeJobRequest(t *testing.T) {
	valid := `{"schema_version":1,"bench":"Filter","knobs":{"scheme":"DWS.ReviveSplit"}}`
	cases := []struct {
		name   string
		body   string
		status int // 0 = accept
	}{
		{"minimal run", valid, 0},
		{"explicit kind", `{"schema_version":1,"kind":"run","bench":"Merge","knobs":{"scheme":"Conv"}}`, 0},
		{"sweep", `{"schema_version":1,"kind":"sweep","benches":["Filter","Merge"],"schemes":["Conv","DWS.ReviveSplit"]}`, 0},
		{"traced run", `{"schema_version":1,"bench":"Filter","knobs":{"scheme":"Conv"},"trace":true,"trace_every":500}`, 0},

		{"empty body", ``, http.StatusBadRequest},
		{"not json", `{"schema_version":`, http.StatusBadRequest},
		{"wrong type", `[1,2,3]`, http.StatusBadRequest},
		{"unknown field", `{"schema_version":1,"bench":"Filter","nobs":{}}`, http.StatusBadRequest},
		{"trailing data", valid + `{"again":true}`, http.StatusBadRequest},
		{"missing schema version", `{"bench":"Filter","knobs":{"scheme":"Conv"}}`, http.StatusBadRequest},
		{"future schema version", `{"schema_version":2,"bench":"Filter","knobs":{"scheme":"Conv"}}`, http.StatusBadRequest},
		{"unknown bench", `{"schema_version":1,"bench":"Nope","knobs":{"scheme":"Conv"}}`, http.StatusBadRequest},
		{"missing scheme", `{"schema_version":1,"bench":"Filter","knobs":{}}`, http.StatusBadRequest},
		{"unknown scheme", `{"schema_version":1,"bench":"Filter","knobs":{"scheme":"DWS.Nope"}}`, http.StatusBadRequest},
		{"unknown kind", `{"schema_version":1,"kind":"walk","bench":"Filter","knobs":{"scheme":"Conv"}}`, http.StatusBadRequest},
		{"run with sweep fields", `{"schema_version":1,"bench":"Filter","knobs":{"scheme":"Conv"},"schemes":["Conv"]}`, http.StatusBadRequest},
		{"sweep with bench", `{"schema_version":1,"kind":"sweep","bench":"Filter","benches":["Merge"],"schemes":["Conv"]}`, http.StatusBadRequest},
		{"sweep with knob scheme", `{"schema_version":1,"kind":"sweep","benches":["Merge"],"schemes":["Conv"],"knobs":{"scheme":"Conv"}}`, http.StatusBadRequest},
		{"sweep missing schemes", `{"schema_version":1,"kind":"sweep","benches":["Merge"]}`, http.StatusBadRequest},
		{"traced sweep", `{"schema_version":1,"kind":"sweep","benches":["Merge"],"schemes":["Conv"],"trace":true}`, http.StatusBadRequest},
		{"trace_every without trace", `{"schema_version":1,"bench":"Filter","knobs":{"scheme":"Conv"},"trace_every":500}`, http.StatusBadRequest},
		{"knob out of range", `{"schema_version":1,"bench":"Filter","knobs":{"scheme":"Conv","wpus":65}}`, http.StatusBadRequest},
		{"negative knob", `{"schema_version":1,"bench":"Filter","knobs":{"scheme":"Conv","l1kb":-1}}`, http.StatusBadRequest},
		{"bad dist", `{"schema_version":1,"bench":"Filter","knobs":{"scheme":"Conv","dist":"diagonal"}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := DecodeJobRequest(strings.NewReader(tc.body))
			if tc.status == 0 {
				if err != nil {
					t.Fatalf("want accept, got %d: %s", err.Status, err.Msg)
				}
				if n := len(req.Points()); n == 0 {
					t.Fatal("accepted request expands to zero points")
				}
				return
			}
			if err == nil {
				t.Fatalf("want rejection with status %d, got accept: %#v", tc.status, req)
			}
			if err.Status != tc.status {
				t.Fatalf("want status %d, got %d (%s)", tc.status, err.Status, err.Msg)
			}
		})
	}
}

// TestSweepPointOrder pins the deterministic benches-outer × schemes-inner
// expansion order the job document presents.
func TestSweepPointOrder(t *testing.T) {
	req, derr := DecodeJobRequest(strings.NewReader(
		`{"schema_version":1,"kind":"sweep","benches":["Filter","Merge"],"schemes":["Conv","Slip"]}`))
	if derr != nil {
		t.Fatal(derr)
	}
	pts := req.Points()
	var got []string
	for _, p := range pts {
		got = append(got, p.Bench+"/"+string(p.Knobs.Scheme))
	}
	want := []string{"Filter/Conv", "Filter/Slip", "Merge/Conv", "Merge/Slip"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sweep order %v, want %v", got, want)
	}
}

// TestResultKeyStable pins the result-key derivation: content-addressed,
// stable across processes, and sensitive to every knob (via the session
// cache key it digests).
func TestResultKeyStable(t *testing.T) {
	k := report.DefaultKnobs("Conv")
	a, b := ResultKey("Filter", k), ResultKey("Filter", k)
	if a != b {
		t.Fatalf("ResultKey not deterministic: %s vs %s", a, b)
	}
	if len(a) != 32 {
		t.Fatalf("ResultKey %q: want 32 hex digits", a)
	}
	k2 := k
	k2.L1KB++
	if ResultKey("Filter", k2) == a {
		t.Error("ResultKey ignores L1KB")
	}
	if ResultKey("Merge", k) == a {
		t.Error("ResultKey ignores the benchmark")
	}
}
