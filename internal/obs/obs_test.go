package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// synthetic builds a small trace exercising every event kind plus a few
// timeline samples, covering each exporter code path (WPU events with and
// without Mask2, per-L1 rows, shared L2/DRAM rows, the WPU-0-only L2
// counter).
func synthetic() *Trace {
	t := New(100)
	kinds := []struct {
		k     EventKind
		unit  int
		warp  int
		pc    int
		mask  uint64
		mask2 uint64
		addr  uint64
	}{
		{EvBranchSubdiv, 0, 1, 12, 0x00ff, 0xff00, 0},
		{EvMemSubdiv, 0, 1, 14, 0x000f, 0x00f0, 0},
		{EvRevive, 1, 2, 20, 0x0003, 0x000c, 0},
		{EvPCMerge, 1, 2, 24, 0x0003, 0x000c, 0},
		{EvWaitMerge, 2, 0, 30, 0x00f0, 0x0f00, 0},
		{EvScopeArrive, 2, 0, 34, 0x00ff, 0xffff, 0},
		{EvScopeMerge, 2, 0, 34, 0xffff, 0, 0},
		{EvSlip, 3, 3, 40, 0x5555, 0xaaaa, 0},
		{EvSlipMerge, 3, 3, 44, 0x5555, 0xaaaa, 0},
		{EvWSTRefusal, 0, -1, -1, 0, 0, 0},
		{EvL1Miss, 1, -1, -1, 0, 0, 0x1a80},
		{EvL1MSHRFull, 1, -1, -1, 0, 0, 0x1b00},
		{EvL2Miss, 1, -1, -1, 0, 0, 0x1a80},
		{EvDRAMFetch, -1, -1, -1, 0, 0, 0x1a80},
		{EvDRAMWriteback, -1, -1, -1, 0, 0, 0x0c00},
		{EvBranchDiverge, 0, 1, 12, 0x00ff, 0xff00, 0},
		{EvMemBoundExceeded, 0, 1, 14, 0x00ff, 3, 0},
	}
	for i, e := range kinds {
		t.Emit(Event{Cycle: uint64(10 * (i + 1)), Kind: e.k, Unit: e.unit,
			Warp: e.warp, PC: e.pc, Mask: e.mask, Mask2: e.mask2, Addr: e.addr})
	}
	for _, wpu := range []int{0, 1} {
		t.AddSample(Sample{Cycle: 100, WPU: wpu, Busy: 60, StallMem: 30,
			StallOther: 10, Issued: 60, WidthAccum: 480, WSTOcc: 3,
			Resident: 2, SlotWaiters: 1, L1MSHR: 4, L2MSHR: 7})
		t.AddSample(Sample{Cycle: 200, WPU: wpu, Busy: 80, StallMem: 15,
			StallOther: 5, Issued: 80, WidthAccum: 960, WSTOcc: 1,
			Resident: 1, SlotWaiters: 0, L1MSHR: 0, L2MSHR: 0})
	}
	return t
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -update` to generate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file; if the schema change is intended rerun with -update\ngot:\n%s", name, got)
	}
}

func TestEventKindNames(t *testing.T) {
	seen := map[string]bool{}
	for k := EventKind(0); k < numEventKinds; k++ {
		name := k.String()
		if name == "" || seen[name] {
			t.Errorf("kind %d has empty or duplicate name %q", k, name)
		}
		seen[name] = true
		b, err := json.Marshal(k)
		if err != nil || string(b) != `"`+name+`"` {
			t.Errorf("kind %d marshals to %s, %v", k, b, err)
		}
	}
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, synthetic()); err != nil {
		t.Fatal(err)
	}
	// The document must be plain valid JSON with the trace-event envelope
	// Perfetto expects.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		DisplayUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M", "i", "C":
		default:
			t.Errorf("unexpected phase %q in %v", ev["ph"], ev)
		}
	}
	checkGolden(t, "chrome.golden.json", buf.Bytes())
}

func TestEventsJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEventsJSON(&buf, synthetic()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema string           `json:"schema"`
		Events []map[string]any `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("events JSON is not valid: %v", err)
	}
	if doc.Schema != "dwsim-trace-v1" {
		t.Errorf("schema = %q", doc.Schema)
	}
	if want := int(numEventKinds); len(doc.Events) != want {
		t.Errorf("events = %d, want %d", len(doc.Events), want)
	}
	checkGolden(t, "events.golden.json", buf.Bytes())
}

func TestEmptyTraceExportsAreValid(t *testing.T) {
	for _, fn := range []func(*Trace) ([]byte, error){
		func(tr *Trace) ([]byte, error) {
			var b bytes.Buffer
			err := WriteChromeTrace(&b, tr)
			return b.Bytes(), err
		},
		func(tr *Trace) ([]byte, error) {
			var b bytes.Buffer
			err := WriteEventsJSON(&b, tr)
			return b.Bytes(), err
		},
	} {
		out, err := fn(New(0))
		if err != nil {
			t.Fatal(err)
		}
		var any any
		if err := json.Unmarshal(out, &any); err != nil {
			t.Errorf("empty-trace export is not valid JSON: %v\n%s", err, out)
		}
	}
}

func TestCountByKind(t *testing.T) {
	tr := synthetic()
	counts := tr.CountByKind()
	if len(counts) != int(numEventKinds) {
		t.Fatalf("CountByKind covers %d kinds, want %d", len(counts), numEventKinds)
	}
	for name, n := range counts {
		if n != 1 {
			t.Errorf("kind %s counted %d times, want 1", name, n)
		}
	}
}
