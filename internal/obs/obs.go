// Package obs is the simulator's observability layer: a structured event
// trace of the microarchitectural mechanisms the paper studies
// (subdivisions, revivals, merges, slip, cache misses, DRAM traffic) plus
// an interval timeline of per-WPU utilisation and occupancies.
//
// A Trace is a per-System sink. Components (WPU, L1, L2) hold a *Trace
// that is nil when instrumentation is disabled, and every emission site is
// guarded by that nil check, so a run without a sink pays one predictable
// branch per would-be event and allocates nothing. Because each System is
// driven by a single goroutine, events and samples are appended in
// deterministic simulation order and the exporters below are byte-stable
// across runs and across report.Session parallelism levels.
//
// This replaces the former WPU_TRACE environment global in internal/wpu,
// which was process-wide and raced under the concurrent Session executor.
package obs

import "fmt"

// EventKind enumerates the traced microarchitectural events. The mapping
// to the paper's mechanisms is documented in DESIGN.md ("Observability").
type EventKind uint8

const (
	// WPU events (§4, §5 of the paper).
	EvBranchSubdiv EventKind = iota // warp-split forked at a divergent branch (§4.2)
	EvMemSubdiv                     // warp-split forked at a divergent memory access (§5.4)
	EvRevive                        // suspended group re-split when misses partially returned (§5.2)
	EvPCMerge                       // PC-based re-convergence of ready siblings (§4.5)
	EvWaitMerge                     // suspended groups re-united at the same PC (§4.5)
	EvScopeArrive                   // split parked at its sync scope (§4.4)
	EvScopeMerge                    // sync scope completed; frozen group resumed (§4.4)
	EvSlip                          // hitting threads ran ahead under adaptive slip (§5.7)
	EvSlipMerge                     // fall-behind or parked group re-absorbed (§5.7)
	EvWSTRefusal                    // subdivision refused: warp-split table full (§5.6)

	// Memory-system events (§3.3).
	EvL1Miss        // primary L1 miss (MSHR allocation)
	EvL1MSHRFull    // L1 request queued because every MSHR was busy
	EvL2Miss        // L2 miss (fetch from DRAM)
	EvDRAMFetch     // DRAM line fetch
	EvDRAMWriteback // DRAM writeback of a dirty line

	// Front-end events.
	EvBranchDiverge // conditional branch whose lanes disagreed (Mask/Mask2 = taken/not-taken)

	// Static-analysis concordance events.
	EvMemBoundExceeded // access exceeded its static worst-case transaction bound (Mask2 = observed line count)

	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	EvBranchSubdiv:     "branch-subdiv",
	EvMemSubdiv:        "mem-subdiv",
	EvRevive:           "revive",
	EvPCMerge:          "pc-merge",
	EvWaitMerge:        "wait-merge",
	EvScopeArrive:      "scope-arrive",
	EvScopeMerge:       "scope-merge",
	EvSlip:             "slip",
	EvSlipMerge:        "slip-merge",
	EvWSTRefusal:       "wst-refusal",
	EvL1Miss:           "l1-miss",
	EvL1MSHRFull:       "l1-mshr-full",
	EvL2Miss:           "l2-miss",
	EvDRAMFetch:        "dram-fetch",
	EvDRAMWriteback:    "dram-writeback",
	EvBranchDiverge:    "branch-diverge",
	EvMemBoundExceeded: "mem-bound-exceeded",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) && eventKindNames[k] != "" {
		return eventKindNames[k]
	}
	return fmt.Sprintf("event-%d", int(k))
}

// MarshalJSON renders the kind as its symbolic name so exported traces are
// self-describing and stable across reorderings of the constant block.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// Event is one traced occurrence. Unit is the emitting WPU or L1 ID, or -1
// for shared units (L2, DRAM). Warp and PC are -1 when the event has no
// warp context (memory-system events, WST refusals). Mask/Mask2 carry the
// kind-specific thread masks (e.g. taken/not-taken for EvBranchSubdiv,
// hit/miss for EvMemSubdiv); Addr is the cache-line address for memory
// events.
type Event struct {
	Cycle uint64    `json:"cycle"`
	Kind  EventKind `json:"kind"`
	Unit  int       `json:"unit"`
	Warp  int       `json:"warp"`
	PC    int       `json:"pc"`
	Mask  uint64    `json:"mask"`
	Mask2 uint64    `json:"mask2"`
	Addr  uint64    `json:"addr"`
}

// Sample is one interval-timeline row for one WPU: the busy/stall split
// and issue counters are deltas over the sampling interval; the occupancy
// fields are instantaneous at the sample cycle.
type Sample struct {
	Cycle uint64 `json:"cycle"`
	WPU   int    `json:"wpu"`

	Busy       uint64 `json:"busy"`
	StallMem   uint64 `json:"stall_mem"`
	StallOther uint64 `json:"stall_other"`
	Issued     uint64 `json:"issued"`
	WidthAccum uint64 `json:"width_accum"` // sum of active widths over the interval

	WSTOcc      int `json:"wst_occupancy"`   // live scheduling entities
	Resident    int `json:"resident_splits"` // scheduler slots in use
	SlotWaiters int `json:"slot_waiters"`    // splits queued for a slot
	L1MSHR      int `json:"l1_mshr"`         // outstanding L1 misses
	L2MSHR      int `json:"l2_mshr"`         // outstanding L2 misses (shared)
}

// MeanWidth returns the mean SIMD width over the sample's interval.
func (s Sample) MeanWidth() float64 {
	if s.Issued == 0 {
		return 0
	}
	return float64(s.WidthAccum) / float64(s.Issued)
}

// Trace is the per-System observability sink.
type Trace struct {
	// Interval is the timeline sampling period in cycles; 0 disables the
	// sampler (events are still recorded).
	Interval uint64

	Events  []Event
	Samples []Sample

	// Hists are the latency histograms (see hist.go). Embedded by value so
	// a recording is a direct array increment with no pointer chasing.
	Hists HistSet
}

// New returns an empty sink sampling the timeline every interval cycles.
func New(interval uint64) *Trace { return &Trace{Interval: interval} }

// Emit appends one event. Callers nil-check the Trace pointer first; Emit
// itself stays trivial so the enabled path is a single append.
func (t *Trace) Emit(e Event) { t.Events = append(t.Events, e) }

// AddSample appends one timeline row.
func (t *Trace) AddSample(s Sample) { t.Samples = append(t.Samples, s) }

// CountByKind returns how many events of each kind were recorded.
func (t *Trace) CountByKind() map[string]uint64 {
	m := make(map[string]uint64)
	for _, e := range t.Events {
		m[e.Kind.String()]++
	}
	return m
}
