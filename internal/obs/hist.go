package obs

import (
	"bufio"
	"fmt"
	"io"
	"math/bits"
	"strconv"
)

// Latency histograms. Hist is a fixed-size log2-bucketed counter array:
// Record is allocation-free (a few integer ops on an embedded array), so
// the memory system and WPU can record every request's latency when a
// Trace is attached while untraced runs pay only the usual nil check.
//
// Bucket i counts values in [2^(i-1), 2^i); bucket 0 counts exactly {0}
// and the last bucket absorbs everything at or above 2^62. Lower bucket
// bounds are therefore 0, 1, 2, 4, 8, ... — BucketLo reports them.

// Hist is one allocation-free log2 histogram.
type Hist struct {
	Buckets [64]uint64 `json:"buckets"`
	N       uint64     `json:"n"`     // recorded values
	Total   uint64     `json:"total"` // sum of recorded values
	MinV    uint64     `json:"min"`   // smallest recorded value (0 when N == 0)
	MaxV    uint64     `json:"max"`   // largest recorded value
}

// Record adds one value. It must stay allocation-free: the dwsbench gate
// pins BenchmarkHistRecord at 0 allocs/op.
func (h *Hist) Record(v uint64) {
	i := bits.Len64(v)
	if i > 63 {
		i = 63
	}
	h.Buckets[i]++
	h.N++
	h.Total += v
	if h.N == 1 || v < h.MinV {
		h.MinV = v
	}
	if v > h.MaxV {
		h.MaxV = v
	}
}

// Empty reports whether nothing was recorded.
func (h *Hist) Empty() bool { return h.N == 0 }

// Mean returns the arithmetic mean of the recorded values.
func (h *Hist) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Total) / float64(h.N)
}

// Merge accumulates o into h.
func (h *Hist) Merge(o *Hist) {
	if o.N == 0 {
		return
	}
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
	if h.N == 0 || o.MinV < h.MinV {
		h.MinV = o.MinV
	}
	if o.MaxV > h.MaxV {
		h.MaxV = o.MaxV
	}
	h.N += o.N
	h.Total += o.Total
}

// BucketLo returns the inclusive lower bound of bucket i.
func BucketLo(i int) uint64 {
	if i == 0 {
		return 0
	}
	return uint64(1) << uint(i-1)
}

// HistSet is the fixed collection of histograms one simulation records.
// The fields are addressed directly from the hot paths (w.trace.Hists.X);
// Each visits them in a fixed order so every exporter is deterministic.
type HistSet struct {
	L1Hit     Hist `json:"l1_hit"`      // L1 hit service latency (incl. bank queuing)
	L2Serve   Hist `json:"l2_serve"`    // L1-fill round trip served by the L2
	DRAMServe Hist `json:"dram_serve"`  // L1-fill round trip served through DRAM
	L1MSHRRes Hist `json:"l1_mshr_res"` // L1 MSHR residency (allocation to release)
	L2MSHRRes Hist `json:"l2_mshr_res"` // L2 MSHR residency (allocation to fill)
	SplitLife Hist `json:"split_life"`  // warp-split lifetime (creation to retirement)
	// WaitMergeWait is how long a suspended group had waited when a
	// wait-merge absorbed it (§4.5).
	WaitMergeWait Hist `json:"wait_merge_wait"`
}

// Each visits every histogram with its exported name, in declaration
// order. The names are part of the export schemas (run-metrics JSON, the
// dwstrace CSV, the Perfetto counter tracks).
func (s *HistSet) Each(fn func(name string, h *Hist)) {
	fn("l1-hit", &s.L1Hit)
	fn("l2-service", &s.L2Serve)
	fn("dram-service", &s.DRAMServe)
	fn("l1-mshr-residency", &s.L1MSHRRes)
	fn("l2-mshr-residency", &s.L2MSHRRes)
	fn("split-lifetime", &s.SplitLife)
	fn("wait-merge-wait", &s.WaitMergeWait)
}

// Merge accumulates o into s, histogram by histogram.
func (s *HistSet) Merge(o *HistSet) {
	s.Each(func(name string, h *Hist) {
		var src *Hist
		o.Each(func(n string, oh *Hist) {
			if n == name {
				src = oh
			}
		})
		h.Merge(src)
	})
}

// WriteHistCSV renders every non-empty histogram as CSV rows (cmd/dwstrace
// -format hist): one row per occupied bucket, with the bucket's inclusive
// lower bound and exclusive upper bound in cycles.
func WriteHistCSV(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("hist,bucket,lo_cycles,hi_cycles,count,n,total,min,max\n"); err != nil {
		return err
	}
	var err error
	t.Hists.Each(func(name string, h *Hist) {
		if err != nil || h.Empty() {
			return
		}
		for i, c := range h.Buckets {
			if c == 0 {
				continue
			}
			hi := ""
			if i < 63 {
				hi = strconv.FormatUint(BucketLo(i+1), 10)
			}
			_, err = fmt.Fprintf(bw, "%s,%d,%d,%s,%d,%d,%d,%d,%d\n",
				name, i, BucketLo(i), hi, c, h.N, h.Total, h.MinV, h.MaxV)
			if err != nil {
				return
			}
		}
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}
