package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Exporters. Both write one JSON object per line inside their arrays so
// traces diff cleanly, and both are deterministic: struct fields marshal
// in declaration order and map-valued args marshal with sorted keys.

// chromeEvent is one entry of the Chrome trace-event JSON format
// (consumed by Perfetto and chrome://tracing). ts is in microseconds; we
// map one simulated cycle to one microsecond.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   uint64         `json:"ts"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Thread-row IDs in the exported trace: WPUs occupy their own IDs, L1s sit
// at 100+id, and the shared L2/DRAM get fixed rows.
const (
	chromeTIDL1Base = 100
	chromeTIDL2     = 200
	chromeTIDDRAM   = 201
	// chromeTIDHist is the row carrying the latency-histogram counter
	// tracks: one track per non-empty histogram, with ts = the bucket's
	// lower bound in cycles and the counter value = the bucket count.
	chromeTIDHist = 300
)

func (e Event) chromeTID() int {
	switch e.Kind {
	case EvL1Miss, EvL1MSHRFull:
		return chromeTIDL1Base + e.Unit
	case EvL2Miss:
		return chromeTIDL2
	case EvDRAMFetch, EvDRAMWriteback:
		return chromeTIDDRAM
	default:
		return e.Unit
	}
}

func (e Event) chromeArgs() map[string]any {
	args := make(map[string]any, 4)
	switch e.Kind {
	case EvL1Miss, EvL1MSHRFull, EvDRAMFetch, EvDRAMWriteback:
		args["addr"] = fmt.Sprintf("%#x", e.Addr)
	case EvL2Miss:
		args["addr"] = fmt.Sprintf("%#x", e.Addr)
		args["from_l1"] = e.Unit
	default:
		args["warp"] = e.Warp
		args["pc"] = e.PC
		args["mask"] = fmt.Sprintf("%#x", e.Mask)
		if e.Mask2 != 0 {
			args["mask2"] = fmt.Sprintf("%#x", e.Mask2)
		}
	}
	return args
}

// WriteChromeTrace writes the trace in Chrome trace-event JSON: one
// instant event per recorded Event and one set of counter tracks per
// timeline sample. The output loads directly in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.
func WriteChromeTrace(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	enc := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}

	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	put := func(v any) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		return enc(v)
	}

	// Thread-name metadata for every row the trace will use.
	names := map[int]string{}
	for _, e := range t.Events {
		tid := e.chromeTID()
		if _, ok := names[tid]; ok {
			continue
		}
		switch {
		case tid == chromeTIDL2:
			names[tid] = "L2"
		case tid == chromeTIDDRAM:
			names[tid] = "DRAM"
		case tid >= chromeTIDL1Base:
			names[tid] = fmt.Sprintf("L1 %d", tid-chromeTIDL1Base)
		default:
			names[tid] = fmt.Sprintf("WPU %d", tid)
		}
	}
	for _, s := range t.Samples {
		if _, ok := names[s.WPU]; !ok {
			names[s.WPU] = fmt.Sprintf("WPU %d", s.WPU)
		}
	}
	anyHist := false
	t.Hists.Each(func(_ string, h *Hist) {
		if !h.Empty() {
			anyHist = true
		}
	})
	if anyHist {
		names[chromeTIDHist] = "latency histograms"
	}
	tids := make([]int, 0, len(names))
	for tid := range names {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	if err := put(chromeEvent{Name: "process_name", Ph: "M", PID: 0,
		Args: map[string]any{"name": "dws machine"}}); err != nil {
		return err
	}
	for _, tid := range tids {
		if err := put(chromeEvent{Name: "thread_name", Ph: "M", PID: 0, TID: tid,
			Args: map[string]any{"name": names[tid]}}); err != nil {
			return err
		}
	}

	for _, e := range t.Events {
		if err := put(chromeEvent{
			Name: e.Kind.String(), Ph: "i", TS: e.Cycle,
			PID: 0, TID: e.chromeTID(), S: "t", Args: e.chromeArgs(),
		}); err != nil {
			return err
		}
	}
	for _, s := range t.Samples {
		counters := []chromeEvent{
			{Name: fmt.Sprintf("wst wpu%d", s.WPU), Args: map[string]any{"splits": s.WSTOcc}},
			{Name: fmt.Sprintf("width wpu%d", s.WPU), Args: map[string]any{"mean": s.MeanWidth()}},
			{Name: fmt.Sprintf("busy wpu%d", s.WPU), Args: map[string]any{"frac": s.BusyFrac()}},
			{Name: fmt.Sprintf("l1 mshr %d", s.WPU), Args: map[string]any{"outstanding": s.L1MSHR}},
		}
		if s.WPU == 0 {
			counters = append(counters, chromeEvent{Name: "l2 mshr",
				Args: map[string]any{"outstanding": s.L2MSHR}})
		}
		for _, c := range counters {
			c.Ph, c.TS, c.PID, c.TID = "C", s.Cycle, 0, s.WPU
			if err := put(c); err != nil {
				return err
			}
		}
	}
	// Latency histograms as counter tracks: the time axis is reused as the
	// bucket axis (ts = the bucket's lower bound in cycles), so Perfetto
	// renders each distribution as a step plot on its own track.
	var histErr error
	t.Hists.Each(func(name string, h *Hist) {
		if histErr != nil || h.Empty() {
			return
		}
		for i, c := range h.Buckets {
			if c == 0 {
				continue
			}
			histErr = put(chromeEvent{
				Name: "hist " + name, Ph: "C", TS: BucketLo(i),
				PID: 0, TID: chromeTIDHist,
				Args: map[string]any{"count": c},
			})
			if histErr != nil {
				return
			}
		}
	})
	if histErr != nil {
		return histErr
	}
	if _, err := bw.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// BusyFrac returns the fraction of the sample's accounted cycles spent
// issuing instructions.
func (s Sample) BusyFrac() float64 {
	total := s.Busy + s.StallMem + s.StallOther
	if total == 0 {
		return 0
	}
	return float64(s.Busy) / float64(total)
}

// WriteEventsJSON writes the raw structured event list as a versioned JSON
// document (cmd/dwstrace -format json), one event per line.
func WriteEventsJSON(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"schema\":\"dwsim-trace-v1\",\"events\":[\n"); err != nil {
		return err
	}
	for i, e := range t.Events {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if i > 0 {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
