package obs

import (
	"strings"
	"testing"
)

func TestHistRecordBucketBounds(t *testing.T) {
	var h Hist
	// Each value must land in the bucket whose [BucketLo(i), BucketLo(i+1))
	// range contains it.
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1 << 62, 63}, {^uint64(0), 63},
	}
	for _, c := range cases {
		before := h.Buckets[c.bucket]
		h.Record(c.v)
		if h.Buckets[c.bucket] != before+1 {
			t.Errorf("Record(%d) did not land in bucket %d", c.v, c.bucket)
		}
		if c.bucket < 63 && c.v >= BucketLo(c.bucket+1) {
			t.Errorf("case %d: value outside its bucket's range", c.v)
		}
		if c.v < BucketLo(c.bucket) {
			t.Errorf("case %d: value below bucket lower bound", c.v)
		}
	}
	if h.N != uint64(len(cases)) {
		t.Fatalf("N = %d, want %d", h.N, len(cases))
	}
	if h.MinV != 0 || h.MaxV != ^uint64(0) {
		t.Fatalf("min/max = %d/%d", h.MinV, h.MaxV)
	}
}

func TestHistMeanAndMerge(t *testing.T) {
	var a, b Hist
	a.Record(10)
	a.Record(20)
	b.Record(2)
	if got := a.Mean(); got != 15 {
		t.Fatalf("mean = %v", got)
	}
	a.Merge(&b)
	if a.N != 3 || a.Total != 32 || a.MinV != 2 || a.MaxV != 20 {
		t.Fatalf("after merge: N=%d Total=%d min=%d max=%d", a.N, a.Total, a.MinV, a.MaxV)
	}
	// Merging an empty histogram is a no-op, including on min/max.
	var empty Hist
	a.Merge(&empty)
	if a.N != 3 || a.MinV != 2 {
		t.Fatal("merge of empty histogram changed state")
	}
	// Merging into an empty histogram adopts the source's min.
	var c Hist
	c.Merge(&a)
	if c.MinV != 2 || c.N != 3 {
		t.Fatalf("merge into empty: min=%d N=%d", c.MinV, c.N)
	}
}

func TestHistSetEachOrder(t *testing.T) {
	var s HistSet
	var names []string
	s.Each(func(name string, h *Hist) { names = append(names, name) })
	want := []string{"l1-hit", "l2-service", "dram-service",
		"l1-mshr-residency", "l2-mshr-residency", "split-lifetime", "wait-merge-wait"}
	if len(names) != len(want) {
		t.Fatalf("Each visited %d histograms, want %d", len(names), len(want))
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Each order %v, want %v", names, want)
		}
	}
}

func TestHistSetMerge(t *testing.T) {
	var a, b HistSet
	a.L1Hit.Record(3)
	b.L1Hit.Record(5)
	b.SplitLife.Record(100)
	a.Merge(&b)
	if a.L1Hit.N != 2 || a.L1Hit.Total != 8 {
		t.Fatalf("L1Hit after merge: N=%d Total=%d", a.L1Hit.N, a.L1Hit.Total)
	}
	if a.SplitLife.N != 1 || a.SplitLife.MaxV != 100 {
		t.Fatal("SplitLife not merged")
	}
	if a.DRAMServe.N != 0 {
		t.Fatal("untouched histogram gained samples")
	}
}

func TestWriteHistCSVSkipsEmpty(t *testing.T) {
	tr := New(0)
	tr.Hists.L1Hit.Record(3)
	tr.Hists.L1Hit.Record(4)
	var sb strings.Builder
	if err := WriteHistCSV(&sb, tr); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "hist,bucket,lo_cycles,hi_cycles,count,n,total,min,max" {
		t.Fatalf("header = %q", lines[0])
	}
	// Only l1-hit recorded: two occupied buckets (3 → bucket 2, 4 → bucket 3).
	if len(lines) != 3 {
		t.Fatalf("%d rows, want 3:\n%s", len(lines), sb.String())
	}
	if lines[1] != "l1-hit,2,2,4,1,2,7,3,4" {
		t.Fatalf("row = %q", lines[1])
	}
	for _, l := range lines[1:] {
		if !strings.HasPrefix(l, "l1-hit,") {
			t.Fatalf("unexpected row for an empty histogram: %q", l)
		}
	}
}

// BenchmarkHistRecord pins the record path at 0 allocs/op — the property
// that lets the memory system record every request under tracing. The
// dwsbench gate fails if an allocation sneaks in.
func BenchmarkHistRecord(b *testing.B) {
	var h Hist
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(uint64(i) & 1023)
	}
	if h.N == 0 {
		b.Fatal("no samples recorded")
	}
}
