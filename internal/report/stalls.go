package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/wpu"
)

// Stall-breakdown exhibit (§5.5): the top-down cycle taxonomy rendered as
// stacked bars per scheme, mean over the benchmark suite. This is the
// paper's "where did the cycles go" figure generalised to the full
// eight-bucket accounting: the paper only distinguishes busy vs waiting
// for memory, while the taxonomy further splits memory stalls into
// coherent vs divergent and exposes the DWS-specific structural stalls
// (WST full, scheduler-slot wait).

// stallSchemes is the scheme set the exhibit renders: the Figure 13
// comparison line-up plus the Conv baseline it is normalised against.
var stallSchemes = []wpu.Scheme{
	wpu.SchemeConv,
	wpu.SchemeBranchOnly,
	wpu.SchemeReviveMemOnly,
	wpu.SchemeAggress,
	wpu.SchemeLazy,
	wpu.SchemeRevive,
	wpu.SchemeSlip,
	wpu.SchemeSlipBranchBypass,
}

// StallRow is one (benchmark, scheme) point: the eight taxonomy buckets
// as fractions of the scheme's total cycles, in wpu.CycleBucketLabels
// order. The "mean" pseudo-benchmark rows carry the arithmetic mean of
// the per-benchmark fractions.
type StallRow struct {
	Bench  string
	Scheme wpu.Scheme
	Cycles uint64
	Frac   [8]float64
}

// stallBarGlyphs is the one-rune legend for the stacked text bars, in
// bucket order. Busy renders as '#' so the useful work stands out;
// memory stalls as upper/lower-case M (coherent/divergent).
var stallBarGlyphs = [8]byte{'#', 'M', 'm', 'B', 'I', 'W', 's', '.'}

// stallBar renders the fractions as a fixed-width stacked bar. Widths
// round down per bucket and the remainder is padded with spaces, so the
// bar length is constant and the output stays byte-deterministic.
func stallBar(frac [8]float64, width int) string {
	var sb strings.Builder
	for i, f := range frac {
		n := int(f * float64(width))
		for j := 0; j < n; j++ {
			sb.WriteByte(stallBarGlyphs[i])
		}
	}
	for sb.Len() < width {
		sb.WriteByte(' ')
	}
	return "|" + sb.String() + "|"
}

// StallBreakdown runs every benchmark under the Figure 13 scheme set at
// the default configuration and prints the mean cycle taxonomy per
// scheme as a stacked bar chart. It returns the full per-(benchmark,
// scheme) rows followed by the per-scheme means (Bench == "mean") for
// StallBreakdownCSV. Every run is checked against the accounting
// invariant StallSum() == Cycles().
func (s *Session) StallBreakdown(w io.Writer) ([]StallRow, error) {
	var knobs []Knobs
	for _, sc := range stallSchemes {
		knobs = append(knobs, DefaultKnobs(sc))
	}
	if err := s.Prefetch(suiteJobs(knobs...)); err != nil {
		return nil, err
	}
	var rows []StallRow
	var means []StallRow
	for _, sc := range stallSchemes {
		k := DefaultKnobs(sc)
		var acc [8]float64
		for _, b := range BenchNames() {
			r, err := s.Run(b, k)
			if err != nil {
				return nil, err
			}
			st := r.Stats
			if st.StallSum() != st.Cycles() {
				return nil, fmt.Errorf("%s/%s: taxonomy sum %d != cycles %d",
					b, sc, st.StallSum(), st.Cycles())
			}
			row := StallRow{Bench: b, Scheme: sc, Cycles: st.Cycles()}
			for i, v := range st.CycleBuckets() {
				row.Frac[i] = safeFrac(v, st.Cycles())
				acc[i] += row.Frac[i]
			}
			rows = append(rows, row)
		}
		mean := StallRow{Bench: "mean", Scheme: sc}
		for i := range acc {
			mean.Frac[i] = acc[i] / float64(len(BenchNames()))
		}
		means = append(means, mean)
	}

	fmt.Fprintln(w, "Stall breakdown (§5.5): top-down cycle taxonomy per scheme (means over the suite)")
	fmt.Fprintln(w, "(bar legend: # busy, M mem-coherent, m mem-divergent, B barrier, I icache, W wst-full, s slot-wait, . idle)")
	header := append([]string{"scheme"}, wpu.CycleBucketLabels[:]...)
	header = append(header, "bar")
	t := newTable(w, header...)
	for _, m := range means {
		cells := []string{string(m.Scheme)}
		for _, f := range m.Frac {
			cells = append(cells, pctS(f))
		}
		cells = append(cells, stallBar(m.Frac, 40))
		t.row(cells...)
	}
	t.flush()
	return append(rows, means...), nil
}
