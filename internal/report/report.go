// Package report reproduces every table and figure of the paper's
// evaluation: it sweeps configurations, runs the benchmark suite, verifies
// results, and renders the same rows/series the paper reports. Each
// FigureNN/TableNN function corresponds to one exhibit (see DESIGN.md's
// experiment index) and returns structured data alongside its text
// rendering so tests and the bench harness can assert on shapes.
//
// Concurrency: a Session is safe for concurrent use by multiple
// goroutines. Run deduplicates identical in-flight simulations
// singleflight-style — concurrent callers asking for the same
// (benchmark, Knobs) point block on one simulation and share its Result.
// The exhibit drivers exploit this through Prefetch (see runner.go),
// which fans a figure's full job set out over a bounded worker pool and
// then renders from the warm cache, so output bytes are identical at any
// parallelism level. Only Verify is excluded from the guarantee: set it
// before the first Run and leave it alone.
package report

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"

	"repro/internal/energy"
	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workloads"
	"repro/internal/wpu"
)

// Result captures one benchmark × configuration run.
type Result struct {
	Bench  string
	Scheme wpu.Scheme
	Cycles uint64
	Stats  wpu.Stats
	L1     mem.L1Stats
	L2     mem.L2Stats
	// Interconnect and memory traffic behind the caches, for the
	// machine-readable run document (rundoc.go).
	XbarTransfers  uint64
	DRAMAccesses   uint64
	DRAMWritebacks uint64
	Energy         energy.Breakdown
}

// Knobs are the architectural parameters the evaluation sweeps.
//
// Every field participates in the cache key (see key and
// TestKnobKeyCoversAllFields): adding a field here automatically extends
// the key, so distinct configurations can never alias in the run cache or
// the on-disk store.
type Knobs struct {
	WPUs    int // 0 = the Table 3 default (4)
	Width   int
	Warps   int
	Slots   int
	WST     int
	L1KB    int
	L1Assoc int // 0 = fully associative
	L2KB    int
	L2Lat   int
	Scheme  wpu.Scheme
	Dist    sim.Distribution // thread-to-WPU mapping (default DistBlock)
	Scale   int              // workload input-size multiplier (0 = 1)

	// Ablation switches (see the Ablation driver).
	NoWaitMerge  bool
	NoProgSched  bool
	NoMemHints   bool // ignore static memory-divergence hints (control arm)
	BranchThresh int  // 0 = default lazy threshold
}

// DefaultKnobs returns the Table 3 configuration under a given scheme.
func DefaultKnobs(s wpu.Scheme) Knobs {
	return Knobs{
		WPUs: 4, Width: 16, Warps: 4, Slots: 0, WST: 16,
		L1KB: 32, L1Assoc: 8, L2KB: 4096, L2Lat: 30,
		Scheme: s,
	}
}

// Config expands the knobs into the full machine configuration they
// denote (Table 3 defaults plus these overrides).
func (k Knobs) Config() sim.Config {
	cfg := sim.DefaultConfig()
	if k.WPUs > 0 {
		cfg.WPUs = k.WPUs
	}
	cfg.WPU.Width = k.Width
	cfg.WPU.Warps = k.Warps
	cfg.WPU.SchedSlots = k.Slots
	cfg.WPU.WSTEntries = k.WST
	cfg.Hier.L1.SizeBytes = k.L1KB * 1024
	cfg.Hier.L1.Ways = k.L1Assoc
	cfg.Hier.L2.SizeBytes = k.L2KB * 1024
	cfg.Hier.L2.LookupLat = engine.Cycle(k.L2Lat)
	cfg.Dist = k.Dist
	cfg.WPU = k.Scheme.Apply(cfg.WPU)
	cfg.WPU.DisableWaitMerge = k.NoWaitMerge
	cfg.WPU.DisableProgSched = k.NoProgSched
	cfg.WPU.DisableMemHints = k.NoMemHints
	cfg.WPU.BranchLazyThreshold = k.BranchThresh
	return cfg
}

// key derives the cache key from the benchmark name plus every Knobs
// field. %#v prints all fields by name, so a newly added knob joins the
// key without further code; TestKnobKeyCoversAllFields enforces that the
// rendering actually distinguishes each field.
func (k Knobs) key(bench string) string {
	return fmt.Sprintf("%s|%#v", bench, k)
}

// Key exposes the cache key for one point. The serve layer digests it
// into result keys, so a result computed by any server process for the
// same (benchmark, Knobs) point gets the same address.
func (k Knobs) Key(bench string) string { return k.key(bench) }

// CacheStats counts how Session.Run requests were satisfied.
type CacheStats struct {
	MemHits  uint64 `json:"mem_hits"`  // served from the in-memory cache (or joined in flight)
	DiskHits uint64 `json:"disk_hits"` // loaded from the on-disk store
	Misses   uint64 `json:"misses"`    // simulations actually executed
	Traced   uint64 `json:"traced"`    // of the misses, runs forced live by an attached trace
}

// Session caches runs so figures sharing configurations (every figure
// reuses the Conv baseline) do not repeat simulations. It is safe for
// concurrent use; see the package comment.
type Session struct {
	mu    sync.Mutex
	cache map[string]*inflight
	stats CacheStats

	jobs  int    // worker-pool width for Prefetch (0 = GOMAXPROCS)
	store *Store // optional cross-process result store

	// Verify controls whether every run checks functional results against
	// the host reference (on by default; the cost is negligible). Set it
	// before the first Run; it is not synchronised.
	Verify bool

	// OnSystem, when set, observes every freshly built machine immediately
	// before its run starts — the dwsim -httpobs live-metrics hook. Like
	// Verify it must be set before the first Run; it is called from the
	// executor's worker goroutines, so implementations must be safe for
	// concurrent use.
	OnSystem func(*sim.System)
}

// inflight is one cache slot: done closes once r/err are final, so
// concurrent requests for the same key join a single simulation.
type inflight struct {
	done   chan struct{}
	r      Result
	err    error
	source string // provenance: "simulated", "disk-store", or "traced-live"
}

// Option configures a Session.
type Option func(*Session)

// WithJobs bounds the Prefetch worker pool. n <= 0 means
// runtime.GOMAXPROCS(0).
func WithJobs(n int) Option { return func(s *Session) { s.jobs = n } }

// WithStore attaches a persistent on-disk result store: Run consults it
// before simulating and saves every fresh result into it.
func WithStore(st *Store) Option { return func(s *Session) { s.store = st } }

// NewSession returns an empty run cache.
func NewSession(opts ...Option) *Session {
	s := &Session{cache: make(map[string]*inflight), Verify: true}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Jobs returns the effective worker-pool width.
func (s *Session) Jobs() int {
	if s.jobs > 0 {
		return s.jobs
	}
	return runtime.GOMAXPROCS(0)
}

// Stats returns a snapshot of the cache counters.
func (s *Session) Stats() CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Run simulates one benchmark under the given knobs (cached, singleflight
// deduplicated, safe for concurrent use). Errors are not memoized: a
// failed run is evicted so a later call may retry, though concurrent
// callers joined to the failing run all observe its error.
func (s *Session) Run(bench string, k Knobs) (Result, error) {
	key := k.key(bench)
	s.mu.Lock()
	if c, ok := s.cache[key]; ok {
		s.stats.MemHits++
		s.mu.Unlock()
		<-c.done
		return c.r, c.err
	}
	c := &inflight{done: make(chan struct{})}
	s.cache[key] = c
	s.mu.Unlock()

	c.r, c.source, c.err = s.simulate(bench, k, key)
	close(c.done)
	if c.err != nil {
		s.mu.Lock()
		delete(s.cache, key)
		s.mu.Unlock()
	}
	return c.r, c.err
}

// RunTraced simulates one benchmark with the observability sink tr
// attached. It bypasses the read side of both the in-memory cache and the
// on-disk store: a cache hit would skip the simulation entirely and hand
// back a Result with tr still empty, which is exactly the silent failure
// the caller asked to avoid by attaching a sink. The fresh Result is
// still written through to both caches, so later untraced requests for
// the same point are free. RunTraced is not singleflight-deduplicated —
// tracing the same point twice runs twice, each call filling its own
// sink.
func (s *Session) RunTraced(bench string, k Knobs, tr *obs.Trace) (Result, error) {
	return s.RunTracedWith(bench, k, tr, s.OnSystem)
}

// RunTracedWith is RunTraced with a per-call machine hook replacing the
// session-wide OnSystem: the dwsimd streaming path uses it to chain a
// per-job publisher onto the freshly built System's Tracer without racing
// other jobs on one shared hook. The hook (like OnSystem) runs on the
// goroutine that will drive the simulation, immediately before it starts.
func (s *Session) RunTracedWith(bench string, k Knobs, tr *obs.Trace, onSys func(*sim.System)) (Result, error) {
	s.mu.Lock()
	s.stats.Misses++
	s.stats.Traced++
	s.mu.Unlock()
	r, err := runLive(bench, k, tr, s.Verify, onSys)
	if err != nil {
		return Result{}, err
	}
	key := k.key(bench)
	s.mu.Lock()
	if _, ok := s.cache[key]; !ok {
		c := &inflight{done: make(chan struct{}), r: r, source: "traced-live"}
		close(c.done)
		s.cache[key] = c
	}
	s.mu.Unlock()
	if s.store != nil {
		s.store.Save(key, r)
	}
	return r, nil
}

// Provenance reports how this session obtained the result for (bench, k):
// "simulated", "disk-store", or "traced-live" — or "" when the point has
// not been run. It blocks if the run is still in flight.
func (s *Session) Provenance(bench string, k Knobs) string {
	s.mu.Lock()
	c, ok := s.cache[k.key(bench)]
	s.mu.Unlock()
	if !ok {
		return ""
	}
	<-c.done
	return c.source
}

// simulate produces the Result for one key: from the disk store if
// possible, else by running the simulator (and persisting the outcome).
// The second return is the provenance string recorded on the cache slot.
func (s *Session) simulate(bench string, k Knobs, key string) (Result, string, error) {
	if s.store != nil {
		if r, ok := s.store.Load(key); ok {
			s.mu.Lock()
			s.stats.DiskHits++
			s.mu.Unlock()
			return r, "disk-store", nil
		}
	}
	s.mu.Lock()
	s.stats.Misses++
	s.mu.Unlock()

	r, err := runLive(bench, k, nil, s.Verify, s.OnSystem)
	if err != nil {
		return Result{}, "", err
	}
	if s.store != nil {
		s.store.Save(key, r)
	}
	return r, "simulated", nil
}

// runLive executes one simulation from scratch. tr, when non-nil, is
// attached to every component of the machine before the run (sim.Config
// .Trace), so the returned Result is accompanied by a filled event trace
// and timeline.
func runLive(bench string, k Knobs, tr *obs.Trace, verify bool, onSys func(*sim.System)) (Result, error) {
	scale := k.Scale
	if scale <= 0 {
		scale = 1
	}
	spec, err := workloads.ByNameScaled(bench, scale)
	if err != nil {
		return Result{}, err
	}
	cfg := k.Config()
	cfg.Trace = tr
	sys, err := sim.New(cfg)
	if err != nil {
		return Result{}, err
	}
	inst, err := spec.Build(sys)
	if err != nil {
		return Result{}, err
	}
	if onSys != nil {
		onSys(sys)
	}
	if err := inst.Run(sys); err != nil {
		return Result{}, fmt.Errorf("%s %s: %w", bench, k.key(bench), err)
	}
	if verify {
		if err := inst.Verify(); err != nil {
			return Result{}, fmt.Errorf("%s under %s: %w", bench, k.Scheme, err)
		}
	}
	return Result{
		Bench:          bench,
		Scheme:         k.Scheme,
		Cycles:         sys.Cycles(),
		Stats:          sys.TotalStats(),
		L1:             sys.L1Stats(),
		L2:             sys.L2Stats(),
		XbarTransfers:  sys.Hier.Xbar.Transfers(),
		DRAMAccesses:   sys.Hier.DRAM.Accesses,
		DRAMWritebacks: sys.Hier.DRAM.WritebackN,
		Energy:         energy.Estimate(sys),
	}, nil
}

// BenchNames lists the suite in presentation order.
func BenchNames() []string {
	var names []string
	for _, s := range workloads.All() {
		names = append(names, s.Name)
	}
	return names
}

// HarmonicMean returns the harmonic mean (the paper reports all means as
// harmonic means, §3.2). Zero or negative values are rejected by panic:
// they indicate a broken experiment.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var inv float64
	for _, x := range xs {
		if x <= 0 {
			panic("report: harmonic mean of non-positive value")
		}
		inv += 1 / x
	}
	return float64(len(xs)) / inv
}

// Speedups runs every benchmark under base and alt and returns per-bench
// speedups (base cycles / alt cycles) plus their harmonic mean.
func (s *Session) Speedups(base, alt Knobs) (map[string]float64, float64, error) {
	benches := BenchNames()
	jobs := make([]Job, 0, 2*len(benches))
	for _, b := range benches {
		jobs = append(jobs, Job{b, base}, Job{b, alt})
	}
	if err := s.Prefetch(jobs); err != nil {
		return nil, 0, err
	}
	per := make(map[string]float64)
	var xs []float64
	for _, b := range benches {
		rb, err := s.Run(b, base)
		if err != nil {
			return nil, 0, err
		}
		ra, err := s.Run(b, alt)
		if err != nil {
			return nil, 0, err
		}
		sp := float64(rb.Cycles) / float64(ra.Cycles)
		per[b] = sp
		xs = append(xs, sp)
	}
	return per, HarmonicMean(xs), nil
}

// table is a small fixed-width text table writer.
type table struct {
	w      io.Writer
	header []string
	widths []int
	rows   [][]string
}

func newTable(w io.Writer, header ...string) *table {
	t := &table{w: w, header: header, widths: make([]int, len(header))}
	for i, h := range header {
		t.widths[i] = len(h)
	}
	return t
}

func (t *table) row(cells ...string) {
	for i, c := range cells {
		if i < len(t.widths) && len(c) > t.widths[i] {
			t.widths[i] = len(c)
		}
	}
	t.rows = append(t.rows, cells)
}

func (t *table) flush() {
	line := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", t.widths[i], c)
		}
		fmt.Fprintln(t.w, strings.TrimRight(sb.String(), " "))
	}
	line(t.header)
	var sep []string
	for _, w := range t.widths {
		sep = append(sep, strings.Repeat("-", w))
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func pctS(v float64) string {
	return fmt.Sprintf("%.1f%%", 100*v)
}
