// Package report reproduces every table and figure of the paper's
// evaluation: it sweeps configurations, runs the benchmark suite, verifies
// results, and renders the same rows/series the paper reports. Each
// FigureNN/TableNN function corresponds to one exhibit (see DESIGN.md's
// experiment index) and returns structured data alongside its text
// rendering so tests and the bench harness can assert on shapes.
package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/energy"
	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/workloads"
	"repro/internal/wpu"
)

// Result captures one benchmark × configuration run.
type Result struct {
	Bench  string
	Scheme wpu.Scheme
	Cycles uint64
	Stats  wpu.Stats
	L1     mem.L1Stats
	Energy energy.Breakdown
}

// Knobs are the architectural parameters the evaluation sweeps.
type Knobs struct {
	Width   int
	Warps   int
	Slots   int
	WST     int
	L1KB    int
	L1Assoc int // 0 = fully associative
	L2KB    int
	L2Lat   int
	Scheme  wpu.Scheme

	// Ablation switches (see the Ablation driver).
	NoWaitMerge  bool
	NoProgSched  bool
	BranchThresh int // 0 = default lazy threshold
}

// DefaultKnobs returns the Table 3 configuration under a given scheme.
func DefaultKnobs(s wpu.Scheme) Knobs {
	return Knobs{
		Width: 16, Warps: 4, Slots: 0, WST: 16,
		L1KB: 32, L1Assoc: 8, L2KB: 4096, L2Lat: 30,
		Scheme: s,
	}
}

func (k Knobs) config() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.WPU.Width = k.Width
	cfg.WPU.Warps = k.Warps
	cfg.WPU.SchedSlots = k.Slots
	cfg.WPU.WSTEntries = k.WST
	cfg.Hier.L1.SizeBytes = k.L1KB * 1024
	cfg.Hier.L1.Ways = k.L1Assoc
	cfg.Hier.L2.SizeBytes = k.L2KB * 1024
	cfg.Hier.L2.LookupLat = engine.Cycle(k.L2Lat)
	cfg.WPU = k.Scheme.Apply(cfg.WPU)
	cfg.WPU.DisableWaitMerge = k.NoWaitMerge
	cfg.WPU.DisableProgSched = k.NoProgSched
	cfg.WPU.BranchLazyThreshold = k.BranchThresh
	return cfg
}

// Session caches runs so figures sharing configurations (every figure
// reuses the Conv baseline) do not repeat simulations.
type Session struct {
	cache map[string]Result
	// Verify controls whether every run checks functional results against
	// the host reference (on by default; the cost is negligible).
	Verify bool
}

// NewSession returns an empty run cache.
func NewSession() *Session {
	return &Session{cache: make(map[string]Result), Verify: true}
}

func (k Knobs) key(bench string) string {
	return fmt.Sprintf("%s|%s|w%d×%d|sl%d|wst%d|l1:%d/%d|l2:%d/%d|ab:%v%v%d",
		bench, k.Scheme, k.Width, k.Warps, k.Slots, k.WST, k.L1KB, k.L1Assoc, k.L2KB, k.L2Lat,
		k.NoWaitMerge, k.NoProgSched, k.BranchThresh)
}

// Run simulates one benchmark under the given knobs (cached).
func (s *Session) Run(bench string, k Knobs) (Result, error) {
	key := k.key(bench)
	if r, ok := s.cache[key]; ok {
		return r, nil
	}
	spec, err := workloads.ByName(bench)
	if err != nil {
		return Result{}, err
	}
	sys, err := sim.New(k.config())
	if err != nil {
		return Result{}, err
	}
	inst, err := spec.Build(sys)
	if err != nil {
		return Result{}, err
	}
	if err := inst.Run(sys); err != nil {
		return Result{}, fmt.Errorf("%s %s: %w", bench, k.key(bench), err)
	}
	if s.Verify {
		if err := inst.Verify(); err != nil {
			return Result{}, fmt.Errorf("%s under %s: %w", bench, k.Scheme, err)
		}
	}
	r := Result{
		Bench:  bench,
		Scheme: k.Scheme,
		Cycles: sys.Cycles(),
		Stats:  sys.TotalStats(),
		L1:     sys.L1Stats(),
		Energy: energy.Estimate(sys),
	}
	s.cache[key] = r
	return r, nil
}

// BenchNames lists the suite in presentation order.
func BenchNames() []string {
	var names []string
	for _, s := range workloads.All() {
		names = append(names, s.Name)
	}
	return names
}

// HarmonicMean returns the harmonic mean (the paper reports all means as
// harmonic means, §3.2). Zero or negative values are rejected by panic:
// they indicate a broken experiment.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var inv float64
	for _, x := range xs {
		if x <= 0 {
			panic("report: harmonic mean of non-positive value")
		}
		inv += 1 / x
	}
	return float64(len(xs)) / inv
}

// Speedups runs every benchmark under base and alt and returns per-bench
// speedups (base cycles / alt cycles) plus their harmonic mean.
func (s *Session) Speedups(base, alt Knobs) (map[string]float64, float64, error) {
	per := make(map[string]float64)
	var xs []float64
	for _, b := range BenchNames() {
		rb, err := s.Run(b, base)
		if err != nil {
			return nil, 0, err
		}
		ra, err := s.Run(b, alt)
		if err != nil {
			return nil, 0, err
		}
		sp := float64(rb.Cycles) / float64(ra.Cycles)
		per[b] = sp
		xs = append(xs, sp)
	}
	return per, HarmonicMean(xs), nil
}

// table is a small fixed-width text table writer.
type table struct {
	w      io.Writer
	header []string
	widths []int
	rows   [][]string
}

func newTable(w io.Writer, header ...string) *table {
	t := &table{w: w, header: header, widths: make([]int, len(header))}
	for i, h := range header {
		t.widths[i] = len(h)
	}
	return t
}

func (t *table) row(cells ...string) {
	for i, c := range cells {
		if i < len(t.widths) && len(c) > t.widths[i] {
			t.widths[i] = len(c)
		}
	}
	t.rows = append(t.rows, cells)
}

func (t *table) flush() {
	line := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", t.widths[i], c)
		}
		fmt.Fprintln(t.w, strings.TrimRight(sb.String(), " "))
	}
	line(t.header)
	var sep []string
	for _, w := range t.widths {
		sep = append(sep, strings.Repeat("-", w))
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func pctS(v float64) string {
	return fmt.Sprintf("%.1f%%", 100*v)
}
