package report

import (
	"fmt"
	"io"
	"strconv"

	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/workloads"
	"repro/internal/wpu"
)

// Memory-access-class exhibit (beyond paper): the static classifier's
// verdict per kernel against what the machine actually did. The static
// side counts memory instructions per access class over the suite's
// distinct kernels; the dynamic side sums, per class, the SIMD accesses
// issued from those sites and the line transactions they generated — so
// tx/access against the class's worst-case bound is the analysis's
// precision, measured on real runs. Conv gives the full-width (lockstep)
// numbers the bounds were computed for; ReviveSplit shows the same sites
// under warp splits and revival.

// memClassSchemes is the scheme pair the exhibit contrasts.
var memClassSchemes = []wpu.Scheme{wpu.SchemeConv, wpu.SchemeRevive}

// MemClassRow is one (scheme, access class) point, summed over the suite.
type MemClassRow struct {
	Scheme       wpu.Scheme
	Class        program.AccessClass
	StaticSites  int    // static memory instructions of this class across the suite's kernels
	Accesses     uint64 // dynamic SIMD accesses issued from those sites
	Transactions uint64 // line transactions those accesses generated
	HintSkips    uint64 // subdivide-probe skips under the uniform hint (per scheme, repeated on each class row)
}

// staticClassSites builds every suite kernel (no simulation) and counts
// memory instructions per access class, once per distinct kernel.
func staticClassSites() ([program.NumAccessClasses]int, error) {
	var sites [program.NumAccessClasses]int
	seen := make(map[string]bool)
	for _, spec := range workloads.All() {
		sys, err := sim.New(sim.DefaultConfig())
		if err != nil {
			return sites, err
		}
		inst, err := spec.Build(sys)
		if err != nil {
			return sites, fmt.Errorf("%s: %w", spec.Name, err)
		}
		for _, st := range inst.Steps() {
			if seen[st.Prog.Name] {
				continue
			}
			seen[st.Prog.Name] = true
			for _, a := range st.Prog.MemAccesses() {
				sites[a.AClass]++
			}
		}
	}
	return sites, nil
}

// MemAccessClasses runs the suite under Conv and DWS.ReviveSplit and
// prints the static-vs-dynamic class table; the returned rows feed
// MemAccessCSV.
func (s *Session) MemAccessClasses(w io.Writer) ([]MemClassRow, error) {
	sites, err := staticClassSites()
	if err != nil {
		return nil, err
	}
	var knobs []Knobs
	for _, sc := range memClassSchemes {
		knobs = append(knobs, DefaultKnobs(sc))
	}
	if err := s.Prefetch(suiteJobs(knobs...)); err != nil {
		return nil, err
	}
	var rows []MemClassRow
	for _, sc := range memClassSchemes {
		k := DefaultKnobs(sc)
		var total wpu.Stats
		for _, b := range BenchNames() {
			r, err := s.Run(b, k)
			if err != nil {
				return nil, err
			}
			total.Add(&r.Stats)
		}
		for c := 0; c < program.NumAccessClasses; c++ {
			rows = append(rows, MemClassRow{
				Scheme:       sc,
				Class:        program.AccessClass(c),
				StaticSites:  sites[c],
				Accesses:     total.MemClassAccesses[c],
				Transactions: total.MemClassTransactions[c],
				HintSkips:    total.MemDivHintSkips,
			})
		}
	}

	fmt.Fprintln(w, "Access classes (static analysis): classifier verdicts vs dynamic line transactions (suite totals)")
	fmt.Fprintln(w, "(sites: static memory instructions per class; tx/access: mean line transactions per SIMD access)")
	t := newTable(w, "scheme", "class", "sites", "accesses", "transactions", "tx/access", "hint-skips")
	for _, r := range rows {
		txPer := "-"
		if r.Accesses > 0 {
			txPer = fmt.Sprintf("%.2f", float64(r.Transactions)/float64(r.Accesses))
		}
		t.row(string(r.Scheme), r.Class.String(), strconv.Itoa(r.StaticSites),
			strconv.FormatUint(r.Accesses, 10), strconv.FormatUint(r.Transactions, 10),
			txPer, strconv.FormatUint(r.HintSkips, 10))
	}
	t.flush()
	return rows, nil
}

// MemAccessCSV writes the access-class exhibit rows.
func MemAccessCSV(dir string, rows []MemClassRow) error {
	header := []string{"scheme", "class", "static_sites", "accesses", "transactions", "tx_per_access", "hint_skips"}
	var out [][]string
	for _, r := range rows {
		txPer := 0.0
		if r.Accesses > 0 {
			txPer = float64(r.Transactions) / float64(r.Accesses)
		}
		out = append(out, []string{
			string(r.Scheme), r.Class.String(), strconv.Itoa(r.StaticSites),
			strconv.FormatUint(r.Accesses, 10), strconv.FormatUint(r.Transactions, 10),
			fs(txPer), strconv.FormatUint(r.HintSkips, 10),
		})
	}
	return writeCSV(dir, "memaccess.csv", header, out)
}
