package report

import (
	"fmt"
	"io"

	"repro/internal/wpu"
)

// Table1Row characterises one benchmark's divergence behaviour (Table 1).
type Table1Row struct {
	Bench               string
	InstPerBranch       float64 // avg instructions between branches
	DivergentBranchPct  float64 // fraction of branches that diverge
	InstPerMiss         float64 // avg instructions between missing accesses
	InstPerDivMiss      float64 // avg instructions between divergent misses
	DivergentAccessPct  float64 // fraction of missing accesses that diverge
	DivergentOfAccesses float64 // fraction of all accesses that diverge
}

// Table1 reproduces the divergence characterisation under the conventional
// configuration.
func (s *Session) Table1(w io.Writer) ([]Table1Row, error) {
	var rows []Table1Row
	base := DefaultKnobs(wpu.SchemeConv)
	if err := s.Prefetch(suiteJobs(base)); err != nil {
		return nil, err
	}
	for _, b := range BenchNames() {
		r, err := s.Run(b, base)
		if err != nil {
			return nil, err
		}
		st := r.Stats
		row := Table1Row{Bench: b}
		if st.Branches > 0 {
			row.InstPerBranch = float64(st.Issued) / float64(st.Branches)
			row.DivergentBranchPct = float64(st.DivBranch) / float64(st.Branches)
		}
		if st.MemWithMiss > 0 {
			row.InstPerMiss = float64(st.Issued) / float64(st.MemWithMiss)
			row.DivergentAccessPct = float64(st.MemDivergent) / float64(st.MemWithMiss)
		}
		if st.MemDivergent > 0 {
			row.InstPerDivMiss = float64(st.Issued) / float64(st.MemDivergent)
		}
		if st.MemAccesses > 0 {
			row.DivergentOfAccesses = float64(st.MemDivergent) / float64(st.MemAccesses)
		}
		rows = append(rows, row)
	}
	fmt.Fprintln(w, "Table 1: frequency of branch divergence and SIMD cache misses (Conv, Table 3 config)")
	t := newTable(w, "benchmark", "inst/branch", "div branches", "inst/miss", "inst/div-miss", "div mem accesses")
	for _, r := range rows {
		t.row(r.Bench, f1(r.InstPerBranch), pctS(r.DivergentBranchPct),
			f1(r.InstPerMiss), f1(r.InstPerDivMiss), pctS(r.DivergentAccessPct))
	}
	t.flush()
	return rows, nil
}

// SweepPoint is one x-axis point of a time-breakdown sweep (Figure 1).
type SweepPoint struct {
	Label        string
	NormTime     float64 // h-mean execution time normalised to the first point
	BusyFrac     float64 // h-mean busy fraction
	MemStallFrac float64
}

// suiteJobs expands knob settings into one Job per (benchmark, knobs)
// point, the unit the Prefetch worker pool consumes.
func suiteJobs(knobs ...Knobs) []Job {
	benches := BenchNames()
	jobs := make([]Job, 0, len(knobs)*len(benches))
	for _, k := range knobs {
		for _, b := range benches {
			jobs = append(jobs, Job{b, k})
		}
	}
	return jobs
}

func (s *Session) breakdownSweep(w io.Writer, title string, knobs []Knobs, labels []string) ([]SweepPoint, error) {
	if err := s.Prefetch(suiteJobs(knobs...)); err != nil {
		return nil, err
	}
	var pts []SweepPoint
	var baseCycles map[string]uint64
	for i, k := range knobs {
		cycles := make(map[string]uint64)
		var norms, busies, stalls []float64
		for _, b := range BenchNames() {
			r, err := s.Run(b, k)
			if err != nil {
				return nil, err
			}
			cycles[b] = r.Cycles
			busies = append(busies, safeFrac(r.Stats.BusyCycles, r.Stats.Cycles()))
			stalls = append(stalls, r.Stats.MemStallFraction())
			if baseCycles != nil {
				norms = append(norms, float64(cycles[b])/float64(baseCycles[b]))
			}
		}
		if baseCycles == nil {
			baseCycles = cycles
			norms = []float64{1}
		}
		pts = append(pts, SweepPoint{
			Label:        labels[i],
			NormTime:     arithMean(norms),
			BusyFrac:     arithMean(busies),
			MemStallFrac: arithMean(stalls),
		})
	}
	fmt.Fprintln(w, title)
	t := newTable(w, "config", "norm. time", "busy", "waiting for memory")
	for _, p := range pts {
		t.row(p.Label, f2(p.NormTime), pctS(p.BusyFrac), pctS(p.MemStallFrac))
	}
	t.flush()
	return pts, nil
}

func safeFrac(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func arithMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Figure1a: execution-time breakdown vs SIMD width (4 warps, Conv).
func (s *Session) Figure1a(w io.Writer) ([]SweepPoint, error) {
	var knobs []Knobs
	var labels []string
	for _, width := range []int{1, 2, 4, 8, 16, 32} {
		k := DefaultKnobs(wpu.SchemeConv)
		k.Width = width
		knobs = append(knobs, k)
		labels = append(labels, fmt.Sprintf("width %2d", width))
	}
	return s.breakdownSweep(w,
		"Figure 1a: wider SIMD does not always help — time breakdown vs SIMD width (4 warps, Conv; normalised to width 1)",
		knobs, labels)
}

// Figure1b: time breakdown vs D-cache associativity (16-wide, 4 warps).
func (s *Session) Figure1b(w io.Writer) ([]SweepPoint, error) {
	var knobs []Knobs
	var labels []string
	for _, assoc := range []int{4, 8, 16, 0} {
		k := DefaultKnobs(wpu.SchemeConv)
		k.L1Assoc = assoc
		knobs = append(knobs, k)
		if assoc == 0 {
			labels = append(labels, "fully assoc")
		} else {
			labels = append(labels, fmt.Sprintf("%2d-way", assoc))
		}
	}
	return s.breakdownSweep(w,
		"Figure 1b: memory time persists even with high associativity (16-wide, 4 warps, Conv; normalised to 4-way)",
		knobs, labels)
}

// Figure1c: time breakdown vs warp count (8-wide).
func (s *Session) Figure1c(w io.Writer) ([]SweepPoint, error) {
	var knobs []Knobs
	var labels []string
	for _, warps := range []int{1, 2, 4, 8, 16, 32} {
		k := DefaultKnobs(wpu.SchemeConv)
		k.Width = 8
		k.Warps = warps
		knobs = append(knobs, k)
		labels = append(labels, fmt.Sprintf("%2d warps", warps))
	}
	return s.breakdownSweep(w,
		"Figure 1c: more warps eventually exacerbate contention — time breakdown vs warp count (8-wide, Conv; normalised to 1 warp)",
		knobs, labels)
}

// SchemeSpeedups holds per-benchmark speedups over Conv plus the h-mean.
type SchemeSpeedups struct {
	Scheme wpu.Scheme
	Per    map[string]float64
	HMean  float64
}

func (s *Session) schemeComparison(w io.Writer, title string, schemes []wpu.Scheme) ([]SchemeSpeedups, error) {
	base := DefaultKnobs(wpu.SchemeConv)
	all := []Knobs{base}
	for _, sc := range schemes {
		all = append(all, DefaultKnobs(sc))
	}
	if err := s.Prefetch(suiteJobs(all...)); err != nil {
		return nil, err
	}
	var out []SchemeSpeedups
	for _, sc := range schemes {
		alt := DefaultKnobs(sc)
		per, hm, err := s.Speedups(base, alt)
		if err != nil {
			return nil, err
		}
		out = append(out, SchemeSpeedups{Scheme: sc, Per: per, HMean: hm})
	}
	fmt.Fprintln(w, title)
	header := append([]string{"benchmark"}, func() []string {
		var hs []string
		for _, o := range out {
			hs = append(hs, string(o.Scheme))
		}
		return hs
	}()...)
	t := newTable(w, header...)
	for _, b := range BenchNames() {
		cells := []string{b}
		for _, o := range out {
			cells = append(cells, f2(o.Per[b]))
		}
		t.row(cells...)
	}
	cells := []string{"h-mean"}
	for _, o := range out {
		cells = append(cells, f2(o.HMean))
	}
	t.row(cells...)
	t.flush()
	return out, nil
}

// Figure7: DWS upon branch divergence with stack-based vs PC-based
// re-convergence, speedup over Conv.
func (s *Session) Figure7(w io.Writer) ([]SchemeSpeedups, error) {
	return s.schemeComparison(w,
		"Figure 7: DWS upon branch divergence — stack-based vs PC-based re-convergence (speedup over Conv)",
		[]wpu.Scheme{wpu.SchemeBranchOnlyStack, wpu.SchemeBranchOnly})
}

// Figure11: memory-divergence subdivision schemes under BranchLimited
// re-convergence.
func (s *Session) Figure11(w io.Writer) ([]SchemeSpeedups, error) {
	return s.schemeComparison(w,
		"Figure 11: BranchLimited re-convergence yields little gain for all subdivision schemes (speedup over Conv)",
		[]wpu.Scheme{wpu.SchemeAggressBL, wpu.SchemeLazyBL, wpu.SchemeReviveBL})
}

// Figure13: the full scheme comparison, including adaptive slip.
func (s *Session) Figure13(w io.Writer) ([]SchemeSpeedups, error) {
	return s.schemeComparison(w,
		"Figure 13: comparing DWS schemes and adaptive slip (speedup over Conv)",
		[]wpu.Scheme{
			wpu.SchemeBranchOnly,
			wpu.SchemeReviveMemOnly,
			wpu.SchemeAggress,
			wpu.SchemeLazy,
			wpu.SchemeRevive,
			wpu.SchemeSlip,
			wpu.SchemeSlipBranchBypass,
		})
}

// Headline prints the §5.5 summary numbers for DWS.ReviveSplit.
func (s *Session) Headline(w io.Writer) error {
	base := DefaultKnobs(wpu.SchemeConv)
	alt := DefaultKnobs(wpu.SchemeRevive)
	_, hm, err := s.Speedups(base, alt)
	if err != nil {
		return err
	}
	var convStall, dwsStall, convWidth, dwsWidth, energyRatio []float64
	for _, b := range BenchNames() {
		rc, err := s.Run(b, base)
		if err != nil {
			return err
		}
		rd, err := s.Run(b, alt)
		if err != nil {
			return err
		}
		convStall = append(convStall, rc.Stats.MemStallFraction())
		dwsStall = append(dwsStall, rd.Stats.MemStallFraction())
		convWidth = append(convWidth, rc.Stats.MeanSIMDWidth())
		dwsWidth = append(dwsWidth, rd.Stats.MeanSIMDWidth())
		energyRatio = append(energyRatio, rd.Energy.Total()/rc.Energy.Total())
	}
	fmt.Fprintf(w, "Headline (§5.5/§6.5): DWS.ReviveSplit speedup (h-mean) %.2fx; "+
		"memory-stall fraction %.0f%% -> %.0f%%; mean SIMD width %.1f -> %.1f; energy %.0f%% of Conv\n",
		hm, 100*arithMean(convStall), 100*arithMean(dwsStall),
		arithMean(convWidth), arithMean(dwsWidth), 100*arithMean(energyRatio))
	return nil
}

// Figure14 prints the per-thread miss distribution (warps × lanes) for each
// benchmark as a 0-9 heat grid, normalised per benchmark.
func (s *Session) Figure14(w io.Writer) (map[string][][]uint64, error) {
	base := DefaultKnobs(wpu.SchemeConv)
	if err := s.Prefetch(suiteJobs(base)); err != nil {
		return nil, err
	}
	out := make(map[string][][]uint64)
	fmt.Fprintln(w, "Figure 14: spatial distribution of memory divergence among SIMD threads")
	fmt.Fprintln(w, "(rows = warps of WPU 0..3 stacked, columns = lanes; digits 0-9 scale to the benchmark's max)")
	for _, b := range BenchNames() {
		r, err := s.Run(b, base)
		if err != nil {
			return nil, err
		}
		grid := r.Stats.ThreadMisses
		out[b] = grid
		var max uint64
		for _, row := range grid {
			for _, v := range row {
				if v > max {
					max = v
				}
			}
		}
		fmt.Fprintf(w, "%s:\n", b)
		for _, row := range grid {
			line := make([]byte, len(row))
			for i, v := range row {
				d := byte('0')
				if max > 0 {
					d = byte('0') + byte(v*9/max)
				}
				line[i] = d
			}
			fmt.Fprintf(w, "  %s\n", line)
		}
	}
	return out, nil
}

// SensitivityPoint is one x-value of a Conv-vs-DWS sensitivity sweep.
type SensitivityPoint struct {
	Label   string
	Conv    float64 // h-mean speedup of Conv at this point vs Conv baseline
	DWS     float64 // same for DWS.ReviveSplit
	Speedup float64 // h-mean DWS/Conv at this point
}

func (s *Session) sensitivity(w io.Writer, title string, vary func(k *Knobs, i int), labels []string) ([]SensitivityPoint, error) {
	baseline := DefaultKnobs(wpu.SchemeConv)
	all := []Knobs{baseline}
	for i := range labels {
		kc := DefaultKnobs(wpu.SchemeConv)
		vary(&kc, i)
		kd := DefaultKnobs(wpu.SchemeRevive)
		vary(&kd, i)
		all = append(all, kc, kd)
	}
	if err := s.Prefetch(suiteJobs(all...)); err != nil {
		return nil, err
	}
	var pts []SensitivityPoint
	for i, lab := range labels {
		kc := DefaultKnobs(wpu.SchemeConv)
		vary(&kc, i)
		kd := DefaultKnobs(wpu.SchemeRevive)
		vary(&kd, i)
		var convN, dwsN, sp []float64
		for _, b := range BenchNames() {
			rb, err := s.Run(b, baseline)
			if err != nil {
				return nil, err
			}
			rc, err := s.Run(b, kc)
			if err != nil {
				return nil, err
			}
			rd, err := s.Run(b, kd)
			if err != nil {
				return nil, err
			}
			convN = append(convN, float64(rb.Cycles)/float64(rc.Cycles))
			dwsN = append(dwsN, float64(rb.Cycles)/float64(rd.Cycles))
			sp = append(sp, float64(rc.Cycles)/float64(rd.Cycles))
		}
		pts = append(pts, SensitivityPoint{
			Label:   lab,
			Conv:    HarmonicMean(convN),
			DWS:     HarmonicMean(dwsN),
			Speedup: HarmonicMean(sp),
		})
	}
	fmt.Fprintln(w, title)
	t := newTable(w, "config", "Conv", "DWS", "DWS/Conv")
	for _, p := range pts {
		t.row(p.Label, f2(p.Conv), f2(p.DWS), f2(p.Speedup))
	}
	t.flush()
	return pts, nil
}

// Figure15: speedup vs D-cache associativity.
func (s *Session) Figure15(w io.Writer) ([]SensitivityPoint, error) {
	assocs := []int{4, 8, 16, 0}
	labels := []string{"4-way", "8-way", "16-way", "fully assoc"}
	return s.sensitivity(w,
		"Figure 15: speedup vs D-cache associativity (normalised to Conv 8-way)",
		func(k *Knobs, i int) { k.L1Assoc = assocs[i] }, labels)
}

// Figure16: speedup vs L2 lookup latency.
func (s *Session) Figure16(w io.Writer) ([]SensitivityPoint, error) {
	lats := []int{10, 30, 100, 200, 300}
	labels := []string{"10 cyc", "30 cyc", "100 cyc", "200 cyc", "300 cyc"}
	return s.sensitivity(w,
		"Figure 16: speedup vs L2 lookup latency (normalised to Conv at 30 cycles)",
		func(k *Knobs, i int) { k.L2Lat = lats[i] }, labels)
}

// Figure17: speedup vs D-cache size.
func (s *Session) Figure17(w io.Writer) ([]SensitivityPoint, error) {
	sizes := []int{8, 16, 32, 64, 128}
	labels := []string{"8 KB", "16 KB", "32 KB", "64 KB", "128 KB"}
	return s.sensitivity(w,
		"Figure 17: speedup vs D-cache size (normalised to Conv 32 KB)",
		func(k *Knobs, i int) { k.L1KB = sizes[i] }, labels)
}

// Figure18Point is one (cache setup, width×warps, scheme) h-mean speedup.
type Figure18Point struct {
	Setup   string
	Config  string
	Scheme  wpu.Scheme
	Speedup float64 // vs Conv 16×4 under the same cache setup
}

// Figure18 sweeps SIMD width and multithreading depth under four D-cache
// setups for Conv, DWS and Slip.BranchBypass.
func (s *Session) Figure18(w io.Writer, quick bool) ([]Figure18Point, error) {
	type setup struct {
		name  string
		kb    int
		assoc int
	}
	setups := []setup{
		{"8-way 32KB", 32, 8},
		{"fully-assoc 32KB", 32, 0},
		{"8-way 256KB", 256, 8},
		{"fully-assoc 256KB", 256, 0},
	}
	// The grid spans the paper's two regimes: a few wide warps (where DWS
	// shines) and many narrow warps (where latency is already hidden and
	// subdividing only costs utilisation, §6.4).
	pairs := [][2]int{{4, 8}, {4, 16}, {8, 2}, {8, 4}, {16, 1}, {16, 2}, {16, 4}}
	if quick {
		setups = setups[:2]
		pairs = [][2]int{{8, 4}, {16, 2}, {16, 4}}
	}
	schemes := []wpu.Scheme{wpu.SchemeConv, wpu.SchemeRevive, wpu.SchemeSlipBranchBypass}

	var all []Knobs
	for _, su := range setups {
		base := DefaultKnobs(wpu.SchemeConv)
		base.L1KB = su.kb
		base.L1Assoc = su.assoc
		all = append(all, base)
		for _, p := range pairs {
			for _, sc := range schemes {
				k := DefaultKnobs(sc)
				k.L1KB = su.kb
				k.L1Assoc = su.assoc
				k.Width = p[0]
				k.Warps = p[1]
				all = append(all, k)
			}
		}
	}
	if err := s.Prefetch(suiteJobs(all...)); err != nil {
		return nil, err
	}

	var pts []Figure18Point
	fmt.Fprintln(w, "Figure 18: speedups across SIMD width x warps under different D-cache setups")
	fmt.Fprintln(w, "(h-means over the suite, normalised to Conv 16-wide x 4 warps under the same cache setup)")
	for _, su := range setups {
		base := DefaultKnobs(wpu.SchemeConv)
		base.L1KB = su.kb
		base.L1Assoc = su.assoc
		t := newTable(w, su.name, "Conv", "DWS", "Slip.BB")
		for _, p := range pairs {
			row := []string{fmt.Sprintf("%2d-wide x %d warps", p[0], p[1])}
			for _, sc := range schemes {
				k := DefaultKnobs(sc)
				k.L1KB = su.kb
				k.L1Assoc = su.assoc
				k.Width = p[0]
				k.Warps = p[1]
				var sp []float64
				for _, b := range BenchNames() {
					rb, err := s.Run(b, base)
					if err != nil {
						return nil, err
					}
					ra, err := s.Run(b, k)
					if err != nil {
						return nil, err
					}
					sp = append(sp, float64(rb.Cycles)/float64(ra.Cycles))
				}
				hm := HarmonicMean(sp)
				pts = append(pts, Figure18Point{
					Setup:  su.name,
					Config: row[0],
					Scheme: sc, Speedup: hm,
				})
				row = append(row, f2(hm))
			}
			t.row(row...)
		}
		t.flush()
		fmt.Fprintln(w)
	}
	return pts, nil
}

// EnergyRow is one benchmark's normalised energy under the three systems.
type EnergyRow struct {
	Bench  string
	Conv   float64 // always 1.0
	DWS    float64
	SlipBB float64
}

// Figure19: energy consumption normalised to Conv.
func (s *Session) Figure19(w io.Writer) ([]EnergyRow, error) {
	if err := s.Prefetch(suiteJobs(
		DefaultKnobs(wpu.SchemeConv),
		DefaultKnobs(wpu.SchemeRevive),
		DefaultKnobs(wpu.SchemeSlipBranchBypass),
	)); err != nil {
		return nil, err
	}
	var rows []EnergyRow
	for _, b := range BenchNames() {
		rc, err := s.Run(b, DefaultKnobs(wpu.SchemeConv))
		if err != nil {
			return nil, err
		}
		rd, err := s.Run(b, DefaultKnobs(wpu.SchemeRevive))
		if err != nil {
			return nil, err
		}
		rs, err := s.Run(b, DefaultKnobs(wpu.SchemeSlipBranchBypass))
		if err != nil {
			return nil, err
		}
		rows = append(rows, EnergyRow{
			Bench:  b,
			Conv:   1,
			DWS:    rd.Energy.Total() / rc.Energy.Total(),
			SlipBB: rs.Energy.Total() / rc.Energy.Total(),
		})
	}
	fmt.Fprintln(w, "Figure 19: energy normalised to Conv (left to right: Conv, DWS, Slip.BranchBypass)")
	t := newTable(w, "benchmark", "Conv", "DWS", "Slip.BB")
	var d, sl []float64
	for _, r := range rows {
		t.row(r.Bench, f2(r.Conv), f2(r.DWS), f2(r.SlipBB))
		d = append(d, r.DWS)
		sl = append(sl, r.SlipBB)
	}
	t.row("mean", "1.00", f2(arithMean(d)), f2(arithMean(sl)))
	t.flush()
	return rows, nil
}

// Figure20: DWS speedup vs number of scheduler slots.
func (s *Session) Figure20(w io.Writer) ([]SensitivityPoint, error) {
	slots := []int{2, 4, 8, 16, 32}
	labels := []string{"2 slots", "4 slots", "8 slots", "16 slots", "32 slots"}
	return s.sensitivity(w,
		"Figure 20: sensitivity to scheduler slots (DWS subdivides; Conv uses its 4 warps)",
		func(k *Knobs, i int) { k.Slots = slots[i] }, labels)
}

// Figure21: DWS speedup vs warp-split table size (8 scheduler slots).
func (s *Session) Figure21(w io.Writer) ([]SensitivityPoint, error) {
	wsts := []int{4, 8, 16, 32, 64}
	labels := []string{"WST 4", "WST 8", "WST 16", "WST 32", "WST 64"}
	return s.sensitivity(w,
		"Figure 21: sensitivity to warp-split table entries (scheduler has 8 slots)",
		func(k *Knobs, i int) { k.WST = wsts[i]; k.Slots = 8 }, labels)
}

// AblationRow quantifies one implementation design choice.
type AblationRow struct {
	Name  string
	HMean float64 // speedup over Conv with this variant
	Per   map[string]float64
}

// Ablation evaluates this implementation's design choices around
// DWS.ReviveSplit (beyond the paper: the paper fixes these implicitly):
// re-convergence of suspended groups at matching PCs (wait-merge),
// least-progressed-first scheduling, the laziness threshold on branch
// subdivision, and the §8 predictive extension.
func (s *Session) Ablation(w io.Writer) ([]AblationRow, error) {
	base := DefaultKnobs(wpu.SchemeConv)
	variants := []struct {
		name string
		k    Knobs
	}{
		{"DWS.ReviveSplit (full)", DefaultKnobs(wpu.SchemeRevive)},
		{"  - wait-merge", func() Knobs { k := DefaultKnobs(wpu.SchemeRevive); k.NoWaitMerge = true; return k }()},
		{"  - least-progress sched", func() Knobs { k := DefaultKnobs(wpu.SchemeRevive); k.NoProgSched = true; return k }()},
		{"  unconditional branch split", func() Knobs { k := DefaultKnobs(wpu.SchemeRevive); k.BranchThresh = 1 << 20; return k }()},
		{"DWS.PredictiveSplit (§8)", DefaultKnobs(wpu.SchemePredictive)},
	}
	all := []Knobs{base}
	for _, v := range variants {
		all = append(all, v.k)
	}
	if err := s.Prefetch(suiteJobs(all...)); err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, v := range variants {
		per, hm, err := s.Speedups(base, v.k)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{Name: v.name, HMean: hm, Per: per})
	}
	fmt.Fprintln(w, "Ablation: design choices of this implementation (speedup over Conv, h-mean and per benchmark)")
	header := append([]string{"variant", "h-mean"}, BenchNames()...)
	t := newTable(w, header...)
	for _, r := range rows {
		cells := []string{r.Name, f2(r.HMean)}
		for _, b := range BenchNames() {
			cells = append(cells, f2(r.Per[b]))
		}
		t.row(cells...)
	}
	t.flush()
	return rows, nil
}
