package report

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
)

// storeSchema versions the record layout; bump it whenever Result or the
// key format changes incompatibly so stale records simply miss.
// v2: Result gained L2 stats and interconnect/DRAM traffic counters.
// v3: wpu.Stats replaced the three-way cycle split with the top-down
// stall taxonomy (TickCycles + eight exclusive buckets).
// v4: wpu.Stats gained the static access-class concordance counters
// (MemClassAccesses/MemClassTransactions/MemDivHintSkips/MemBoundExceeded).
const storeSchema = "dwsim-store-v4"

// Store is a persistent, cross-process result cache: one JSON record per
// simulated point, named by a digest of the cache key plus a version salt
// (schema, Go version, and VCS state of the binary). Reads of records
// written under a different salt miss; writes are atomic (temp file +
// rename), so concurrent processes sharing a directory are safe.
//
// The salt cannot see uncommitted source edits when the binary carries no
// VCS stamp (as with `go run` or test binaries): after changing simulator
// behaviour, clear the directory or pass -nocache.
//
// Interplay with observability: a Result record holds only the final
// counters, never the event trace or timeline that produced them, so a
// disk hit cannot stand in for a traced run. Session.RunTraced therefore
// skips Load entirely and always simulates live — but it still Saves the
// fresh Result, so a traced run warms the store for later untraced use.
type Store struct {
	dir  string
	salt string
}

// DefaultCacheDir returns the per-user cache location (~/.cache/dwsim on
// Linux), falling back to the system temp directory.
func DefaultCacheDir() string {
	if d, err := os.UserCacheDir(); err == nil {
		return filepath.Join(d, "dwsim")
	}
	return filepath.Join(os.TempDir(), "dwsim-cache")
}

// OpenStore opens (creating if needed) a result store rooted at dir;
// dir == "" means DefaultCacheDir().
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		dir = DefaultCacheDir()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("report: open store: %w", err)
	}
	return &Store{dir: dir, salt: versionSalt()}, nil
}

// versionSalt digests everything known about the program version so
// records from a different build of the simulator are not reused.
func versionSalt() string {
	h := sha256.New()
	fmt.Fprintln(h, storeSchema)
	fmt.Fprintln(h, runtime.Version())
	if bi, ok := debug.ReadBuildInfo(); ok {
		fmt.Fprintln(h, bi.Main.Version)
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision", "vcs.time", "vcs.modified":
				fmt.Fprintf(h, "%s=%s\n", kv.Key, kv.Value)
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// record is the on-disk layout. Key and Salt are stored verbatim so Load
// can reject digest collisions and cross-version reuse outright.
type record struct {
	Key    string `json:"key"`
	Salt   string `json:"salt"`
	Result Result `json:"result"`
}

func (st *Store) path(key string) string {
	d := sha256.Sum256([]byte(st.salt + "\n" + key))
	return filepath.Join(st.dir, hex.EncodeToString(d[:16])+".json")
}

// Load returns the stored Result for key, if a matching record exists.
func (st *Store) Load(key string) (Result, bool) {
	b, err := os.ReadFile(st.path(key))
	if err != nil {
		return Result{}, false
	}
	var rec record
	if json.Unmarshal(b, &rec) != nil || rec.Key != key || rec.Salt != st.salt {
		return Result{}, false
	}
	return rec.Result, true
}

// Save persists one result. Failures are reported but deliberately
// non-fatal to callers like Session.simulate: a broken cache directory
// must never fail a simulation that already succeeded.
func (st *Store) Save(key string, r Result) error {
	b, err := json.Marshal(record{Key: key, Salt: st.salt, Result: r})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(st.dir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), st.path(key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
