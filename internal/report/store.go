package report

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// storeSchema versions the record layout; bump it whenever Result or the
// key format changes incompatibly so stale records simply miss.
// v2: Result gained L2 stats and interconnect/DRAM traffic counters.
// v3: wpu.Stats replaced the three-way cycle split with the top-down
// stall taxonomy (TickCycles + eight exclusive buckets).
// v4: wpu.Stats gained the static access-class concordance counters
// (MemClassAccesses/MemClassTransactions/MemDivHintSkips/MemBoundExceeded).
// v5: records moved from a flat directory into per-shard subdirectories
// (two hex digits of the digest), so a v4 store's files are unreachable.
const storeSchema = "dwsim-store-v5"

// DefaultStoreShards is the shard count OpenStore selects: enough that
// sixteen-odd concurrent clients rarely collide on one lock, few enough
// that the directory fan-out stays readable.
const DefaultStoreShards = 16

// Store is a persistent, cross-process result cache: one JSON record per
// simulated point, named by a digest of the cache key plus a version salt
// (schema, Go version, and VCS state of the binary). Reads of records
// written under a different salt miss; writes are atomic (temp file +
// rename), so concurrent processes sharing a directory are safe.
//
// The directory is sharded by the first byte of the digest, and each
// shard carries its own lock, in-memory index, and LRU list, so many
// concurrent clients (the dwsimd server pools dozens) contend on a
// sixteenth of a lock each instead of serializing on one mutex. With a
// byte-size cap set (OpenStoreWith), each shard evicts
// least-recently-used records past its share of the cap; recency is a
// logical clock (the LRU list order), never wall time, so eviction
// decisions are reproducible for a given operation sequence.
//
// The in-memory index is a cache of the directory, not the truth: a Load
// for a key the index has not seen still goes to the filesystem, and an
// indexed file deleted by another process (its eviction) degrades to a
// miss. That keeps multiple Store instances — separate processes — safe
// on one cache dir.
//
// The salt cannot see uncommitted source edits when the binary carries no
// VCS stamp (as with `go run` or test binaries): after changing simulator
// behaviour, clear the directory or pass -nocache.
//
// Interplay with observability: a Result record holds only the final
// counters, never the event trace or timeline that produced them, so a
// disk hit cannot stand in for a traced run. Session.RunTraced therefore
// skips Load entirely and always simulates live — but it still Saves the
// fresh Result, so a traced run warms the store for later untraced use.
type Store struct {
	dir      string
	salt     string
	maxBytes int64 // whole-store LRU cap; 0 = unbounded
	shards   []storeShard

	hits, misses, saves, evictions, evictedBytes atomic.Uint64
}

// StoreOptions configures OpenStoreWith beyond the defaults.
type StoreOptions struct {
	// MaxBytes caps the store's on-disk footprint; past it, each shard
	// evicts its least-recently-used records. 0 means unbounded.
	MaxBytes int64
	// Shards is the lock/directory fan-out (0 = DefaultStoreShards; 1
	// degenerates to a single-mutex store, kept selectable for the
	// BenchmarkStoreShardedParallel comparison).
	Shards int
}

// StoreStats is a snapshot of the store's counters, aggregated across
// shards.
type StoreStats struct {
	Hits         uint64 `json:"hits"`
	Misses       uint64 `json:"misses"`
	Saves        uint64 `json:"saves"`
	Evictions    uint64 `json:"evictions"`
	EvictedBytes uint64 `json:"evicted_bytes"`
	BytesInUse   int64  `json:"bytes_in_use"`
	Records      int    `json:"records"`
	Shards       int    `json:"shards"`
	MaxBytes     int64  `json:"max_bytes"`
}

// storeShard is one lock domain: a subdirectory of the store plus the
// index and LRU order of the records inside it.
type storeShard struct {
	mu      sync.Mutex
	dir     string
	entries map[string]*list.Element // digest -> *storeEntry element
	lru     *list.List               // front = most recently used
	bytes   int64
}

// storeEntry is one indexed record file.
type storeEntry struct {
	digest string
	size   int64
}

// DefaultCacheDir returns the per-user cache location (~/.cache/dwsim on
// Linux), falling back to the system temp directory.
func DefaultCacheDir() string {
	if d, err := os.UserCacheDir(); err == nil {
		return filepath.Join(d, "dwsim")
	}
	return filepath.Join(os.TempDir(), "dwsim-cache")
}

// OpenStore opens (creating if needed) a result store rooted at dir with
// the default shard count and no size cap; dir == "" means
// DefaultCacheDir().
func OpenStore(dir string) (*Store, error) {
	return OpenStoreWith(dir, StoreOptions{})
}

// OpenStoreWith opens a result store with explicit sharding and LRU
// options. Existing records in the shard directories are indexed up
// front (in file-name order, a deterministic stand-in for their unknown
// access history) so the size cap covers records from earlier processes.
func OpenStoreWith(dir string, opt StoreOptions) (*Store, error) {
	if dir == "" {
		dir = DefaultCacheDir()
	}
	shards := opt.Shards
	if shards <= 0 {
		shards = DefaultStoreShards
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("report: open store: %w", err)
	}
	st := &Store{dir: dir, salt: versionSalt(), maxBytes: opt.MaxBytes,
		shards: make([]storeShard, shards)}
	for i := range st.shards {
		sh := &st.shards[i]
		sh.dir = dir
		sh.entries = make(map[string]*list.Element)
		sh.lru = list.New()
	}
	// Index whatever is already on disk. Shard subdirectories are named by
	// the first digest byte, so every record's shard is recoverable from
	// its path regardless of the shard count that wrote it.
	subdirs, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("report: open store: %w", err)
	}
	for _, sd := range subdirs {
		if !sd.IsDir() || len(sd.Name()) != 2 {
			continue
		}
		prefix, err := hex.DecodeString(sd.Name())
		if err != nil {
			continue
		}
		sh := &st.shards[int(prefix[0])%shards]
		files, err := os.ReadDir(filepath.Join(dir, sd.Name()))
		if err != nil {
			continue
		}
		for _, f := range files { // ReadDir sorts by name: deterministic seed order
			name := f.Name()
			if f.IsDir() || filepath.Ext(name) != ".json" {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			sh.index(name[:len(name)-len(".json")], info.Size())
		}
	}
	if st.maxBytes > 0 {
		for i := range st.shards {
			sh := &st.shards[i]
			sh.mu.Lock()
			st.evictLocked(sh)
			sh.mu.Unlock()
		}
	}
	return st, nil
}

// versionSalt digests everything known about the program version so
// records from a different build of the simulator are not reused.
func versionSalt() string {
	h := sha256.New()
	fmt.Fprintln(h, storeSchema)
	fmt.Fprintln(h, runtime.Version())
	if bi, ok := debug.ReadBuildInfo(); ok {
		fmt.Fprintln(h, bi.Main.Version)
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision", "vcs.time", "vcs.modified":
				fmt.Fprintf(h, "%s=%s\n", kv.Key, kv.Value)
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// record is the on-disk layout. Key and Salt are stored verbatim so Load
// can reject digest collisions and cross-version reuse outright.
type record struct {
	Key    string `json:"key"`
	Salt   string `json:"salt"`
	Result Result `json:"result"`
}

// digest names the record file for a key under the current salt.
func (st *Store) digest(key string) string {
	d := sha256.Sum256([]byte(st.salt + "\n" + key))
	return hex.EncodeToString(d[:16])
}

// shardOf routes a digest to its lock domain: the first digest byte mod
// the shard count, so the on-disk layout (two hex digits) is independent
// of how many locks this process runs with.
func (st *Store) shardOf(digest string) *storeShard {
	b, _ := hex.DecodeString(digest[:2])
	return &st.shards[int(b[0])%len(st.shards)]
}

// path places a record file inside its two-hex-digit shard directory.
func (st *Store) path(digest string) string {
	return filepath.Join(st.dir, digest[:2], digest+".json")
}

// index adds or refreshes one entry (shard lock must be held, except
// during single-threaded Open).
func (sh *storeShard) index(digest string, size int64) {
	if el, ok := sh.entries[digest]; ok {
		sh.bytes += size - el.Value.(*storeEntry).size
		el.Value.(*storeEntry).size = size
		sh.lru.MoveToFront(el)
		return
	}
	sh.entries[digest] = sh.lru.PushFront(&storeEntry{digest: digest, size: size})
	sh.bytes += size
}

// drop removes one entry from the index (shard lock held).
func (sh *storeShard) drop(digest string) {
	if el, ok := sh.entries[digest]; ok {
		sh.bytes -= el.Value.(*storeEntry).size
		sh.lru.Remove(el)
		delete(sh.entries, digest)
	}
}

// evictLocked deletes least-recently-used records until the shard is back
// under its share of the byte cap (shard lock held).
func (st *Store) evictLocked(sh *storeShard) {
	if st.maxBytes <= 0 {
		return
	}
	perShard := st.maxBytes / int64(len(st.shards))
	for sh.bytes > perShard && sh.lru.Len() > 0 {
		el := sh.lru.Back()
		e := el.Value.(*storeEntry)
		os.Remove(st.path(e.digest)) // best-effort; another process may have won
		sh.bytes -= e.size
		sh.lru.Remove(el)
		delete(sh.entries, e.digest)
		st.evictions.Add(1)
		st.evictedBytes.Add(uint64(e.size))
	}
}

// Load returns the stored Result for key, if a matching record exists.
// The read happens under the shard lock, so index recency and the bytes
// accounting stay consistent with the filesystem operations they mirror.
func (st *Store) Load(key string) (Result, bool) {
	digest := st.digest(key)
	sh := st.shardOf(digest)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	b, err := os.ReadFile(st.path(digest))
	if err != nil {
		sh.drop(digest) // evicted or removed by another process
		st.misses.Add(1)
		return Result{}, false
	}
	var rec record
	if json.Unmarshal(b, &rec) != nil || rec.Key != key || rec.Salt != st.salt {
		st.misses.Add(1)
		return Result{}, false
	}
	sh.index(digest, int64(len(b))) // refresh recency; adopt foreign writes
	st.hits.Add(1)
	return rec.Result, true
}

// Save persists one result and evicts past the size cap. Failures are
// reported but deliberately non-fatal to callers like Session.simulate: a
// broken cache directory must never fail a simulation that already
// succeeded.
func (st *Store) Save(key string, r Result) error {
	b, err := json.Marshal(record{Key: key, Salt: st.salt, Result: r})
	if err != nil {
		return err
	}
	digest := st.digest(key)
	sh := st.shardOf(digest)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	shardDir := filepath.Join(st.dir, digest[:2])
	if err := os.MkdirAll(shardDir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(shardDir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), st.path(digest)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	sh.index(digest, int64(len(b)))
	st.saves.Add(1)
	st.evictLocked(sh)
	return nil
}

// Stats aggregates the counters across shards. The per-shard walk takes
// each lock briefly, so the byte/record totals are a consistent-per-shard
// snapshot, not a global one — fine for monitoring.
func (st *Store) Stats() StoreStats {
	s := StoreStats{
		Hits:         st.hits.Load(),
		Misses:       st.misses.Load(),
		Saves:        st.saves.Load(),
		Evictions:    st.evictions.Load(),
		EvictedBytes: st.evictedBytes.Load(),
		Shards:       len(st.shards),
		MaxBytes:     st.maxBytes,
	}
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		s.BytesInUse += sh.bytes
		s.Records += sh.lru.Len()
		sh.mu.Unlock()
	}
	return s
}
