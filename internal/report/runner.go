package report

import "sync"

// Job names one simulation point: a benchmark under a knob setting.
type Job struct {
	Bench string
	Knobs Knobs
}

// Prefetch simulates the given jobs on a bounded worker pool (Jobs
// workers) and fills the session cache, so a subsequent serial render
// pass over the same points only reads warm results. Duplicate jobs —
// within the batch or against earlier runs — cost nothing beyond a cache
// hit, because Run deduplicates singleflight-style.
//
// On failure the feed stops early and the first error observed is
// returned; which job fails first under concurrency is unspecified, but
// any error here would also have surfaced from the serial pass.
func (s *Session) Prefetch(jobs []Job) error {
	workers := s.Jobs()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers == 0 {
		return nil
	}

	feed := make(chan Job)
	stop := make(chan struct{})
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range feed {
				if _, err := s.Run(j.Bench, j.Knobs); err != nil {
					errOnce.Do(func() {
						firstErr = err
						close(stop)
					})
					return
				}
			}
		}()
	}
	for _, j := range jobs {
		select {
		case feed <- j:
		case <-stop:
			goto done
		}
	}
done:
	close(feed)
	wg.Wait()
	return firstErr
}
