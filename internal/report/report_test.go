package report

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/wpu"
)

func TestHarmonicMean(t *testing.T) {
	if hm := HarmonicMean([]float64{1, 1, 1}); hm != 1 {
		t.Fatalf("hmean(1,1,1) = %g", hm)
	}
	if hm := HarmonicMean([]float64{1, 2}); hm < 1.33 || hm > 1.34 {
		t.Fatalf("hmean(1,2) = %g, want 4/3", hm)
	}
	if hm := HarmonicMean(nil); hm != 0 {
		t.Fatalf("hmean(nil) = %g", hm)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on non-positive value")
		}
	}()
	HarmonicMean([]float64{1, 0})
}

func TestArithMean(t *testing.T) {
	if m := arithMean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("arithMean = %g", m)
	}
	if m := arithMean(nil); m != 0 {
		t.Fatalf("arithMean(nil) = %g", m)
	}
}

func TestDefaultKnobsMatchTable3(t *testing.T) {
	k := DefaultKnobs(wpu.SchemeConv)
	if k.WPUs != 4 || k.Width != 16 || k.Warps != 4 || k.L1KB != 32 || k.L1Assoc != 8 ||
		k.L2KB != 4096 || k.L2Lat != 30 || k.WST != 16 {
		t.Fatalf("default knobs deviate from Table 3: %+v", k)
	}
}

func TestKnobKeyDistinguishesConfigs(t *testing.T) {
	a := DefaultKnobs(wpu.SchemeConv)
	b := a
	b.L2Lat = 100
	if a.key("FFT") == b.key("FFT") {
		t.Fatal("different knobs share a cache key")
	}
	if a.key("FFT") == a.key("LU") {
		t.Fatal("different benchmarks share a cache key")
	}
}

func TestTableRendering(t *testing.T) {
	var buf bytes.Buffer
	tb := newTable(&buf, "name", "value")
	tb.row("a", "1.00")
	tb.row("longer-name", "2.00")
	tb.flush()
	out := buf.String()
	if !strings.Contains(out, "longer-name") || !strings.Contains(out, "----") {
		t.Fatalf("table rendering broken:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4", len(lines))
	}
}

func TestBenchNames(t *testing.T) {
	names := BenchNames()
	if len(names) != 8 || names[0] != "FFT" || names[7] != "SVM" {
		t.Fatalf("BenchNames = %v", names)
	}
}

func TestSessionCaches(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := NewSession()
	k := DefaultKnobs(wpu.SchemeConv)
	r1, err := s.Run("Filter", k)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run("Filter", k)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles {
		t.Fatal("cached run differs")
	}
	if len(s.cache) != 1 {
		t.Fatalf("cache has %d entries, want 1", len(s.cache))
	}
}

// The shape assertions below encode the paper's qualitative claims; they
// share one session so the Conv baseline is simulated once.
func TestExhibitShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := NewSession()

	t.Run("Table1", func(t *testing.T) {
		rows, err := s.Table1(io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 8 {
			t.Fatalf("%d rows, want 8", len(rows))
		}
		for _, r := range rows {
			if r.InstPerBranch <= 0 || r.InstPerBranch > 500 {
				t.Errorf("%s: implausible inst/branch %.1f", r.Bench, r.InstPerBranch)
			}
			if r.DivergentBranchPct < 0 || r.DivergentBranchPct > 1 {
				t.Errorf("%s: divergent-branch fraction out of range", r.Bench)
			}
		}
		byName := map[string]Table1Row{}
		for _, r := range rows {
			byName[r.Bench] = r
		}
		// Filter has no data-dependent branches; Merge and Short do.
		if byName["Filter"].DivergentBranchPct > 0.01 {
			t.Errorf("Filter divergent branches = %.3f, want ~0", byName["Filter"].DivergentBranchPct)
		}
		if byName["Merge"].DivergentBranchPct < 0.02 {
			t.Errorf("Merge divergent branches = %.3f, want noticeable", byName["Merge"].DivergentBranchPct)
		}
		// Every benchmark exhibits divergent memory accesses (Table 1's
		// bottom row ranges 60-88% in the paper).
		for _, r := range rows {
			if r.DivergentAccessPct <= 0 {
				t.Errorf("%s: no divergent memory accesses", r.Bench)
			}
		}
	})

	t.Run("Figure7", func(t *testing.T) {
		out, err := s.Figure7(io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		stack, pc := out[0], out[1]
		if stack.Scheme != wpu.SchemeBranchOnlyStack || pc.Scheme != wpu.SchemeBranchOnly {
			t.Fatal("scheme order wrong")
		}
		// The paper's message: PC-based re-convergence beats stack-based
		// overall and never makes performance worse.
		if pc.HMean < stack.HMean {
			t.Errorf("PC-based h-mean %.2f < stack-based %.2f", pc.HMean, stack.HMean)
		}
		for b, sp := range pc.Per {
			if sp < 0.97 {
				t.Errorf("PC-based re-convergence harms %s (%.2f)", b, sp)
			}
		}
	})

	t.Run("Figure13", func(t *testing.T) {
		out, err := s.Figure13(io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		get := func(sc wpu.Scheme) SchemeSpeedups {
			for _, o := range out {
				if o.Scheme == sc {
					return o
				}
			}
			t.Fatalf("missing %s", sc)
			return SchemeSpeedups{}
		}
		revive := get(wpu.SchemeRevive)
		aggress := get(wpu.SchemeAggress)
		// The paper's headline: the best combination is
		// subdivision=ReviveSplit + re-convergence=BranchBypass, it beats
		// Conv overall and does not harm any benchmark.
		if revive.HMean < 1.0 {
			t.Errorf("DWS.ReviveSplit h-mean %.2f < 1", revive.HMean)
		}
		for b, sp := range revive.Per {
			if sp < 0.94 {
				t.Errorf("DWS.ReviveSplit harms %s (%.2f)", b, sp)
			}
		}
		// AggressSplit over-subdivides and must not beat ReviveSplit.
		if aggress.HMean > revive.HMean+0.005 {
			t.Errorf("AggressSplit (%.3f) beats ReviveSplit (%.3f)", aggress.HMean, revive.HMean)
		}
	})

	t.Run("Figure14", func(t *testing.T) {
		grids, err := s.Figure14(io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		if len(grids) != 8 {
			t.Fatalf("%d grids, want 8", len(grids))
		}
		for b, g := range grids {
			var total uint64
			for _, row := range g {
				if len(row) != 16 {
					t.Fatalf("%s: row width %d, want 16 lanes", b, len(row))
				}
				for _, v := range row {
					total += v
				}
			}
			if total == 0 {
				t.Errorf("%s: no per-thread misses recorded", b)
			}
		}
	})

	t.Run("Figure19", func(t *testing.T) {
		rows, err := s.Figure19(io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		var dws []float64
		for _, r := range rows {
			dws = append(dws, r.DWS)
		}
		// Energy tracks runtime; DWS must save energy on average (§6.5).
		if m := arithMean(dws); m > 1.02 {
			t.Errorf("DWS mean energy ratio %.2f, want <= ~1", m)
		}
	})
}

// Smoke tests for the sweep/sensitivity drivers (the scheme-comparison
// drivers are covered by TestExhibitShapes): each runs its full benchmark
// sweep once and checks basic sanity of the returned series.
func TestSweepDrivers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := NewSession()

	t.Run("Figure1b", func(t *testing.T) {
		pts, err := s.Figure1b(io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) != 4 {
			t.Fatalf("%d points", len(pts))
		}
		if pts[0].NormTime != 1 {
			t.Fatalf("first point not normalised: %g", pts[0].NormTime)
		}
		for _, p := range pts {
			if p.MemStallFrac <= 0 || p.MemStallFrac >= 1 {
				t.Fatalf("%s: stall fraction %g out of range", p.Label, p.MemStallFrac)
			}
		}
	})

	t.Run("Figure15", func(t *testing.T) {
		pts, err := s.Figure15(io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) != 4 {
			t.Fatalf("%d points", len(pts))
		}
		for _, p := range pts {
			// DWS must not lose overall at any associativity.
			if p.Speedup < 0.97 {
				t.Fatalf("%s: DWS/Conv = %g", p.Label, p.Speedup)
			}
		}
	})

	t.Run("Headline", func(t *testing.T) {
		var buf bytes.Buffer
		if err := s.Headline(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "speedup (h-mean)") {
			t.Fatalf("headline output: %q", buf.String())
		}
	})

	t.Run("Ablation", func(t *testing.T) {
		rows, err := s.Ablation(io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 5 {
			t.Fatalf("%d ablation rows", len(rows))
		}
		full, uncond := rows[0], rows[3]
		// Unconditional branch subdivision must be measurably worse than
		// the gated default — the ablation's reason to exist.
		if uncond.HMean >= full.HMean {
			t.Fatalf("unconditional (%.3f) not worse than gated (%.3f)", uncond.HMean, full.HMean)
		}
	})
}
