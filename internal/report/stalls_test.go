package report

import (
	"io"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/wpu"
)

// TestStallTaxonomySums is the accounting invariant's property test: on
// every benchmark under every named scheme, the eight taxonomy buckets
// sum exactly to the cycle count, and the legacy memory-stall fraction
// is exactly the two memory sub-buckets over the total.
func TestStallTaxonomySums(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := NewSession()
	var knobs []Knobs
	for _, sc := range wpu.AllSchemes {
		knobs = append(knobs, DefaultKnobs(sc))
	}
	if err := s.Prefetch(suiteJobs(knobs...)); err != nil {
		t.Fatal(err)
	}
	for _, sc := range wpu.AllSchemes {
		k := DefaultKnobs(sc)
		for _, b := range BenchNames() {
			r, err := s.Run(b, k)
			if err != nil {
				t.Fatal(err)
			}
			st := r.Stats
			if st.Cycles() == 0 {
				t.Fatalf("%s/%s: no cycles", b, sc)
			}
			if got, want := st.StallSum(), st.Cycles(); got != want {
				t.Errorf("%s/%s: taxonomy sum %d != cycles %d", b, sc, got, want)
			}
			var bucketSum uint64
			for _, v := range st.CycleBuckets() {
				bucketSum += v
			}
			if bucketSum != st.StallSum() {
				t.Errorf("%s/%s: CycleBuckets sum %d != StallSum %d", b, sc, bucketSum, st.StallSum())
			}
			want := float64(st.StallMemCoherent+st.StallMemDivergent) / float64(st.Cycles())
			if got := st.MemStallFraction(); got != want {
				t.Errorf("%s/%s: MemStallFraction %v != mem sub-bucket sum %v", b, sc, got, want)
			}
		}
	}
}

func TestStallBreakdownExhibit(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := NewSession()
	rows, err := s.StallBreakdown(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(stallSchemes) * (len(BenchNames()) + 1)
	if len(rows) != wantRows {
		t.Fatalf("%d rows, want %d", len(rows), wantRows)
	}
	// The trailing rows are the per-scheme means, in scheme order.
	means := rows[len(rows)-len(stallSchemes):]
	byScheme := map[wpu.Scheme]StallRow{}
	for _, m := range means {
		if m.Bench != "mean" {
			t.Fatalf("trailing row is %q/%s, want a mean row", m.Bench, m.Scheme)
		}
		byScheme[m.Scheme] = m
	}
	for _, m := range means {
		var sum float64
		for _, f := range m.Frac {
			sum += f
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: mean fractions sum to %v, want 1", m.Scheme, sum)
		}
	}
	// The paper's §5.5 claim: DWS.ReviveSplit trades memory-stall time
	// for busy time relative to Conv.
	conv, dws := byScheme[wpu.SchemeConv], byScheme[wpu.SchemeRevive]
	if dws.Frac[0] <= conv.Frac[0] {
		t.Errorf("DWS busy fraction %.3f not above Conv's %.3f", dws.Frac[0], conv.Frac[0])
	}
	if dws.Frac[2] >= conv.Frac[2] {
		t.Errorf("DWS divergent-stall fraction %.3f not below Conv's %.3f", dws.Frac[2], conv.Frac[2])
	}
}

func TestStallBar(t *testing.T) {
	bar := stallBar([8]float64{0.5, 0.25, 0.25, 0, 0, 0, 0, 0}, 8)
	if bar != "|####MMmm|" {
		t.Fatalf("bar = %q", bar)
	}
	// Rounding down must pad, never overflow the fixed width.
	bar = stallBar([8]float64{0.99, 0, 0, 0, 0, 0, 0, 0}, 10)
	if len(bar) != 12 || !strings.HasSuffix(bar, " |") {
		t.Fatalf("padded bar = %q", bar)
	}
}

func TestStallBreakdownCSV(t *testing.T) {
	dir := t.TempDir()
	rows := []StallRow{
		{Bench: "Filter", Scheme: wpu.SchemeConv, Cycles: 100,
			Frac: [8]float64{0.5, 0.3, 0.2, 0, 0, 0, 0, 0}},
		{Bench: "mean", Scheme: wpu.SchemeConv,
			Frac: [8]float64{0.5, 0.3, 0.2, 0, 0, 0, 0, 0}},
	}
	if err := StallBreakdownCSV(dir, rows); err != nil {
		t.Fatal(err)
	}
	got := readCSV(t, filepath.Join(dir, "stalls.csv"))
	if len(got) != 3 {
		t.Fatalf("%d CSV lines, want 3", len(got))
	}
	wantHeader := append([]string{"benchmark", "scheme", "cycles"}, wpu.CycleBucketLabels[:]...)
	if !reflect.DeepEqual(got[0], wantHeader) {
		t.Fatalf("header %q, want %q", got[0], wantHeader)
	}
	if got[1][0] != "Filter" || got[1][1] != "Conv" || got[1][2] != "100" || got[1][3] != "0.5" {
		t.Fatalf("row %q", got[1])
	}
}
