package report

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/wpu"
)

// TestCostModelExhibit pins the exhibit text byte-for-byte (the static
// side is pure analysis and the measured side is the deterministic
// simulator, so the table is reproducible) and checks the row grid:
// every (benchmark, scheme) point present, every measured cycle count
// inside the static bounds, and both rank columns forming permutations
// of 1..13 per benchmark.
func TestCostModelExhibit(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := NewSession()
	var buf bytes.Buffer
	rows, err := s.CostModel(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if want := len(BenchNames()) * len(wpu.AllSchemes); len(rows) != want {
		t.Fatalf("%d rows, want %d", len(rows), want)
	}
	statRanks := map[string]map[int]bool{}
	measRanks := map[string]map[int]bool{}
	for _, r := range rows {
		if !r.InBounds {
			t.Errorf("%s/%s: measured %d outside static bound [%d,%d]",
				r.Bench, r.Scheme, r.Cycles, r.TickLo, r.TickHi)
		}
		for name, m := range map[string]map[string]map[int]bool{"static": statRanks, "measured": measRanks} {
			rank := r.StatRank
			if name == "measured" {
				rank = r.MeasRank
			}
			if m[r.Bench] == nil {
				m[r.Bench] = map[int]bool{}
			}
			if rank < 1 || rank > len(wpu.AllSchemes) || m[r.Bench][rank] {
				t.Errorf("%s/%s: bad or duplicate %s rank %d", r.Bench, r.Scheme, name, rank)
			}
			m[r.Bench][rank] = true
		}
	}

	path := filepath.Join("testdata", "costmodel_exhibit.golden")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if buf.String() != string(want) {
		t.Errorf("exhibit drifted from %s (run with -update to regenerate)\ngot:\n%s", path, buf.String())
	}
}

func TestCostModelCSV(t *testing.T) {
	dir := t.TempDir()
	rows := []CostModelRow{
		{Bench: "Filter", Scheme: wpu.SchemeConv, Cycles: 100,
			TickLo: 10, TickHi: 1000, InBounds: true, Est: 90.5, StatRank: 2, MeasRank: 1},
	}
	if err := CostModelCSV(dir, rows); err != nil {
		t.Fatal(err)
	}
	got := readCSV(t, filepath.Join(dir, "costmodel.csv"))
	if len(got) != 2 {
		t.Fatalf("%d CSV lines, want 2", len(got))
	}
	if got[1][0] != "Filter" || got[1][1] != "Conv" || got[1][2] != "100" ||
		got[1][3] != "10" || got[1][4] != "1000" || got[1][5] != "1" {
		t.Fatalf("row %q", got[1])
	}
	if _, err := strconv.ParseFloat(got[1][6], 64); err != nil {
		t.Fatalf("static_est %q: %v", got[1][6], err)
	}
}
