package report

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/wpu"
)

// TestKnobKeyCoversAllFields mutates every Knobs field through reflection
// and requires the cache key to change: adding a knob that the key does
// not distinguish fails here. A field of a kind this test cannot mutate
// also fails, forcing the test (and key) to be taught about it.
func TestKnobKeyCoversAllFields(t *testing.T) {
	base := DefaultKnobs(wpu.SchemeConv)
	rt := reflect.TypeOf(base)
	for i := 0; i < rt.NumField(); i++ {
		mutated := base
		f := reflect.ValueOf(&mutated).Elem().Field(i)
		switch f.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			f.SetInt(f.Int() + 1)
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			f.SetUint(f.Uint() + 1)
		case reflect.Bool:
			f.SetBool(!f.Bool())
		case reflect.String:
			f.SetString(f.String() + "x")
		case reflect.Float32, reflect.Float64:
			f.SetFloat(f.Float() + 1)
		default:
			t.Fatalf("Knobs.%s has kind %s: teach TestKnobKeyCoversAllFields to mutate it "+
				"and make sure Knobs.key renders it deterministically", rt.Field(i).Name, f.Kind())
		}
		if mutated.key("FFT") == base.key("FFT") {
			t.Errorf("mutating Knobs.%s does not change the cache key", rt.Field(i).Name)
		}
	}
}

// TestConcurrentSessionSingleflight hammers one Session from many
// goroutines (run under -race in CI): all callers of one point must share
// a single simulation, and results must be identical.
func TestConcurrentSessionSingleflight(t *testing.T) {
	s := NewSession()
	knobs := []Knobs{
		DefaultKnobs(wpu.SchemeConv),
		DefaultKnobs(wpu.SchemeRevive),
	}
	const callersPerKey = 8
	results := make([]Result, len(knobs)*callersPerKey)
	var wg sync.WaitGroup
	for ki, k := range knobs {
		for c := 0; c < callersPerKey; c++ {
			wg.Add(1)
			go func(slot int, k Knobs) {
				defer wg.Done()
				r, err := s.Run("Filter", k)
				if err != nil {
					t.Error(err)
					return
				}
				results[slot] = r
			}(ki*callersPerKey+c, k)
		}
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for ki := range knobs {
		for c := 1; c < callersPerKey; c++ {
			a, b := results[ki*callersPerKey], results[ki*callersPerKey+c]
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("concurrent callers of one point got different results: %+v vs %+v", a, b)
			}
		}
	}
	st := s.Stats()
	if st.Misses != uint64(len(knobs)) {
		t.Errorf("ran %d simulations for %d distinct points (singleflight broken?)", st.Misses, len(knobs))
	}
	if want := uint64(len(knobs) * (callersPerKey - 1)); st.MemHits != want {
		t.Errorf("mem hits = %d, want %d", st.MemHits, want)
	}
}

func TestPrefetchPropagatesError(t *testing.T) {
	s := NewSession(WithJobs(4))
	jobs := []Job{{Bench: "NoSuchBench", Knobs: DefaultKnobs(wpu.SchemeConv)}}
	if err := s.Prefetch(jobs); err == nil {
		t.Fatal("Prefetch ignored an unknown benchmark")
	}
	if err := s.Prefetch(nil); err != nil {
		t.Fatalf("empty Prefetch: %v", err)
	}
}

// TestStoreRoundTrip unit-tests the on-disk store without running any
// simulation: save/load fidelity, key checking, and salt isolation.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := Result{Bench: "FFT", Scheme: wpu.SchemeRevive, Cycles: 123456789}
	r.Stats.Issued = 42
	r.Stats.ThreadMisses = [][]uint64{{1, 2}, {3, 4}}
	r.Energy.DRAM = 0.125
	key := DefaultKnobs(wpu.SchemeRevive).key("FFT")
	if _, ok := st.Load(key); ok {
		t.Fatal("empty store claims a hit")
	}
	if err := st.Save(key, r); err != nil {
		t.Fatal(err)
	}
	got, ok := st.Load(key)
	if !ok {
		t.Fatal("saved record not found")
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("round trip mutated the result:\n got %+v\nwant %+v", got, r)
	}
	if _, ok := st.Load(key + "x"); ok {
		t.Fatal("different key hit the same record")
	}
	// A store opened under a different program version must not see it.
	other, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	other.salt = "different-version"
	if _, ok := other.Load(key); ok {
		t.Fatal("record reused across version salts")
	}
}

// renderTable1 runs Table1 on a fresh session and returns the rendered
// text and structured rows.
func renderTable1(t *testing.T, opts ...Option) (string, []Table1Row, CacheStats) {
	t.Helper()
	s := NewSession(opts...)
	var buf bytes.Buffer
	rows, err := s.Table1(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return buf.String(), rows, s.Stats()
}

// TestParallelDeterminism is the -j determinism guarantee: one exhibit
// rendered at -j 1 and -j 8 must produce identical bytes and identical
// structured results.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	text1, rows1, st1 := renderTable1(t, WithJobs(1))
	text8, rows8, _ := renderTable1(t, WithJobs(8))
	if text1 != text8 {
		t.Errorf("rendered text differs between -j 1 and -j 8:\n--- j1 ---\n%s--- j8 ---\n%s", text1, text8)
	}
	if !reflect.DeepEqual(rows1, rows8) {
		t.Errorf("structured rows differ between -j 1 and -j 8")
	}
	if st1.Misses == 0 || strings.TrimSpace(text1) == "" {
		t.Fatalf("degenerate exhibit run (misses=%d)", st1.Misses)
	}
}

// TestDiskStoreWarmRun re-renders an exhibit against a warm on-disk
// store: the second session must simulate nothing and still produce
// byte-identical output.
func TestDiskStoreWarmRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	textCold, rowsCold, cold := renderTable1(t, WithJobs(4), WithStore(st))
	if cold.Misses == 0 || cold.DiskHits != 0 {
		t.Fatalf("cold run: %+v", cold)
	}
	textWarm, rowsWarm, warm := renderTable1(t, WithJobs(4), WithStore(st))
	if warm.Misses != 0 {
		t.Errorf("warm run re-simulated %d points", warm.Misses)
	}
	if warm.DiskHits != cold.Misses {
		t.Errorf("warm run loaded %d records, want %d", warm.DiskHits, cold.Misses)
	}
	if textCold != textWarm {
		t.Errorf("rendered text differs across the warm store:\n--- cold ---\n%s--- warm ---\n%s", textCold, textWarm)
	}
	if !reflect.DeepEqual(rowsCold, rowsWarm) {
		t.Errorf("structured rows differ across the warm store")
	}
}

// TestPrefetchOnlyWarmsCache checks the fan-out/render split end to end:
// after Prefetch, rendering must be pure cache reads.
func TestPrefetchOnlyWarmsCache(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := NewSession(WithJobs(4))
	base := DefaultKnobs(wpu.SchemeConv)
	if err := s.Prefetch(suiteJobs(base)); err != nil {
		t.Fatal(err)
	}
	sims := s.Stats().Misses
	if _, err := s.Table1(new(bytes.Buffer)); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Misses; got != sims {
		t.Errorf("rendering after Prefetch ran %d extra simulations", got-sims)
	}
}

// Example documenting the key format is deliberately absent: the key is
// an internal detail. This sanity check just pins that it stays
// human-greppable (bench prefix) for store debugging.
func TestKeyHasBenchPrefix(t *testing.T) {
	k := DefaultKnobs(wpu.SchemeConv)
	if !strings.HasPrefix(k.key("FFT"), "FFT|") {
		t.Fatalf("key lost its bench prefix: %s", k.key("FFT"))
	}
	if fmt.Sprintf("%v", k.key("FFT")) == fmt.Sprintf("%v", k.key("LU")) {
		t.Fatal("bench does not distinguish keys")
	}
}
