package report

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/wpu"
)

// fakeResult builds a distinguishable Result without running a simulation.
func fakeResult(i int) Result {
	r := Result{Bench: fmt.Sprintf("bench-%d", i), Scheme: wpu.SchemeConv, Cycles: uint64(1000 + i)}
	r.Stats.Issued = uint64(i)
	return r
}

// TestStoreShardedParallel hammers one store from many goroutines across
// many keys (run under -race in CI): interleaved saves and loads must
// never corrupt a record or miscount, and every key written must read
// back its own result.
func TestStoreShardedParallel(t *testing.T) {
	st, err := OpenStoreWith(t.TempDir(), StoreOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const keysPerWorker = 24
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keysPerWorker; i++ {
				id := w*keysPerWorker + i
				key := fmt.Sprintf("key-%d", id)
				if err := st.Save(key, fakeResult(id)); err != nil {
					t.Errorf("save %s: %v", key, err)
					return
				}
				// Re-read own key plus a neighbour's (may or may not exist yet).
				got, ok := st.Load(key)
				if !ok {
					t.Errorf("load %s after save: miss", key)
					return
				}
				if got.Cycles != uint64(1000+id) {
					t.Errorf("load %s: cycles %d, want %d", key, got.Cycles, 1000+id)
					return
				}
				if r, ok := st.Load(fmt.Sprintf("key-%d", (id+1)%(workers*keysPerWorker))); ok && r.Bench == "" {
					t.Errorf("neighbour load returned a corrupt record")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	stats := st.Stats()
	if stats.Saves != workers*keysPerWorker {
		t.Errorf("saves = %d, want %d", stats.Saves, workers*keysPerWorker)
	}
	if stats.Hits < workers*keysPerWorker {
		t.Errorf("hits = %d, want >= %d (every own-key re-read must hit)", stats.Hits, workers*keysPerWorker)
	}
	if stats.Records != workers*keysPerWorker {
		t.Errorf("records = %d, want %d", stats.Records, workers*keysPerWorker)
	}
}

// TestStoreLRUEvictionDeterminism pins the eviction order: with a byte
// cap and a known access sequence on a single shard, exactly the
// least-recently-used records disappear, and which ones is reproducible.
func TestStoreLRUEvictionDeterminism(t *testing.T) {
	dir := t.TempDir()
	// One shard so every key shares one LRU list and the arithmetic is
	// exact; record sizes are equal (same struct shape, same field widths).
	st, err := OpenStoreWith(dir, StoreOptions{Shards: 1, MaxBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Discover the record size with a probe, then re-open with a cap that
	// holds exactly three records.
	if err := st.Save("probe", fakeResult(0)); err != nil {
		t.Fatal(err)
	}
	recSize := st.Stats().EvictedBytes // the probe itself was evicted (cap 1 byte)
	if recSize == 0 {
		t.Fatal("probe record not evicted under a 1-byte cap")
	}
	st, err = OpenStoreWith(dir, StoreOptions{Shards: 1, MaxBytes: int64(3 * recSize)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Save(fmt.Sprintf("k%d", i), fakeResult(0)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch k0 so k1 becomes the LRU victim of the next save.
	if _, ok := st.Load("k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	if err := st.Save("k3", fakeResult(0)); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"k0": true, "k1": false, "k2": true, "k3": true}
	for _, key := range []string{"k0", "k1", "k2", "k3"} {
		_, ok := st.Load(key)
		if ok != want[key] {
			t.Errorf("after eviction, %s present=%v, want %v", key, ok, want[key])
		}
	}
	if ev := st.Stats().Evictions; ev != 1 {
		t.Errorf("evictions = %d, want exactly 1 (k1)", ev)
	}
}

// TestStoreTwoInstancesOneDir runs two Store instances — stand-ins for
// two server processes — against one cache directory: writes from either
// are readable by the other (atomic rename means never a torn record),
// and an eviction by one degrades to a clean miss in the other.
func TestStoreTwoInstancesOneDir(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenStoreWith(dir, StoreOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenStoreWith(dir, StoreOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	key := DefaultKnobs(wpu.SchemeConv).key("FFT")
	r := fakeResult(7)
	if err := a.Save(key, r); err != nil {
		t.Fatal(err)
	}
	got, ok := b.Load(key) // b never indexed this key; must fall through to disk
	if !ok {
		t.Fatal("instance b cannot see instance a's record")
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("cross-instance read mutated the result:\n got %+v\nwant %+v", got, r)
	}
	// Concurrent same-key writers: last rename wins, both reads are intact.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := a
			if i%2 == 1 {
				st = b
			}
			if err := st.Save(key, r); err != nil {
				t.Errorf("concurrent save: %v", err)
			}
			if got, ok := st.Load(key); !ok || got.Bench != r.Bench {
				t.Errorf("concurrent load: ok=%v got=%+v", ok, got)
			}
		}(i)
	}
	wg.Wait()
	// Simulate a's eviction of the record: b's index still knows it, but
	// Load must degrade to a miss, not an error or a stale hit.
	if _, ok := b.Load(key); !ok {
		t.Fatal("warm-up load for b failed")
	}
	removeStoreRecord(t, dir, key, a)
	if _, ok := b.Load(key); ok {
		t.Fatal("b returned a record another instance evicted")
	}
}

// removeStoreRecord deletes the record file for key as an eviction by
// another process would.
func removeStoreRecord(t *testing.T, dir, key string, st *Store) {
	t.Helper()
	digest := st.digest(key)
	if err := os.Remove(filepath.Join(dir, digest[:2], digest+".json")); err != nil {
		t.Fatal(err)
	}
}

// TestStoreReindexesExistingFiles proves a freshly opened store sees (and
// caps) records a previous process left behind.
func TestStoreReindexesExistingFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStoreWith(dir, StoreOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := st.Save(fmt.Sprintf("k%d", i), fakeResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	bytesInUse := st.Stats().BytesInUse
	re, err := OpenStoreWith(dir, StoreOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	rs := re.Stats()
	if rs.Records != 6 || rs.BytesInUse != bytesInUse {
		t.Fatalf("reopened store indexed %d records / %d bytes, want 6 / %d",
			rs.Records, rs.BytesInUse, bytesInUse)
	}
	// Re-open with a cap below the existing footprint: Open itself evicts.
	capped, err := OpenStoreWith(dir, StoreOptions{Shards: 2, MaxBytes: bytesInUse / 2})
	if err != nil {
		t.Fatal(err)
	}
	cs := capped.Stats()
	if cs.Evictions == 0 || cs.BytesInUse > bytesInUse/2 {
		t.Fatalf("open under a cap did not evict: %+v", cs)
	}
}

// BenchmarkStoreShardedParallel is the dwsbench gate's store benchmark:
// a mixed load/save workload over many keys from 8 concurrent clients,
// once on the sharded store and once on the shards=1 single-mutex
// degenerate. The sharded variant must stay measurably faster: with one
// lock every file operation serializes behind a contended
// (starvation-mode) mutex — and on a loaded host a preempted lock holder
// convoys every other client — while sixteen shards make most
// acquisitions uncontended. GOMAXPROCS is raised for the measurement so
// the contention is real even on the 1-core dev box.
func BenchmarkStoreShardedParallel(b *testing.B) {
	const nkeys = 64
	run := func(b *testing.B, shards int) {
		st, err := OpenStoreWith(b.TempDir(), StoreOptions{Shards: shards})
		if err != nil {
			b.Fatal(err)
		}
		keys := make([]string, nkeys)
		for i := range keys {
			keys[i] = fmt.Sprintf("bench-key-%d", i)
			if err := st.Save(keys[i], fakeResult(i)); err != nil {
				b.Fatal(err)
			}
		}
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
		b.SetParallelism(1) // 8 Ps × 1 = 8 concurrent clients
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				key := keys[i%nkeys]
				if i%8 == 0 {
					if err := st.Save(key, fakeResult(i)); err != nil {
						b.Error(err)
						return
					}
				} else if _, ok := st.Load(key); !ok {
					b.Error("benchmark load missed a pre-seeded key")
					return
				}
				i++
			}
		})
	}
	b.Run("sharded", func(b *testing.B) { run(b, DefaultStoreShards) })
	b.Run("single", func(b *testing.B) { run(b, 1) })
}
