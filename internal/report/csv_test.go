package report

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/wpu"
)

func readCSV(t *testing.T, path string) [][]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestTable1CSV(t *testing.T) {
	dir := t.TempDir()
	rows := []Table1Row{
		{Bench: "FFT", InstPerBranch: 17.1, DivergentBranchPct: 0.023,
			InstPerMiss: 17.2, InstPerDivMiss: 103.8, DivergentAccessPct: 0.166},
	}
	if err := Table1CSV(dir, rows); err != nil {
		t.Fatal(err)
	}
	got := readCSV(t, filepath.Join(dir, "table1.csv"))
	if len(got) != 2 || got[1][0] != "FFT" {
		t.Fatalf("csv = %v", got)
	}
	if got[0][1] != "inst_per_branch" {
		t.Fatalf("header = %v", got[0])
	}
}

func TestSweepAndSensitivityCSV(t *testing.T) {
	dir := t.TempDir()
	if err := SweepCSV(dir, "s.csv", []SweepPoint{{Label: "w16", NormTime: 0.1, BusyFrac: 0.5, MemStallFrac: 0.5}}); err != nil {
		t.Fatal(err)
	}
	got := readCSV(t, filepath.Join(dir, "s.csv"))
	if len(got) != 2 || got[1][0] != "w16" {
		t.Fatalf("sweep csv = %v", got)
	}
	if err := SensitivityCSV(dir, "p.csv", []SensitivityPoint{{Label: "30", Conv: 1, DWS: 1.06, Speedup: 1.06}}); err != nil {
		t.Fatal(err)
	}
	got = readCSV(t, filepath.Join(dir, "p.csv"))
	if len(got) != 2 || got[1][3] != "1.06" {
		t.Fatalf("sensitivity csv = %v", got)
	}
}

func TestSchemeCSVBenchColumns(t *testing.T) {
	dir := t.TempDir()
	per := map[string]float64{}
	for _, b := range BenchNames() {
		per[b] = 1.5
	}
	out := []SchemeSpeedups{{Scheme: wpu.SchemeRevive, Per: per, HMean: 1.5}}
	if err := SchemeCSV(dir, "f13.csv", out); err != nil {
		t.Fatal(err)
	}
	got := readCSV(t, filepath.Join(dir, "f13.csv"))
	// header + 8 benchmarks + h-mean
	if len(got) != 10 {
		t.Fatalf("rows = %d", len(got))
	}
	if got[0][1] != string(wpu.SchemeRevive) {
		t.Fatalf("header = %v", got[0])
	}
	if got[9][0] != "h-mean" || got[9][1] != "1.5" {
		t.Fatalf("h-mean row = %v", got[9])
	}
}

func TestFigure14CSVShape(t *testing.T) {
	dir := t.TempDir()
	grids := map[string][][]uint64{}
	for _, b := range BenchNames() {
		grids[b] = [][]uint64{make([]uint64, 16), make([]uint64, 16)}
		grids[b][0][3] = 7
	}
	if err := Figure14CSV(dir, grids); err != nil {
		t.Fatal(err)
	}
	got := readCSV(t, filepath.Join(dir, "figure14.csv"))
	if len(got) != 1+2*8 {
		t.Fatalf("rows = %d", len(got))
	}
	if got[1][2+3] != "7" {
		t.Fatalf("grid cell lost: %v", got[1])
	}
}

func TestEnergyAndAblationCSV(t *testing.T) {
	dir := t.TempDir()
	if err := EnergyCSV(dir, []EnergyRow{{Bench: "LU", Conv: 1, DWS: 0.96, SlipBB: 1.0}}); err != nil {
		t.Fatal(err)
	}
	got := readCSV(t, filepath.Join(dir, "figure19.csv"))
	if len(got) != 2 || got[1][2] != "0.96" {
		t.Fatalf("energy csv = %v", got)
	}
	per := map[string]float64{}
	for _, b := range BenchNames() {
		per[b] = 1.1
	}
	if err := AblationCSV(dir, []AblationRow{{Name: "full", HMean: 1.06, Per: per}}); err != nil {
		t.Fatal(err)
	}
	got = readCSV(t, filepath.Join(dir, "ablation.csv"))
	if len(got) != 2 || got[1][0] != "full" {
		t.Fatalf("ablation csv = %v", got)
	}
}

func TestFigure18CSV(t *testing.T) {
	dir := t.TempDir()
	pts := []Figure18Point{{Setup: "8-way 32KB", Config: "16x4", Scheme: wpu.SchemeRevive, Speedup: 1.06}}
	if err := Figure18CSV(dir, pts); err != nil {
		t.Fatal(err)
	}
	got := readCSV(t, filepath.Join(dir, "figure18.csv"))
	if len(got) != 2 || got[1][3] != "1.06" {
		t.Fatalf("fig18 csv = %v", got)
	}
}

func TestWriteCSVCreatesDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "out")
	if err := writeCSV(dir, "x.csv", []string{"a"}, [][]string{{"1"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "x.csv")); err != nil {
		t.Fatal(err)
	}
}
