package report

import (
	"encoding/json"
	"io"

	"repro/internal/energy"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/wpu"
)

// Machine-readable run metrics: dwsim -stats writes a StatsDoc (one RunDoc
// per benchmark run) so downstream tooling can consume every counter the
// simulator keeps without scraping the text tables. The documents are
// plain JSON of exported structs; Go's encoder emits struct fields in
// declaration order, so the bytes are deterministic for identical runs
// once the volatile WallSeconds field is excluded.

// Schema identifiers; bump on incompatible layout changes so consumers
// can dispatch (mirrors storeSchema for the on-disk result cache).
// v2: wpu.Stats carries the top-down stall taxonomy instead of the old
// three-way cycle split, documents carry an explicit SchemaVersion, and
// traced runs may attach the latency histograms.
// v3: wpu.Stats gained the static access-class concordance counters
// (MemClassAccesses/MemClassTransactions/MemDivHintSkips/MemBoundExceeded).
const (
	// SchemaVersion is the integer revision of the run-metrics layout,
	// carried as its own field in every document so consumers can dispatch
	// numerically without parsing the schema strings.
	SchemaVersion  = 3
	RunDocSchema   = "dwsim-run-v3"
	StatsDocSchema = "dwsim-stats-v3"
)

// RunDerived holds the headline ratios the paper quotes (§5.5), precomputed
// so consumers need no knowledge of the raw counter semantics.
type RunDerived struct {
	MeanSIMDWidth float64 `json:"mean_simd_width"`
	MemStallFrac  float64 `json:"mem_stall_fraction"`
	L1MissRate    float64 `json:"l1_miss_rate"`
}

// RunEnergy packages the §3.3 energy model output: the per-component
// breakdown in nanojoules plus the derived millijoule totals.
type RunEnergy struct {
	BreakdownNJ energy.Breakdown `json:"breakdown_nj"`
	TotalMJ     float64          `json:"total_mj"`
	DynamicMJ   float64          `json:"dynamic_mj"`
	LeakageMJ   float64          `json:"leakage_mj"`
}

// RunDoc is the machine-readable record of one benchmark × configuration
// run: the full knob vector, provenance, and every statistic the machine
// collected.
type RunDoc struct {
	Schema        string `json:"schema"`
	SchemaVersion int    `json:"schema_version"`
	Bench         string `json:"bench"`
	Scheme        string `json:"scheme"`
	Knobs         Knobs  `json:"knobs"`
	// Source records how the result was obtained: "simulated" (fresh run),
	// "disk-store" (loaded from the cross-process cache), or "traced-live"
	// (forced live because an observability sink was attached).
	Source string `json:"source"`
	// WallSeconds is host wall-clock time for this session's handling of
	// the point (≈0 for cache hits). It is the one volatile field:
	// byte-determinism tests zero it before comparing documents.
	WallSeconds    float64     `json:"wall_seconds"`
	Cycles         uint64      `json:"cycles"`
	Derived        RunDerived  `json:"derived"`
	WPU            wpu.Stats   `json:"wpu"`
	L1             mem.L1Stats `json:"l1"`
	L2             mem.L2Stats `json:"l2"`
	XbarTransfers  uint64      `json:"xbar_transfers"`
	DRAMAccesses   uint64      `json:"dram_accesses"`
	DRAMWritebacks uint64      `json:"dram_writebacks"`
	Energy         RunEnergy   `json:"energy"`
	// Hists carries the latency histograms when the run was traced with an
	// observability sink; untraced runs omit the field entirely.
	Hists *obs.HistSet `json:"hists,omitempty"`
}

// NewRunDoc assembles the document for one completed run.
func NewRunDoc(r Result, k Knobs, source string, wallSeconds float64) RunDoc {
	var l1Rate float64
	if r.L1.Accesses > 0 {
		l1Rate = float64(r.L1.Misses) / float64(r.L1.Accesses)
	}
	return RunDoc{
		Schema:        RunDocSchema,
		SchemaVersion: SchemaVersion,
		Bench:         r.Bench,
		Scheme:        string(r.Scheme),
		Knobs:         k,
		Source:        source,
		WallSeconds:   wallSeconds,
		Cycles:        r.Cycles,
		Derived: RunDerived{
			MeanSIMDWidth: r.Stats.MeanSIMDWidth(),
			MemStallFrac:  r.Stats.MemStallFraction(),
			L1MissRate:    l1Rate,
		},
		WPU:            r.Stats,
		L1:             r.L1,
		L2:             r.L2,
		XbarTransfers:  r.XbarTransfers,
		DRAMAccesses:   r.DRAMAccesses,
		DRAMWritebacks: r.DRAMWritebacks,
		Energy: RunEnergy{
			BreakdownNJ: r.Energy,
			TotalMJ:     r.Energy.TotalmJ(),
			DynamicMJ:   r.Energy.DynamicmJ(),
			LeakageMJ:   r.Energy.LeakagemJ(),
		},
	}
}

// StatsDoc is the top-level document dwsim -stats writes: the run list in
// command-line benchmark order plus the session's cache counters.
type StatsDoc struct {
	Schema        string     `json:"schema"`
	SchemaVersion int        `json:"schema_version"`
	Runs          []RunDoc   `json:"runs"`
	Cache         CacheStats `json:"session_cache"`
}

// WriteStatsDoc renders the document as indented JSON.
func WriteStatsDoc(w io.Writer, runs []RunDoc, cache CacheStats) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(StatsDoc{Schema: StatsDocSchema, SchemaVersion: SchemaVersion,
		Runs: runs, Cache: cache})
}
