package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/obs"
	"repro/internal/wpu"
)

// CSV export: every exhibit's structured data can be written as a CSV file
// for plotting (cmd/dwsreport -csv <dir>). One file per exhibit, one row
// per data point, benchmark columns where applicable.

// csvTo streams one header + rows table to any writer; writeCSV wraps it
// for the one-file-per-exhibit layout.
func csvTo(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	if err := cw.WriteAll(rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func writeCSV(dir, name string, header []string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return csvTo(f, header, rows)
}

func fs(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// TimelineCSV renders the interval timeline samples collected in tr as a
// CSV: one row per (sample cycle, WPU), with the interval's cycle
// accounting expressed as fractions so rows are comparable across
// interval lengths. Rows appear in collection order, which is
// deterministic (ascending cycle, then WPU id).
func TimelineCSV(w io.Writer, tr *obs.Trace) error {
	header := []string{
		"cycle", "wpu", "busy_frac", "memstall_frac", "otherstall_frac",
		"mean_simd_width", "wst_occupancy", "resident_splits",
		"slot_waiters", "l1_mshr", "l2_mshr",
	}
	frac := func(part, whole uint64) float64 {
		if whole == 0 {
			return 0
		}
		return float64(part) / float64(whole)
	}
	var rows [][]string
	for _, s := range tr.Samples {
		total := s.Busy + s.StallMem + s.StallOther
		rows = append(rows, []string{
			strconv.FormatUint(s.Cycle, 10),
			strconv.Itoa(s.WPU),
			fs(frac(s.Busy, total)),
			fs(frac(s.StallMem, total)),
			fs(frac(s.StallOther, total)),
			fs(s.MeanWidth()),
			strconv.Itoa(s.WSTOcc),
			strconv.Itoa(s.Resident),
			strconv.Itoa(s.SlotWaiters),
			strconv.Itoa(s.L1MSHR),
			strconv.Itoa(s.L2MSHR),
		})
	}
	return csvTo(w, header, rows)
}

// Table1CSV writes the divergence characterisation.
func Table1CSV(dir string, rows []Table1Row) error {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Bench, fs(r.InstPerBranch), fs(r.DivergentBranchPct),
			fs(r.InstPerMiss), fs(r.InstPerDivMiss), fs(r.DivergentAccessPct),
		})
	}
	return writeCSV(dir, "table1.csv",
		[]string{"benchmark", "inst_per_branch", "divergent_branch_frac",
			"inst_per_miss", "inst_per_div_miss", "divergent_access_frac"}, out)
}

// SweepCSV writes a Figure 1-style time-breakdown sweep.
func SweepCSV(dir, name string, pts []SweepPoint) error {
	var out [][]string
	for _, p := range pts {
		out = append(out, []string{p.Label, fs(p.NormTime), fs(p.BusyFrac), fs(p.MemStallFrac)})
	}
	return writeCSV(dir, name,
		[]string{"config", "norm_time", "busy_frac", "memstall_frac"}, out)
}

// SchemeCSV writes a Figure 7/11/13-style scheme comparison.
func SchemeCSV(dir, name string, out []SchemeSpeedups) error {
	header := []string{"benchmark"}
	for _, o := range out {
		header = append(header, string(o.Scheme))
	}
	var rows [][]string
	for _, b := range BenchNames() {
		row := []string{b}
		for _, o := range out {
			row = append(row, fs(o.Per[b]))
		}
		rows = append(rows, row)
	}
	hrow := []string{"h-mean"}
	for _, o := range out {
		hrow = append(hrow, fs(o.HMean))
	}
	rows = append(rows, hrow)
	return writeCSV(dir, name, header, rows)
}

// SensitivityCSV writes a Figure 15/16/17/20/21-style sweep.
func SensitivityCSV(dir, name string, pts []SensitivityPoint) error {
	var rows [][]string
	for _, p := range pts {
		rows = append(rows, []string{p.Label, fs(p.Conv), fs(p.DWS), fs(p.Speedup)})
	}
	return writeCSV(dir, name,
		[]string{"config", "conv", "dws", "dws_over_conv"}, rows)
}

// Figure18CSV writes the width×warps grid.
func Figure18CSV(dir string, pts []Figure18Point) error {
	var rows [][]string
	for _, p := range pts {
		rows = append(rows, []string{p.Setup, p.Config, string(p.Scheme), fs(p.Speedup)})
	}
	return writeCSV(dir, "figure18.csv",
		[]string{"cache_setup", "config", "scheme", "speedup"}, rows)
}

// EnergyCSV writes Figure 19's normalised energies.
func EnergyCSV(dir string, rows []EnergyRow) error {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Bench, fs(r.Conv), fs(r.DWS), fs(r.SlipBB)})
	}
	return writeCSV(dir, "figure19.csv",
		[]string{"benchmark", "conv", "dws", "slip_bb"}, out)
}

// Figure14CSV writes the per-thread miss grids (one row per warp).
func Figure14CSV(dir string, grids map[string][][]uint64) error {
	var rows [][]string
	for _, b := range BenchNames() {
		for wi, row := range grids[b] {
			cells := []string{b, strconv.Itoa(wi)}
			for _, v := range row {
				cells = append(cells, strconv.FormatUint(v, 10))
			}
			rows = append(rows, cells)
		}
	}
	header := []string{"benchmark", "warp"}
	for l := 0; l < 16; l++ {
		header = append(header, fmt.Sprintf("lane%d", l))
	}
	return writeCSV(dir, "figure14.csv", header, rows)
}

// StallBreakdownCSV writes the stall-breakdown exhibit: one row per
// (benchmark, scheme) point plus the per-scheme means, bucket columns in
// wpu.CycleBucketLabels order.
func StallBreakdownCSV(dir string, rows []StallRow) error {
	header := append([]string{"benchmark", "scheme", "cycles"}, wpu.CycleBucketLabels[:]...)
	var out [][]string
	for _, r := range rows {
		cells := []string{r.Bench, string(r.Scheme), strconv.FormatUint(r.Cycles, 10)}
		for _, f := range r.Frac {
			cells = append(cells, fs(f))
		}
		out = append(out, cells)
	}
	return writeCSV(dir, "stalls.csv", header, out)
}

// AblationCSV writes the ablation study.
func AblationCSV(dir string, rows []AblationRow) error {
	header := append([]string{"variant", "h_mean"}, BenchNames()...)
	var out [][]string
	for _, r := range rows {
		cells := []string{r.Name, fs(r.HMean)}
		for _, b := range BenchNames() {
			cells = append(cells, fs(r.Per[b]))
		}
		out = append(out, cells)
	}
	return writeCSV(dir, "ablation.csv", header, out)
}
