package report

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// CSV export: every exhibit's structured data can be written as a CSV file
// for plotting (cmd/dwsreport -csv <dir>). One file per exhibit, one row
// per data point, benchmark columns where applicable.

func writeCSV(dir, name string, header []string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func fs(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// Table1CSV writes the divergence characterisation.
func Table1CSV(dir string, rows []Table1Row) error {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Bench, fs(r.InstPerBranch), fs(r.DivergentBranchPct),
			fs(r.InstPerMiss), fs(r.InstPerDivMiss), fs(r.DivergentAccessPct),
		})
	}
	return writeCSV(dir, "table1.csv",
		[]string{"benchmark", "inst_per_branch", "divergent_branch_frac",
			"inst_per_miss", "inst_per_div_miss", "divergent_access_frac"}, out)
}

// SweepCSV writes a Figure 1-style time-breakdown sweep.
func SweepCSV(dir, name string, pts []SweepPoint) error {
	var out [][]string
	for _, p := range pts {
		out = append(out, []string{p.Label, fs(p.NormTime), fs(p.BusyFrac), fs(p.MemStallFrac)})
	}
	return writeCSV(dir, name,
		[]string{"config", "norm_time", "busy_frac", "memstall_frac"}, out)
}

// SchemeCSV writes a Figure 7/11/13-style scheme comparison.
func SchemeCSV(dir, name string, out []SchemeSpeedups) error {
	header := []string{"benchmark"}
	for _, o := range out {
		header = append(header, string(o.Scheme))
	}
	var rows [][]string
	for _, b := range BenchNames() {
		row := []string{b}
		for _, o := range out {
			row = append(row, fs(o.Per[b]))
		}
		rows = append(rows, row)
	}
	hrow := []string{"h-mean"}
	for _, o := range out {
		hrow = append(hrow, fs(o.HMean))
	}
	rows = append(rows, hrow)
	return writeCSV(dir, name, header, rows)
}

// SensitivityCSV writes a Figure 15/16/17/20/21-style sweep.
func SensitivityCSV(dir, name string, pts []SensitivityPoint) error {
	var rows [][]string
	for _, p := range pts {
		rows = append(rows, []string{p.Label, fs(p.Conv), fs(p.DWS), fs(p.Speedup)})
	}
	return writeCSV(dir, name,
		[]string{"config", "conv", "dws", "dws_over_conv"}, rows)
}

// Figure18CSV writes the width×warps grid.
func Figure18CSV(dir string, pts []Figure18Point) error {
	var rows [][]string
	for _, p := range pts {
		rows = append(rows, []string{p.Setup, p.Config, string(p.Scheme), fs(p.Speedup)})
	}
	return writeCSV(dir, "figure18.csv",
		[]string{"cache_setup", "config", "scheme", "speedup"}, rows)
}

// EnergyCSV writes Figure 19's normalised energies.
func EnergyCSV(dir string, rows []EnergyRow) error {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Bench, fs(r.Conv), fs(r.DWS), fs(r.SlipBB)})
	}
	return writeCSV(dir, "figure19.csv",
		[]string{"benchmark", "conv", "dws", "slip_bb"}, out)
}

// Figure14CSV writes the per-thread miss grids (one row per warp).
func Figure14CSV(dir string, grids map[string][][]uint64) error {
	var rows [][]string
	for _, b := range BenchNames() {
		for wi, row := range grids[b] {
			cells := []string{b, strconv.Itoa(wi)}
			for _, v := range row {
				cells = append(cells, strconv.FormatUint(v, 10))
			}
			rows = append(rows, cells)
		}
	}
	header := []string{"benchmark", "warp"}
	for l := 0; l < 16; l++ {
		header = append(header, fmt.Sprintf("lane%d", l))
	}
	return writeCSV(dir, "figure14.csv", header, rows)
}

// AblationCSV writes the ablation study.
func AblationCSV(dir string, rows []AblationRow) error {
	header := append([]string{"variant", "h_mean"}, BenchNames()...)
	var out [][]string
	for _, r := range rows {
		cells := []string{r.Name, fs(r.HMean)}
		for _, b := range BenchNames() {
			cells = append(cells, fs(r.Per[b]))
		}
		out = append(out, cells)
	}
	return writeCSV(dir, "ablation.csv", header, out)
}
