package report

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/workloads"
	"repro/internal/wpu"
)

// Cost-model exhibit (static analysis): the static cycle bounds, the
// predicted stall split, and the static scheme ranking of
// program.CostModel confronted with measured runs. The bounds table
// shows, per benchmark under the Conv baseline, measured TickCycles
// inside the static [lo, hi] claim and the measured vs predicted
// four-way stall composition; the ranking table grades the static
// 13-scheme ordering against the measured-best scheme over all 13
// schemes (the agreement criterion EXPERIMENTS.md records: measured
// best inside the static top 3).

// CostModelRow is one (benchmark, scheme) point: measured cycles against
// the static claim, plus both ranks. Static quantities are summed over
// the benchmark's kernel launches.
type CostModelRow struct {
	Bench    string
	Scheme   wpu.Scheme
	Cycles   uint64 // measured summed TickCycles
	TickLo   int64  // static lower bound
	TickHi   int64  // static upper bound (≥ program.CostInf: unbounded)
	InBounds bool
	Est      float64 // static scheme estimate (heuristic, lower = better)
	StatRank int     // 1-based rank of the scheme in the static ordering
	MeasRank int     // 1-based rank by measured cycles
}

// benchCost is the static side for one benchmark: bounds, exposure-
// weighted predicted split, and per-scheme estimates summed over the
// benchmark's launches.
type benchCost struct {
	tickLo, tickHi int64
	pred           [4]float64
	est            map[wpu.Scheme]float64
}

// staticBenchCosts computes the static cost models of every benchmark's
// launches (no simulation) under the given machine configuration.
func staticBenchCosts(cfg sim.Config) (map[string]*benchCost, error) {
	out := make(map[string]*benchCost)
	type mkey struct {
		prog    *program.Program
		threads int
	}
	models := make(map[mkey]*program.CostModel)
	for _, spec := range workloads.All() {
		sys, err := sim.New(cfg)
		if err != nil {
			return nil, err
		}
		inst, err := spec.Build(sys)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		bc := &benchCost{est: make(map[wpu.Scheme]float64)}
		out[spec.Name] = bc
		var predW [4]float64
		var wsum float64
		for _, st := range inst.Steps() {
			k := mkey{st.Prog, len(st.Threads)}
			m := models[k]
			if m == nil {
				m = st.Prog.CostModelFor(sim.CostParamsFor(cfg, len(st.Threads)))
				models[k] = m
			}
			bc.tickLo += m.Ticks.Lo
			if bc.tickHi < program.CostInf {
				if m.Ticks.Unbounded() {
					bc.tickHi = program.CostInf
				} else {
					bc.tickHi += m.Ticks.Hi
				}
			}
			var w float64 // exposure weight: the launch's baseline estimate
			for _, sc := range m.Ranking {
				bc.est[wpu.Scheme(sc.Scheme)] += sc.Est
				if sc.Scheme == string(wpu.SchemeConv) {
					w = sc.Est
				}
			}
			for i := range predW {
				predW[i] += m.Predicted[i] * w
			}
			wsum += w
		}
		if wsum > 0 {
			for i := range predW {
				bc.pred[i] = predW[i] / wsum
			}
		}
	}
	return out, nil
}

// CostModel runs the suite under all 13 schemes and prints the
// bounds-vs-measured table and the static-vs-measured ranking table; the
// returned rows feed CostModelCSV.
func (s *Session) CostModel(w io.Writer) ([]CostModelRow, error) {
	static, err := staticBenchCosts(DefaultKnobs(wpu.SchemeConv).Config())
	if err != nil {
		return nil, err
	}
	var knobs []Knobs
	for _, sc := range wpu.AllSchemes {
		knobs = append(knobs, DefaultKnobs(sc))
	}
	if err := s.Prefetch(suiteJobs(knobs...)); err != nil {
		return nil, err
	}

	type meas struct {
		cycles uint64
		frac   [4]float64
	}
	measured := make(map[string]map[wpu.Scheme]meas)
	for _, b := range BenchNames() {
		measured[b] = make(map[wpu.Scheme]meas)
		for _, sc := range wpu.AllSchemes {
			r, err := s.Run(b, DefaultKnobs(sc))
			if err != nil {
				return nil, err
			}
			m := meas{cycles: r.Stats.TickCycles}
			if total := float64(r.Stats.TickCycles); total > 0 {
				bk := r.Stats.CycleBuckets()
				for i := 0; i < 4; i++ {
					m.frac[i] = float64(bk[i]) / total
				}
			}
			measured[b][sc] = m
		}
	}

	boundStr := func(lo, hi int64) string {
		return program.CostInterval{Lo: lo, Hi: hi}.String()
	}

	fmt.Fprintln(w, "Cost model (static analysis): measured cycles vs static bounds, Conv baseline")
	fmt.Fprintln(w, "(frac columns: measured/predicted share of busy, coherent-memory, divergent-memory, barrier cycles)")
	t := newTable(w, "bench", "cycles", "static bound", "in", "busy", "mem_coh", "mem_div", "barrier")
	for _, b := range BenchNames() {
		bc := static[b]
		mv := measured[b][wpu.SchemeConv]
		in := int64(mv.cycles) >= bc.tickLo && (bc.tickHi >= program.CostInf || int64(mv.cycles) <= bc.tickHi)
		cell := func(i int) string {
			return fmt.Sprintf("%.2f/%.2f", mv.frac[i], bc.pred[i])
		}
		t.row(b, strconv.FormatUint(mv.cycles, 10), boundStr(bc.tickLo, bc.tickHi),
			okMark(in), cell(0), cell(1), cell(2), cell(3))
	}
	t.flush()

	var rows []CostModelRow
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Static scheme ranking vs measured best (agreement: measured best in static top 3)")
	rt := newTable(w, "bench", "measured best", "static top 3", "rank", "agree")
	agreed := 0
	for _, b := range BenchNames() {
		bc := static[b]
		statOrder := append([]wpu.Scheme(nil), wpu.AllSchemes...)
		sort.SliceStable(statOrder, func(i, j int) bool { return bc.est[statOrder[i]] < bc.est[statOrder[j]] })
		measOrder := append([]wpu.Scheme(nil), wpu.AllSchemes...)
		sort.SliceStable(measOrder, func(i, j int) bool {
			return measured[b][measOrder[i]].cycles < measured[b][measOrder[j]].cycles
		})
		statRank := make(map[wpu.Scheme]int)
		for i, sc := range statOrder {
			statRank[sc] = i + 1
		}
		for i, sc := range measOrder {
			mv := measured[b][sc]
			in := int64(mv.cycles) >= bc.tickLo && (bc.tickHi >= program.CostInf || int64(mv.cycles) <= bc.tickHi)
			rows = append(rows, CostModelRow{
				Bench: b, Scheme: sc, Cycles: mv.cycles,
				TickLo: bc.tickLo, TickHi: bc.tickHi, InBounds: in,
				Est: bc.est[sc], StatRank: statRank[sc], MeasRank: i + 1,
			})
		}
		best := measOrder[0]
		rank := statRank[best]
		agree := rank <= 3
		if agree {
			agreed++
		}
		top3 := fmt.Sprintf("%s < %s < %s", statOrder[0], statOrder[1], statOrder[2])
		rt.row(b, string(best), top3, strconv.Itoa(rank), okMark(agree))
	}
	rt.flush()
	fmt.Fprintf(w, "agreement: %d/%d benchmarks\n", agreed, len(BenchNames()))
	return rows, nil
}

func okMark(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}

// CostModelCSV writes the full (benchmark, scheme) grid.
func CostModelCSV(dir string, rows []CostModelRow) error {
	header := []string{"bench", "scheme", "cycles", "tick_lo", "tick_hi", "in_bounds", "static_est", "static_rank", "measured_rank"}
	var out [][]string
	for _, r := range rows {
		hi := "inf"
		if r.TickHi < program.CostInf {
			hi = strconv.FormatInt(r.TickHi, 10)
		}
		in := "0"
		if r.InBounds {
			in = "1"
		}
		out = append(out, []string{
			r.Bench, string(r.Scheme), strconv.FormatUint(r.Cycles, 10),
			strconv.FormatInt(r.TickLo, 10), hi, in,
			fs(r.Est), strconv.Itoa(r.StatRank), strconv.Itoa(r.MeasRank),
		})
	}
	return writeCSV(dir, "costmodel.csv", header, out)
}
