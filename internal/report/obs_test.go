package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/wpu"
)

// traceFilter runs the cheapest benchmark with a sink attached and
// returns the filled trace plus the Result.
func traceFilter(t *testing.T, opts ...Option) (*obs.Trace, Result) {
	t.Helper()
	s := NewSession(opts...)
	tr := obs.New(1000)
	r, err := s.RunTraced("Filter", DefaultKnobs(wpu.Scheme("DWS.ReviveSplit")), tr)
	if err != nil {
		t.Fatal(err)
	}
	return tr, r
}

// TestTracedRunProducesEvents pins that the instrumented machine actually
// reports the paper's mechanisms: a DWS run of a divergent benchmark must
// record subdivisions and cache misses, and the sampler must have fired.
func TestTracedRunProducesEvents(t *testing.T) {
	tr, r := traceFilter(t)
	if len(tr.Events) == 0 {
		t.Fatal("traced run recorded no events")
	}
	counts := tr.CountByKind()
	if counts["mem-subdiv"] == 0 && counts["branch-subdiv"] == 0 {
		t.Errorf("no subdivision events under DWS; counts = %v", counts)
	}
	if counts["l1-miss"] == 0 {
		t.Errorf("no L1 miss events; counts = %v", counts)
	}
	// A revival is itself a memory subdivision (tryRevive bumps both
	// counters), so the event kinds partition MemSubdivisions.
	if got, want := counts["mem-subdiv"]+counts["revive"], r.Stats.MemSubdivisions; got != want {
		t.Errorf("mem-subdiv+revive events = %d, Stats.MemSubdivisions = %d", got, want)
	}
	if got, want := counts["revive"], r.Stats.Revivals; got != want {
		t.Errorf("revive events = %d, Stats.Revivals = %d", got, want)
	}
	if got, want := counts["l2-miss"], r.L2.Misses; got != want {
		t.Errorf("l2-miss events = %d, L2Stats.Misses = %d", got, want)
	}
	if len(tr.Samples) == 0 {
		t.Fatal("sampler produced no timeline rows")
	}
	for _, e := range tr.Events {
		if e.Cycle > r.Cycles {
			t.Fatalf("event at cycle %d beyond run end %d", e.Cycle, r.Cycles)
		}
	}
}

// TestTracedRunBypassesStore is the cache-interplay guarantee: with a warm
// on-disk store (and even a warm in-memory cache), RunTraced must still
// simulate live — a cache hit would return a Result but leave the trace
// empty.
func TestTracedRunBypassesStore(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := DefaultKnobs(wpu.Scheme("DWS.ReviveSplit"))
	s := NewSession(WithStore(st))
	warm, err := s.Run("Filter", k)
	if err != nil {
		t.Fatal(err)
	}

	// Same session: in-memory cache is warm.
	tr := obs.New(0)
	r, err := s.RunTraced("Filter", k, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("warm in-memory cache swallowed the traced run")
	}
	if r.Cycles != warm.Cycles {
		t.Errorf("traced run cycles %d != cached %d", r.Cycles, warm.Cycles)
	}
	if got := s.Stats(); got.Traced != 1 {
		t.Errorf("Traced counter = %d, want 1; stats %+v", got.Traced, got)
	}

	// Fresh session sharing the store: disk is warm.
	s2 := NewSession(WithStore(st))
	tr2 := obs.New(0)
	if _, err := s2.RunTraced("Filter", k, tr2); err != nil {
		t.Fatal(err)
	}
	if len(tr2.Events) == 0 {
		t.Fatal("warm disk store swallowed the traced run")
	}
	if got := s2.Stats(); got.DiskHits != 0 || got.Misses != 1 {
		t.Errorf("traced run consulted the store: %+v", got)
	}
	// And the traced run warmed both caches for untraced use.
	if _, err := s2.Run("Filter", k); err != nil {
		t.Fatal(err)
	}
	if got := s2.Stats(); got.MemHits != 1 {
		t.Errorf("traced result not cached for untraced reuse: %+v", got)
	}
	if s2.Provenance("Filter", k) != "traced-live" {
		t.Errorf("provenance = %q, want traced-live", s2.Provenance("Filter", k))
	}
}

// TestTraceDeterminismAcrossJobs is the byte-determinism guarantee for
// every observability export: identical runs at -j 1 and -j 8 must
// produce byte-identical Chrome traces, timeline CSVs, and (wall-clock
// zeroed) run documents.
func TestTraceDeterminismAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	render := func(jobs int) (chrome, timeline, doc []byte) {
		tr, r := traceFilter(t, WithJobs(jobs))
		var cb, tb, db bytes.Buffer
		if err := obs.WriteChromeTrace(&cb, tr); err != nil {
			t.Fatal(err)
		}
		if err := TimelineCSV(&tb, tr); err != nil {
			t.Fatal(err)
		}
		rd := NewRunDoc(r, DefaultKnobs(wpu.Scheme("DWS.ReviveSplit")), "traced-live", 0)
		if err := WriteStatsDoc(&db, []RunDoc{rd}, CacheStats{}); err != nil {
			t.Fatal(err)
		}
		return cb.Bytes(), tb.Bytes(), db.Bytes()
	}
	c1, t1, d1 := render(1)
	c8, t8, d8 := render(8)
	if !bytes.Equal(c1, c8) {
		t.Error("chrome trace differs between -j 1 and -j 8")
	}
	if !bytes.Equal(t1, t8) {
		t.Error("timeline CSV differs between -j 1 and -j 8")
	}
	if !bytes.Equal(d1, d8) {
		t.Error("run document differs between -j 1 and -j 8")
	}
}

// TestObsDoesNotPerturbTiming: attaching the sink must not change the
// simulation itself — same cycles, same counters.
func TestObsDoesNotPerturbTiming(t *testing.T) {
	k := DefaultKnobs(wpu.Scheme("DWS.ReviveSplit"))
	plain, err := NewSession().Run("Filter", k)
	if err != nil {
		t.Fatal(err)
	}
	_, traced := traceFilter(t)
	if plain.Cycles != traced.Cycles {
		t.Errorf("attaching the trace changed cycles: %d != %d", plain.Cycles, traced.Cycles)
	}
	if !reflect.DeepEqual(plain.Stats, traced.Stats) {
		t.Errorf("attaching the trace changed statistics:\nplain  %+v\ntraced %+v", plain.Stats, traced.Stats)
	}
}

// TestTimelineCSVShape parses the export with encoding/csv and checks the
// schema-stable header plus basic row invariants.
func TestTimelineCSVShape(t *testing.T) {
	tr, _ := traceFilter(t)
	var buf bytes.Buffer
	if err := TimelineCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	rd := csv.NewReader(&buf)
	recs, err := rd.ReadAll()
	if err != nil {
		t.Fatalf("timeline CSV does not parse: %v", err)
	}
	wantHeader := "cycle,wpu,busy_frac,memstall_frac,otherstall_frac,mean_simd_width," +
		"wst_occupancy,resident_splits,slot_waiters,l1_mshr,l2_mshr"
	if got := strings.Join(recs[0], ","); got != wantHeader {
		t.Fatalf("timeline header drifted:\ngot  %s\nwant %s", got, wantHeader)
	}
	if len(recs) != len(tr.Samples)+1 {
		t.Errorf("timeline rows = %d, want %d samples + header", len(recs), len(tr.Samples))
	}
	for _, rec := range recs[1:] {
		if len(rec) != len(recs[0]) {
			t.Fatalf("ragged row: %v", rec)
		}
	}
}

// TestRunDocShape pins the machine-readable stats document: schema tags,
// knob round-trip, and the derived ratios agreeing with the raw counters.
func TestRunDocShape(t *testing.T) {
	k := DefaultKnobs(wpu.Scheme("DWS.ReviveSplit"))
	s := NewSession()
	r, err := s.Run("Filter", k)
	if err != nil {
		t.Fatal(err)
	}
	doc := NewRunDoc(r, k, s.Provenance("Filter", k), 1.5)
	if doc.Schema != RunDocSchema || doc.Source != "simulated" {
		t.Errorf("doc schema/source = %q/%q", doc.Schema, doc.Source)
	}
	var buf bytes.Buffer
	if err := WriteStatsDoc(&buf, []RunDoc{doc}, s.Stats()); err != nil {
		t.Fatal(err)
	}
	var parsed StatsDoc
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("stats doc does not parse: %v", err)
	}
	if parsed.Schema != StatsDocSchema || len(parsed.Runs) != 1 {
		t.Fatalf("parsed doc: schema %q, %d runs", parsed.Schema, len(parsed.Runs))
	}
	got := parsed.Runs[0]
	if got.Knobs != k {
		t.Errorf("knobs did not round-trip: %+v != %+v", got.Knobs, k)
	}
	if got.Cycles != r.Cycles || got.WPU.Issued != r.Stats.Issued {
		t.Errorf("counters did not round-trip")
	}
	if got.Derived.MeanSIMDWidth != r.Stats.MeanSIMDWidth() {
		t.Errorf("derived mean width %v != %v", got.Derived.MeanSIMDWidth, r.Stats.MeanSIMDWidth())
	}
	if parsed.Cache.Misses != 1 {
		t.Errorf("session cache in doc: %+v", parsed.Cache)
	}
}
