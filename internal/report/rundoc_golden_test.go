package report

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/energy"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/wpu"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenRunDoc builds a fully deterministic document by hand: golden
// comparison must pin the serialized *shape* (field names, order,
// SchemaVersion) without depending on simulator behaviour, which evolves.
func goldenRunDoc() RunDoc {
	hists := &obs.HistSet{}
	hists.L1Hit.Record(3)
	hists.L1Hit.Record(3)
	hists.DRAMServe.Record(137)
	hists.SplitLife.Record(42)
	return RunDoc{
		Schema:        RunDocSchema,
		SchemaVersion: SchemaVersion,
		Bench:         "Filter",
		Scheme:        "DWS.ReviveSplit",
		Knobs:         DefaultKnobs(wpu.Scheme("DWS.ReviveSplit")),
		Source:        "traced-live",
		WallSeconds:   0,
		Cycles:        1000,
		Derived:       RunDerived{MeanSIMDWidth: 12.5, MemStallFrac: 0.4, L1MissRate: 0.05},
		WPU: wpu.Stats{
			TickCycles:        1000,
			BusyCycles:        500,
			StallMemCoherent:  250,
			StallMemDivergent: 150,
			StallBarrier:      40,
			StallICache:       20,
			StallWSTFull:      10,
			StallSlotWait:     10,
			IdleNoLiveWarp:    20,
			Issued:            480,
			WidthAccum:        6000,
		},
		L1:             mem.L1Stats{Accesses: 4000, Misses: 200},
		L2:             mem.L2Stats{Requests: 200, Hits: 150, Misses: 50},
		XbarTransfers:  400,
		DRAMAccesses:   50,
		DRAMWritebacks: 5,
		Energy:         RunEnergy{BreakdownNJ: energy.Breakdown{}, TotalMJ: 1.25},
		Hists:          hists,
	}
}

// TestRunDocGolden pins the serialized run-metrics document byte for byte.
// Any layout change — renamed field, reordered struct, new counter — shows
// up as a diff here and must ride a SchemaVersion bump. Regenerate with
// `go test ./internal/report -run RunDocGolden -update`.
func TestRunDocGolden(t *testing.T) {
	doc := goldenRunDoc()
	var buf bytes.Buffer
	if err := WriteStatsDoc(&buf, []RunDoc{doc}, CacheStats{Misses: 1}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "rundoc.golden.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("run-metrics document drifted from golden; if the change is intended, bump SchemaVersion and regenerate with -update\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	// The document must also round-trip losslessly through encoding/json.
	var parsed StatsDoc
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.SchemaVersion != SchemaVersion || len(parsed.Runs) != 1 {
		t.Fatalf("parsed: version %d, %d runs", parsed.SchemaVersion, len(parsed.Runs))
	}
	if !reflect.DeepEqual(parsed.Runs[0], doc) {
		t.Errorf("round-trip mismatch:\ngot  %+v\nwant %+v", parsed.Runs[0], doc)
	}
}
