package program

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

// buildAccessKernel assembles a straight-line kernel with one load per
// access pattern of interest: region-uniform, tid·8 (coalesced), tid·16
// (strided), and data-dependent (gather).
func buildAccessKernel(t testing.TB) *Program {
	b := NewBuilder("access-classes")
	b.DeclareRegion(4, 4096)
	b.DeclareThreads(64)
	b.Ld(10, 4, 0) // uniform: every lane reads the region base
	b.Shli(5, 1, 3)
	b.Add(5, 5, 4)
	b.Ld(11, 5, 0) // coalesced: base + 8·tid
	b.Shli(6, 1, 4)
	b.Add(6, 6, 4)
	b.Ld(12, 6, 0) // strided(16): base + 16·tid
	b.Andi(7, 3, 1023)
	b.Shli(7, 7, 3)
	b.Add(7, 7, 4)
	b.Ld(13, 7, 0) // gather: r3 is per-thread, statically opaque
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestAccessClasses pins the classifier end to end under DefaultMemParams
// (16 lanes, 128 B lines, 16 banks): classes, strides, worst-case
// transaction and bank-conflict bounds, and footprints.
func TestAccessClasses(t *testing.T) {
	p := buildAccessKernel(t)
	got := p.MemAccesses()
	want := []MemAccessInfo{
		// 8 B at a warp-uniform address: one line, one bank.
		{PC: 0, Store: false, Class: ClassUniform, AClass: AccessUniform, StrideBytes: 0, Transactions: 1, BankConflict: 1, FootprintBytes: 8},
		// 8·tid: 16 lanes span 128 B — one line when aligned, two when the
		// base straddles; adjacent lines land on distinct banks.
		{PC: 3, Store: false, Class: ClassAffine, AClass: AccessCoalesced, StrideBytes: 8, Transactions: 2, BankConflict: 1, FootprintBytes: 128},
		// 16·tid spans 248 B: up to three lines, beyond the coalesced bar.
		{PC: 6, Store: false, Class: ClassAffine, AClass: AccessStrided, StrideBytes: 16, Transactions: 3, BankConflict: 1, FootprintBytes: 248},
		// Opaque per-thread address: every lane may touch its own line.
		{PC: 10, Store: false, Class: ClassDivergent, AClass: AccessGather, StrideBytes: 0, Transactions: 16, BankConflict: 16, FootprintBytes: -1},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d accesses, want %d\n%s", len(got), len(want), p.MemAccessReport())
	}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("access %d:\n got  %+v\n want %+v", i, got[i], w)
		}
	}
}

// TestMemAccessFor pins the geometry-dependent recomputation the WPU uses
// at Launch: narrower machines, smaller lines, and an interleaved lane
// tid step must all rescale the bounds.
func TestMemAccessFor(t *testing.T) {
	p := buildAccessKernel(t)
	cases := []struct {
		name   string
		params MemParams
		pc     int
		tx     int
		bank   int
	}{
		// 8·tid over 6 lanes of 32 B lines: 40 B span, up to 3 lines, and
		// with only 4 banks all three stay distinct.
		{"narrow", MemParams{Lanes: 6, LineBytes: 32, Banks: 4}, 3, 3, 1},
		// Interleaved distribution (tid step 4): the effective stride is
		// 32 B, 16 lanes span 480 B — five 128 B lines worst case.
		{"interleave", MemParams{Lanes: 16, LineBytes: 128, Banks: 16, TidStep: 4}, 3, 5, 1},
		// One lane: everything is a single transaction.
		{"scalar", MemParams{Lanes: 1, LineBytes: 128, Banks: 16}, 10, 1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, a := range p.MemAccessFor(tc.params) {
				if a.PC != tc.pc {
					continue
				}
				if a.Transactions != tc.tx || a.BankConflict != tc.bank {
					t.Errorf("pc %d under %+v: tx=%d bank=%d, want tx=%d bank=%d",
						tc.pc, tc.params, a.Transactions, a.BankConflict, tc.tx, tc.bank)
				}
				return
			}
			t.Fatalf("pc %d not in MemAccessFor result", tc.pc)
		})
	}
}

// TestWorstAffineBankConflict pins the alignment-enumeration fix for the
// bank-conflict bound: stride 2056 on a 128 B-line, 16-bank machine maps
// multiple distinct lines onto the same bank (2056 = 16·128 + 8, so
// successive lanes advance 16 lines plus a slow 8-byte creep — line
// indices collide mod 16 as the creep wraps). A closed-form per-lane bound
// misses this; the enumeration must not.
func TestWorstAffineBankConflict(t *testing.T) {
	b := NewBuilder("bank-conflict")
	b.DeclareRegion(4, 1<<20)
	b.DeclareThreads(16)
	b.Muli(5, 1, 2056)
	b.Add(5, 5, 4)
	b.Ld(10, 5, 0)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := p.MemAccesses()[0]
	if a.AClass != AccessGather && a.BankConflict < 2 {
		t.Errorf("stride-2056 access reports bank conflict %d; distinct lines collide on a bank", a.BankConflict)
	}
	if a.Transactions != 16 {
		t.Errorf("stride-2056 access bounds %d transactions, want 16 (every lane its own line)", a.Transactions)
	}
}

// TestMemHintFlagFoldIn verifies the decoded-stream fold-in: exactly the
// statically-uniform accesses carry isa.DFMemHint, and every memory op's
// 2-bit MemClass mirrors the table.
func TestMemHintFlagFoldIn(t *testing.T) {
	p := buildAccessKernel(t)
	dec := p.Decoded()
	for _, a := range p.MemAccesses() {
		d := dec[a.PC]
		if got := AccessClass(d.MemClass()); got != a.AClass {
			t.Errorf("pc %d: decoded class %s, table %s", a.PC, got, a.AClass)
		}
		if hinted := d.Flags&isa.DFMemHint != 0; hinted != (a.AClass == AccessUniform) {
			t.Errorf("pc %d (%s): DFMemHint=%v", a.PC, a.AClass, hinted)
		}
	}
}

// The disassembly must annotate memory ops with their class and bound.
func TestDisassembleMemAnnotations(t *testing.T) {
	dis := buildAccessKernel(t).Disassemble()
	for _, want := range []string{"; uniform tx<=1", "; coalesced tx<=2", "; strided tx<=3", "; gather tx<=16"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

// benchKernel builds a representative ~60-instruction kernel (grid-stride
// loop, branch diamond, prologue and in-loop memory traffic) from scratch:
// the full Build pipeline — CFG, dominators, divergence dataflow, memory
// classification, verification, decode — is the unit under test.
func benchKernel() (*Program, error) {
	b := NewBuilder("build-bench")
	b.DeclareRegion(4, 4096)
	b.DeclareRegion(5, 4096)
	b.DeclareUniformInputs(6, 7)
	b.DeclareThreads(1024)
	b.Shli(20, 1, 3)
	b.Add(20, 20, 4)
	b.Ld(21, 20, 0) // prologue: coalesced A[tid]
	b.Ld(22, 5, 0)  // prologue: uniform B[0]
	b.Mov(9, 1)
	b.Label("loop")
	b.Slt(10, 9, 6)
	b.Beqz(10, "done")
	for i := 0; i < 4; i++ {
		r := isa.Reg(11 + 4*i)
		b.Shli(r, 9, 3)
		b.Add(r, r, 4)
		b.Ld(r+1, r, 0)
		b.Fmul(r+2, r+1, 21)
		b.Fadd(r+3, r+2, 22)
	}
	b.Slt(28, 9, 7)
	b.Beqz(28, "skip")
	b.Fadd(14, 14, 18)
	b.Fsub(14, 14, 26)
	b.Jmp("join")
	b.Label("skip")
	b.Fmul(14, 14, 22)
	b.Label("join")
	b.Shli(29, 9, 3)
	b.Add(29, 29, 5)
	b.St(14, 29, 0)
	b.Add(9, 9, 2)
	b.Jmp("loop")
	b.Label("done")
	b.Barrier()
	b.Halt()
	return b.Build()
}

// BenchmarkProgramBuild is the build-time budget gate (cmd/dwsbench): the
// static analyses added over time — divergence dataflow, memory-access
// classification, verification — all run inside Build, and their summed
// cost per kernel must not creep past the baseline.
func BenchmarkProgramBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := benchKernel()
		if err != nil {
			b.Fatal(err)
		}
		if len(p.MemAccesses()) == 0 {
			b.Fatal("kernel lost its memory accesses")
		}
	}
}
