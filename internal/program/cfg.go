package program

import "repro/internal/isa"

// buildCFG partitions the code into basic blocks and records successor
// edges. Block IDs are assigned in code order.
func buildCFG(code []isa.Inst) []Block {
	leader := make([]bool, len(code))
	leader[0] = true
	for pc, in := range code {
		switch {
		case in.Op.IsBranch():
			leader[in.Target] = true
			if pc+1 < len(code) {
				leader[pc+1] = true
			}
		case in.Op == isa.JMP:
			leader[in.Target] = true
			if pc+1 < len(code) {
				leader[pc+1] = true
			}
		case in.Op == isa.HALT:
			if pc+1 < len(code) {
				leader[pc+1] = true
			}
		}
	}

	var blocks []Block
	startToID := make(map[int]int)
	for pc := 0; pc < len(code); {
		end := pc + 1
		for end < len(code) && !leader[end] {
			end++
		}
		id := len(blocks)
		startToID[pc] = id
		blocks = append(blocks, Block{ID: id, Start: pc, End: end})
		pc = end
	}

	for i := range blocks {
		blk := &blocks[i]
		lastPC := blk.End - 1
		in := code[lastPC]
		switch {
		case in.Op.IsBranch():
			// Fallthrough first, then taken: deterministic order.
			if blk.End < len(code) {
				blk.Succ = append(blk.Succ, startToID[blk.End])
			}
			t := startToID[in.Target]
			if len(blk.Succ) == 0 || blk.Succ[0] != t {
				blk.Succ = append(blk.Succ, t)
			}
		case in.Op == isa.JMP:
			blk.Succ = append(blk.Succ, startToID[in.Target])
		case in.Op == isa.HALT:
			// Exit block: no successors.
		default:
			if blk.End < len(code) {
				blk.Succ = append(blk.Succ, startToID[blk.End])
			}
		}
	}
	return blocks
}

// postDominators computes each block's immediate post-dominator using
// iterative set intersection over the reverse CFG with a virtual exit node.
// It returns ipdom[blockID] = post-dominating block ID, or -1 when the only
// post-dominator is the virtual exit (kernel termination).
//
// Kernels are small (tens of blocks), so the O(n²) bitset formulation is
// simple and fast enough.
func postDominators(blocks []Block) []int {
	n := len(blocks)
	exit := n // virtual exit node ID

	// pdom[v] is a bitset over n+1 nodes.
	words := (n + 1 + 63) / 64
	full := make([]uint64, words)
	for v := 0; v <= n; v++ {
		full[v/64] |= 1 << (v % 64)
	}
	pdom := make([][]uint64, n+1)
	for v := 0; v <= n; v++ {
		pdom[v] = make([]uint64, words)
		copy(pdom[v], full)
	}
	// Exit post-dominates only itself.
	for i := range pdom[exit] {
		pdom[exit][i] = 0
	}
	pdom[exit][exit/64] |= 1 << (exit % 64)

	succ := func(v int) []int {
		if len(blocks[v].Succ) == 0 {
			return []int{exit}
		}
		return blocks[v].Succ
	}

	tmp := make([]uint64, words)
	for changed := true; changed; {
		changed = false
		// Reverse order tends to converge faster for forward-shaped CFGs.
		for v := n - 1; v >= 0; v-- {
			copy(tmp, full)
			for _, s := range succ(v) {
				for i := range tmp {
					tmp[i] &= pdom[s][i]
				}
			}
			tmp[v/64] |= 1 << (v % 64)
			same := true
			for i := range tmp {
				if tmp[i] != pdom[v][i] {
					same = false
					break
				}
			}
			if !same {
				copy(pdom[v], tmp)
				changed = true
			}
		}
	}

	// Blocks that cannot reach the exit (infinite loops) keep the vacuous
	// full set in the maximal fixpoint; post-dominance is undefined for
	// them, so report -1 (matching the CHK formulation in verify.go, where
	// such nodes are simply unreached by the reverse-graph DFS).
	canExit := make([]bool, n)
	for changed := true; changed; {
		changed = false
		for v := 0; v < n; v++ {
			if canExit[v] {
				continue
			}
			ok := len(blocks[v].Succ) == 0
			for _, s := range blocks[v].Succ {
				if canExit[s] {
					ok = true
				}
			}
			if ok {
				canExit[v] = true
				changed = true
			}
		}
	}

	bit := func(set []uint64, v int) bool { return set[v/64]&(1<<(v%64)) != 0 }
	popcount := func(set []uint64) int {
		c := 0
		for _, w := range set {
			for ; w != 0; w &= w - 1 {
				c++
			}
		}
		return c
	}

	ipdom := make([]int, n)
	for v := 0; v < n; v++ {
		if !canExit[v] {
			ipdom[v] = -1
			continue
		}
		// Candidates: strict post-dominators of v. The immediate one is the
		// candidate closest to v, i.e. with the largest post-dominator set.
		best, bestSize := -1, -1
		for c := 0; c < n; c++ {
			if c == v || !bit(pdom[v], c) {
				continue
			}
			if sz := popcount(pdom[c]); sz > bestSize {
				best, bestSize = c, sz
			}
		}
		ipdom[v] = best // -1 when only the virtual exit post-dominates v
	}
	return ipdom
}
