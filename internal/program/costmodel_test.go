package program

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

// countedLoop builds `for i = init; i < bound; i += step { body }` with the
// bound in r4 and the induction in r5; build customises the prologue.
func mustBuildProg(t *testing.T, b *Builder) *Program {
	t.Helper()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func singleLoop(t *testing.T, m *CostModel) LoopCost {
	t.Helper()
	if len(m.Loops) != 1 {
		t.Fatalf("want 1 loop, got %d: %+v", len(m.Loops), m.Loops)
	}
	return m.Loops[0]
}

func TestCostIntervalBasics(t *testing.T) {
	iv := CostInterval{3, 7}
	if !iv.Contains(3) || !iv.Contains(7) || iv.Contains(2) || iv.Contains(8) {
		t.Errorf("Contains wrong on %v", iv)
	}
	if iv.Unbounded() {
		t.Errorf("finite interval reported unbounded")
	}
	if got := iv.String(); got != "[3,7]" {
		t.Errorf("String = %q", got)
	}
	top := CostInterval{0, CostInf}
	if !top.Unbounded() || !top.Contains(1<<40) {
		t.Errorf("unbounded interval misbehaves")
	}
	if got := top.String(); got != "[0,inf]" {
		t.Errorf("String = %q", got)
	}
}

// A loop with constant init, bound, and step has an exact trip count.
func TestTripCountConstantBound(t *testing.T) {
	b := NewBuilder("trips-const")
	b.DeclareThreads(16)
	b.Movi(4, 10)
	b.Movi(5, 0)
	b.Movi(7, 0)
	b.Label("loop")
	b.Slt(6, 5, 4)
	b.Beqz(6, "done")
	b.Addi(7, 7, 3)
	b.Addi(5, 5, 1)
	b.Jmp("loop")
	b.Label("done")
	b.St(7, 1, 0)
	b.Halt()
	p := mustBuildProg(t, b)
	lc := singleLoop(t, p.CostModel())
	if lc.Note != "" {
		t.Fatalf("loop not recognised: %q", lc.Note)
	}
	if lc.Induction != 5 {
		t.Errorf("induction = r%d, want r5", lc.Induction)
	}
	if lc.Trips != (CostInterval{10, 10}) {
		t.Errorf("trips = %s, want [10,10]", lc.Trips)
	}
}

// A declared uniform-range bound yields interval trips.
func TestTripCountUniformRangeBound(t *testing.T) {
	b := NewBuilder("trips-range")
	b.DeclareThreads(16)
	b.DeclareUniformRange(4, 5, 20)
	b.Movi(5, 0)
	b.Movi(7, 0)
	b.Label("loop")
	b.Slt(6, 5, 4)
	b.Beqz(6, "done")
	b.Addi(7, 7, 1)
	b.Addi(5, 5, 1)
	b.Jmp("loop")
	b.Label("done")
	b.St(7, 1, 0)
	b.Halt()
	p := mustBuildProg(t, b)
	lc := singleLoop(t, p.CostModel())
	if lc.Note != "" {
		t.Fatalf("loop not recognised: %q", lc.Note)
	}
	if lc.Trips != (CostInterval{5, 20}) {
		t.Errorf("trips = %s, want [5,20]", lc.Trips)
	}
}

// The grid-stride idiom: i starts at tid, strides by the thread count.
// With 16 threads and a fixed bound of 32 every thread runs exactly twice.
func TestTripCountGridStride(t *testing.T) {
	b := NewBuilder("trips-stride")
	b.DeclareThreads(16)
	b.DeclareUniformRange(4, 32, 32)
	b.Mov(5, 1)
	b.Label("loop")
	b.Slt(6, 5, 4)
	b.Beqz(6, "done")
	b.St(5, 1, 0)
	b.Add(5, 5, 2)
	b.Jmp("loop")
	b.Label("done")
	b.Halt()
	p := mustBuildProg(t, b)
	lc := singleLoop(t, p.CostModel())
	if lc.Note != "" {
		t.Fatalf("loop not recognised: %q", lc.Note)
	}
	if lc.Trips != (CostInterval{2, 2}) {
		t.Errorf("trips = %s, want [2,2]", lc.Trips)
	}
}

// Counting down: `for i = 10; i > 0; i--` (continue while 0 < i).
func TestTripCountDecrement(t *testing.T) {
	b := NewBuilder("trips-down")
	b.DeclareThreads(16)
	b.Movi(5, 10)
	b.Movi(7, 0)
	b.Label("loop")
	b.Slt(6, 0, 5)
	b.Beqz(6, "done")
	b.Addi(7, 7, 1)
	b.Addi(5, 5, -1)
	b.Jmp("loop")
	b.Label("done")
	b.St(7, 1, 0)
	b.Halt()
	p := mustBuildProg(t, b)
	lc := singleLoop(t, p.CostModel())
	if lc.Note != "" {
		t.Fatalf("loop not recognised: %q", lc.Note)
	}
	if lc.Trips != (CostInterval{10, 10}) {
		t.Errorf("trips = %s, want [10,10]", lc.Trips)
	}
}

// An inclusive test (`i <= bound` via SLE) shifts the bound by one.
func TestTripCountInclusiveBound(t *testing.T) {
	b := NewBuilder("trips-sle")
	b.DeclareThreads(16)
	b.Movi(4, 10)
	b.Movi(5, 0)
	b.Movi(7, 0)
	b.Label("loop")
	b.Sle(6, 5, 4)
	b.Beqz(6, "done")
	b.Addi(7, 7, 1)
	b.Addi(5, 5, 1)
	b.Jmp("loop")
	b.Label("done")
	b.St(7, 1, 0)
	b.Halt()
	p := mustBuildProg(t, b)
	lc := singleLoop(t, p.CostModel())
	if lc.Trips != (CostInterval{11, 11}) {
		t.Errorf("trips = %s, want [11,11]", lc.Trips)
	}
}

// A bound redefined inside the loop defeats the analysis with a note, and
// the trip bound stays the sound [0, inf].
func TestTripCountMutatedBound(t *testing.T) {
	b := NewBuilder("trips-mut")
	b.DeclareThreads(16)
	b.Movi(4, 10)
	b.Movi(5, 0)
	b.Label("loop")
	b.Slt(6, 5, 4)
	b.Beqz(6, "done")
	b.Muli(4, 4, 1)
	b.Addi(5, 5, 1)
	b.Jmp("loop")
	b.Label("done")
	b.St(5, 1, 0)
	b.Halt()
	p := mustBuildProg(t, b)
	lc := singleLoop(t, p.CostModel())
	if lc.Note != "loop bound is modified inside the loop" {
		t.Errorf("note = %q", lc.Note)
	}
	if lc.Trips != (CostInterval{0, CostInf}) {
		t.Errorf("trips = %s, want [0,inf]", lc.Trips)
	}
}

// A predicate that is not a signed compare is rejected with a note.
func TestTripCountNonComparePredicate(t *testing.T) {
	b := NewBuilder("trips-andpred")
	b.DeclareThreads(16)
	b.Movi(5, 8)
	b.Label("loop")
	b.Andi(6, 5, 0xff)
	b.Beqz(6, "done")
	b.Addi(5, 5, -1)
	b.Jmp("loop")
	b.Label("done")
	b.St(5, 1, 0)
	b.Halt()
	p := mustBuildProg(t, b)
	lc := singleLoop(t, p.CostModel())
	if lc.Note != "loop predicate is not a signed compare" {
		t.Errorf("note = %q", lc.Note)
	}
	if !lc.Trips.Unbounded() {
		t.Errorf("trips = %s, want unbounded", lc.Trips)
	}
}

// Nested constant loops multiply into the inner block's execution bound.
func TestBlockExecsNestedLoops(t *testing.T) {
	b := NewBuilder("nest")
	b.DeclareThreads(16)
	b.Movi(4, 4) // outer bound
	b.Movi(8, 3) // inner bound
	b.Movi(5, 0)
	b.Movi(10, 0)
	b.Label("outer")
	b.Slt(6, 5, 4)
	b.Beqz(6, "done")
	b.Movi(7, 0)
	b.Label("inner")
	b.Slt(9, 7, 8)
	b.Beqz(9, "next")
	b.Addi(10, 10, 1)
	b.Addi(7, 7, 1)
	b.Jmp("inner")
	b.Label("next")
	b.Addi(5, 5, 1)
	b.Jmp("outer")
	b.Label("done")
	b.St(10, 1, 0)
	b.Halt()
	p := mustBuildProg(t, b)
	m := p.CostModel()
	if len(m.Loops) != 2 {
		t.Fatalf("want 2 loops, got %d: %+v", len(m.Loops), m.Loops)
	}
	for _, lc := range m.Loops {
		if lc.Note != "" {
			t.Fatalf("loop at B%d not recognised: %q", lc.Header, lc.Note)
		}
	}
	// The inner body block runs exactly 4*3 = 12 times per thread.
	inner := -1
	for pc, in := range p.Code {
		if in.Op == isa.ADDI && in.Dst == 10 {
			inner = p.blockOf()[pc]
			break
		}
	}
	if inner < 0 {
		t.Fatal("inner body block not found")
	}
	var got CostInterval
	for _, bc := range m.Blocks {
		if bc.ID == inner {
			got = bc.Execs
		}
	}
	if got != (CostInterval{12, 12}) {
		t.Errorf("inner body execs = %s, want [12,12]", got)
	}
}

// Straight-line programs have exact block bounds and a finite tick bound.
func TestCostModelStraightLine(t *testing.T) {
	b := NewBuilder("straight")
	b.DeclareThreads(16)
	b.Movi(5, 7)
	b.Addi(5, 5, 1)
	b.St(5, 1, 0)
	b.Halt()
	p := mustBuildProg(t, b)
	m := p.CostModel()
	if len(m.Loops) != 0 {
		t.Fatalf("unexpected loops: %+v", m.Loops)
	}
	for _, bc := range m.Blocks {
		if bc.Execs != (CostInterval{1, 1}) {
			t.Errorf("block B%d execs = %s, want [1,1]", bc.ID, bc.Execs)
		}
	}
	if m.Ticks.Lo <= 0 || m.Ticks.Unbounded() {
		t.Errorf("ticks = %s, want finite positive bounds", m.Ticks)
	}
	if m.Ticks.Lo > m.Ticks.Hi {
		t.Errorf("ticks inverted: %s", m.Ticks)
	}
}

// The model recorded at Build matches a fresh analysis run and survives
// the verifier's costmodel cross-check.
func TestCostModelRecordedAtBuild(t *testing.T) {
	b := NewBuilder("recorded")
	b.DeclareThreads(16)
	b.DeclareUniformRange(4, 1, 64)
	b.Mov(5, 1)
	b.Label("loop")
	b.Slt(6, 5, 4)
	b.Beqz(6, "done")
	b.St(5, 1, 0)
	b.Add(5, 5, 2)
	b.Jmp("loop")
	b.Label("done")
	b.Halt()
	p := mustBuildProg(t, b)
	m := p.CostModel()
	if m == nil {
		t.Fatal("no cost model recorded at Build")
	}
	fresh := p.CostModelFor(m.Params)
	if got, want := m.Report(p.Name), fresh.Report(p.Name); got != want {
		t.Errorf("recorded model drifted:\n%s\nvs fresh:\n%s", got, want)
	}
	for _, f := range p.Verify() {
		if f.Check == "costmodel" {
			t.Errorf("verifier finding: %s", f)
		}
	}
	if got := p.UniformRanges(); len(got) != 1 || got[0] != (UniformRange{4, 1, 64}) {
		t.Errorf("UniformRanges = %+v", got)
	}
}

// Scheme traits cover all 13 schemes and the ranking orders all of them.
func TestCostSchemesComplete(t *testing.T) {
	if len(CostSchemes) != 13 {
		t.Fatalf("CostSchemes has %d entries, want 13", len(CostSchemes))
	}
	seen := map[string]bool{}
	for _, s := range CostSchemes {
		if seen[s.Name] {
			t.Errorf("duplicate scheme %q", s.Name)
		}
		seen[s.Name] = true
	}
	b := NewBuilder("ranked")
	b.DeclareThreads(16)
	b.Movi(5, 1)
	b.St(5, 1, 0)
	b.Halt()
	p := mustBuildProg(t, b)
	m := p.CostModel()
	if len(m.Ranking) != len(CostSchemes) {
		t.Fatalf("ranking has %d entries, want %d", len(m.Ranking), len(CostSchemes))
	}
	for i := 1; i < len(m.Ranking); i++ {
		if m.Ranking[i-1].Est > m.Ranking[i].Est {
			t.Errorf("ranking not sorted at %d: %+v", i, m.Ranking)
		}
	}
}

// BucketBoundsFor zeroes the WST buckets for schemes without a WST.
func TestBucketBoundsForConv(t *testing.T) {
	b := NewBuilder("conv-buckets")
	b.DeclareThreads(16)
	b.Movi(5, 1)
	b.St(5, 1, 0)
	b.Halt()
	p := mustBuildProg(t, b)
	m := p.CostModel()
	var conv, dws SchemeTraits
	for _, s := range CostSchemes {
		switch s.Name {
		case "Conv":
			conv = s
		case "DWS.ReviveSplit":
			dws = s
		}
	}
	if conv.UsesWST() || !dws.UsesWST() {
		t.Fatalf("UsesWST wrong: conv=%v dws=%v", conv.UsesWST(), dws.UsesWST())
	}
	cb := m.BucketBoundsFor(conv)
	for _, i := range []int{5, 6} { // wst_full, slot_wait
		if cb[i] != (CostInterval{0, 0}) {
			t.Errorf("conv bucket %s = %s, want [0,0]", CostBucketLabels[i], cb[i])
		}
	}
}

// Disassembly carries the cost annotations.
func TestDisassembleCostAnnotations(t *testing.T) {
	b := NewBuilder("disasm-cost")
	b.DeclareThreads(16)
	b.DeclareRegion(4, 1024)
	b.Muli(5, 1, 8)
	b.Add(5, 4, 5)
	b.Ld(6, 5, 0)
	b.Addi(6, 6, 1)
	b.St(6, 5, 0)
	b.Halt()
	p := mustBuildProg(t, b)
	d := p.Disassemble()
	if !strings.Contains(d, "execs=[1,1]") {
		t.Errorf("disassembly missing execs annotation:\n%s", d)
	}
	if !strings.Contains(d, "benefit=") {
		t.Errorf("disassembly missing benefit annotation:\n%s", d)
	}
}
