package program

import (
	"testing"

	"repro/internal/isa"
)

// buildDecodedFixture is a loop with a nested diamond: it has a uniform
// branch (loop trip count in a broadcast register), a divergent subdividable
// branch, memory ops, and a jump — every decoded-stream field gets exercised.
func buildDecodedFixture(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("decoded-fixture")
	b.DeclareInputs(1, 2, 3)
	b.DeclareRegion(3, 64)
	b.Movi(4, 0)
	b.Label("head")
	b.Slt(5, 4, 2)
	b.Beqz(5, "exit")
	b.Shli(6, 4, 3)
	b.Add(6, 6, 3)
	b.Ld(7, 6, 0)
	b.Andi(8, 7, 1)
	b.Bnez(8, "odd")
	b.Addi(7, 7, 10)
	b.Jmp("join")
	b.Label("odd")
	b.Addi(7, 7, 3)
	b.Label("join")
	b.St(7, 6, 0)
	b.Addi(4, 4, 1)
	b.Jmp("head")
	b.Label("exit")
	b.Halt()
	return b.MustBuild()
}

// TestDecodedStreamMatchesTables: the stream the WPU dispatches from must
// agree, entry by entry, with the architectural code and the verified
// per-branch tables it replaced on the hot path.
func TestDecodedStreamMatchesTables(t *testing.T) {
	p := buildDecodedFixture(t)
	code := p.Code
	ds := p.Decoded()
	if len(ds) != len(code) {
		t.Fatalf("stream length %d, want %d", len(ds), len(code))
	}
	for pc := range code {
		d := &ds[pc]
		if got := d.Reassemble(); got != code[pc] {
			t.Errorf("pc %d: decoded %+v does not round-trip to %+v", pc, got, code[pc])
		}
		if !code[pc].Op.IsBranch() {
			continue
		}
		bi, ok := p.Branch(pc)
		if !ok {
			t.Fatalf("pc %d: branch missing from table", pc)
		}
		if got, want := d.Flags&isa.DFUniform != 0, bi.Uniform; got != want {
			t.Errorf("pc %d: DFUniform = %v, want %v", pc, got, want)
		}
		if got, want := d.Flags&isa.DFUniform != 0, p.UniformBranch(pc); got != want {
			t.Errorf("pc %d: DFUniform = %v, UniformBranch = %v", pc, got, want)
		}
		if got, want := d.Flags&isa.DFSubdiv != 0, bi.Subdividable; got != want {
			t.Errorf("pc %d: DFSubdiv = %v, want %v", pc, got, want)
		}
		wantReconv, ok := p.ReconvPC(pc)
		if !ok {
			wantReconv = NoIPdom
		}
		gotReconv := int(d.Reconv)
		if gotReconv < 0 {
			gotReconv = NoIPdom
		}
		if gotReconv != wantReconv {
			t.Errorf("pc %d: Reconv = %d, want %d", pc, gotReconv, wantReconv)
		}
	}
}

// TestDecodedDisassemblyUnchanged: the disassembler consumes the Inst form;
// reconstructing it from the decoded stream must yield the same text, so a
// program whose stream drifted from its code cannot disassemble cleanly.
func TestDecodedDisassemblyUnchanged(t *testing.T) {
	p := buildDecodedFixture(t)
	for pc, d := range p.Decoded() {
		if got, want := d.Reassemble().String(), p.Code[pc].String(); got != want {
			t.Errorf("pc %d: %q != %q", pc, got, want)
		}
	}
}
