// Static cost model: trip counts, cycle bounds, and subdivision-benefit
// scores (the quantitative layer on top of the divergence lattice in
// dataflow.go and the access-pattern analysis in memaccess.go).
//
// Three results per kernel, all computed at Build time against
// DefaultCostParams and recomputable for any launch geometry
// (CostModelFor, mirroring MemAccessFor):
//
//   - Affine trip-count analysis: for every natural loop, a [lo,hi] bound
//     on the per-thread, per-entry iteration count. Grid-stride loops
//     (induction a·tid+b stepping by a loop-invariant amount, compared
//     against a loop-invariant bound) get exact interval arithmetic over
//     the declared thread range; irreducible regions and loops whose
//     bound or step the interval-affine domain cannot pin get ⊤
//     (hi = CostInf) with a note saying why.
//
//   - Static cycle bounds: per-block execution-count intervals, per-pc
//     issue-count upper bounds, and a kernel-level [lo,hi] on the summed
//     per-WPU TickCycles plus per-bucket intervals for the eight-bucket
//     stall taxonomy (wpu.Stats.CycleBuckets order). The bounds are
//     claims checked by the trace-backed concordance test in
//     internal/workloads over all kernels × all schemes; the soundness
//     argument for each term is spelled out inline below and in
//     DESIGN.md.
//
//   - Subdivision-benefit scores: per divergent branch (§4.3) and per
//     latency-divergent load/store (§4.4), an estimate of the overlap
//     cycles dynamic warp subdivision could expose at that site, and a
//     static ranking of the 13 schemes per kernel derived from those
//     scores (a point-estimate heuristic, not a bound; EXPERIMENTS.md
//     records its agreement with measured best schemes).
//
// Soundness contract for the bounds (not the heuristic estimates): the
// launch runs cp.Threads threads under block distribution with the ABI of
// sim.Threads/WPU.Launch (r1 = tid ∈ [0, Threads−1], r2 = Threads,
// r3 = chunk-local index), registers declared via DeclareUniformRange
// hold launch values inside their declared interval (checked at Launch),
// and the machine is the cp geometry. Every interval claim is per
// thread: control divergence cannot break it because each thread
// executes its own instruction sequence regardless of how the warp is
// split, which is also why the trip analysis needs no divergence
// widening — a divergence-dependent bound simply evaluates to ⊤.
package program

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
)

// CostParams is the machine geometry the cycle bounds are computed
// against. Zero fields are filled from DefaultCostParams (and Threads
// from the kernel's DeclareThreads) — the MemParams convention.
type CostParams struct {
	// WPUs, Warps, Width give the machine shape (Table 3: 4 × 4 × 16).
	WPUs  int
	Warps int
	Width int
	// Threads is the launch thread count the bounds hold for; 0 means the
	// kernel's declared maximum (DeclareThreads), else one warp's width.
	Threads int
	// HitLat is the L1 hit latency (cycles a group waits on a hit).
	HitLat int
	// MemTxWorst bounds the end-to-end cycles one line transaction can
	// occupy the memory system, misses, queueing and writebacks included.
	MemTxWorst int
	// IMissLat and ICacheLines describe the per-WPU instruction cache
	// (cold-fetch latency and total line capacity).
	IMissLat    int
	ICacheLines int
	// Mem is the data-side geometry per-access transaction bounds are
	// recomputed against (memaccess.go).
	Mem MemParams
}

// CostInstPerLine is the instructions-per-icache-line packing the icache
// budget assumes; it must equal the WPU's icacheInstPerLine (pinned by a
// consistency test in internal/workloads).
const CostInstPerLine = 16

// DefaultCostParams is the Table 3 machine. MemTxWorst composes the
// worst path one transaction can take: L1 probe (3) + crossbar there and
// back with occupancy (2·(6+2)) + L2 lookup (30) + L2 probe (12) + memory
// bus both ways (2·8) + two DRAM accesses (2·100, the second covering a
// dirty-line writeback or queueing behind one) = 277.
var DefaultCostParams = CostParams{
	WPUs: 4, Warps: 4, Width: 16,
	HitLat: 3, MemTxWorst: 277,
	IMissLat: 42, ICacheLines: 128,
	Mem: DefaultMemParams,
}

// normalizedFor fills zero fields with defaults; Threads falls back to
// the kernel's declared maximum, then to one warp.
func (cp CostParams) normalizedFor(p *Program) CostParams {
	d := DefaultCostParams
	if cp.WPUs <= 0 {
		cp.WPUs = d.WPUs
	}
	if cp.Warps <= 0 {
		cp.Warps = d.Warps
	}
	if cp.Width <= 0 {
		cp.Width = d.Width
	}
	if cp.HitLat <= 0 {
		cp.HitLat = d.HitLat
	}
	if cp.MemTxWorst <= 0 {
		cp.MemTxWorst = d.MemTxWorst
	}
	if cp.IMissLat <= 0 {
		cp.IMissLat = d.IMissLat
	}
	if cp.ICacheLines <= 0 {
		cp.ICacheLines = d.ICacheLines
	}
	if cp.Threads <= 0 {
		if p != nil && p.maxThreads > 0 {
			cp.Threads = p.maxThreads
		} else {
			cp.Threads = cp.Width
		}
	}
	cp.Mem = cp.Mem.normalized()
	return cp
}

// CostInf is the saturation rail of the cost domain: any quantity at or
// beyond it means "unbounded" (⊤). Far below int64 overflow so sums of a
// few saturated terms cannot wrap.
const CostInf = int64(1) << 62

// CostInterval is a [Lo, Hi] claim about a dynamic count; Hi ≥ CostInf
// renders (and means) unbounded above.
type CostInterval struct{ Lo, Hi int64 }

// Unbounded reports whether the interval has no finite upper bound.
func (iv CostInterval) Unbounded() bool { return iv.Hi >= CostInf }

// Contains reports whether v satisfies the claim.
func (iv CostInterval) Contains(v int64) bool {
	return v >= iv.Lo && (iv.Unbounded() || v <= iv.Hi)
}

// String renders "[lo,hi]" with "inf" for an unbounded Hi.
func (iv CostInterval) String() string {
	if iv.Unbounded() {
		return fmt.Sprintf("[%d,inf]", iv.Lo)
	}
	return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi)
}

// Saturating arithmetic on [−CostInf, CostInf]. The direction-aware add
// pair keeps saturated endpoints sound: an upper-bound sum with any
// saturated-high operand is CostInf, a lower-bound sum with any
// saturated-low operand is −CostInf.

func clampCost(v int64) int64 {
	if v > CostInf {
		return CostInf
	}
	if v < -CostInf {
		return -CostInf
	}
	return v
}

func addHi(a, b int64) int64 {
	if a >= CostInf || b >= CostInf {
		return CostInf
	}
	return clampCost(a + b)
}

func addLo(a, b int64) int64 {
	if a <= -CostInf || b <= -CostInf {
		return -CostInf
	}
	return clampCost(a + b)
}

func satNeg(a int64) int64 { return clampCost(-a) }

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	neg := (a < 0) != (b < 0)
	aa, ab := a, b
	if aa < 0 {
		aa = -aa
	}
	if ab < 0 {
		ab = -ab
	}
	if aa >= CostInf || ab >= CostInf || aa > CostInf/ab {
		if neg {
			return -CostInf
		}
		return CostInf
	}
	p := aa * ab
	if neg {
		p = -p
	}
	return p
}

// ceilDivPos returns ⌈n/d⌉ for d ≥ 1, clamped to [0, CostInf].
func ceilDivPos(n, d int64) int64 {
	if n <= 0 {
		return 0
	}
	if n >= CostInf {
		return CostInf
	}
	if d <= 0 {
		return CostInf // defensive; callers guarantee d ≥ 1
	}
	return (n + d - 1) / d
}

// ival is a saturating integer interval (endpoints in [−CostInf, CostInf]).
type ival struct{ lo, hi int64 }

var fullIval = ival{-CostInf, CostInf}

func (a ival) add(b ival) ival { return ival{addLo(a.lo, b.lo), addHi(a.hi, b.hi)} }
func (a ival) addK(k int64) ival {
	k = clampCost(k)
	return ival{addLo(a.lo, k), addHi(a.hi, k)}
}
func (a ival) neg() ival        { return ival{satNeg(a.hi), satNeg(a.lo)} }
func (a ival) hull(b ival) ival { return ival{min(a.lo, b.lo), max(a.hi, b.hi)} }
func (a ival) mulK(k int64) ival {
	x, y := satMul(a.lo, k), satMul(a.hi, k)
	if x > y {
		x, y = y, x
	}
	return ival{x, y}
}
func (a ival) mul(b ival) ival {
	lo, hi := satMul(a.lo, b.lo), satMul(a.lo, b.lo)
	for _, v := range [...]int64{satMul(a.lo, b.hi), satMul(a.hi, b.lo), satMul(a.hi, b.hi)} {
		lo, hi = min(lo, v), max(hi, v)
	}
	return ival{lo, hi}
}

// cval is the interval-affine abstract value: when top is false it claims
// v(t) − ct·t ∈ c0 for every thread id t ∈ [0, Threads−1]. Note this is a
// per-thread claim only — unlike dataflow.go's absVal it says nothing
// about warp uniformity, which is what makes range-producing transfer
// rules (ANDI, MIN/MAX, comparisons) sound here.
type cval struct {
	top bool
	ct  int64
	c0  ival
}

var topVal = cval{top: true}

func cconst(k int64) cval {
	k = clampCost(k)
	return cval{c0: ival{k, k}}
}

// rng projects the claim onto a plain interval over t ∈ [0, tmax].
func (v cval) rng(tmax int64) ival {
	if v.top {
		return fullIval
	}
	if v.ct == 0 {
		return v.c0
	}
	span := satMul(v.ct, tmax)
	if span >= 0 {
		return ival{v.c0.lo, addHi(v.c0.hi, span)}
	}
	return ival{addLo(v.c0.lo, span), v.c0.hi}
}

func (v cval) asConst() (int64, bool) {
	if !v.top && v.ct == 0 && v.c0.lo == v.c0.hi {
		return v.c0.lo, true
	}
	return 0, false
}

// cjoin is the lattice join; mismatched tid coefficients demote both
// sides to their plain ranges (ct = 0) and hull.
func cjoin(a, b cval, tmax int64) cval {
	if a.top || b.top {
		return topVal
	}
	if a.ct == b.ct {
		return cval{ct: a.ct, c0: a.c0.hull(b.c0)}
	}
	return cval{c0: a.rng(tmax).hull(b.rng(tmax))}
}

// cwiden jumps a still-growing interval endpoint to its rail so loop
// fixpoints terminate. ct changes (which are monotone toward 0 under
// cjoin) pass through un-widened; growth after that widens.
func cwiden(old, nw cval) cval {
	if old.top || nw.top {
		return topVal
	}
	if old.ct != nw.ct {
		return nw
	}
	w := nw
	if nw.c0.lo < old.c0.lo {
		w.c0.lo = -CostInf
	}
	if nw.c0.hi > old.c0.hi {
		w.c0.hi = CostInf
	}
	return w
}

// cstate is the abstract register file at one program point.
type cstate [isa.NumRegs]cval

func cadd(a, b cval, sign int64) cval {
	if a.top || b.top {
		return topVal
	}
	ct := a.ct + sign*b.ct // |ct| ≤ affLimit each; no overflow
	if ct > affLimit || ct < -affLimit {
		return topVal
	}
	c0 := b.c0
	if sign < 0 {
		c0 = c0.neg()
	}
	return cval{ct: ct, c0: a.c0.add(c0)}
}

func cscale(a cval, k int64) cval {
	if a.top {
		return topVal
	}
	ct, ok := mulRange(a.ct, k)
	if !ok {
		return topVal
	}
	return cval{ct: ct, c0: a.c0.mulK(k)}
}

// costStep is the interval-affine transfer function. Anything without a
// listed rule (loads, divides, logic on unknown values, float data ops)
// conservatively produces ⊤.
func costStep(in isa.Inst, s *cstate, tmax int64) {
	if !in.Op.WritesDst() || in.Dst == 0 {
		return
	}
	a, b := s[in.SrcA], s[in.SrcB]
	out := topVal
	switch in.Op {
	case isa.MOVI:
		out = cconst(in.Imm)
	case isa.MOV:
		out = a
	case isa.ADD:
		out = cadd(a, b, 1)
	case isa.SUB:
		out = cadd(a, b, -1)
	case isa.ADDI:
		if !a.top {
			out = cval{ct: a.ct, c0: a.c0.addK(in.Imm)}
		}
	case isa.MULI:
		out = cscale(a, in.Imm)
	case isa.SHLI:
		if k := uint(in.Imm & 63); k <= 40 {
			out = cscale(a, int64(1)<<k)
		}
	case isa.MUL:
		if ka, ok := a.asConst(); ok {
			out = cscale(b, ka)
		} else if kb, ok := b.asConst(); ok {
			out = cscale(a, kb)
		} else if !a.top && !b.top {
			out = cval{c0: a.rng(tmax).mul(b.rng(tmax))}
		}
	case isa.DIV:
		// Go-style truncated division (÷0 traps quietly to 0). With a
		// non-negative dividend and a strictly positive divisor the
		// quotient is monotone in both operands.
		if !a.top && !b.top {
			ra, rb := a.rng(tmax), b.rng(tmax)
			if ra.lo >= 0 && rb.lo >= 1 {
				out = cval{c0: ival{ra.lo / rb.hi, ra.hi / rb.lo}}
			}
		}
	case isa.REM:
		// With a ≥ 0 and b ≥ 1 the remainder is in [0, b-1] and never
		// exceeds the dividend.
		if !a.top && !b.top {
			ra, rb := a.rng(tmax), b.rng(tmax)
			if ra.lo >= 0 && rb.lo >= 1 {
				out = cval{c0: ival{0, min(ra.hi, rb.hi-1)}}
			}
		}
	case isa.ANDI:
		// Two's complement: x & m with m ≥ 0 has only bits of m set, so
		// the result lies in [0, m] for any x.
		if in.Imm >= 0 {
			out = cval{c0: ival{0, clampCost(in.Imm)}}
		}
	case isa.SLT, isa.SLE, isa.SEQ, isa.SNE, isa.SLTI, isa.FSLT, isa.FSLE:
		out = cval{c0: ival{0, 1}}
	case isa.MIN:
		if !a.top && !b.top {
			ra, rb := a.rng(tmax), b.rng(tmax)
			out = cval{c0: ival{min(ra.lo, rb.lo), min(ra.hi, rb.hi)}}
		}
	case isa.MAX:
		if !a.top && !b.top {
			ra, rb := a.rng(tmax), b.rng(tmax)
			out = cval{c0: ival{max(ra.lo, rb.lo), max(ra.hi, rb.hi)}}
		}
	}
	s[in.Dst] = out
}

// UniformRange declares a launch-uniform input register together with the
// interval its launch value is promised to lie in — the piece of launcher
// knowledge the trip-count analysis needs to bound data-dependent loops.
// DeclareUniformRange implies DeclareUniformInputs; the WPU checks the
// promise against the actual register file at Launch.
type UniformRange struct {
	Reg    isa.Reg
	Lo, Hi int64
}

// DeclareUniformRange declares reg as a warp-uniform scalar input whose
// launch value lies in [lo, hi] (inclusive).
func (b *Builder) DeclareUniformRange(reg isa.Reg, lo, hi int64) {
	b.DeclareUniformInputs(reg)
	b.uranges = append(b.uranges, UniformRange{Reg: reg, Lo: lo, Hi: hi})
}

// UniformRanges returns the declared input ranges (for Launch-time
// validation and tooling).
func (p *Program) UniformRanges() []UniformRange {
	return append([]UniformRange(nil), p.uranges...)
}

// costEntry is the abstract register file at kernel entry under the
// launch ABI (block distribution: r3 is the chunk-local index).
func (p *Program) costEntry(cp CostParams) cstate {
	var s cstate
	for r := range s {
		s[r] = topVal
	}
	T := int64(cp.Threads)
	s[0] = cconst(0)
	s[1] = cval{ct: 1}
	s[2] = cconst(T)
	per := (T + int64(cp.WPUs) - 1) / int64(cp.WPUs)
	s[3] = cval{c0: ival{0, max(per-1, 0)}}
	for _, u := range p.uranges {
		if u.Reg > 0 && u.Reg < isa.NumRegs {
			s[u.Reg] = cval{c0: ival{clampCost(u.Lo), clampCost(u.Hi)}}
		}
	}
	return s
}

// costFixpoint runs the forward worklist fixpoint of the interval-affine
// domain with widening (after two joins per block) and a sweep cap that
// force-tops everything as a last-resort termination guarantee.
func (p *Program) costFixpoint(cp CostParams, reach []bool) ([]cstate, []bool) {
	n := len(p.Blocks)
	tmax := max(int64(cp.Threads)-1, 0)
	in := make([]cstate, n)
	seen := make([]bool, n)
	joins := make([]int, n)
	in[0] = p.costEntry(cp)
	seen[0] = true
	maxSweeps := 8*n + 32
	for sweep := 0; ; sweep++ {
		changed := false
		for i := 0; i < n; i++ {
			if !reach[i] || !seen[i] {
				continue
			}
			s := in[i]
			for pc := p.Blocks[i].Start; pc < p.Blocks[i].End; pc++ {
				costStep(p.Code[pc], &s, tmax)
			}
			for _, su := range p.Blocks[i].Succ {
				if !seen[su] {
					in[su] = s
					seen[su] = true
					changed = true
					continue
				}
				updated := in[su]
				any := false
				for r := range updated {
					j := cjoin(updated[r], s[r], tmax)
					if joins[su] >= 2 {
						j = cwiden(updated[r], j)
					}
					if j != updated[r] {
						updated[r] = j
						any = true
					}
				}
				if any {
					in[su] = updated
					joins[su]++
					changed = true
				}
			}
		}
		if !changed {
			break
		}
		if sweep >= maxSweeps {
			for i := range in {
				for r := range in[i] {
					in[i][r] = topVal
				}
			}
			break
		}
	}
	return in, seen
}

// costBlockOut runs the transfer function over one block.
func (p *Program) costBlockOut(in cstate, b Block, tmax int64) cstate {
	s := in
	for pc := b.Start; pc < b.End; pc++ {
		costStep(p.Code[pc], &s, tmax)
	}
	return s
}

// dominators computes forward dominator sets with the same O(n²) bitset
// fixpoint style as cfg.go's postDominators (deliberately simple; kernels
// are tens of blocks). dom[v] covers only reachable v; block 0 is entry.
func dominators(blocks []Block, reach []bool) [][]uint64 {
	n := len(blocks)
	words := (n + 63) / 64
	preds := make([][]int, n)
	for i := range blocks {
		if !reach[i] {
			continue
		}
		for _, s := range blocks[i].Succ {
			preds[s] = append(preds[s], i)
		}
	}
	full := make([]uint64, words)
	for v := 0; v < n; v++ {
		if reach[v] {
			full[v/64] |= 1 << (v % 64)
		}
	}
	dom := make([][]uint64, n)
	for v := 0; v < n; v++ {
		dom[v] = make([]uint64, words)
		if !reach[v] {
			continue
		}
		if v == 0 {
			dom[0][0] = 1
		} else {
			copy(dom[v], full)
		}
	}
	tmp := make([]uint64, words)
	for changed := true; changed; {
		changed = false
		for v := 1; v < n; v++ {
			if !reach[v] {
				continue
			}
			copy(tmp, full)
			for _, pd := range preds[v] {
				if !reach[pd] {
					continue
				}
				for i := range tmp {
					tmp[i] &= dom[pd][i]
				}
			}
			tmp[v/64] |= 1 << (v % 64)
			same := true
			for i := range tmp {
				if tmp[i] != dom[v][i] {
					same = false
					break
				}
			}
			if !same {
				copy(dom[v], tmp)
				changed = true
			}
		}
	}
	return dom
}

func domBit(set []uint64, v int) bool { return set[v/64]&(1<<(v%64)) != 0 }

// postDomSets computes full post-dominator bitsets (the set version of
// cfg.go's postDominators): pdom[v] holds every block that post-dominates
// v. Blocks that cannot reach the exit get only themselves — their maximal
// fixpoint is the vacuous full set, and a terminating run never executes
// them, so no guarantee may be derived from their sets.
func postDomSets(blocks []Block, reach []bool) [][]uint64 {
	n := len(blocks)
	words := (n + 63) / 64
	full := make([]uint64, words)
	for v := 0; v < n; v++ {
		if reach[v] {
			full[v/64] |= 1 << (v % 64)
		}
	}
	pdom := make([][]uint64, n)
	for v := 0; v < n; v++ {
		pdom[v] = make([]uint64, words)
		if !reach[v] {
			continue
		}
		if len(blocks[v].Succ) == 0 {
			pdom[v][v/64] |= 1 << (v % 64)
		} else {
			copy(pdom[v], full)
		}
	}
	tmp := make([]uint64, words)
	for changed := true; changed; {
		changed = false
		for v := n - 1; v >= 0; v-- {
			if !reach[v] || len(blocks[v].Succ) == 0 {
				continue
			}
			copy(tmp, full)
			for _, s := range blocks[v].Succ {
				for i := range tmp {
					tmp[i] &= pdom[s][i]
				}
			}
			tmp[v/64] |= 1 << (v % 64)
			same := true
			for i := range tmp {
				if tmp[i] != pdom[v][i] {
					same = false
					break
				}
			}
			if !same {
				copy(pdom[v], tmp)
				changed = true
			}
		}
	}
	canExit := make([]bool, n)
	for changed := true; changed; {
		changed = false
		for v := 0; v < n; v++ {
			if canExit[v] || !reach[v] {
				continue
			}
			ok := len(blocks[v].Succ) == 0
			for _, s := range blocks[v].Succ {
				if canExit[s] {
					ok = true
				}
			}
			if ok {
				canExit[v] = true
				changed = true
			}
		}
	}
	for v := 0; v < n; v++ {
		if reach[v] && !canExit[v] {
			for i := range pdom[v] {
				pdom[v][i] = 0
			}
			pdom[v][v/64] |= 1 << (v % 64)
		}
	}
	return pdom
}

// costLoop is one natural loop (back edges grouped by header).
type costLoop struct {
	header   int
	inLoop   []bool
	backSrcs []int
}

// naturalLoops finds back edges (u→h with h dominating u) and builds the
// natural loop of each header, sorted by header ID. It also reports which
// reachable blocks sit in irreducible cycles: remove the back edges and
// Kahn-toposort; whatever cannot be ordered is in a cycle no dominating
// header explains.
func naturalLoops(blocks []Block, reach []bool, dom [][]uint64) (loops []costLoop, irreducible []bool) {
	n := len(blocks)
	preds := make([][]int, n)
	for i := range blocks {
		if !reach[i] {
			continue
		}
		for _, s := range blocks[i].Succ {
			preds[s] = append(preds[s], i)
		}
	}
	byHeader := make(map[int][]int)
	isBack := make(map[[2]int]bool)
	for u := 0; u < n; u++ {
		if !reach[u] {
			continue
		}
		for _, h := range blocks[u].Succ {
			if domBit(dom[u], h) {
				byHeader[h] = append(byHeader[h], u)
				isBack[[2]int{u, h}] = true
			}
		}
	}
	headers := make([]int, 0, len(byHeader))
	for h := range byHeader {
		headers = append(headers, h)
	}
	sort.Ints(headers)
	for _, h := range headers {
		lp := costLoop{header: h, inLoop: make([]bool, n), backSrcs: byHeader[h]}
		lp.inLoop[h] = true
		stack := append([]int(nil), byHeader[h]...)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if lp.inLoop[v] {
				continue
			}
			lp.inLoop[v] = true
			stack = append(stack, preds[v]...)
		}
		loops = append(loops, lp)
	}

	irreducible = make([]bool, n)
	indeg := make([]int, n)
	for u := 0; u < n; u++ {
		if !reach[u] {
			continue
		}
		for _, s := range blocks[u].Succ {
			if !isBack[[2]int{u, s}] {
				indeg[s]++
			}
		}
	}
	var q []int
	done := 0
	total := 0
	for v := 0; v < n; v++ {
		if reach[v] {
			total++
			if indeg[v] == 0 {
				q = append(q, v)
			}
		}
	}
	for len(q) > 0 {
		v := q[len(q)-1]
		q = q[:len(q)-1]
		done++
		for _, s := range blocks[v].Succ {
			if isBack[[2]int{v, s}] {
				continue
			}
			indeg[s]--
			if indeg[s] == 0 {
				q = append(q, s)
			}
		}
	}
	if done < total {
		for v := 0; v < n; v++ {
			if reach[v] && indeg[v] > 0 {
				irreducible[v] = true
			}
		}
	}
	return loops, irreducible
}

// LoopCost is one natural loop's trip-count verdict.
type LoopCost struct {
	// Header is the loop-header block ID; HeaderPC its first instruction.
	Header   int
	HeaderPC int
	// Induction is the recognised induction register (0 when the loop was
	// not recognised and the bound is the trivial [0, inf]).
	Induction isa.Reg
	// Trips bounds the per-thread body executions per loop entry.
	Trips CostInterval
	// Note says why a loop fell back to ⊤ (empty when recognised).
	Note string
}

// loopRel is the continue-relation of the recognised loop test.
type loopRel uint8

const (
	relLT loopRel = iota // continue while ind <  bound
	relLE                // continue while ind <= bound
	relGT                // continue while ind >  bound
	relGE                // continue while ind >= bound
)

func negateRel(r loopRel) loopRel {
	switch r {
	case relLT:
		return relGE
	case relLE:
		return relGT
	case relGT:
		return relLE
	default:
		return relLT
	}
}

// loopTrips recognises the grid-stride shape — header ends in a
// conditional branch over a compare of an induction register against a
// loop-invariant bound, every back-edge source advances the induction by
// a loop-invariant positively- (or negatively-) signed step — and turns
// it into interval trip bounds. Anything else returns [0, inf] with a
// note. The second result reports whether the Lo bound is also valid as
// a per-entry guarantee (single unconditional induction step and all
// exits at the header).
func (p *Program) loopTrips(lp *costLoop, in []cstate, dom [][]uint64, allLoops []costLoop, tmax int64, cp CostParams) (LoopCost, bool) {
	h := p.Blocks[lp.header]
	lc := LoopCost{Header: lp.header, HeaderPC: h.Start, Trips: CostInterval{0, CostInf}}
	fail := func(note string) (LoopCost, bool) {
		lc.Note = note
		return lc, false
	}

	term := p.Code[h.End-1]
	if !term.Op.IsBranch() {
		return fail("header does not end in a conditional branch")
	}
	startToID := make(map[int]int, len(p.Blocks))
	for _, b := range p.Blocks {
		startToID[b.Start] = b.ID
	}
	takenBlk, ok := startToID[term.Target]
	if !ok {
		return fail("branch target is not a block leader")
	}
	fallBlk, ok := startToID[h.End]
	if !ok {
		return fail("header has no fallthrough block")
	}
	var cont, exit int
	switch {
	case lp.inLoop[fallBlk] && !lp.inLoop[takenBlk]:
		cont, exit = fallBlk, takenBlk
	case lp.inLoop[takenBlk] && !lp.inLoop[fallBlk]:
		cont, exit = takenBlk, fallBlk
	default:
		return fail("header branch does not exit the loop")
	}
	_ = exit
	contWhileTrue := cont == fallBlk
	if term.Op == isa.BNEZ {
		contWhileTrue = cont == takenBlk
	}

	// The predicate must be a compare computed in the header, with its
	// operands untouched between block entry, the compare, and the branch.
	pred := term.SrcA
	cmpPC := -1
	for pc := h.End - 2; pc >= h.Start; pc-- {
		if d, isDef := instDef(p.Code[pc]); isDef && d == pred {
			cmpPC = pc
			break
		}
	}
	if cmpPC < 0 {
		return fail("loop predicate is not defined in the header")
	}
	cmp := p.Code[cmpPC]
	if cmp.Op != isa.SLT && cmp.Op != isa.SLE && cmp.Op != isa.SLTI {
		return fail("loop predicate is not a signed compare")
	}
	touched := func(lo, hi int, regs ...isa.Reg) bool {
		for pc := lo; pc <= hi; pc++ {
			if d, isDef := instDef(p.Code[pc]); isDef {
				for _, r := range regs {
					if d == r && r != 0 {
						return true
					}
				}
			}
		}
		return false
	}
	if touched(cmpPC+1, h.End-2, pred, cmp.SrcA, cmp.SrcB) ||
		touched(h.Start, cmpPC-1, cmp.SrcA, cmp.SrcB) {
		return fail("compare operands are redefined inside the header")
	}

	defsInLoop := func(x isa.Reg) []int {
		var pcs []int
		if x == 0 {
			return pcs
		}
		for bid, inL := range lp.inLoop {
			if !inL {
				continue
			}
			for pc := p.Blocks[bid].Start; pc < p.Blocks[bid].End; pc++ {
				if d, isDef := instDef(p.Code[pc]); isDef && d == x {
					pcs = append(pcs, pc)
				}
			}
		}
		return pcs
	}
	headerIn := in[lp.header]
	blockOf := p.blockOf()

	// indStep checks whether x is an induction register: every in-loop
	// def advances it by a loop-invariant step, all steps share a sign,
	// and every back-edge source block contains one (so each iteration
	// provably makes at least the minimum-step progress — the fact the
	// Hi formula rests on).
	indStep := func(x isa.Reg) (ival, []int, bool) {
		defs := defsInLoop(x)
		if len(defs) == 0 {
			return ival{}, nil, false
		}
		var st ival
		first := true
		for _, pc := range defs {
			def := p.Code[pc]
			var s ival
			switch def.Op {
			case isa.ADDI:
				if def.SrcA != x {
					return ival{}, nil, false
				}
				s = ival{clampCost(def.Imm), clampCost(def.Imm)}
			case isa.ADD:
				var other isa.Reg
				switch {
				case def.SrcA == x && def.SrcB != x:
					other = def.SrcB
				case def.SrcB == x && def.SrcA != x:
					other = def.SrcA
				default:
					return ival{}, nil, false
				}
				if len(defsInLoop(other)) > 0 {
					return ival{}, nil, false
				}
				s = headerIn[other].rng(tmax)
			case isa.SUB:
				if def.SrcA != x || def.SrcB == x {
					return ival{}, nil, false
				}
				if len(defsInLoop(def.SrcB)) > 0 {
					return ival{}, nil, false
				}
				s = headerIn[def.SrcB].rng(tmax).neg()
			default:
				return ival{}, nil, false
			}
			if first {
				st, first = s, false
			} else {
				st = st.hull(s)
			}
		}
		if !(st.lo >= 1 || st.hi <= -1) {
			return ival{}, nil, false
		}
		for _, src := range lp.backSrcs {
			has := false
			for _, pc := range defs {
				if blockOf[pc] == src {
					has = true
					break
				}
			}
			if !has {
				return ival{}, nil, false
			}
		}
		return st, defs, true
	}

	var (
		indReg  isa.Reg
		step    ival
		indDefs []int
		boundIv ival
		rel     loopRel
	)
	if cmp.Op == isa.SLTI {
		s, defs, ok := indStep(cmp.SrcA)
		if !ok {
			return fail("no recognisable induction register")
		}
		indReg, step, indDefs = cmp.SrcA, s, defs
		boundIv = ival{clampCost(cmp.Imm), clampCost(cmp.Imm)}
		rel = relLT
	} else {
		sa, da, oka := indStep(cmp.SrcA)
		sb, db, okb := indStep(cmp.SrcB)
		switch {
		case oka && !okb:
			indReg, step, indDefs = cmp.SrcA, sa, da
			if len(defsInLoop(cmp.SrcB)) > 0 {
				return fail("loop bound is modified inside the loop")
			}
			boundIv = headerIn[cmp.SrcB].rng(tmax)
			rel = relLT
			if cmp.Op == isa.SLE {
				rel = relLE
			}
		case okb && !oka:
			indReg, step, indDefs = cmp.SrcB, sb, db
			if len(defsInLoop(cmp.SrcA)) > 0 {
				return fail("loop bound is modified inside the loop")
			}
			boundIv = headerIn[cmp.SrcA].rng(tmax)
			rel = relGT
			if cmp.Op == isa.SLE {
				rel = relGE
			}
		default:
			return fail("no recognisable induction register")
		}
	}
	if !contWhileTrue {
		rel = negateRel(rel)
	}
	// Normalise ≤/≥ to strict relations by shifting the bound.
	switch rel {
	case relLE:
		boundIv, rel = boundIv.addK(1), relLT
	case relGE:
		boundIv, rel = boundIv.addK(-1), relGT
	}

	// Induction value at loop entry: join of the out-states of the
	// header's outside-loop predecessors (plus the ABI entry state when
	// the header is the entry block).
	initIv := ival{CostInf, -CostInf}
	haveInit := false
	if lp.header == 0 {
		e := p.costEntry(cp)
		initIv, haveInit = e[indReg].rng(tmax), true
	}
	for bid := range p.Blocks {
		if lp.inLoop[bid] {
			continue
		}
		isPred := false
		for _, s := range p.Blocks[bid].Succ {
			if s == lp.header {
				isPred = true
			}
		}
		if !isPred {
			continue
		}
		out := p.costBlockOut(in[bid], p.Blocks[bid], tmax)
		r := out[indReg].rng(tmax)
		if haveInit {
			initIv = initIv.hull(r)
		} else {
			initIv, haveInit = r, true
		}
	}
	if !haveInit {
		return fail("loop header has no entry edge")
	}

	var trips CostInterval
	switch {
	case rel == relLT && step.lo >= 1:
		trips.Hi = ceilDivPos(addHi(boundIv.hi, satNeg(initIv.lo)), step.lo)
		trips.Lo = ceilDivPos(addLo(boundIv.lo, satNeg(initIv.hi)), step.hi)
	case rel == relGT && step.hi <= -1:
		trips.Hi = ceilDivPos(addHi(initIv.hi, satNeg(boundIv.lo)), satNeg(step.hi))
		trips.Lo = ceilDivPos(addLo(initIv.lo, satNeg(boundIv.hi)), satNeg(step.lo))
	default:
		return fail("step direction disagrees with the loop condition")
	}

	// The Lo bound additionally needs every iteration to take exactly one
	// step (a single induction def outside any inner loop) and every loop
	// exit to pass through the header test.
	loValid := len(indDefs) == 1
	if loValid {
		defBlk := blockOf[indDefs[0]]
		for _, src := range lp.backSrcs {
			if !domBit(dom[src], defBlk) {
				loValid = false
			}
		}
		for _, other := range allLoops {
			if other.header == lp.header || !lp.inLoop[other.header] {
				continue
			}
			if other.inLoop[defBlk] {
				loValid = false
			}
		}
		for bid, inL := range lp.inLoop {
			if !inL || bid == lp.header {
				continue
			}
			// A program-exit block inside the body (no successors) can cut
			// an entry short of its trip bound just like a side exit.
			if len(p.Blocks[bid].Succ) == 0 {
				loValid = false
			}
			for _, s := range p.Blocks[bid].Succ {
				if !lp.inLoop[s] {
					loValid = false
				}
			}
		}
	}
	if !loValid {
		trips.Lo = 0
	}
	lc.Induction = indReg
	lc.Trips = trips
	return lc, loValid
}

// BlockCost is one basic block's per-thread execution-count bounds.
type BlockCost struct {
	ID    int
	Execs CostInterval
}

// SiteBenefit is the §4.3/§4.4 subdivision-benefit estimate for one
// divergent branch or latency-divergent memory site: roughly the cycles
// of useful overlap subdividing there could expose across the launch.
// A heuristic score for ranking sites and schemes, not a bound.
type SiteBenefit struct {
	PC      int
	Kind    string // "branch", "ld", or "st"
	Class   string
	Benefit float64
}

// SchemeScore is one scheme's predicted cycle estimate; lower is better.
type SchemeScore struct {
	Scheme string
	Est    float64
}

// SchemeTraits names the mechanism flags of one scheme the cost model
// reasons about. CostSchemes lists all 13 in wpu.AllSchemes order; a
// consistency test in internal/workloads pins names and flags against
// wpu.Scheme.Apply.
type SchemeTraits struct {
	Name             string
	SubdivBranch     bool // subdivide on divergent branches
	PCReconv         bool // PC-based re-convergence
	MemSplit         bool // subdivide on divergent memory accesses
	MemLazy          bool
	MemRevive        bool
	MemPredictive    bool
	MemBranchLimited bool
	Slip             bool
	SlipBypass       bool
}

// UsesWST reports whether the scheme can create warp splits at all (and
// so can ever see wst-full or slot-wait stalls).
func (t SchemeTraits) UsesWST() bool { return t.SubdivBranch || t.MemSplit || t.Slip }

// CostSchemes are the 13 schemes in wpu.AllSchemes order.
var CostSchemes = []SchemeTraits{
	{Name: "Conv"},
	{Name: "DWS.BranchOnly.Stack", SubdivBranch: true},
	{Name: "DWS.BranchOnly", SubdivBranch: true, PCReconv: true},
	{Name: "DWS.AggressSplit.BL", PCReconv: true, MemSplit: true, MemBranchLimited: true},
	{Name: "DWS.LazySplit.BL", PCReconv: true, MemSplit: true, MemLazy: true, MemBranchLimited: true},
	{Name: "DWS.ReviveSplit.BL", PCReconv: true, MemSplit: true, MemRevive: true, MemBranchLimited: true},
	{Name: "DWS.ReviveSplit.MemOnly", PCReconv: true, MemSplit: true, MemRevive: true},
	{Name: "DWS.AggressSplit", SubdivBranch: true, PCReconv: true, MemSplit: true},
	{Name: "DWS.LazySplit", SubdivBranch: true, PCReconv: true, MemSplit: true, MemLazy: true},
	{Name: "DWS.ReviveSplit", SubdivBranch: true, PCReconv: true, MemSplit: true, MemRevive: true},
	{Name: "DWS.PredictiveSplit", SubdivBranch: true, PCReconv: true, MemSplit: true, MemPredictive: true},
	{Name: "Slip", Slip: true},
	{Name: "Slip.BranchBypass", Slip: true, SlipBypass: true, SubdivBranch: true, PCReconv: true},
}

// CostBucketLabels mirrors wpu.CycleBucketLabels (same strings, same
// order); the program package cannot import wpu, so a consistency test
// in internal/workloads pins the two.
var CostBucketLabels = [8]string{
	"busy",
	"mem_coherent",
	"mem_divergent",
	"barrier",
	"icache",
	"wst_full",
	"slot_wait",
	"idle",
}

// CostModel is the full static verdict for one (kernel, geometry) pair.
type CostModel struct {
	Params CostParams
	// Loops has one entry per natural loop, by header block ID.
	Loops []LoopCost
	// Blocks has one entry per basic block: per-thread execution bounds.
	Blocks []BlockCost
	// Issues bounds, per pc, the SIMD issues of that instruction summed
	// over the whole launch (all WPUs, all warps, all splits).
	Issues []CostInterval
	// Ticks bounds the summed per-WPU TickCycles of the launch.
	Ticks CostInterval
	// Buckets bounds each taxonomy bucket (CostBucketLabels order) for
	// the most permissive scheme; BucketBoundsFor tightens per scheme.
	Buckets [8]CostInterval
	// Predicted is the heuristic point-estimate split over the first four
	// buckets (busy, mem_coherent, mem_divergent, barrier), as fractions
	// summing to 1 (all zero for an empty estimate).
	Predicted [4]float64
	// Sites are the per-branch and per-access subdivision benefits, in pc
	// order.
	Sites []SiteBenefit
	// Ranking orders the 13 schemes by predicted cycles, best first.
	Ranking []SchemeScore
}

// BucketBoundsFor tightens the bucket bounds for one scheme: a scheme
// that can never create warp splits can never stall on a full WST or on
// scheduler slots.
func (m *CostModel) BucketBoundsFor(t SchemeTraits) [8]CostInterval {
	b := m.Buckets
	if !t.UsesWST() {
		b[5] = CostInterval{}
		b[6] = CostInterval{}
	}
	return b
}

// costGeometry is the block-distribution launch shape.
type costGeom struct {
	activeWPUs int
	perWPU     []int64 // threads per active WPU
	totalWarps int64
}

func costGeometry(cp CostParams) costGeom {
	var g costGeom
	T := int64(cp.Threads)
	per := (T + int64(cp.WPUs) - 1) / int64(cp.WPUs)
	rem := T
	for w := 0; w < cp.WPUs && rem > 0; w++ {
		c := min(per, rem)
		rem -= c
		g.perWPU = append(g.perWPU, c)
		g.totalWarps += (c + int64(cp.Width) - 1) / int64(cp.Width)
		g.activeWPUs++
	}
	return g
}

// CostModel returns the model recorded at Build time (DefaultCostParams
// geometry, declared thread count).
func (p *Program) CostModel() *CostModel { return p.cost }

// CostModelFor recomputes the model for an arbitrary launch geometry —
// the MemAccessFor analogue, used by the concordance harness with the
// per-step thread count.
func (p *Program) CostModelFor(cp CostParams) *CostModel {
	cp = cp.normalizedFor(p)
	m := &CostModel{Params: cp}
	reach := p.reachableBlocks()
	in, _ := p.costFixpoint(cp, reach)
	dom := dominators(p.Blocks, reach)
	loops, irreducible := naturalLoops(p.Blocks, reach, dom)
	tmax := max(int64(cp.Threads)-1, 0)

	// Trip counts per loop.
	loValid := make([]bool, len(loops))
	for i := range loops {
		lc, lv := p.loopTrips(&loops[i], in, dom, loops, tmax, cp)
		if irreducible[loops[i].header] {
			lc.Trips = CostInterval{0, CostInf}
			lc.Note = "irreducible region"
			lv = false
		}
		m.Loops = append(m.Loops, lc)
		loValid[i] = lv
	}

	// Per-block execution upper bounds: product over enclosing loops of
	// tripsHi — plus one extra header execution per entry for the final
	// failing test.
	execs := make([]CostInterval, len(p.Blocks))
	for bid := range p.Blocks {
		if !reach[bid] {
			continue
		}
		hi := int64(1)
		for i, lp := range loops {
			if !lp.inLoop[bid] {
				continue
			}
			mult := m.Loops[i].Trips.Hi
			if bid == lp.header {
				mult = addHi(mult, 1)
			}
			hi = satMul(hi, mult)
		}
		if irreducible[bid] {
			hi = CostInf
		}
		execs[bid] = CostInterval{0, hi}
	}

	// Per-block execution lower bounds, valid for terminated runs (the
	// only ones whose cycle totals we ever compare against). A monotone
	// fixpoint over two guaranteed-execution rules:
	//
	//  (A) if x post-dominates b and both sit in exactly the same set of
	//      loops, every execution of b is followed by one of x before the
	//      innermost common header can be re-reached, so lo(x) ≥ lo(b);
	//  (B) a recognised loop is entered at least lo(p) times for each
	//      outside predecessor p of its header whose only successor is
	//      the header; per entry the header runs tripsLo+1 times and any
	//      in-loop block dominating every back edge runs tripsLo times.
	pdom := postDomSets(p.Blocks, reach)
	sameLoops := func(a, b int) bool {
		for _, lp := range loops {
			if lp.inLoop[a] != lp.inLoop[b] {
				return false
			}
		}
		return true
	}
	for iter := 0; iter < 4*len(p.Blocks)+8; iter++ {
		changed := false
		raise := func(bid int, v int64) {
			if v > execs[bid].Lo {
				execs[bid].Lo = v
				changed = true
			}
		}
		if reach[0] && execs[0].Lo < 1 && !func() bool {
			for _, lp := range loops {
				if lp.inLoop[0] {
					return true
				}
			}
			return false
		}() {
			raise(0, 1)
		}
		for bid := range p.Blocks {
			if !reach[bid] || execs[bid].Lo == 0 {
				continue
			}
			for x := range p.Blocks {
				if x != bid && reach[x] && domBit(pdom[bid], x) && sameLoops(x, bid) {
					raise(x, execs[bid].Lo)
				}
			}
		}
		for i, lp := range loops {
			h := lp.header
			if irreducible[h] {
				continue
			}
			entry := int64(0)
			if h == 0 {
				entry = 1
			}
			for bid, b := range p.Blocks {
				if !reach[bid] || lp.inLoop[bid] || len(b.Succ) != 1 || b.Succ[0] != h {
					continue
				}
				entry = addHi(entry, execs[bid].Lo)
			}
			if entry == 0 {
				continue
			}
			tripsLo := m.Loops[i].Trips.Lo
			raise(h, clampCost(satMul(entry, tripsLo+1)))
			if !loValid[i] || tripsLo == 0 {
				continue
			}
			for bid := range p.Blocks {
				if !lp.inLoop[bid] || bid == h {
					continue
				}
				domsAll := true
				for _, src := range lp.backSrcs {
					if !domBit(dom[src], bid) {
						domsAll = false
					}
				}
				if domsAll {
					raise(bid, clampCost(satMul(entry, tripsLo)))
				}
			}
		}
		if !changed {
			break
		}
	}
	for bid := range p.Blocks {
		if execs[bid].Lo > execs[bid].Hi {
			execs[bid].Lo = execs[bid].Hi
		}
	}
	for bid := range p.Blocks {
		m.Blocks = append(m.Blocks, BlockCost{ID: bid, Execs: execs[bid]})
	}

	// Divergence reachability per pc: warp splits only originate at
	// statically non-uniform branches and at memory sites whose
	// transaction bound exceeds one (a single-line access cannot
	// hit/miss-diverge, and Slip only triggers on divergent misses), and
	// splits only run code reachable from such a source.
	memTx := make(map[int]int)
	anyDivMem := false
	for _, a := range p.MemAccessFor(cp.Mem) {
		memTx[a.PC] = a.Transactions
		if a.Transactions > 1 {
			anyDivMem = true
		}
	}
	divSrc := make([]bool, len(p.Code))
	anyDivBranch := false
	for pc, inst := range p.Code {
		switch {
		case inst.Op.IsBranch():
			if bi, ok := p.branches[pc]; ok && bi.Class != ClassUniform {
				divSrc[pc] = true
				anyDivBranch = true
			}
		case inst.Op.IsMem():
			if memTx[pc] > 1 {
				divSrc[pc] = true
			}
		}
	}
	blockOf := p.blockOf()
	entryDiv := make([]bool, len(p.Blocks))
	outDiv := make([]bool, len(p.Blocks))
	for changed := true; changed; {
		changed = false
		for bid, b := range p.Blocks {
			if !reach[bid] {
				continue
			}
			o := entryDiv[bid]
			for pc := b.Start; pc < b.End; pc++ {
				if divSrc[pc] {
					o = true
				}
			}
			if o && !outDiv[bid] {
				outDiv[bid] = true
				changed = true
			}
			for _, s := range b.Succ {
				if outDiv[bid] && !entryDiv[s] {
					entryDiv[s] = true
					changed = true
				}
			}
		}
	}
	diverged := make([]bool, len(p.Code))
	for bid, b := range p.Blocks {
		if !reach[bid] {
			continue
		}
		f := entryDiv[bid]
		for pc := b.Start; pc < b.End; pc++ {
			diverged[pc] = f
			if divSrc[pc] {
				f = true
			}
		}
	}

	// Per-pc issue bounds. Where no split can exist every issue is a full
	// warp (≤ totalWarps · execsHi); where splits can exist each issue
	// still carries ≥ 1 active thread, and each thread executes the pc at
	// most execsHi times (≤ Threads · execsHi).
	g := costGeometry(cp)
	m.Issues = make([]CostInterval, len(p.Code))
	totalIssuesHi := int64(0)
	for pc := range p.Code {
		if !reach[blockOf[pc]] {
			continue
		}
		mult := g.totalWarps
		if diverged[pc] {
			mult = int64(cp.Threads)
		}
		m.Issues[pc] = CostInterval{0, satMul(execs[blockOf[pc]].Hi, mult)}
		totalIssuesHi = addHi(totalIssuesHi, m.Issues[pc].Hi)
	}

	// Upper bounds on the launch's summed TickCycles. Every cycle of a
	// run that completes (the simulator's deadlock detector guarantees
	// this) either issues somewhere (≤ totalIssuesHi such cycles), has a
	// memory or icache transaction in flight (the union of their
	// lifetimes spans ≤ memTermHi + icacheBudget cycles), releases a
	// barrier (≤ barrierTermHi), or makes split-merge progress without an
	// issue — and merges consume splits, of which at most one is created
	// per issued divergent instruction, giving a second totalIssuesHi.
	// TickCycles sums per-WPU live cycles, each ≤ the launch's elapsed
	// cycles, so the total is ≤ activeWPUs · elapsed.
	memTermHi := int64(0)
	barrierTermHi := int64(0)
	for pc, inst := range p.Code {
		switch {
		case inst.Op.IsMem():
			memTermHi = addHi(memTermHi, satMul(m.Issues[pc].Hi, satMul(int64(memTx[pc]), int64(cp.MemTxWorst))))
		case inst.Op == isa.BARRIER:
			barrierTermHi = addHi(barrierTermHi, m.Issues[pc].Hi)
		}
	}
	progLines := int64(len(p.Code)+CostInstPerLine-1) / CostInstPerLine
	icacheBudget := CostInf
	if progLines <= int64(cp.ICacheLines) {
		// A kernel's lines are consecutive, so a program fitting the
		// total capacity cannot conflict-evict: each line misses at most
		// once per WPU.
		icacheBudget = satMul(int64(g.activeWPUs), satMul(progLines, int64(cp.IMissLat)))
	}
	elapsedHi := addHi(addHi(addHi(addHi(satMul(2, totalIssuesHi), memTermHi), icacheBudget), barrierTermHi), 4)
	tickHi := satMul(int64(g.activeWPUs), elapsedHi)

	// Lower bounds: every thread executes at least lowerOps instructions
	// (mandatory blocks times their guaranteed trips), a thread retires
	// at most one instruction per cycle, and a WPU issues at most Width
	// thread-ops per cycle.
	lowerOps := int64(0)
	for bid, b := range p.Blocks {
		if reach[bid] {
			lowerOps = addHi(lowerOps, satMul(execs[bid].Lo, int64(b.Len())))
		}
	}
	tickLo, busyLo := int64(0), int64(0)
	for _, tw := range g.perWPU {
		issueFloor := ceilDivPos(satMul(tw, lowerOps), int64(cp.Width))
		busyLo = addHi(busyLo, issueFloor)
		tickLo = addHi(tickLo, max(lowerOps, issueFloor))
	}
	if tickLo >= CostInf {
		tickLo = 0 // a lower bound must stay finite to be a claim
	}
	if busyLo >= CostInf {
		busyLo = 0
	}
	m.Ticks = CostInterval{tickLo, tickHi}

	capHi := func(v int64) int64 { return min(v, tickHi) }
	hasBarrier := barrierTermHi > 0
	anyHazard := anyDivMem || anyDivBranch
	m.Buckets = [8]CostInterval{
		{busyLo, capHi(totalIssuesHi)},
		{0, capHi(memTermHi)},
		{0, 0},
		{0, 0},
		{0, capHi(icacheBudget)},
		{0, 0},
		{0, 0},
		{0, tickHi},
	}
	if anyDivMem {
		m.Buckets[2] = CostInterval{0, capHi(memTermHi)}
	}
	if hasBarrier {
		m.Buckets[3] = CostInterval{0, tickHi}
	}
	if anyHazard {
		m.Buckets[5] = CostInterval{0, tickHi}
		m.Buckets[6] = CostInterval{0, tickHi}
	}

	p.costPredictAndRank(m, execs, blockOf, memTx, g, reach)
	return m
}

// missProb and divShare are the per-access-class heuristics behind the
// predicted split and the benefit scores: the assumed L1 miss
// probability and the fraction of memory wait attributable to
// intra-warp hit/miss divergence. Calibrated against the measured stall
// taxonomy of the eight benchmarks (EXPERIMENTS.md).
var (
	missProb = [NumAccessClasses]float64{0.05, 0.20, 0.35, 0.60}
	divShare = [NumAccessClasses]float64{0, 0.10, 0.35, 0.60}
	// benefitDivP scales memory-site benefits by class (a gather exposes
	// far more overlap than an already-coalesced access).
	benefitDivP = [NumAccessClasses]float64{0, 0.25, 0.50, 0.80}
)

// schemeGain maps one scheme's mechanism flags to linear weights over the
// kernel's static divergence intensities. With bShare and mShare the
// benefit mass of divergent branches and latency-divergent accesses as
// fractions of the baseline estimate (each clamped to [0,1]), the
// predicted recovered fraction is
//
//	gain = mM·mShare + mB·bShare − oh
//
// and the scheme estimate is total·(1 − gain). The weights are calibrated
// against the measured 13-scheme × 8-benchmark grid (EXPERIMENTS.md):
// memory subdivision with revival recovers the most and branch-limited
// re-convergence only pays where divergent branches are dense (its mem
// splits retire at the next branch, so high bShare means frequent cheap
// re-convergence and low bShare means the splits barely run) — hence the
// large mB on the .BL rows. Subdividing on branches carries a small
// fragmentation overhead oh that the exposed overlap must beat, largest
// for the stack-based variant that cannot re-converge early.
func schemeGain(t SchemeTraits) (mB, mM, oh float64) {
	switch {
	case t.Slip:
		mM, mB = 0.18, 1.0
		if t.SlipBypass {
			mB, oh = 1.2, 0.02
		}
	case t.MemBranchLimited:
		mM = 0.15
		switch {
		case t.MemRevive:
			mB = 4.2
		case t.MemLazy:
			mB = 3.6
		default: // aggressive
			mB = 4.0
		}
	case t.MemPredictive:
		mM, mB, oh = 0.305, 1.5, 0.01
	case t.MemRevive:
		mM = 0.30
		if t.SubdivBranch {
			mB, oh = 1.5, 0.01
		}
	case t.MemLazy:
		mM, mB, oh = 0.25, 1.5, 0.015
	case t.MemSplit:
		mM, mB, oh = 0.22, 1.5, 0.02 // aggressive: overlap minus over-subdivision
	case t.SubdivBranch:
		if t.PCReconv {
			mB, oh = 2.0, 0.01
		} else {
			mB, oh = 1.0, 0.06 // stack re-convergence: rigid join points
		}
	}
	return mB, mM, oh
}

// costPredictAndRank fills the heuristic layers: the predicted
// stall-taxonomy split, the per-site benefits, and the scheme ranking.
func (p *Program) costPredictAndRank(m *CostModel, execs []CostInterval, blockOf []int, memTx map[int]int, g costGeom, reach []bool) {
	cp := m.Params
	execApprox := func(bid int) float64 {
		e := execs[bid]
		if e.Unbounded() {
			return float64(e.Lo + 1)
		}
		return float64(e.Hi)
	}
	warps := float64(g.totalWarps)

	var busyEst, memCohEst, memDivEst, barrEst float64
	for pc, inst := range p.Code {
		if !reach[blockOf[pc]] {
			continue
		}
		e := execApprox(blockOf[pc]) * warps
		busyEst += e
		switch {
		case inst.Op.IsMem():
			cls := AccessGather
			for _, a := range p.memAccess {
				if a.PC == pc {
					cls = a.AClass
					break
				}
			}
			// The /8 de-rates the worst-case transaction cost to an expected
			// per-access wait: misses overlap across warps and most of
			// MemTxWorst's terms (writeback, queueing) are rarely all paid.
			// Calibrated against the measured Conv stall split (EXPERIMENTS.md).
			wait := e * (float64(cp.HitLat) + missProb[cls]*float64(cp.MemTxWorst)/8)
			memDivEst += wait * divShare[cls]
			memCohEst += wait * (1 - divShare[cls])
		case inst.Op == isa.BARRIER:
			barrEst += e * float64(cp.Width)
		}
	}
	total := busyEst + memCohEst + memDivEst + barrEst
	if total > 0 {
		m.Predicted = [4]float64{busyEst / total, memCohEst / total, memDivEst / total, barrEst / total}
	}

	// Per-site benefits (§4.3 short-join branches, §4.4 divergent loads).
	var branchGain, memGain float64
	for pc, inst := range p.Code {
		if !reach[blockOf[pc]] {
			continue
		}
		e := execApprox(blockOf[pc]) * warps
		switch {
		case inst.Op.IsBranch():
			bi := p.branches[pc]
			if bi.Class == ClassUniform {
				continue
			}
			arm := 0.0
			first := true
			for _, s := range p.Blocks[blockOf[pc]].Succ {
				c := float64(p.Blocks[s].Len())
				for spc := p.Blocks[s].Start; spc < p.Blocks[s].End; spc++ {
					if p.Code[spc].Op.IsMem() {
						c += float64(cp.HitLat)
					}
				}
				if first || c < arm {
					arm, first = c, false
				}
			}
			classW := 0.5
			if bi.Class == ClassDivergent {
				classW = 1.0
			}
			ben := e * classW * min(arm, float64(cp.MemTxWorst)) * 0.5
			m.Sites = append(m.Sites, SiteBenefit{PC: pc, Kind: "branch", Class: bi.Class.String(), Benefit: ben})
			if bi.Subdividable {
				branchGain += ben
			}
		case inst.Op.IsMem():
			cls := AccessGather
			for _, a := range p.memAccess {
				if a.PC == pc {
					cls = a.AClass
					break
				}
			}
			if memTx[pc] <= 1 {
				continue
			}
			kind := "ld"
			scale := 1.0
			if inst.Op == isa.ST {
				kind, scale = "st", 0.3
			}
			ben := e * benefitDivP[cls] * float64(cp.MemTxWorst-cp.HitLat) * 0.5 * scale
			m.Sites = append(m.Sites, SiteBenefit{PC: pc, Kind: kind, Class: cls.String(), Benefit: ben})
			memGain += ben
		}
	}

	// Normalise the benefit masses to intensity shares of the baseline:
	// the raw sums grow with launch size, but what separates schemes is
	// how much of the kernel's time the subdividable sites account for.
	bShare, mShare := 0.0, 0.0
	if total > 0 {
		bShare = min(branchGain/total, 1)
		mShare = min(memGain/total, 1)
	}
	floorEst := 0.2 * total
	for _, t := range CostSchemes {
		mB, mM, oh := schemeGain(t)
		est := total * (1 - mM*mShare - mB*bShare + oh)
		if est < floorEst {
			est = floorEst
		}
		m.Ranking = append(m.Ranking, SchemeScore{Scheme: t.Name, Est: est})
	}
	sort.SliceStable(m.Ranking, func(i, j int) bool { return m.Ranking[i].Est < m.Ranking[j].Est })
}

// Report renders the model in a stable, golden-file-friendly format.
func (m *CostModel) Report(name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "kernel %s: threads=%d geometry=%dx%dx%d warps=%d loops=%d\n",
		name, m.Params.Threads, m.Params.WPUs, m.Params.Warps, m.Params.Width,
		costGeometry(m.Params).totalWarps, len(m.Loops))
	for _, l := range m.Loops {
		fmt.Fprintf(&sb, "  loop  B%-3d @pc %-3d ind=r%-2d trips=%s", l.Header, l.HeaderPC, l.Induction, l.Trips)
		if l.Note != "" {
			fmt.Fprintf(&sb, " (%s)", l.Note)
		}
		sb.WriteByte('\n')
	}
	for _, b := range m.Blocks {
		fmt.Fprintf(&sb, "  block B%-3d execs=%s\n", b.ID, b.Execs)
	}
	fmt.Fprintf(&sb, "  ticks=%s\n", m.Ticks)
	sb.WriteString("  buckets")
	for i, b := range m.Buckets {
		fmt.Fprintf(&sb, " %s=%s", CostBucketLabels[i], b)
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "  predicted busy=%.1f%% mem_coherent=%.1f%% mem_divergent=%.1f%% barrier=%.1f%%\n",
		100*m.Predicted[0], 100*m.Predicted[1], 100*m.Predicted[2], 100*m.Predicted[3])
	for _, s := range m.Sites {
		fmt.Fprintf(&sb, "  site  %-6s @pc %-3d %-9s benefit=%.1f\n", s.Kind, s.PC, s.Class, s.Benefit)
	}
	sb.WriteString("  rank ")
	for i, r := range m.Ranking {
		if i > 0 {
			sb.WriteString(" < ")
		}
		sb.WriteString(r.Scheme)
	}
	sb.WriteByte('\n')
	return sb.String()
}

// CostModelReport renders the Build-time model (computing one on demand
// for programs built before the model was wired in).
func (p *Program) CostModelReport() string {
	m := p.cost
	if m == nil {
		m = p.CostModelFor(CostParams{})
	}
	return m.Report(p.Name)
}
