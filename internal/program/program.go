// Package program provides the "compiler layer" of the simulator: a builder
// DSL for writing kernels against the ISA, control-flow-graph construction,
// post-dominator analysis, and the paper's static heuristic for selecting
// which branches are allowed to subdivide warps.
//
// The paper (§3.3, §4.3) manually instruments post-dominators and
// subdividable branches and notes that "in practice this process would be
// automated by the compiler". This package is that compiler: Build computes
// every conditional branch's immediate post-dominator from the CFG, and
// marks the branch subdividable when the basic block following the
// post-dominator is no longer than ShortBlockLimit instructions (50 in the
// paper, chosen because executing 50 instructions roughly covers an L1 miss).
package program

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
)

// DefaultShortBlockLimit is the paper's threshold (§4.3) on the length of
// the basic block following a branch's post-dominator, below which the
// branch is allowed to subdivide warps.
const DefaultShortBlockLimit = 50

// BranchInfo is the per-branch metadata the WPU front end consumes.
type BranchInfo struct {
	// IPdom is the instruction index of the branch's immediate
	// post-dominator — the conventional re-convergence point. NoIPdom means
	// the paths only re-join at kernel termination.
	IPdom int
	// Subdividable reports whether static analysis allows dynamic warp
	// subdivision at this branch: the predicate must be divergence-capable
	// (Class != ClassUniform) and the join block short (§4.3).
	Subdividable bool
	// Class is the divergence analysis verdict on the branch predicate
	// (see dataflow.go).
	Class Class
	// Uniform reports a statically proven warp-uniform predicate: every
	// co-executing lane takes the branch the same way, so the WPU front
	// end may evaluate one lane and skip re-convergence bookkeeping.
	Uniform bool
}

// NoIPdom marks a branch whose divergent paths re-converge only at kernel
// termination (e.g. one arm halts).
const NoIPdom = -1

// Block is one basic block of the control-flow graph.
type Block struct {
	ID    int
	Start int // first instruction index
	End   int // one past the last instruction index
	Succ  []int
}

// Len returns the number of instructions in the block.
func (b Block) Len() int { return b.End - b.Start }

// RegionDecl declares a memory region reachable through a base register:
// the launcher is expected to point Reg at a buffer of Words 8-byte words.
// The verifier's bounds check interprets addresses relative to these.
type RegionDecl struct {
	Reg   isa.Reg
	Words int64
}

// Program is a validated, analysed kernel ready for simulation.
type Program struct {
	Name   string
	Code   []isa.Inst
	Blocks []Block

	branches map[int]BranchInfo // keyed by instruction index

	// reconv is the verified re-convergence table the WPU consumes: per
	// branch pc, the re-convergence pc recomputed by the verifier's
	// independent post-dominator analysis (NoIPdom when the paths re-join
	// only at kernel exit). Populated by Build after verification passes.
	reconv map[int]int

	// Static declarations carried over from the Builder; they gate the
	// def-use and bounds checks.
	inputs         uint32 // bitmask of declared entry-defined registers
	uniforms       uint32 // subset the launcher promises warp-uniform
	inputsDeclared bool
	regions        []RegionDecl
	uranges        []UniformRange // declared value ranges of uniform inputs
	maxThreads     int
	shortLimit     int

	// accesses is the divergence analysis verdict per load/store, in pc
	// order (see dataflow.go).
	accesses []AccessInfo

	// memAccess is the static access-pattern table per load/store under
	// DefaultMemParams, in pc order (see memaccess.go). The verifier
	// cross-checks it against a fresh analysis run; the WPU derives
	// machine-specific transaction bounds from it via MemAccessFor.
	memAccess []MemAccessInfo

	// cost is the static cost model recorded at Build time under
	// DefaultCostParams and the declared thread count (costmodel.go). The
	// verifier cross-checks it against a fresh run; launch-specific
	// geometries recompute via CostModelFor.
	cost *CostModel

	// uniformBranch[pc] mirrors BranchInfo.Uniform as a dense slice: the
	// WPU queries it on every executed branch, so the fast-path test must
	// not cost a map lookup.
	uniformBranch []bool

	// decoded is the dispatch-ready lowering of Code the WPU issue loop
	// consumes: one isa.Decoded per pc, with the analysis-driven flags
	// (uniform, subdividable) and the verified re-convergence pc folded in
	// so an issue never touches the branches/reconv maps. Populated by
	// Build after verification passes.
	decoded []isa.Decoded

	verified bool
}

// Decoded returns the dispatch-ready instruction stream, index-parallel
// with Code. The slice is shared, not copied: it is the WPU's hot-path
// view of the program and must not be mutated.
func (p *Program) Decoded() []isa.Decoded { return p.decoded }

// UniformBranch reports whether the branch at pc was proved uniform by
// the divergence analysis (constant time; hot path of the WPU front end).
func (p *Program) UniformBranch(pc int) bool {
	return pc >= 0 && pc < len(p.uniformBranch) && p.uniformBranch[pc]
}

// Branch returns the metadata for the conditional branch at pc.
func (p *Program) Branch(pc int) (BranchInfo, bool) {
	bi, ok := p.branches[pc]
	return bi, ok
}

// NumBranches returns the number of conditional branches in the program.
func (p *Program) NumBranches() int { return len(p.branches) }

// Verified reports whether the program passed the structural verifier at
// Build time. The WPU refuses to launch unverified programs.
func (p *Program) Verified() bool { return p.verified }

// ReconvPC returns the verified re-convergence pc for the branch at pc —
// the value the WPU's re-convergence stack and warp-split table consume.
// NoIPdom means the divergent paths re-join only at kernel termination.
func (p *Program) ReconvPC(pc int) (int, bool) {
	r, ok := p.reconv[pc]
	return r, ok
}

// Regions returns the declared memory regions (for tooling display).
func (p *Program) Regions() []RegionDecl {
	return append([]RegionDecl(nil), p.regions...)
}

// Disassemble renders the program with block boundaries and branch
// metadata, for debugging kernels.
func (p *Program) Disassemble() string {
	var sb strings.Builder
	blockAt := make(map[int]int)
	for _, b := range p.Blocks {
		blockAt[b.Start] = b.ID
	}
	// Cost-model annotations (costmodel.go): per-block execution bounds on
	// block headers and the subdivision-benefit score on each divergence
	// site, so a disassembly shows where subdividing is predicted to pay.
	execAt := make(map[int]CostInterval)
	benefitAt := make(map[int]float64)
	if p.cost != nil {
		for _, bc := range p.cost.Blocks {
			execAt[bc.ID] = bc.Execs
		}
		for _, s := range p.cost.Sites {
			benefitAt[s.PC] = s.Benefit
		}
	}
	ai := 0
	for pc, in := range p.Code {
		if id, ok := blockAt[pc]; ok {
			fmt.Fprintf(&sb, "B%d:", id)
			if iv, ok := execAt[id]; ok {
				fmt.Fprintf(&sb, "\t; execs=%s", iv)
			}
			sb.WriteByte('\n')
		}
		fmt.Fprintf(&sb, "  %4d  %s", pc, in)
		if bi, ok := p.branches[pc]; ok {
			if bi.IPdom == NoIPdom {
				sb.WriteString("\t; ipdom=exit")
			} else {
				fmt.Fprintf(&sb, "\t; ipdom=@%d", bi.IPdom)
			}
			fmt.Fprintf(&sb, " %s", bi.Class)
			if bi.Subdividable {
				sb.WriteString(" subdividable")
			}
		}
		for ai < len(p.memAccess) && p.memAccess[ai].PC < pc {
			ai++
		}
		if ai < len(p.memAccess) && p.memAccess[ai].PC == pc {
			a := p.memAccess[ai]
			fmt.Fprintf(&sb, "\t; %s tx<=%d", a.AClass, a.Transactions)
		}
		if ben, ok := benefitAt[pc]; ok {
			fmt.Fprintf(&sb, "\t; benefit=%.1f", ben)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Builder assembles a kernel instruction by instruction. Branch targets are
// symbolic labels resolved at Build time.
type Builder struct {
	name   string
	code   []isa.Inst
	labels map[string]int
	fixups map[int]string // instruction index -> unresolved label

	inputs         uint32
	uniforms       uint32
	inputsDeclared bool
	regions        []RegionDecl
	uranges        []UniformRange
	maxThreads     int

	// ShortBlockLimit overrides the subdivide-branch heuristic threshold;
	// zero means DefaultShortBlockLimit.
	ShortBlockLimit int
}

// NewBuilder returns a Builder for a kernel with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:   name,
		labels: make(map[string]int),
		fixups: make(map[int]string),
	}
}

// DeclareInputs declares the registers the launcher preloads beyond the ABI
// trio (r1 tid, r2 thread count, r3 local index). Declaring inputs — here or
// via DeclareRegion — turns on the verifier's def-before-use check: every
// other register must then be written before it is read on all paths.
func (b *Builder) DeclareInputs(regs ...isa.Reg) {
	b.inputsDeclared = true
	for _, r := range regs {
		if r < isa.NumRegs {
			b.inputs |= 1 << r
		}
	}
}

// DeclareUniformInputs declares inputs the launcher additionally promises
// to preload with the SAME value in every thread (scalar kernel parameters:
// sizes, pitches, iteration constants). The divergence analysis treats them
// as warp-uniform, which is what lets it classify parameter-indexed
// addresses as uniform or affine instead of divergent-gather. The promise
// is the launcher's to keep — it cannot be checked statically — but the
// trace-backed concordance tests observe every benchmark kernel dynamically
// and a broken promise surfaces as a divergence or transaction-bound
// violation there. The ABI trio and region bases need no declaration.
func (b *Builder) DeclareUniformInputs(regs ...isa.Reg) {
	b.DeclareInputs(regs...)
	for _, r := range regs {
		if r < isa.NumRegs {
			b.uniforms |= 1 << r
		}
	}
}

// DeclareRegion declares that the launcher points reg at a memory region of
// the given number of 8-byte words. The register counts as a declared input,
// and the verifier statically bounds-checks every access whose address is
// affine in the thread id relative to the region base.
func (b *Builder) DeclareRegion(reg isa.Reg, words int64) {
	b.DeclareInputs(reg)
	b.regions = append(b.regions, RegionDecl{Reg: reg, Words: words})
}

// DeclareThreads declares the maximum thread count the kernel is launched
// with, giving the bounds check the range of the thread id.
func (b *Builder) DeclareThreads(n int) { b.maxThreads = n }

// Label defines a label at the current position. Defining the same label
// twice panics: it is a static kernel-authoring bug.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		panic("program: duplicate label " + name)
	}
	b.labels[name] = len(b.code)
}

// Emit appends a raw instruction. Prefer the typed helpers.
func (b *Builder) Emit(in isa.Inst) { b.code = append(b.code, in) }

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.code) }

func (b *Builder) branchTo(op isa.Op, src isa.Reg, label string) {
	b.fixups[len(b.code)] = label
	b.code = append(b.code, isa.Inst{Op: op, SrcA: src})
}

// R-format helpers.

func (b *Builder) op3(op isa.Op, dst, a, c isa.Reg) {
	b.Emit(isa.Inst{Op: op, Dst: dst, SrcA: a, SrcB: c})
}

func (b *Builder) opImm(op isa.Op, dst, a isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: op, Dst: dst, SrcA: a, Imm: imm})
}

// Add emits dst = a + c.
func (b *Builder) Add(dst, a, c isa.Reg) { b.op3(isa.ADD, dst, a, c) }

// Sub emits dst = a - c.
func (b *Builder) Sub(dst, a, c isa.Reg) { b.op3(isa.SUB, dst, a, c) }

// Mul emits dst = a * c.
func (b *Builder) Mul(dst, a, c isa.Reg) { b.op3(isa.MUL, dst, a, c) }

// Div emits dst = a / c (0 on divide-by-zero).
func (b *Builder) Div(dst, a, c isa.Reg) { b.op3(isa.DIV, dst, a, c) }

// Rem emits dst = a % c (0 on divide-by-zero).
func (b *Builder) Rem(dst, a, c isa.Reg) { b.op3(isa.REM, dst, a, c) }

// And emits dst = a & c.
func (b *Builder) And(dst, a, c isa.Reg) { b.op3(isa.AND, dst, a, c) }

// Or emits dst = a | c.
func (b *Builder) Or(dst, a, c isa.Reg) { b.op3(isa.OR, dst, a, c) }

// Xor emits dst = a ^ c.
func (b *Builder) Xor(dst, a, c isa.Reg) { b.op3(isa.XOR, dst, a, c) }

// Shl emits dst = a << c.
func (b *Builder) Shl(dst, a, c isa.Reg) { b.op3(isa.SHL, dst, a, c) }

// Shr emits dst = a >> c (logical).
func (b *Builder) Shr(dst, a, c isa.Reg) { b.op3(isa.SHR, dst, a, c) }

// Slt emits dst = (a < c).
func (b *Builder) Slt(dst, a, c isa.Reg) { b.op3(isa.SLT, dst, a, c) }

// Sle emits dst = (a <= c).
func (b *Builder) Sle(dst, a, c isa.Reg) { b.op3(isa.SLE, dst, a, c) }

// Seq emits dst = (a == c).
func (b *Builder) Seq(dst, a, c isa.Reg) { b.op3(isa.SEQ, dst, a, c) }

// Sne emits dst = (a != c).
func (b *Builder) Sne(dst, a, c isa.Reg) { b.op3(isa.SNE, dst, a, c) }

// Min emits dst = min(a, c).
func (b *Builder) Min(dst, a, c isa.Reg) { b.op3(isa.MIN, dst, a, c) }

// Max emits dst = max(a, c).
func (b *Builder) Max(dst, a, c isa.Reg) { b.op3(isa.MAX, dst, a, c) }

// Addi emits dst = a + imm.
func (b *Builder) Addi(dst, a isa.Reg, imm int64) { b.opImm(isa.ADDI, dst, a, imm) }

// Muli emits dst = a * imm.
func (b *Builder) Muli(dst, a isa.Reg, imm int64) { b.opImm(isa.MULI, dst, a, imm) }

// Andi emits dst = a & imm.
func (b *Builder) Andi(dst, a isa.Reg, imm int64) { b.opImm(isa.ANDI, dst, a, imm) }

// Shli emits dst = a << imm.
func (b *Builder) Shli(dst, a isa.Reg, imm int64) { b.opImm(isa.SHLI, dst, a, imm) }

// Shri emits dst = a >> imm (logical).
func (b *Builder) Shri(dst, a isa.Reg, imm int64) { b.opImm(isa.SHRI, dst, a, imm) }

// Slti emits dst = (a < imm).
func (b *Builder) Slti(dst, a isa.Reg, imm int64) { b.opImm(isa.SLTI, dst, a, imm) }

// Movi emits dst = imm.
func (b *Builder) Movi(dst isa.Reg, imm int64) { b.Emit(isa.Inst{Op: isa.MOVI, Dst: dst, Imm: imm}) }

// Mov emits dst = a.
func (b *Builder) Mov(dst, a isa.Reg) { b.Emit(isa.Inst{Op: isa.MOV, Dst: dst, SrcA: a}) }

// Float helpers.

// Fadd emits dst = a + c (float).
func (b *Builder) Fadd(dst, a, c isa.Reg) { b.op3(isa.FADD, dst, a, c) }

// Fsub emits dst = a - c (float).
func (b *Builder) Fsub(dst, a, c isa.Reg) { b.op3(isa.FSUB, dst, a, c) }

// Fmul emits dst = a * c (float).
func (b *Builder) Fmul(dst, a, c isa.Reg) { b.op3(isa.FMUL, dst, a, c) }

// Fdiv emits dst = a / c (float).
func (b *Builder) Fdiv(dst, a, c isa.Reg) { b.op3(isa.FDIV, dst, a, c) }

// Fneg emits dst = -a (float).
func (b *Builder) Fneg(dst, a isa.Reg) { b.Emit(isa.Inst{Op: isa.FNEG, Dst: dst, SrcA: a}) }

// Fabs emits dst = |a| (float).
func (b *Builder) Fabs(dst, a isa.Reg) { b.Emit(isa.Inst{Op: isa.FABS, Dst: dst, SrcA: a}) }

// Fmin emits dst = min(a, c) (float).
func (b *Builder) Fmin(dst, a, c isa.Reg) { b.op3(isa.FMIN, dst, a, c) }

// Fmax emits dst = max(a, c) (float).
func (b *Builder) Fmax(dst, a, c isa.Reg) { b.op3(isa.FMAX, dst, a, c) }

// Fslt emits dst = (a < c) comparing floats, integer result.
func (b *Builder) Fslt(dst, a, c isa.Reg) { b.op3(isa.FSLT, dst, a, c) }

// Fsle emits dst = (a <= c) comparing floats, integer result.
func (b *Builder) Fsle(dst, a, c isa.Reg) { b.op3(isa.FSLE, dst, a, c) }

// Fmovi emits dst = f (float immediate).
func (b *Builder) Fmovi(dst isa.Reg, f float64) {
	b.Emit(isa.Inst{Op: isa.FMOVI, Dst: dst, FImm: f})
}

// Itof emits dst = float(a).
func (b *Builder) Itof(dst, a isa.Reg) { b.Emit(isa.Inst{Op: isa.ITOF, Dst: dst, SrcA: a}) }

// Ftoi emits dst = int(a), truncating.
func (b *Builder) Ftoi(dst, a isa.Reg) { b.Emit(isa.Inst{Op: isa.FTOI, Dst: dst, SrcA: a}) }

// Memory helpers.

// Ld emits dst = mem[base + off].
func (b *Builder) Ld(dst, base isa.Reg, off int64) {
	b.Emit(isa.Inst{Op: isa.LD, Dst: dst, SrcA: base, Imm: off})
}

// St emits mem[base + off] = val.
func (b *Builder) St(val, base isa.Reg, off int64) {
	b.Emit(isa.Inst{Op: isa.ST, SrcB: val, SrcA: base, Imm: off})
}

// Control-flow helpers.

// Beqz emits a branch to label when src == 0.
func (b *Builder) Beqz(src isa.Reg, label string) { b.branchTo(isa.BEQZ, src, label) }

// Bnez emits a branch to label when src != 0.
func (b *Builder) Bnez(src isa.Reg, label string) { b.branchTo(isa.BNEZ, src, label) }

// Jmp emits an unconditional jump to label.
func (b *Builder) Jmp(label string) { b.branchTo(isa.JMP, 0, label) }

// Barrier emits a kernel-wide thread barrier.
func (b *Builder) Barrier() { b.Emit(isa.Inst{Op: isa.BARRIER}) }

// Halt emits thread termination.
func (b *Builder) Halt() { b.Emit(isa.Inst{Op: isa.HALT}) }

// Nop emits a no-op (useful to pad blocks in microbenchmarks and tests).
func (b *Builder) Nop() { b.Emit(isa.Inst{Op: isa.NOP}) }

// Build resolves labels, validates the kernel, constructs the CFG, runs
// post-dominator analysis, applies the subdivide-branch heuristic, and runs
// the static verifier (verify.go). Any Err-severity finding fails the build;
// Warn findings are tolerated here and rejected only by MustVerify.
func (b *Builder) Build() (*Program, error) {
	if len(b.code) == 0 {
		return nil, fmt.Errorf("program %q: empty", b.name)
	}
	code := make([]isa.Inst, len(b.code))
	copy(code, b.code)
	// Resolve fixups in pc order so the first error reported (and the whole
	// build) is independent of map iteration order.
	fixupPCs := make([]int, 0, len(b.fixups))
	for pc := range b.fixups {
		fixupPCs = append(fixupPCs, pc)
	}
	sort.Ints(fixupPCs)
	for _, pc := range fixupPCs {
		label := b.fixups[pc]
		target, ok := b.labels[label]
		if !ok {
			return nil, fmt.Errorf("program %q: undefined label %q at pc %d", b.name, label, pc)
		}
		code[pc].Target = target
	}
	for pc, in := range code {
		if !in.Op.Valid() {
			return nil, fmt.Errorf("program %q: invalid opcode at pc %d", b.name, pc)
		}
		if in.Op.IsControl() && (in.Target < 0 || in.Target >= len(code)) {
			return nil, fmt.Errorf("program %q: branch target %d out of range at pc %d", b.name, in.Target, pc)
		}
	}
	last := code[len(code)-1]
	if last.Op != isa.HALT && last.Op != isa.JMP {
		return nil, fmt.Errorf("program %q: control can fall off the end (last op %s)", b.name, last.Op)
	}

	p := &Program{Name: b.name, Code: code, branches: make(map[int]BranchInfo)}
	p.Blocks = buildCFG(code)
	ipdom := postDominators(p.Blocks)

	blockOf := make([]int, len(code))
	for _, blk := range p.Blocks {
		for pc := blk.Start; pc < blk.End; pc++ {
			blockOf[pc] = blk.ID
		}
	}
	limit := b.ShortBlockLimit
	if limit <= 0 {
		limit = DefaultShortBlockLimit
	}
	for pc, in := range code {
		if !in.Op.IsBranch() {
			continue
		}
		bi := BranchInfo{IPdom: NoIPdom}
		if d := ipdom[blockOf[pc]]; d >= 0 {
			dblk := p.Blocks[d]
			bi.IPdom = dblk.Start
			// §4.3: subdivide only when the block following the
			// post-dominator is short. The paper's phrasing refers to the
			// code executed from the re-convergence point; we measure the
			// post-dominator block itself.
			bi.Subdividable = dblk.Len() <= limit
		}
		p.branches[pc] = bi
	}

	// Carry the static declarations over and verify. Only Err findings fail
	// the build — warnings are surfaced by MustVerify and dwsverify.
	seenRegion := make(map[isa.Reg]bool)
	for _, r := range b.regions {
		if r.Reg == 0 || r.Reg >= isa.NumRegs {
			return nil, fmt.Errorf("program %q: region base r%d invalid", b.name, r.Reg)
		}
		if r.Words <= 0 {
			return nil, fmt.Errorf("program %q: region at r%d has non-positive size %d", b.name, r.Reg, r.Words)
		}
		if seenRegion[r.Reg] {
			return nil, fmt.Errorf("program %q: region base r%d declared twice", b.name, r.Reg)
		}
		seenRegion[r.Reg] = true
	}
	p.inputs = b.inputs
	p.uniforms = b.uniforms
	p.inputsDeclared = b.inputsDeclared
	p.regions = append([]RegionDecl(nil), b.regions...)
	p.uranges = append([]UniformRange(nil), b.uranges...)
	p.maxThreads = b.maxThreads
	p.shortLimit = limit

	// Divergence analysis (dataflow.go) refines the §4.3 selection: a
	// branch whose predicate is provably warp-uniform can never split a
	// warp, so it is excluded from subdivision however short its join
	// block, and the WPU front end gets to skip its re-convergence
	// bookkeeping entirely (BranchInfo.Uniform).
	div := p.analyzeDivergence(p.reachableBlocks())
	p.uniformBranch = make([]bool, len(code))
	for pc, in := range code {
		if !in.Op.IsBranch() {
			continue
		}
		bi := p.branches[pc]
		bi.Class = ClassDivergent
		if c, ok := div.branchClass[pc]; ok {
			bi.Class = c
		}
		bi.Uniform = bi.Class == ClassUniform
		bi.Subdividable = bi.Subdividable && !bi.Uniform
		p.branches[pc] = bi
		p.uniformBranch[pc] = bi.Uniform
	}
	p.accesses = make([]AccessInfo, 0, len(div.accesses))
	for _, a := range div.accesses {
		p.accesses = append(p.accesses, AccessInfo{PC: a.pc, Store: a.store, Class: a.val.class()})
	}
	// The memory-side analysis (memaccess.go): classify every load/store's
	// warp access pattern and bound its worst-case line transactions. The
	// verifier below recomputes and cross-checks this table.
	p.memAccess = p.buildMemAccess(div, DefaultMemParams)

	// Static cost model (costmodel.go): trip counts, cycle bounds, and
	// subdivision-benefit scores under the default machine geometry and the
	// declared thread count. Launch-time geometries recompute via
	// CostModelFor; the verifier below cross-checks this record.
	p.cost = p.CostModelFor(CostParams{})

	findings := p.Verify()
	var errs []Finding
	for _, f := range findings {
		if f.Severity == Err {
			errs = append(errs, f)
		}
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("program %q: verifier found %d error(s):\n%s",
			b.name, len(errs), FormatFindings(errs))
	}

	// The verifier's independent post-dominator pass agreed with the
	// builder's; record its answers as the re-convergence table the WPU
	// consumes (rather than the builder-side BranchInfo it cross-checked).
	vip := verifiedIPdom(p.Blocks)
	p.reconv = make(map[int]int, len(p.branches))
	for pc, in := range code {
		if !in.Op.IsBranch() {
			continue
		}
		r := NoIPdom
		if d := vip[blockOf[pc]]; d >= 0 {
			r = p.Blocks[d].Start
		}
		p.reconv[pc] = r
	}

	// Lower the verified program into the pre-decoded dispatch stream,
	// folding in the per-branch analysis verdicts and the verified
	// re-convergence table so issue-time dispatch never consults a map.
	p.decoded = isa.DecodeProgram(code)
	for pc := range p.decoded {
		d := &p.decoded[pc]
		if d.Kind != isa.KindBranch {
			continue
		}
		bi := p.branches[pc]
		if bi.Uniform {
			d.Flags |= isa.DFUniform
		}
		if bi.Subdividable {
			d.Flags |= isa.DFSubdiv
		}
		d.Reconv = int32(p.reconv[pc])
	}
	// Fold the access classes into the decoded memory instructions: the
	// 2-bit class feeds the WPU's per-class concordance counters, and the
	// single-transaction hint (uniform address ⇒ one line group for any
	// width, so the access can never hit/miss-diverge) lets the WPU skip
	// the subdivide-on-miss probe without changing behaviour.
	for _, a := range p.memAccess {
		d := &p.decoded[a.PC]
		d.SetMemClass(uint8(a.AClass))
		if a.AClass == AccessUniform {
			d.Flags |= isa.DFMemHint
		}
	}
	p.verified = true
	return p, nil
}

// MustBuild is Build for statically known-good kernels; it panics on error.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// MustVerify is MustBuild with a zero-findings bar: it panics if the
// verifier reports anything at all, warnings included. The eight benchmark
// kernels are built with this.
func (b *Builder) MustVerify() *Program {
	p := b.MustBuild()
	if fs := p.Verify(); len(fs) > 0 {
		panic(fmt.Sprintf("program %q: verifier findings:\n%s", p.Name, FormatFindings(fs)))
	}
	return p
}
