// Static memory-access pattern analysis (the memory-side counterpart of
// the branch-divergence analysis in dataflow.go).
//
// The divergence lattice already computes, for every load/store, an exact
// or stride-abstract expression of the effective address as a function of
// the thread id. This file turns that expression into the machine-facing
// facts the paper's §5 memory-divergence machinery cares about:
//
//   - an access class: uniform (one address per warp), coalesced (affine
//     stride fitting ≤ CoalesceLimit cache-line transactions), strided
//     (affine but bounded multi-transaction), or divergent-gather;
//   - the worst-case number of line transactions one full-warp access can
//     issue, exact over all base alignments;
//   - the worst-case bank-conflict degree (how many of those distinct
//     lines can land on one L1 bank);
//   - the cache-line footprint in bytes (span of one warp's lanes).
//
// Soundness contract: a lane with thread id t accesses address
// base + stride·t (mod 2^64) where base is warp-uniform, so for a warp
// whose lanes hold consecutive tids stepping by TidStep the per-lane byte
// step is stride·TidStep. The worst-case transaction count is the maximum
// number of distinct cache lines over every possible base alignment; since
// the line size divides 2^64, the base's line-aligned part only relabels
// line indices (and rotates bank residues), so enumerating the base
// alignment φ ∈ [0, LineBytes) is exhaustive. Any subset of a warp's lanes
// (a warp split) touches a subset of those lines, so the bound is monotone
// under subdivision.
//
// The WPU consumes two projections: the 2-bit access class and a
// single-transaction hint (isa.DFMemHint) folded into the decoded stream
// at Build time, and a per-pc transaction bound recomputed for its own
// width and line size at Launch (MemAccessFor) that the trace-backed
// concordance harness checks against observed coalescing.

package program

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// AccessClass is the static coalescing classification of a load/store.
// The numeric values are stable: they are encoded as the 2-bit
// isa.DFMemClass field of the decoded stream and index the per-class
// counters in wpu.Stats.
type AccessClass uint8

const (
	// AccessUniform: one address for every co-executing lane. The whole
	// warp occupies a single line transaction, so intra-warp hit/miss
	// divergence is impossible (§3.2: every lane hits or misses together).
	AccessUniform AccessClass = iota
	// AccessCoalesced: affine in tid with a worst-case transaction count
	// of at most CoalesceLimit — the hardware-coalescing-friendly shape.
	AccessCoalesced
	// AccessStrided: affine in tid but spanning more than CoalesceLimit
	// lines in the worst case (a bounded multi-transaction access).
	AccessStrided
	// AccessGather: no static claim on the address; every lane may touch
	// its own line (the divergent-gather worst case).
	AccessGather

	// NumAccessClasses sizes per-class counter arrays.
	NumAccessClasses = 4
)

// String returns "uniform", "coalesced", "strided", or "gather".
func (c AccessClass) String() string {
	switch c {
	case AccessUniform:
		return "uniform"
	case AccessCoalesced:
		return "coalesced"
	case AccessStrided:
		return "strided"
	default:
		return "gather"
	}
}

// CoalesceLimit is the transaction-count threshold separating coalesced
// from strided accesses: an affine access whose worst case fits in this
// many line transactions still feeds the SIMD group from (almost) one
// line fetch per half-warp, the shape GPU coalescers are built for.
const CoalesceLimit = 2

// MemParams is the machine geometry the per-access bounds are computed
// against. The analysis itself (class and stride) is machine-independent;
// transaction and bank bounds are a pure function of class + stride +
// these parameters, so they can be recomputed for any configuration
// (MemAccessInfo.TransactionsFor, Program.MemAccessFor).
type MemParams struct {
	// Lanes is the SIMD width (lanes per warp).
	Lanes int
	// LineBytes is the cache-line size transactions are counted in.
	LineBytes int64
	// Banks is the number of L1 banks (line-granular interleaving:
	// bank = lineIndex mod Banks, matching mem.L1).
	Banks int
	// TidStep is the global-tid distance between adjacent lanes of a
	// warp: 1 under block thread distribution (the default), the WPU
	// count under interleaved distribution. 0 means 1.
	TidStep int64
}

// DefaultMemParams is the Table 3 machine: 16 lanes, 128 B lines, 16
// banks, block distribution. The checked-in report golden and the
// MemAccessInfo table recorded on every Program use these.
var DefaultMemParams = MemParams{Lanes: 16, LineBytes: 128, Banks: 16, TidStep: 1}

// normalized fills zero fields with the defaults.
func (p MemParams) normalized() MemParams {
	d := DefaultMemParams
	if p.Lanes <= 0 {
		p.Lanes = d.Lanes
	}
	if p.LineBytes <= 0 {
		p.LineBytes = d.LineBytes
	}
	if p.Banks <= 0 {
		p.Banks = d.Banks
	}
	if p.TidStep <= 0 {
		p.TidStep = 1
	}
	return p
}

// MemAccessInfo is one load/store's static access-pattern verdict.
type MemAccessInfo struct {
	PC    int
	Store bool
	// Class is the divergence-lattice verdict on the address (uniform /
	// affine / divergent), identical to AccessInfo.Class.
	Class Class
	// AClass is the coalescing classification under the MemParams the
	// table was computed with.
	AClass AccessClass
	// StrideBytes is the per-tid address stride (mod 2^64, exactly as the
	// machine wraps). Zero for uniform; meaningless for divergent.
	StrideBytes int64
	// Transactions is the worst-case number of distinct cache lines one
	// full-warp access touches, maximised over all base alignments.
	Transactions int
	// BankConflict is the worst-case number of those distinct lines that
	// map to a single L1 bank (1 = provably conflict-free).
	BankConflict int
	// FootprintBytes is the worst-case byte span of one warp's lanes
	// (stride·(Lanes−1) + word size), or -1 when unbounded (gather) or
	// too large to represent exactly.
	FootprintBytes int64
}

// TransactionsFor recomputes the worst-case transaction bound for a
// different machine geometry. The bound is a pure function of the
// machine-independent facts (Class, StrideBytes) and params, which is how
// the WPU derives per-pc bounds for its own width and line size at Launch.
func (a MemAccessInfo) TransactionsFor(params MemParams) int {
	return memInfoFrom(a.PC, a.Store, a.Class, a.StrideBytes, params).Transactions
}

// maxEnumLine bounds the exact alignment-enumeration path; beyond it the
// conservative closed form is used instead (no real configuration is near
// this: line sizes are 32..256 bytes).
const maxEnumLine = 4096

// worstAffine returns the worst-case distinct-line (transaction) count
// and per-bank conflict degree for an affine access whose per-lane byte
// step is step (mod 2^64, wrapping exactly like machine addresses).
//
// The enumeration is exhaustive: write the warp-uniform base as
// B = Q·LineBytes + φ. Lane i's line index is (Q + ⌊(φ + step·i mod 2^64)
// / LineBytes⌋) mod (2^64/LineBytes), so the number of distinct lines —
// and, because Q only rotates residues mod Banks, the per-bank multiset
// shape — depends on B only through φ. Maximising over φ ∈ [0, LineBytes)
// therefore covers every base the machine can present.
func worstAffine(step int64, p MemParams) (tx, bank int) {
	L := uint64(p.LineBytes)
	if p.Lanes <= 1 {
		return 1, 1
	}
	if L == 0 || L&(L-1) != 0 || L > maxEnumLine {
		return conservativeAffine(step, p)
	}
	ud := uint64(step)
	maxTx, maxBank := 1, 1
	lines := make([]uint64, 0, p.Lanes)
	counts := make([]int, p.Banks)
	for phi := uint64(0); phi < L; phi++ {
		lines = lines[:0]
		for i := 0; i < p.Lanes; i++ {
			v := (phi + ud*uint64(i)) / L
			dup := false
			for _, l := range lines {
				if l == v {
					dup = true
					break
				}
			}
			if !dup {
				lines = append(lines, v)
			}
		}
		if len(lines) > maxTx {
			maxTx = len(lines)
		}
		for i := range counts {
			counts[i] = 0
		}
		for _, l := range lines {
			b := int(l % uint64(p.Banks))
			counts[b]++
			if counts[b] > maxBank {
				maxBank = counts[b]
			}
		}
	}
	return maxTx, maxBank
}

// conservativeAffine is the fallback bound for exotic line sizes: span
// over line size plus one boundary crossing, capped at the lane count;
// the bank degree gives up and mirrors the transaction count.
func conservativeAffine(step int64, p MemParams) (tx, bank int) {
	span, ok := affineSpan(step, p.Lanes)
	tx = p.Lanes
	if ok && p.LineBytes > 0 {
		if t := int(span/p.LineBytes) + 2; t < tx {
			tx = t
		}
	}
	if tx < 1 {
		tx = 1
	}
	return tx, tx
}

// affineSpan returns |step|·(lanes−1) when it is exactly representable
// within the affine-coefficient window, which is all the footprint and
// fallback math needs.
func affineSpan(step int64, lanes int) (int64, bool) {
	a := step
	if a == -a && a != 0 { // MinInt64
		return 0, false
	}
	if a < 0 {
		a = -a
	}
	return mulRange(a, int64(lanes-1))
}

// memInfoFrom computes the full verdict from the machine-independent
// facts. ClassAffine implies stride != 0 (a zero stride classifies as
// uniform in the lattice).
func memInfoFrom(pc int, store bool, cls Class, stride int64, params MemParams) MemAccessInfo {
	p := params.normalized()
	mi := MemAccessInfo{PC: pc, Store: store, Class: cls, StrideBytes: stride}
	switch cls {
	case ClassUniform:
		mi.AClass = AccessUniform
		mi.Transactions = 1
		mi.BankConflict = 1
		mi.FootprintBytes = isa.WordSize
	case ClassAffine:
		step := stride * p.TidStep // wraps mod 2^64, as the machine does
		mi.Transactions, mi.BankConflict = worstAffine(step, p)
		if mi.Transactions <= CoalesceLimit {
			mi.AClass = AccessCoalesced
		} else {
			mi.AClass = AccessStrided
		}
		if span, ok := affineSpan(step, p.Lanes); ok {
			mi.FootprintBytes = span + isa.WordSize
		} else {
			mi.FootprintBytes = -1
		}
	default:
		mi.AClass = AccessGather
		mi.Transactions = p.Lanes
		mi.BankConflict = p.Lanes
		mi.FootprintBytes = -1
	}
	return mi
}

// buildMemAccess derives the per-access table from the divergence
// analysis result, in pc order.
func (p *Program) buildMemAccess(div *divResult, params MemParams) []MemAccessInfo {
	out := make([]MemAccessInfo, 0, len(div.accesses))
	for _, a := range div.accesses {
		cls := a.val.class()
		var stride int64
		if cls != ClassDivergent {
			stride = a.val.stride()
		}
		out = append(out, memInfoFrom(a.pc, a.store, cls, stride, params))
	}
	return out
}

// MemAccesses returns the per-load/store access-pattern table recorded at
// Build time (computed under DefaultMemParams), in pc order.
func (p *Program) MemAccesses() []MemAccessInfo {
	return append([]MemAccessInfo(nil), p.memAccess...)
}

// MemAccessFor recomputes the table for an arbitrary machine geometry
// from the machine-independent facts recorded at Build time. The WPU
// calls this at Launch so the runtime concordance check uses bounds that
// match its own SIMD width, cache-line size, and thread distribution.
func (p *Program) MemAccessFor(params MemParams) []MemAccessInfo {
	out := make([]MemAccessInfo, 0, len(p.memAccess))
	for _, a := range p.memAccess {
		out = append(out, memInfoFrom(a.PC, a.Store, a.Class, a.StrideBytes, params))
	}
	return out
}

// MemAccessReport renders the per-kernel access-pattern verdicts in a
// stable, golden-file-friendly format, mirroring DivergenceReport: a
// summary line followed by one line per load/store with its class,
// stride, and worst-case transaction/bank/footprint bounds under
// DefaultMemParams.
func (p *Program) MemAccessReport() string {
	var sb strings.Builder
	var n [NumAccessClasses]int
	for _, a := range p.memAccess {
		n[a.AClass]++
	}
	d := DefaultMemParams
	fmt.Fprintf(&sb, "kernel %s: %d accesses (%d uniform, %d coalesced, %d strided, %d gather) [%d lanes, %d B lines, %d banks]\n",
		p.Name, len(p.memAccess), n[AccessUniform], n[AccessCoalesced], n[AccessStrided], n[AccessGather],
		d.Lanes, d.LineBytes, d.Banks)
	for _, a := range p.memAccess {
		op := "ld"
		if a.Store {
			op = "st"
		}
		fmt.Fprintf(&sb, "  %s     @pc %-3d %-10s %s\n", op, a.PC, a.AClass, a.boundSummary())
	}
	return sb.String()
}

// boundSummary renders the stride/transaction/bank/footprint columns.
func (a MemAccessInfo) boundSummary() string {
	var sb strings.Builder
	if a.Class == ClassAffine {
		fmt.Fprintf(&sb, "stride=%+dB ", a.StrideBytes)
	}
	fmt.Fprintf(&sb, "tx<=%d bank<=%d", a.Transactions, a.BankConflict)
	if a.FootprintBytes >= 0 {
		fmt.Fprintf(&sb, " foot=%dB", a.FootprintBytes)
	} else {
		sb.WriteString(" foot=unbounded")
	}
	return sb.String()
}
