package program

import (
	"testing"

	"repro/internal/isa"
)

// Analysis edge cases beyond the basic CFG tests: multi-exit loops,
// branch-to-self, chains of empty arms, and the interaction of the
// subdivide heuristic with loop structure.

func TestLoopWithTwoExits(t *testing.T) {
	//	head:  slt r5, r4, r2 ; beqz r5, exitA
	//	       andi r6, r4, 1 ; bnez r6, exitB
	//	       addi r4, r4, 1 ; jmp head
	//	exitA: halt
	//	exitB: halt
	b := NewBuilder("twoexit")
	b.Label("head")
	b.Slt(5, 4, 2)
	b.Beqz(5, "exitA") // pc 1
	b.Andi(6, 4, 1)
	b.Bnez(6, "exitB") // pc 3
	b.Addi(4, 4, 1)
	b.Jmp("head")
	b.Label("exitA")
	b.Halt()
	b.Label("exitB")
	b.Halt()
	p := b.MustBuild()

	// Neither branch's paths re-join before exit: both arms halt on
	// different instructions.
	for _, pc := range []int{1, 3} {
		bi, ok := p.Branch(pc)
		if !ok {
			t.Fatalf("branch at %d missing", pc)
		}
		if bi.IPdom != NoIPdom {
			t.Fatalf("branch %d ipdom = %d, want NoIPdom (exits diverge)", pc, bi.IPdom)
		}
		if bi.Subdividable {
			t.Fatalf("branch %d subdividable without an ipdom", pc)
		}
	}
}

func TestDiamondInsideLoop(t *testing.T) {
	// A classic diamond nested in a loop: the diamond's ipdom is the join
	// inside the loop, not the loop exit.
	b := NewBuilder("diamond")
	b.Movi(4, 0)
	b.Label("head")
	b.Slt(5, 4, 2)
	b.Beqz(5, "exit") // pc 2
	b.Andi(6, 4, 1)
	b.Bnez(6, "left") // pc 4
	b.Addi(7, 7, 1)
	b.Addi(7, 7, 2)
	b.Jmp("join")
	b.Label("left")
	b.Addi(7, 7, 3)
	b.Label("join")
	b.Addi(4, 4, 1) // pc 9
	b.Jmp("head")
	b.Label("exit")
	b.Halt() // pc 11
	p := b.MustBuild()

	inner, _ := p.Branch(4)
	if inner.IPdom != 9 {
		t.Fatalf("diamond ipdom = %d, want 9", inner.IPdom)
	}
	outer, _ := p.Branch(2)
	if outer.IPdom != 11 {
		t.Fatalf("loop-exit ipdom = %d, want 11", outer.IPdom)
	}
}

func TestSequentialDiamonds(t *testing.T) {
	// Two diamonds in a row: each branch re-converges at its own join,
	// not at the program end.
	b := NewBuilder("seq")
	b.Bnez(1, "a1") // pc 0
	b.Nop()
	b.Jmp("j1")
	b.Label("a1")
	b.Nop()
	b.Label("j1")
	b.Bnez(2, "a2") // pc 4
	b.Nop()
	b.Jmp("j2")
	b.Label("a2")
	b.Nop()
	b.Label("j2")
	b.Halt() // pc 8
	p := b.MustBuild()

	b1, _ := p.Branch(0)
	if b1.IPdom != 4 {
		t.Fatalf("first diamond ipdom = %d, want 4", b1.IPdom)
	}
	b2, _ := p.Branch(4)
	if b2.IPdom != 8 {
		t.Fatalf("second diamond ipdom = %d, want 8", b2.IPdom)
	}
}

func TestTriangleBranch(t *testing.T) {
	// if-without-else: the taken edge goes straight to the join.
	b := NewBuilder("triangle")
	b.Bnez(1, "join") // pc 0
	b.Nop()
	b.Nop()
	b.Label("join")
	b.Halt() // pc 3
	p := b.MustBuild()
	bi, _ := p.Branch(0)
	if bi.IPdom != 3 {
		t.Fatalf("triangle ipdom = %d, want 3", bi.IPdom)
	}
	if !bi.Subdividable {
		t.Fatal("short triangle join not subdividable")
	}
}

func TestInfiniteLoopKernelBuilds(t *testing.T) {
	// A loop with no exit other than halt-on-branch: the back edge makes
	// the halt path the only post-dominator.
	b := NewBuilder("inf")
	b.Label("head")
	b.Addi(4, 4, 1)
	b.Slti(5, 4, 100)
	b.Bnez(5, "head") // pc 2
	b.Halt()
	p := b.MustBuild()
	bi, _ := p.Branch(2)
	if bi.IPdom != 3 {
		t.Fatalf("back-edge ipdom = %d, want 3 (the halt)", bi.IPdom)
	}
}

func TestSubdividableRespectsJumpOnlyBlocks(t *testing.T) {
	// The block after the post-dominator is a single jump: trivially short,
	// so the branch subdivides.
	b := NewBuilder("jmpblock")
	b.Label("head")
	b.Bnez(1, "arm") // pc 1... (label first)
	b.Nop()
	b.Jmp("join")
	b.Label("arm")
	b.Nop()
	b.Label("join")
	b.Jmp("tail")
	b.Label("tail")
	b.Halt()
	p := b.MustBuild()
	bi, ok := p.Branch(0)
	if !ok {
		t.Fatal("branch missing")
	}
	if !bi.Subdividable {
		t.Fatal("jump-only join block should be subdividable")
	}
}

func TestBlocksOfEveryProgramPartitionCode(t *testing.T) {
	// Property over the suite of shapes above: blocks tile the code with
	// no gaps and all successors in range.
	builders := []func() *Program{
		func() *Program {
			b := NewBuilder("p1")
			b.Bnez(1, "x")
			b.Nop()
			b.Label("x")
			b.Halt()
			return b.MustBuild()
		},
		func() *Program {
			b := NewBuilder("p2")
			b.Label("l")
			b.Addi(4, 4, 1)
			b.Slti(5, 4, 3)
			b.Bnez(5, "l")
			b.Halt()
			return b.MustBuild()
		},
	}
	for _, mk := range builders {
		p := mk()
		pc := 0
		for _, blk := range p.Blocks {
			if blk.Start != pc {
				t.Fatalf("%s: gap before block %d", p.Name, blk.ID)
			}
			if blk.End <= blk.Start {
				t.Fatalf("%s: empty block %d", p.Name, blk.ID)
			}
			for _, s := range blk.Succ {
				if s < 0 || s >= len(p.Blocks) {
					t.Fatalf("%s: successor %d out of range", p.Name, s)
				}
			}
			pc = blk.End
		}
		if pc != len(p.Code) {
			t.Fatalf("%s: blocks do not cover the code", p.Name)
		}
	}
}

func TestBuilderHelpersEmitExpectedOpcodes(t *testing.T) {
	b := NewBuilder("ops")
	b.Add(1, 2, 3)
	b.Sub(1, 2, 3)
	b.Mul(1, 2, 3)
	b.Div(1, 2, 3)
	b.Rem(1, 2, 3)
	b.And(1, 2, 3)
	b.Or(1, 2, 3)
	b.Xor(1, 2, 3)
	b.Shl(1, 2, 3)
	b.Shr(1, 2, 3)
	b.Slt(1, 2, 3)
	b.Sle(1, 2, 3)
	b.Seq(1, 2, 3)
	b.Sne(1, 2, 3)
	b.Min(1, 2, 3)
	b.Max(1, 2, 3)
	b.Fadd(1, 2, 3)
	b.Fsub(1, 2, 3)
	b.Fmul(1, 2, 3)
	b.Fdiv(1, 2, 3)
	b.Fmin(1, 2, 3)
	b.Fmax(1, 2, 3)
	b.Fslt(1, 2, 3)
	b.Fsle(1, 2, 3)
	b.Fneg(1, 2)
	b.Fabs(1, 2)
	b.Itof(1, 2)
	b.Ftoi(1, 2)
	b.Fmovi(1, 2.5)
	b.Mov(1, 2)
	b.Movi(1, 7)
	b.Ld(1, 2, 8)
	b.St(1, 2, 8)
	b.Barrier()
	b.Halt()
	p := b.MustBuild()
	want := []isa.Op{
		isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.REM,
		isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR,
		isa.SLT, isa.SLE, isa.SEQ, isa.SNE, isa.MIN, isa.MAX,
		isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV, isa.FMIN, isa.FMAX,
		isa.FSLT, isa.FSLE, isa.FNEG, isa.FABS, isa.ITOF, isa.FTOI,
		isa.FMOVI, isa.MOV, isa.MOVI, isa.LD, isa.ST, isa.BARRIER, isa.HALT,
	}
	if len(p.Code) != len(want) {
		t.Fatalf("emitted %d instructions, want %d", len(p.Code), len(want))
	}
	for i, op := range want {
		if p.Code[i].Op != op {
			t.Fatalf("inst %d: got %s, want %s", i, p.Code[i].Op, op)
		}
	}
}
