package program

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

// findingsWith filters findings by check name.
func findingsWith(fs []Finding, check string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Check == check {
			out = append(out, f)
		}
	}
	return out
}

// TestDefUseErrOnUndefinedRead: with inputs declared, reading a register no
// path defines is a build-failing error.
func TestDefUseErrOnUndefinedRead(t *testing.T) {
	b := NewBuilder("undef-read")
	b.DeclareInputs(4)
	b.Add(5, 4, 6) // r6 never defined, not declared
	b.Halt()
	_, err := b.Build()
	if err == nil {
		t.Fatal("Build accepted a read of undefined r6")
	}
	if !strings.Contains(err.Error(), "def-use") || !strings.Contains(err.Error(), "r6") {
		t.Fatalf("error does not name the def-use violation: %v", err)
	}
}

// TestDefUseMustAnalysisJoins: a register defined on only one arm of a
// branch is still undefined at the join (intersection semantics).
func TestDefUseMustAnalysisJoins(t *testing.T) {
	b := NewBuilder("one-arm-def")
	b.DeclareInputs(4)
	b.Bnez(4, "skip")
	b.Movi(5, 7) // r5 defined only on the fallthrough arm
	b.Label("skip")
	b.Add(6, 5, 4) // read at the join
	b.Halt()
	_, err := b.Build()
	if err == nil {
		t.Fatal("Build accepted a join-point read of a one-arm definition")
	}
	if !strings.Contains(err.Error(), "r5") {
		t.Fatalf("error does not name r5: %v", err)
	}
}

// TestDefUseCheckGatedOnDeclaration: the same kernel without declarations
// builds fine — the check only fires when the author opted in.
func TestDefUseCheckGatedOnDeclaration(t *testing.T) {
	b := NewBuilder("undeclared")
	b.Add(5, 4, 6)
	b.Halt()
	if _, err := b.Build(); err != nil {
		t.Fatalf("undeclared kernel should build permissively: %v", err)
	}
}

// TestDeadDefWarn: a value written and never read is a warning — Build
// tolerates it, MustVerify rejects it.
func TestDeadDefWarn(t *testing.T) {
	b := NewBuilder("dead-def")
	b.Movi(4, 1) // never read
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("warnings must not fail Build: %v", err)
	}
	fs := findingsWith(p.Verify(), "dead-def")
	if len(fs) != 1 || fs[0].Severity != Warn {
		t.Fatalf("want exactly one dead-def warning, got %v", fs)
	}
	if !strings.Contains(fs[0].Msg, "r4") {
		t.Fatalf("warning does not name r4: %v", fs[0])
	}
}

// TestR0WriteWarn: writes to the hardwired zero register are flagged.
func TestR0WriteWarn(t *testing.T) {
	b := NewBuilder("r0-write")
	b.Movi(0, 7)
	b.Halt()
	p := b.MustBuild()
	fs := findingsWith(p.Verify(), "dead-def")
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "r0") {
		t.Fatalf("want one r0-write warning, got %v", fs)
	}
}

// TestMustVerifyPanicsOnWarnings: MustVerify is the strict entry point the
// benchmark kernels use — warnings are fatal there.
func TestMustVerifyPanicsOnWarnings(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustVerify did not panic on a dead-def warning")
		}
		if !strings.Contains(r.(string), "dead-def") {
			t.Fatalf("panic does not name the finding: %v", r)
		}
	}()
	b := NewBuilder("strict")
	b.Movi(4, 1)
	b.Halt()
	b.MustVerify()
}

// TestBarrierDivergenceWarn: a barrier reachable on only one arm of a
// data-dependent branch can deadlock the warp (paper §3.4) — flagged as a
// warning.
func TestBarrierDivergenceWarn(t *testing.T) {
	b := NewBuilder("divergent-barrier")
	b.Ld(4, 1, 0) // load result: varying per thread
	b.Beqz(4, "skip")
	b.Barrier() // only threads with r4 != 0 arrive
	b.Label("skip")
	b.Halt()
	p := b.MustBuild()
	fs := findingsWith(p.Verify(), "barrier-divergence")
	if len(fs) != 1 || fs[0].Severity != Warn {
		t.Fatalf("want one barrier-divergence warning, got %v", fs)
	}
}

// TestBarrierUniformPredicateClean: branching over a barrier on a uniform
// (non-varying) predicate is legal and must not be flagged.
func TestBarrierUniformPredicateClean(t *testing.T) {
	b := NewBuilder("uniform-barrier")
	b.Movi(4, 1) // constant: warp-uniform
	b.Beqz(4, "skip")
	b.Barrier()
	b.Label("skip")
	b.Halt()
	p := b.MustBuild()
	if fs := findingsWith(p.Verify(), "barrier-divergence"); len(fs) != 0 {
		t.Fatalf("uniform-predicate barrier wrongly flagged: %v", fs)
	}
}

// TestBarrierAfterReconvergenceClean: a barrier placed at the branch's
// re-convergence point is safe — all threads reach it.
func TestBarrierAfterReconvergenceClean(t *testing.T) {
	b := NewBuilder("post-join-barrier")
	b.Ld(4, 1, 0)
	b.Beqz(4, "join")
	b.Movi(5, 1)
	b.Label("join")
	b.Barrier()
	b.Halt()
	p := b.MustBuild()
	if fs := findingsWith(p.Verify(), "barrier-divergence"); len(fs) != 0 {
		t.Fatalf("post-reconvergence barrier wrongly flagged: %v", fs)
	}
}

// TestBoundsErrOnOverflow: a tid-affine store past the declared region end
// is a build-failing error.
func TestBoundsErrOnOverflow(t *testing.T) {
	b := NewBuilder("oob-store")
	b.DeclareRegion(4, 8) // 8 words
	b.DeclareThreads(16)  // tids 0..15
	b.Shli(5, 1, 3)       // tid*8: byte offset of word tid
	b.Add(5, 5, 4)
	b.St(4, 5, 0) // word tid of an 8-word region, tids up to 15: overflow
	b.Halt()
	_, err := b.Build()
	if err == nil {
		t.Fatal("Build accepted a store past the region end")
	}
	if !strings.Contains(err.Error(), "mem-bounds") {
		t.Fatalf("error does not name mem-bounds: %v", err)
	}
}

// TestBoundsCleanWhenSized: the same kernel with a big-enough region.
func TestBoundsCleanWhenSized(t *testing.T) {
	b := NewBuilder("in-bounds-store")
	b.DeclareRegion(4, 16)
	b.DeclareThreads(16)
	b.Shli(5, 1, 3)
	b.Add(5, 5, 4)
	b.St(4, 5, 0)
	b.Halt()
	if _, err := b.Build(); err != nil {
		t.Fatalf("in-bounds store rejected: %v", err)
	}
}

// TestBoundsNegativeOffset: a negative constant offset below the region
// base is caught too.
func TestBoundsNegativeOffset(t *testing.T) {
	b := NewBuilder("underflow")
	b.DeclareRegion(4, 8)
	b.DeclareThreads(4)
	b.Ld(5, 4, -8)
	b.Halt()
	_, err := b.Build()
	if err == nil {
		t.Fatal("Build accepted a load below the region base")
	}
	if !strings.Contains(err.Error(), "mem-bounds") {
		t.Fatalf("error does not name mem-bounds: %v", err)
	}
}

// TestRegionDeclValidation: bad region declarations fail the build with a
// clear message rather than reaching the verifier.
func TestRegionDeclValidation(t *testing.T) {
	cases := []struct {
		name string
		prep func(b *Builder)
	}{
		{"region on r0", func(b *Builder) { b.DeclareRegion(0, 8) }},
		{"zero words", func(b *Builder) { b.DeclareRegion(4, 0) }},
		{"duplicate region", func(b *Builder) {
			b.DeclareRegion(4, 8)
			b.DeclareRegion(4, 8)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder("bad-region")
			tc.prep(b)
			b.Halt()
			if _, err := b.Build(); err == nil {
				t.Fatal("Build accepted an invalid region declaration")
			}
		})
	}
}

// TestReconvergenceMismatchDetected: hand-tampering a built program's
// branch metadata is caught by the verifier's independent CHK
// recomputation.
func TestReconvergenceMismatchDetected(t *testing.T) {
	p := mustIfElse(t)
	for pc, bi := range p.branches {
		bi.IPdom = NoIPdom // lie: claim the paths never re-join
		p.branches[pc] = bi
	}
	fs := findingsWith(p.Verify(), "reconvergence")
	if len(fs) == 0 {
		t.Fatal("tampered re-convergence metadata not detected")
	}
	for _, f := range fs {
		if f.Severity != Err {
			t.Fatalf("reconvergence mismatch must be an error: %v", f)
		}
	}
}

// TestReconvPCMatchesBranchMetadata: the verified re-convergence table the
// WPU consumes agrees with the branch metadata on a healthy program.
func TestReconvPCMatchesBranchMetadata(t *testing.T) {
	p := mustIfElse(t)
	if !p.Verified() {
		t.Fatal("built program is not marked verified")
	}
	checked := 0
	for pc, in := range p.Code {
		if !in.Op.IsBranch() {
			continue
		}
		r, ok := p.ReconvPC(pc)
		if !ok {
			t.Fatalf("no reconv entry for branch @pc %d", pc)
		}
		bi, _ := p.Branch(pc)
		if r != bi.IPdom {
			t.Fatalf("branch @pc %d: reconv table %d != metadata ipdom %d", pc, r, bi.IPdom)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("kernel has no branches — test is vacuous")
	}
}

// TestVerifyCatchesUnreachableBlock: code after an unconditional jump that
// nothing targets is a hard error.
func TestVerifyCatchesUnreachableBlock(t *testing.T) {
	b := NewBuilder("unreachable")
	b.Jmp("end")
	b.Movi(4, 1) // unreachable
	b.Label("end")
	b.Halt()
	_, err := b.Build()
	if err == nil {
		t.Fatal("Build accepted unreachable code")
	}
	if !strings.Contains(err.Error(), "reachability") {
		t.Fatalf("error does not name reachability: %v", err)
	}
}

// TestVerifyOnTamperedCode: corrupting an instruction in a built program
// (simulating a bad raw-emit path) shows up in Verify's shape pass.
func TestVerifyOnTamperedCode(t *testing.T) {
	p := mustIfElse(t)
	p.Code[1] = isa.Inst{Op: isa.Op(250), Dst: 4} // invalid opcode
	fs := p.Verify()
	if len(findingsWith(fs, "cfg-shape")) == 0 {
		t.Fatalf("invalid opcode not caught by shape check: %v", fs)
	}
}

// TestFormatFindingsStable: formatting is deterministic and names every
// field a CI log reader needs.
func TestFormatFindingsStable(t *testing.T) {
	fs := []Finding{
		{Check: "dead-def", Severity: Warn, PC: 3, Block: 1, Msg: "r4 defined here is never read"},
		{Check: "def-use", Severity: Err, PC: 1, Block: 0, Msg: "r5 may be read before it is defined"},
	}
	sortFindings(fs)
	out := FormatFindings(fs)
	if !strings.Contains(out, "[error]") || !strings.Contains(out, "[warn]") {
		t.Fatalf("severities missing from output:\n%s", out)
	}
	if strings.Index(out, "def-use") > strings.Index(out, "dead-def") {
		t.Fatalf("findings not sorted by pc:\n%s", out)
	}
}

// mustIfElse builds the shared if/else kernel used by the tamper tests.
func mustIfElse(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("ifelse-v")
	b.Bnez(1, "then")
	b.Addi(4, 0, 1)
	b.Jmp("join")
	b.Label("then")
	b.Addi(4, 0, 2)
	b.Label("join")
	b.Add(5, 4, 4)
	b.Halt()
	return b.MustBuild()
}
