package program

import (
	"testing"

	"repro/internal/isa"
)

// FuzzCostModel cross-checks the static cost model against a concrete
// multi-tid interpreter on loop-free programs (the memfuzz generator:
// forward-only branches, so every (pc, tid) execution happens at most
// once and the interpreter enumerates the exact dynamic behaviour). The
// model's per-thread claims must hold for every thread:
//
//   - each thread's execution count of every basic block lies inside the
//     block's static Execs interval (this is the claim the post-dominator
//     lower-bound fixpoint and the loop-trip upper bounds compose into);
//   - no thread executes a pc more often than the pc's static issue
//     bound (one SIMD issue covers at least that thread's one slot, so
//     per-thread executions can never exceed total issues);
//   - the summed guaranteed work Σ_blocks Execs.Lo·len — the lower
//     bound Ticks.Lo is built from — never exceeds the cheapest thread's
//     executed instruction count.
func FuzzCostModel(f *testing.F) {
	// Seeds: a tid-dependent branch over an ALU diamond, a strided
	// store/load pair, a straight-line program, garbage.
	f.Add([]byte{5, 4, 1, 19, 2, 4, 1, 9, 1, 23, 5, 4})
	f.Add([]byte{14, 4, 33, 23, 5, 4, 24, 40, 4})
	f.Add([]byte{1, 4, 7, 2, 5, 4, 3, 6, 5})
	f.Add([]byte{21, 1, 1, 23, 2, 4, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := buildMemFuzzProgram(data)
		if p == nil {
			return
		}
		const T = 6
		cp := CostParams{
			WPUs: 1, Warps: 1, Width: T, Threads: T,
			Mem: MemParams{Lanes: T, LineBytes: 32, Banks: 4, TidStep: 1},
		}
		m := p.CostModelFor(cp)

		visits := make([][]int64, T) // visits[tid][pc]
		minOps := int64(-1)
		for tid := 0; tid < T; tid++ {
			visits[tid] = make([]int64, len(p.Code))
			var rf isa.RegFile
			rf.Set(1, int64(tid))         // global tid
			rf.Set(2, T)                  // uniform thread count
			rf.Set(3, int64((tid*7+3)%5)) // chunk-local index, ⊆ [0, T-1]
			mem := make(map[uint64]int64)
			pc := 0
			ops := int64(0)
			for steps := 0; steps <= len(p.Code); steps++ {
				in := p.Code[pc]
				visits[tid][pc]++
				ops++
				if in.Op == isa.HALT {
					break
				}
				switch {
				case in.Op.IsMem():
					addr := uint64(rf.Get(in.SrcA) + in.Imm)
					if in.Op == isa.ST {
						mem[addr] = rf.Get(in.SrcB)
					} else {
						rf.Set(in.Dst, mem[addr])
					}
					pc++
				case in.Op.IsBranch():
					if isa.BranchTaken(in, &rf) {
						pc = in.Target
					} else {
						pc++
					}
				case in.Op == isa.JMP:
					pc = in.Target
				default:
					isa.ExecALU(in, &rf)
					pc++
				}
			}
			if minOps < 0 || ops < minOps {
				minOps = ops
			}
		}

		for tid := 0; tid < T; tid++ {
			for _, b := range m.Blocks {
				got := visits[tid][p.Blocks[b.ID].Start]
				if !b.Execs.Contains(got) {
					t.Fatalf("tid %d executed block B%d %d times, static bound %s\n%s",
						tid, b.ID, got, b.Execs, p.Disassemble())
				}
			}
			for pc := range p.Code {
				iv := CostInterval{0, m.Issues[pc].Hi}
				if v := visits[tid][pc]; v > 0 && !iv.Contains(v) {
					t.Fatalf("tid %d executed pc %d %d times, static issue bound %s\n%s",
						tid, pc, v, m.Issues[pc], p.Disassemble())
				}
			}
		}

		lowerOps := int64(0)
		for _, b := range m.Blocks {
			lowerOps += b.Execs.Lo * int64(p.Blocks[b.ID].Len())
		}
		if lowerOps > minOps {
			t.Fatalf("static guaranteed work %d exceeds cheapest thread's %d executed instructions\n%s",
				lowerOps, minOps, p.Disassemble())
		}
	})
}
