package program

import (
	"testing"

	"repro/internal/isa"
)

// divFuzzOps is the opcode menu for the divergence-analysis fuzzer: ALU and
// forward control flow only. Memory ops are excluded (LD is always
// divergent, trivially sound) and targets are forced forward so programs
// are loop-free — a concrete interpreter can then enumerate every (tid,
// block) state exactly once. Loop widening is covered by the table-driven
// tests instead.
var divFuzzOps = []isa.Op{
	isa.NOP, isa.MOV, isa.MOVI, isa.ADD, isa.SUB, isa.MUL, isa.DIV,
	isa.AND, isa.XOR, isa.SHL, isa.SLT, isa.SEQ, isa.MIN,
	isa.ADDI, isa.MULI, isa.SHLI, isa.ANDI, isa.SLTI,
	isa.ITOF, isa.FTOI, isa.BEQZ, isa.BNEZ, isa.JMP,
}

// buildDivFuzzProgram decodes 3-byte instruction encodings (op, b1, b2)
// into a loop-free program with a trailing HALT, and builds it. Branch and
// jump targets are decoded strictly forward: pc+1 + b1 mod (insts-pc).
// Returns nil when Build rejects the program (fine — the contract under
// test is the analysis, not the builder).
func buildDivFuzzProgram(data []byte) *Program {
	const maxInsts = 48
	n := len(data) / 3
	if n > maxInsts {
		n = maxInsts
	}
	if n == 0 {
		return nil
	}
	b := NewBuilder("divfuzz")
	for i := 0; i < n; i++ {
		b0, b1, b2 := data[i*3], data[i*3+1], data[i*3+2]
		op := divFuzzOps[int(b0)%len(divFuzzOps)]
		in := isa.Inst{
			Op:   op,
			Dst:  isa.Reg(b1 % isa.NumRegs),
			SrcA: isa.Reg(b2 % isa.NumRegs),
			SrcB: isa.Reg((b1 >> 3) % isa.NumRegs),
		}
		switch op {
		case isa.BEQZ, isa.BNEZ, isa.JMP:
			in.Target = i + 1 + int(b1)%(n-i) // forward only: (pc, n]
		case isa.MOVI, isa.ADDI, isa.MULI, isa.SHLI, isa.ANDI, isa.SLTI:
			in.Imm = int64(int8(b2))
		}
		b.Emit(in)
	}
	b.Emit(isa.Inst{Op: isa.HALT})
	p, err := b.Build()
	if err != nil {
		return nil
	}
	return p
}

// FuzzDivergence cross-checks the static divergence analysis against
// concrete multi-tid interpretation: for every (block, register) the
// interpreter reaches, an exact claim must predict the value from tid
// alone, a stride claim must leave value − s·tid equal across tids (mod
// 2^64, exactly as the machine wraps), and in particular anything the
// analysis calls uniform must be equal across all reaching tids.
func FuzzDivergence(f *testing.F) {
	// Seeds: a diamond with a per-arm constant, straight-line affine
	// arithmetic into a branch, garbage.
	f.Add([]byte{21, 1, 1, 2, 4, 7, 3, 37, 1})
	f.Add([]byte{14, 4, 1, 13, 5, 4, 20, 0, 5})
	f.Add([]byte{255, 255, 255, 7, 3, 9, 100, 50, 25})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := buildDivFuzzProgram(data)
		if p == nil {
			return
		}
		div := p.analyzeDivergence(p.reachableBlocks())
		const T = 6
		blockOf := p.blockOf()
		reached := make([][T]bool, len(p.Blocks))
		vals := make([][T][isa.NumRegs]int64, len(p.Blocks))
		for tid := 0; tid < T; tid++ {
			var rf isa.RegFile
			rf.Set(1, int64(tid))         // global tid
			rf.Set(2, T)                  // uniform thread count
			rf.Set(3, int64((tid*7+3)%5)) // divergent ABI register
			pc := 0
			for steps := 0; steps <= len(p.Code); steps++ {
				blk := blockOf[pc]
				if p.Blocks[blk].Start == pc && !reached[blk][tid] {
					reached[blk][tid] = true
					for r := 0; r < isa.NumRegs; r++ {
						vals[blk][tid][r] = rf.Get(isa.Reg(r))
					}
				}
				in := p.Code[pc]
				if in.Op == isa.HALT {
					break
				}
				switch {
				case in.Op.IsBranch():
					if isa.BranchTaken(in, &rf) {
						pc = in.Target
					} else {
						pc++
					}
				case in.Op == isa.JMP:
					pc = in.Target
				default:
					isa.ExecALU(in, &rf)
					pc++
				}
			}
		}

		for blk := range p.Blocks {
			var tids []int
			for tid := 0; tid < T; tid++ {
				if reached[blk][tid] {
					tids = append(tids, tid)
				}
			}
			if len(tids) == 0 || !div.seen[blk] {
				continue
			}
			for r := 0; r < isa.NumRegs; r++ {
				claim := div.in[blk][r]
				switch claim.kind {
				case vExact:
					if claim.region >= 0 {
						t.Fatalf("block %d r%d: region-relative claim in a region-free program", blk, r)
					}
					for _, tid := range tids {
						want := claim.c0 + claim.ct*int64(tid)
						if got := vals[blk][tid][r]; got != want {
							t.Fatalf("block %d r%d tid %d: exact claim %d+%d*tid but concrete value %d\n%s",
								blk, r, tid, claim.c0, claim.ct, got, p.Disassemble())
						}
					}
				case vStride:
					base := uint64(vals[blk][tids[0]][r]) - uint64(claim.s)*uint64(tids[0])
					for _, tid := range tids[1:] {
						if got := uint64(vals[blk][tid][r]) - uint64(claim.s)*uint64(tid); got != base {
							t.Fatalf("block %d r%d tid %d: stride-%d claim broken (base %d vs %d)\n%s",
								blk, r, tid, claim.s, base, got, p.Disassemble())
						}
					}
				}
			}
		}
	})
}
