// Static divergence dataflow analysis.
//
// Classifies every register value at every program point on the lattice
//
//	uniform  ⊑  tid-affine (a·tid + b)  ⊑  divergent
//
// in the style of Coutinho et al. ("Divergence Analysis and Optimizations",
// PACT 2011) with the affine-constraint refinement of Sampaio et al. (see
// PAPERS.md), adapted to the DWS execution model. The results drive three
// consumers: the §4.3 subdivide-branch selection (a branch whose predicate
// is provably warp-uniform can never split a warp, so Subdividable demands
// *divergence-capable ∧ short-join* rather than short-join alone, and the
// WPU front end steers statically-uniform branches with a single-lane fast
// path), the verifier's memory-bounds check (the exact-affine component
// below subsumes its previous ad-hoc pattern-matching), and per-access
// classification of which loads/stores can produce intra-warp memory
// divergence (a warp-uniform address touches one line: every lane hits or
// misses together).
//
// Soundness is defined against the launch ABI (sim.Threads / WPU.Launch):
// r0 is hardwired zero, r1 is the global thread id, r2 is the warp-uniform
// thread count, region base registers (DeclareRegion) hold warp-uniform
// buffer bases, and inputs declared via DeclareUniformInputs hold the same
// scalar parameter in every thread. r3 (local index) and every other
// declared input may differ per thread, so they enter as divergent. "Uniform" is a claim about the lanes
// that co-execute in one warp split — under DWS that is a strictly harder
// claim than under lockstep SIMT, because warp splits outlive re-convergence
// points (BranchBypass, §5.3), arise from memory divergence as well as
// branches, and PC-based re-convergence (§4.5) happily merges sibling splits
// whose loop trip counts have drifted apart. The three divergence-injection
// rules below (sync points, trip-desynchronised loops) account for that; the
// trace-backed concordance test in internal/workloads replays every
// benchmark kernel and asserts no branch classified uniform here ever
// dynamically diverges.
package program

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
)

// Class is the divergence classification of a value, branch predicate, or
// memory-access address.
type Class uint8

const (
	// ClassUniform marks a value provably equal across all co-executing
	// lanes of any warp split, for every launch honouring the ABI.
	ClassUniform Class = iota
	// ClassAffine marks a value provably equal to a·tid + b with a ≠ 0 and
	// warp-uniform a, b: lanes disagree, but in a statically known pattern
	// (the shape the bounds checker and coalescing reasoning care about).
	ClassAffine
	// ClassDivergent is the lattice top: no static claim.
	ClassDivergent
)

// String returns "uniform", "affine", or "divergent".
func (c Class) String() string {
	switch c {
	case ClassUniform:
		return "uniform"
	case ClassAffine:
		return "affine"
	default:
		return "divergent"
	}
}

// AccessInfo is the per-memory-instruction verdict of the divergence
// analysis: how the effective address varies across the lanes of a warp.
// Only affine and divergent addresses can produce intra-warp memory
// divergence (§3.2); a uniform address hits or misses as one.
type AccessInfo struct {
	PC    int
	Store bool
	Class Class
}

// The abstract value domain. Three kinds, ordered vExact ⊑ vStride ⊑ vDiv:
//
//   - vExact: value = (region base) + c0 + ct·tid, with exact non-wrapping
//     coefficients (|c0|, |ct| ≤ affLimit). This is the component the
//     memory-bounds check consumes, and it is path-independent — a pure
//     function of tid — so sync-point and loop forcing never demote it.
//   - vStride: value = (some warp-uniform base) + s·tid, tracked modulo
//     2^64. Go's wrapping int64 arithmetic is exactly the machine's, so
//     stride claims survive overflow where exact ones cannot.
//   - vDiv: the top.
type vKind uint8

const (
	vExact vKind = iota
	vStride
	vDiv
)

// absVal is one abstract value. Unused fields are kept zero so that struct
// equality is lattice-element equality.
type absVal struct {
	kind   vKind
	region int   // vExact: index into p.regions, or -1
	c0, ct int64 // vExact: constant and tid coefficients
	s      int64 // vStride: tid stride mod 2^64
}

var divVal = absVal{kind: vDiv}

// uniformVal is an unknown-but-warp-uniform value (stride 0).
var uniformVal = absVal{kind: vStride}

func exactConst(c int64) absVal { return absVal{kind: vExact, region: -1, c0: c} }

func strideVal(s int64) absVal { return absVal{kind: vStride, s: s} }

// class projects an abstract value onto the three-point lattice.
func (v absVal) class() Class {
	switch v.kind {
	case vExact:
		if v.ct == 0 {
			return ClassUniform
		}
		return ClassAffine
	case vStride:
		if v.s == 0 {
			return ClassUniform
		}
		return ClassAffine
	default:
		return ClassDivergent
	}
}

// stride returns the tid coefficient mod 2^64. Callers must exclude vDiv.
func (v absVal) stride() int64 {
	if v.kind == vExact {
		return v.ct // region bases are warp-uniform
	}
	return v.s
}

// constant reports whether v is an exact region-free constant.
func (v absVal) constant() (int64, bool) {
	if v.kind == vExact && v.region < 0 && v.ct == 0 {
		return v.c0, true
	}
	return 0, false
}

// joinVal is the lattice join. Two different values with the same tid
// stride join to a stride (their bases differ but both are warp-uniform);
// anything else falls to divergent.
func joinVal(a, b absVal) absVal {
	if a == b {
		return a
	}
	if a.kind == vDiv || b.kind == vDiv {
		return divVal
	}
	if sa, sb := a.stride(), b.stride(); sa == sb {
		return strideVal(sa)
	}
	return divVal
}

// affLimit bounds the exact-affine coefficients: comfortably past any real
// region size, far enough from the int64 edge that bounds arithmetic with
// declared thread counts cannot wrap.
const affLimit = int64(1) << 40

// addRange adds two exact coefficients, reporting failure on int64 wrap or
// on leaving the ±affLimit window the exact domain promises.
func addRange(a, b int64) (int64, bool) {
	sum := a + b
	if (b > 0 && sum < a) || (b < 0 && sum > a) {
		return 0, false
	}
	if sum > affLimit || sum < -affLimit {
		return 0, false
	}
	return sum, true
}

// mulRange multiplies two exact coefficients with the same guarantees. The
// divide-back overflow test needs the MinInt64 operands excluded first
// (MinInt64 / -1 itself overflows).
func mulRange(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	const minInt64 = -1 << 63
	if a == minInt64 || b == minInt64 {
		return 0, false
	}
	prod := a * b
	if prod/b != a || prod > affLimit || prod < -affLimit {
		return 0, false
	}
	return prod, true
}

// Transfer-function helpers. Each returns the most precise abstract value
// it can prove; on exact-coefficient overflow they demote to the stride
// component, which wraps exactly like the machine.

func addVals(a, b absVal, sign int64) absVal {
	if a.kind == vDiv || b.kind == vDiv {
		return divVal
	}
	if a.kind == vExact && b.kind == vExact {
		// Addition may carry at most one region base; subtraction must not
		// cancel one (b must be region-free).
		region, exact := a.region, false
		switch {
		case sign > 0 && (a.region < 0 || b.region < 0):
			region, exact = max(a.region, b.region), true
		case sign < 0 && b.region < 0:
			exact = true
		}
		if exact {
			c0, ok0 := addRange(a.c0, sign*b.c0)
			ct, ok1 := addRange(a.ct, sign*b.ct)
			if ok0 && ok1 {
				return absVal{kind: vExact, region: region, c0: c0, ct: ct}
			}
		}
	}
	return strideVal(a.stride() + sign*b.stride())
}

func addImm(a absVal, imm int64) absVal {
	switch a.kind {
	case vExact:
		if c0, ok := addRange(a.c0, imm); ok {
			return absVal{kind: vExact, region: a.region, c0: c0, ct: a.ct}
		}
		return strideVal(a.ct)
	case vStride:
		return a
	default:
		return divVal
	}
}

func mulImm(a absVal, k int64) absVal {
	switch a.kind {
	case vExact:
		if a.region < 0 {
			c0, ok0 := mulRange(a.c0, k)
			ct, ok1 := mulRange(a.ct, k)
			if ok0 && ok1 {
				return absVal{kind: vExact, region: -1, c0: c0, ct: ct}
			}
		}
		return strideVal(a.ct * k)
	case vStride:
		return strideVal(a.s * k)
	default:
		return divVal
	}
}

func mulVals(a, b absVal) absVal {
	if ca, ok := a.constant(); ok {
		return mulImm(b, ca)
	}
	if cb, ok := b.constant(); ok {
		return mulImm(a, cb)
	}
	if a.class() == ClassUniform && b.class() == ClassUniform {
		return uniformVal
	}
	return divVal
}

// regState is the abstract register file at one program point.
type regState [isa.NumRegs]absVal

// stepDiv is the instruction transfer function.
func stepDiv(in isa.Inst, s *regState) {
	if !in.Op.WritesDst() || in.Dst == 0 {
		return
	}
	a := s[in.SrcA]
	b := s[in.SrcB]
	out := divVal
	switch in.Op {
	case isa.MOVI:
		out = exactConst(in.Imm)
	case isa.FMOVI:
		out = uniformVal // same float constant in every lane
	case isa.MOV:
		out = a
	case isa.ADD:
		out = addVals(a, b, 1)
	case isa.SUB:
		out = addVals(a, b, -1)
	case isa.ADDI:
		out = addImm(a, in.Imm)
	case isa.MULI:
		out = mulImm(a, in.Imm)
	case isa.SHLI:
		// The machine shifts by Imm&63 (exec.go); x<<k ≡ x·2^k mod 2^64.
		out = mulImm(a, int64(1)<<uint(in.Imm&63))
	case isa.MUL:
		out = mulVals(a, b)
	case isa.LD:
		out = divVal // depends on memory contents
	default:
		// Every other value-producing op is a deterministic function of its
		// register operands: uniform inputs give a uniform output. Nothing
		// stronger is claimed — in particular no equal-stride rule for
		// comparisons, which is unsound under int64 wraparound.
		uniform := in.Op.ReadsA() && a.class() == ClassUniform
		if uniform && in.Op.ReadsB() && b.class() != ClassUniform {
			uniform = false
		}
		if uniform {
			out = uniformVal
		}
	}
	s[in.Dst] = out
}

// entryState is the abstract register file at kernel entry under the
// launch ABI (see the package comment for the soundness contract).
func (p *Program) entryState() regState {
	var s regState
	for r := range s {
		s[r] = divVal
		if p.uniforms&(1<<r) != 0 {
			s[r] = uniformVal // declared warp-uniform scalar parameter
		}
	}
	s[0] = exactConst(0)
	s[1] = absVal{kind: vExact, region: -1, ct: 1} // global tid
	s[2] = uniformVal                              // thread count
	for i, r := range p.regions {
		s[r.Reg] = absVal{kind: vExact, region: i}
	}
	return s
}

// forceState applies a sync-point/loop forcing mask to a block-entry
// state: every register in the mask is demoted to divergent unless it is
// exact-affine (a pure function of tid is path- and trip-independent, so
// control divergence cannot desynchronise it).
func forceState(s regState, mask uint32) regState {
	if mask == 0 {
		return s
	}
	for r := 0; r < isa.NumRegs; r++ {
		if mask&(1<<r) != 0 && s[r].kind != vExact {
			s[r] = divVal
		}
	}
	return s
}

// divResult is the analysis output consumed by Build, Verify, and the
// divergence report.
type divResult struct {
	in          []regState // per-block entry state (valid where seen)
	seen        []bool
	branchClass map[int]Class // branch pc -> predicate class
	accesses    []accessState // pc-ordered
}

type accessState struct {
	pc    int
	block int
	store bool
	val   absVal // abstract address operand (before Imm displacement)
	imm   int64
}

// divFixpoint runs the inner forward worklist fixpoint under a fixed set
// of per-block forcing masks.
func (p *Program) divFixpoint(reach []bool, forced []uint32) ([]regState, []bool) {
	n := len(p.Blocks)
	in := make([]regState, n)
	seen := make([]bool, n)
	in[0] = forceState(p.entryState(), forced[0])
	seen[0] = true
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			if !reach[i] || !seen[i] {
				continue
			}
			s := in[i]
			for pc := p.Blocks[i].Start; pc < p.Blocks[i].End; pc++ {
				stepDiv(p.Code[pc], &s)
			}
			for _, su := range p.Blocks[i].Succ {
				if !seen[su] {
					in[su] = forceState(s, forced[su])
					seen[su] = true
					changed = true
					continue
				}
				joined := in[su]
				for r := range joined {
					joined[r] = joinVal(joined[r], s[r])
				}
				joined = forceState(joined, forced[su])
				if joined != in[su] {
					in[su] = joined
					changed = true
				}
			}
		}
	}
	return in, seen
}

// divForcing derives the per-block forcing masks from the current
// solution. Two rules:
//
// Rule 1 (sync points, Coutinho's control-dependence rule): for each branch
// whose predicate is not uniform, any register written inside the branch's
// divergence region (blocks reachable from its successors, stopping at the
// immediate post-dominator) is forced at every join inside the region and
// at the re-convergence block itself — different lanes may have run
// different writers, so the value is path-dependent.
//
// Rule 2 (loop widening under trip desynchronisation): DWS lets warp splits
// escape re-convergence (BranchBypass), creates them from memory divergence,
// and PC-merge (§4.5) can fuse sibling splits whose trip counts differ. Any
// loop forward-reachable from a split source (non-uniform branch predicate
// or non-uniform memory address) can therefore run its lanes on different
// iterations, so every register the loop writes is forced throughout the
// loop (again, exact-affine values are exempt: they are functions of tid,
// not of trip count).
func (p *Program) divForcing(reach []bool, in []regState, seen []bool, ipdom []int, blockOf []int) []uint32 {
	n := len(p.Blocks)
	forced := make([]uint32, n)

	written := make([]uint32, n)
	preds := make([]int, n)
	for i := range p.Blocks {
		for pc := p.Blocks[i].Start; pc < p.Blocks[i].End; pc++ {
			if d, ok := instDef(p.Code[pc]); ok {
				written[i] |= 1 << d
			}
		}
		for _, su := range p.Blocks[i].Succ {
			preds[su]++
		}
	}

	// Classify split sources under the current (pre-forcing) solution.
	divBranch := make([]bool, len(p.Code))
	hazard := make([]bool, n)
	for i := 0; i < n; i++ {
		if !reach[i] || !seen[i] {
			continue
		}
		s := in[i]
		for pc := p.Blocks[i].Start; pc < p.Blocks[i].End; pc++ {
			inst := p.Code[pc]
			switch {
			case inst.Op.IsBranch():
				if s[inst.SrcA].class() != ClassUniform {
					divBranch[pc] = true
					hazard[i] = true
				}
			case inst.Op.IsMem():
				if s[inst.SrcA].class() != ClassUniform {
					hazard[i] = true
				}
			}
			stepDiv(inst, &s)
		}
	}

	// Rule 1: sync-point injection.
	for pc, inst := range p.Code {
		if !inst.Op.IsBranch() || !divBranch[pc] {
			continue
		}
		b := blockOf[pc]
		if len(p.Blocks[b].Succ) < 2 {
			continue
		}
		stop := ipdom[b] // -1 re-converges only at exit: no stop block
		region := make([]bool, n)
		stack := append([]int(nil), p.Blocks[b].Succ...)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if v == stop || region[v] {
				continue
			}
			region[v] = true
			stack = append(stack, p.Blocks[v].Succ...)
		}
		var w uint32
		for j := 0; j < n; j++ {
			if region[j] {
				w |= written[j]
			}
		}
		for j := 0; j < n; j++ {
			if region[j] && preds[j] >= 2 {
				forced[j] |= w
			}
		}
		if stop >= 0 {
			forced[stop] |= w
		}
	}

	// Rule 2: widen loops tainted by an upstream split source.
	tainted := make([]bool, n)
	var stack []int
	for i := 0; i < n; i++ {
		if hazard[i] {
			tainted[i] = true
			stack = append(stack, i)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, su := range p.Blocks[v].Succ {
			if !tainted[su] {
				tainted[su] = true
				stack = append(stack, su)
			}
		}
	}
	for _, scc := range stronglyConnected(p.Blocks) {
		loop := len(scc) > 1
		if !loop {
			for _, su := range p.Blocks[scc[0]].Succ {
				if su == scc[0] {
					loop = true
				}
			}
		}
		if !loop {
			continue
		}
		any := false
		var w uint32
		for _, v := range scc {
			if tainted[v] {
				any = true
			}
			w |= written[v]
		}
		if !any {
			continue
		}
		for _, v := range scc {
			forced[v] |= w
		}
	}
	return forced
}

// stronglyConnected returns the strongly connected components of the block
// graph (iterative Tarjan; deterministic order).
func stronglyConnected(blocks []Block) [][]int {
	n := len(blocks)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var (
		sccs    [][]int
		stack   []int
		counter int
	)
	type frame struct {
		v, succIdx int
	}
	for root := 0; root < n; root++ {
		if index[root] >= 0 {
			continue
		}
		work := []frame{{root, 0}}
		index[root], low[root] = counter, counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(work) > 0 {
			f := &work[len(work)-1]
			if f.succIdx < len(blocks[f.v].Succ) {
				w := blocks[f.v].Succ[f.succIdx]
				f.succIdx++
				if index[w] < 0 {
					index[w], low[w] = counter, counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					work = append(work, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			work = work[:len(work)-1]
			if len(work) > 0 {
				if u := work[len(work)-1].v; low[v] < low[u] {
					low[u] = low[v]
				}
			}
			if low[v] == index[v] {
				var scc []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}

// analyzeDivergence runs the outer stabilisation loop: alternate the inner
// fixpoint with forcing-mask derivation until the masks stop growing. The
// masks grow monotonically (forcing only demotes values, which can only
// enlarge the set of non-uniform sources), so this terminates.
func (p *Program) analyzeDivergence(reach []bool) *divResult {
	n := len(p.Blocks)
	ipdom := postDominators(p.Blocks)
	blockOf := p.blockOf()
	forced := make([]uint32, n)
	var (
		in   []regState
		seen []bool
	)
	for {
		in, seen = p.divFixpoint(reach, forced)
		next := p.divForcing(reach, in, seen, ipdom, blockOf)
		same := true
		for i := range next {
			next[i] |= forced[i]
			if next[i] != forced[i] {
				same = false
			}
		}
		if same {
			break
		}
		forced = next
	}

	res := &divResult{in: in, seen: seen, branchClass: make(map[int]Class)}
	for i := 0; i < n; i++ {
		if !reach[i] || !seen[i] {
			continue
		}
		s := in[i]
		for pc := p.Blocks[i].Start; pc < p.Blocks[i].End; pc++ {
			inst := p.Code[pc]
			switch {
			case inst.Op.IsBranch():
				res.branchClass[pc] = s[inst.SrcA].class()
			case inst.Op.IsMem():
				res.accesses = append(res.accesses, accessState{
					pc: pc, block: i, store: inst.Op == isa.ST,
					val: s[inst.SrcA], imm: inst.Imm,
				})
			}
			stepDiv(inst, &s)
		}
	}
	return res
}

// Accesses returns the per-load/store divergence classification recorded
// at Build time, in pc order.
func (p *Program) Accesses() []AccessInfo {
	return append([]AccessInfo(nil), p.accesses...)
}

// DivergenceReport renders the per-kernel divergence analysis verdicts in
// a stable, golden-file-friendly format: every conditional branch with its
// predicate class and subdivide decision (flagging where the analysis
// disagrees with the bare short-block heuristic), and every memory access
// with its address class.
func (p *Program) DivergenceReport() string {
	var sb strings.Builder
	pcs := make([]int, 0, len(p.branches))
	for pc := range p.branches {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)

	var nu, na, nd int
	for _, pc := range pcs {
		switch p.branches[pc].Class {
		case ClassUniform:
			nu++
		case ClassAffine:
			na++
		default:
			nd++
		}
	}
	var au, aa, ad int
	for _, a := range p.accesses {
		switch a.Class {
		case ClassUniform:
			au++
		case ClassAffine:
			aa++
		default:
			ad++
		}
	}
	fmt.Fprintf(&sb, "kernel %s: %d branches (%d uniform, %d affine, %d divergent), %d accesses (%d uniform, %d affine, %d divergent)\n",
		p.Name, len(pcs), nu, na, nd, len(p.accesses), au, aa, ad)

	limit := p.shortLimit
	if limit <= 0 {
		limit = DefaultShortBlockLimit
	}
	blockOf := p.blockOf()
	ai := 0
	for pc := 0; pc < len(p.Code); pc++ {
		if p.Code[pc].Op.IsBranch() {
			bi := p.branches[pc]
			heuristic := false
			if bi.IPdom != NoIPdom {
				heuristic = p.Blocks[blockOf[bi.IPdom]].Len() <= limit
			}
			fmt.Fprintf(&sb, "  branch @pc %-3d %-9s reconv=%s subdividable=%v",
				pc, bi.Class.String(), reconvName(bi.IPdom), bi.Subdividable)
			if heuristic != bi.Subdividable {
				sb.WriteString(" [short-join but statically uniform]")
			}
			sb.WriteByte('\n')
		}
		for ai < len(p.accesses) && p.accesses[ai].PC == pc {
			a := p.accesses[ai]
			op := "ld"
			if a.Store {
				op = "st"
			}
			fmt.Fprintf(&sb, "  %s     @pc %-3d %s\n", op, pc, a.Class)
			ai++
		}
	}
	return sb.String()
}
