package program

import (
	"testing"

	"repro/internal/isa"
)

// fuzzOps is the opcode menu the fuzzer draws from: a representative mix of
// ALU, memory, control-flow, and synchronisation instructions.
var fuzzOps = []isa.Op{
	isa.NOP, isa.MOV, isa.MOVI, isa.ADD, isa.SUB, isa.MUL, isa.SLT,
	isa.ADDI, isa.SHLI, isa.LD, isa.ST, isa.BEQZ, isa.BNEZ, isa.JMP,
	isa.BARRIER, isa.HALT,
}

// decodeFuzzProgram interprets the fuzz input as a sequence of 3-byte
// instruction encodings. Branch targets are taken mod a window slightly
// larger than the program so out-of-range targets (which Build must reject
// cleanly) are also exercised.
func decodeFuzzProgram(data []byte) []isa.Inst {
	const maxInsts = 64
	n := len(data) / 3
	if n > maxInsts {
		n = maxInsts
	}
	code := make([]isa.Inst, 0, n+1)
	total := n + 1 // including the trailing HALT
	for i := 0; i < n; i++ {
		b0, b1, b2 := data[i*3], data[i*3+1], data[i*3+2]
		op := fuzzOps[int(b0)%len(fuzzOps)]
		in := isa.Inst{
			Op:   op,
			Dst:  isa.Reg(b1 % isa.NumRegs),
			SrcA: isa.Reg(b2 % isa.NumRegs),
			SrcB: isa.Reg((b1 >> 3) % isa.NumRegs),
		}
		switch op {
		case isa.BEQZ, isa.BNEZ, isa.JMP:
			// Mostly in-range, occasionally past the end.
			in.Target = int(b2) % (total + 2)
		case isa.MOVI, isa.ADDI, isa.SHLI, isa.LD, isa.ST:
			in.Imm = int64(int8(b2))
		}
		code = append(code, in)
	}
	code = append(code, isa.Inst{Op: isa.HALT})
	return code
}

// FuzzVerify feeds random small programs through Build and checks the
// verifier's contract: it never panics, a successful Build implies a
// program with zero error-severity findings and no unreachable blocks, and
// the two independent post-dominator algorithms agree.
func FuzzVerify(f *testing.F) {
	// Seeds: straight-line, a diamond, a loop, garbage.
	f.Add([]byte{2, 4, 1, 3, 5, 4})
	f.Add([]byte{11, 1, 3, 2, 4, 1, 13, 0, 5, 2, 5, 2, 0, 0, 0})
	f.Add([]byte{7, 4, 1, 12, 4, 0})
	f.Add([]byte{255, 255, 255, 0, 0, 0, 128, 64, 32})
	f.Fuzz(func(t *testing.T, data []byte) {
		code := decodeFuzzProgram(data)
		b := NewBuilder("fuzz")
		for _, in := range code {
			b.Emit(in)
		}
		p, err := b.Build()
		if err != nil {
			// Rejected programs are fine; the contract is a clean error,
			// not a panic (a panic fails the fuzz run on its own).
			return
		}

		// Build succeeded: the verifier must find no errors...
		for _, fd := range p.Verify() {
			if fd.Severity == Err {
				t.Fatalf("Build accepted a program Verify rejects: %v", fd)
			}
		}
		// ...every block must be reachable...
		for i, ok := range p.reachableBlocks() {
			if !ok {
				t.Fatalf("Build accepted unreachable block %d", i)
			}
		}
		// ...the independent post-dominator algorithms must agree...
		bitset, chk := postDominators(p.Blocks), verifiedIPdom(p.Blocks)
		for i := range p.Blocks {
			if bitset[i] != chk[i] {
				t.Fatalf("block %d: bitset ipdom %d != CHK ipdom %d", i, bitset[i], chk[i])
			}
		}
		// ...and every branch must have a re-convergence table entry.
		for pc, in := range p.Code {
			if !in.Op.IsBranch() {
				continue
			}
			if _, ok := p.ReconvPC(pc); !ok {
				t.Fatalf("branch @pc %d missing from the reconv table", pc)
			}
		}

		// Tamper with one instruction and re-verify: findings are expected,
		// panics are not.
		if len(data) > 0 && len(p.Code) > 0 {
			pc := int(data[0]) % len(p.Code)
			saved := p.Code[pc]
			p.Code[pc] = isa.Inst{Op: isa.Op(200 + data[0]%50), Dst: isa.Reg(data[0])}
			_ = p.Verify()
			p.Code[pc] = saved
		}
	})
}
