package program

import (
	"testing"
)

// buildIPdomCase assembles a kernel and returns (program, ipdom-by-block
// from the bitset algorithm, ipdom-by-block from the CHK cross-check).
func buildIPdomCase(t *testing.T, name string, emit func(b *Builder)) (*Program, []int, []int) {
	t.Helper()
	b := NewBuilder(name)
	emit(b)
	p := b.MustBuild()
	return p, postDominators(p.Blocks), verifiedIPdom(p.Blocks)
}

// TestIPdomEdgeCases drives both post-dominator algorithms — the bitset
// fixpoint used by Build and the Cooper-Harvey-Kennedy recomputation used
// by the verifier — through the CFG shapes that historically break ipdom
// implementations, and checks they agree with hand-derived answers.
func TestIPdomEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		emit func(b *Builder)
		// want[blockID] = expected immediate post-dominator block ID,
		// -1 when the paths only re-join at kernel termination.
		want []int
	}{
		{
			// A loop whose body has two distinct back-edges to the header:
			//
			//	B0 header:  bnez r1, exit
			//	B1 body:    bnez r2, header   (first back-edge)
			//	B2 tail:    jmp header        (second back-edge)
			//	B3 exit:    halt
			//
			// The header's ipdom is the exit block because every path out
			// of the loop funnels through it; both back-edge blocks have
			// the header itself as ipdom, since B1's only routes forward
			// (fallthrough to B2, back-edge to B0) re-join at the header.
			name: "loop with two back-edges",
			emit: func(b *Builder) {
				b.Label("header")
				b.Bnez(1, "exit")
				b.Bnez(2, "header")
				b.Jmp("header")
				b.Label("exit")
				b.Halt()
			},
			want: []int{3, 0, 0, -1},
		},
		{
			// Nested divergence: an outer if/else whose then-arm contains an
			// inner if/else. Inner branch re-converges at the inner join,
			// outer branch at the outer join, and the joins are distinct.
			//
			//	B0:  beqz r1, outer_else
			//	B1:  beqz r2, inner_else   (inner branch)
			//	B2:  addi ...; jmp inner_join
			//	B3 inner_else: addi ...
			//	B4 inner_join: jmp outer_join
			//	B5 outer_else: addi ...
			//	B6 outer_join: halt
			name: "nested divergence",
			emit: func(b *Builder) {
				b.Beqz(1, "outer_else")
				b.Beqz(2, "inner_else")
				b.Addi(4, 0, 1)
				b.Jmp("inner_join")
				b.Label("inner_else")
				b.Addi(4, 0, 2)
				b.Label("inner_join")
				b.Jmp("outer_join")
				b.Label("outer_else")
				b.Addi(4, 0, 3)
				b.Label("outer_join")
				b.Halt()
			},
			want: []int{6, 4, 4, 4, 6, 6, -1},
		},
		{
			// A branch whose arms never re-join: each arm halts, so the
			// only common post-dominator is the virtual exit.
			//
			//	B0:  bnez r1, dead_end
			//	B1:  addi ...; halt
			//	B2 dead_end: halt
			name: "ipdom is exit",
			emit: func(b *Builder) {
				b.Bnez(1, "dead_end")
				b.Addi(4, 0, 1)
				b.Halt()
				b.Label("dead_end")
				b.Halt()
			},
			want: []int{-1, -1, -1},
		},
		{
			// Self-loop: a single block branching to itself until the
			// predicate clears, then falling through to halt.
			//
			//	B0:  addi r4, r4, -1; bnez r4, B0
			//	B1:  halt
			name: "self-loop",
			emit: func(b *Builder) {
				b.Label("top")
				b.Addi(4, 4, -1)
				b.Bnez(4, "top")
				b.Halt()
			},
			want: []int{1, -1},
		},
		{
			// Loop with two exits (break in the body): the header's exit
			// test and a body-level early exit both land on the same block.
			// The latch's ipdom is the header it jumps straight back to.
			//
			//	B0 header:  beqz r1, out
			//	B1 body:    bnez r2, out    (break)
			//	B2 latch:   jmp header
			//	B3 out:     halt
			name: "loop with break",
			emit: func(b *Builder) {
				b.Label("header")
				b.Beqz(1, "out")
				b.Bnez(2, "out")
				b.Jmp("header")
				b.Label("out")
				b.Halt()
			},
			want: []int{3, 3, 0, -1},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, bitset, chk := buildIPdomCase(t, tc.name, tc.emit)
			if len(p.Blocks) != len(tc.want) {
				t.Fatalf("got %d blocks, test expects %d — CFG shape drifted", len(p.Blocks), len(tc.want))
			}
			for blk, want := range tc.want {
				if bitset[blk] != want {
					t.Errorf("postDominators: block %d ipdom = %d, want %d", blk, bitset[blk], want)
				}
				if chk[blk] != want {
					t.Errorf("verifiedIPdom: block %d ipdom = %d, want %d", blk, chk[blk], want)
				}
			}
		})
	}
}

// TestIPdomAlgorithmsAgreeOnLatchlessLoop pins the case where a block is
// unreachable *backwards* from the exit (an infinite loop): both
// algorithms must report no post-dominator rather than disagreeing.
func TestIPdomAlgorithmsAgreeOnLatchlessLoop(t *testing.T) {
	b := NewBuilder("infinite")
	b.Label("spin")
	b.Addi(4, 4, 1)
	b.Jmp("spin")
	p, err := b.Build()
	if err != nil {
		t.Fatalf("infinite loops are legal programs: %v", err)
	}
	bitset, chk := postDominators(p.Blocks), verifiedIPdom(p.Blocks)
	for blk := range p.Blocks {
		if bitset[blk] != chk[blk] {
			t.Errorf("block %d: bitset ipdom %d != CHK ipdom %d", blk, bitset[blk], chk[blk])
		}
	}
}
