package program

import (
	"testing"

	"repro/internal/isa"
)

// memFuzzOps extends the divergence-fuzzer menu with loads and stores so
// the memory-access classifier's claims (class, stride, transaction and
// bank-conflict bounds, footprint) face concrete multi-tid execution.
// Targets stay forward-only so programs are loop-free and a concrete
// interpreter enumerates every (pc, tid) execution exactly once.
var memFuzzOps = append(append([]isa.Op(nil), divFuzzOps...), isa.LD, isa.ST)

// buildMemFuzzProgram mirrors buildDivFuzzProgram over the extended menu;
// loads and stores take their address offset from the immediate byte.
func buildMemFuzzProgram(data []byte) *Program {
	const maxInsts = 48
	n := len(data) / 3
	if n > maxInsts {
		n = maxInsts
	}
	if n == 0 {
		return nil
	}
	b := NewBuilder("memfuzz")
	for i := 0; i < n; i++ {
		b0, b1, b2 := data[i*3], data[i*3+1], data[i*3+2]
		op := memFuzzOps[int(b0)%len(memFuzzOps)]
		in := isa.Inst{
			Op:   op,
			Dst:  isa.Reg(b1 % isa.NumRegs),
			SrcA: isa.Reg(b2 % isa.NumRegs),
			SrcB: isa.Reg((b1 >> 3) % isa.NumRegs),
		}
		switch op {
		case isa.BEQZ, isa.BNEZ, isa.JMP:
			in.Target = i + 1 + int(b1)%(n-i) // forward only: (pc, n]
		case isa.MOVI, isa.ADDI, isa.MULI, isa.SHLI, isa.ANDI, isa.SLTI,
			isa.LD, isa.ST:
			in.Imm = int64(int8(b2))
		}
		b.Emit(in)
	}
	b.Emit(isa.Inst{Op: isa.HALT})
	p, err := b.Build()
	if err != nil {
		return nil
	}
	return p
}

// FuzzMemAccess cross-checks the static memory-access analysis against
// concrete multi-tid interpretation on loop-free programs: for every
// executed load/store, a uniform claim demands one shared address, an
// affine claim demands addr − stride·tid constant across tids (mod 2^64,
// exactly as the machine wraps), and the observed distinct-line count,
// per-bank line multiplicity, and address span must respect the static
// transaction, bank-conflict and footprint bounds for the fuzzed machine
// geometry. The tids executed form a subset of the bound's lane range, so
// every bound must dominate by subset monotonicity.
func FuzzMemAccess(f *testing.F) {
	// Seeds: a strided store/load pair over addr = 33·tid, a uniform-base
	// load, garbage.
	f.Add([]byte{14, 4, 33, 23, 5, 4, 24, 40, 4})
	f.Add([]byte{2, 4, 64, 23, 5, 4})
	f.Add([]byte{21, 1, 1, 23, 2, 4, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := buildMemFuzzProgram(data)
		if p == nil {
			return
		}
		// T tids, T-lane bound: the concrete run is one full warp of the
		// fuzzed geometry (minus the tids that halt early on other paths).
		const T = 6
		params := MemParams{Lanes: T, LineBytes: 32, Banks: 4, TidStep: 1}
		info := make(map[int]MemAccessInfo)
		for _, a := range p.MemAccessFor(params) {
			info[a.PC] = a
		}

		executed := make(map[int]map[int]uint64) // pc -> tid -> address
		mem := make(map[uint64]int64)
		for tid := 0; tid < T; tid++ {
			var rf isa.RegFile
			rf.Set(1, int64(tid))         // global tid
			rf.Set(2, T)                  // uniform thread count
			rf.Set(3, int64((tid*7+3)%5)) // divergent ABI register
			pc := 0
			for steps := 0; steps <= len(p.Code); steps++ {
				in := p.Code[pc]
				if in.Op == isa.HALT {
					break
				}
				switch {
				case in.Op.IsMem():
					addr := uint64(rf.Get(in.SrcA) + in.Imm)
					if executed[pc] == nil {
						executed[pc] = make(map[int]uint64)
					}
					executed[pc][tid] = addr
					if in.Op == isa.ST {
						mem[addr] = rf.Get(in.SrcB)
					} else {
						rf.Set(in.Dst, mem[addr])
					}
					pc++
				case in.Op.IsBranch():
					if isa.BranchTaken(in, &rf) {
						pc = in.Target
					} else {
						pc++
					}
				case in.Op == isa.JMP:
					pc = in.Target
				default:
					isa.ExecALU(in, &rf)
					pc++
				}
			}
		}

		for pc, addrs := range executed {
			a, ok := info[pc]
			if !ok {
				t.Fatalf("pc %d executed a memory access the static table does not list\n%s", pc, p.Disassemble())
			}
			var tids []int
			for tid := 0; tid < T; tid++ {
				if _, ok := addrs[tid]; ok {
					tids = append(tids, tid)
				}
			}

			// Class and stride claims.
			switch a.AClass {
			case AccessUniform:
				for _, tid := range tids[1:] {
					if addrs[tid] != addrs[tids[0]] {
						t.Fatalf("pc %d: uniform claim but tid %d at %#x vs tid %d at %#x\n%s",
							pc, tid, addrs[tid], tids[0], addrs[tids[0]], p.Disassemble())
					}
				}
			case AccessCoalesced, AccessStrided:
				base := addrs[tids[0]] - uint64(a.StrideBytes)*uint64(tids[0])
				for _, tid := range tids[1:] {
					if got := addrs[tid] - uint64(a.StrideBytes)*uint64(tid); got != base {
						t.Fatalf("pc %d: stride-%d claim broken at tid %d (base %#x vs %#x)\n%s",
							pc, a.StrideBytes, tid, got, base, p.Disassemble())
					}
				}
			}

			// Transaction and bank-conflict bounds over the observed lines.
			lines := make(map[uint64]bool)
			banks := make(map[uint64]int)
			for _, tid := range tids {
				line := addrs[tid] / uint64(params.LineBytes)
				if !lines[line] {
					lines[line] = true
					banks[line%uint64(params.Banks)]++
				}
			}
			if len(lines) > a.Transactions {
				t.Fatalf("pc %d (%s): observed %d distinct lines, static bound %d\n%s",
					pc, a.AClass, len(lines), a.Transactions, p.Disassemble())
			}
			for _, n := range banks {
				if n > a.BankConflict {
					t.Fatalf("pc %d (%s): observed %d lines on one bank, static bound %d\n%s",
						pc, a.AClass, n, a.BankConflict, p.Disassemble())
				}
			}

			// Footprint: the touched byte range must fit the static bound.
			// Skip claims the uint64 span arithmetic cannot represent.
			if a.FootprintBytes >= 0 {
				lo, hi := addrs[tids[0]], addrs[tids[0]]
				for _, tid := range tids {
					if addrs[tid] < lo {
						lo = addrs[tid]
					}
					if addrs[tid] > hi {
						hi = addrs[tid]
					}
				}
				if span := hi - lo; span < 1<<62 && int64(span)+isa.WordSize > a.FootprintBytes {
					t.Fatalf("pc %d (%s): observed footprint %d B, static bound %d B\n%s",
						pc, a.AClass, int64(span)+isa.WordSize, a.FootprintBytes, p.Disassemble())
				}
			}
		}
	})
}
