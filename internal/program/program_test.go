package program

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

// ifElseKernel builds:
//
//	  bnez r1, then
//	  addi r4, r0, 1   (else arm)
//	  jmp join
//	then:
//	  addi r4, r0, 2
//	join:
//	  add r5, r4, r4
//	  halt
func ifElseKernel(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("ifelse")
	b.Bnez(1, "then")
	b.Addi(4, 0, 1)
	b.Jmp("join")
	b.Label("then")
	b.Addi(4, 0, 2)
	b.Label("join")
	b.Add(5, 4, 4)
	b.Halt()
	return b.MustBuild()
}

func TestIfElseIPdom(t *testing.T) {
	p := ifElseKernel(t)
	bi, ok := p.Branch(0)
	if !ok {
		t.Fatal("branch at pc 0 not found")
	}
	if bi.IPdom != 4 {
		t.Fatalf("ipdom = %d, want 4 (the join block)", bi.IPdom)
	}
	if !bi.Subdividable {
		t.Fatal("short join block should be subdividable")
	}
}

func TestLoopIPdom(t *testing.T) {
	// loop: addi r4, r4, 1; slt r5, r4, r2; bnez r5, loop; halt
	b := NewBuilder("loop")
	b.Label("loop")
	b.Addi(4, 4, 1)
	b.Slt(5, 4, 2)
	b.Bnez(5, "loop")
	b.Halt()
	p := b.MustBuild()
	bi, ok := p.Branch(2)
	if !ok {
		t.Fatal("loop branch not found")
	}
	// The loop back-edge's post-dominator is the exit path (the halt block).
	if bi.IPdom != 3 {
		t.Fatalf("loop branch ipdom = %d, want 3", bi.IPdom)
	}
}

func TestBranchToHaltHasNoIPdom(t *testing.T) {
	// bnez r1, die; addi r4,r0,1; halt; die: halt
	b := NewBuilder("die")
	b.Bnez(1, "die")
	b.Addi(4, 0, 1)
	b.Halt()
	b.Label("die")
	b.Halt()
	p := b.MustBuild()
	bi, ok := p.Branch(0)
	if !ok {
		t.Fatal("branch not found")
	}
	if bi.IPdom != NoIPdom {
		t.Fatalf("ipdom = %d, want NoIPdom", bi.IPdom)
	}
	if bi.Subdividable {
		t.Fatal("branch with no ipdom must not be subdividable")
	}
}

func TestNestedBranches(t *testing.T) {
	//	  bnez r1, outerThen
	//	  nop
	//	  jmp outerJoin
	//	outerThen:
	//	  bnez r2, innerThen
	//	  nop
	//	  jmp innerJoin
	//	innerThen:
	//	  nop
	//	innerJoin:
	//	  nop
	//	outerJoin:
	//	  halt
	b := NewBuilder("nested")
	b.Bnez(1, "outerThen") // pc 0
	b.Nop()
	b.Jmp("outerJoin")
	b.Label("outerThen")
	b.Bnez(2, "innerThen") // pc 3
	b.Nop()
	b.Jmp("innerJoin")
	b.Label("innerThen")
	b.Nop() // pc 6
	b.Label("innerJoin")
	b.Nop() // pc 7
	b.Label("outerJoin")
	b.Halt() // pc 8
	p := b.MustBuild()

	outer, _ := p.Branch(0)
	if outer.IPdom != 8 {
		t.Fatalf("outer ipdom = %d, want 8", outer.IPdom)
	}
	inner, _ := p.Branch(3)
	if inner.IPdom != 7 {
		t.Fatalf("inner ipdom = %d, want 7", inner.IPdom)
	}
}

func TestShortBlockHeuristic(t *testing.T) {
	build := func(padding int) *Program {
		b := NewBuilder("pad")
		b.Bnez(1, "then")
		b.Nop()
		b.Jmp("join")
		b.Label("then")
		b.Nop()
		b.Label("join")
		for i := 0; i < padding; i++ {
			b.Nop()
		}
		b.Halt()
		return b.MustBuild()
	}
	// Join block has padding+1 instructions (pads + halt).
	p := build(DefaultShortBlockLimit - 1) // exactly at the limit
	if bi, _ := p.Branch(0); !bi.Subdividable {
		t.Fatal("block at limit should be subdividable")
	}
	p = build(DefaultShortBlockLimit) // one over
	if bi, _ := p.Branch(0); bi.Subdividable {
		t.Fatal("block over limit should not be subdividable")
	}
}

func TestShortBlockLimitOverride(t *testing.T) {
	b := NewBuilder("custom")
	b.ShortBlockLimit = 2
	b.Bnez(1, "then")
	b.Nop()
	b.Jmp("join")
	b.Label("then")
	b.Nop()
	b.Label("join")
	b.Nop()
	b.Nop() // join block: nop, nop, halt = 3 instructions > limit 2
	b.Halt()
	p := b.MustBuild()
	if bi, _ := p.Branch(0); bi.Subdividable {
		t.Fatal("override limit not honoured")
	}
}

func TestBuildErrors(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		if _, err := NewBuilder("e").Build(); err == nil {
			t.Fatal("empty program built")
		}
	})
	t.Run("undefined label", func(t *testing.T) {
		b := NewBuilder("u")
		b.Jmp("nowhere")
		b.Halt()
		if _, err := b.Build(); err == nil {
			t.Fatal("undefined label not rejected")
		}
	})
	t.Run("fall off end", func(t *testing.T) {
		b := NewBuilder("f")
		b.Nop()
		if _, err := b.Build(); err == nil {
			t.Fatal("fall-off-end not rejected")
		}
	})
	t.Run("duplicate label panics", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate label did not panic")
			}
		}()
		b := NewBuilder("d")
		b.Label("x")
		b.Label("x")
	})
}

func TestCFGBlockPartition(t *testing.T) {
	p := ifElseKernel(t)
	// Expect blocks: [0,1) branch; [1,3) else+jmp; [3,4) then; [4,6) join.
	if len(p.Blocks) != 4 {
		t.Fatalf("got %d blocks, want 4: %+v", len(p.Blocks), p.Blocks)
	}
	// Every instruction belongs to exactly one block, in order.
	pc := 0
	for _, blk := range p.Blocks {
		if blk.Start != pc {
			t.Fatalf("block %d starts at %d, want %d", blk.ID, blk.Start, pc)
		}
		pc = blk.End
	}
	if pc != len(p.Code) {
		t.Fatalf("blocks cover %d instructions, want %d", pc, len(p.Code))
	}
}

func TestCFGSuccessors(t *testing.T) {
	p := ifElseKernel(t)
	// Block 0 (branch) -> blocks 1 (fallthrough) and 2 (taken).
	if got := p.Blocks[0].Succ; len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("block 0 succ = %v, want [1 2]", got)
	}
	// Block 1 (jmp join) -> block 3.
	if got := p.Blocks[1].Succ; len(got) != 1 || got[0] != 3 {
		t.Fatalf("block 1 succ = %v, want [3]", got)
	}
	// Block 3 (halt) -> none.
	if got := p.Blocks[3].Succ; len(got) != 0 {
		t.Fatalf("halt block succ = %v, want none", got)
	}
}

func TestDisassembleMentionsMetadata(t *testing.T) {
	p := ifElseKernel(t)
	d := p.Disassemble()
	if !strings.Contains(d, "ipdom=@4") {
		t.Fatalf("disassembly missing ipdom annotation:\n%s", d)
	}
	if !strings.Contains(d, "subdividable") {
		t.Fatalf("disassembly missing subdividable annotation:\n%s", d)
	}
	if !strings.Contains(d, "B0:") {
		t.Fatalf("disassembly missing block labels:\n%s", d)
	}
}

func TestBranchTargetSameBlockAsFallthrough(t *testing.T) {
	// A branch whose target equals the fallthrough must not duplicate the
	// successor edge.
	b := NewBuilder("self")
	b.Bnez(1, "next")
	b.Label("next")
	b.Halt()
	p := b.MustBuild()
	if got := p.Blocks[0].Succ; len(got) != 1 {
		t.Fatalf("succ = %v, want single edge", got)
	}
	bi, _ := p.Branch(0)
	if bi.IPdom != 1 {
		t.Fatalf("ipdom = %d, want 1", bi.IPdom)
	}
}

func TestNumBranches(t *testing.T) {
	p := ifElseKernel(t)
	if p.NumBranches() != 1 {
		t.Fatalf("NumBranches = %d, want 1", p.NumBranches())
	}
}

func TestWhileLoopWithBody(t *testing.T) {
	// i = 0; while (i < n) { body; i++ } ; halt
	// check: the exit branch's ipdom is the halt block.
	b := NewBuilder("while")
	b.Movi(4, 0) // i = 0
	b.Label("head")
	b.Slt(5, 4, 2)
	b.Beqz(5, "exit") // pc 2
	b.Nop()           // body
	b.Addi(4, 4, 1)
	b.Jmp("head")
	b.Label("exit")
	b.Halt() // pc 6
	p := b.MustBuild()
	bi, _ := p.Branch(2)
	if bi.IPdom != 6 {
		t.Fatalf("while-exit branch ipdom = %d, want 6", bi.IPdom)
	}
}

func TestDataDependentBranchInsideLoop(t *testing.T) {
	// The canonical DWS shape: a divergent if inside a loop. The if's ipdom
	// must be inside the loop (the join before the increment).
	b := NewBuilder("divloop")
	b.Movi(4, 0)
	b.Label("head")
	b.Slt(5, 4, 2)
	b.Beqz(5, "exit") // pc 2: loop exit
	b.And(6, 4, 1)    // parity of iteration count + tid: genuinely divergent
	b.Bnez(6, "odd")  // pc 4: divergent if
	b.Addi(7, 7, 1)
	b.Jmp("join")
	b.Label("odd")
	b.Addi(7, 7, 2) // pc 7
	b.Label("join")
	b.Addi(4, 4, 1) // pc 8
	b.Jmp("head")
	b.Label("exit")
	b.Halt()
	p := b.MustBuild()
	bi, _ := p.Branch(4)
	if bi.IPdom != 8 {
		t.Fatalf("inner if ipdom = %d, want 8 (loop join)", bi.IPdom)
	}
	if !bi.Subdividable {
		t.Fatal("inner if with short join should be subdividable")
	}
}

func TestEmitRawAndLen(t *testing.T) {
	b := NewBuilder("raw")
	b.Emit(isa.Inst{Op: isa.NOP})
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1", b.Len())
	}
	b.Halt()
	p := b.MustBuild()
	if len(p.Code) != 2 {
		t.Fatalf("code len = %d, want 2", len(p.Code))
	}
}

func TestInvalidBranchTargetRejected(t *testing.T) {
	b := NewBuilder("bad")
	b.Emit(isa.Inst{Op: isa.JMP, Target: 99})
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Fatal("out-of-range target not rejected")
	}
}
