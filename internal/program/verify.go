// Program verifier: independent static checks over a built Program.
//
// The DWS mechanisms in internal/wpu (re-convergence stacks, warp-split
// table, PC merges) silently assume the program metadata they consume is
// right. A stale re-convergence PC makes a stack pop at the wrong place; a
// barrier on a divergent path deadlocks a warp; an ill-formed CFG breaks the
// post-dominator analysis that both rely on. Verify re-derives everything it
// can with algorithms deliberately different from the ones Build uses (the
// re-convergence check recomputes post-dominators with Cooper-Harvey-Kennedy
// on the reverse CFG rather than the bitset fixpoint in cfg.go) and reports
// findings instead of trusting the builder.
//
// Severity policy: structural problems that would make simulation wrong or
// crash (ill-formed CFG, unreachable code, wrong re-convergence points,
// reads of provably undefined registers, provable out-of-bounds accesses)
// are Err and fail Build. Hygiene findings (dead definitions, writes to the
// hardwired r0, barriers that are merely *potentially* under divergence)
// are Warn: Build tolerates them, MustVerify does not. The warp-uniform
// branch-over-barrier idiom is legal at runtime, so it must not be a build
// error — but the eight benchmarks are held to the stricter MustVerify bar.
package program

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
)

// Severity classifies a verifier finding.
type Severity uint8

const (
	// Warn marks hygiene findings: tolerated by Build, rejected by
	// MustVerify.
	Warn Severity = iota
	// Err marks structural findings that make the program unsafe to
	// simulate; Build fails on any of these.
	Err
)

// String returns "warn" or "error".
func (s Severity) String() string {
	if s == Err {
		return "error"
	}
	return "warn"
}

// Finding is one verifier diagnostic.
type Finding struct {
	// Check names the analysis that produced the finding (e.g.
	// "reconvergence", "def-use").
	Check    string
	Severity Severity
	// PC is the instruction index the finding refers to, or -1.
	PC int
	// Block is the basic-block ID the finding refers to, or -1.
	Block int
	Msg   string
}

// String renders the finding in the human-readable form the dwsverify
// command prints.
func (f Finding) String() string {
	var loc strings.Builder
	if f.PC >= 0 {
		fmt.Fprintf(&loc, " @pc %d", f.PC)
	}
	if f.Block >= 0 {
		fmt.Fprintf(&loc, " (B%d)", f.Block)
	}
	return fmt.Sprintf("[%s] %s%s: %s", f.Severity, f.Check, loc.String(), f.Msg)
}

// FormatFindings renders findings one per line.
func FormatFindings(fs []Finding) string {
	var sb strings.Builder
	for _, f := range fs {
		sb.WriteString("  ")
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Verify runs every static check and returns the findings, sorted
// deterministically. A nil result means the program passed clean.
//
// If the CFG itself is ill-formed (shape errors), only the shape findings
// are returned: the deeper analyses assume a well-formed block structure.
func (p *Program) Verify() []Finding {
	fs := p.checkShape()
	for _, f := range fs {
		if f.Severity == Err {
			sortFindings(fs)
			return fs
		}
	}
	reach := p.reachableBlocks()
	// Recompute the divergence analysis from scratch rather than trusting
	// the verdicts Build recorded: checkReconvergence cross-checks the
	// recorded BranchInfo against this fresh run, and checkBounds consumes
	// its exact-affine component.
	div := p.analyzeDivergence(reach)
	fs = append(fs, p.checkReachability(reach)...)
	fs = append(fs, p.checkReconvergence(div)...)
	fs = append(fs, p.checkDefUse(reach)...)
	fs = append(fs, p.checkDeadDefs(reach)...)
	fs = append(fs, p.checkBarriers(reach)...)
	fs = append(fs, p.checkBounds(div)...)
	fs = append(fs, p.checkMemAccess(div)...)
	fs = append(fs, p.checkCostModel()...)
	sortFindings(fs)
	return fs
}

// checkCostModel re-runs the static cost analysis (costmodel.go) under the
// parameters recorded at Build and cross-checks the stored model against
// the fresh run, plus the internal Lo<=Hi invariants every interval must
// satisfy. Like checkMemAccess, this guards against the recorded table
// drifting from the analysis that claims to describe it.
func (p *Program) checkCostModel() []Finding {
	if p.cost == nil {
		return nil
	}
	var fs []Finding
	fresh := p.CostModelFor(p.cost.Params)
	if got, want := p.cost.Report(p.Name), fresh.Report(p.Name); got != want {
		fs = append(fs, Finding{
			PC: -1, Block: -1, Severity: Err, Check: "costmodel",
			Msg: "recorded cost model disagrees with a fresh analysis run",
		})
	}
	bad := func(iv CostInterval) bool { return iv.Lo > iv.Hi || iv.Lo < 0 }
	if bad(fresh.Ticks) {
		fs = append(fs, Finding{
			PC: -1, Block: -1, Severity: Err, Check: "costmodel",
			Msg: fmt.Sprintf("tick bound inverted or negative: %s", fresh.Ticks),
		})
	}
	for i, b := range fresh.Buckets {
		if bad(b) {
			fs = append(fs, Finding{
				PC: -1, Block: -1, Severity: Err, Check: "costmodel",
				Msg: fmt.Sprintf("bucket %s bound inverted or negative: %s", CostBucketLabels[i], b),
			})
		}
	}
	for _, bc := range fresh.Blocks {
		if bad(bc.Execs) {
			fs = append(fs, Finding{
				PC: -1, Block: bc.ID, Severity: Err, Check: "costmodel",
				Msg: fmt.Sprintf("block execution bound inverted or negative: %s", bc.Execs),
			})
		}
	}
	for _, lc := range fresh.Loops {
		if bad(lc.Trips) {
			fs = append(fs, Finding{
				PC: lc.HeaderPC, Block: lc.Header, Severity: Err, Check: "costmodel",
				Msg: fmt.Sprintf("trip bound inverted or negative: %s", lc.Trips),
			})
		}
	}
	for pc, iv := range fresh.Issues {
		if bad(iv) {
			fs = append(fs, Finding{
				PC: pc, Block: -1, Severity: Err, Check: "costmodel",
				Msg: fmt.Sprintf("issue bound inverted or negative: %s", iv),
			})
		}
	}
	return fs
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].PC != fs[j].PC {
			return fs[i].PC < fs[j].PC
		}
		if fs[i].Block != fs[j].Block {
			return fs[i].Block < fs[j].Block
		}
		if fs[i].Check != fs[j].Check {
			return fs[i].Check < fs[j].Check
		}
		return fs[i].Msg < fs[j].Msg
	})
}

// blockOf maps every instruction index to its basic-block ID. Callers must
// have established block tiling (checkShape) first.
func (p *Program) blockOf() []int {
	m := make([]int, len(p.Code))
	for _, blk := range p.Blocks {
		for pc := blk.Start; pc < blk.End; pc++ {
			m[pc] = blk.ID
		}
	}
	return m
}

// checkShape validates the CFG's structural invariants: blocks tile the
// code, terminators appear only at block ends, successor edges match the
// terminators, and every register index is architectural. All its findings
// are Err; if any are present the rest of the verifier is skipped.
func (p *Program) checkShape() []Finding {
	var fs []Finding
	add := func(pc, blk int, format string, args ...any) {
		fs = append(fs, Finding{
			Check: "cfg-shape", Severity: Err, PC: pc, Block: blk,
			Msg: fmt.Sprintf(format, args...),
		})
	}
	n := len(p.Code)
	if n == 0 {
		add(-1, -1, "empty program")
		return fs
	}
	if len(p.Blocks) == 0 {
		add(-1, -1, "no basic blocks")
		return fs
	}
	for pc, in := range p.Code {
		if !in.Op.Valid() {
			add(pc, -1, "invalid opcode %d", uint8(in.Op))
			continue
		}
		if in.Op.WritesDst() && in.Dst >= isa.NumRegs {
			add(pc, -1, "destination register r%d out of range", in.Dst)
		}
		if in.Op.ReadsA() && in.SrcA >= isa.NumRegs {
			add(pc, -1, "source register r%d out of range", in.SrcA)
		}
		if in.Op.ReadsB() && in.SrcB >= isa.NumRegs {
			add(pc, -1, "source register r%d out of range", in.SrcB)
		}
		if in.Op.IsControl() && (in.Target < 0 || in.Target >= n) {
			add(pc, -1, "branch target %d out of range", in.Target)
		}
	}
	if len(fs) > 0 {
		return fs
	}

	if p.Blocks[0].Start != 0 {
		add(-1, 0, "entry block starts at pc %d, not 0", p.Blocks[0].Start)
	}
	next := 0
	startToID := make(map[int]int, len(p.Blocks))
	for i, blk := range p.Blocks {
		if blk.ID != i {
			add(-1, i, "block ID %d at index %d", blk.ID, i)
		}
		if blk.Start != next || blk.End <= blk.Start || blk.End > n {
			add(-1, i, "blocks do not tile the code: B%d spans [%d,%d), expected start %d",
				i, blk.Start, blk.End, next)
		}
		startToID[blk.Start] = i
		next = blk.End
	}
	if next != n {
		add(-1, -1, "blocks cover %d of %d instructions", next, n)
	}
	if len(fs) > 0 {
		return fs
	}

	for _, blk := range p.Blocks {
		for pc := blk.Start; pc < blk.End-1; pc++ {
			op := p.Code[pc].Op
			if op.IsControl() || op == isa.HALT {
				add(pc, blk.ID, "terminator %s in the middle of a basic block", op)
			}
		}
		last := p.Code[blk.End-1]
		var want []int
		switch {
		case last.Op.IsBranch():
			if blk.End < n {
				want = append(want, startToID[blk.End])
			}
			t, ok := startToID[last.Target]
			if !ok {
				add(blk.End-1, blk.ID, "branch target pc %d is not a block leader", last.Target)
				continue
			}
			if len(want) == 0 || want[0] != t {
				want = append(want, t)
			}
		case last.Op == isa.JMP:
			t, ok := startToID[last.Target]
			if !ok {
				add(blk.End-1, blk.ID, "jump target pc %d is not a block leader", last.Target)
				continue
			}
			want = []int{t}
		case last.Op == isa.HALT:
			// Exit block: no successors.
		default:
			if blk.End >= n {
				add(blk.End-1, blk.ID, "control falls off the end of the program")
				continue
			}
			want = []int{startToID[blk.End]}
		}
		if len(want) != len(blk.Succ) {
			add(blk.End-1, blk.ID, "successor edges %v do not match terminator (want %v)", blk.Succ, want)
			continue
		}
		for i := range want {
			if blk.Succ[i] != want[i] {
				add(blk.End-1, blk.ID, "successor edges %v do not match terminator (want %v)", blk.Succ, want)
				break
			}
		}
	}
	return fs
}

// reachableBlocks marks the blocks reachable from the entry block.
func (p *Program) reachableBlocks() []bool {
	reach := make([]bool, len(p.Blocks))
	stack := []int{0}
	reach[0] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range p.Blocks[v].Succ {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	return reach
}

// checkReachability flags unreachable basic blocks — dead code that the
// post-dominator analysis never exercised and the WPU can never execute.
func (p *Program) checkReachability(reach []bool) []Finding {
	var fs []Finding
	for i, blk := range p.Blocks {
		if !reach[i] {
			fs = append(fs, Finding{
				Check: "reachability", Severity: Err, PC: blk.Start, Block: i,
				Msg: fmt.Sprintf("unreachable block (dead code, pcs %d..%d)", blk.Start, blk.End-1),
			})
		}
	}
	return fs
}

// checkReconvergence recomputes every branch's immediate post-dominator with
// an independent algorithm (Cooper-Harvey-Kennedy on the reverse CFG) and
// compares it against the metadata recorded by Build. This is the check that
// protects the paper's re-convergence stack and the WST's PC-merge test: a
// wrong re-convergence PC makes conventional warps pop their stacks at the
// wrong place and makes DWS splits merge at PCs that never match. It also
// cross-checks the recorded divergence verdicts (Class/Uniform) and the
// refined Subdividable rule (divergence-capable ∧ short-join) against a
// fresh analysis run, since the WPU's uniform-branch fast path trusts them.
func (p *Program) checkReconvergence(div *divResult) []Finding {
	var fs []Finding
	vip := verifiedIPdom(p.Blocks)
	blockOf := p.blockOf()
	limit := p.shortLimit
	if limit <= 0 {
		limit = DefaultShortBlockLimit
	}
	seen := 0
	for pc, in := range p.Code {
		if !in.Op.IsBranch() {
			continue
		}
		seen++
		bi, ok := p.branches[pc]
		if !ok {
			fs = append(fs, Finding{
				Check: "reconvergence", Severity: Err, PC: pc, Block: blockOf[pc],
				Msg: "branch has no recorded metadata",
			})
			continue
		}
		wantClass := ClassDivergent
		if c, ok := div.branchClass[pc]; ok {
			wantClass = c
		}
		want, wantSub := NoIPdom, false
		if d := vip[blockOf[pc]]; d >= 0 {
			want = p.Blocks[d].Start
			wantSub = p.Blocks[d].Len() <= limit && wantClass != ClassUniform
		}
		if bi.IPdom != want {
			fs = append(fs, Finding{
				Check: "reconvergence", Severity: Err, PC: pc, Block: blockOf[pc],
				Msg: fmt.Sprintf("recorded re-convergence pc %s, independent post-dominator analysis says %s",
					reconvName(bi.IPdom), reconvName(want)),
			})
			continue
		}
		if bi.Class != wantClass || bi.Uniform != (wantClass == ClassUniform) {
			fs = append(fs, Finding{
				Check: "reconvergence", Severity: Err, PC: pc, Block: blockOf[pc],
				Msg: fmt.Sprintf("recorded predicate class %s (uniform=%v), divergence analysis says %s",
					bi.Class, bi.Uniform, wantClass),
			})
			continue
		}
		if bi.Subdividable != wantSub {
			fs = append(fs, Finding{
				Check: "reconvergence", Severity: Err, PC: pc, Block: blockOf[pc],
				Msg: fmt.Sprintf("subdividable=%v disagrees with the divergence-capable ∧ short-join rule (limit %d)",
					bi.Subdividable, limit),
			})
		}
	}
	if seen != len(p.branches) {
		extra := make([]int, 0, len(p.branches))
		for pc := range p.branches {
			if pc < 0 || pc >= len(p.Code) || !p.Code[pc].Op.IsBranch() {
				extra = append(extra, pc)
			}
		}
		sort.Ints(extra)
		for _, pc := range extra {
			fs = append(fs, Finding{
				Check: "reconvergence", Severity: Err, PC: pc, Block: -1,
				Msg: "branch metadata recorded for a non-branch instruction",
			})
		}
	}
	return fs
}

func reconvName(pc int) string {
	if pc == NoIPdom {
		return "exit"
	}
	return fmt.Sprintf("%d", pc)
}

// verifiedIPdom computes immediate post-dominators with the
// Cooper-Harvey-Kennedy algorithm run on the reverse CFG (virtual exit as
// root) — deliberately a different algorithm from the bitset fixpoint in
// cfg.go, so the two can cross-check each other. Returns the post-dominating
// block ID per block, or -1 when the block's only post-dominator is the
// virtual exit or the block cannot reach exit at all.
func verifiedIPdom(blocks []Block) []int {
	n := len(blocks)
	exit := n
	exitSlice := []int{exit}
	fsucc := func(v int) []int {
		if len(blocks[v].Succ) == 0 {
			return exitSlice
		}
		return blocks[v].Succ
	}

	// Reverse-graph adjacency: an edge s->v here for every forward edge
	// v->s. The reverse DFS from exit visits exactly the blocks that can
	// terminate.
	radj := make([][]int, n+1)
	for v := 0; v < n; v++ {
		for _, s := range fsucc(v) {
			radj[s] = append(radj[s], v)
		}
	}

	po := make([]int, n+1)
	visited := make([]bool, n+1)
	order := make([]int, 0, n+1) // postorder of the reverse DFS
	type frame struct{ v, i int }
	stack := []frame{{exit, 0}}
	visited[exit] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.i < len(radj[f.v]) {
			u := radj[f.v][f.i]
			f.i++
			if !visited[u] {
				visited[u] = true
				stack = append(stack, frame{u, 0})
			}
		} else {
			po[f.v] = len(order)
			order = append(order, f.v)
			stack = stack[:len(stack)-1]
		}
	}

	idom := make([]int, n+1)
	for i := range idom {
		idom[i] = -1
	}
	idom[exit] = exit
	intersect := func(a, b int) int {
		for a != b {
			for po[a] < po[b] {
				a = idom[a]
			}
			for po[b] < po[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		// Reverse postorder of the reverse graph, skipping the exit root
		// (last in postorder).
		for i := len(order) - 2; i >= 0; i-- {
			v := order[i]
			newIdom := -1
			// Predecessors in the reverse graph are forward successors.
			for _, u := range fsucc(v) {
				if idom[u] < 0 {
					continue
				}
				if newIdom < 0 {
					newIdom = u
				} else {
					newIdom = intersect(newIdom, u)
				}
			}
			if newIdom >= 0 && idom[v] != newIdom {
				idom[v] = newIdom
				changed = true
			}
		}
	}

	out := make([]int, n)
	for v := 0; v < n; v++ {
		if !visited[v] || idom[v] < 0 || idom[v] == exit {
			out[v] = -1
		} else {
			out[v] = idom[v]
		}
	}
	return out
}

// instUses returns the registers an instruction reads.
func instUses(in isa.Inst) []isa.Reg {
	var uses []isa.Reg
	if in.Op.ReadsA() {
		uses = append(uses, in.SrcA)
	}
	if in.Op.ReadsB() && (!in.Op.ReadsA() || in.SrcB != in.SrcA) {
		uses = append(uses, in.SrcB)
	}
	return uses
}

// instDef returns the architectural register an instruction defines.
// Writes to the hardwired r0 are discarded by the register file, so they
// define nothing.
func instDef(in isa.Inst) (isa.Reg, bool) {
	if in.Op.WritesDst() && in.Dst != 0 {
		return in.Dst, true
	}
	return 0, false
}

// checkDefUse runs a forward must-be-defined dataflow analysis (intersection
// at joins) and flags reads of registers that are not defined on every path
// from entry. It only runs when the kernel declared its input registers
// (DeclareInputs/DeclareRegion): without the declared entry state every ABI
// input would be a false positive.
func (p *Program) checkDefUse(reach []bool) []Finding {
	if !p.inputsDeclared {
		return nil
	}
	const abiRegs = 0b1111 // r0 hardwired, r1 tid, r2 nthreads, r3 local idx
	entry := abiRegs | p.inputs
	n := len(p.Blocks)
	full := ^uint32(0)
	in := make([]uint32, n)
	for i := range in {
		in[i] = full
	}
	in[0] = entry
	transfer := func(blk Block, s uint32) uint32 {
		for pc := blk.Start; pc < blk.End; pc++ {
			if d, ok := instDef(p.Code[pc]); ok {
				s |= 1 << d
			}
		}
		return s
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			if !reach[i] {
				continue
			}
			out := transfer(p.Blocks[i], in[i])
			for _, s := range p.Blocks[i].Succ {
				if nv := in[s] & out; nv != in[s] {
					in[s] = nv
					changed = true
				}
			}
		}
	}
	var fs []Finding
	for i := 0; i < n; i++ {
		if !reach[i] {
			continue
		}
		s := in[i]
		for pc := p.Blocks[i].Start; pc < p.Blocks[i].End; pc++ {
			inst := p.Code[pc]
			for _, r := range instUses(inst) {
				if r != 0 && s&(1<<r) == 0 {
					fs = append(fs, Finding{
						Check: "def-use", Severity: Err, PC: pc, Block: i,
						Msg: fmt.Sprintf("r%d may be read before it is defined", r),
					})
				}
			}
			if d, ok := instDef(inst); ok {
				s |= 1 << d
			}
		}
	}
	return fs
}

// checkDeadDefs runs backward liveness and flags definitions whose value can
// never be read, plus writes to the hardwired r0. Both are Warn: harmless
// at runtime, but in a hand-written benchmark they usually mean the kernel
// does not compute what its author thought.
func (p *Program) checkDeadDefs(reach []bool) []Finding {
	n := len(p.Blocks)
	liveIn := make([]uint32, n)
	blockLive := func(i int) uint32 {
		var live uint32
		for _, s := range p.Blocks[i].Succ {
			live |= liveIn[s]
		}
		return live
	}
	stepBack := func(inst isa.Inst, live uint32) uint32 {
		if d, ok := instDef(inst); ok {
			live &^= 1 << d
		}
		for _, r := range instUses(inst) {
			live |= 1 << r
		}
		return live
	}
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			if !reach[i] {
				continue
			}
			live := blockLive(i)
			for pc := p.Blocks[i].End - 1; pc >= p.Blocks[i].Start; pc-- {
				live = stepBack(p.Code[pc], live)
			}
			if live != liveIn[i] {
				liveIn[i] = live
				changed = true
			}
		}
	}
	var fs []Finding
	for i := 0; i < n; i++ {
		if !reach[i] {
			continue
		}
		live := blockLive(i)
		for pc := p.Blocks[i].End - 1; pc >= p.Blocks[i].Start; pc-- {
			inst := p.Code[pc]
			if inst.Op.WritesDst() {
				switch {
				case inst.Dst == 0:
					fs = append(fs, Finding{
						Check: "dead-def", Severity: Warn, PC: pc, Block: i,
						Msg: "write to the hardwired r0 has no effect",
					})
				case live&(1<<inst.Dst) == 0:
					fs = append(fs, Finding{
						Check: "dead-def", Severity: Warn, PC: pc, Block: i,
						Msg: fmt.Sprintf("r%d defined here is never read", inst.Dst),
					})
				}
			}
			live = stepBack(inst, live)
		}
	}
	return fs
}

// varyingSets computes, per basic block, the set of registers whose value
// may differ across the threads of a warp at block entry (a forward
// may-analysis with union joins). The launch ABI makes r1 (global tid) and
// r3 (local index) varying; loads are conservatively varying because they
// depend on a possibly-varying address and on memory contents.
func (p *Program) varyingSets(reach []bool) []uint32 {
	n := len(p.Blocks)
	vin := make([]uint32, n)
	vin[0] = 1<<1 | 1<<3
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			if !reach[i] {
				continue
			}
			v := vin[i]
			for pc := p.Blocks[i].Start; pc < p.Blocks[i].End; pc++ {
				v = stepVarying(p.Code[pc], v)
			}
			for _, s := range p.Blocks[i].Succ {
				if nv := vin[s] | v; nv != vin[s] {
					vin[s] = nv
					changed = true
				}
			}
		}
	}
	return vin
}

func stepVarying(in isa.Inst, v uint32) uint32 {
	if !in.Op.WritesDst() || in.Dst == 0 {
		return v
	}
	varying := in.Op == isa.LD ||
		(in.Op.ReadsA() && v&(1<<in.SrcA) != 0) ||
		(in.Op.ReadsB() && v&(1<<in.SrcB) != 0)
	if varying {
		return v | 1<<in.Dst
	}
	return v &^ (1 << in.Dst)
}

// checkBarriers flags barriers reachable between a potentially divergent
// branch and that branch's re-convergence point — the deadlock DWS must
// never create (§3.4): if the warp splits at the branch, only some lanes
// arrive at the barrier while the rest wait beyond it. The divergence taint
// cannot see warp-uniform tid predicates (e.g. a branch every lane of a warp
// takes the same way), so the finding is Warn, not Err.
func (p *Program) checkBarriers(reach []bool) []Finding {
	hasBarrier := false
	for _, in := range p.Code {
		if in.Op == isa.BARRIER {
			hasBarrier = true
			break
		}
	}
	if !hasBarrier {
		return nil
	}
	varying := p.varyingSets(reach)
	blockOf := p.blockOf()
	// flagged[barrier pc] -> lowest divergent branch pc that reaches it.
	flagged := make(map[int]int)
	for pc, in := range p.Code {
		if !in.Op.IsBranch() {
			continue
		}
		b := blockOf[pc]
		if !reach[b] || len(p.Blocks[b].Succ) < 2 {
			continue
		}
		v := varying[b]
		for q := p.Blocks[b].Start; q < pc; q++ {
			v = stepVarying(p.Code[q], v)
		}
		if v&(1<<in.SrcA) == 0 {
			continue // warp-uniform predicate
		}
		// Blocks reachable from the branch before its re-convergence point.
		stopBlock := -1
		if bi, ok := p.branches[pc]; ok && bi.IPdom != NoIPdom {
			stopBlock = blockOf[bi.IPdom]
		}
		region := make([]bool, len(p.Blocks))
		stack := append([]int(nil), p.Blocks[b].Succ...)
		for len(stack) > 0 {
			w := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if w == stopBlock || region[w] {
				continue
			}
			region[w] = true
			stack = append(stack, p.Blocks[w].Succ...)
		}
		for q, in2 := range p.Code {
			if in2.Op != isa.BARRIER || !region[blockOf[q]] {
				continue
			}
			if _, dup := flagged[q]; !dup {
				flagged[q] = pc
			}
		}
	}
	var fs []Finding
	pcs := make([]int, 0, len(flagged))
	for q := range flagged {
		pcs = append(pcs, q)
	}
	sort.Ints(pcs)
	for _, q := range pcs {
		fs = append(fs, Finding{
			Check: "barrier-divergence", Severity: Warn, PC: q, Block: blockOf[q],
			Msg: fmt.Sprintf("barrier reachable under potentially divergent branch @pc %d before re-convergence: a warp whose lanes disagree there deadlocks here", flagged[q]),
		})
	}
	return fs
}

// checkBounds consumes the exact-affine component of the divergence
// analysis (dataflow.go, the vExact kind — the successor of the previous
// ad-hoc affine pattern-matcher here) and flags loads/stores whose
// effective address provably falls outside the declared memory region for
// every launch of up to DeclareThreads threads. It only fires where the
// address is region-relative and affine in the thread id with exact
// constant coefficients; anything data-dependent is left to the functional
// checks.
func (p *Program) checkBounds(div *divResult) []Finding {
	if len(p.regions) == 0 {
		return nil
	}
	var fs []Finding
	for _, a := range div.accesses {
		if f, bad := p.boundsAt(a.pc, a.block, a.val, a.imm); bad {
			fs = append(fs, f)
		}
	}
	return fs
}

// checkMemAccess recomputes the static access-pattern table (memaccess.go)
// from the fresh divergence run and compares it against the table Build
// recorded — the table the WPU's subdivide-on-miss hints and per-pc
// transaction bounds are derived from, so a stale entry would prune probes
// or flag concordance violations based on facts the code no longer has.
// It also cross-checks the table against the exact-affine bounds domain:
// where the address is region-relative with exact coefficients, the
// recorded stride must equal the tid coefficient the bounds check uses,
// and the recorded footprint must fit inside the bounds check's offset
// span for any launch of at least a warp's worth of threads.
func (p *Program) checkMemAccess(div *divResult) []Finding {
	var fs []Finding
	add := func(pc, blk int, format string, args ...any) {
		fs = append(fs, Finding{
			Check: "memaccess", Severity: Err, PC: pc, Block: blk,
			Msg: fmt.Sprintf(format, args...),
		})
	}
	want := p.buildMemAccess(div, DefaultMemParams)
	if len(want) != len(p.memAccess) {
		add(-1, -1, "recorded access table has %d entries, fresh analysis has %d", len(p.memAccess), len(want))
		return fs
	}
	for i, w := range want {
		g := p.memAccess[i]
		if g != w {
			add(w.PC, div.accesses[i].block,
				"recorded access verdict %s %s disagrees with fresh analysis %s %s",
				g.AClass, g.boundSummary(), w.AClass, w.boundSummary())
			continue
		}
		a := div.accesses[i]
		if a.val.kind != vExact {
			continue
		}
		if cls := a.val.class(); cls != g.Class {
			add(w.PC, a.block, "bounds domain sees class %s, recorded table says %s", cls, g.Class)
			continue
		}
		if g.Class != ClassDivergent && a.val.stride() != g.StrideBytes {
			add(w.PC, a.block, "bounds domain tid coefficient %d, recorded stride %d", a.val.stride(), g.StrideBytes)
			continue
		}
		// Footprint vs the bounds-check offset span: with block-distributed
		// consecutive lane tids, one warp's span is a sub-range of the
		// whole launch's, so the footprint may never exceed it.
		if g.FootprintBytes >= 0 && a.val.ct != 0 && p.maxThreads >= DefaultMemParams.Lanes {
			span := a.val.ct * int64(p.maxThreads-1)
			if span < 0 {
				span = -span
			}
			if g.FootprintBytes > span+isa.WordSize {
				add(w.PC, a.block, "footprint %d B exceeds the bounds-domain span %d B for %d threads",
					g.FootprintBytes, span+isa.WordSize, p.maxThreads)
			}
		}
	}
	return fs
}

func (p *Program) boundsAt(pc, blk int, a absVal, imm int64) (Finding, bool) {
	if a.kind != vExact || a.region < 0 {
		return Finding{}, false
	}
	if a.ct != 0 && p.maxThreads <= 0 {
		return Finding{}, false // thread count undeclared: range unbounded
	}
	off := a.c0 + imm
	lo, hi := off, off
	if a.ct != 0 {
		span := a.ct * int64(p.maxThreads-1)
		if span < 0 {
			lo += span
		} else {
			hi += span
		}
	}
	size := p.regions[a.region].Words * isa.WordSize
	if lo >= 0 && hi+isa.WordSize <= size {
		return Finding{}, false
	}
	return Finding{
		Check: "mem-bounds", Severity: Err, PC: pc, Block: blk,
		Msg: fmt.Sprintf("access offset range [%d,%d] exceeds region r%d (%d bytes, %d words)",
			lo, hi+isa.WordSize-1, p.regions[a.region].Reg, size, p.regions[a.region].Words),
	}, true
}
