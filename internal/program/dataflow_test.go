package program

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestClassString(t *testing.T) {
	if ClassUniform.String() != "uniform" || ClassAffine.String() != "affine" ||
		ClassDivergent.String() != "divergent" {
		t.Fatalf("Class strings wrong: %s %s %s", ClassUniform, ClassAffine, ClassDivergent)
	}
}

func TestJoinVal(t *testing.T) {
	tid := absVal{kind: vExact, region: -1, ct: 1}
	cases := []struct {
		name string
		a, b absVal
		want absVal
	}{
		{"identical exact", exactConst(5), exactConst(5), exactConst(5)},
		{"different consts", exactConst(1), exactConst(2), strideVal(0)},
		{"exact vs div", exactConst(1), divVal, divVal},
		{"div vs div", divVal, divVal, divVal},
		{"tid vs tid", tid, tid, tid},
		{"tid vs shifted tid", tid, absVal{kind: vExact, region: -1, c0: 4, ct: 1}, strideVal(1)},
		{"tid vs const", tid, exactConst(3), divVal},
		{"stride vs matching exact", strideVal(2), absVal{kind: vExact, region: -1, ct: 2}, strideVal(2)},
		{"stride vs mismatched stride", strideVal(2), strideVal(3), divVal},
		{"uniform vs uniform", uniformVal, uniformVal, uniformVal},
		{"region vs same region", absVal{kind: vExact, region: 1}, absVal{kind: vExact, region: 1}, absVal{kind: vExact, region: 1}},
		{"region vs other region", absVal{kind: vExact, region: 0}, absVal{kind: vExact, region: 1}, strideVal(0)},
	}
	for _, c := range cases {
		if got := joinVal(c.a, c.b); got != c.want {
			t.Errorf("%s: joinVal = %+v, want %+v", c.name, got, c.want)
		}
		// Join is commutative.
		if got := joinVal(c.b, c.a); got != c.want {
			t.Errorf("%s (swapped): joinVal = %+v, want %+v", c.name, got, c.want)
		}
	}
}

func TestTransferFunctions(t *testing.T) {
	tid := absVal{kind: vExact, region: -1, ct: 1}
	region0 := absVal{kind: vExact, region: 0}
	// Register fixture: r1=tid, r2=uniform, r3=divergent, r4=region base,
	// r5=const 6, r6=stride 2, r7=near the exact-coefficient limit.
	mk := func() regState {
		var s regState
		for r := range s {
			s[r] = divVal
		}
		s[0] = exactConst(0)
		s[1] = tid
		s[2] = uniformVal
		s[4] = region0
		s[5] = exactConst(6)
		s[6] = strideVal(2)
		s[7] = exactConst(affLimit - 1)
		return s
	}
	ins := func(op isa.Op, dst, a, b isa.Reg, imm int64) isa.Inst {
		return isa.Inst{Op: op, Dst: dst, SrcA: a, SrcB: b, Imm: imm}
	}
	cases := []struct {
		name string
		in   isa.Inst
		want absVal
	}{
		{"movi", ins(isa.MOVI, 10, 0, 0, 42), exactConst(42)},
		{"fmovi", isa.Inst{Op: isa.FMOVI, Dst: 10, FImm: 1.5}, uniformVal},
		{"mov tid", ins(isa.MOV, 10, 1, 0, 0), tid},
		{"addi tid", ins(isa.ADDI, 10, 1, 0, 5), absVal{kind: vExact, region: -1, c0: 5, ct: 1}},
		{"addi overflow demotes to stride", ins(isa.ADDI, 10, 7, 0, 2), strideVal(0)},
		{"addi region keeps region", ins(isa.ADDI, 10, 4, 0, 8), absVal{kind: vExact, region: 0, c0: 8}},
		{"muli tid", ins(isa.MULI, 10, 1, 0, 8), absVal{kind: vExact, region: -1, ct: 8}},
		{"muli region demotes to stride", ins(isa.MULI, 10, 4, 0, 2), strideVal(0)},
		{"muli overflow keeps wrapped stride", ins(isa.MULI, 10, 7, 0, 4), strideVal(0)},
		{"shli tid", ins(isa.SHLI, 10, 1, 0, 3), absVal{kind: vExact, region: -1, ct: 8}},
		{"shli mirrors machine imm&63", ins(isa.SHLI, 10, 1, 0, 65), absVal{kind: vExact, region: -1, ct: 2}},
		{"add region+tid", ins(isa.ADD, 10, 4, 1, 0), absVal{kind: vExact, region: 0, ct: 1}},
		{"add tid+region", ins(isa.ADD, 10, 1, 4, 0), absVal{kind: vExact, region: 0, ct: 1}},
		{"add region+region not exact", ins(isa.ADD, 10, 4, 4, 0), strideVal(0)},
		{"sub tid-const", ins(isa.SUB, 10, 1, 5, 0), absVal{kind: vExact, region: -1, c0: -6, ct: 1}},
		{"sub const-region not exact", ins(isa.SUB, 10, 5, 4, 0), strideVal(0)},
		{"sub div poisons", ins(isa.SUB, 10, 1, 3, 0), divVal},
		{"mul const*tid", ins(isa.MUL, 10, 5, 1, 0), absVal{kind: vExact, region: -1, ct: 6}},
		{"mul tid*const", ins(isa.MUL, 10, 1, 5, 0), absVal{kind: vExact, region: -1, ct: 6}},
		{"mul const*stride", ins(isa.MUL, 10, 5, 6, 0), strideVal(12)},
		{"mul tid*tid", ins(isa.MUL, 10, 1, 1, 0), divVal},
		{"mul uniform*uniform", ins(isa.MUL, 10, 2, 2, 0), uniformVal},
		{"ld always divergent", ins(isa.LD, 10, 4, 0, 0), divVal},
		{"slt uniform closure", ins(isa.SLT, 10, 2, 5, 0), uniformVal},
		{"slt equal strides NOT uniform", ins(isa.SLT, 10, 1, 1, 0), divVal},
		{"div uniform closure", ins(isa.DIV, 10, 5, 2, 0), uniformVal},
		{"and with divergent", ins(isa.AND, 10, 2, 3, 0), divVal},
		{"itof uniform", ins(isa.ITOF, 10, 2, 0, 0), uniformVal},
		{"write to r0 discarded", ins(isa.ADD, 0, 3, 3, 0), exactConst(0)},
		{"store writes nothing", ins(isa.ST, 0, 4, 3, 0), exactConst(0)},
	}
	for _, c := range cases {
		s := mk()
		stepDiv(c.in, &s)
		dst := c.in.Dst
		if got := s[dst]; got != c.want {
			t.Errorf("%s: r%d = %+v, want %+v", c.name, dst, got, c.want)
		}
	}
}

// TestSyncPointInjection checks Coutinho's control-dependence rule: values
// that differ per branch arm become divergent at the re-convergence point
// when (and only when) the predicate can diverge.
func TestSyncPointInjection(t *testing.T) {
	build := func(pred func(b *Builder)) *Program {
		b := NewBuilder("sync")
		pred(b) // leaves the predicate in r5
		b.Bnez(5, "then")
		b.Movi(6, 1)
		b.Jmp("join")
		b.Label("then")
		b.Movi(6, 2)
		b.Label("join")
		b.Add(7, 6, 0) // read r6 at the join
		b.Halt()
		return b.MustBuild()
	}

	divergentPred := build(func(b *Builder) { b.Mov(5, 1) }) // predicate = tid
	div := divergentPred.analyzeDivergence(divergentPred.reachableBlocks())
	joinBlk := divergentPred.blockOf()[5] // pc of the join Add
	if got := div.in[joinBlk][6].class(); got != ClassDivergent {
		t.Errorf("per-arm constant under tid branch: class %s at join, want divergent", got)
	}

	uniformPred := build(func(b *Builder) { b.Movi(5, 1) }) // constant predicate
	div = uniformPred.analyzeDivergence(uniformPred.reachableBlocks())
	joinBlk = uniformPred.blockOf()[5]
	if got := div.in[joinBlk][6].class(); got != ClassUniform {
		t.Errorf("per-arm constant under uniform branch: class %s at join, want uniform", got)
	}
}

// TestExactSurvivesSyncForcing: an exact tid-affine value is a pure
// function of tid, so control divergence must not demote it.
func TestExactSurvivesSyncForcing(t *testing.T) {
	b := NewBuilder("exact")
	b.Muli(6, 1, 8) // r6 = 8*tid, before the divergent branch
	b.Bnez(1, "then")
	b.Movi(7, 1)
	b.Jmp("join")
	b.Label("then")
	b.Movi(7, 2)
	b.Label("join")
	b.Add(8, 6, 7)
	b.Halt()
	p := b.MustBuild()
	div := p.analyzeDivergence(p.reachableBlocks())
	joinBlk := p.blockOf()[5] // pc of the join Add
	if got := div.in[joinBlk][6]; got != (absVal{kind: vExact, region: -1, ct: 8}) {
		t.Errorf("8*tid at join = %+v, want exact ct=8", got)
	}
	if got := div.in[joinBlk][7].class(); got != ClassDivergent {
		t.Errorf("per-arm constant at join: class %s, want divergent", got)
	}
}

// loopProgram builds: header with exit branch on a counter, a body block,
// increment, back edge. prefix runs before the loop; body injects extra
// instructions inside it.
func loopProgram(prefix, body func(b *Builder)) *Program {
	b := NewBuilder("loop")
	b.DeclareRegion(4, 64)
	b.DeclareThreads(8)
	b.DeclareInputs(4)
	if prefix != nil {
		prefix(b)
	}
	b.Movi(8, 0) // counter
	b.Label("head")
	b.Slt(9, 8, 2)
	b.Beqz(9, "exit")
	if body != nil {
		body(b)
	}
	b.Addi(8, 8, 1)
	b.Jmp("head")
	b.Label("exit")
	b.Halt()
	return b.MustBuild()
}

// headBranchClass returns the class of the loop-exit branch predicate
// (the branch testing r9 in loopProgram-shaped kernels).
func headBranchClass(t *testing.T, p *Program) Class {
	t.Helper()
	for pc, in := range p.Code {
		if in.Op.IsBranch() && in.SrcA == 9 {
			bi, _ := p.Branch(pc)
			return bi.Class
		}
	}
	t.Fatal("no loop-exit branch found")
	return ClassDivergent
}

func TestLoopWidening(t *testing.T) {
	t.Run("clean loop stays uniform", func(t *testing.T) {
		if got := headBranchClass(t, loopProgram(nil, nil)); got != ClassUniform {
			t.Fatalf("untainted loop counter branch class %s, want uniform", got)
		}
	})
	t.Run("divergent load inside loop widens", func(t *testing.T) {
		p := loopProgram(nil, func(b *Builder) {
			b.Shli(10, 1, 3)
			b.Add(10, 10, 4)
			b.Ld(11, 10, 0) // per-tid address: memory divergence can split here
		})
		if got := headBranchClass(t, p); got != ClassDivergent {
			t.Fatalf("mem-divergence-tainted loop counter class %s, want divergent", got)
		}
	})
	t.Run("divergent branch before loop widens", func(t *testing.T) {
		p := loopProgram(func(b *Builder) {
			b.Bnez(1, "skip") // splits warps upstream of the loop
			b.Nop()
			b.Label("skip")
		}, nil)
		if got := headBranchClass(t, p); got != ClassDivergent {
			t.Fatalf("loop after divergent branch: counter class %s, want divergent", got)
		}
	})
	t.Run("divergence after loop does not widen", func(t *testing.T) {
		// The hazard is downstream only: splits created there never run
		// the loop again.
		b := NewBuilder("after")
		b.DeclareRegion(4, 64)
		b.DeclareThreads(8)
		b.DeclareInputs(4)
		b.Movi(8, 0)
		b.Label("head")
		b.Slt(9, 8, 2)
		b.Beqz(9, "exit")
		b.Addi(8, 8, 1)
		b.Jmp("head")
		b.Label("exit")
		b.Shli(10, 1, 3)
		b.Add(10, 10, 4)
		b.Ld(11, 10, 0)
		b.St(11, 10, 0)
		b.Halt()
		p := b.MustBuild()
		if got := headBranchClass(t, p); got != ClassUniform {
			t.Fatalf("loop with only downstream divergence: counter class %s, want uniform", got)
		}
	})
}

// TestBranchInfoWiring checks the Build-level consumers: Class/Uniform
// recording and the refined Subdividable rule.
func TestBranchInfoWiring(t *testing.T) {
	// Uniform short-join branch: heuristically subdividable, analytically
	// not (it can never split a warp).
	b := NewBuilder("uni")
	b.Movi(5, 3)
	b.Bnez(5, "then")
	b.Nop()
	b.Label("then")
	b.Halt()
	p := b.MustBuild()
	bi, _ := p.Branch(1)
	if !bi.Uniform || bi.Class != ClassUniform {
		t.Fatalf("constant predicate: got class %s uniform=%v", bi.Class, bi.Uniform)
	}
	if bi.Subdividable {
		t.Fatal("statically-uniform branch must not be subdividable")
	}

	// Affine predicate: divergence-capable, stays subdividable.
	b = NewBuilder("aff")
	b.Bnez(1, "then")
	b.Nop()
	b.Label("then")
	b.Halt()
	p = b.MustBuild()
	bi, _ = p.Branch(0)
	if bi.Uniform || bi.Class != ClassAffine {
		t.Fatalf("tid predicate: got class %s uniform=%v", bi.Class, bi.Uniform)
	}
	if !bi.Subdividable {
		t.Fatal("affine short-join branch should stay subdividable")
	}
}

func TestAccessClassification(t *testing.T) {
	b := NewBuilder("acc")
	b.DeclareRegion(4, 64)
	b.DeclareThreads(8)
	b.DeclareInputs(4)
	b.Ld(10, 4, 0) // uniform address (region base)
	b.Shli(11, 1, 3)
	b.Add(11, 11, 4)
	b.Ld(12, 11, 0) // affine address (base + 8*tid)
	b.St(12, 12, 0) // divergent address (loaded value)
	b.Halt()
	p := b.MustBuild()
	got := p.Accesses()
	want := []AccessInfo{
		{PC: 0, Store: false, Class: ClassUniform},
		{PC: 3, Store: false, Class: ClassAffine},
		{PC: 4, Store: true, Class: ClassDivergent},
	}
	if len(got) != len(want) {
		t.Fatalf("Accesses = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("access %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestDivergenceReportShape(t *testing.T) {
	p := loopProgram(nil, func(b *Builder) {
		b.Shli(10, 1, 3)
		b.Add(10, 10, 4)
		b.Ld(11, 10, 0)
	})
	rep := p.DivergenceReport()
	for _, want := range []string{"kernel loop:", "branch @pc", "ld     @pc", "divergent"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}
