package isa

import (
	"math"
	"math/bits"
)

// DiscardReg is the extra SoA row that absorbs architecturally discarded
// writes (destination r0). Redirecting the row index at decode time keeps
// the execution arms free of zero-register tests; reads of r0 go to row 0,
// which is never written and so stays zero.
const DiscardReg = NumRegs

// LaneRegs is the struct-of-arrays register file of one warp: row r holds
// register r across every lane, so a SIMD instruction's operands are three
// contiguous slices and the per-op execution loop is a tight pass over the
// active lanes. All rows live in one slab allocation.
type LaneRegs struct {
	width int
	full  uint64 // mask with every lane set
	slab  []int64
}

// NewLaneRegs builds a zeroed register file for width lanes (width ≤ 64).
func NewLaneRegs(width int) *LaneRegs {
	if width <= 0 || width > 64 {
		panic("isa: LaneRegs width must be in 1..64")
	}
	full := ^uint64(0)
	if width < 64 {
		full = 1<<uint(width) - 1
	}
	return &LaneRegs{
		width: width,
		full:  full,
		slab:  make([]int64, (NumRegs+1)*width),
	}
}

// Width returns the lane count.
func (lr *LaneRegs) Width() int { return lr.width }

// Row returns register r's values across all lanes. r may be DiscardReg.
func (lr *LaneRegs) Row(r uint8) []int64 {
	off := int(r) * lr.width
	return lr.slab[off : off+lr.width : off+lr.width]
}

// Get reads one lane's register, honouring the hardwired zero register.
func (lr *LaneRegs) Get(lane int, r Reg) int64 {
	if r == 0 {
		return 0
	}
	return lr.slab[int(r)*lr.width+lane]
}

// Set writes one lane's register; writes to r0 are discarded.
func (lr *LaneRegs) Set(lane int, r Reg, v int64) {
	if r != 0 {
		lr.slab[int(r)*lr.width+lane] = v
	}
}

// GetF reads one lane's register as float64.
func (lr *LaneRegs) GetF(lane int, r Reg) float64 {
	return math.Float64frombits(uint64(lr.Get(lane, r)))
}

// SetThread scatters one thread's architectural register file into a lane
// column. Row 0 is skipped: the zero register reads as zero whatever the
// source array holds, exactly like RegFile.Get.
func (lr *LaneRegs) SetThread(lane int, rf *RegFile) {
	for r := 1; r < NumRegs; r++ {
		lr.slab[r*lr.width+lane] = rf[r]
	}
}

// SetThreads scatters register files for lanes [0, len(rfs)) in one pass,
// row-major so each register row is filled with sequential writes instead
// of len(rfs) strided column scatters. Launch-time bulk load.
func (lr *LaneRegs) SetThreads(rfs []RegFile) {
	if len(rfs) > lr.width {
		panic("isa: more register files than lanes")
	}
	for r := 1; r < NumRegs; r++ {
		row := lr.slab[r*lr.width : r*lr.width+len(rfs)]
		for l := range rfs {
			row[l] = rfs[l][r]
		}
	}
}

// Thread gathers one lane column back into an architectural register file
// (tests and debugging; the simulator itself never needs the AoS form).
func (lr *LaneRegs) Thread(lane int) RegFile {
	var rf RegFile
	for r := 1; r < NumRegs; r++ {
		rf[r] = lr.slab[r*lr.width+lane]
	}
	return rf
}

// rows3 returns the destination and both source rows, resliced to the
// destination's length so the compiler can hoist the bounds checks out of
// the per-lane loops.
func (lr *LaneRegs) rows3(d *Decoded) (dst, a, b []int64) {
	w := lr.width
	s := lr.slab
	dst = s[int(d.Dst)*w:][:w]
	a = s[int(d.SrcA)*w:][:w]
	b = s[int(d.SrcB)*w:][:w]
	return
}

// rows2 returns the destination and the SrcA row.
func (lr *LaneRegs) rows2(d *Decoded) (dst, a []int64) {
	dst = lr.Row(d.Dst)
	a = lr.Row(d.SrcA)[:len(dst)]
	return
}

func f(v int64) float64  { return math.Float64frombits(uint64(v)) }
func fb(v float64) int64 { return int64(math.Float64bits(v)) }

// ExecALULanes executes one decoded KindALU instruction across the active
// lanes. This is the inverted hot loop of the execution core: the opcode
// switch runs once per instruction, and each arm is a branch-free pass over
// the lanes — a straight full-width loop when every lane is active (the
// common case), a bit-scan loop otherwise. Behaviour is bit-for-bit the
// per-lane ExecALU oracle's; soa_test.go differential-checks every opcode.
func ExecALULanes(d *Decoded, lr *LaneRegs, mask uint64) {
	full := mask == lr.full
	switch d.Op {
	case NOP, BARRIER, HALT:
		// No register effects.
	case ADD:
		dst, a, b := lr.rows3(d)
		if full {
			for i := range dst {
				dst[i] = a[i] + b[i]
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				dst[i] = a[i] + b[i]
			}
		}
	case SUB:
		dst, a, b := lr.rows3(d)
		if full {
			for i := range dst {
				dst[i] = a[i] - b[i]
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				dst[i] = a[i] - b[i]
			}
		}
	case MUL:
		dst, a, b := lr.rows3(d)
		if full {
			for i := range dst {
				dst[i] = a[i] * b[i]
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				dst[i] = a[i] * b[i]
			}
		}
	case DIV:
		dst, a, b := lr.rows3(d)
		for m := mask; m != 0; m &= m - 1 {
			i := bits.TrailingZeros64(m)
			if b[i] != 0 {
				dst[i] = a[i] / b[i]
			} else {
				dst[i] = 0
			}
		}
	case REM:
		dst, a, b := lr.rows3(d)
		for m := mask; m != 0; m &= m - 1 {
			i := bits.TrailingZeros64(m)
			if b[i] != 0 {
				dst[i] = a[i] % b[i]
			} else {
				dst[i] = 0
			}
		}
	case AND:
		dst, a, b := lr.rows3(d)
		if full {
			for i := range dst {
				dst[i] = a[i] & b[i]
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				dst[i] = a[i] & b[i]
			}
		}
	case OR:
		dst, a, b := lr.rows3(d)
		if full {
			for i := range dst {
				dst[i] = a[i] | b[i]
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				dst[i] = a[i] | b[i]
			}
		}
	case XOR:
		dst, a, b := lr.rows3(d)
		if full {
			for i := range dst {
				dst[i] = a[i] ^ b[i]
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				dst[i] = a[i] ^ b[i]
			}
		}
	case SHL:
		dst, a, b := lr.rows3(d)
		if full {
			for i := range dst {
				dst[i] = a[i] << uint(b[i]&63)
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				dst[i] = a[i] << uint(b[i]&63)
			}
		}
	case SHR:
		dst, a, b := lr.rows3(d)
		if full {
			for i := range dst {
				dst[i] = int64(uint64(a[i]) >> uint(b[i]&63))
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				dst[i] = int64(uint64(a[i]) >> uint(b[i]&63))
			}
		}
	case SLT:
		dst, a, b := lr.rows3(d)
		if full {
			for i := range dst {
				dst[i] = b2i(a[i] < b[i])
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				dst[i] = b2i(a[i] < b[i])
			}
		}
	case SLE:
		dst, a, b := lr.rows3(d)
		if full {
			for i := range dst {
				dst[i] = b2i(a[i] <= b[i])
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				dst[i] = b2i(a[i] <= b[i])
			}
		}
	case SEQ:
		dst, a, b := lr.rows3(d)
		if full {
			for i := range dst {
				dst[i] = b2i(a[i] == b[i])
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				dst[i] = b2i(a[i] == b[i])
			}
		}
	case SNE:
		dst, a, b := lr.rows3(d)
		if full {
			for i := range dst {
				dst[i] = b2i(a[i] != b[i])
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				dst[i] = b2i(a[i] != b[i])
			}
		}
	case MIN:
		dst, a, b := lr.rows3(d)
		if full {
			for i := range dst {
				dst[i] = min(a[i], b[i])
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				dst[i] = min(a[i], b[i])
			}
		}
	case MAX:
		dst, a, b := lr.rows3(d)
		if full {
			for i := range dst {
				dst[i] = max(a[i], b[i])
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				dst[i] = max(a[i], b[i])
			}
		}
	case ADDI:
		dst, a := lr.rows2(d)
		imm := d.Imm
		if full {
			for i := range dst {
				dst[i] = a[i] + imm
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				dst[i] = a[i] + imm
			}
		}
	case MULI:
		dst, a := lr.rows2(d)
		imm := d.Imm
		if full {
			for i := range dst {
				dst[i] = a[i] * imm
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				dst[i] = a[i] * imm
			}
		}
	case ANDI:
		dst, a := lr.rows2(d)
		imm := d.Imm
		if full {
			for i := range dst {
				dst[i] = a[i] & imm
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				dst[i] = a[i] & imm
			}
		}
	case SHLI:
		dst, a := lr.rows2(d)
		sh := uint(d.Imm & 63)
		if full {
			for i := range dst {
				dst[i] = a[i] << sh
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				dst[i] = a[i] << sh
			}
		}
	case SHRI:
		dst, a := lr.rows2(d)
		sh := uint(d.Imm & 63)
		if full {
			for i := range dst {
				dst[i] = int64(uint64(a[i]) >> sh)
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				dst[i] = int64(uint64(a[i]) >> sh)
			}
		}
	case SLTI:
		dst, a := lr.rows2(d)
		imm := d.Imm
		if full {
			for i := range dst {
				dst[i] = b2i(a[i] < imm)
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				dst[i] = b2i(a[i] < imm)
			}
		}
	case MOVI:
		dst := lr.Row(d.Dst)
		imm := d.Imm
		if full {
			for i := range dst {
				dst[i] = imm
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				dst[bits.TrailingZeros64(m)] = imm
			}
		}
	case MOV:
		dst, a := lr.rows2(d)
		if full {
			copy(dst, a)
		} else {
			for m := mask; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				dst[i] = a[i]
			}
		}
	case FADD:
		dst, a, b := lr.rows3(d)
		if full {
			for i := range dst {
				dst[i] = fb(f(a[i]) + f(b[i]))
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				dst[i] = fb(f(a[i]) + f(b[i]))
			}
		}
	case FSUB:
		dst, a, b := lr.rows3(d)
		if full {
			for i := range dst {
				dst[i] = fb(f(a[i]) - f(b[i]))
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				dst[i] = fb(f(a[i]) - f(b[i]))
			}
		}
	case FMUL:
		dst, a, b := lr.rows3(d)
		if full {
			for i := range dst {
				dst[i] = fb(f(a[i]) * f(b[i]))
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				dst[i] = fb(f(a[i]) * f(b[i]))
			}
		}
	case FDIV:
		dst, a, b := lr.rows3(d)
		if full {
			for i := range dst {
				dst[i] = fb(f(a[i]) / f(b[i]))
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				dst[i] = fb(f(a[i]) / f(b[i]))
			}
		}
	case FNEG:
		dst, a := lr.rows2(d)
		if full {
			for i := range dst {
				dst[i] = fb(-f(a[i]))
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				dst[i] = fb(-f(a[i]))
			}
		}
	case FABS:
		dst, a := lr.rows2(d)
		if full {
			for i := range dst {
				dst[i] = fb(math.Abs(f(a[i])))
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				dst[i] = fb(math.Abs(f(a[i])))
			}
		}
	case FMIN:
		dst, a, b := lr.rows3(d)
		for m := mask; m != 0; m &= m - 1 {
			i := bits.TrailingZeros64(m)
			dst[i] = fb(math.Min(f(a[i]), f(b[i])))
		}
	case FMAX:
		dst, a, b := lr.rows3(d)
		for m := mask; m != 0; m &= m - 1 {
			i := bits.TrailingZeros64(m)
			dst[i] = fb(math.Max(f(a[i]), f(b[i])))
		}
	case FSLT:
		dst, a, b := lr.rows3(d)
		if full {
			for i := range dst {
				dst[i] = b2i(f(a[i]) < f(b[i]))
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				dst[i] = b2i(f(a[i]) < f(b[i]))
			}
		}
	case FSLE:
		dst, a, b := lr.rows3(d)
		if full {
			for i := range dst {
				dst[i] = b2i(f(a[i]) <= f(b[i]))
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				dst[i] = b2i(f(a[i]) <= f(b[i]))
			}
		}
	case FMOVI:
		// Imm already holds the float bits (decode-time conversion).
		dst := lr.Row(d.Dst)
		imm := d.Imm
		if full {
			for i := range dst {
				dst[i] = imm
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				dst[bits.TrailingZeros64(m)] = imm
			}
		}
	case ITOF:
		dst, a := lr.rows2(d)
		if full {
			for i := range dst {
				dst[i] = fb(float64(a[i]))
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				dst[i] = fb(float64(a[i]))
			}
		}
	case FTOI:
		dst, a := lr.rows2(d)
		if full {
			for i := range dst {
				dst[i] = int64(f(a[i]))
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				dst[i] = int64(f(a[i]))
			}
		}
	default:
		panic("isa: ExecALULanes on " + d.Op.String())
	}
}
