package isa

// Edge-case semantics the kernels rely on: shift-amount masking, division
// conventions, float/int conversion truncation, and disassembly coverage
// of every opcode family.

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestShiftAmountsMaskTo63(t *testing.T) {
	var r RegFile
	r.Set(1, 1)
	r.Set(2, 64) // 64 & 63 == 0: shift by nothing
	ExecALU(Inst{Op: SHL, Dst: 3, SrcA: 1, SrcB: 2}, &r)
	if r.Get(3) != 1 {
		t.Fatalf("shl by 64 = %d, want 1", r.Get(3))
	}
	r.Set(2, 65) // = shift by 1
	ExecALU(Inst{Op: SHL, Dst: 3, SrcA: 1, SrcB: 2}, &r)
	if r.Get(3) != 2 {
		t.Fatalf("shl by 65 = %d, want 2", r.Get(3))
	}
	r.Set(1, -8)
	r.Set(2, 1)
	ExecALU(Inst{Op: SHR, Dst: 3, SrcA: 1, SrcB: 2}, &r)
	if r.Get(3) < 0 {
		t.Fatal("shr must be logical (zero-extending)")
	}
}

func TestDivisionTruncatesTowardZero(t *testing.T) {
	var r RegFile
	r.Set(1, -7)
	r.Set(2, 2)
	ExecALU(Inst{Op: DIV, Dst: 3, SrcA: 1, SrcB: 2}, &r)
	if r.Get(3) != -3 {
		t.Fatalf("-7/2 = %d, want -3", r.Get(3))
	}
	ExecALU(Inst{Op: REM, Dst: 3, SrcA: 1, SrcB: 2}, &r)
	if r.Get(3) != -1 {
		t.Fatalf("-7%%2 = %d, want -1", r.Get(3))
	}
}

func TestFtoiTruncates(t *testing.T) {
	var r RegFile
	r.SetF(1, 2.99)
	ExecALU(Inst{Op: FTOI, Dst: 2, SrcA: 1}, &r)
	if r.Get(2) != 2 {
		t.Fatalf("ftoi(2.99) = %d", r.Get(2))
	}
	r.SetF(1, -2.99)
	ExecALU(Inst{Op: FTOI, Dst: 2, SrcA: 1}, &r)
	if r.Get(2) != -2 {
		t.Fatalf("ftoi(-2.99) = %d", r.Get(2))
	}
}

func TestFminFmaxSemantics(t *testing.T) {
	var r RegFile
	r.SetF(1, -0.5)
	r.SetF(2, 0.25)
	ExecALU(Inst{Op: FMIN, Dst: 3, SrcA: 1, SrcB: 2}, &r)
	if r.GetF(3) != -0.5 {
		t.Fatalf("fmin = %g", r.GetF(3))
	}
	ExecALU(Inst{Op: FMAX, Dst: 3, SrcA: 1, SrcB: 2}, &r)
	if r.GetF(3) != 0.25 {
		t.Fatalf("fmax = %g", r.GetF(3))
	}
}

func TestNopHasNoEffect(t *testing.T) {
	var r, before RegFile
	r.Set(5, 42)
	before = r
	ExecALU(Inst{Op: NOP}, &r)
	if r != before {
		t.Fatal("nop changed register state")
	}
}

func TestExecALUPanicsOnMemAndControl(t *testing.T) {
	for _, op := range []Op{LD, ST, BEQZ, BNEZ, JMP} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("ExecALU accepted %s", op)
				}
			}()
			var r RegFile
			ExecALU(Inst{Op: op}, &r)
		}()
	}
}

func TestDisassemblyCoversEveryOpcode(t *testing.T) {
	for o := Op(0); o < opCount; o++ {
		in := Inst{Op: o, Dst: 1, SrcA: 2, SrcB: 3, Imm: 4, FImm: 1.5, Target: 6}
		s := in.String()
		if s == "" || strings.Contains(s, "op(") {
			t.Errorf("opcode %d disassembles to %q", o, s)
		}
	}
}

// Property: EffAddr is base + offset under two's-complement wrap.
func TestPropertyEffAddr(t *testing.T) {
	f := func(base int64, off int32) bool {
		var r RegFile
		r.Set(4, base)
		got := EffAddr(Inst{Op: LD, SrcA: 4, Imm: int64(off)}, &r)
		return got == uint64(base+int64(off))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: float comparisons agree with Go semantics (including NaN:
// FSLT/FSLE are false when either side is NaN).
func TestPropertyFloatComparisons(t *testing.T) {
	f := func(a, b float64) bool {
		var r RegFile
		r.SetF(1, a)
		r.SetF(2, b)
		ExecALU(Inst{Op: FSLT, Dst: 3, SrcA: 1, SrcB: 2}, &r)
		if (r.Get(3) == 1) != (a < b) {
			return false
		}
		ExecALU(Inst{Op: FSLE, Dst: 3, SrcA: 1, SrcB: 2}, &r)
		return (r.Get(3) == 1) == (a <= b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	var r RegFile
	r.SetF(1, math.NaN())
	r.SetF(2, 1)
	ExecALU(Inst{Op: FSLT, Dst: 3, SrcA: 1, SrcB: 2}, &r)
	if r.Get(3) != 0 {
		t.Fatal("NaN < 1 reported true")
	}
}

// Property: MOV/MOVI round-trip arbitrary values through any register.
func TestPropertyMoves(t *testing.T) {
	f := func(v int64, reg uint8) bool {
		dst := Reg(reg%31) + 1 // skip r0
		var r RegFile
		ExecALU(Inst{Op: MOVI, Dst: dst, Imm: v}, &r)
		ExecALU(Inst{Op: MOV, Dst: 31, SrcA: dst}, &r)
		if dst == 31 {
			return r.Get(31) == v
		}
		return r.Get(dst) == v && r.Get(31) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
