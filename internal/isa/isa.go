// Package isa defines the instruction set executed by the simulated warp
// processing units (WPUs).
//
// The paper simulates Alpha binaries; reproducing that toolchain is neither
// possible here nor necessary — branch and memory divergence depend on the
// shape of control flow and on address streams, not on a particular
// encoding. This package therefore defines a small general-purpose RISC-like
// register ISA that is rich enough to express the eight benchmarks as real,
// functionally verified programs.
//
// Register model: 32 general registers per thread, each 64 bits wide.
// Integer operations treat register contents as int64; floating-point
// operations reinterpret the same bits as float64 (math.Float64bits), the
// way a tagged scalar pipeline with a shared physical file would. Register 0
// is hardwired to zero. By convention the launcher preloads:
//
//	R1 = global thread ID
//	R2 = total thread count
//	R3 = WPU-local thread index
//
// Memory is byte-addressed; loads and stores move 8-byte words and compute
// the effective address as R[base] + Imm.
package isa

import "fmt"

// Reg names one of the 32 general registers.
type Reg uint8

// NumRegs is the architectural register count per thread.
const NumRegs = 32

// WordSize is the size in bytes of a register-width memory access.
const WordSize = 8

// Op enumerates the instruction opcodes.
type Op uint8

// Opcode space. The groupings matter to the WPU front end: IsMem reports
// opcodes that access the D-cache, IsBranch the conditional branches that
// can diverge.
const (
	NOP Op = iota

	// Integer ALU, register-register: Dst = SrcA op SrcB.
	ADD
	SUB
	MUL
	DIV // divide by zero yields 0, like a quiet trap
	REM
	AND
	OR
	XOR
	SHL
	SHR
	SLT // set if less-than (signed)
	SLE
	SEQ
	SNE
	MIN
	MAX

	// Integer ALU, register-immediate: Dst = SrcA op Imm.
	ADDI
	MULI
	ANDI
	SHLI
	SHRI
	SLTI

	// Register moves.
	MOVI // Dst = Imm
	MOV  // Dst = SrcA

	// Floating point (bits reinterpreted as float64).
	FADD
	FSUB
	FMUL
	FDIV
	FNEG
	FABS
	FMIN
	FMAX
	FSLT // Dst = 1 if f(SrcA) < f(SrcB) else 0 (integer result)
	FSLE
	FMOVI // Dst = bits(FImm)
	ITOF  // Dst = bits(float64(int(SrcA)))
	FTOI  // Dst = int64(f(SrcA)), truncating

	// Memory. Address = R[SrcA] + Imm. LD: Dst = mem; ST: mem = R[SrcB].
	LD
	ST

	// Control flow. Conditional branches test R[SrcA]; Target is an
	// absolute instruction index resolved by the program builder.
	BEQZ
	BNEZ
	JMP

	// Synchronisation and termination.
	BARRIER // all threads of the kernel rendezvous
	HALT    // thread terminates

	opCount
)

var opNames = [opCount]string{
	NOP: "nop",
	ADD: "add", SUB: "sub", MUL: "mul", DIV: "div", REM: "rem",
	AND: "and", OR: "or", XOR: "xor", SHL: "shl", SHR: "shr",
	SLT: "slt", SLE: "sle", SEQ: "seq", SNE: "sne", MIN: "min", MAX: "max",
	ADDI: "addi", MULI: "muli", ANDI: "andi", SHLI: "shli", SHRI: "shri",
	SLTI: "slti",
	MOVI: "movi", MOV: "mov",
	FADD: "fadd", FSUB: "fsub", FMUL: "fmul", FDIV: "fdiv",
	FNEG: "fneg", FABS: "fabs", FMIN: "fmin", FMAX: "fmax",
	FSLT: "fslt", FSLE: "fsle", FMOVI: "fmovi", ITOF: "itof", FTOI: "ftoi",
	LD: "ld", ST: "st",
	BEQZ: "beqz", BNEZ: "bnez", JMP: "jmp",
	BARRIER: "barrier", HALT: "halt",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < opCount && opNames[o] != "" }

// IsMem reports whether the opcode accesses the data cache.
func (o Op) IsMem() bool { return o == LD || o == ST }

// IsBranch reports whether the opcode is a conditional branch (the only
// instructions that can cause branch divergence).
func (o Op) IsBranch() bool { return o == BEQZ || o == BNEZ }

// IsControl reports whether the opcode redirects the PC.
func (o Op) IsControl() bool { return o.IsBranch() || o == JMP }

// IsFloat reports whether the opcode executes on the floating-point lanes
// (used by the energy model to charge FPU rather than integer ALU energy).
func (o Op) IsFloat() bool { return o >= FADD && o <= FTOI }

// ReadsA reports whether the opcode reads the SrcA register. The static
// analyses in internal/program (def-before-use, liveness, divergence taint)
// key off these properties, so they must match ExecALU/EffAddr/BranchTaken
// exactly.
func (o Op) ReadsA() bool {
	switch o {
	case NOP, MOVI, FMOVI, JMP, BARRIER, HALT:
		return false
	}
	return o.Valid()
}

// ReadsB reports whether the opcode reads the SrcB register.
func (o Op) ReadsB() bool {
	switch {
	case o >= ADD && o <= MAX:
		return true
	case o >= FADD && o <= FSLE && o != FNEG && o != FABS:
		return true
	case o == ST: // the stored value
		return true
	}
	return false
}

// WritesDst reports whether the opcode writes the Dst register.
func (o Op) WritesDst() bool {
	switch o {
	case NOP, ST, BEQZ, BNEZ, JMP, BARRIER, HALT:
		return false
	}
	return o.Valid()
}

// Inst is one decoded instruction. Instructions are stored decoded — the
// simulator models timing and behaviour, not binary encodings.
type Inst struct {
	Op   Op
	Dst  Reg
	SrcA Reg
	SrcB Reg
	Imm  int64
	FImm float64
	// Target is the absolute instruction index for control transfers,
	// resolved from a label by the program builder.
	Target int
}

// String disassembles the instruction.
func (in Inst) String() string {
	switch {
	case in.Op == NOP || in.Op == BARRIER || in.Op == HALT:
		return in.Op.String()
	case in.Op == LD:
		return fmt.Sprintf("ld r%d, %d(r%d)", in.Dst, in.Imm, in.SrcA)
	case in.Op == ST:
		return fmt.Sprintf("st r%d, %d(r%d)", in.SrcB, in.Imm, in.SrcA)
	case in.Op == MOVI:
		return fmt.Sprintf("movi r%d, %d", in.Dst, in.Imm)
	case in.Op == FMOVI:
		return fmt.Sprintf("fmovi r%d, %g", in.Dst, in.FImm)
	case in.Op == MOV || in.Op == FNEG || in.Op == FABS || in.Op == ITOF || in.Op == FTOI:
		return fmt.Sprintf("%s r%d, r%d", in.Op, in.Dst, in.SrcA)
	case in.Op.IsBranch():
		return fmt.Sprintf("%s r%d, @%d", in.Op, in.SrcA, in.Target)
	case in.Op == JMP:
		return fmt.Sprintf("jmp @%d", in.Target)
	case in.Op >= ADDI && in.Op <= SLTI:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Dst, in.SrcA, in.Imm)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Dst, in.SrcA, in.SrcB)
	}
}
