package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZeroRegisterHardwired(t *testing.T) {
	var r RegFile
	r.Set(0, 42)
	if r.Get(0) != 0 {
		t.Fatal("write to r0 was not discarded")
	}
	ExecALU(Inst{Op: MOVI, Dst: 0, Imm: 9}, &r)
	if r.Get(0) != 0 {
		t.Fatal("movi to r0 was not discarded")
	}
}

func TestIntegerALU(t *testing.T) {
	cases := []struct {
		op   Op
		a, b int64
		want int64
	}{
		{ADD, 3, 4, 7},
		{SUB, 3, 4, -1},
		{MUL, -3, 4, -12},
		{DIV, 12, 4, 3},
		{DIV, 12, 0, 0},
		{REM, 13, 4, 1},
		{REM, 13, 0, 0},
		{AND, 0b1100, 0b1010, 0b1000},
		{OR, 0b1100, 0b1010, 0b1110},
		{XOR, 0b1100, 0b1010, 0b0110},
		{SHL, 1, 4, 16},
		{SHR, 16, 4, 1},
		{SLT, 1, 2, 1},
		{SLT, 2, 1, 0},
		{SLE, 2, 2, 1},
		{SEQ, 5, 5, 1},
		{SNE, 5, 5, 0},
		{MIN, 7, -2, -2},
		{MAX, 7, -2, 7},
	}
	for _, c := range cases {
		var r RegFile
		r.Set(1, c.a)
		r.Set(2, c.b)
		ExecALU(Inst{Op: c.op, Dst: 3, SrcA: 1, SrcB: 2}, &r)
		if got := r.Get(3); got != c.want {
			t.Errorf("%s(%d,%d) = %d, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestImmediateALU(t *testing.T) {
	var r RegFile
	r.Set(1, 10)
	ExecALU(Inst{Op: ADDI, Dst: 2, SrcA: 1, Imm: -3}, &r)
	if r.Get(2) != 7 {
		t.Fatalf("addi = %d, want 7", r.Get(2))
	}
	ExecALU(Inst{Op: MULI, Dst: 2, SrcA: 1, Imm: 5}, &r)
	if r.Get(2) != 50 {
		t.Fatalf("muli = %d, want 50", r.Get(2))
	}
	ExecALU(Inst{Op: SHLI, Dst: 2, SrcA: 1, Imm: 2}, &r)
	if r.Get(2) != 40 {
		t.Fatalf("shli = %d, want 40", r.Get(2))
	}
	ExecALU(Inst{Op: SHRI, Dst: 2, SrcA: 1, Imm: 1}, &r)
	if r.Get(2) != 5 {
		t.Fatalf("shri = %d, want 5", r.Get(2))
	}
	ExecALU(Inst{Op: SLTI, Dst: 2, SrcA: 1, Imm: 11}, &r)
	if r.Get(2) != 1 {
		t.Fatalf("slti = %d, want 1", r.Get(2))
	}
	ExecALU(Inst{Op: ANDI, Dst: 2, SrcA: 1, Imm: 3}, &r)
	if r.Get(2) != 2 {
		t.Fatalf("andi = %d, want 2", r.Get(2))
	}
}

func TestFloatALU(t *testing.T) {
	var r RegFile
	r.SetF(1, 1.5)
	r.SetF(2, 2.25)
	ExecALU(Inst{Op: FADD, Dst: 3, SrcA: 1, SrcB: 2}, &r)
	if r.GetF(3) != 3.75 {
		t.Fatalf("fadd = %g", r.GetF(3))
	}
	ExecALU(Inst{Op: FMUL, Dst: 3, SrcA: 1, SrcB: 2}, &r)
	if r.GetF(3) != 3.375 {
		t.Fatalf("fmul = %g", r.GetF(3))
	}
	ExecALU(Inst{Op: FSUB, Dst: 3, SrcA: 2, SrcB: 1}, &r)
	if r.GetF(3) != 0.75 {
		t.Fatalf("fsub = %g", r.GetF(3))
	}
	ExecALU(Inst{Op: FDIV, Dst: 3, SrcA: 2, SrcB: 1}, &r)
	if r.GetF(3) != 1.5 {
		t.Fatalf("fdiv = %g", r.GetF(3))
	}
	ExecALU(Inst{Op: FSLT, Dst: 3, SrcA: 1, SrcB: 2}, &r)
	if r.Get(3) != 1 {
		t.Fatalf("fslt = %d", r.Get(3))
	}
	ExecALU(Inst{Op: FNEG, Dst: 3, SrcA: 1}, &r)
	if r.GetF(3) != -1.5 {
		t.Fatalf("fneg = %g", r.GetF(3))
	}
	ExecALU(Inst{Op: FABS, Dst: 4, SrcA: 3}, &r)
	if r.GetF(4) != 1.5 {
		t.Fatalf("fabs = %g", r.GetF(4))
	}
	ExecALU(Inst{Op: ITOF, Dst: 3, SrcA: 0}, &r)
	if r.GetF(3) != 0 {
		t.Fatalf("itof(0) = %g", r.GetF(3))
	}
	r.Set(5, 7)
	ExecALU(Inst{Op: ITOF, Dst: 3, SrcA: 5}, &r)
	if r.GetF(3) != 7 {
		t.Fatalf("itof(7) = %g", r.GetF(3))
	}
	ExecALU(Inst{Op: FTOI, Dst: 6, SrcA: 3}, &r)
	if r.Get(6) != 7 {
		t.Fatalf("ftoi = %d", r.Get(6))
	}
	ExecALU(Inst{Op: FMOVI, Dst: 7, FImm: 2.5}, &r)
	if r.GetF(7) != 2.5 {
		t.Fatalf("fmovi = %g", r.GetF(7))
	}
}

func TestBranchTaken(t *testing.T) {
	var r RegFile
	if !BranchTaken(Inst{Op: BEQZ, SrcA: 1}, &r) {
		t.Fatal("beqz on zero should be taken")
	}
	if BranchTaken(Inst{Op: BNEZ, SrcA: 1}, &r) {
		t.Fatal("bnez on zero should not be taken")
	}
	r.Set(1, -5)
	if BranchTaken(Inst{Op: BEQZ, SrcA: 1}, &r) {
		t.Fatal("beqz on nonzero should not be taken")
	}
	if !BranchTaken(Inst{Op: BNEZ, SrcA: 1}, &r) {
		t.Fatal("bnez on nonzero should be taken")
	}
}

func TestBranchTakenPanicsOnNonBranch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	var r RegFile
	BranchTaken(Inst{Op: ADD}, &r)
}

func TestEffAddr(t *testing.T) {
	var r RegFile
	r.Set(4, 1000)
	got := EffAddr(Inst{Op: LD, SrcA: 4, Imm: 24}, &r)
	if got != 1024 {
		t.Fatalf("EffAddr = %d, want 1024", got)
	}
}

func TestOpClassification(t *testing.T) {
	if !LD.IsMem() || !ST.IsMem() || ADD.IsMem() {
		t.Fatal("IsMem misclassifies")
	}
	if !BEQZ.IsBranch() || !BNEZ.IsBranch() || JMP.IsBranch() {
		t.Fatal("IsBranch misclassifies")
	}
	if !JMP.IsControl() || !BEQZ.IsControl() || HALT.IsControl() {
		t.Fatal("IsControl misclassifies")
	}
	if !FADD.IsFloat() || ADD.IsFloat() || LD.IsFloat() {
		t.Fatal("IsFloat misclassifies")
	}
}

func TestOpStringsDefined(t *testing.T) {
	for o := Op(0); o < opCount; o++ {
		if !o.Valid() {
			t.Errorf("opcode %d has no name", o)
		}
	}
	if Op(200).Valid() {
		t.Fatal("out-of-range opcode reported valid")
	}
}

func TestInstDisassembly(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: LD, Dst: 5, SrcA: 4, Imm: 8}, "ld r5, 8(r4)"},
		{Inst{Op: ST, SrcB: 6, SrcA: 4, Imm: 0}, "st r6, 0(r4)"},
		{Inst{Op: BEQZ, SrcA: 2, Target: 17}, "beqz r2, @17"},
		{Inst{Op: JMP, Target: 3}, "jmp @3"},
		{Inst{Op: ADD, Dst: 1, SrcA: 2, SrcB: 3}, "add r1, r2, r3"},
		{Inst{Op: ADDI, Dst: 1, SrcA: 2, Imm: -4}, "addi r1, r2, -4"},
		{Inst{Op: MOVI, Dst: 9, Imm: 11}, "movi r9, 11"},
		{Inst{Op: HALT}, "halt"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

// Property: float round-trip through register bits is exact.
func TestPropertyFloatRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		var r RegFile
		r.SetF(1, v)
		got := r.GetF(1)
		return got == v || (math.IsNaN(v) && math.IsNaN(got))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SLT/SLE/SEQ/SNE agree with Go comparisons for all inputs.
func TestPropertyComparisons(t *testing.T) {
	f := func(a, b int64) bool {
		var r RegFile
		r.Set(1, a)
		r.Set(2, b)
		check := func(op Op, want bool) bool {
			ExecALU(Inst{Op: op, Dst: 3, SrcA: 1, SrcB: 2}, &r)
			return (r.Get(3) == 1) == want
		}
		ok := check(SLT, a < b) && check(SLE, a <= b) &&
			check(SEQ, a == b) && check(SNE, a != b)
		ExecALU(Inst{Op: MIN, Dst: 3, SrcA: 1, SrcB: 2}, &r)
		return ok && r.Get(3) == min(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ADD/SUB are inverses.
func TestPropertyAddSubInverse(t *testing.T) {
	f := func(a, b int64) bool {
		var r RegFile
		r.Set(1, a)
		r.Set(2, b)
		ExecALU(Inst{Op: ADD, Dst: 3, SrcA: 1, SrcB: 2}, &r)
		ExecALU(Inst{Op: SUB, Dst: 4, SrcA: 3, SrcB: 2}, &r)
		return r.Get(4) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
