package isa

import "math"

// This file is the pre-decoded dispatch layer: at program build time every
// Inst is lowered into a Decoded — a flat, dispatch-ready form with a dense
// kind index, pre-classified flags, and resolved operand fields — so the
// WPU front end does one table-indexed dispatch per issue instead of
// re-interrogating Op through predicate calls and a nested switch. The Inst
// form stays the authoritative architectural encoding (the builder,
// verifier, and disassembler all consume it); Decoded is derived from it
// and must remain behaviourally identical — decode_test.go checks the
// round-trip and differential-executes both forms.

// Kind is the dispatch category of a decoded instruction. The WPU issue
// loop switches on Kind once per instruction; everything in KindALU is
// handled entirely by ExecALULanes.
type Kind uint8

// Dispatch categories.
const (
	KindALU Kind = iota // register-only effects (includes NOP)
	KindBranch
	KindJmp
	KindMem
	KindBarrier
	KindHalt
)

// DFlags are properties pre-classified at decode time. The low bits are
// fixed by the opcode; the program layer ors in the analysis-driven bits
// (DFUniform, DFSubdiv) after verification.
type DFlags uint8

const (
	// DFFloat: executes on the floating-point lanes (energy accounting).
	DFFloat DFlags = 1 << iota
	// DFStore: memory instruction writes (ST); unset means LD.
	DFStore
	// DFBranchNZ: branch taken when the predicate is non-zero (BNEZ);
	// unset means taken-on-zero (BEQZ).
	DFBranchNZ
	// DFUniform: the divergence analysis proved the branch predicate
	// warp-uniform (program layer; mirrors BranchInfo.Uniform).
	DFUniform
	// DFSubdiv: static analysis allows dynamic warp subdivision at this
	// branch (program layer; mirrors BranchInfo.Subdividable).
	DFSubdiv
	// DFMemHint: the static access analysis proved this memory
	// instruction's address warp-uniform — every co-executing lane
	// touches the same cache line, so intra-warp hit/miss divergence is
	// impossible and the WPU may skip the memory-divergence subdivision
	// probe outright (program layer; see program.AccessUniform).
	DFMemHint
	// DFMemClassLo/DFMemClassHi hold the 2-bit static access class of a
	// memory instruction (program layer; numerically program.AccessClass:
	// 0 uniform, 1 coalesced, 2 strided, 3 divergent-gather).
	DFMemClassLo
	DFMemClassHi
)

// memClassShift is the bit position of DFMemClassLo.
const memClassShift = 6

// MemClass returns the 2-bit static access class the program layer
// encoded for a memory instruction (program.AccessClass numbering).
func (d Decoded) MemClass() uint8 {
	return uint8(d.Flags&(DFMemClassLo|DFMemClassHi)) >> memClassShift
}

// SetMemClass encodes the 2-bit static access class.
func (d *Decoded) SetMemClass(c uint8) {
	d.Flags = d.Flags&^(DFMemClassLo|DFMemClassHi) | DFlags(c&3)<<memClassShift
}

// Decoded is one dispatch-ready instruction. Operand registers are plain
// row indices into the SoA register file; a discarded destination (the
// hardwired zero register) is redirected to DiscardReg at decode time so
// the execution arms never test for it.
type Decoded struct {
	Op    Op
	Kind  Kind
	Flags DFlags
	Dst   uint8
	SrcA  uint8
	SrcB  uint8
	// Imm is the resolved immediate; for FMOVI it holds the float bits so
	// the execution arm is a plain integer store.
	Imm int64
	// Target is the absolute instruction index for control transfers.
	Target int32
	// Reconv is the verified re-convergence pc for conditional branches
	// (program layer; NoIPdom equivalent is -1), unused otherwise.
	Reconv int32
}

// Decode lowers one instruction. The program layer calls this for every
// instruction at Build time and then fills in the analysis-driven fields.
func Decode(in Inst) Decoded {
	d := Decoded{
		Op:     in.Op,
		Kind:   KindALU,
		Dst:    uint8(in.Dst),
		SrcA:   uint8(in.SrcA),
		SrcB:   uint8(in.SrcB),
		Imm:    in.Imm,
		Target: int32(in.Target),
		Reconv: -1,
	}
	switch {
	case in.Op.IsBranch():
		d.Kind = KindBranch
		if in.Op == BNEZ {
			d.Flags |= DFBranchNZ
		}
	case in.Op == JMP:
		d.Kind = KindJmp
	case in.Op.IsMem():
		d.Kind = KindMem
		if in.Op == ST {
			d.Flags |= DFStore
		}
	case in.Op == BARRIER:
		d.Kind = KindBarrier
	case in.Op == HALT:
		d.Kind = KindHalt
	}
	if in.Op.IsFloat() {
		d.Flags |= DFFloat
	}
	if in.Op == FMOVI {
		d.Imm = int64(math.Float64bits(in.FImm))
	}
	if in.Op.WritesDst() && in.Dst == 0 {
		d.Dst = DiscardReg
	}
	return d
}

// Reassemble reconstructs the architectural instruction, inverting Decode.
// The differential tests use it to prove the decoded stream carries exactly
// the information of the Inst it came from.
func (d Decoded) Reassemble() Inst {
	in := Inst{
		Op:     d.Op,
		Dst:    Reg(d.Dst),
		SrcA:   Reg(d.SrcA),
		SrcB:   Reg(d.SrcB),
		Imm:    d.Imm,
		Target: int(d.Target),
	}
	if d.Dst == DiscardReg {
		in.Dst = 0
	}
	if d.Op == FMOVI {
		in.FImm = math.Float64frombits(uint64(d.Imm))
		in.Imm = 0
	}
	return in
}

// DecodeProgram lowers a whole instruction stream.
func DecodeProgram(code []Inst) []Decoded {
	ds := make([]Decoded, len(code))
	for pc, in := range code {
		ds[pc] = Decode(in)
	}
	return ds
}
