package isa

import "math"

// RegFile is the architectural register state of one thread.
type RegFile [NumRegs]int64

// Get reads a register, honouring the hardwired zero register.
func (r *RegFile) Get(reg Reg) int64 {
	if reg == 0 {
		return 0
	}
	return r[reg]
}

// Set writes a register; writes to the zero register are discarded.
func (r *RegFile) Set(reg Reg, v int64) {
	if reg != 0 {
		r[reg] = v
	}
}

// GetF reads a register as float64.
func (r *RegFile) GetF(reg Reg) float64 { return math.Float64frombits(uint64(r.Get(reg))) }

// SetF writes a float64 into a register.
func (r *RegFile) SetF(reg Reg, v float64) { r.Set(reg, int64(math.Float64bits(v))) }

// EffAddr computes the effective address of a memory instruction for the
// given register state.
func EffAddr(in Inst, r *RegFile) uint64 {
	return uint64(r.Get(in.SrcA) + in.Imm)
}

// BranchTaken evaluates a conditional branch for the given register state.
// It panics if in is not a branch, since calling it on anything else is a
// WPU front-end bug.
func BranchTaken(in Inst, r *RegFile) bool {
	switch in.Op {
	case BEQZ:
		return r.Get(in.SrcA) == 0
	case BNEZ:
		return r.Get(in.SrcA) != 0
	default:
		panic("isa: BranchTaken on non-branch " + in.Op.String())
	}
}

// ExecALU executes a non-memory, non-control instruction against the
// register file. Memory and control instructions are sequenced by the WPU
// (they need cache timing and divergence handling) and must not be passed
// here.
func ExecALU(in Inst, r *RegFile) {
	switch in.Op {
	case NOP, BARRIER, HALT:
		// No register effects.
	case ADD:
		r.Set(in.Dst, r.Get(in.SrcA)+r.Get(in.SrcB))
	case SUB:
		r.Set(in.Dst, r.Get(in.SrcA)-r.Get(in.SrcB))
	case MUL:
		r.Set(in.Dst, r.Get(in.SrcA)*r.Get(in.SrcB))
	case DIV:
		if b := r.Get(in.SrcB); b != 0 {
			r.Set(in.Dst, r.Get(in.SrcA)/b)
		} else {
			r.Set(in.Dst, 0)
		}
	case REM:
		if b := r.Get(in.SrcB); b != 0 {
			r.Set(in.Dst, r.Get(in.SrcA)%b)
		} else {
			r.Set(in.Dst, 0)
		}
	case AND:
		r.Set(in.Dst, r.Get(in.SrcA)&r.Get(in.SrcB))
	case OR:
		r.Set(in.Dst, r.Get(in.SrcA)|r.Get(in.SrcB))
	case XOR:
		r.Set(in.Dst, r.Get(in.SrcA)^r.Get(in.SrcB))
	case SHL:
		r.Set(in.Dst, r.Get(in.SrcA)<<uint(r.Get(in.SrcB)&63))
	case SHR:
		r.Set(in.Dst, int64(uint64(r.Get(in.SrcA))>>uint(r.Get(in.SrcB)&63)))
	case SLT:
		r.Set(in.Dst, b2i(r.Get(in.SrcA) < r.Get(in.SrcB)))
	case SLE:
		r.Set(in.Dst, b2i(r.Get(in.SrcA) <= r.Get(in.SrcB)))
	case SEQ:
		r.Set(in.Dst, b2i(r.Get(in.SrcA) == r.Get(in.SrcB)))
	case SNE:
		r.Set(in.Dst, b2i(r.Get(in.SrcA) != r.Get(in.SrcB)))
	case MIN:
		r.Set(in.Dst, min(r.Get(in.SrcA), r.Get(in.SrcB)))
	case MAX:
		r.Set(in.Dst, max(r.Get(in.SrcA), r.Get(in.SrcB)))
	case ADDI:
		r.Set(in.Dst, r.Get(in.SrcA)+in.Imm)
	case MULI:
		r.Set(in.Dst, r.Get(in.SrcA)*in.Imm)
	case ANDI:
		r.Set(in.Dst, r.Get(in.SrcA)&in.Imm)
	case SHLI:
		r.Set(in.Dst, r.Get(in.SrcA)<<uint(in.Imm&63))
	case SHRI:
		r.Set(in.Dst, int64(uint64(r.Get(in.SrcA))>>uint(in.Imm&63)))
	case SLTI:
		r.Set(in.Dst, b2i(r.Get(in.SrcA) < in.Imm))
	case MOVI:
		r.Set(in.Dst, in.Imm)
	case MOV:
		r.Set(in.Dst, r.Get(in.SrcA))
	case FADD:
		r.SetF(in.Dst, r.GetF(in.SrcA)+r.GetF(in.SrcB))
	case FSUB:
		r.SetF(in.Dst, r.GetF(in.SrcA)-r.GetF(in.SrcB))
	case FMUL:
		r.SetF(in.Dst, r.GetF(in.SrcA)*r.GetF(in.SrcB))
	case FDIV:
		r.SetF(in.Dst, r.GetF(in.SrcA)/r.GetF(in.SrcB))
	case FNEG:
		r.SetF(in.Dst, -r.GetF(in.SrcA))
	case FABS:
		r.SetF(in.Dst, math.Abs(r.GetF(in.SrcA)))
	case FMIN:
		r.SetF(in.Dst, math.Min(r.GetF(in.SrcA), r.GetF(in.SrcB)))
	case FMAX:
		r.SetF(in.Dst, math.Max(r.GetF(in.SrcA), r.GetF(in.SrcB)))
	case FSLT:
		r.Set(in.Dst, b2i(r.GetF(in.SrcA) < r.GetF(in.SrcB)))
	case FSLE:
		r.Set(in.Dst, b2i(r.GetF(in.SrcA) <= r.GetF(in.SrcB)))
	case FMOVI:
		r.SetF(in.Dst, in.FImm)
	case ITOF:
		r.SetF(in.Dst, float64(r.Get(in.SrcA)))
	case FTOI:
		r.Set(in.Dst, int64(r.GetF(in.SrcA)))
	default:
		panic("isa: ExecALU on " + in.Op.String())
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
