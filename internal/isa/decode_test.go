package isa

import (
	"math"
	"math/rand"
	"testing"
)

// allOps enumerates every opcode once, with operand fields populated the way
// the program builder would populate them.
func allOps() []Inst {
	var ins []Inst
	for op := Op(0); op < opCount; op++ {
		in := Inst{Op: op}
		if op.WritesDst() {
			in.Dst = 3
		}
		if op.ReadsA() {
			in.SrcA = 4
		}
		if op.ReadsB() {
			in.SrcB = 5
		}
		switch {
		case op == FMOVI:
			in.FImm = 2.5
		case op == MOVI || op == ADDI || op == MULI || op == ANDI ||
			op == SHLI || op == SHRI || op == SLTI || op.IsMem():
			in.Imm = 16
		case op.IsControl() && op != HALT && op != BARRIER:
			in.Target = 7
		}
		ins = append(ins, in)
	}
	return ins
}

// TestDecodeRoundTrip: Reassemble(Decode(in)) == in for every opcode —
// the decoded stream carries exactly the information of the architectural
// instruction, so the disassembler (which consumes the Inst form) cannot
// drift from what executes.
func TestDecodeRoundTrip(t *testing.T) {
	for _, in := range allOps() {
		d := Decode(in)
		back := d.Reassemble()
		if back != in {
			t.Errorf("%v: round-trip mismatch: got %+v want %+v (decoded %+v)", in.Op, back, in, d)
		}
		// And the disassembly is unchanged through the round trip.
		if back.String() != in.String() {
			t.Errorf("%v: disassembly changed: %q vs %q", in.Op, back.String(), in.String())
		}
	}
}

// TestDecodeClassification: Kind and Flags agree with the Op predicates the
// issue loop used to call.
func TestDecodeClassification(t *testing.T) {
	for _, in := range allOps() {
		d := Decode(in)
		wantKind := KindALU
		switch {
		case in.Op.IsBranch():
			wantKind = KindBranch
		case in.Op == JMP:
			wantKind = KindJmp
		case in.Op.IsMem():
			wantKind = KindMem
		case in.Op == BARRIER:
			wantKind = KindBarrier
		case in.Op == HALT:
			wantKind = KindHalt
		}
		if d.Kind != wantKind {
			t.Errorf("%v: Kind = %d, want %d", in.Op, d.Kind, wantKind)
		}
		if got, want := d.Flags&DFFloat != 0, in.Op.IsFloat(); got != want {
			t.Errorf("%v: DFFloat = %v, want %v", in.Op, got, want)
		}
		if got, want := d.Flags&DFStore != 0, in.Op == ST; got != want {
			t.Errorf("%v: DFStore = %v, want %v", in.Op, got, want)
		}
		if got, want := d.Flags&DFBranchNZ != 0, in.Op == BNEZ; got != want {
			t.Errorf("%v: DFBranchNZ = %v, want %v", in.Op, got, want)
		}
	}
}

// TestDecodeZeroDst: a write to the architectural zero register is
// redirected to the discard row, and reads of r0 stay row 0.
func TestDecodeZeroDst(t *testing.T) {
	d := Decode(Inst{Op: ADDI, Dst: 0, SrcA: 0, Imm: 9})
	if d.Dst != DiscardReg {
		t.Fatalf("Dst = %d, want DiscardReg (%d)", d.Dst, DiscardReg)
	}
	if d.SrcA != 0 {
		t.Fatalf("SrcA = %d, want 0", d.SrcA)
	}
	if back := d.Reassemble(); back.Dst != 0 {
		t.Fatalf("Reassemble Dst = %d, want 0", back.Dst)
	}
	// Executing it must leave every architectural register untouched.
	lr := NewLaneRegs(4)
	ExecALULanes(&d, lr, lr.full)
	for lane := 0; lane < 4; lane++ {
		for r := Reg(0); r < NumRegs; r++ {
			if lr.Get(lane, r) != 0 {
				t.Fatalf("lane %d r%d = %d after discarded write", lane, r, lr.Get(lane, r))
			}
		}
	}
}

// randALU yields a random ALU instruction with operands drawn from a small
// register window (so chains of instructions interact).
func randALU(rng *rand.Rand) Inst {
	aluOps := []Op{
		ADD, SUB, MUL, DIV, REM, AND, OR, XOR, SHL, SHR,
		SLT, SLE, SEQ, SNE, MIN, MAX,
		ADDI, MULI, ANDI, SHLI, SHRI, SLTI,
		MOVI, MOV,
		FADD, FSUB, FMUL, FDIV, FNEG, FABS, FMIN, FMAX, FSLT, FSLE,
		FMOVI, ITOF, FTOI, NOP,
	}
	op := aluOps[rng.Intn(len(aluOps))]
	in := Inst{Op: op}
	if op.WritesDst() {
		in.Dst = Reg(rng.Intn(8)) // includes r0: exercises the discard path
	}
	if op.ReadsA() {
		in.SrcA = Reg(rng.Intn(8))
	}
	if op.ReadsB() {
		in.SrcB = Reg(rng.Intn(8))
	}
	if op == FMOVI {
		in.FImm = float64(rng.Intn(64)-32) / 4
	} else {
		in.Imm = int64(rng.Intn(256) - 128)
	}
	return in
}

// TestExecALULanesDifferential fuzzes random ALU instruction sequences with
// random activity masks against the retained per-lane ExecALU oracle: after
// every instruction the SoA register file must match the architectural
// register files bit for bit, on both the full-mask fast loops and the
// bit-scan masked loops.
func TestExecALULanesDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const width = 8
	for trial := 0; trial < 200; trial++ {
		lr := NewLaneRegs(width)
		var oracle [width]RegFile
		// Random starting state (r0 stays zero in both forms).
		for lane := 0; lane < width; lane++ {
			for r := Reg(1); r < NumRegs; r++ {
				v := rng.Int63() - (1 << 62)
				if rng.Intn(4) == 0 {
					v = int64(math.Float64bits(float64(rng.Intn(64)-32) / 8))
				}
				oracle[lane].Set(r, v)
			}
			rf := oracle[lane]
			lr.SetThread(lane, &rf)
		}
		for step := 0; step < 50; step++ {
			in := randALU(rng)
			d := Decode(in)
			mask := rng.Uint64() & lr.full
			if step%4 == 0 {
				mask = lr.full // exercise the straight full-width loops
			}
			ExecALULanes(&d, lr, mask)
			for lane := 0; lane < width; lane++ {
				if mask&(1<<uint(lane)) != 0 {
					ExecALU(in, &oracle[lane])
				}
			}
			for lane := 0; lane < width; lane++ {
				got := lr.Thread(lane)
				for r := Reg(0); r < NumRegs; r++ {
					g, o := got.Get(r), oracle[lane].Get(r)
					if g == o {
						continue
					}
					// Go pins neither NaN payloads nor the operand order
					// of commutative float arithmetic, so the two forms
					// may legitimately produce different NaN encodings of
					// the same architectural value. Re-sync the lane so
					// the divergent payload cannot poison later integer
					// ops on the register.
					if math.IsNaN(f(g)) && math.IsNaN(f(o)) {
						lr.Set(lane, r, o)
						continue
					}
					t.Fatalf("trial %d step %d %v mask %#x lane %d r%d:\n got %v\nwant %v",
						trial, step, in, mask, lane, r, got, oracle[lane])
				}
			}
		}
	}
}

// TestDecodeProgramLength is a sanity check that the stream is 1:1 with the
// code (the WPU indexes both with the same pc).
func TestDecodeProgramLength(t *testing.T) {
	code := allOps()
	ds := DecodeProgram(code)
	if len(ds) != len(code) {
		t.Fatalf("len = %d, want %d", len(ds), len(code))
	}
	for pc := range code {
		if ds[pc].Reassemble() != code[pc] {
			t.Fatalf("pc %d: stream entry does not round-trip", pc)
		}
	}
}
