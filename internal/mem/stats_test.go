package mem

import (
	"reflect"
	"testing"

	"repro/internal/engine"
)

// statsAddCoversAllFields sets each field of the stats struct in turn to a
// distinct non-zero value and requires Add to propagate it into a zero
// aggregate. This guards sum fields and max fields alike (max over a zero
// aggregate is the value itself), so adding a counter without extending
// Add fails here — the analogue of report's TestKnobKeyCoversAllFields.
func statsAddCoversAllFields(t *testing.T, zero func() reflect.Value, add func(agg, o reflect.Value)) {
	t.Helper()
	typ := zero().Elem().Type()
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if f.Type.Kind() != reflect.Uint64 {
			t.Fatalf("field %s has kind %s; stats aggregation only handles uint64 counters", f.Name, f.Type.Kind())
		}
		o := zero()
		o.Elem().Field(i).SetUint(7)
		agg := zero()
		add(agg, o)
		if got := agg.Elem().Field(i).Uint(); got != 7 {
			t.Errorf("Add dropped field %s: aggregate has %d, want 7", f.Name, got)
		}
	}
}

func TestL1StatsAddCoversAllFields(t *testing.T) {
	statsAddCoversAllFields(t,
		func() reflect.Value { return reflect.ValueOf(&L1Stats{}) },
		func(agg, o reflect.Value) {
			agg.Interface().(*L1Stats).Add(*o.Interface().(*L1Stats))
		})
}

func TestL2StatsAddCoversAllFields(t *testing.T) {
	statsAddCoversAllFields(t,
		func() reflect.Value { return reflect.ValueOf(&L2Stats{}) },
		func(agg, o reflect.Value) {
			agg.Interface().(*L2Stats).Add(*o.Interface().(*L2Stats))
		})
}

func TestStatsAddPeakTakesMax(t *testing.T) {
	a := L1Stats{MSHRPeak: 9}
	a.Add(L1Stats{MSHRPeak: 4})
	if a.MSHRPeak != 9 {
		t.Errorf("L1 MSHRPeak = %d after adding a smaller peak, want 9", a.MSHRPeak)
	}
	b := L2Stats{MSHRPeak: 3}
	b.Add(L2Stats{MSHRPeak: 5})
	if b.MSHRPeak != 5 {
		t.Errorf("L2 MSHRPeak = %d, want 5", b.MSHRPeak)
	}
}

// TestMSHRPeakAndBankConflicts drives a tiny hierarchy to check the new
// occupancy counters: two concurrent misses to distinct lines raise the
// MSHR high-water mark to 2, and two same-cycle hits to lines in the same
// bank record one bank conflict.
func TestMSHRPeakAndBankConflicts(t *testing.T) {
	q := &engine.Queue{}
	h := NewHierarchy(q, 1, HierarchyConfig{
		L1:      L1Config{SizeBytes: 4096, Ways: 2, LineSize: 128, HitLat: 3, Banks: 4, MSHRs: 8},
		L2:      L2Config{SizeBytes: 64 * 1024, Ways: 8, LineSize: 128, LookupLat: 10, ProbeLat: 4, MSHRs: 16},
		XbarLat: 2, XbarOcc: 1, MemBusOcc: 4, DRAMLat: 50,
	})
	l1 := h.L1s[0]

	done := 0
	l1.Access(0, false, func() { done++ })
	l1.Access(128, false, func() { done++ })
	if got := l1.OutstandingMisses(); got != 2 {
		t.Fatalf("outstanding misses = %d, want 2", got)
	}
	q.Drain()
	if done != 2 {
		t.Fatalf("completions = %d, want 2", done)
	}
	if l1.Stats.MSHRPeak != 2 {
		t.Errorf("L1 MSHRPeak = %d, want 2", l1.Stats.MSHRPeak)
	}
	if h.L2.Stats.MSHRPeak == 0 {
		t.Errorf("L2 MSHRPeak = 0, want > 0 after two L2 misses")
	}

	// Both lines are now resident. Line addresses 0 and 4*128 map to bank 0
	// (bank = line/LineSize mod Banks): a second same-cycle access to the
	// bank must queue.
	l1.Access(512, false, func() { done++ }) // install line in bank 0
	q.Drain()
	before := l1.Stats.BankConflicts
	l1.Access(0, false, func() { done++ })
	l1.Access(512, false, func() { done++ })
	if l1.Stats.BankConflicts != before+1 {
		t.Errorf("BankConflicts = %d, want %d", l1.Stats.BankConflicts, before+1)
	}
	q.Drain()
}
