package mem

import (
	"math/rand"
	"testing"
)

// TestMSHRTableBasics exercises put/get/del through collisions and the
// backward-shift deletion, cross-checked against a plain map.
func TestMSHRTableBasics(t *testing.T) {
	tab := newMSHRTable[*l1MSHR](8) // 32 slots
	ref := map[uint64]*l1MSHR{}
	rng := rand.New(rand.NewSource(7))
	// Keys are line addresses: multiples of 128 in a narrow window, the
	// adversarial case for the multiplicative hash (low entropy, shared
	// low bits).
	keys := make([]uint64, 64)
	for i := range keys {
		keys[i] = 0x100000 + uint64(i)*128
	}
	for step := 0; step < 10000; step++ {
		k := keys[rng.Intn(len(keys))]
		switch {
		case rng.Intn(3) == 0:
			if _, ok := ref[k]; ok {
				delete(ref, k)
				tab.del(k)
			}
		case len(ref) < 8:
			if _, ok := ref[k]; !ok {
				m := &l1MSHR{lineAddr: k}
				ref[k] = m
				tab.put(k, m)
			}
		}
		if tab.len() != len(ref) {
			t.Fatalf("step %d: len = %d, want %d", step, tab.len(), len(ref))
		}
		for _, k := range keys {
			got, ok := tab.get(k)
			want, wok := ref[k]
			if ok != wok || got != want {
				t.Fatalf("step %d: get(%#x) = %v,%v want %v,%v", step, k, got, ok, want, wok)
			}
		}
	}
}

// TestMSHRTableDelAbsent: deleting a missing key must not disturb entries.
func TestMSHRTableDelAbsent(t *testing.T) {
	tab := newMSHRTable[*l2MSHR](4)
	m := &l2MSHR{lineAddr: 128}
	tab.put(128, m)
	tab.del(256)
	tab.del(128 + uint64(len(tab.slots))*128) // may hash near the live key
	if got, ok := tab.get(128); !ok || got != m {
		t.Fatalf("entry lost after deleting absent keys")
	}
	if tab.len() != 1 {
		t.Fatalf("len = %d, want 1", tab.len())
	}
}

// TestMSHRTableScanDeterministic: scan order must be a pure function of the
// operation sequence — the L2's MSHR-full fallback picks its victim this
// way, and simulation determinism depends on it.
func TestMSHRTableScanDeterministic(t *testing.T) {
	build := func() []uint64 {
		tab := newMSHRTable[*l2MSHR](16)
		for i := 0; i < 16; i++ {
			tab.put(0x200000+uint64(i)*128, &l2MSHR{})
		}
		for i := 0; i < 16; i += 2 {
			tab.del(0x200000 + uint64(i)*128)
		}
		var order []uint64
		tab.scan(func(k uint64, _ *l2MSHR) bool {
			order = append(order, k)
			return true
		})
		return order
	}
	a, b := build(), build()
	if len(a) != 8 {
		t.Fatalf("scan visited %d entries, want 8", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scan order differs between identical runs: %v vs %v", a, b)
		}
	}
}
