package mem

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/obs"
)

// HierarchyConfig assembles the full memory system of Table 3: per-WPU
// private L1 D-caches, a crossbar, the shared inclusive L2, the memory bus,
// and DRAM.
type HierarchyConfig struct {
	L1 L1Config
	L2 L2Config
	// XbarLat/XbarOcc model the L1↔L2 crossbar (300 MHz, 57 GB/s in the
	// paper: ≈2 cycles of occupancy per 128 B line at 1 GHz).
	XbarLat engine.Cycle
	XbarOcc engine.Cycle
	// MemBusOcc models the 16 GB/s memory bus (≈8 cycles per line).
	MemBusOcc engine.Cycle
	DRAMLat   engine.Cycle
	// Trace is the per-System observability sink handed to every cache;
	// nil (the default) disables event emission entirely.
	Trace *obs.Trace
}

// Hierarchy is the assembled memory system shared by all WPUs.
type Hierarchy struct {
	Mem  *Memory
	L1s  []*L1
	L2   *L2
	Xbar *Channel
	Bus  *Channel
	DRAM *DRAM
}

// NewHierarchy builds the memory system with numL1 private caches attached.
func NewHierarchy(q *engine.Queue, numL1 int, cfg HierarchyConfig) *Hierarchy {
	h := &Hierarchy{
		Mem:  NewMemory(),
		Xbar: NewChannel(q, cfg.XbarLat, cfg.XbarOcc),
		Bus:  NewChannel(q, 0, cfg.MemBusOcc),
	}
	h.DRAM = NewDRAM(q, h.Bus, cfg.DRAMLat)
	h.L2 = NewL2(q, cfg.L2, h.DRAM, cfg.Trace)
	for i := 0; i < numL1; i++ {
		h.L1s = append(h.L1s, NewL1(i, q, cfg.L1, h.Xbar, h.L2, cfg.Trace))
	}
	return h
}

// CheckCoherence validates the global MESI invariants; tests and the
// simulator's debug mode call it. It returns a description of the first
// violation found, or "".
//
// Invariants checked (over installed lines, i.e. ignoring in-flight fills):
//   - single writer: at most one L1 holds a line Modified/Exclusive, and
//     then no other L1 holds it at all;
//   - directory precision: an L1 holding a line S appears in the sharer
//     set, and an L1 holding M/E is the registered owner;
//   - inclusion: every line in an L1 is present in the L2;
//   - no stale data: dirty L1 data only exists under Modified — a dirty
//     line in any other state would be dropped without writeback on
//     invalidation or silently diverge from the L2 copy.
func (h *Hierarchy) CheckCoherence() string {
	type holder struct {
		id    int
		state Coherence
	}
	type lineHolders struct {
		lineAddr uint64
		hs       []holder
	}
	// lines is iterated in insertion order (L1 id, then frame order within
	// each L1) so the first violation reported is deterministic; the map is
	// a lookup index only and is never ranged over.
	var lines []lineHolders
	index := make(map[uint64]int)
	for _, c := range h.L1s {
		id := c.ID
		var bad string
		c.store.forEachValid(func(w *way) {
			if w.dirty && w.state != Modified && bad == "" {
				bad = sprintf("stale data: L1 %d holds dirty line %#x in state %v", id, w.lineAddr, w.state)
			}
			li, ok := index[w.lineAddr]
			if !ok {
				li = len(lines)
				index[w.lineAddr] = li
				lines = append(lines, lineHolders{lineAddr: w.lineAddr})
			}
			lines[li].hs = append(lines[li].hs, holder{id, w.state})
		})
		if bad != "" {
			return bad
		}
	}
	for _, lh := range lines {
		lineAddr, hs := lh.lineAddr, lh.hs
		l2w := h.L2.st.lookup(lineAddr)
		if l2w == nil {
			return sprintf("inclusion violated: line %#x in L1 but not L2", lineAddr)
		}
		exclusive := -1
		for _, x := range hs {
			if x.state == Modified || x.state == Exclusive {
				exclusive = x.id
			}
		}
		if exclusive >= 0 {
			if len(hs) > 1 {
				return sprintf("single-writer violated: line %#x held by %d L1s with an M/E copy", lineAddr, len(hs))
			}
			if int(l2w.owner) != exclusive {
				return sprintf("directory owner for %#x is %d, want %d", lineAddr, l2w.owner, exclusive)
			}
			continue
		}
		for _, x := range hs {
			if l2w.sharers&(1<<uint(x.id)) == 0 {
				return sprintf("directory sharers for %#x miss L1 %d", lineAddr, x.id)
			}
		}
	}
	return ""
}

func sprintf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}
