package mem

// Additional protocol and component tests beyond mem_test.go: DRAM
// accounting, probe-penalty timing, victim selection, put/eviction races,
// and channel properties.

import (
	"testing"
	"testing/quick"

	"repro/internal/engine"
)

func TestDRAMWritebackAccounting(t *testing.T) {
	q := &engine.Queue{}
	bus := NewChannel(q, 0, 8)
	d := NewDRAM(q, bus, 100)
	fired := false
	d.Fetch(func() { fired = true })
	d.Writeback()
	q.Drain()
	if !fired {
		t.Fatal("fetch completion lost")
	}
	if d.Accesses != 2 || d.WritebackN != 1 {
		t.Fatalf("accesses=%d writebacks=%d", d.Accesses, d.WritebackN)
	}
}

func TestDRAMFetchLatency(t *testing.T) {
	q := &engine.Queue{}
	bus := NewChannel(q, 0, 8)
	d := NewDRAM(q, bus, 100)
	var at engine.Cycle
	d.Fetch(func() { at = q.Now() })
	q.Drain()
	if at != 100 {
		t.Fatalf("fetch completed at %d, want 100 (bus 0-latency + device 100)", at)
	}
}

func TestProbePenaltyDelaysRequester(t *testing.T) {
	// B reads a line that A holds Modified: the reply must arrive later
	// than a clean L2 hit by at least the probe penalty.
	q, h := newTestHier(t, 2)
	a, b := h.L1s[0], h.L1s[1]

	// Warm a clean line for the baseline timing.
	b.Access(0x50000, false, func() {})
	q.Drain()
	b.invalidateLine(0x50000)
	start := q.Now()
	var cleanAt engine.Cycle
	b.Access(0x50000, false, func() { cleanAt = q.Now() - start })
	q.Drain()

	// A dirties a different line; B's read needs a downgrade probe.
	a.Access(0x60000, true, func() {})
	q.Drain()
	start = q.Now()
	var probedAt engine.Cycle
	b.Access(0x60000, false, func() { probedAt = q.Now() - start })
	q.Drain()

	if probedAt < cleanAt+12 {
		t.Fatalf("probed fill took %d, clean fill %d: probe penalty missing", probedAt, cleanAt)
	}
}

func TestVictimPrefersInvalidFrames(t *testing.T) {
	s := newStore(512, 2, 128) // 4 lines, 2 ways, 2 sets
	w1 := s.victim(0)
	w1.valid = true
	s.setLine(w1, 0)
	s.touch(w1)
	v := s.victim(2 * 128 * 2) // same set (stride = numSets*lineSize = 256)
	if v.valid {
		t.Fatal("victim chose a valid frame while an invalid one existed")
	}
}

func TestVictimLRUAmongValid(t *testing.T) {
	s := newStore(512, 2, 128)
	a := s.victim(0)
	a.valid = true
	s.setLine(a, 0)
	s.touch(a)
	b := s.victim(256)
	b.valid = true
	s.setLine(b, 256)
	s.touch(b)
	s.touch(a) // b is now LRU
	if v := s.victim(512); v != b {
		t.Fatal("LRU victim wrong")
	}
}

func TestStoreRejectsBadGeometry(t *testing.T) {
	for _, fn := range []func(){
		func() { newStore(1024, 4, 100) }, // non-power-of-two line
		func() { newStore(64, 4, 128) },   // smaller than one line
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad geometry accepted")
				}
			}()
			fn()
		}()
	}
}

func TestPutAfterL2EvictionIsIgnored(t *testing.T) {
	// An L1 eviction racing an L2 eviction of the same line must not panic
	// or corrupt state: put on an absent line is a no-op.
	q, h := newTestHier(t, 1)
	h.L2.put(0, 0x123400, true)
	q.Drain()
	if msg := h.CheckCoherence(); msg != "" {
		t.Fatal(msg)
	}
}

func TestCoherenceStateString(t *testing.T) {
	cases := map[Coherence]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M", Coherence(9): "?"}
	for c, want := range cases {
		if c.String() != want {
			t.Fatalf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}

func TestExclusiveGrantOnUnsharedRead(t *testing.T) {
	q, h := newTestHier(t, 2)
	a := h.L1s[0]
	a.Access(0x70000, false, func() {})
	q.Drain()
	// A store must now hit silently: the read was granted Exclusive.
	reqs := h.L2.Stats.Requests
	if hit := a.Access(0x70000, true, func() {}); !hit {
		t.Fatal("store after exclusive read grant missed")
	}
	q.Drain()
	if h.L2.Stats.Requests != reqs {
		t.Fatal("silent upgrade generated traffic")
	}
}

func TestSharedGrantOnContendedRead(t *testing.T) {
	q, h := newTestHier(t, 2)
	h.L1s[0].Access(0x70000, false, func() {})
	q.Drain()
	h.L1s[1].Access(0x70000, false, func() {})
	q.Drain()
	// Now a store from either must go through an upgrade.
	if hit := h.L1s[1].Access(0x70000, true, func() {}); hit {
		t.Fatal("store to a Shared grant hit silently")
	}
	q.Drain()
	if msg := h.CheckCoherence(); msg != "" {
		t.Fatal(msg)
	}
}

func TestBankQueueDrainsOverTime(t *testing.T) {
	q, h := newTestHier(t, 1)
	c := h.L1s[0]
	// Warm two same-bank lines.
	lineA := uint64(0x10000)
	lineB := lineA + 4*128*4
	c.Access(lineA, false, func() {})
	c.Access(lineB, false, func() {})
	q.Drain()
	// Access them in different cycles: no queuing delay.
	base := c.Stats.BankQueuing
	c.Access(lineA, false, func() {})
	q.RunUntil(q.Now() + 2)
	c.Access(lineB, false, func() {})
	q.Drain()
	if c.Stats.BankQueuing != base {
		t.Fatalf("bank queuing charged %d cycles across separated accesses", c.Stats.BankQueuing-base)
	}
}

// Property: the channel preserves FIFO order and never delivers early.
func TestPropertyChannelFIFO(t *testing.T) {
	f := func(lat, occ uint8, n uint8) bool {
		q := &engine.Queue{}
		ch := NewChannel(q, engine.Cycle(lat), engine.Cycle(occ%8))
		count := int(n%20) + 1
		var order []int
		var times []engine.Cycle
		for i := 0; i < count; i++ {
			i := i
			ch.Send(func() {
				order = append(order, i)
				times = append(times, q.Now())
			})
		}
		q.Drain()
		for i := range order {
			if order[i] != i {
				return false
			}
			if times[i] < engine.Cycle(lat) {
				return false
			}
			if i > 0 && times[i] < times[i-1] {
				return false
			}
		}
		return len(order) == count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CheckCoherence holds after any prefix of a random trace, not
// just at quiescence (sampled at random points with the queue drained).
func TestPropertyCoherenceAtCheckpoints(t *testing.T) {
	q, h := newTestHier(t, 3)
	seed := uint64(0x9E3779B97F4A7C15)
	next := func(mod int) int {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return int(seed % uint64(mod))
	}
	for step := 0; step < 300; step++ {
		c := h.L1s[next(3)]
		addr := uint64(0x10000 + next(48)*128)
		c.Access(addr, next(4) == 0, func() {})
		if next(5) == 0 {
			q.Drain()
			if msg := h.CheckCoherence(); msg != "" {
				t.Fatalf("step %d: %s", step, msg)
			}
		}
	}
	q.Drain()
	if msg := h.CheckCoherence(); msg != "" {
		t.Fatal(msg)
	}
}
