package mem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/engine"
)

func testConfig() HierarchyConfig {
	return HierarchyConfig{
		L1: L1Config{
			SizeBytes: 1024, // 8 lines: small, to exercise evictions
			Ways:      2,
			LineSize:  128,
			HitLat:    3,
			Banks:     4,
			MSHRs:     4,
		},
		L2: L2Config{
			SizeBytes: 8192, // 64 lines
			Ways:      4,
			LineSize:  128,
			LookupLat: 30,
			ProbeLat:  12,
			MSHRs:     16,
		},
		XbarLat:   6,
		XbarOcc:   2,
		MemBusOcc: 8,
		DRAMLat:   100,
	}
}

func newTestHier(t *testing.T, numL1 int) (*engine.Queue, *Hierarchy) {
	t.Helper()
	q := &engine.Queue{}
	return q, NewHierarchy(q, numL1, testConfig())
}

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory()
	if m.Read(0x1000) != 0 {
		t.Fatal("fresh memory not zero")
	}
	m.Write(0x1000, 42)
	if m.Read(0x1000) != 42 {
		t.Fatal("read after write failed")
	}
	m.WriteF(0x2000, 3.5)
	if m.ReadF(0x2000) != 3.5 {
		t.Fatal("float read after write failed")
	}
}

func TestMemoryAllocDisjoint(t *testing.T) {
	m := NewMemory()
	a := m.AllocWords(100)
	b := m.AllocWords(50)
	if a%128 != 0 || b%128 != 0 {
		t.Fatal("allocations not line aligned")
	}
	if b < a+100*8 {
		t.Fatalf("allocations overlap: a=%#x b=%#x", a, b)
	}
}

func TestMemoryAllocBadAlignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on non-power-of-two alignment")
		}
	}()
	NewMemory().Alloc(8, 24)
}

// Property: memory behaves as a map from word address to last written value.
func TestPropertyMemoryLastWriteWins(t *testing.T) {
	f := func(ops []struct {
		Addr uint16
		Val  int64
	}) bool {
		m := NewMemory()
		shadow := map[uint64]int64{}
		for _, op := range ops {
			addr := uint64(op.Addr) * 8
			m.Write(addr, op.Val)
			shadow[addr] = op.Val
		}
		for a, v := range shadow {
			if m.Read(a) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChannelLatencyAndOccupancy(t *testing.T) {
	q := &engine.Queue{}
	ch := NewChannel(q, 6, 2)
	var times []engine.Cycle
	for i := 0; i < 3; i++ {
		ch.Send(func() { times = append(times, q.Now()) })
	}
	q.Drain()
	// First departs at 0 (+6 latency); occupancy staggers starts by 2.
	want := []engine.Cycle{6, 8, 10}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("delivery times %v, want %v", times, want)
		}
	}
	if ch.Transfers() != 3 {
		t.Fatalf("transfers = %d, want 3", ch.Transfers())
	}
}

func TestL1HitTiming(t *testing.T) {
	q, h := newTestHier(t, 1)
	c := h.L1s[0]

	var fillAt, hitAt engine.Cycle
	hit := c.Access(0x10000, false, func() { fillAt = q.Now() })
	if hit {
		t.Fatal("cold access reported hit")
	}
	q.Drain()
	// Miss latency: xbar(6) + L2 lookup(30) + dram bus+lat(100) — L2 miss —
	// + return xbar(6). Just check it is much larger than a hit and that
	// a subsequent access hits with the 3-cycle latency.
	if fillAt < 100 {
		t.Fatalf("miss completed implausibly fast at %d", fillAt)
	}
	start := q.Now()
	hit = c.Access(0x10000, false, func() { hitAt = q.Now() })
	if !hit {
		t.Fatal("second access missed")
	}
	q.Drain()
	if hitAt != start+3 {
		t.Fatalf("hit latency = %d, want 3", hitAt-start)
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestL1Coalescing(t *testing.T) {
	q, h := newTestHier(t, 1)
	c := h.L1s[0]
	done := 0
	c.Access(0x10000, false, func() { done++ })
	// Same line, different word: must coalesce, not allocate a new MSHR.
	c.Access(0x10008, false, func() { done++ })
	c.Access(0x10040, false, func() { done++ })
	if c.Stats.Misses != 1 || c.Stats.Merges != 2 {
		t.Fatalf("misses=%d merges=%d, want 1/2", c.Stats.Misses, c.Stats.Merges)
	}
	q.Drain()
	if done != 3 {
		t.Fatalf("done = %d, want 3", done)
	}
	if h.DRAM.Accesses != 1 {
		t.Fatalf("dram accesses = %d, want 1", h.DRAM.Accesses)
	}
}

func TestWriteHitOnExclusivePromotesSilently(t *testing.T) {
	q, h := newTestHier(t, 1)
	c := h.L1s[0]
	c.Access(0x10000, false, func() {})
	q.Drain()
	reqs := h.L2.Stats.Requests
	if hit := c.Access(0x10000, true, func() {}); !hit {
		t.Fatal("store to Exclusive line should hit")
	}
	q.Drain()
	if h.L2.Stats.Requests != reqs {
		t.Fatal("silent E->M promotion generated L2 traffic")
	}
	if msg := h.CheckCoherence(); msg != "" {
		t.Fatal(msg)
	}
}

func TestUpgradeOnSharedLine(t *testing.T) {
	q, h := newTestHier(t, 2)
	a, b := h.L1s[0], h.L1s[1]
	a.Access(0x10000, false, func() {})
	q.Drain()
	b.Access(0x10000, false, func() {})
	q.Drain()
	// Both now share the line; a store from A must upgrade and invalidate B.
	if hit := a.Access(0x10000, true, func() {}); hit {
		t.Fatal("store to Shared line must not be a plain hit")
	}
	q.Drain()
	if a.Stats.Upgrades == 0 {
		t.Fatal("no upgrade recorded")
	}
	if b.Stats.Invalidates != 1 {
		t.Fatalf("B invalidates = %d, want 1", b.Stats.Invalidates)
	}
	if msg := h.CheckCoherence(); msg != "" {
		t.Fatal(msg)
	}
}

func TestReadAfterRemoteModify(t *testing.T) {
	q, h := newTestHier(t, 2)
	a, b := h.L1s[0], h.L1s[1]
	a.Access(0x10000, true, func() {})
	q.Drain()
	// B reads: directory must downgrade A's Modified copy.
	b.Access(0x10000, false, func() {})
	q.Drain()
	if a.Stats.Downgrades != 1 {
		t.Fatalf("A downgrades = %d, want 1", a.Stats.Downgrades)
	}
	if h.L2.Stats.ProbeDowngr != 1 {
		t.Fatalf("probe downgrades = %d, want 1", h.L2.Stats.ProbeDowngr)
	}
	if msg := h.CheckCoherence(); msg != "" {
		t.Fatal(msg)
	}
}

func TestWriteAfterRemoteModify(t *testing.T) {
	q, h := newTestHier(t, 2)
	a, b := h.L1s[0], h.L1s[1]
	a.Access(0x10000, true, func() {})
	q.Drain()
	b.Access(0x10000, true, func() {})
	q.Drain()
	if a.Stats.Invalidates != 1 {
		t.Fatalf("A invalidates = %d, want 1", a.Stats.Invalidates)
	}
	if msg := h.CheckCoherence(); msg != "" {
		t.Fatal(msg)
	}
}

func TestEvictionWritesBackDirtyLine(t *testing.T) {
	q, h := newTestHier(t, 1)
	c := h.L1s[0]
	// 2-way 8-line cache, 4 sets; three lines mapping to the same set force
	// an eviction. Set stride = numSets*lineSize = 4*128.
	c.Access(0x10000, true, func() {})
	q.Drain()
	c.Access(0x10000+4*128, false, func() {})
	q.Drain()
	c.Access(0x10000+8*128, false, func() {})
	q.Drain()
	if c.Stats.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Stats.Evictions)
	}
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
	// The dirty data merged into L2: a re-read must not go to DRAM again.
	dram := h.DRAM.Accesses
	c.Access(0x10000, false, func() {})
	q.Drain()
	if h.DRAM.Accesses != dram {
		t.Fatal("re-read of written-back line went to DRAM")
	}
	if msg := h.CheckCoherence(); msg != "" {
		t.Fatal(msg)
	}
}

func TestLRUReplacement(t *testing.T) {
	q, h := newTestHier(t, 1)
	c := h.L1s[0]
	setStride := uint64(4 * 128)
	lineA := uint64(0x10000)
	lineB := lineA + setStride
	lineC := lineA + 2*setStride
	c.Access(lineA, false, func() {})
	q.Drain()
	c.Access(lineB, false, func() {})
	q.Drain()
	// Touch A so B is LRU.
	c.Access(lineA, false, func() {})
	q.Drain()
	c.Access(lineC, false, func() {})
	q.Drain()
	// A should still hit; B should have been evicted.
	if hit := c.Access(lineA, false, func() {}); !hit {
		t.Fatal("LRU evicted the recently used line")
	}
	q.Drain()
	if hit := c.Access(lineB, false, func() {}); hit {
		t.Fatal("LRU kept the least recently used line")
	}
	q.Drain()
}

func TestMSHRLimitStallsAndDrains(t *testing.T) {
	q, h := newTestHier(t, 1)
	c := h.L1s[0]
	done := 0
	// 4 MSHRs; issue 6 distinct-line misses.
	for i := 0; i < 6; i++ {
		c.Access(uint64(0x20000+i*128), false, func() { done++ })
	}
	if c.Stats.MSHRStalls != 2 {
		t.Fatalf("MSHR stalls = %d, want 2", c.Stats.MSHRStalls)
	}
	q.Drain()
	if done != 6 {
		t.Fatalf("done = %d, want 6 (stalled requests lost)", done)
	}
}

func TestBankConflictQueuing(t *testing.T) {
	q, h := newTestHier(t, 1)
	c := h.L1s[0]
	// Warm two lines in the same bank (banks=4, so stride 4 lines), then
	// hit both in the same cycle.
	lineA := uint64(0x10000)
	lineB := lineA + 4*128*4 // same bank, different set
	c.Access(lineA, false, func() {})
	q.Drain()
	c.Access(lineB, false, func() {})
	q.Drain()
	var t1, t2 engine.Cycle
	start := q.Now()
	c.Access(lineA, false, func() { t1 = q.Now() })
	c.Access(lineB, false, func() { t2 = q.Now() })
	q.Drain()
	if t1 != start+3 {
		t.Fatalf("first hit at +%d, want +3", t1-start)
	}
	if t2 != start+4 {
		t.Fatalf("conflicting hit at +%d, want +4 (1-cycle bank queue)", t2-start)
	}
	if c.Stats.BankQueuing == 0 {
		t.Fatal("bank queuing cycles not recorded")
	}
}

func TestDifferentBanksNoConflict(t *testing.T) {
	q, h := newTestHier(t, 1)
	c := h.L1s[0]
	lineA := uint64(0x10000)
	lineB := lineA + 128 // adjacent line, different bank
	c.Access(lineA, false, func() {})
	c.Access(lineB, false, func() {})
	q.Drain()
	var t1, t2 engine.Cycle
	start := q.Now()
	c.Access(lineA, false, func() { t1 = q.Now() })
	c.Access(lineB, false, func() { t2 = q.Now() })
	q.Drain()
	if t1 != start+3 || t2 != start+3 {
		t.Fatalf("parallel bank hits at +%d/+%d, want +3/+3", t1-start, t2-start)
	}
}

func TestL2InclusiveEviction(t *testing.T) {
	q := &engine.Queue{}
	cfg := testConfig()
	cfg.L2.SizeBytes = 1024 // 8 lines, 4-way: 2 sets
	h := NewHierarchy(q, 1, cfg)
	c := h.L1s[0]
	// Fill one L2 set (4 ways, set stride = 2*128) plus one more to evict.
	base := uint64(0x40000)
	for i := 0; i < 5; i++ {
		c.Access(base+uint64(i)*2*128, false, func() {})
		q.Drain()
	}
	if h.L2.Stats.Evictions == 0 {
		t.Fatal("L2 never evicted")
	}
	if h.L2.Stats.InclInvals == 0 {
		t.Fatal("inclusive eviction did not invalidate the L1 copy")
	}
	if msg := h.CheckCoherence(); msg != "" {
		t.Fatal(msg)
	}
}

func TestFullyAssociativeCache(t *testing.T) {
	q := &engine.Queue{}
	cfg := testConfig()
	cfg.L1.Ways = 0 // fully associative: 8 lines
	h := NewHierarchy(q, 1, cfg)
	c := h.L1s[0]
	// 8 lines that would all map to one set in a set-assoc cache all fit.
	for i := 0; i < 8; i++ {
		c.Access(uint64(0x10000+i*4*128), false, func() {})
		q.Drain()
	}
	if c.Stats.Evictions != 0 {
		t.Fatalf("fully associative cache evicted with %d/8 lines", c.Stats.Evictions)
	}
	for i := 0; i < 8; i++ {
		if hit := c.Access(uint64(0x10000+i*4*128), false, func() {}); !hit {
			t.Fatalf("line %d missing from fully associative cache", i)
		}
		q.Drain()
	}
}

func TestSecondaryMissDuringFillWindow(t *testing.T) {
	q, h := newTestHier(t, 1)
	c := h.L1s[0]
	got := []int{}
	c.Access(0x10000, false, func() { got = append(got, 1) })
	// Advance partway into the miss, then access the same line again: must
	// merge, not hit, because the fill has not completed.
	q.RunUntil(q.Now() + 10)
	if hit := c.Access(0x10000, false, func() { got = append(got, 2) }); hit {
		t.Fatal("access during fill window reported hit")
	}
	q.Drain()
	if len(got) != 2 {
		t.Fatalf("callbacks = %v, want both", got)
	}
	if c.Stats.Merges != 1 {
		t.Fatalf("merges = %d, want 1", c.Stats.Merges)
	}
}

func TestStoreMergeIntoReadMissGainsExclusivity(t *testing.T) {
	q, h := newTestHier(t, 2)
	a, b := h.L1s[0], h.L1s[1]
	// Make the line Shared at the directory first so the read grant is S.
	b.Access(0x10000, false, func() {})
	q.Drain()
	readDone, writeDone := false, false
	a.Access(0x10000, false, func() { readDone = true })
	a.Access(0x10008, true, func() { writeDone = true }) // same line, store
	q.Drain()
	if !readDone || !writeDone {
		t.Fatalf("read=%v write=%v, want both done", readDone, writeDone)
	}
	if msg := h.CheckCoherence(); msg != "" {
		t.Fatal(msg)
	}
	// A must now have exclusivity: a further store hits silently.
	if hit := a.Access(0x10000, true, func() {}); !hit {
		t.Fatal("upgrade did not leave the line writable")
	}
	q.Drain()
}

func TestL2MergesCrossL1Misses(t *testing.T) {
	q, h := newTestHier(t, 2)
	done := 0
	h.L1s[0].Access(0x30000, false, func() { done++ })
	h.L1s[1].Access(0x30000, false, func() { done++ })
	q.Drain()
	if done != 2 {
		t.Fatalf("done = %d, want 2", done)
	}
	if h.DRAM.Accesses != 1 {
		t.Fatalf("dram accesses = %d, want 1 (L2 MSHR should merge)", h.DRAM.Accesses)
	}
	if h.L2.Stats.Merges != 1 {
		t.Fatalf("L2 merges = %d, want 1", h.L2.Stats.Merges)
	}
	if msg := h.CheckCoherence(); msg != "" {
		t.Fatal(msg)
	}
}

func TestMissRateStat(t *testing.T) {
	s := L1Stats{Accesses: 10, Misses: 2, Merges: 1}
	if got := s.MissRate(); got != 0.3 {
		t.Fatalf("MissRate = %g, want 0.3", got)
	}
	var zero L1Stats
	if zero.MissRate() != 0 {
		t.Fatal("MissRate on zero stats should be 0")
	}
}

// Property: after any deterministic random access pattern from multiple L1s
// drains, the MESI invariants hold and every callback fired.
func TestPropertyCoherenceInvariants(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q, h := newTestHier(t, 4)
		issued, completed := 0, 0
		for step := 0; step < 400; step++ {
			c := h.L1s[rng.Intn(4)]
			addr := uint64(0x10000 + rng.Intn(64)*128)
			write := rng.Intn(3) == 0
			issued++
			c.Access(addr, write, func() { completed++ })
			if rng.Intn(4) == 0 {
				q.RunUntil(q.Now() + engine.Cycle(rng.Intn(40)))
			}
		}
		q.Drain()
		if issued != completed {
			t.Fatalf("seed %d: %d issued, %d completed", seed, issued, completed)
		}
		if msg := h.CheckCoherence(); msg != "" {
			t.Fatalf("seed %d: %s", seed, msg)
		}
	}
}

// Property: the same access trace always produces the same final cycle
// count (determinism underpins every experiment).
func TestPropertyDeterminism(t *testing.T) {
	run := func() engine.Cycle {
		rng := rand.New(rand.NewSource(7))
		q, h := newTestHier(t, 2)
		for step := 0; step < 200; step++ {
			c := h.L1s[rng.Intn(2)]
			addr := uint64(0x10000 + rng.Intn(32)*128)
			c.Access(addr, rng.Intn(4) == 0, func() {})
			q.RunUntil(q.Now() + engine.Cycle(rng.Intn(10)))
		}
		q.Drain()
		return q.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %d vs %d", a, b)
	}
}
