// Package mem implements the simulator's memory substrate: a flat
// functional memory for architectural values, banked set-associative
// write-back L1 caches with MSHRs and request coalescing, an inclusive
// shared L2 with a directory-based MESI coherence protocol, a contended
// crossbar, and a DRAM model.
//
// The design is functional-first, timing-directed (the M5 atomic/timing
// split the paper's MV5 simulator inherits): loads and stores read and
// write Memory at issue so program values are deterministic, while the
// cache hierarchy independently charges faithful latencies and maintains
// coherence state used to decide hits, misses, and divergence.
package mem

import (
	"math"
	"sort"
)

const pageWords = 1 << 12 // 4096 words = 32 KB pages

// Memory is the flat functional memory image. It is word (8-byte)
// addressable through byte addresses; unaligned accesses are rounded down
// to the containing word, which the program layer never produces.
//
// Memory also provides a bump allocator so workloads can lay out arrays at
// distinct, cache-realistic addresses.
type Memory struct {
	pages map[uint64]*[pageWords]int64
	brk   uint64 // next free byte for Alloc
}

// NewMemory returns an empty memory image. Allocation starts at a non-zero
// base so address 0 stays an obvious poison value.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageWords]int64), brk: 1 << 20}
}

func (m *Memory) page(wordIdx uint64) *[pageWords]int64 {
	pn := wordIdx / pageWords
	p := m.pages[pn]
	if p == nil {
		p = new([pageWords]int64)
		m.pages[pn] = p
	}
	return p
}

// Read returns the word at byte address addr.
func (m *Memory) Read(addr uint64) int64 {
	w := addr / 8
	pn := w / pageWords
	if p := m.pages[pn]; p != nil {
		return p[w%pageWords]
	}
	return 0
}

// Write stores v at byte address addr.
func (m *Memory) Write(addr uint64, v int64) {
	w := addr / 8
	m.page(w)[w%pageWords] = v
}

// ReadF returns the word at addr interpreted as float64.
func (m *Memory) ReadF(addr uint64) float64 { return math.Float64frombits(uint64(m.Read(addr))) }

// WriteF stores a float64 at addr.
func (m *Memory) WriteF(addr uint64, v float64) { m.Write(addr, int64(math.Float64bits(v))) }

// Alloc reserves n bytes aligned to align (which must be a power of two and
// at least 8) and returns the base address. Allocations never overlap.
func (m *Memory) Alloc(n uint64, align uint64) uint64 {
	if align < 8 {
		align = 8
	}
	if align&(align-1) != 0 {
		panic("mem: Alloc alignment must be a power of two")
	}
	base := (m.brk + align - 1) &^ (align - 1)
	m.brk = base + n
	return base
}

// AllocWords reserves n 8-byte words aligned to a cache line and returns
// the base address.
func (m *Memory) AllocWords(n int) uint64 {
	return m.Alloc(uint64(n)*8, 128)
}

// Hash returns a deterministic FNV-1a digest of the memory image. Pages are
// folded in ascending page-number order, and all-zero pages are skipped so
// the digest depends only on the architecturally visible contents (a page
// instantiated by writing zeroes hashes like an untouched one). The
// policy-equivalence tests compare digests across scheduling policies.
func (m *Memory) Hash() uint64 {
	pns := make([]uint64, 0, len(m.pages))
	for pn := range m.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })

	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	word := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for _, pn := range pns {
		p := m.pages[pn]
		zero := true
		for _, v := range p {
			if v != 0 {
				zero = false
				break
			}
		}
		if zero {
			continue
		}
		word(pn)
		for _, v := range p {
			word(uint64(v))
		}
	}
	return h
}
