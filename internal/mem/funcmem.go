// Package mem implements the simulator's memory substrate: a flat
// functional memory for architectural values, banked set-associative
// write-back L1 caches with MSHRs and request coalescing, an inclusive
// shared L2 with a directory-based MESI coherence protocol, a contended
// crossbar, and a DRAM model.
//
// The design is functional-first, timing-directed (the M5 atomic/timing
// split the paper's MV5 simulator inherits): loads and stores read and
// write Memory at issue so program values are deterministic, while the
// cache hierarchy independently charges faithful latencies and maintains
// coherence state used to decide hits, misses, and divergence.
package mem

import (
	"math"
	"sort"
)

const pageWords = 1 << 12 // 4096 words = 32 KB pages

// noPage is the lastPN sentinel: no page can have this number (it would
// require a word index past 2^64).
const noPage = ^uint64(0)

// Memory is the flat functional memory image. It is word (8-byte)
// addressable through byte addresses; unaligned accesses are rounded down
// to the containing word, which the program layer never produces.
//
// Memory also provides a bump allocator so workloads can lay out arrays at
// distinct, cache-realistic addresses.
//
// The page lookup is tiered for the issue-loop fast path: a one-entry
// last-page cache catches the streaming case (SIMD groups touch runs of
// consecutive addresses), a flat directory indexed by page number covers
// the bump-allocated range, and a map holds only out-of-range stragglers
// (addresses below the allocator base or past brk).
type Memory struct {
	// lastPN/lastPage: the most recently touched allocated page.
	lastPN   uint64
	lastPage *[pageWords]int64
	// dir[pn-dirBase] covers page numbers [dirBase, dirBase+len(dir)).
	dir     []*[pageWords]int64
	dirBase uint64
	// overflow holds pages outside the directory range.
	overflow map[uint64]*[pageWords]int64
	brk      uint64 // next free byte for Alloc
}

// NewMemory returns an empty memory image. Allocation starts at a non-zero
// base so address 0 stays an obvious poison value.
func NewMemory() *Memory {
	m := &Memory{
		lastPN:   noPage,
		overflow: make(map[uint64]*[pageWords]int64),
		brk:      1 << 20,
	}
	m.growDir()
	return m
}

// growDir (re)sizes the flat directory to cover every page the bump
// allocator has handed out, migrating overflow pages that fall inside the
// new range. Called from Alloc, never from the Read/Write fast path.
func (m *Memory) growDir() {
	base := (uint64(1) << 20) / 8 / pageWords
	end := m.brk/8/pageWords + 1
	if base >= end {
		end = base + 1
	}
	need := end - base
	if m.dir != nil && m.dirBase == base && uint64(len(m.dir)) >= need {
		return
	}
	// Grow geometrically so repeated small Allocs don't re-copy the
	// directory each time.
	if have := uint64(len(m.dir)) * 2; need < have {
		need = have
	}
	nd := make([]*[pageWords]int64, need)
	copy(nd, m.dir)
	m.dir = nd
	m.dirBase = base
	// Migrate any overflow pages now covered by the directory. Map order
	// does not matter (each page lands in its own slot) but dwslint's
	// maprange check wants the sorted-keys idiom, which costs nothing here.
	if len(m.overflow) > 0 {
		pns := make([]uint64, 0, len(m.overflow))
		for pn := range m.overflow {
			pns = append(pns, pn)
		}
		sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
		for _, pn := range pns {
			if pn >= m.dirBase && pn-m.dirBase < uint64(len(m.dir)) {
				m.dir[pn-m.dirBase] = m.overflow[pn]
				delete(m.overflow, pn)
			}
		}
	}
}

// lookup returns the page for wordIdx, or nil if it was never written.
func (m *Memory) lookup(pn uint64) *[pageWords]int64 {
	if i := pn - m.dirBase; i < uint64(len(m.dir)) {
		return m.dir[i]
	}
	return m.overflow[pn]
}

// page returns the page for wordIdx, instantiating it if needed.
func (m *Memory) page(wordIdx uint64) *[pageWords]int64 {
	pn := wordIdx / pageWords
	if pn == m.lastPN {
		return m.lastPage
	}
	p := m.lookup(pn)
	if p == nil {
		p = new([pageWords]int64)
		if i := pn - m.dirBase; i < uint64(len(m.dir)) {
			m.dir[i] = p
		} else {
			m.overflow[pn] = p
		}
	}
	m.lastPN, m.lastPage = pn, p
	return p
}

// Read returns the word at byte address addr.
func (m *Memory) Read(addr uint64) int64 {
	w := addr / 8
	pn := w / pageWords
	if pn == m.lastPN {
		return m.lastPage[w%pageWords]
	}
	if p := m.lookup(pn); p != nil {
		m.lastPN, m.lastPage = pn, p
		return p[w%pageWords]
	}
	return 0
}

// Write stores v at byte address addr.
func (m *Memory) Write(addr uint64, v int64) {
	w := addr / 8
	m.page(w)[w%pageWords] = v
}

// ReadF returns the word at addr interpreted as float64.
func (m *Memory) ReadF(addr uint64) float64 { return math.Float64frombits(uint64(m.Read(addr))) }

// WriteF stores a float64 at addr.
func (m *Memory) WriteF(addr uint64, v float64) { m.Write(addr, int64(math.Float64bits(v))) }

// Alloc reserves n bytes aligned to align (which must be a power of two and
// at least 8) and returns the base address. Allocations never overlap.
func (m *Memory) Alloc(n uint64, align uint64) uint64 {
	if align < 8 {
		align = 8
	}
	if align&(align-1) != 0 {
		panic("mem: Alloc alignment must be a power of two")
	}
	base := (m.brk + align - 1) &^ (align - 1)
	m.brk = base + n
	m.growDir()
	return base
}

// AllocWords reserves n 8-byte words aligned to a cache line and returns
// the base address.
func (m *Memory) AllocWords(n int) uint64 {
	return m.Alloc(uint64(n)*8, 128)
}

// Hash returns a deterministic FNV-1a digest of the memory image. Pages are
// folded in ascending page-number order, and all-zero pages are skipped so
// the digest depends only on the architecturally visible contents (a page
// instantiated by writing zeroes hashes like an untouched one). The
// policy-equivalence tests compare digests across scheduling policies.
func (m *Memory) Hash() uint64 {
	pns := make([]uint64, 0, len(m.overflow))
	for pn := range m.overflow {
		pns = append(pns, pn)
	}
	for i, p := range m.dir {
		if p != nil {
			pns = append(pns, m.dirBase+uint64(i))
		}
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })

	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	word := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for _, pn := range pns {
		p := m.lookup(pn)
		zero := true
		for _, v := range p {
			if v != 0 {
				zero = false
				break
			}
		}
		if zero {
			continue
		}
		word(pn)
		for _, v := range p {
			word(uint64(v))
		}
	}
	return h
}
