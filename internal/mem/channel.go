package mem

import "repro/internal/engine"

// Channel models a shared transfer resource (the L1↔L2 crossbar, the memory
// bus) with a fixed per-message latency and a serial occupancy per message.
// Messages queue FIFO when the channel is busy, so burst traffic sees
// realistic queuing delay on top of the base latency.
type Channel struct {
	q *engine.Queue
	// Latency is the pipelined transfer latency charged to every message.
	Latency engine.Cycle
	// Occupancy is how long each message holds the channel; it bounds
	// throughput to one message per Occupancy cycles.
	Occupancy engine.Cycle

	busyUntil engine.Cycle
	transfers uint64
}

// NewChannel returns a channel bound to the event queue.
func NewChannel(q *engine.Queue, latency, occupancy engine.Cycle) *Channel {
	if occupancy == 0 {
		occupancy = 1
	}
	return &Channel{q: q, Latency: latency, Occupancy: occupancy}
}

// depart reserves the channel for one message and returns its arrival time
// (queuing delay plus latency).
func (c *Channel) depart() engine.Cycle {
	start := c.q.Now()
	if c.busyUntil > start {
		start = c.busyUntil
	}
	c.busyUntil = start + c.Occupancy
	c.transfers++
	return start + c.Latency
}

// Send delivers fn after the channel's queuing delay plus latency.
func (c *Channel) Send(fn func()) {
	c.q.At(c.depart(), fn)
}

// SendEvent delivers h.HandleEvent(arg) after the channel's queuing delay
// plus latency — the allocation-free path for pre-bound handlers.
func (c *Channel) SendEvent(h engine.Handler, arg uint64) {
	c.q.ScheduleAt(c.depart(), h, arg)
}

// Transfers reports how many messages have crossed the channel.
func (c *Channel) Transfers() uint64 { return c.transfers }
