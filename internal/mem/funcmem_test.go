package mem

import (
	"math/rand"
	"testing"
)

// TestMemoryTieredLookup drives all three page-lookup tiers — last-page
// cache, flat directory, overflow map — against a reference map, including
// addresses below the allocator base and far past brk.
func TestMemoryTieredLookup(t *testing.T) {
	m := NewMemory()
	ref := map[uint64]int64{}
	rng := rand.New(rand.NewSource(3))
	base := m.AllocWords(4 * pageWords) // grows the directory
	regions := []uint64{
		base,               // directory tier
		1 << 10,            // below the 1 MB allocator base: overflow tier
		1 << 40,            // far past brk: overflow tier
		base + 8*pageWords, // directory pages allocated later
	}
	m.AllocWords(8 * pageWords)
	for step := 0; step < 20000; step++ {
		r := regions[rng.Intn(len(regions))]
		addr := r + uint64(rng.Intn(2*pageWords))*8
		if rng.Intn(2) == 0 {
			v := rng.Int63()
			m.Write(addr, v)
			ref[addr] = v
		} else if got, want := m.Read(addr), ref[addr]; got != want {
			t.Fatalf("step %d: Read(%#x) = %d, want %d", step, addr, got, want)
		}
	}
	for addr, want := range ref {
		if got := m.Read(addr); got != want {
			t.Fatalf("final Read(%#x) = %d, want %d", addr, got, want)
		}
	}
}

// TestMemoryHashTierIndependent: the digest must depend only on the
// architectural contents, not on which tier a page landed in or the write
// order that instantiated it.
func TestMemoryHashTierIndependent(t *testing.T) {
	writeAll := func(addrs [][2]uint64, alloc bool) uint64 {
		m := NewMemory()
		if alloc {
			// With an allocation first, in-range pages land in the flat
			// directory; without it they start in the overflow map.
			m.AllocWords(16 * pageWords)
		}
		for _, av := range addrs {
			m.Write(av[0], int64(av[1]))
		}
		return m.Hash()
	}
	addrs := [][2]uint64{
		{1 << 20, 11}, {1<<20 + 8*pageWords*8, 22}, {1 << 30, 33}, {512, 44},
	}
	h1 := writeAll(addrs, true)
	h2 := writeAll(addrs, false)
	rev := make([][2]uint64, len(addrs))
	for i := range addrs {
		rev[len(addrs)-1-i] = addrs[i]
	}
	h3 := writeAll(rev, true)
	if h1 != h2 || h1 != h3 {
		t.Fatalf("hash depends on tier or write order: %#x %#x %#x", h1, h2, h3)
	}
	// A page written with only zeroes hashes like an untouched one.
	m := NewMemory()
	m.AllocWords(16 * pageWords)
	want := m.Hash()
	m.Write(1<<20, 0)
	m.Write(1<<30, 0)
	if got := m.Hash(); got != want {
		t.Fatalf("zero-filled pages changed the hash: %#x vs %#x", got, want)
	}
}

// TestMemoryDirGrowthPreservesData: growing the directory (repeated Allocs)
// must migrate overflow pages without losing or duplicating words.
func TestMemoryDirGrowthPreservesData(t *testing.T) {
	m := NewMemory()
	// Write past brk so the page starts in the overflow map...
	addr := uint64(1<<20) + 64*pageWords*8
	m.Write(addr, 99)
	// ...then allocate past it so the directory swallows that range.
	m.AllocWords(128 * pageWords)
	if got := m.Read(addr); got != 99 {
		t.Fatalf("Read after directory growth = %d, want 99", got)
	}
	if len(m.overflow) != 0 {
		t.Fatalf("page not migrated out of overflow (len %d)", len(m.overflow))
	}
	m.Write(addr+8, 100)
	if m.Read(addr) != 99 || m.Read(addr+8) != 100 {
		t.Fatalf("neighbouring words corrupt after migration")
	}
}
