package mem

import (
	"repro/internal/engine"
	"repro/internal/obs"
)

// L2Config sizes the shared last-level cache.
type L2Config struct {
	SizeBytes int
	Ways      int // 0 = fully associative
	LineSize  uint64
	// LookupLat is the tag+data lookup latency (the paper sweeps this from
	// 10 to 300 cycles in Figure 16).
	LookupLat engine.Cycle
	// ProbeLat is the extra round-trip charged when the directory must
	// invalidate or downgrade a remote L1 copy before answering.
	ProbeLat engine.Cycle
	MSHRs    int
}

// L2Stats counts events observed by the shared L2 and its directory.
type L2Stats struct {
	Requests    uint64
	Hits        uint64
	Misses      uint64
	Merges      uint64 // requests coalesced into an in-flight fetch
	ProbeInvals uint64 // directory-initiated L1 invalidations
	ProbeDowngr uint64 // directory-initiated L1 downgrades
	Evictions   uint64
	Writebacks  uint64 // dirty evictions to memory
	InclInvals  uint64 // inclusive-eviction invalidations of L1 copies
	MSHRPeak    uint64 // high-water mark of simultaneously busy MSHRs
	// MSHRFull counts misses that queued behind an unrelated in-flight
	// fetch because every MSHR was busy (the L2 is un-banked, so this is
	// its only structural-conflict source; bank conflicts are an L1Stats
	// counter).
	MSHRFull uint64
}

// l2Req is one L1 request queued at the directory. The grant is delivered
// synchronously into the requesting L1 via grantReply — L1 coherence state
// must install atomically with the directory decision or later grants could
// race it — together with the probe penalty the requester must add to its
// completion time.
type l2Req struct {
	from     int
	lineAddr uint64
	write    bool
}

type l2MSHR struct {
	lineAddr uint64
	born     engine.Cycle // allocation time, for the residency histogram
	reqs     []l2Req
}

// L2 is the inclusive shared last-level cache with a full-map directory
// implementing MESI over the private L1s. Directory state lives in the line
// frames (sharers bitmask + owner).
type L2 struct {
	q    *engine.Queue
	st   *store
	cfg  L2Config
	dram *DRAM
	l1s  []*L1

	mshrs    mshrTable[*l2MSHR]
	mshrPool []*l2MSHR // free list; retired MSHRs keep their reqs capacity

	// lookups is the tag-pipeline FIFO: LookupLat is constant, so requests
	// finish the lookup in issue order and the pre-bound lookupHop handler
	// just pops the front — no per-request closure.
	lookups    []l2Req
	lookupHead int
	lookupHop  l2LookupHop
	fillHop    l2FillHop

	trace *obs.Trace // per-System observability sink (nil = disabled)

	Stats L2Stats
}

type l2LookupHop struct{ l *L2 }
type l2FillHop struct{ l *L2 }

func (hp *l2LookupHop) HandleEvent(uint64) {
	l := hp.l
	r := l.lookups[l.lookupHead]
	l.lookups[l.lookupHead] = l2Req{}
	l.lookupHead++
	if l.lookupHead == len(l.lookups) {
		l.lookups = l.lookups[:0]
		l.lookupHead = 0
	}
	if w := l.st.lookup(r.lineAddr); w != nil {
		l.Stats.Hits++
		l.grant(w, r)
		return
	}
	l.missPath(r.lineAddr, r)
}

func (hp *l2FillHop) HandleEvent(lineAddr uint64) {
	m, _ := hp.l.mshrs.get(lineAddr)
	hp.l.fill(m)
}

// NewL2 builds the shared cache in front of dram. trace is the per-System
// observability sink; nil disables event emission.
func NewL2(q *engine.Queue, cfg L2Config, dram *DRAM, trace *obs.Trace) *L2 {
	if cfg.MSHRs <= 0 {
		cfg.MSHRs = 1
	}
	l := &L2{
		q:     q,
		st:    newStore(cfg.SizeBytes, cfg.Ways, cfg.LineSize),
		cfg:   cfg,
		dram:  dram,
		mshrs: newMSHRTable[*l2MSHR](cfg.MSHRs),
		trace: trace,
	}
	l.lookupHop = l2LookupHop{l}
	l.fillHop = l2FillHop{l}
	return l
}

func (l *L2) attach(c *L1) {
	if c.ID != len(l.l1s) {
		panic("mem: L1 IDs must be attached in order")
	}
	l.l1s = append(l.l1s, c)
}

// Request is called (already delayed by the crossbar) when an L1 misses.
// The requester's grantReply is invoked with the granted MESI state once the
// directory can satisfy the request; the requester adds the return crossbar
// hop.
func (l *L2) Request(from int, lineAddr uint64, write bool) {
	l.Stats.Requests++
	l.lookups = append(l.lookups, l2Req{from: from, lineAddr: lineAddr, write: write})
	l.q.ScheduleAfter(l.cfg.LookupLat, &l.lookupHop, 0)
}

// grant runs the directory protocol for one request against a present line
// and schedules the reply (plus probe latency when remote copies had to be
// revoked).
func (l *L2) grant(w *way, r l2Req) {
	var penalty engine.Cycle
	me := uint64(1) << uint(r.from)

	if r.write {
		if w.owner >= 0 && int(w.owner) != r.from {
			if l.l1s[w.owner].invalidateLine(w.lineAddr) {
				w.dirty = true
			}
			l.Stats.ProbeInvals++
			penalty = l.cfg.ProbeLat
		}
		if rem := w.sharers &^ me; rem != 0 {
			for id := 0; id < len(l.l1s); id++ {
				if rem&(1<<uint(id)) != 0 {
					l.l1s[id].invalidateLine(w.lineAddr)
					l.Stats.ProbeInvals++
				}
			}
			penalty = l.cfg.ProbeLat
		}
		w.sharers = 0
		w.owner = int8(r.from)
		l.finish(w, r, Modified, penalty)
		return
	}

	// Read request.
	switch {
	case w.owner >= 0 && int(w.owner) != r.from:
		if l.l1s[w.owner].downgradeLine(w.lineAddr) {
			w.dirty = true
		}
		l.Stats.ProbeDowngr++
		penalty = l.cfg.ProbeLat
		w.sharers |= (1 << uint(w.owner)) | me
		w.owner = -1
		l.finish(w, r, Shared, penalty)
	case w.owner == int8(r.from):
		// Requester already owns it (e.g. it evicted silently in a race);
		// re-grant exclusivity.
		l.finish(w, r, Exclusive, 0)
	case w.sharers == 0:
		w.owner = int8(r.from)
		l.finish(w, r, Exclusive, 0)
	default:
		w.sharers |= me
		l.finish(w, r, Shared, penalty)
	}
}

func (l *L2) finish(w *way, r l2Req, granted Coherence, penalty engine.Cycle) {
	l.st.touch(w)
	l.l1s[r.from].grantReply(r.lineAddr, granted, penalty)
}

func (l *L2) getMSHR() *l2MSHR {
	if n := len(l.mshrPool); n > 0 {
		m := l.mshrPool[n-1]
		l.mshrPool = l.mshrPool[:n-1]
		return m
	}
	return &l2MSHR{}
}

func (l *L2) putMSHR(m *l2MSHR) {
	*m = l2MSHR{reqs: m.reqs[:0]}
	l.mshrPool = append(l.mshrPool, m)
}

func (l *L2) missPath(lineAddr uint64, r l2Req) {
	if l.trace != nil {
		// The requesting L1's fill will come through DRAM (whether this
		// request fetches, merges, or queues); mark its MSHR so the L1
		// attributes the round trip to the right service-level histogram.
		if m1, ok := l.l1s[r.from].mshrs.get(lineAddr); ok {
			m1.viaDRAM = true
		}
	}
	if m, ok := l.mshrs.get(lineAddr); ok {
		l.Stats.Merges++
		m.reqs = append(m.reqs, r)
		return
	}
	l.Stats.Misses++
	if l.trace != nil {
		l.trace.Emit(obs.Event{Cycle: uint64(l.q.Now()), Kind: obs.EvL2Miss,
			Unit: r.from, Warp: -1, PC: -1, Addr: lineAddr})
	}
	// The L2 has 256 MSHRs (Table 3); at simulated scale the bound is never
	// the limiter, but respect it anyway by queuing behind the first
	// occupied table slot when full (bounded structures should stay
	// bounded). Slot order is deterministic, unlike the map range this
	// replaced.
	if l.mshrs.len() >= l.cfg.MSHRs {
		l.Stats.MSHRFull++
		l.mshrs.scan(func(_ uint64, m *l2MSHR) bool {
			m.reqs = append(m.reqs, r)
			return false
		})
		return
	}
	m := l.getMSHR()
	m.lineAddr = lineAddr
	m.born = l.q.Now()
	m.reqs = append(m.reqs, r)
	l.mshrs.put(lineAddr, m)
	if n := uint64(l.mshrs.len()); n > l.Stats.MSHRPeak {
		l.Stats.MSHRPeak = n
	}
	if l.trace != nil {
		l.trace.Emit(obs.Event{Cycle: uint64(l.q.Now()), Kind: obs.EvDRAMFetch,
			Unit: -1, Warp: -1, PC: -1, Addr: lineAddr})
	}
	l.dram.FetchEvent(&l.fillHop, lineAddr)
}

// fill installs a memory line and answers the queued requesters in order.
func (l *L2) fill(m *l2MSHR) {
	w := l.st.lookup(m.lineAddr)
	if w == nil {
		w = l.st.victim(m.lineAddr)
		l.evict(w)
		w.valid = true
		l.st.setLine(w, m.lineAddr)
		w.dirty = false
		w.sharers = 0
		w.owner = -1
	}
	l.mshrs.del(m.lineAddr)
	if l.trace != nil {
		l.trace.Hists.L2MSHRRes.Record(uint64(l.q.Now() - m.born))
	}
	for _, r := range m.reqs {
		l.grant(w, r)
	}
	l.putMSHR(m)
}

// evict releases an L2 frame. Inclusivity requires revoking any L1 copies;
// dirty data (local or flushed from an owner) is written back to memory.
func (l *L2) evict(w *way) {
	if !w.valid {
		return
	}
	l.Stats.Evictions++
	if w.owner >= 0 {
		if l.l1s[w.owner].invalidateLine(w.lineAddr) {
			w.dirty = true
		}
		l.Stats.InclInvals++
	}
	for id := 0; id < len(l.l1s) && w.sharers != 0; id++ {
		if w.sharers&(1<<uint(id)) != 0 {
			l.l1s[id].invalidateLine(w.lineAddr)
			l.Stats.InclInvals++
		}
	}
	if w.dirty {
		l.Stats.Writebacks++
		if l.trace != nil {
			l.trace.Emit(obs.Event{Cycle: uint64(l.q.Now()), Kind: obs.EvDRAMWriteback,
				Unit: -1, Warp: -1, PC: -1, Addr: w.lineAddr})
		}
		l.dram.Writeback()
	}
	l.st.invalidate(w)
	w.sharers = 0
	w.owner = -1
	w.dirty = false
}

// OutstandingMisses reports the number of busy MSHRs (the timeline
// sampler reads this as the L2 MSHR occupancy).
func (l *L2) OutstandingMisses() int { return l.mshrs.len() }

// put records an L1 eviction (clean or dirty) so the directory stays
// precise. Dirty data merges into the L2 copy.
func (l *L2) put(from int, lineAddr uint64, dirty bool) {
	w := l.st.lookup(lineAddr)
	if w == nil {
		// The L2 already evicted this line (the inclusive invalidation and
		// the L1's own eviction raced); the data went to memory then.
		return
	}
	me := uint64(1) << uint(from)
	w.sharers &^= me
	if w.owner == int8(from) {
		w.owner = -1
	}
	if dirty {
		w.dirty = true
	}
}

// dramReq is one fetch parked on the bus: the subscriber's pre-bound
// handler plus argument, released after the bus transfer and device latency.
type dramReq struct {
	h   engine.Handler
	arg uint64
}

// DRAM models main memory behind the L2: a fixed access latency plus a
// bandwidth-limited memory bus, with the controller pipelining requests
// (Table 3: 100-cycle latency, 16 GB/s bus).
type DRAM struct {
	q   *engine.Queue
	bus *Channel
	// Latency is the device access time charged after the bus transfer.
	Latency engine.Cycle

	// pending is the FIFO of in-flight fetches: the bus is FIFO (departure
	// order equals call order), so the pre-bound busHop handler pops the
	// front when each transfer arrives.
	pending []dramReq
	head    int
	busHop  dramBusHop

	Accesses   uint64
	WritebackN uint64
}

type dramBusHop struct{ d *DRAM }

func (hp *dramBusHop) HandleEvent(uint64) {
	d := hp.d
	r := d.pending[d.head]
	d.pending[d.head] = dramReq{}
	d.head++
	if d.head == len(d.pending) {
		d.pending = d.pending[:0]
		d.head = 0
	}
	d.q.ScheduleAfter(d.Latency, r.h, r.arg)
}

// NewDRAM builds the memory model on the given bus.
func NewDRAM(q *engine.Queue, bus *Channel, latency engine.Cycle) *DRAM {
	d := &DRAM{q: q, bus: bus, Latency: latency}
	d.busHop = dramBusHop{d}
	return d
}

// FetchEvent schedules h.HandleEvent(arg) after the bus queuing plus device
// latency — the allocation-free path.
func (d *DRAM) FetchEvent(h engine.Handler, arg uint64) {
	d.Accesses++
	d.pending = append(d.pending, dramReq{h: h, arg: arg})
	d.bus.SendEvent(&d.busHop, 0)
}

// Fetch schedules done after the bus queuing plus device latency.
func (d *DRAM) Fetch(done func()) {
	d.FetchEvent(engine.FuncHandler(done), 0)
}

// Writeback consumes bus bandwidth for an evicted dirty line; no one waits
// for it.
func (d *DRAM) Writeback() {
	d.Accesses++
	d.WritebackN++
	d.bus.Send(func() {})
}
