package mem

import "math/bits"

// Coherence is the MESI state of a line held in an L1 cache.
type Coherence uint8

// MESI states. The L2 directory grants Exclusive on unshared reads (the E
// optimisation), Shared otherwise, and Modified for writes.
const (
	Invalid Coherence = iota
	Shared
	Exclusive
	Modified
)

// String returns the one-letter MESI name.
func (c Coherence) String() string {
	switch c {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return "?"
}

// way is one line frame. The directory fields (sharers, owner) are used
// only by the L2; an L1 uses state/dirty.
type way struct {
	lineAddr uint64
	idx      int32 // position in frames/tags, fixed at construction
	valid    bool
	state    Coherence
	dirty    bool
	sharers  uint64 // L2 directory: bitmask of L1 IDs holding the line Shared
	owner    int8   // L2 directory: L1 ID holding E/M, or -1
	lastUse  uint64
}

// store is a set-associative line array with LRU replacement. Ways == 0 at
// construction selects full associativity. The frames live in one flat
// array (set i is frames[i*ways : (i+1)*ways]): set selection is a shift
// and mask plus one bounds-checked reslice, with no per-set slice headers
// to chase — this lookup runs on every simulated cache access.
type store struct {
	frames []way
	// tags mirrors frames' lineAddr fields in a dense array: lookup's tag
	// probe then touches one or two cache lines per set instead of striding
	// across 48-byte frames. Kept in sync by setLine/invalidate.
	tags     []uint64
	numSets  int
	ways     int
	lineSize uint64
	// lineShift/setMask turn setOf's divide+modulo into shift+and.
	// numSets is lines/ways and may not be a power of two for odd way
	// counts; setMask < 0 selects the slow modulo path then.
	lineShift uint
	setMask   int64
	useClock  uint64
}

func newStore(sizeBytes, ways int, lineSize uint64) *store {
	if lineSize == 0 || lineSize&(lineSize-1) != 0 {
		panic("mem: line size must be a power of two")
	}
	lines := sizeBytes / int(lineSize)
	if lines == 0 {
		panic("mem: cache smaller than one line")
	}
	if ways <= 0 || ways > lines {
		ways = lines // fully associative
	}
	numSets := lines / ways
	if numSets == 0 {
		numSets = 1
	}
	s := &store{
		frames:    make([]way, numSets*ways),
		tags:      make([]uint64, numSets*ways),
		numSets:   numSets,
		ways:      ways,
		lineSize:  lineSize,
		lineShift: uint(bits.TrailingZeros64(lineSize)),
		setMask:   -1,
	}
	if numSets&(numSets-1) == 0 {
		s.setMask = int64(numSets - 1)
	}
	for i := range s.frames {
		s.frames[i].owner = -1
		s.frames[i].idx = int32(i)
		s.frames[i].lineAddr = invalidLine
		s.tags[i] = invalidLine
	}
	return s
}

// invalidLine is the lineAddr held by invalid frames. Real line addresses
// are line-aligned (low bits zero, lineSize ≥ 2), so all-ones can never
// match one — lookup compares addresses alone, no valid-flag load.
const invalidLine = ^uint64(0)

// invalidate releases a frame, restoring the invalid-frame address
// sentinel that keeps lookup's single-compare scan sound. Every site that
// clears valid must go through here.
func (s *store) invalidate(w *way) {
	w.valid = false
	w.lineAddr = invalidLine
	s.tags[w.idx] = invalidLine
}

// setLine installs a line address into a frame, keeping the dense tag
// array in sync. Every site that writes lineAddr must go through here or
// invalidate.
func (s *store) setLine(w *way, lineAddr uint64) {
	w.lineAddr = lineAddr
	s.tags[w.idx] = lineAddr
}

// Line returns the line-aligned address containing addr.
func (s *store) Line(addr uint64) uint64 { return addr &^ (s.lineSize - 1) }

func (s *store) baseOf(lineAddr uint64) int {
	idx := int((lineAddr >> s.lineShift) & uint64(s.setMask))
	if s.setMask < 0 {
		idx = int((lineAddr >> s.lineShift) % uint64(s.numSets))
	}
	return idx * s.ways
}

func (s *store) setOf(lineAddr uint64) []way {
	base := s.baseOf(lineAddr)
	return s.frames[base : base+s.ways]
}

// lookup returns the frame holding lineAddr, or nil. Invalid frames hold
// the invalidLine sentinel, so one compare per way suffices — against the
// dense tag array, not the frames themselves.
func (s *store) lookup(lineAddr uint64) *way {
	base := s.baseOf(lineAddr)
	tags := s.tags[base : base+s.ways]
	for i := range tags {
		if tags[i] == lineAddr {
			return &s.frames[base+i]
		}
	}
	return nil
}

// touch marks a frame most-recently-used.
func (s *store) touch(w *way) {
	s.useClock++
	w.lastUse = s.useClock
}

// victim returns the frame to fill for lineAddr: an invalid frame if one
// exists, otherwise the least recently used.
func (s *store) victim(lineAddr uint64) *way {
	set := s.setOf(lineAddr)
	var lru *way
	for i := range set {
		if !set[i].valid {
			return &set[i]
		}
		if lru == nil || set[i].lastUse < lru.lastUse {
			lru = &set[i]
		}
	}
	return lru
}

// forEachValid visits every valid frame (used for statistics and tests).
func (s *store) forEachValid(fn func(*way)) {
	for i := range s.frames {
		if s.frames[i].valid {
			fn(&s.frames[i])
		}
	}
}
