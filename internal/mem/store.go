package mem

// Coherence is the MESI state of a line held in an L1 cache.
type Coherence uint8

// MESI states. The L2 directory grants Exclusive on unshared reads (the E
// optimisation), Shared otherwise, and Modified for writes.
const (
	Invalid Coherence = iota
	Shared
	Exclusive
	Modified
)

// String returns the one-letter MESI name.
func (c Coherence) String() string {
	switch c {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return "?"
}

// way is one line frame. The directory fields (sharers, owner) are used
// only by the L2; an L1 uses state/dirty.
type way struct {
	lineAddr uint64
	valid    bool
	state    Coherence
	dirty    bool
	sharers  uint64 // L2 directory: bitmask of L1 IDs holding the line Shared
	owner    int8   // L2 directory: L1 ID holding E/M, or -1
	lastUse  uint64
}

// store is a set-associative line array with LRU replacement. Ways == 0 at
// construction selects full associativity.
type store struct {
	sets     [][]way
	numSets  int
	ways     int
	lineSize uint64
	useClock uint64
}

func newStore(sizeBytes, ways int, lineSize uint64) *store {
	if lineSize == 0 || lineSize&(lineSize-1) != 0 {
		panic("mem: line size must be a power of two")
	}
	lines := sizeBytes / int(lineSize)
	if lines == 0 {
		panic("mem: cache smaller than one line")
	}
	if ways <= 0 || ways > lines {
		ways = lines // fully associative
	}
	numSets := lines / ways
	if numSets == 0 {
		numSets = 1
	}
	s := &store{
		sets:     make([][]way, numSets),
		numSets:  numSets,
		ways:     ways,
		lineSize: lineSize,
	}
	for i := range s.sets {
		s.sets[i] = make([]way, ways)
		for j := range s.sets[i] {
			s.sets[i][j].owner = -1
		}
	}
	return s
}

// Line returns the line-aligned address containing addr.
func (s *store) Line(addr uint64) uint64 { return addr &^ (s.lineSize - 1) }

func (s *store) setOf(lineAddr uint64) []way {
	return s.sets[(lineAddr/s.lineSize)%uint64(s.numSets)]
}

// lookup returns the frame holding lineAddr, or nil.
func (s *store) lookup(lineAddr uint64) *way {
	set := s.setOf(lineAddr)
	for i := range set {
		if set[i].valid && set[i].lineAddr == lineAddr {
			return &set[i]
		}
	}
	return nil
}

// touch marks a frame most-recently-used.
func (s *store) touch(w *way) {
	s.useClock++
	w.lastUse = s.useClock
}

// victim returns the frame to fill for lineAddr: an invalid frame if one
// exists, otherwise the least recently used.
func (s *store) victim(lineAddr uint64) *way {
	set := s.setOf(lineAddr)
	var lru *way
	for i := range set {
		if !set[i].valid {
			return &set[i]
		}
		if lru == nil || set[i].lastUse < lru.lastUse {
			lru = &set[i]
		}
	}
	return lru
}

// forEachValid visits every valid frame (used for statistics and tests).
func (s *store) forEachValid(fn func(*way)) {
	for i := range s.sets {
		for j := range s.sets[i] {
			if s.sets[i][j].valid {
				fn(&s.sets[i][j])
			}
		}
	}
}
