package mem

// mshrTable is a small open-addressing hash table from line address to an
// in-flight miss record. The MSHR budget bounds the live entry count, so the
// table is sized once at construction (power of two, ≥4× the budget for a
// ≤25% load factor) and never rehashes; lookups on the access fast path are
// one multiplicative hash plus a short linear probe, with no per-entry heap
// boxes the way a map bucket chain has.
//
// Iteration order (scan, used by the L2's MSHR-full fallback) is the slot
// order, which is a pure function of the insertion/deletion sequence —
// deterministic across runs, unlike ranging over a Go map.
type mshrTable[V any] struct {
	slots []mshrSlot[V]
	mask  uint64
	n     int
}

type mshrSlot[V any] struct {
	key  uint64
	val  V
	used bool
}

func newMSHRTable[V any](budget int) mshrTable[V] {
	if budget < 1 {
		budget = 1
	}
	cap := 8
	for cap < budget*4 {
		cap *= 2
	}
	return mshrTable[V]{slots: make([]mshrSlot[V], cap), mask: uint64(cap - 1)}
}

func (t *mshrTable[V]) hash(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> 32 & t.mask
}

// get returns the value for key and whether it is present. The empty-table
// early-out matters: in hit-heavy phases every cache access probes an MSHR
// table with nothing in flight, and the occupancy word is already hot.
func (t *mshrTable[V]) get(key uint64) (V, bool) {
	if t.n == 0 {
		var zero V
		return zero, false
	}
	for i := t.hash(key); ; i = (i + 1) & t.mask {
		s := &t.slots[i]
		if !s.used {
			var zero V
			return zero, false
		}
		if s.key == key {
			return s.val, true
		}
	}
}

// put inserts key→val; key must not already be present.
func (t *mshrTable[V]) put(key uint64, val V) {
	for i := t.hash(key); ; i = (i + 1) & t.mask {
		s := &t.slots[i]
		if !s.used {
			*s = mshrSlot[V]{key: key, val: val, used: true}
			t.n++
			return
		}
	}
}

// del removes key (a no-op if absent), backward-shifting the probe chain so
// lookups never need tombstones.
func (t *mshrTable[V]) del(key uint64) {
	i := t.hash(key)
	for {
		s := &t.slots[i]
		if !s.used {
			return
		}
		if s.key == key {
			break
		}
		i = (i + 1) & t.mask
	}
	t.n--
	// Backward shift: pull up any following entry whose ideal slot is at or
	// before the hole (it may only be stored past its ideal slot because the
	// chain through the hole was occupied).
	j := i
	for {
		j = (j + 1) & t.mask
		s := &t.slots[j]
		if !s.used {
			break
		}
		h := t.hash(s.key)
		// Is the hole i within [h, j) walking forward with wraparound?
		if (j-h)&t.mask >= (j-i)&t.mask {
			t.slots[i] = *s
			i = j
		}
	}
	var zero mshrSlot[V]
	t.slots[i] = zero
}

// len returns the number of live entries.
func (t *mshrTable[V]) len() int { return t.n }

// scan calls fn for each live entry in slot order until fn returns false.
// Slot order is deterministic (see type comment).
func (t *mshrTable[V]) scan(fn func(key uint64, val V) bool) {
	for i := range t.slots {
		if t.slots[i].used && !fn(t.slots[i].key, t.slots[i].val) {
			return
		}
	}
}
