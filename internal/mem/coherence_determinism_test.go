package mem

import "testing"

// TestCheckCoherenceDeterministicReport pins the fix for the old
// map-ranged holders scratch in CheckCoherence: with several simultaneous
// violations, the one reported must be a pure function of L1 id and frame
// order — never of Go's randomised map iteration. The lines slice is
// iterated in insertion order, so across many fresh hierarchies (each with
// its own map layout) the message must not change.
func TestCheckCoherenceDeterministicReport(t *testing.T) {
	build := func() *Hierarchy {
		_, h := newTestHier(t, 4)
		// Seed two independent inclusion violations (lines valid in an L1
		// but absent from the L2), on different L1s and different lines. A
		// map-ordered walk could report either one first.
		install := func(l1 int, addr uint64) {
			st := h.L1s[l1].store
			w := st.victim(addr)
			w.valid = true
			st.setLine(w, addr)
			w.state = Shared
		}
		install(2, 0x81000)
		install(1, 0x42000)
		return h
	}

	want := build().CheckCoherence()
	if want == "" {
		t.Fatal("seeded violations not detected")
	}
	for i := 0; i < 100; i++ {
		if got := build().CheckCoherence(); got != want {
			t.Fatalf("run %d: violation report changed:\n got %q\nwant %q", i, got, want)
		}
	}
}
