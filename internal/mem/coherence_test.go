package mem

import "testing"

// falseSharingStep drives one access of the high-false-sharing stress
// pattern: every L1 hammers word-granularity offsets inside the same small
// set of cache lines, so lines ping-pong between owners and the directory
// constantly probes, downgrades, and invalidates. state is a deterministic
// LCG so the pattern is reproducible byte-for-byte.
func falseSharingStep(h *Hierarchy, state *uint64, lines int) {
	next := func(n int) int {
		*state = *state*6364136223846793005 + 1442695040888963407
		return int((*state >> 33) % uint64(n))
	}
	c := h.L1s[next(len(h.L1s))]
	// Same lines from every L1, different words per access: false sharing.
	line := uint64(0x40000 + next(lines)*128)
	addr := line + uint64(next(16))*8
	write := next(2) == 0
	c.Access(addr, write, func() {})
}

// checkpointedRun interleaves the stress pattern with partial event
// delivery, validating the MESI invariants at every interval — not only
// after the traffic drains — so a violation that a later transaction would
// repair is still caught in the window where it existed.
func checkpointedRun(t *testing.T, seed uint64, steps, lines, interval int) {
	t.Helper()
	q, h := newTestHier(t, 4)
	state := seed
	for step := 1; step <= steps; step++ {
		falseSharingStep(h, &state, lines)
		if step%interval == 0 {
			q.RunUntil(q.Now() + 60)
			if msg := h.CheckCoherence(); msg != "" {
				t.Fatalf("seed %d, step %d (cycle %d): %s", seed, step, q.Now(), msg)
			}
		}
	}
	q.Drain()
	if msg := h.CheckCoherence(); msg != "" {
		t.Fatalf("seed %d, after drain: %s", seed, msg)
	}
}

// TestCoherenceUnderFalseSharingStress checks the full MESI invariant set
// (single writer, directory precision, inclusion, no stale dirty data)
// every interval of a high-false-sharing workload: all four L1s write
// disjoint words of the same few lines, maximising ownership migration.
func TestCoherenceUnderFalseSharingStress(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		checkpointedRun(t, seed, 600, 8, 16)
	}
}

// TestCoherenceStressEvictionPressure runs the same pattern over more lines
// than the 16-line test L1 holds, adding capacity evictions (and their
// writebacks and directory puts) to the protocol traffic mix.
func TestCoherenceStressEvictionPressure(t *testing.T) {
	for seed := uint64(100); seed < 106; seed++ {
		checkpointedRun(t, seed, 600, 48, 16)
	}
}

// FuzzCoherence lets the fuzzer explore seeds of the stress pattern; the
// property is interval-checked coherence, as above. The seed corpus covers
// the deterministic regression seeds.
func FuzzCoherence(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(7))
	f.Add(uint64(0xdeadbeef))
	f.Fuzz(func(t *testing.T, seed uint64) {
		checkpointedRun(t, seed, 300, 8, 16)
	})
}

// TestStaleDataInvariantDetects plants the stale-data corruption directly
// (a dirty line demoted to Shared without a writeback) and requires the
// checker to flag it — guarding the guard.
func TestStaleDataInvariantDetects(t *testing.T) {
	q, h := newTestHier(t, 2)
	h.L1s[0].Access(0x40000, true, nil)
	q.Drain()
	w := h.L1s[0].store.lookup(h.L1s[0].Line(0x40000))
	if w == nil || w.state != Modified || !w.dirty {
		t.Fatalf("setup: expected a dirty Modified line, got %+v", w)
	}
	w.state = Shared // corrupt: dirty data outside M
	if msg := h.CheckCoherence(); msg == "" {
		t.Fatal("checker missed dirty data in Shared state")
	}
}
