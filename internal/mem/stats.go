package mem

// Aggregation across caches. Counter fields sum; high-water marks take the
// max (a peak across units is the largest per-unit peak, matching how
// wpu.Stats aggregates PeakSplits). TestL1StatsAddCoversAllFields and
// TestL2StatsAddCoversAllFields enforce by reflection that every field —
// including ones added later — participates, so a new counter can never be
// silently dropped from the machine totals.

// Add accumulates o into s.
func (s *L1Stats) Add(o L1Stats) {
	s.Accesses += o.Accesses
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Merges += o.Merges
	s.Upgrades += o.Upgrades
	s.Writebacks += o.Writebacks
	s.Evictions += o.Evictions
	s.Invalidates += o.Invalidates
	s.Downgrades += o.Downgrades
	s.BankQueuing += o.BankQueuing
	s.BankConflicts += o.BankConflicts
	s.MSHRStalls += o.MSHRStalls
	if o.MSHRPeak > s.MSHRPeak {
		s.MSHRPeak = o.MSHRPeak
	}
	s.ReadAccesses += o.ReadAccesses
}

// Add accumulates o into s.
func (s *L2Stats) Add(o L2Stats) {
	s.Requests += o.Requests
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Merges += o.Merges
	s.ProbeInvals += o.ProbeInvals
	s.ProbeDowngr += o.ProbeDowngr
	s.Evictions += o.Evictions
	s.Writebacks += o.Writebacks
	s.InclInvals += o.InclInvals
	if o.MSHRPeak > s.MSHRPeak {
		s.MSHRPeak = o.MSHRPeak
	}
	s.MSHRFull += o.MSHRFull
}
