package mem

// Gate benchmarks for the two map-free memory fast paths introduced with
// the execution-core rewrite: the tiered functional-memory page lookup
// (last-page cache → flat directory → overflow map) and the MSHR
// open-addressing table. Both are pinned in cmd/dwsbench with a zero
// allocs/op baseline — the steady state must stay allocation-free.

import "testing"

// BenchmarkFuncMemReadWrite streams a write+read pair across a multi-page
// allocated region: strided enough to leave the last-page cache regularly
// (exercising the flat directory) while staying inside the bump-allocated
// range (the overflow map must never be touched).
func BenchmarkFuncMemReadWrite(b *testing.B) {
	m := NewMemory()
	const words = 8 * pageWords // 8 pages
	base := m.AllocWords(words)
	// Touch every page up front so page instantiation is out of the loop.
	for i := uint64(0); i < words; i++ {
		m.Write(base+8*i, int64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		// Large co-prime stride: consecutive accesses land on different
		// pages, so the benchmark measures the directory path and not just
		// the one-entry last-page cache.
		addr := base + 8*((uint64(i)*(pageWords+1))%words)
		m.Write(addr, int64(i))
		sink += m.Read(addr)
	}
	benchSink = sink
}

// BenchmarkMSHRLookup pins the open-addressing MSHR table's full fast-path
// cycle: a miss probe on an empty table, an insert, a hit probe, and a
// backward-shift delete — the sequence every cache miss pays.
func BenchmarkMSHRLookup(b *testing.B) {
	t := newMSHRTable[int](32)
	b.ReportAllocs()
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		key := uint64(i) * 128
		if _, ok := t.get(key); ok {
			b.Fatal("phantom entry")
		}
		t.put(key, i)
		if _, ok := t.get(key); ok {
			hits++
		}
		t.del(key)
	}
	if hits != b.N {
		b.Fatalf("hits = %d, want %d", hits, b.N)
	}
}

// benchSink defeats dead-code elimination of benchmark loop bodies.
var benchSink int64
