package mem

import (
	"math/bits"

	"repro/internal/engine"
	"repro/internal/obs"
)

// L1Config sizes a private data cache (Table 3 defaults are in sim).
type L1Config struct {
	SizeBytes int
	Ways      int // 0 = fully associative
	LineSize  uint64
	HitLat    engine.Cycle
	Banks     int
	MSHRs     int
}

// L1Stats counts events observed by one L1 cache.
type L1Stats struct {
	Accesses      uint64
	Hits          uint64
	Misses        uint64 // primary misses (MSHR allocations)
	Merges        uint64 // secondary misses coalesced into an existing MSHR
	Upgrades      uint64 // stores that hit Shared and needed exclusivity
	Writebacks    uint64 // dirty evictions to L2
	Evictions     uint64
	Invalidates   uint64 // lines invalidated by directory probes
	Downgrades    uint64 // M/E lines downgraded to S by directory probes
	BankQueuing   uint64 // cycles spent waiting on busy banks
	BankConflicts uint64 // accesses that queued behind a busy bank
	MSHRStalls    uint64 // requests that waited because all MSHRs were busy
	MSHRPeak      uint64 // high-water mark of simultaneously busy MSHRs
	ReadAccesses  uint64
}

// l1Done is one completion subscription: a pre-bound handler plus its
// argument (the allocation-free path), scheduled when the access finishes.
type l1Done struct {
	h     engine.Handler
	arg   uint64
	write bool
}

type l1MSHR struct {
	lineAddr uint64
	write    bool // requested exclusive permission
	// upgradeWanted is set when a store merges into a read request that has
	// already been dispatched; a second, exclusive request is issued when
	// the first fill returns without write permission.
	upgradeWanted bool
	// granted carries the directory's grant from install time (the
	// synchronous directory reply) to the fill completion that arrives after
	// the probe penalty and the return crossbar hop.
	granted Coherence
	// born/sentAt stamp the residency and per-trip service histograms:
	// allocation time and the most recent dispatch across the crossbar (an
	// upgrade re-dispatch restarts the trip). viaDRAM is set by the L2 when
	// this miss's fill had to go to DRAM, steering the service histogram;
	// it is only maintained when a trace is attached.
	born    engine.Cycle
	sentAt  engine.Cycle
	viaDRAM bool
	dones   []l1Done
}

type l1Waiter struct {
	lineAddr uint64
	write    bool
	h        engine.Handler
	arg      uint64
}

// The L1's event-path hops are pre-bound handlers so steady-state misses
// schedule nothing but pooled engine events; each carries the line address
// as its argument and resolves the MSHR from the map at delivery time.
type l1ReqHop struct{ c *L1 }      // request crossed the crossbar → directory request
type l1PenaltyHop struct{ c *L1 }  // probe penalty elapsed → return crossbar hop
type l1CompleteHop struct{ c *L1 } // fill crossed the crossbar back → complete

func (hp *l1ReqHop) HandleEvent(lineAddr uint64) { hp.c.sendRequest(lineAddr) }

func (hp *l1PenaltyHop) HandleEvent(lineAddr uint64) {
	hp.c.xbar.SendEvent(&hp.c.completeHop, lineAddr)
}

func (hp *l1CompleteHop) HandleEvent(lineAddr uint64) {
	c := hp.c
	m, _ := c.mshrs.get(lineAddr)
	c.complete(m, m.granted)
}

// L1 is a private, banked, write-back, write-allocate data cache with MSHRs
// that coalesce requests to the same line (the paper's memory coalescing at
// the L1, §3.3).
type L1 struct {
	ID int

	q     *engine.Queue
	store *store
	cfg   L1Config
	xbar  *Channel
	l2    *L2

	mshrs    mshrTable[*l1MSHR]
	mshrPool []*l1MSHR  // free list; retired MSHRs keep their dones capacity
	waiting  []l1Waiter // overflow when all MSHRs are busy
	bankFree []engine.Cycle
	// bankShift/bankMask replace scheduleHit's divide+modulo bank selection;
	// bankMask < 0 keeps the modulo path for non-power-of-two bank counts.
	bankShift uint
	bankMask  int64
	// lineMask caches LineSize-1 so the WPU's per-lane Line calls align
	// without chasing into the store.
	lineMask uint64

	reqHop      l1ReqHop
	penaltyHop  l1PenaltyHop
	completeHop l1CompleteHop

	trace *obs.Trace // per-System observability sink (nil = disabled)

	Stats L1Stats
}

// NewL1 builds an L1 connected to the shared L2 through the crossbar.
// trace is the per-System observability sink; nil disables event emission.
func NewL1(id int, q *engine.Queue, cfg L1Config, xbar *Channel, l2 *L2, trace *obs.Trace) *L1 {
	if cfg.Banks <= 0 {
		cfg.Banks = 1
	}
	if cfg.MSHRs <= 0 {
		cfg.MSHRs = 1
	}
	c := &L1{
		ID:       id,
		q:        q,
		store:    newStore(cfg.SizeBytes, cfg.Ways, cfg.LineSize),
		cfg:      cfg,
		xbar:     xbar,
		l2:       l2,
		mshrs:    newMSHRTable[*l1MSHR](cfg.MSHRs),
		bankFree: make([]engine.Cycle, cfg.Banks),
		trace:    trace,
	}
	c.lineMask = cfg.LineSize - 1
	c.bankShift = uint(bits.TrailingZeros64(cfg.LineSize))
	c.bankMask = -1
	if cfg.Banks&(cfg.Banks-1) == 0 {
		c.bankMask = int64(cfg.Banks - 1)
	}
	c.reqHop = l1ReqHop{c}
	c.penaltyHop = l1PenaltyHop{c}
	c.completeHop = l1CompleteHop{c}
	l2.attach(c)
	return c
}

// Line returns the line-aligned address containing addr; the WPU uses it to
// coalesce the per-thread addresses of a SIMD memory instruction.
func (c *L1) Line(addr uint64) uint64 { return addr &^ c.lineMask }

// Config returns the geometry this L1 was built with (defaults resolved).
// The WPU reads it at Launch to derive static transaction bounds that
// match the machine it actually runs on.
func (c *L1) Config() L1Config { return c.cfg }

// Access issues a load (write=false) or store (write=true) covering one
// cache line, completing through a plain closure. It is the
// convenience/test entry; the WPU's hot path is AccessEvent.
func (c *L1) Access(addr uint64, write bool, done func()) (hit bool) {
	var h engine.Handler
	if done != nil {
		h = engine.FuncHandler(done)
	}
	return c.AccessEvent(addr, write, h, 0)
}

// AccessEvent issues a load (write=false) or store (write=true) covering
// one cache line. It reports synchronously whether the access hits — the
// WPU needs the hit mask at issue time to drive memory-divergence
// subdivision — and schedules h.HandleEvent(arg) when the access completes
// (after the hit latency for hits, or when the fill returns for misses).
// h may be nil when no one waits for the data.
func (c *L1) AccessEvent(addr uint64, write bool, h engine.Handler, arg uint64) (hit bool) {
	c.Stats.Accesses++
	if !write {
		c.Stats.ReadAccesses++
	}
	lineAddr := c.store.Line(addr)

	// A line with an in-flight fill still counts as a miss: the grant may
	// have installed coherence state already, but the data has not crossed
	// the crossbar yet.
	if m, ok := c.mshrs.get(lineAddr); ok {
		c.Stats.Merges++
		if h != nil {
			m.dones = append(m.dones, l1Done{h: h, arg: arg, write: write})
		}
		if write && !m.write {
			m.upgradeWanted = true
		}
		return false
	}

	if w := c.store.lookup(lineAddr); w != nil {
		permOK := !write || w.state == Modified || w.state == Exclusive
		if permOK {
			c.Stats.Hits++
			if write {
				w.state = Modified
				w.dirty = true
			}
			c.store.touch(w)
			c.scheduleHit(lineAddr, h, arg)
			return true
		}
		// Store hitting a Shared line: the data is here but exclusivity is
		// not — an upgrade miss.
		c.Stats.Upgrades++
	}
	c.missPath(lineAddr, write, h, arg)
	return false
}

func (c *L1) scheduleHit(lineAddr uint64, h engine.Handler, arg uint64) {
	bank := int((lineAddr >> c.bankShift) & uint64(c.bankMask))
	if c.bankMask < 0 {
		bank = int((lineAddr >> c.bankShift) % uint64(c.cfg.Banks))
	}
	start := c.q.Now()
	if c.bankFree[bank] > start {
		c.Stats.BankQueuing += uint64(c.bankFree[bank] - start)
		c.Stats.BankConflicts++
		start = c.bankFree[bank]
	}
	c.bankFree[bank] = start + 1 // banks accept one access per cycle
	if c.trace != nil {
		c.trace.Hists.L1Hit.Record(uint64(start + c.cfg.HitLat - c.q.Now()))
	}
	if h != nil {
		c.q.ScheduleAt(start+c.cfg.HitLat, h, arg)
	}
}

func (c *L1) missPath(lineAddr uint64, write bool, h engine.Handler, arg uint64) {
	if c.mshrs.len() >= c.cfg.MSHRs {
		c.Stats.MSHRStalls++
		if c.trace != nil {
			c.trace.Emit(obs.Event{Cycle: uint64(c.q.Now()), Kind: obs.EvL1MSHRFull,
				Unit: c.ID, Warp: -1, PC: -1, Addr: lineAddr})
		}
		c.waiting = append(c.waiting, l1Waiter{lineAddr: lineAddr, write: write, h: h, arg: arg})
		return
	}
	c.allocMSHR(lineAddr, write, h, arg)
}

// getMSHR takes a recycled MSHR from the pool (or makes one); steady-state
// misses therefore allocate nothing.
func (c *L1) getMSHR() *l1MSHR {
	if n := len(c.mshrPool); n > 0 {
		m := c.mshrPool[n-1]
		c.mshrPool = c.mshrPool[:n-1]
		return m
	}
	return &l1MSHR{}
}

func (c *L1) putMSHR(m *l1MSHR) {
	for i := range m.dones {
		m.dones[i].h = nil
	}
	*m = l1MSHR{dones: m.dones[:0]}
	c.mshrPool = append(c.mshrPool, m)
}

func (c *L1) allocMSHR(lineAddr uint64, write bool, h engine.Handler, arg uint64) {
	c.Stats.Misses++
	if c.trace != nil {
		c.trace.Emit(obs.Event{Cycle: uint64(c.q.Now()), Kind: obs.EvL1Miss,
			Unit: c.ID, Warp: -1, PC: -1, Addr: lineAddr})
	}
	m := c.getMSHR()
	m.lineAddr = lineAddr
	m.write = write
	m.born = c.q.Now()
	if h != nil {
		m.dones = append(m.dones, l1Done{h: h, arg: arg, write: write})
	}
	c.mshrs.put(lineAddr, m)
	if n := uint64(c.mshrs.len()); n > c.Stats.MSHRPeak {
		c.Stats.MSHRPeak = n
	}
	c.dispatch(m)
}

// dispatch sends the miss across the crossbar; the request hop re-reads the
// MSHR's write intent at arrival so an upgrade re-dispatch reuses the path.
func (c *L1) dispatch(m *l1MSHR) {
	m.sentAt = c.q.Now()
	c.xbar.SendEvent(&c.reqHop, m.lineAddr)
}

// sendRequest runs when the request arrives at the directory (one crossbar
// hop after dispatch). The reply comes back synchronously at grant time via
// grantReply.
func (c *L1) sendRequest(lineAddr uint64) {
	m, _ := c.mshrs.get(lineAddr)
	c.l2.Request(c.ID, lineAddr, m.write)
}

// grantReply is invoked by the directory when it grants this cache's
// request. Coherence state installs atomically with the directory decision
// so L1 state and directory state never disagree; the data (and so the
// waiters' completion) still pays the probe penalty plus the return
// crossbar hop.
func (c *L1) grantReply(lineAddr uint64, granted Coherence, penalty engine.Cycle) {
	m, _ := c.mshrs.get(lineAddr)
	c.install(m, granted)
	m.granted = granted
	c.q.ScheduleAfter(penalty, &c.penaltyHop, lineAddr)
}

// install places the granted line in the array at directory-grant time.
func (c *L1) install(m *l1MSHR, granted Coherence) {
	w := c.store.lookup(m.lineAddr)
	if w == nil {
		w = c.store.victim(m.lineAddr)
		c.evict(w)
		w.valid = true
		c.store.setLine(w, m.lineAddr)
		w.dirty = false
	}
	w.state = granted
	if m.write {
		w.state = Modified
		w.dirty = true
	}
	c.store.touch(w)
}

// complete fires the MSHR's callbacks once the fill data has crossed the
// crossbar, issuing a follow-up exclusive request when a store merged into
// a read whose copy is not exclusive-capable. The decision reads the line's
// state now, not the state granted at directory time: a remote read may
// have downgraded the copy to Shared during the fill's probe-penalty and
// crossbar window, and promoting that copy to Modified in place would break
// the single-writer invariant.
func (c *L1) complete(m *l1MSHR, granted Coherence) {
	if c.trace != nil {
		// One record per crossbar round trip: an upgrade re-dispatch below
		// restarts sentAt and records its own trip when it completes.
		h := &c.trace.Hists.L2Serve
		if m.viaDRAM {
			h = &c.trace.Hists.DRAMServe
		}
		h.Record(uint64(c.q.Now() - m.sentAt))
		m.viaDRAM = false
	}
	if m.upgradeWanted {
		w := c.store.lookup(m.lineAddr)
		if w == nil || (w.state != Modified && w.state != Exclusive) {
			n := 0
			for _, d := range m.dones {
				if d.write {
					m.dones[n] = d
					n++
				} else {
					c.q.ScheduleAfter(0, d.h, d.arg)
				}
			}
			for i := n; i < len(m.dones); i++ {
				m.dones[i].h = nil
			}
			m.dones = m.dones[:n]
			m.write = true
			m.upgradeWanted = false
			c.Stats.Upgrades++
			c.dispatch(m)
			return
		}
		// The copy is still exclusive-capable; promote in place.
		w.state = Modified
		w.dirty = true
	}
	for _, d := range m.dones {
		c.q.ScheduleAfter(0, d.h, d.arg)
	}
	if c.trace != nil {
		c.trace.Hists.L1MSHRRes.Record(uint64(c.q.Now() - m.born))
	}
	c.mshrs.del(m.lineAddr)
	c.putMSHR(m)
	c.drainWaiting()
}

func (c *L1) drainWaiting() {
	for len(c.waiting) > 0 && c.mshrs.len() < c.cfg.MSHRs {
		wt := c.waiting[0]
		copy(c.waiting, c.waiting[1:])
		c.waiting[len(c.waiting)-1] = l1Waiter{}
		c.waiting = c.waiting[:len(c.waiting)-1]
		if m, ok := c.mshrs.get(wt.lineAddr); ok {
			if wt.h != nil {
				m.dones = append(m.dones, l1Done{h: wt.h, arg: wt.arg, write: wt.write})
			}
			if wt.write && !m.write {
				m.upgradeWanted = true
			}
			continue
		}
		// Re-check the cache: an earlier fill may already cover this line.
		if w := c.store.lookup(wt.lineAddr); w != nil &&
			(!wt.write || w.state == Modified || w.state == Exclusive) {
			if wt.write {
				w.state = Modified
				w.dirty = true
			}
			c.scheduleHit(wt.lineAddr, wt.h, wt.arg)
			continue
		}
		c.allocMSHR(wt.lineAddr, wt.write, wt.h, wt.arg)
	}
}

// evict releases a frame, writing back dirty data and informing the
// directory so its sharer state stays precise.
func (c *L1) evict(w *way) {
	if !w.valid {
		return
	}
	c.Stats.Evictions++
	if w.dirty {
		c.Stats.Writebacks++
		c.xbar.Send(func() {}) // dirty data occupies the crossbar
	}
	c.l2.put(c.ID, w.lineAddr, w.dirty)
	c.store.invalidate(w)
	w.state = Invalid
	w.dirty = false
}

// invalidateLine services a directory probe that revokes this cache's copy.
// It reports whether the line held dirty data.
func (c *L1) invalidateLine(lineAddr uint64) (wasDirty bool) {
	w := c.store.lookup(lineAddr)
	if w == nil {
		return false
	}
	c.Stats.Invalidates++
	wasDirty = w.dirty
	c.store.invalidate(w)
	w.state = Invalid
	w.dirty = false
	return wasDirty
}

// downgradeLine services a directory probe demoting M/E to S, returning
// whether dirty data was flushed to the L2.
func (c *L1) downgradeLine(lineAddr uint64) (wasDirty bool) {
	w := c.store.lookup(lineAddr)
	if w == nil {
		return false
	}
	if w.state == Modified || w.state == Exclusive {
		c.Stats.Downgrades++
		wasDirty = w.dirty
		w.state = Shared
		w.dirty = false
	}
	return wasDirty
}

// OutstandingMisses reports the number of busy MSHRs (used by tests and the
// MLP statistics).
func (c *L1) OutstandingMisses() int { return c.mshrs.len() }

// MissRate returns misses (primary + coalesced) over accesses.
func (s L1Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses+s.Merges) / float64(s.Accesses)
}
