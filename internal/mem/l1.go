package mem

import (
	"repro/internal/engine"
	"repro/internal/obs"
)

// L1Config sizes a private data cache (Table 3 defaults are in sim).
type L1Config struct {
	SizeBytes int
	Ways      int // 0 = fully associative
	LineSize  uint64
	HitLat    engine.Cycle
	Banks     int
	MSHRs     int
}

// L1Stats counts events observed by one L1 cache.
type L1Stats struct {
	Accesses      uint64
	Hits          uint64
	Misses        uint64 // primary misses (MSHR allocations)
	Merges        uint64 // secondary misses coalesced into an existing MSHR
	Upgrades      uint64 // stores that hit Shared and needed exclusivity
	Writebacks    uint64 // dirty evictions to L2
	Evictions     uint64
	Invalidates   uint64 // lines invalidated by directory probes
	Downgrades    uint64 // M/E lines downgraded to S by directory probes
	BankQueuing   uint64 // cycles spent waiting on busy banks
	BankConflicts uint64 // accesses that queued behind a busy bank
	MSHRStalls    uint64 // requests that waited because all MSHRs were busy
	MSHRPeak      uint64 // high-water mark of simultaneously busy MSHRs
	ReadAccesses  uint64
}

type l1Done struct {
	fn    func()
	write bool
}

type l1MSHR struct {
	lineAddr uint64
	write    bool // requested exclusive permission
	// upgradeWanted is set when a store merges into a read request that has
	// already been dispatched; a second, exclusive request is issued when
	// the first fill returns without write permission.
	upgradeWanted bool
	dones         []l1Done
}

type l1Waiter struct {
	lineAddr uint64
	write    bool
	done     func()
}

// L1 is a private, banked, write-back, write-allocate data cache with MSHRs
// that coalesce requests to the same line (the paper's memory coalescing at
// the L1, §3.3).
type L1 struct {
	ID int

	q     *engine.Queue
	store *store
	cfg   L1Config
	xbar  *Channel
	l2    *L2

	mshrs    map[uint64]*l1MSHR
	waiting  []l1Waiter // overflow when all MSHRs are busy
	bankFree []engine.Cycle

	trace *obs.Trace // per-System observability sink (nil = disabled)

	Stats L1Stats
}

// NewL1 builds an L1 connected to the shared L2 through the crossbar.
// trace is the per-System observability sink; nil disables event emission.
func NewL1(id int, q *engine.Queue, cfg L1Config, xbar *Channel, l2 *L2, trace *obs.Trace) *L1 {
	if cfg.Banks <= 0 {
		cfg.Banks = 1
	}
	if cfg.MSHRs <= 0 {
		cfg.MSHRs = 1
	}
	c := &L1{
		ID:       id,
		q:        q,
		store:    newStore(cfg.SizeBytes, cfg.Ways, cfg.LineSize),
		cfg:      cfg,
		xbar:     xbar,
		l2:       l2,
		mshrs:    make(map[uint64]*l1MSHR),
		bankFree: make([]engine.Cycle, cfg.Banks),
		trace:    trace,
	}
	l2.attach(c)
	return c
}

// Line returns the line-aligned address containing addr; the WPU uses it to
// coalesce the per-thread addresses of a SIMD memory instruction.
func (c *L1) Line(addr uint64) uint64 { return c.store.Line(addr) }

// Access issues a load (write=false) or store (write=true) covering one
// cache line. It reports synchronously whether the access hits — the WPU
// needs the hit mask at issue time to drive memory-divergence subdivision —
// and schedules done when the access completes (after the hit latency for
// hits, or when the fill returns for misses).
func (c *L1) Access(addr uint64, write bool, done func()) (hit bool) {
	c.Stats.Accesses++
	if !write {
		c.Stats.ReadAccesses++
	}
	lineAddr := c.store.Line(addr)

	// A line with an in-flight fill still counts as a miss: the grant may
	// have installed coherence state already, but the data has not crossed
	// the crossbar yet.
	if m, ok := c.mshrs[lineAddr]; ok {
		c.Stats.Merges++
		m.dones = append(m.dones, l1Done{fn: done, write: write})
		if write && !m.write {
			m.upgradeWanted = true
		}
		return false
	}

	if w := c.store.lookup(lineAddr); w != nil {
		permOK := !write || w.state == Modified || w.state == Exclusive
		if permOK {
			c.Stats.Hits++
			if write {
				w.state = Modified
				w.dirty = true
			}
			c.store.touch(w)
			c.scheduleHit(lineAddr, done)
			return true
		}
		// Store hitting a Shared line: the data is here but exclusivity is
		// not — an upgrade miss.
		c.Stats.Upgrades++
	}
	c.missPath(lineAddr, write, done)
	return false
}

func (c *L1) scheduleHit(lineAddr uint64, done func()) {
	bank := int((lineAddr / c.cfg.LineSize) % uint64(c.cfg.Banks))
	start := c.q.Now()
	if c.bankFree[bank] > start {
		c.Stats.BankQueuing += uint64(c.bankFree[bank] - start)
		c.Stats.BankConflicts++
		start = c.bankFree[bank]
	}
	c.bankFree[bank] = start + 1 // banks accept one access per cycle
	c.q.At(start+c.cfg.HitLat, done)
}

func (c *L1) missPath(lineAddr uint64, write bool, done func()) {
	if len(c.mshrs) >= c.cfg.MSHRs {
		c.Stats.MSHRStalls++
		if c.trace != nil {
			c.trace.Emit(obs.Event{Cycle: uint64(c.q.Now()), Kind: obs.EvL1MSHRFull,
				Unit: c.ID, Warp: -1, PC: -1, Addr: lineAddr})
		}
		c.waiting = append(c.waiting, l1Waiter{lineAddr: lineAddr, write: write, done: done})
		return
	}
	c.allocMSHR(lineAddr, write, done)
}

func (c *L1) allocMSHR(lineAddr uint64, write bool, done func()) {
	c.Stats.Misses++
	if c.trace != nil {
		c.trace.Emit(obs.Event{Cycle: uint64(c.q.Now()), Kind: obs.EvL1Miss,
			Unit: c.ID, Warp: -1, PC: -1, Addr: lineAddr})
	}
	m := &l1MSHR{lineAddr: lineAddr, write: write}
	if done != nil {
		m.dones = append(m.dones, l1Done{fn: done, write: write})
	}
	c.mshrs[lineAddr] = m
	if n := uint64(len(c.mshrs)); n > c.Stats.MSHRPeak {
		c.Stats.MSHRPeak = n
	}
	c.dispatch(m, write)
}

func (c *L1) dispatch(m *l1MSHR, write bool) {
	c.xbar.Send(func() {
		c.l2.Request(c.ID, m.lineAddr, write, func(granted Coherence, penalty engine.Cycle) {
			// Install coherence state atomically with the directory grant so
			// L1 state and directory state never disagree; the data (and so
			// the waiters' completion) still pays the probe penalty plus the
			// return crossbar hop.
			c.install(m, granted)
			c.q.After(penalty, func() {
				c.xbar.Send(func() { c.complete(m, granted) })
			})
		})
	})
}

// install places the granted line in the array at directory-grant time.
func (c *L1) install(m *l1MSHR, granted Coherence) {
	w := c.store.lookup(m.lineAddr)
	if w == nil {
		w = c.store.victim(m.lineAddr)
		c.evict(w)
		w.valid = true
		w.lineAddr = m.lineAddr
		w.dirty = false
	}
	w.state = granted
	if m.write {
		w.state = Modified
		w.dirty = true
	}
	c.store.touch(w)
}

// complete fires the MSHR's callbacks once the fill data has crossed the
// crossbar, issuing a follow-up exclusive request when a store merged into
// a read that was granted only Shared.
func (c *L1) complete(m *l1MSHR, granted Coherence) {
	if m.upgradeWanted && granted != Modified && granted != Exclusive {
		var writes []l1Done
		for _, d := range m.dones {
			if d.write {
				writes = append(writes, d)
			} else {
				c.q.After(0, d.fn)
			}
		}
		m.dones = writes
		m.write = true
		m.upgradeWanted = false
		c.Stats.Upgrades++
		c.dispatch(m, true)
		return
	}
	if m.upgradeWanted {
		// Grant was exclusive-capable; promote in place.
		if w := c.store.lookup(m.lineAddr); w != nil {
			w.state = Modified
			w.dirty = true
		}
	}
	for _, d := range m.dones {
		c.q.After(0, d.fn)
	}
	delete(c.mshrs, m.lineAddr)
	c.drainWaiting()
}

func (c *L1) drainWaiting() {
	for len(c.waiting) > 0 && len(c.mshrs) < c.cfg.MSHRs {
		wt := c.waiting[0]
		c.waiting = c.waiting[1:]
		if m, ok := c.mshrs[wt.lineAddr]; ok {
			m.dones = append(m.dones, l1Done{fn: wt.done, write: wt.write})
			if wt.write && !m.write {
				m.upgradeWanted = true
			}
			continue
		}
		// Re-check the cache: an earlier fill may already cover this line.
		if w := c.store.lookup(wt.lineAddr); w != nil &&
			(!wt.write || w.state == Modified || w.state == Exclusive) {
			if wt.write {
				w.state = Modified
				w.dirty = true
			}
			c.scheduleHit(wt.lineAddr, wt.done)
			continue
		}
		c.allocMSHR(wt.lineAddr, wt.write, wt.done)
	}
}

// evict releases a frame, writing back dirty data and informing the
// directory so its sharer state stays precise.
func (c *L1) evict(w *way) {
	if !w.valid {
		return
	}
	c.Stats.Evictions++
	if w.dirty {
		c.Stats.Writebacks++
		c.xbar.Send(func() {}) // dirty data occupies the crossbar
	}
	c.l2.put(c.ID, w.lineAddr, w.dirty)
	w.valid = false
	w.state = Invalid
	w.dirty = false
}

// invalidateLine services a directory probe that revokes this cache's copy.
// It reports whether the line held dirty data.
func (c *L1) invalidateLine(lineAddr uint64) (wasDirty bool) {
	w := c.store.lookup(lineAddr)
	if w == nil {
		return false
	}
	c.Stats.Invalidates++
	wasDirty = w.dirty
	w.valid = false
	w.state = Invalid
	w.dirty = false
	return wasDirty
}

// downgradeLine services a directory probe demoting M/E to S, returning
// whether dirty data was flushed to the L2.
func (c *L1) downgradeLine(lineAddr uint64) (wasDirty bool) {
	w := c.store.lookup(lineAddr)
	if w == nil {
		return false
	}
	if w.state == Modified || w.state == Exclusive {
		c.Stats.Downgrades++
		wasDirty = w.dirty
		w.state = Shared
		w.dirty = false
	}
	return wasDirty
}

// OutstandingMisses reports the number of busy MSHRs (used by tests and the
// MLP statistics).
func (c *L1) OutstandingMisses() int { return len(c.mshrs) }

// MissRate returns misses (primary + coalesced) over accesses.
func (s L1Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses+s.Merges) / float64(s.Accesses)
}
