package engine

import (
	"testing"
	"testing/quick"
)

func TestQueueZeroValue(t *testing.T) {
	var q Queue
	if q.Now() != 0 {
		t.Fatalf("Now() = %d, want 0", q.Now())
	}
	if q.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", q.Len())
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	var q Queue
	var got []Cycle
	for _, c := range []Cycle{30, 10, 20, 5, 25} {
		c := c
		q.At(c, func() { got = append(got, c) })
	}
	q.Drain()
	want := []Cycle{5, 10, 20, 25, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestSameCycleFIFO(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.At(7, func() { got = append(got, i) })
	}
	q.Drain()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-cycle order %v, want FIFO", got)
		}
	}
}

func TestRunUntilDeliversOnlyDueEvents(t *testing.T) {
	var q Queue
	fired := map[Cycle]bool{}
	for _, c := range []Cycle{1, 5, 10, 15} {
		c := c
		q.At(c, func() { fired[c] = true })
	}
	q.RunUntil(10)
	if !fired[1] || !fired[5] || !fired[10] {
		t.Fatalf("events <= 10 not all fired: %v", fired)
	}
	if fired[15] {
		t.Fatal("event at 15 fired early")
	}
	if q.Now() != 10 {
		t.Fatalf("Now() = %d, want 10", q.Now())
	}
	q.RunUntil(20)
	if !fired[15] {
		t.Fatal("event at 15 never fired")
	}
}

func TestRunUntilAdvancesTimeWithNoEvents(t *testing.T) {
	var q Queue
	q.RunUntil(42)
	if q.Now() != 42 {
		t.Fatalf("Now() = %d, want 42", q.Now())
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	var q Queue
	q.RunUntil(100)
	var at Cycle
	q.After(5, func() { at = q.Now() })
	q.Drain()
	if at != 105 {
		t.Fatalf("After(5) fired at %d, want 105", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var q Queue
	q.RunUntil(10)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	q.At(5, func() {})
}

func TestEventsCanScheduleEvents(t *testing.T) {
	var q Queue
	var chain []Cycle
	var step func()
	step = func() {
		chain = append(chain, q.Now())
		if len(chain) < 5 {
			q.After(3, step)
		}
	}
	q.At(0, step)
	q.Drain()
	want := []Cycle{0, 3, 6, 9, 12}
	for i := range want {
		if chain[i] != want[i] {
			t.Fatalf("chain %v, want %v", chain, want)
		}
	}
}

func TestNextEventTime(t *testing.T) {
	var q Queue
	if _, ok := q.NextEventTime(); ok {
		t.Fatal("empty queue reported a next event")
	}
	q.At(9, func() {})
	q.At(3, func() {})
	if w, ok := q.NextEventTime(); !ok || w != 3 {
		t.Fatalf("NextEventTime = %d,%v; want 3,true", w, ok)
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and Now never exceeds the last fired event's time during Drain.
func TestPropertyMonotonicDelivery(t *testing.T) {
	f := func(delays []uint16) bool {
		var q Queue
		var times []Cycle
		for _, d := range delays {
			d := Cycle(d)
			q.At(d, func() { times = append(times, q.Now()) })
		}
		q.Drain()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
