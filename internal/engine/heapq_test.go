package engine

import "container/heap"

// heapQueue is the original container/heap event queue, kept verbatim as
// the differential-test oracle for the timing wheel: TestQueueDifferential
// drives both implementations with identical randomized schedules and
// asserts identical delivery order. It is also the "before" side of
// BenchmarkEngineSteadyState, so the allocation win is measured against the
// real predecessor rather than asserted.
type heapEvent struct {
	when Cycle
	seq  uint64
	fn   func()
}

type refHeap []*heapEvent

func (h refHeap) Len() int { return len(h) }

func (h refHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *refHeap) Push(x any) { *h = append(*h, x.(*heapEvent)) }

func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

type heapQueue struct {
	heap refHeap
	now  Cycle
	seq  uint64
}

func (q *heapQueue) Now() Cycle { return q.now }

func (q *heapQueue) Len() int { return len(q.heap) }

func (q *heapQueue) At(when Cycle, fn func()) {
	if when < q.now {
		panic("engine: event scheduled in the past")
	}
	q.seq++
	heap.Push(&q.heap, &heapEvent{when: when, seq: q.seq, fn: fn})
}

func (q *heapQueue) After(delay Cycle, fn func()) {
	q.At(q.now+delay, fn)
}

func (q *heapQueue) RunUntil(cycle Cycle) {
	for len(q.heap) > 0 && q.heap[0].when <= cycle {
		e := heap.Pop(&q.heap).(*heapEvent)
		q.now = e.when
		e.fn()
	}
	if cycle > q.now {
		q.now = cycle
	}
}

func (q *heapQueue) NextEventTime() (when Cycle, ok bool) {
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.heap[0].when, true
}

func (q *heapQueue) Drain() {
	for len(q.heap) > 0 {
		e := heap.Pop(&q.heap).(*heapEvent)
		q.now = e.when
		e.fn()
	}
}
