package engine

import (
	"math/rand"
	"testing"
)

// eventQueue is the surface both implementations share, so the differential
// tests can drive them through one code path.
type eventQueue interface {
	Now() Cycle
	Len() int
	At(when Cycle, fn func())
	After(delay Cycle, fn func())
	RunUntil(cycle Cycle)
	NextEventTime() (Cycle, bool)
	Drain()
}

// driveRandom executes one randomized schedule against q and returns the
// delivery order as (id, firing-cycle) pairs. The schedule mixes near
// events, far events (beyond the wheel window), same-cycle ties, and
// zero-delay self-reschedules, interleaved with partial RunUntil
// advancement — everything the timing wheel treats specially.
func driveRandom(q eventQueue, seed int64) (ids []int, times []Cycle) {
	rng := rand.New(rand.NewSource(seed))
	next := 0
	var schedule func(depth int, delay Cycle)
	schedule = func(depth int, delay Cycle) {
		id := next
		next++
		q.After(delay, func() {
			ids = append(ids, id)
			times = append(times, q.Now())
			if depth > 0 {
				// Self-reschedule, sometimes with zero delay (same cycle,
				// delivered later in FIFO order) and sometimes far enough to
				// hit the overflow heap.
				switch rng.Intn(4) {
				case 0:
					schedule(depth-1, 0)
				case 1:
					schedule(depth-1, Cycle(rng.Intn(wheelSize-1)))
				case 2:
					schedule(depth-1, Cycle(wheelSize+rng.Intn(4*wheelSize)))
				default:
					schedule(depth-1, Cycle(rng.Intn(8)))
				}
			}
		})
	}
	for i := 0; i < 200; i++ {
		switch rng.Intn(6) {
		case 0: // burst of same-cycle ties
			d := Cycle(rng.Intn(2 * wheelSize))
			for j := 0; j < 1+rng.Intn(5); j++ {
				schedule(rng.Intn(3), d)
			}
		case 1: // far event, overflow territory
			schedule(rng.Intn(3), Cycle(wheelSize+rng.Intn(8*wheelSize)))
		case 2: // partial advancement
			q.RunUntil(q.Now() + Cycle(rng.Intn(3*wheelSize)))
		default:
			schedule(rng.Intn(4), Cycle(rng.Intn(wheelSize)))
		}
	}
	q.Drain()
	return ids, times
}

// TestQueueDifferential drives the timing wheel and the original binary
// heap (heapq_test.go) with identical randomized schedules and asserts
// identical delivery order, including same-cycle ties, zero-delay
// self-reschedules, overflow traffic, and Drain.
func TestQueueDifferential(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		var wheel Queue
		var ref heapQueue
		gotIDs, gotTimes := driveRandom(&wheel, seed)
		wantIDs, wantTimes := driveRandom(&ref, seed)
		if len(gotIDs) != len(wantIDs) {
			t.Fatalf("seed %d: delivered %d events, heap delivered %d", seed, len(gotIDs), len(wantIDs))
		}
		for i := range wantIDs {
			if gotIDs[i] != wantIDs[i] || gotTimes[i] != wantTimes[i] {
				t.Fatalf("seed %d: delivery %d = (id %d, t %d), heap = (id %d, t %d)",
					seed, i, gotIDs[i], gotTimes[i], wantIDs[i], wantTimes[i])
			}
		}
		if wheel.Len() != 0 || ref.Len() != 0 {
			t.Fatalf("seed %d: queues not empty after Drain: wheel %d, heap %d", seed, wheel.Len(), ref.Len())
		}
	}
}

// TestQueueDifferentialNextEventTime cross-checks NextEventTime while
// events sit in both the wheel and the overflow heap.
func TestQueueDifferentialNextEventTime(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var wheel Queue
	var ref heapQueue
	for i := 0; i < 500; i++ {
		if rng.Intn(3) == 0 {
			c := Cycle(rng.Intn(4 * wheelSize))
			wheel.RunUntil(wheel.Now() + c)
			ref.RunUntil(ref.Now() + c)
		} else {
			d := Cycle(rng.Intn(6 * wheelSize))
			wheel.After(d, func() {})
			ref.After(d, func() {})
		}
		gw, okw := wheel.NextEventTime()
		gh, okh := ref.NextEventTime()
		if gw != gh || okw != okh {
			t.Fatalf("step %d: NextEventTime = %d,%v; heap = %d,%v", i, gw, okw, gh, okh)
		}
	}
}

// steadyHandler models one simulated component in steady state: each
// delivery reschedules itself with the next latency from a fixed pattern
// (L1 hit, crossbar, L2 lookup, DRAM, zero-delay completion).
type steadyHandler struct {
	q     *Queue
	count *int
	limit int
	step  int
}

var steadyDelays = [...]Cycle{3, 0, 6, 30, 2, 100, 1, 300}

func (h *steadyHandler) HandleEvent(arg uint64) {
	*h.count++
	if *h.count >= h.limit {
		return
	}
	h.step++
	h.q.ScheduleAfter(steadyDelays[h.step%len(steadyDelays)], h, arg)
}

// TestQueueSteadyStateAllocFree is the allocation-budget regression test on
// the engine itself: after warm-up, the schedule/deliver cycle through
// pre-bound handlers must not allocate at all, so future PRs cannot
// silently reintroduce per-event allocations.
func TestQueueSteadyStateAllocFree(t *testing.T) {
	var q Queue
	count := 0
	handlers := make([]steadyHandler, 16)
	warm := func(limit int) {
		for i := range handlers {
			handlers[i] = steadyHandler{q: &q, count: &count, limit: limit, step: i}
			q.ScheduleAfter(steadyDelays[i%len(steadyDelays)], &handlers[i], uint64(i))
		}
		q.Drain()
	}
	warm(1 << 12) // populate the event pool and overflow capacity
	allocs := testing.AllocsPerRun(10, func() {
		count = 0
		warm(1 << 10)
	})
	if allocs > 0 {
		t.Fatalf("steady-state schedule/deliver allocated %.1f allocs/run, want 0", allocs)
	}
}

// TestQueueScheduleDeliverAllocBound bounds the closure path too: the event
// record itself must come from the pool, so the only allocation is the
// caller's own closure (if it captures).
func TestQueueScheduleDeliverAllocBound(t *testing.T) {
	var q Queue
	for i := 0; i < 1024; i++ { // warm the pool
		q.After(Cycle(i%200), func() {})
	}
	q.Drain()
	allocs := testing.AllocsPerRun(100, func() {
		q.After(3, func() {})
		q.RunUntil(q.Now() + 4)
	})
	if allocs > 0 {
		t.Fatalf("capture-free closure schedule/deliver allocated %.1f allocs/run, want 0", allocs)
	}
}

// BenchmarkEngineSteadyState measures the steady-state event cost of both
// implementations: "wheel" is the production timing wheel driven through
// pre-bound handlers, "wheel-closure" the same queue through the legacy
// closure path, and "heap" the original container/heap queue
// (heapq_test.go). ns/op and allocs/op are per delivered event. The CI
// bench gate (make bench-check) tracks the wheel numbers against
// BENCH_baseline.json.
func BenchmarkEngineSteadyState(b *testing.B) {
	b.Run("wheel", func(b *testing.B) {
		var q Queue
		count := 0
		handlers := make([]steadyHandler, 16)
		b.ReportAllocs()
		b.ResetTimer()
		for i := range handlers {
			handlers[i] = steadyHandler{q: &q, count: &count, limit: b.N, step: i}
			q.ScheduleAfter(steadyDelays[i%len(steadyDelays)], &handlers[i], uint64(i))
		}
		for count < b.N {
			q.Drain()
		}
	})
	b.Run("wheel-closure", func(b *testing.B) {
		var q Queue
		count := 0
		b.ReportAllocs()
		b.ResetTimer()
		var step func()
		step = func() {
			count++
			if count < b.N {
				q.After(steadyDelays[count%len(steadyDelays)], step)
			}
		}
		for i := 0; i < 16 && i < b.N; i++ {
			q.After(steadyDelays[i%len(steadyDelays)], step)
		}
		for count < b.N {
			q.Drain()
		}
	})
	b.Run("heap", func(b *testing.B) {
		var q heapQueue
		count := 0
		b.ReportAllocs()
		b.ResetTimer()
		var step func()
		step = func() {
			count++
			if count < b.N {
				q.After(steadyDelays[count%len(steadyDelays)], step)
			}
		}
		for i := 0; i < 16 && i < b.N; i++ {
			q.After(steadyDelays[i%len(steadyDelays)], step)
		}
		for count < b.N {
			q.Drain()
		}
	})
}
