// Package engine provides the deterministic discrete-event core used by the
// DWS simulator. Components schedule callbacks at absolute cycle times on an
// EventQueue; the simulation driver interleaves event delivery with
// per-cycle ticks of the cycle-driven components (the WPU pipelines).
//
// Determinism matters: every experiment in the paper is a relative
// comparison between configurations, so two runs of the same configuration
// must produce identical cycle counts. Events scheduled for the same cycle
// are delivered in FIFO order of scheduling.
package engine

import "container/heap"

// Cycle is a point in simulated time, measured in WPU clock cycles.
type Cycle uint64

// Event is a callback scheduled to run at a specific cycle.
type Event struct {
	when Cycle
	seq  uint64 // tie-break: FIFO among events at the same cycle
	fn   func()
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*Event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Queue is a deterministic event queue. The zero value is ready to use.
type Queue struct {
	heap eventHeap
	now  Cycle
	seq  uint64
}

// Now returns the current simulated cycle.
func (q *Queue) Now() Cycle { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// At schedules fn to run at absolute cycle when. Scheduling in the past
// (when < Now) is a programming error and panics, because it would make the
// simulation non-causal.
func (q *Queue) At(when Cycle, fn func()) {
	if when < q.now {
		panic("engine: event scheduled in the past")
	}
	q.seq++
	heap.Push(&q.heap, &Event{when: when, seq: q.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (q *Queue) After(delay Cycle, fn func()) {
	q.At(q.now+delay, fn)
}

// RunUntil delivers all events with time <= cycle and advances Now to cycle.
func (q *Queue) RunUntil(cycle Cycle) {
	for len(q.heap) > 0 && q.heap[0].when <= cycle {
		e := heap.Pop(&q.heap).(*Event)
		q.now = e.when
		e.fn()
	}
	if cycle > q.now {
		q.now = cycle
	}
}

// NextEventTime reports the time of the earliest pending event. ok is false
// when the queue is empty.
func (q *Queue) NextEventTime() (when Cycle, ok bool) {
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.heap[0].when, true
}

// Drain runs events until the queue is empty, advancing time as needed.
// It is primarily useful in tests of event-driven components.
func (q *Queue) Drain() {
	for len(q.heap) > 0 {
		e := heap.Pop(&q.heap).(*Event)
		q.now = e.when
		e.fn()
	}
}
