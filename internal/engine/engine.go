// Package engine provides the deterministic discrete-event core used by the
// DWS simulator. Components schedule callbacks at absolute cycle times on an
// EventQueue; the simulation driver interleaves event delivery with
// per-cycle ticks of the cycle-driven components (the WPU pipelines).
//
// Determinism matters: every experiment in the paper is a relative
// comparison between configurations, so two runs of the same configuration
// must produce identical cycle counts. Events scheduled for the same cycle
// are delivered in FIFO order of scheduling.
//
// # Implementation
//
// The queue is a hierarchical timing wheel: events within the next
// wheelSize cycles go into a bucket indexed by the low bits of their
// timestamp, and because the window is exactly wheelSize cycles wide, each
// bucket only ever holds events of a single timestamp — an intrusive FIFO
// list that preserves scheduling order for free. Events further out land in
// a small overflow min-heap ordered by (when, seq). Nearly all simulator
// latencies (L1 hit, L2 lookup, crossbar, DRAM) are below the window, so
// the steady-state path never touches the heap.
//
// Delivery order is exactly the (when, seq) FIFO order of the old binary
// heap (kept as the differential-test oracle in heapq_test.go): at each
// timestamp T the overflow events are drained before the bucket list, which
// is correct because an event can only be in overflow at T if it was
// scheduled while T-now >= wheelSize, and an event can only be in the
// bucket if it was scheduled while T-now < wheelSize — now is monotonic, so
// every overflow event at T carries a strictly smaller seq than every
// bucket event at T.
//
// Event records come from a free list and callbacks dispatch through the
// Handler interface with a caller-chosen uint64 argument, so the
// steady-state schedule/deliver cycle allocates nothing (see
// TestQueueSteadyStateAllocFree and BenchmarkEngineSteadyState).
package engine

import "math/bits"

// Cycle is a point in simulated time, measured in WPU clock cycles.
type Cycle uint64

// Handler is the allocation-free callback path: components pre-bind one
// Handler per completion kind at construction time and route per-event
// context through the uint64 argument (a line address, a pool index), so
// scheduling an event captures nothing.
type Handler interface {
	HandleEvent(arg uint64)
}

// FuncHandler adapts a plain closure to Handler for call sites that are not
// allocation-sensitive (tests, one-shot setup). Converting it to the
// Handler interface allocates, so hot paths implement Handler directly.
type FuncHandler func()

// HandleEvent runs the wrapped closure, ignoring the argument.
func (f FuncHandler) HandleEvent(uint64) { f() }

const (
	wheelBits = 8
	// wheelSize is the near-future window in cycles. Every event scheduled
	// less than wheelSize cycles ahead goes into the wheel; the window is
	// sized to cover all per-hop latencies of the simulated machine
	// (Table 3 maxes out at the 100-cycle DRAM access).
	wheelSize = 1 << wheelBits
	wheelMask = wheelSize - 1
)

// event is one scheduled callback; pooled on a free list and linked
// intrusively both in wheel buckets and on the free list.
type event struct {
	when Cycle
	seq  uint64 // tie-break: FIFO among events at the same cycle
	arg  uint64
	h    Handler
	fn   func() // legacy closure path; nil when h is used
	next *event
}

// bucket is one wheel slot: a FIFO list of events sharing a timestamp.
type bucket struct {
	head, tail *event
}

// Queue is a deterministic event queue. The zero value is ready to use.
type Queue struct {
	now Cycle
	seq uint64
	n   int // total pending events

	wheel    [wheelSize]bucket
	occupied [wheelSize / 64]uint64 // bitmap of non-empty buckets
	wheelN   int

	// overflow is a min-heap by (when, seq) of events at or beyond the
	// wheel window; the backing array is reused across pops.
	overflow []*event

	// nextDue caches the earliest pending timestamp (exact whenever n > 0):
	// schedule lowers it, delivery recomputes it — so the per-cycle
	// RunUntil call in the simulation driver is one comparison when nothing
	// is due.
	nextDue Cycle

	free *event // event pool
}

// Now returns the current simulated cycle.
func (q *Queue) Now() Cycle { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return q.n }

func (q *Queue) get() *event {
	e := q.free
	if e == nil {
		return new(event)
	}
	q.free = e.next
	e.next = nil
	return e
}

func (q *Queue) put(e *event) {
	e.h = nil
	e.fn = nil
	e.next = q.free
	q.free = e
}

// At schedules fn to run at absolute cycle when. Scheduling in the past
// (when < Now) is a programming error and panics, because it would make the
// simulation non-causal. The closure path is kept for tests and cold setup
// code; hot paths use ScheduleAt.
func (q *Queue) At(when Cycle, fn func()) {
	if when < q.now {
		panic("engine: event scheduled in the past")
	}
	e := q.get()
	q.seq++
	e.when, e.seq, e.fn = when, q.seq, fn
	q.schedule(e)
}

// After schedules fn to run delay cycles from now.
func (q *Queue) After(delay Cycle, fn func()) {
	q.At(q.now+delay, fn)
}

// ScheduleAt schedules h.HandleEvent(arg) at absolute cycle when — the
// allocation-free path. Scheduling in the past panics, as with At.
func (q *Queue) ScheduleAt(when Cycle, h Handler, arg uint64) {
	if when < q.now {
		panic("engine: event scheduled in the past")
	}
	e := q.get()
	q.seq++
	e.when, e.seq, e.h, e.arg = when, q.seq, h, arg
	q.schedule(e)
}

// ScheduleAfter schedules h.HandleEvent(arg) delay cycles from now.
func (q *Queue) ScheduleAfter(delay Cycle, h Handler, arg uint64) {
	q.ScheduleAt(q.now+delay, h, arg)
}

func (q *Queue) schedule(e *event) {
	if q.n == 0 || e.when < q.nextDue {
		q.nextDue = e.when
	}
	q.n++
	if e.when-q.now < wheelSize {
		idx := int(e.when) & wheelMask
		b := &q.wheel[idx]
		if b.tail == nil {
			b.head = e
			q.occupied[idx>>6] |= 1 << uint(idx&63)
		} else {
			b.tail.next = e
		}
		b.tail = e
		q.wheelN++
		return
	}
	q.overflow = append(q.overflow, e)
	q.siftUp(len(q.overflow) - 1)
}

// less orders the overflow heap by (when, seq).
func evLess(a, b *event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

func (q *Queue) siftUp(i int) {
	h := q.overflow
	for i > 0 {
		p := (i - 1) / 2
		if !evLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (q *Queue) popOverflow() *event {
	h := q.overflow
	e := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = nil
	q.overflow = h[:last]
	// Sift down.
	h = q.overflow
	i := 0
	for {
		l := 2*i + 1
		if l >= len(h) {
			break
		}
		m := l
		if r := l + 1; r < len(h) && evLess(h[r], h[l]) {
			m = r
		}
		if !evLess(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return e
}

// wheelNext returns the earliest timestamp present in the wheel; it must
// only be called when wheelN > 0. Scanning bucket indexes upward from
// now's slot (wrapping) visits timestamps in increasing order because the
// wheel only holds events in [now, now+wheelSize).
func (q *Queue) wheelNext() Cycle {
	start := int(q.now) & wheelMask
	wi := start >> 6
	w := q.occupied[wi] &^ (1<<uint(start&63) - 1)
	for i := 0; i <= len(q.occupied); i++ {
		if w != 0 {
			idx := wi<<6 + bits.TrailingZeros64(w)
			return q.wheel[idx].head.when
		}
		wi++
		if wi == len(q.occupied) {
			wi = 0
		}
		w = q.occupied[wi]
	}
	panic("engine: wheel events pending but no occupied bucket")
}

// nextTime reports the earliest pending timestamp.
func (q *Queue) nextTime() (Cycle, bool) {
	if q.n == 0 {
		return 0, false
	}
	var t Cycle
	ok := false
	if q.wheelN > 0 {
		t, ok = q.wheelNext(), true
	}
	if len(q.overflow) > 0 {
		if ot := q.overflow[0].when; !ok || ot < t {
			t, ok = ot, true
		}
	}
	return t, ok
}

func (q *Queue) dispatch(e *event) {
	h, fn, arg := e.h, e.fn, e.arg
	q.put(e) // recycle before dispatch so the handler can reuse it
	if fn != nil {
		fn()
		return
	}
	h.HandleEvent(arg)
}

// runAt delivers every event at timestamp t — overflow first (see the
// package comment for why that is exactly seq order), then the bucket FIFO,
// including events the handlers themselves schedule for t — and recomputes
// nextDue.
func (q *Queue) runAt(t Cycle) {
	q.now = t
	for len(q.overflow) > 0 && q.overflow[0].when == t {
		q.n--
		q.dispatch(q.popOverflow())
	}
	idx := int(t) & wheelMask
	b := &q.wheel[idx]
	for b.head != nil {
		e := b.head
		b.head = e.next
		if b.head == nil {
			b.tail = nil
		}
		q.wheelN--
		q.n--
		q.dispatch(e)
	}
	q.occupied[idx>>6] &^= 1 << uint(idx&63)
	if t2, ok := q.nextTime(); ok {
		q.nextDue = t2
	}
}

// RunUntil delivers all events with time <= cycle and advances Now to cycle.
func (q *Queue) RunUntil(cycle Cycle) {
	for q.n > 0 && q.nextDue <= cycle {
		q.runAt(q.nextDue)
	}
	if cycle > q.now {
		q.now = cycle
	}
}

// NextEventTime reports the time of the earliest pending event. ok is false
// when the queue is empty.
func (q *Queue) NextEventTime() (when Cycle, ok bool) {
	if q.n == 0 {
		return 0, false
	}
	return q.nextDue, true
}

// Drain runs events until the queue is empty, advancing time as needed.
// It is primarily useful in tests of event-driven components.
func (q *Queue) Drain() {
	for q.n > 0 {
		q.runAt(q.nextDue)
	}
}
