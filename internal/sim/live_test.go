package sim

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/program"
)

// runLiveKernel executes a small kernel with a Live publisher attached
// (capturing every cycle so even short runs publish) and finalised.
func runLiveKernel(t *testing.T) *Live {
	t.Helper()
	cfg := DefaultConfig()
	cfg.WPUs = 1
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lv := NewLive(1)
	lv.SetMeta("nop", "Conv")
	lv.Attach(sys)
	b := program.NewBuilder("nop")
	b.Nop()
	b.Nop()
	b.Halt()
	if _, err := sys.RunKernel(b.MustBuild(), Threads(16, nil)); err != nil {
		t.Fatal(err)
	}
	lv.Finish(sys)
	return lv
}

func TestLiveSnapshotAndInvariant(t *testing.T) {
	lv := runLiveKernel(t)
	snap := lv.Snapshot()
	if !snap.Done {
		t.Fatal("Finish did not mark the snapshot done")
	}
	if snap.Bench != "nop" || snap.Scheme != "Conv" {
		t.Fatalf("meta = %q/%q", snap.Bench, snap.Scheme)
	}
	if snap.Total.Cycles() == 0 {
		t.Fatal("snapshot has no cycles")
	}
	if snap.Total.StallSum() != snap.Total.Cycles() {
		t.Fatalf("taxonomy sum %d != cycles %d", snap.Total.StallSum(), snap.Total.Cycles())
	}
	if len(snap.WPUs) != 1 || len(snap.L1Outstanding) != 1 {
		t.Fatalf("per-WPU slices sized %d/%d, want 1/1", len(snap.WPUs), len(snap.L1Outstanding))
	}
}

func TestLiveJSONEndpoint(t *testing.T) {
	lv := runLiveKernel(t)
	rec := httptest.NewRecorder()
	lv.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var snap LiveSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot does not parse: %v", err)
	}
	if snap.Total.StallSum() != snap.Total.Cycles() {
		t.Fatalf("served taxonomy sum %d != cycles %d", snap.Total.StallSum(), snap.Total.Cycles())
	}
}

func TestLivePrometheusEndpoint(t *testing.T) {
	lv := runLiveKernel(t)
	rec := httptest.NewRecorder()
	lv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`dwsim_cycles_total{bench="nop",scheme="Conv"} `,
		`dwsim_cycle_bucket_total{bench="nop",scheme="Conv",cause="busy"} `,
		`dwsim_cycle_bucket_total{bench="nop",scheme="Conv",cause="mem_divergent"} `,
		`dwsim_run_done{bench="nop",scheme="Conv"} 1`,
		"# TYPE dwsim_cycle_bucket_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
	// Every exposition line must be a comment or `name{labels} value`.
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if parts := strings.Fields(line); len(parts) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}
