// Package sim assembles the full simulated machine of the paper: four
// 16-wide WPUs with four warps each, private L1 caches, a crossbar, a
// shared inclusive MESI-coherent L2, and DRAM (Table 3). It drives the
// cycle/event loop, coordinates kernel-wide barriers, and exposes the
// aggregate statistics the experiment harness consumes.
package sim

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/program"
	"repro/internal/wpu"
)

// Distribution selects how global thread IDs map onto WPUs.
type Distribution int

const (
	// DistBlock assigns consecutive thread IDs to the same WPU (and warp):
	// the locality-aware assignment the paper uses (§3.1, citing [18]).
	DistBlock Distribution = iota
	// DistInterleave deals thread IDs round-robin across WPUs — the
	// locality-oblivious alternative, useful to reproduce the claim that
	// neighbouring tasks belong together.
	DistInterleave
)

// Config describes the whole machine.
type Config struct {
	WPUs int
	WPU  wpu.Config
	Hier mem.HierarchyConfig
	// Dist selects the thread-to-WPU mapping (default DistBlock).
	Dist Distribution
	// Trace attaches the observability sink to every component of the
	// machine (events) and enables the interval timeline sampler (every
	// Trace.Interval cycles). nil — the default, and the only value the
	// experiment cache key can denote — runs uninstrumented.
	Trace *obs.Trace
}

// DefaultConfig returns the paper's Table 3 configuration: 4 WPUs, each
// 1 GHz in-order with 4 warps × 16 lanes; 32 KB 8-way L1 D-caches with
// 3-cycle hits, 128 B lines and 32 MSHRs; a 4 MB 16-way shared L2 with
// 30-cycle lookup; 100-cycle DRAM.
func DefaultConfig() Config {
	return Config{
		WPUs: 4,
		WPU: wpu.Config{
			Warps: 4,
			Width: 16,
		},
		Hier: mem.HierarchyConfig{
			L1: mem.L1Config{
				SizeBytes: 32 * 1024,
				Ways:      8,
				LineSize:  128,
				HitLat:    3,
				Banks:     16,
				MSHRs:     32,
			},
			L2: mem.L2Config{
				SizeBytes: 4 * 1024 * 1024,
				Ways:      16,
				LineSize:  128,
				LookupLat: 30,
				ProbeLat:  12,
				MSHRs:     256,
			},
			XbarLat:   6,
			XbarOcc:   2,
			MemBusOcc: 8,
			DRAMLat:   100,
		},
	}
}

// CostParamsFor translates a machine configuration plus a launch thread
// count into the static cost model's parameter block (the Launch-time
// mirror of program.CostModelFor's Build-time defaults). MemTxWorst
// composes the worst path one line transaction can take through this
// hierarchy: L1 probe + crossbar there and back with occupancy + L2
// lookup + L2 probe + memory bus both ways + two DRAM accesses (the
// second covering a dirty-line writeback or queueing behind one).
func CostParamsFor(cfg Config, threads int) program.CostParams {
	w := cfg.WPU.Normalized()
	if cfg.Dist == DistInterleave {
		w.LaneTidStep = cfg.WPUs
	}
	if w.LaneTidStep <= 0 {
		w.LaneTidStep = 1
	}
	h := cfg.Hier
	memTx := h.L1.HitLat + 2*(h.XbarLat+h.XbarOcc) + h.L2.LookupLat + h.L2.ProbeLat + 2*h.MemBusOcc + 2*h.DRAMLat
	return program.CostParams{
		WPUs:        cfg.WPUs,
		Warps:       w.Warps,
		Width:       w.Width,
		Threads:     threads,
		HitLat:      int(h.L1.HitLat),
		MemTxWorst:  int(memTx),
		IMissLat:    w.IMissLat,
		ICacheLines: w.ICacheLines,
		Mem: program.MemParams{
			Lanes:     w.Width,
			LineBytes: int64(h.L1.LineSize),
			Banks:     h.L1.Banks,
			TidStep:   int64(w.LaneTidStep),
		},
	}
}

// System is one assembled machine instance. The simulated clock persists
// across kernels so multi-pass workloads accumulate a single timeline.
type System struct {
	Cfg  Config
	Q    *engine.Queue
	Hier *mem.Hierarchy
	WPUs []*wpu.WPU

	cycle engine.Cycle

	// obsPrev holds the per-WPU counter snapshot at the previous timeline
	// sample, so each Sample carries interval deltas.
	obsPrev []wpu.Stats

	// Tracer, when set, is invoked once per simulated cycle after all WPUs
	// ticked — the hook behind cmd/dwstrace and custom instrumentation.
	Tracer func(cycle uint64)
}

// New builds a machine.
func New(cfg Config) (*System, error) {
	if cfg.WPUs <= 0 {
		return nil, fmt.Errorf("sim: need at least one WPU")
	}
	cfg.Hier.Trace = cfg.Trace
	// Under interleaved distribution adjacent lanes of a warp hold thread
	// IDs one WPU-count apart; the WPUs scale their static per-pc
	// transaction bounds by this step so the concordance check stays sound.
	if cfg.Dist == DistInterleave {
		cfg.WPU.LaneTidStep = cfg.WPUs
	}
	s := &System{Cfg: cfg, Q: &engine.Queue{}}
	s.Hier = mem.NewHierarchy(s.Q, cfg.WPUs, cfg.Hier)
	for i := 0; i < cfg.WPUs; i++ {
		w, err := wpu.New(i, s.Q, cfg.WPU, s.Hier.L1s[i], s.Hier.Mem, cfg.Trace)
		if err != nil {
			return nil, err
		}
		s.WPUs = append(s.WPUs, w)
	}
	return s, nil
}

// Memory exposes the functional memory for workload setup/verification.
func (s *System) Memory() *mem.Memory { return s.Hier.Mem }

// Cycles returns the simulated time so far.
func (s *System) Cycles() uint64 { return uint64(s.cycle) }

// ThreadCapacity returns the machine's hardware thread count.
func (s *System) ThreadCapacity() int {
	return s.Cfg.WPUs * s.WPUs[0].ThreadCapacity()
}

// Threads builds n initial register files with the launch ABI (R1 = global
// thread ID, R2 = thread count, R3 = WPU-local index filled at dispatch)
// and applies setup to each.
func Threads(n int, setup func(tid int, r *isa.RegFile)) []isa.RegFile {
	regs := make([]isa.RegFile, n)
	for i := range regs {
		regs[i].Set(1, int64(i))
		regs[i].Set(2, int64(n))
		if setup != nil {
			setup(i, &regs[i])
		}
	}
	return regs
}

// RunKernel distributes threads block-wise over the WPUs (neighbouring
// thread IDs share a warp, the locality-aware assignment of §3.1) and runs
// the machine until every thread halts. It returns the cycles this kernel
// took.
func (s *System) RunKernel(p *program.Program, threads []isa.RegFile) (uint64, error) {
	if len(threads) == 0 {
		return 0, fmt.Errorf("sim: no threads")
	}
	if len(threads) > s.ThreadCapacity() {
		return 0, fmt.Errorf("sim: %d threads exceed machine capacity %d", len(threads), s.ThreadCapacity())
	}
	chunks := make([][]isa.RegFile, s.Cfg.WPUs)
	switch s.Cfg.Dist {
	case DistInterleave:
		for i := range threads {
			w := i % s.Cfg.WPUs
			chunks[w] = append(chunks[w], threads[i])
		}
	default: // DistBlock
		per := (len(threads) + s.Cfg.WPUs - 1) / s.Cfg.WPUs
		for i := range chunks {
			lo := i * per
			if lo >= len(threads) {
				break
			}
			chunks[i] = threads[lo:min(lo+per, len(threads))]
		}
	}
	for i, w := range s.WPUs {
		chunk := chunks[i]
		for j := range chunk {
			chunk[j].Set(3, int64(j))
		}
		if err := w.Launch(p, chunk); err != nil {
			return 0, err
		}
	}
	start := s.cycle
	if err := s.run(); err != nil {
		return 0, err
	}
	return uint64(s.cycle - start), nil
}

func (s *System) run() error {
	for {
		done := true
		for _, w := range s.WPUs {
			if !w.Done() {
				done = false
				break
			}
		}
		if done {
			return nil
		}

		s.Q.RunUntil(s.cycle)
		progressBefore := s.totalProgress()
		// Barrier state only changes inside a WPU's own Tick (or the release
		// below), so folding the at-barrier check into the tick loop sees
		// exactly what a separate scan after the loop would.
		atBarrier := false
		for _, w := range s.WPUs {
			w.Tick()
			if w.AnyAtBarrier() {
				atBarrier = true
			}
		}
		released := false
		if atBarrier && s.allBarrierReady() {
			for _, w := range s.WPUs {
				w.ReleaseBarrier()
			}
			released = true
		}
		if s.Tracer != nil {
			s.Tracer(uint64(s.cycle))
		}
		if t := s.Cfg.Trace; t != nil && t.Interval != 0 && uint64(s.cycle)%t.Interval == 0 {
			s.sampleTimeline(uint64(s.cycle))
		}
		if s.Q.Len() == 0 && s.totalProgress() == progressBefore && !released {
			// Nothing pending, nothing issued, nothing released: the machine
			// can never make progress again.
			var dump string
			for _, w := range s.WPUs {
				dump += w.DebugDump()
			}
			return fmt.Errorf("sim: deadlock at cycle %d\n%s", s.cycle, dump)
		}
		s.cycle++
	}
}

func (s *System) totalProgress() uint64 {
	var n uint64
	for _, w := range s.WPUs {
		n += w.Progress()
	}
	return n
}

func (s *System) allBarrierReady() bool {
	for _, w := range s.WPUs {
		if !w.BarrierReady() {
			return false
		}
	}
	return true
}

// sampleTimeline appends one timeline row per WPU to the observability
// sink: interval deltas of the cycle/issue accounting plus instantaneous
// WST, scheduler and MSHR occupancies.
func (s *System) sampleTimeline(cycle uint64) {
	t := s.Cfg.Trace
	if s.obsPrev == nil {
		s.obsPrev = make([]wpu.Stats, len(s.WPUs))
	}
	l2 := s.Hier.L2.OutstandingMisses()
	for i, w := range s.WPUs {
		st := w.Stats
		prev := &s.obsPrev[i]
		t.AddSample(obs.Sample{
			Cycle:       cycle,
			WPU:         i,
			Busy:        st.BusyCycles - prev.BusyCycles,
			StallMem:    st.MemStallCycles() - prev.MemStallCycles(),
			StallOther:  st.StallOtherCycles() - prev.StallOtherCycles(),
			Issued:      st.Issued - prev.Issued,
			WidthAccum:  st.WidthAccum - prev.WidthAccum,
			WSTOcc:      w.LiveSplits(),
			Resident:    w.ResidentSplits(),
			SlotWaiters: w.SlotWaiters(),
			L1MSHR:      s.Hier.L1s[i].OutstandingMisses(),
			L2MSHR:      l2,
		})
		s.obsPrev[i] = st
	}
}

// TotalStats sums the per-WPU statistics.
func (s *System) TotalStats() wpu.Stats {
	var t wpu.Stats
	for _, w := range s.WPUs {
		t.Add(&w.Stats)
	}
	return t
}

// L1Stats sums the private-cache statistics.
func (s *System) L1Stats() mem.L1Stats {
	var t mem.L1Stats
	for _, c := range s.Hier.L1s {
		t.Add(c.Stats)
	}
	return t
}

// L2Stats returns the shared-cache statistics.
func (s *System) L2Stats() mem.L2Stats { return s.Hier.L2.Stats }
