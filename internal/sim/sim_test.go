package sim

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/wpu"
)

func TestDefaultConfigMatchesTable3(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.WPUs != 4 {
		t.Fatalf("WPUs = %d, want 4", cfg.WPUs)
	}
	if cfg.WPU.Warps != 4 || cfg.WPU.Width != 16 {
		t.Fatalf("WPU = %d warps x %d lanes, want 4x16", cfg.WPU.Warps, cfg.WPU.Width)
	}
	if cfg.Hier.L1.SizeBytes != 32*1024 || cfg.Hier.L1.Ways != 8 || cfg.Hier.L1.HitLat != 3 {
		t.Fatalf("L1 config deviates from Table 3: %+v", cfg.Hier.L1)
	}
	if cfg.Hier.L2.SizeBytes != 4*1024*1024 || cfg.Hier.L2.Ways != 16 || cfg.Hier.L2.LookupLat != 30 {
		t.Fatalf("L2 config deviates from Table 3: %+v", cfg.Hier.L2)
	}
	if cfg.Hier.L1.LineSize != 128 || cfg.Hier.L2.LineSize != 128 {
		t.Fatal("line size must be 128 B")
	}
	if cfg.Hier.DRAMLat != 100 {
		t.Fatalf("DRAM latency = %d, want 100", cfg.Hier.DRAMLat)
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WPUs = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("0 WPUs accepted")
	}
	cfg = DefaultConfig()
	cfg.WPU.Width = 128
	if _, err := New(cfg); err == nil {
		t.Fatal("width 128 accepted")
	}
}

func TestThreadsABI(t *testing.T) {
	regs := Threads(5, func(tid int, r *isa.RegFile) {
		r.Set(4, int64(100+tid))
	})
	if len(regs) != 5 {
		t.Fatalf("%d threads, want 5", len(regs))
	}
	for i := range regs {
		if regs[i].Get(1) != int64(i) {
			t.Fatalf("thread %d: R1 = %d", i, regs[i].Get(1))
		}
		if regs[i].Get(2) != 5 {
			t.Fatalf("thread %d: R2 = %d", i, regs[i].Get(2))
		}
		if regs[i].Get(4) != int64(100+i) {
			t.Fatalf("thread %d: R4 = %d", i, regs[i].Get(4))
		}
	}
}

func TestRunKernelRejectsBadLaunches(t *testing.T) {
	sys, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b := program.NewBuilder("t")
	b.Halt()
	p := b.MustBuild()
	if _, err := sys.RunKernel(p, nil); err == nil {
		t.Fatal("empty launch accepted")
	}
	too := Threads(sys.ThreadCapacity()+1, nil)
	if _, err := sys.RunKernel(p, too); err == nil {
		t.Fatal("oversized launch accepted")
	}
}

func TestBarrierIgnoresHaltedThreads(t *testing.T) {
	// Barriers synchronise live threads: a warp that halts before a
	// barrier must not deadlock the warps that reach it. The branch is
	// uniform within each warp (tid>>2), so warp 1 halts early while
	// warp 0 parks at the barrier.
	b := program.NewBuilder("early-halt")
	b.Shri(9, 1, 2)
	b.Andi(9, 9, 1)
	b.Bnez(9, "skip")
	b.Barrier()
	b.Label("skip")
	b.Halt()
	p := b.MustBuild()

	cfg := DefaultConfig()
	cfg.WPUs = 1
	cfg.WPU.Warps = 2
	cfg.WPU.Width = 4
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunKernel(p, Threads(8, nil)); err != nil {
		t.Fatalf("early-halting warp deadlocked the barrier: %v", err)
	}
}

func TestClockAccumulatesAcrossKernels(t *testing.T) {
	b := program.NewBuilder("nop")
	b.Nop()
	b.Halt()
	p := b.MustBuild()
	cfg := DefaultConfig()
	cfg.WPUs = 1
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := sys.RunKernel(p, Threads(16, nil))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := sys.RunKernel(p, Threads(16, nil))
	if err != nil {
		t.Fatal(err)
	}
	if c1 == 0 || c2 == 0 {
		t.Fatal("kernels took zero cycles")
	}
	if sys.Cycles() < uint64(c1+c2) {
		t.Fatalf("clock %d < %d + %d", sys.Cycles(), c1, c2)
	}
}

func TestThreadDistributionIsBlockwise(t *testing.T) {
	// Thread i's WPU-local index (R3) must restart per WPU: neighbouring
	// global IDs share warps (§3.1 locality-aware assignment).
	cfg := DefaultConfig()
	cfg.WPUs = 2
	cfg.WPU.Warps = 1
	cfg.WPU.Width = 4
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := sys.Memory()
	out := m.AllocWords(8)
	// Kernel: out[tid] = R3 (the WPU-local index).
	b := program.NewBuilder("local")
	b.Shli(8, 1, 3)
	b.Add(9, 8, 4)
	b.St(3, 9, 0)
	b.Halt()
	p := b.MustBuild()
	threads := Threads(8, func(tid int, r *isa.RegFile) {
		r.Set(4, int64(out))
	})
	if _, err := sys.RunKernel(p, threads); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		want := int64(i % 4) // two WPUs x 4 threads, blockwise
		if got := m.Read(out + uint64(i)*8); got != want {
			t.Fatalf("thread %d local index = %d, want %d", i, got, want)
		}
	}
}

func TestTotalStatsAggregates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WPU = wpu.SchemeConv.Apply(cfg.WPU)
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := program.NewBuilder("count")
	b.Nop()
	b.Nop()
	b.Halt()
	p := b.MustBuild()
	n := sys.ThreadCapacity()
	if _, err := sys.RunKernel(p, Threads(n, nil)); err != nil {
		t.Fatal(err)
	}
	st := sys.TotalStats()
	// 3 instructions per warp x 16 warps across the machine.
	wantIssued := uint64(3 * (n / 16))
	if st.Issued != wantIssued {
		t.Fatalf("Issued = %d, want %d", st.Issued, wantIssued)
	}
	if st.ThreadOps != uint64(3*n) {
		t.Fatalf("ThreadOps = %d, want %d", st.ThreadOps, 3*n)
	}
}

func TestInterleavedDistribution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WPUs = 2
	cfg.WPU.Warps = 1
	cfg.WPU.Width = 4
	cfg.Dist = DistInterleave
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := sys.Memory()
	out := m.AllocWords(8)
	// Kernel: out[tid] = R3 (the WPU-local index).
	b := program.NewBuilder("local")
	b.Shli(8, 1, 3)
	b.Add(9, 8, 4)
	b.St(3, 9, 0)
	b.Halt()
	p := b.MustBuild()
	threads := Threads(8, func(tid int, r *isa.RegFile) {
		r.Set(4, int64(out))
	})
	if _, err := sys.RunKernel(p, threads); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		want := int64(i / 2) // round-robin: tids 0,2,4,6 on WPU0 as locals 0..3
		if got := m.Read(out + uint64(i)*8); got != want {
			t.Fatalf("thread %d local index = %d, want %d", i, got, want)
		}
	}
}

// The paper's locality claim (§3.1, [18]): block assignment of neighbouring
// tasks outperforms interleaving them across WPUs on a spatially local
// workload.
func TestBlockDistributionExploitsLocality(t *testing.T) {
	run := func(d Distribution) uint64 {
		cfg := DefaultConfig()
		cfg.Dist = d
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m := sys.Memory()
		const n = 16 * 1024
		in := m.AllocWords(n)
		out := m.AllocWords(n)
		// Streaming copy: thread t handles elements t, t+T, ... —
		// consecutive tids share cache lines.
		b := program.NewBuilder("copy")
		b.Mov(8, 1)
		b.Label("loop")
		b.Slti(9, 8, n)
		b.Beqz(9, "done")
		b.Shli(10, 8, 3)
		b.Add(11, 4, 10)
		b.Ld(12, 11, 0)
		b.Add(13, 5, 10)
		b.St(12, 13, 0)
		b.Add(8, 8, 2)
		b.Jmp("loop")
		b.Label("done")
		b.Halt()
		p := b.MustBuild()
		threads := Threads(sys.ThreadCapacity(), func(tid int, r *isa.RegFile) {
			r.Set(4, int64(in))
			r.Set(5, int64(out))
		})
		cycles, err := sys.RunKernel(p, threads)
		if err != nil {
			t.Fatal(err)
		}
		return cycles
	}
	block := run(DistBlock)
	inter := run(DistInterleave)
	if block > inter {
		t.Fatalf("block distribution (%d cycles) slower than interleaved (%d): locality assignment broken", block, inter)
	}
}
