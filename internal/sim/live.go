package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"repro/internal/mem"
	"repro/internal/wpu"
)

// Live publishes a periodically refreshed snapshot of a running System
// over HTTP — the engine behind `dwsim -httpobs`. The simulation
// goroutine refreshes the snapshot every `every` cycles from inside the
// System's Tracer hook; HTTP handlers only ever read the last published
// copy under the mutex, so the endpoint never blocks the machine.
//
// Endpoints:
//
//	/metrics    Prometheus text format (counters + gauges)
//	everything else  the full LiveSnapshot as indented JSON
//
// Live carries no goroutines of its own: the caller owns the HTTP server
// (and its listener goroutine) so the simulator tree stays free of
// unmanaged concurrency. Under a concurrent session (-bench all -j N)
// every machine publishes into the same Live; the snapshot shows
// whichever run refreshed last, which is the intended "what is the
// simulator doing right now" semantics.
type Live struct {
	every uint64

	mu     sync.Mutex
	bench  string
	scheme string
	snap   LiveSnapshot
}

// LiveSnapshot is one published state of the machine. Cycle-taxonomy
// invariants hold within it: Total.StallSum() == Total.Cycles().
type LiveSnapshot struct {
	Bench  string `json:"bench,omitempty"`
	Scheme string `json:"scheme,omitempty"`
	Cycle  uint64 `json:"cycle"`
	Done   bool   `json:"done"`

	Total wpu.Stats   `json:"total"`
	WPUs  []wpu.Stats `json:"wpus"`
	L1    mem.L1Stats `json:"l1"`
	L2    mem.L2Stats `json:"l2"`

	L1Outstanding []int  `json:"l1_outstanding"` // busy L1 MSHRs per WPU
	L2Outstanding int    `json:"l2_outstanding"` // busy L2 MSHRs
	DRAMAccesses  uint64 `json:"dram_accesses"`
}

// NewLive returns a publisher refreshing every `every` cycles (0 selects
// a default coarse enough to be invisible in the run time).
func NewLive(every uint64) *Live {
	if every == 0 {
		every = 4096
	}
	return &Live{every: every}
}

// SetMeta labels subsequent snapshots with the benchmark and scheme about
// to run.
func (lv *Live) SetMeta(bench, scheme string) {
	lv.mu.Lock()
	lv.bench, lv.scheme = bench, scheme
	lv.mu.Unlock()
}

// Attach hooks the publisher into sys's per-cycle Tracer, chaining any
// tracer already installed.
func (lv *Live) Attach(sys *System) {
	prev := sys.Tracer
	sys.Tracer = func(cycle uint64) {
		if prev != nil {
			prev(cycle)
		}
		if cycle%lv.every == 0 {
			lv.capture(sys, cycle, false)
		}
	}
}

// Finish publishes the final state of a completed run; call it from the
// goroutine that drove the simulation (or after it returned).
func (lv *Live) Finish(sys *System) {
	lv.capture(sys, sys.Cycles(), true)
}

// capture runs on the simulation goroutine. Everything placed in the
// snapshot is freshly allocated or deep-copied (Stats.Add copies the
// ThreadMisses slice) so HTTP readers never share mutable state with the
// still-running machine.
func (lv *Live) capture(sys *System, cycle uint64, done bool) {
	wpus := make([]wpu.Stats, len(sys.WPUs))
	out1 := make([]int, len(sys.WPUs))
	for i, w := range sys.WPUs {
		wpus[i].Add(&w.Stats)
		out1[i] = sys.Hier.L1s[i].OutstandingMisses()
	}
	var total wpu.Stats
	for i := range wpus {
		total.Add(&wpus[i])
	}
	snap := LiveSnapshot{
		Cycle:         cycle,
		Done:          done,
		Total:         total,
		WPUs:          wpus,
		L1:            sys.L1Stats(),
		L2:            sys.L2Stats(),
		L1Outstanding: out1,
		L2Outstanding: sys.Hier.L2.OutstandingMisses(),
		DRAMAccesses:  sys.Hier.DRAM.Accesses,
	}
	lv.mu.Lock()
	snap.Bench, snap.Scheme = lv.bench, lv.scheme
	lv.snap = snap
	lv.mu.Unlock()
}

// Snapshot returns the last published state.
func (lv *Live) Snapshot() LiveSnapshot {
	lv.mu.Lock()
	defer lv.mu.Unlock()
	return lv.snap
}

// WriteMetrics renders the last published snapshot in the Prometheus text
// exposition format. It is the /metrics body of the standalone dwsim
// -httpobs endpoint, and the dwsimd server appends it to its own metric
// families so one scrape covers both the daemon and the machine it is
// currently simulating.
func (lv *Live) WriteMetrics(w io.Writer) {
	writeProm(w, lv.Snapshot())
}

// ServeHTTP implements the live endpoint.
func (lv *Live) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	snap := lv.Snapshot()
	if r.URL.Path == "/metrics" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeProm(w, snap)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap) //nolint:errcheck // best-effort: the peer may hang up
}

// writeProm renders the snapshot in the Prometheus text exposition
// format: the cycle taxonomy as one labelled counter family plus the
// headline machine counters.
func writeProm(w io.Writer, s LiveSnapshot) {
	labels := ""
	if s.Bench != "" || s.Scheme != "" {
		labels = fmt.Sprintf("bench=%q,scheme=%q", s.Bench, s.Scheme)
	}
	wrap := func(extra string) string {
		switch {
		case labels == "" && extra == "":
			return ""
		case labels == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + labels + "}"
		default:
			return "{" + labels + "," + extra + "}"
		}
	}
	fmt.Fprintf(w, "# HELP dwsim_cycles_total Simulated cycles so far.\n# TYPE dwsim_cycles_total counter\n")
	fmt.Fprintf(w, "dwsim_cycles_total%s %d\n", wrap(""), s.Cycle)
	fmt.Fprintf(w, "# HELP dwsim_cycle_bucket_total Top-down cycle attribution; the buckets sum to dwsim_wpu_cycles_total.\n# TYPE dwsim_cycle_bucket_total counter\n")
	for i, v := range s.Total.CycleBuckets() {
		fmt.Fprintf(w, "dwsim_cycle_bucket_total%s %d\n", wrap(fmt.Sprintf("cause=%q", wpu.CycleBucketLabels[i])), v)
	}
	fmt.Fprintf(w, "# HELP dwsim_wpu_cycles_total Per-WPU ticks summed across WPUs.\n# TYPE dwsim_wpu_cycles_total counter\n")
	fmt.Fprintf(w, "dwsim_wpu_cycles_total%s %d\n", wrap(""), s.Total.Cycles())
	fmt.Fprintf(w, "# HELP dwsim_instructions_total Warp-instructions issued.\n# TYPE dwsim_instructions_total counter\n")
	fmt.Fprintf(w, "dwsim_instructions_total%s %d\n", wrap(""), s.Total.Issued)
	fmt.Fprintf(w, "# HELP dwsim_l1_accesses_total L1 accesses.\n# TYPE dwsim_l1_accesses_total counter\n")
	fmt.Fprintf(w, "dwsim_l1_accesses_total%s %d\n", wrap(""), s.L1.Accesses)
	fmt.Fprintf(w, "# HELP dwsim_l1_misses_total L1 misses.\n# TYPE dwsim_l1_misses_total counter\n")
	fmt.Fprintf(w, "dwsim_l1_misses_total%s %d\n", wrap(""), s.L1.Misses)
	fmt.Fprintf(w, "# HELP dwsim_l2_misses_total L2 misses.\n# TYPE dwsim_l2_misses_total counter\n")
	fmt.Fprintf(w, "dwsim_l2_misses_total%s %d\n", wrap(""), s.L2.Misses)
	fmt.Fprintf(w, "# HELP dwsim_dram_accesses_total DRAM accesses (fetches + writebacks).\n# TYPE dwsim_dram_accesses_total counter\n")
	fmt.Fprintf(w, "dwsim_dram_accesses_total%s %d\n", wrap(""), s.DRAMAccesses)
	fmt.Fprintf(w, "# HELP dwsim_l2_mshr_outstanding Busy L2 MSHRs at the last snapshot.\n# TYPE dwsim_l2_mshr_outstanding gauge\n")
	fmt.Fprintf(w, "dwsim_l2_mshr_outstanding%s %d\n", wrap(""), s.L2Outstanding)
	fmt.Fprintf(w, "# HELP dwsim_run_done Whether the labelled run has completed.\n# TYPE dwsim_run_done gauge\n")
	done := 0
	if s.Done {
		done = 1
	}
	fmt.Fprintf(w, "dwsim_run_done%s %d\n", wrap(""), done)
}
