// Package repro is a from-scratch Go reproduction of "Dynamic Warp
// Subdivision for Integrated Branch and Memory Divergence Tolerance"
// (Meng, Tarjan, Skadron; ISCA 2010 and UVA TR CS-2010-5).
//
// The library lives under internal/: a cycle/event simulation engine
// (internal/engine), a small RISC ISA and compiler layer (internal/isa,
// internal/program), a MESI-coherent two-level memory hierarchy
// (internal/mem), the warp processing unit with every DWS policy and the
// adaptive-slip baseline (internal/wpu), the machine assembly
// (internal/sim), the eight verified benchmarks (internal/workloads), the
// energy model (internal/energy), and the experiment harness
// (internal/report).
//
// The root package exists to anchor bench_test.go, which regenerates every
// table and figure of the paper's evaluation as Go benchmarks — see
// EXPERIMENTS.md for a recorded run, and cmd/dwsreport for the standalone
// driver.
package repro
