# CI entry points. `make ci` is the gate: formatting, vet, the static
# verification layer (lint), build, the race detector over the parallel
# executor, and the full test suite.

GO ?= go

.PHONY: ci lint fmt-check vet dwslint dwsverify build test race bench bench-check bench-baseline profile profile-diff report metrics trace update-goldens serve

ci: fmt-check vet lint build race test bench-check

# Static verification layer: the determinism linter over the simulator
# packages and the ISA program verifier over every benchmark kernel.
lint: fmt-check vet dwslint dwsverify

dwslint:
	$(GO) run ./cmd/dwslint ./internal

dwsverify:
	$(GO) run ./cmd/dwsverify -divergence -memaccess -costmodel

# Regenerate every golden file in one pass (all golden-pinned tests take
# the same -update flag): obs exports, report run-doc and exhibit
# goldens, and the workloads analysis reports (divergence, memory access,
# cost model).
update-goldens:
	$(GO) test ./internal/obs/... ./internal/report/... ./internal/workloads/... ./internal/serve/... -update

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race run exercises concurrent Session use (singleflight, worker
# pool, sharded disk store), the observability exports
# (golden/determinism tests), and the daemon's end-to-end paths
# (concurrent submissions, SSE subscribers racing the publisher).
race:
	$(GO) test -race ./internal/report/... ./internal/obs/... ./internal/serve/...

# Baseline perf snapshot: the full exhibit set at -j 1 vs -j GOMAXPROCS
# (see EXPERIMENTS.md for recorded numbers).
bench:
	$(GO) test -bench FullReport -benchtime 1x -run '^$$' .

# CI benchmark gate: run the event-engine micro-benchmarks and fail on
# >10% ns/op regression or any allocs/op increase vs BENCH_baseline.json.
bench-check:
	$(GO) run ./cmd/dwsbench

# Re-measure and rewrite BENCH_baseline.json (run on an idle machine).
bench-baseline:
	$(GO) run ./cmd/dwsbench -update

# Profile one live simulation (cpu.pprof + mem.pprof); inspect with e.g.
#   go tool pprof -top cpu.pprof
#   go tool pprof -top -sample_index=alloc_objects mem.pprof
profile:
	$(GO) run ./cmd/dwsim -bench $(BENCH) -scheme DWS.ReviveSplit -nocache \
		-cpuprofile cpu.pprof -memprofile mem.pprof

# Compare two CPU profiles (before/after an optimisation): every sample in
# BASE is subtracted from AFTER, so improvements show as negative flat time.
# Typical loop (see README "Finding the next hot path"):
#   make profile && mv cpu.pprof cpu.before.pprof
#   ... edit ...
#   make profile && make profile-diff BASE=cpu.before.pprof AFTER=cpu.pprof
BASE  ?= cpu.before.pprof
AFTER ?= cpu.pprof
profile-diff:
	$(GO) tool pprof -top -nodecount 25 -diff_base $(BASE) $(AFTER)

# Run the simulation-as-a-service daemon (see README "Running the
# server"): POST /v1/jobs, GET /v1/results/{key}, SSE streaming,
# /metrics. ADDR overrides the listen address.
ADDR ?= :8091
serve:
	$(GO) run ./cmd/dwsimd -addr $(ADDR)

# Regenerate the paper's exhibits with the parallel executor.
report:
	$(GO) run ./cmd/dwsreport

# Headless cycle accounting: the stall-breakdown exhibit (top-down
# taxonomy per scheme) plus its CSV under metrics/.
metrics:
	$(GO) run ./cmd/dwsreport -only stalls -csv metrics

# One instrumented run: Chrome trace (load trace.json in
# https://ui.perfetto.dev), interval timeline CSV, and run-metrics JSON.
BENCH ?= KMeans
trace:
	$(GO) run ./cmd/dwsim -bench $(BENCH) -scheme DWS.ReviveSplit \
		-trace trace.json -timeline timeline.csv -stats stats.json
