// dwstrace runs a benchmark and exports what happened inside the machine.
// The default -format text prints a sampled timeline of every WPU's
// scheduling state — which SIMD groups exist, their masks, PCs and states,
// sync scopes and slip groups — the fastest way to see dynamic warp
// subdivision working (or to debug a policy change). The structured
// formats attach the internal/obs sink instead and write to stdout:
// chrome (trace-event JSON for Perfetto / chrome://tracing), json (the raw
// event list), csv (the interval timeline), and hist (the log2 latency
// histograms: service level, MSHR residency, split lifetime, wait-merge
// wait).
//
// Usage:
//
//	dwstrace -bench KMeans -scheme DWS.ReviveSplit -every 5000
//	dwstrace -bench Merge -scheme Slip.BranchBypass -from 10000 -until 12000 -every 100
//	dwstrace -bench KMeans -format chrome -every 1000 > trace.json
//	dwstrace -bench KMeans -format hist > hists.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workloads"
	"repro/internal/wpu"
)

func main() {
	var (
		benchName = flag.String("bench", "KMeans", "benchmark to trace")
		scheme    = flag.String("scheme", "DWS.ReviveSplit", "scheme")
		every     = flag.Uint64("every", 5000, "sample interval in cycles")
		from      = flag.Uint64("from", 0, "first cycle to sample (text format)")
		until     = flag.Uint64("until", ^uint64(0), "last cycle to sample (text format)")
		onlyWPU   = flag.Int("wpu", -1, "restrict the text dump to one WPU (-1 = all)")
		format    = flag.String("format", "text", "output format: text, chrome, json, or csv")
	)
	flag.Parse()

	switch *format {
	case "text", "chrome", "json", "csv", "hist":
	default:
		fail(fmt.Errorf("unknown -format %q (want text, chrome, json, csv, or hist)", *format))
	}

	spec, err := workloads.ByName(*benchName)
	if err != nil {
		fail(err)
	}
	cfg := sim.DefaultConfig()
	cfg.WPU = wpu.Scheme(*scheme).Apply(cfg.WPU)
	var tr *obs.Trace
	if *format != "text" {
		tr = obs.New(*every)
		cfg.Trace = tr
	}
	sys, err := sim.New(cfg)
	if err != nil {
		fail(err)
	}
	inst, err := spec.Build(sys)
	if err != nil {
		fail(err)
	}

	if *format == "text" {
		sys.Tracer = func(cycle uint64) {
			if cycle < *from || cycle > *until || *every == 0 || cycle%*every != 0 {
				return
			}
			fmt.Printf("=== cycle %d ===\n", cycle)
			for i, w := range sys.WPUs {
				if *onlyWPU >= 0 && i != *onlyWPU {
					continue
				}
				fmt.Print(w.DebugDump())
			}
		}
	}

	if err := inst.Run(sys); err != nil {
		fail(err)
	}
	if err := inst.Verify(); err != nil {
		fail(err)
	}

	switch *format {
	case "chrome":
		if err := obs.WriteChromeTrace(os.Stdout, tr); err != nil {
			fail(err)
		}
	case "json":
		if err := obs.WriteEventsJSON(os.Stdout, tr); err != nil {
			fail(err)
		}
	case "csv":
		if err := report.TimelineCSV(os.Stdout, tr); err != nil {
			fail(err)
		}
	case "hist":
		if err := obs.WriteHistCSV(os.Stdout, tr); err != nil {
			fail(err)
		}
	case "text":
		st := sys.TotalStats()
		fmt.Printf("=== done: %d cycles, %d subdivisions (%d branch, %d mem, %d revivals), "+
			"%d PC merges, %d wait merges, %d scope merges ===\n",
			sys.Cycles(), st.BranchSubdivisions+st.MemSubdivisions,
			st.BranchSubdivisions, st.MemSubdivisions, st.Revivals,
			st.PCMerges, st.WaitMerges, st.ScopeMerges)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dwstrace:", err)
	os.Exit(1)
}
