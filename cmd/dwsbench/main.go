// dwsbench is the CI benchmark gate. It runs the event-engine
// micro-benchmarks (BenchmarkEngineSteadyState: timing wheel, closure
// path, and the retired heap queue kept as a reference), the execution
// and memory fast paths, the end-to-end BenchmarkFullReportShort
// (Table 1 from a cold session), and the observability pins
// (BenchmarkHistRecord's zero-alloc record path, BenchmarkObsOverhead's
// disabled-hook cost), and the static-analysis budgets
// (BenchmarkProgramBuild, BenchmarkCostModel), parses ns/op and
// allocs/op, and compares them against the checked-in
// BENCH_baseline.json.
//
// Gating rules, both with a relative tolerance (default 10%; IO-bound
// benchmarks carry wider per-name overrides, see tolOverrides):
//   - ns/op is wall time and noisy, so the minimum across -count runs is
//     compared — that filters scheduler noise;
//   - allocs/op is effectively deterministic; a zero baseline (the
//     engine's allocation-free steady state) fails on ANY alloc, and a
//     nonzero baseline on anything beyond the tolerance.
//
// Usage:
//
//	dwsbench                 # compare against BENCH_baseline.json
//	dwsbench -update         # re-measure and rewrite the baseline
//	dwsbench -tolerance 0.25 # loosen the gate (e.g. noisy shared CI)
//
// Makefile wiring: `make bench-check` (part of `make ci`) and
// `make bench-baseline`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measured cost.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Baseline is the checked-in snapshot dwsbench compares against.
type Baseline struct {
	Note       string            `json:"note"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "baseline file to compare against / update")
		update       = flag.Bool("update", false, "re-measure and rewrite the baseline instead of gating")
		tolerance    = flag.Float64("tolerance", 0.10, "allowed relative ns/op or allocs/op regression before failing")
	)
	flag.Parse()

	got := map[string]Result{}
	for _, s := range suites {
		if err := measure(s, got); err != nil {
			fmt.Fprintln(os.Stderr, "dwsbench:", err)
			os.Exit(1)
		}
	}
	if len(got) == 0 {
		fmt.Fprintln(os.Stderr, "dwsbench: no benchmark results parsed")
		os.Exit(1)
	}

	if *update {
		if err := writeBaseline(*baselinePath, got); err != nil {
			fmt.Fprintln(os.Stderr, "dwsbench:", err)
			os.Exit(1)
		}
		fmt.Printf("dwsbench: wrote %s (%d benchmarks)\n", *baselinePath, len(got))
		return
	}

	base, err := readBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dwsbench: %v (run `make bench-baseline` to create it)\n", err)
		os.Exit(1)
	}
	if failures := compare(base, got, *tolerance); len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "dwsbench: FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Printf("dwsbench: %d benchmarks within tolerance (%.0f%% ns/op, no new allocs)\n",
		len(base.Benchmarks), *tolerance*100)
}

// suite is one `go test -bench` invocation of the gate. Iteration counts
// are pinned (NNx benchtimes) so runs stay comparable across hosts and
// baseline refreshes.
type suite struct {
	pkg       string
	bench     string
	benchtime string
	count     int
}

var suites = []suite{
	// The tentpole micro-benchmarks: wheel vs closure path vs retired heap.
	{pkg: "./internal/engine", bench: "^BenchmarkEngineSteadyState$", benchtime: "1000000x", count: 5},
	// Execution-core fast paths: pre-decoded issue + SoA ALU lane loops,
	// and the map-free memory paths (tiered page lookup, MSHR table) with
	// their zero allocs/op pins.
	{pkg: "./internal/wpu", bench: "^BenchmarkIssueALU$", benchtime: "200x", count: 5},
	{pkg: "./internal/mem", bench: "^BenchmarkFuncMemReadWrite$|^BenchmarkMSHRLookup$", benchtime: "2000000x", count: 5},
	// End-to-end: Table 1 cold (eight full simulations, every kernel).
	{pkg: ".", bench: "^BenchmarkFullReportShort$", benchtime: "1x", count: 3},
	// Observability: the histogram record path must stay allocation-free
	// (a zero alloc baseline fails on any alloc), and the obs hooks must
	// stay invisible when disabled — ObsOverhead/off is the production
	// path (nil sink), ObsOverhead/on the opt-in tracing cost; both are
	// held by the ratio gates in relGates below on top of the absolute
	// gate. ObsOverhead amortises two KMeans runs per sample and takes
	// the minimum of seven reps for a tighter wall-clock floor than the
	// one-shot macro-benchmarks.
	{pkg: "./internal/obs", bench: "^BenchmarkHistRecord$", benchtime: "2000000x", count: 5},
	{pkg: ".", bench: "^BenchmarkObsOverhead$", benchtime: "2x", count: 7},
	// Sharded result store under parallel clients: the sharded/single pair
	// measures the same workload over 16 shards vs one global lock, and
	// the relGate below keeps the sharding advantage from silently
	// regressing to a single-mutex store. The store is IO-bound (atomic
	// temp+rename persists under contention), so it needs more reps than
	// the in-memory benchmarks for a stable minimum — and even then its
	// absolute ns/op is the noisiest in the gate, hence the tolOverrides
	// entries below; the ratio gate is the real instrument here.
	{pkg: "./internal/report", bench: "^BenchmarkStoreShardedParallel$", benchtime: "1500x", count: 7},
	// Program-build budget: every static analysis (divergence dataflow,
	// memory-access classification, verification) runs inside Build, so
	// kernel construction cost is where analysis additions would creep.
	// The default tolerance holds it to <=10% over baseline.
	{pkg: "./internal/program", bench: "^BenchmarkProgramBuild$", benchtime: "2000x", count: 5},
	// Cost-model budget: CostModelFor on the suite's largest kernel
	// (KMeans assign at 256 threads) — trip counts, block execs, issue
	// and tick bounds, per-site scores, 13-scheme ranking. Gated so the
	// interval analyses stay cheap enough to run inside every Build.
	{pkg: "./internal/workloads", bench: "^BenchmarkCostModel$", benchtime: "2000x", count: 5},
}

// relGate pins the ratio of two benchmarks measured in the same gate run
// against the baseline's ratio. Absolute ns/op swings with host load and
// frequency scaling, but both sides of a ratio swing together, so this
// holds a much tighter bar than the absolute gate can.
type relGate struct {
	name string  // numerator benchmark
	ref  string  // denominator benchmark
	tol  float64 // allowed relative growth of the ratio
}

// The obs overhead gates. The acceptance bar — hooks compiled in but
// disabled cost < 2% (EXPERIMENTS.md) — is asserted at re-baseline time
// on an idle machine; in CI these ratios catch the regression classes
// that matter while surviving shared-host noise bursts: an emission site
// that loses its enabled-check in a hot path (see the dwslint obsguard
// rule) costs tens of percent on ObsOverhead/off, and any allocation it
// makes trips the deterministic allocs/op gate above outright.
var relGates = []relGate{
	{name: "ObsOverhead/off", ref: "FullReportShort", tol: 0.10},
	{name: "ObsOverhead/on", ref: "ObsOverhead/off", tol: 0.10},
	// The store-sharding speedup: sharded must stay well under the
	// single-lock time for the same parallel workload. If per-shard
	// locking degrades to effectively global (a lock hoisted out of the
	// shard, a shared map reintroduced), this ratio roughly doubles
	// (+150% on the measured ~0.4 baseline) and trips long before the
	// absolute gate notices. The 40% tolerance absorbs the IO-driven
	// scatter both sides show on a loaded 1-core host while staying far
	// below that failure signature.
	{name: "StoreShardedParallel/sharded", ref: "StoreShardedParallel/single", tol: 0.40},
}

// tolOverrides widens the absolute ns/op gate for benchmarks whose
// floor is set by the filesystem rather than the CPU: min-of-count
// filters scheduler noise but not write-back and rename latency, so the
// store pair scatters ±25% run-to-run where the compute benchmarks hold
// a few percent. The effective tolerance is max(flag, override), and
// the sharded-vs-single relGate above still pins the property the pair
// exists to protect.
var tolOverrides = map[string]float64{
	"StoreShardedParallel/sharded": 0.45,
	"StoreShardedParallel/single":  0.45,
}

// benchLine matches one `go test -bench -benchmem` result line, e.g.:
//
//	BenchmarkEngineSteadyState/wheel-8   1000000   17.30 ns/op   0 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op.*\s([0-9]+) allocs/op`)

// measure runs one suite and folds -count repetitions into one Result per
// benchmark: minimum ns/op (noise filter), maximum allocs/op
// (conservative — they should barely vary at all).
func measure(s suite, got map[string]Result) error {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", s.bench,
		"-benchtime", s.benchtime,
		"-count", strconv.Itoa(s.count),
		"-benchmem",
		s.pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("go test -bench %s: %v\n%s", s.bench, err, out)
	}
	for _, line := range strings.Split(string(out), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := normalize(m[1])
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return fmt.Errorf("parse ns/op in %q: %v", line, err)
		}
		allocs, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil {
			return fmt.Errorf("parse allocs/op in %q: %v", line, err)
		}
		r, seen := got[name]
		if !seen || ns < r.NsPerOp {
			r.NsPerOp = ns
		}
		if allocs > r.AllocsPerOp {
			r.AllocsPerOp = allocs
		}
		got[name] = r
	}
	return nil
}

// normalize strips the "Benchmark" prefix and the trailing -GOMAXPROCS
// suffix so baselines do not depend on the host's processor count.
func normalize(name string) string {
	name = strings.TrimPrefix(name, "Benchmark")
	if i := strings.LastIndex(name, "-"); i >= 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return name
}

// compare returns a description of every gate violation: a missing or
// extra benchmark, any allocs/op increase, or a ns/op regression beyond
// the tolerance.
func compare(base Baseline, got map[string]Result, tol float64) []string {
	var failures []string
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base.Benchmarks[name]
		g, ok := got[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but not measured (benchmark renamed or deleted?)", name))
			continue
		}
		tol := tol
		if o, ok := tolOverrides[name]; ok && o > tol {
			tol = o
		}
		// A zero alloc baseline fails on any alloc at all: the engine's
		// allocation-free steady state must not erode by "just one".
		if float64(g.AllocsPerOp) > float64(b.AllocsPerOp)*(1+tol) {
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op, baseline %d — allocation regression",
				name, g.AllocsPerOp, b.AllocsPerOp))
		}
		if limit := b.NsPerOp * (1 + tol); g.NsPerOp > limit {
			failures = append(failures, fmt.Sprintf("%s: %.2f ns/op, baseline %.2f (+%.1f%% > %.0f%% tolerance)",
				name, g.NsPerOp, b.NsPerOp, 100*(g.NsPerOp/b.NsPerOp-1), tol*100))
		} else if g.NsPerOp < b.NsPerOp*(1-tol) {
			fmt.Printf("dwsbench: note: %s improved to %.2f ns/op (baseline %.2f) — consider `make bench-baseline`\n",
				name, g.NsPerOp, b.NsPerOp)
		}
	}
	for name := range got {
		if _, ok := base.Benchmarks[name]; !ok {
			failures = append(failures, fmt.Sprintf("%s: measured but missing from baseline — run `make bench-baseline`", name))
		}
	}
	for _, rg := range relGates {
		bn, bok := base.Benchmarks[rg.name]
		br, rok := base.Benchmarks[rg.ref]
		gn, gnok := got[rg.name]
		gr, grok := got[rg.ref]
		if !bok || !rok || !gnok || !grok || br.NsPerOp == 0 || gr.NsPerOp == 0 {
			continue // a missing benchmark is already reported above
		}
		baseRatio := bn.NsPerOp / br.NsPerOp
		gotRatio := gn.NsPerOp / gr.NsPerOp
		if gotRatio > baseRatio*(1+rg.tol) {
			failures = append(failures, fmt.Sprintf("%s/%s ratio %.3f, baseline %.3f (+%.1f%% > %.0f%% tolerance)",
				rg.name, rg.ref, gotRatio, baseRatio, 100*(gotRatio/baseRatio-1), rg.tol*100))
		}
	}
	return failures
}

func readBaseline(path string) (Baseline, error) {
	var b Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("%s: %v", path, err)
	}
	return b, nil
}

func writeBaseline(path string, got map[string]Result) error {
	b := Baseline{
		Note:       "min ns/op over pinned-iteration repetitions (see suites in cmd/dwsbench); refresh with `make bench-baseline` on an idle machine",
		Benchmarks: got,
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
