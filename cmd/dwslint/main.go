// dwslint is the determinism linter for the simulator tree. It walks the
// given directories (default ./internal) and flags constructs that would
// break run-to-run reproducibility: wall-clock reads, the global math/rand
// source, side effects ordered by map iteration, and goroutines launched
// outside the approved executor files. See lint.go for the check catalogue.
//
// Usage:
//
//	dwslint [dirs...]                      # default: ./internal
//	dwslint -approved-goroutine-files internal/report/runner.go ./internal
//
// Exit status 1 when any finding is reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	// The approved set: the report executor's worker pool and the serve
	// daemon's job pool. Everything else under ./internal must stay
	// single-goroutine (per-System determinism depends on it).
	approved := flag.String("approved-goroutine-files",
		"internal/report/runner.go,internal/serve/pool.go",
		"comma-separated path suffixes of files allowed to launch goroutines")
	obsDirs := flag.String("obsguard-dirs", "",
		"comma-separated path fragments where obs emissions must be guarded (default: the built-in hot-path set)")
	enumTypes := flag.String("exhaustive-enums", "",
		"comma-separated enum type names whose switches must be exhaustive or defaulted (default: the built-in schema set)")
	labelArrays := flag.String("exhaustive-labels", "",
		"comma-separated label-array names whose string switches must be exhaustive or defaulted (default: the built-in schema set)")
	flag.Parse()

	dirs := flag.Args()
	if len(dirs) == 0 {
		dirs = []string{"./internal"}
	}

	l := &Linter{}
	for _, s := range strings.Split(*approved, ",") {
		if s = strings.TrimSpace(s); s != "" {
			l.ApprovedGoroutineFiles = append(l.ApprovedGoroutineFiles, s)
		}
	}
	for _, s := range strings.Split(*obsDirs, ",") {
		if s = strings.TrimSpace(s); s != "" {
			l.ObsGuardDirs = append(l.ObsGuardDirs, s)
		}
	}
	for _, s := range strings.Split(*enumTypes, ",") {
		if s = strings.TrimSpace(s); s != "" {
			l.ExhaustiveEnumTypes = append(l.ExhaustiveEnumTypes, s)
		}
	}
	for _, s := range strings.Split(*labelArrays, ",") {
		if s = strings.TrimSpace(s); s != "" {
			l.ExhaustiveLabelArrays = append(l.ExhaustiveLabelArrays, s)
		}
	}

	findings, err := l.LintDirs(dirs...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dwslint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Printf("dwslint: FAIL (%d finding(s))\n", len(findings))
		os.Exit(1)
	}
	fmt.Println("dwslint: ok")
}
