package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// newTestLinter mirrors main.go's default approved-goroutine set: the
// report executor's worker pool and the serve daemon's job pool.
func newTestLinter() *Linter {
	return &Linter{ApprovedGoroutineFiles: []string{
		"internal/report/runner.go",
		"internal/serve/pool.go",
	}}
}

// expectedFindings parses the `// want <check>` markers out of a fixture.
// A bare `//dwslint:ignore` (no reason) is itself expected to produce a
// "directive" finding on its own line.
func expectedFindings(t *testing.T, path string) map[int]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	want := map[int]string{}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.Index(text, "// want "); i >= 0 {
			want[line] = strings.Fields(text[i+len("// want "):])[0]
		}
		if strings.TrimSpace(text) == "//dwslint:ignore" {
			want[line] = "directive"
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return want
}

// TestBadFixture asserts every seeded violation is caught at the expected
// line with the expected check, and nothing else is reported.
func TestBadFixture(t *testing.T) {
	dir := filepath.Join("testdata", "src", "bad")
	want := expectedFindings(t, filepath.Join(dir, "bad.go"))
	if len(want) == 0 {
		t.Fatal("fixture has no // want markers")
	}

	findings, err := newTestLinter().LintDirs(dir)
	if err != nil {
		t.Fatal(err)
	}

	got := map[int][]string{}
	for _, f := range findings {
		got[f.Pos.Line] = append(got[f.Pos.Line], f.Check)
	}
	for line, check := range want {
		found := false
		for _, c := range got[line] {
			if c == check {
				found = true
			}
		}
		if !found {
			t.Errorf("line %d: want a %q finding, got %v", line, check, got[line])
		}
	}
	for line, checks := range got {
		for _, c := range checks {
			if want[line] != c {
				t.Errorf("line %d: unexpected %q finding", line, c)
			}
		}
	}

	// Every check must be represented at least once in the fixture.
	for _, check := range []string{"wallclock", "rand", "maprange", "ptrmaprange", "goroutine", "directive"} {
		seen := false
		for _, c := range want {
			if c == check {
				seen = true
			}
		}
		if !seen {
			t.Errorf("fixture does not seed a %q violation", check)
		}
	}
}

// TestObsGuardFixture asserts the obsguard check catches every seeded
// unguarded emission in the hot-path fixture — and nothing else: the
// guarded, suppressed and trace-free variants must stay silent.
func TestObsGuardFixture(t *testing.T) {
	dir := filepath.Join("testdata", "src", "obsguard")
	want := expectedFindings(t, filepath.Join(dir, "internal", "wpu", "hot.go"))
	if len(want) == 0 {
		t.Fatal("fixture has no // want markers")
	}

	findings, err := newTestLinter().LintDirs(dir)
	if err != nil {
		t.Fatal(err)
	}

	got := map[int][]string{}
	for _, f := range findings {
		got[f.Pos.Line] = append(got[f.Pos.Line], f.Check)
	}
	for line, check := range want {
		found := false
		for _, c := range got[line] {
			if c == check {
				found = true
			}
		}
		if !found {
			t.Errorf("line %d: want a %q finding, got %v", line, check, got[line])
		}
	}
	for line, checks := range got {
		for _, c := range checks {
			if want[line] != c {
				t.Errorf("line %d: unexpected %q finding", line, c)
			}
		}
	}
}

// TestExhaustiveSwitchFixture asserts the exhaustiveswitch check catches
// the seeded partial switches over the fixture's enum and label array —
// and nothing else: the exhaustive, defaulted, unrelated-string and
// suppressed variants must stay silent.
func TestExhaustiveSwitchFixture(t *testing.T) {
	dir := filepath.Join("testdata", "src", "exhaustive")
	want := expectedFindings(t, filepath.Join(dir, "exhaustive.go"))
	if len(want) == 0 {
		t.Fatal("fixture has no // want markers")
	}

	findings, err := newTestLinter().LintDirs(dir)
	if err != nil {
		t.Fatal(err)
	}

	got := map[int][]string{}
	for _, f := range findings {
		got[f.Pos.Line] = append(got[f.Pos.Line], f.Check)
	}
	for line, check := range want {
		found := false
		for _, c := range got[line] {
			if c == check {
				found = true
			}
		}
		if !found {
			t.Errorf("line %d: want a %q finding, got %v", line, check, got[line])
		}
	}
	for line, checks := range got {
		for _, c := range checks {
			if want[line] != c {
				t.Errorf("line %d: unexpected %q finding", line, c)
			}
		}
	}
}

// TestExhaustiveSwitchScope asserts the check is driven by the configured
// enum names: under a configuration naming no enum, the fixture is clean.
func TestExhaustiveSwitchScope(t *testing.T) {
	l := newTestLinter()
	l.ExhaustiveEnumTypes = []string{"NoSuchType"}
	l.ExhaustiveLabelArrays = []string{"NoSuchArray"}
	findings, err := l.LintDirs(filepath.Join("testdata", "src", "exhaustive"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Check == "exhaustiveswitch" {
			t.Errorf("exhaustiveswitch fired outside its configured enums: %s", f)
		}
	}
}

// TestObsGuardScope asserts the check only applies inside ObsGuardDirs:
// the same file linted under a non-hot-path configuration is clean.
func TestObsGuardScope(t *testing.T) {
	l := newTestLinter()
	l.ObsGuardDirs = []string{"no/such/dir"}
	findings, err := l.LintDirs(filepath.Join("testdata", "src", "obsguard"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Check == "obsguard" {
			t.Errorf("obsguard fired outside its configured dirs: %s", f)
		}
	}
}

// TestCleanFixture asserts the approved patterns produce no findings.
func TestCleanFixture(t *testing.T) {
	findings, err := newTestLinter().LintDirs(filepath.Join("testdata", "src", "clean"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding in clean fixture: %s", f)
	}
}

// TestRealTreeClean runs the linter over the actual simulator packages: the
// tree it gates in CI must itself be clean.
func TestRealTreeClean(t *testing.T) {
	findings, err := newTestLinter().LintDirs(filepath.Join("..", "..", "internal"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("real tree: %s", f)
	}
}
