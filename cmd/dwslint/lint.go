// The determinism linter: go/ast + go/types checks for the hazards that
// would silently break the simulator's byte-identical -j 1 vs -j 8
// guarantee (see internal/report). Seven checks:
//
//   - wallclock:  time.Now / time.Since / time.Sleep / time.After in
//     simulation code. Simulated time is the engine's cycle counter;
//     wall-clock reads make results depend on host load, and wall-clock
//     waits stall the real machine instead of scheduling an engine event.
//   - rand:       use of math/rand's global source (rand.Intn, rand.Seed,
//     ...). Only an explicitly seeded *rand.Rand — the
//     rand.New(rand.NewSource(seed)) pattern — is reproducible.
//   - maprange:   ranging over a map where the body assigns to state
//     declared outside the loop. Go randomises map iteration order, so
//     such writes make results depend on it. The keys-collection idiom
//     (x = append(x, key) followed by a sort) is exempt.
//   - ptrmaprange: ranging over a pointer-keyed map (the
//     map[*program.Program]int shape). Pointer keys have no stable sort
//     key — addresses differ run to run — so even the collect-and-sort
//     idiom cannot make the order reproducible; such maps must be
//     replaced with insertion-ordered slices (see wpu.progBases).
//   - goroutine:  a go statement outside the approved executor files. All
//     simulator concurrency must flow through the report.Session worker
//     pool, whose merge order is deterministic, or the serve daemon's job
//     pool (internal/serve/pool.go), which only ever runs Session calls.
//   - exhaustiveswitch: a switch dispatching on one of the schema enums —
//     obs.EventKind (case expressions name Ev* enumerators) or the cycle
//     taxonomy (case expressions are CycleBucketLabels strings) — that
//     neither covers every enumerator nor carries a default clause. The
//     enumerator and label sets are extracted from the linted tree itself,
//     so adding an EventKind or a taxonomy bucket immediately flags every
//     switch that has not caught up (the schema-drift class the golden
//     exports otherwise catch only at test time).
//   - obsguard:   an observability emission (trace Emit/AddSample or a
//     histogram Record whose receiver chain goes through a trace) in a
//     hot-path package (internal/wpu, internal/mem) that is not inside an
//     `if x.trace != nil { ... }` body. The zero-cost-when-disabled
//     contract requires untraced runs to pay only the nil-test branch; an
//     unguarded emission would also nil-panic the default configuration.
//
// A finding can be suppressed with a trailing or preceding comment
// directive `//dwslint:ignore <reason>`; the reason is mandatory, and a
// directive that no longer suppresses any diagnostic is itself reported
// as stale.
//
// Typechecking uses a permissive importer that resolves every import to an
// empty package: under the module build we have no export data for
// dependencies, and the checks only need locally resolvable facts —
// package-qualified selectors (via types.Info.Uses) and the types of maps
// declared in the package under lint. Map values that cross package
// boundaries are invisible to the maprange check; the determinism-critical
// packages own their maps, so this is an accepted limitation.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Finding is one linter diagnostic.
type Finding struct {
	Pos   token.Position
	Check string
	Msg   string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Msg)
}

// ignoreDirective is the comment prefix that suppresses a finding on its
// own line or the line below.
const ignoreDirective = "dwslint:ignore"

// Linter holds configuration for a lint run.
type Linter struct {
	// ApprovedGoroutineFiles are path suffixes of files allowed to launch
	// goroutines (the executor worker pool).
	ApprovedGoroutineFiles []string
	// ObsGuardDirs are path fragments of the hot-path packages where the
	// obsguard check applies; nil selects the default set.
	ObsGuardDirs []string
	// ExhaustiveEnumTypes are type names of iota enums whose switches must
	// be exhaustive or defaulted; nil selects the default set.
	ExhaustiveEnumTypes []string
	// ExhaustiveLabelArrays are names of canonical label arrays whose
	// string-switches must be exhaustive or defaulted; nil selects the
	// default set.
	ExhaustiveLabelArrays []string
}

// exhaustiveEnumTypes returns the enum type names the exhaustiveswitch
// check guards; a nil slice selects the schema enums.
func (l *Linter) exhaustiveEnumTypes() []string {
	if l.ExhaustiveEnumTypes != nil {
		return l.ExhaustiveEnumTypes
	}
	return []string{"EventKind"}
}

// exhaustiveLabelArrays returns the label-array names the exhaustiveswitch
// check guards; a nil slice selects the cycle taxonomy.
func (l *Linter) exhaustiveLabelArrays() []string {
	if l.ExhaustiveLabelArrays != nil {
		return l.ExhaustiveLabelArrays
	}
	return []string{"CycleBucketLabels"}
}

// obsGuardDirs returns the directories whose obs emissions must be guarded
// by the enabled check; a nil slice selects the simulator's hot paths.
func (l *Linter) obsGuardDirs() []string {
	if l.ObsGuardDirs != nil {
		return l.ObsGuardDirs
	}
	return []string{"internal/wpu", "internal/mem"}
}

// LintDirs lints every non-test Go file under the given roots and returns
// the findings sorted by position.
func (l *Linter) LintDirs(roots ...string) ([]Finding, error) {
	pkgDirs := map[string]bool{}
	var files []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if path != root && (d.Name() == "testdata" || strings.HasPrefix(d.Name(), ".")) {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
				pkgDirs[filepath.Dir(path)] = true
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	dirs := make([]string, 0, len(pkgDirs))
	for dir := range pkgDirs {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	sort.Strings(files)
	enums, err := l.collectEnums(files)
	if err != nil {
		return nil, err
	}

	var all []Finding
	for _, dir := range dirs {
		fs, err := l.lintPackageDir(dir, enums)
		if err != nil {
			return nil, err
		}
		all = append(all, fs...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return all, nil
}

// enumSets is the schema membership the exhaustiveswitch check compares
// switches against, extracted from the linted tree itself (so the check
// tracks the source of truth, not a copy of it).
type enumSets struct {
	// members maps an enum type name to its exported enumerators in
	// declaration order (the unexported count sentinel is excluded).
	members map[string][]string
	// labels maps a label-array name to its string elements in index order.
	labels map[string][]string
}

// collectEnums pre-parses every file once and extracts the enumerator and
// label sets of the configured schema enums. A guarded enum defined in
// multiple packages (the fixture case) merges by name; the simulator tree
// defines each exactly once.
func (l *Linter) collectEnums(files []string) (*enumSets, error) {
	typeTargets := map[string]bool{}
	for _, t := range l.exhaustiveEnumTypes() {
		typeTargets[t] = true
	}
	arrTargets := map[string]bool{}
	for _, a := range l.exhaustiveLabelArrays() {
		arrTargets[a] = true
	}
	es := &enumSets{members: map[string][]string{}, labels: map[string][]string{}}
	fset := token.NewFileSet()
	for _, path := range files {
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return nil, fmt.Errorf("dwslint: %w", err)
		}
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			switch gd.Tok {
			case token.CONST:
				// Track the current enum type through an iota block: a spec
				// with an explicit type sets it; an untyped, valueless spec
				// continues it; anything else (a new untyped value) ends it.
				cur := ""
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					if vs.Type != nil {
						cur = ""
						if id, ok := vs.Type.(*ast.Ident); ok && typeTargets[id.Name] {
							cur = id.Name
						}
					} else if len(vs.Values) > 0 {
						cur = ""
					}
					if cur == "" {
						continue
					}
					for _, name := range vs.Names {
						if ast.IsExported(name.Name) {
							es.members[cur] = append(es.members[cur], name.Name)
						}
					}
				}
			case token.VAR:
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Names) != 1 || !arrTargets[vs.Names[0].Name] || len(vs.Values) != 1 {
						continue
					}
					cl, ok := vs.Values[0].(*ast.CompositeLit)
					if !ok {
						continue
					}
					name := vs.Names[0].Name
					for _, elt := range cl.Elts {
						if kv, ok := elt.(*ast.KeyValueExpr); ok {
							elt = kv.Value
						}
						if lit, ok := elt.(*ast.BasicLit); ok && lit.Kind == token.STRING {
							if s, err := strconv.Unquote(lit.Value); err == nil {
								es.labels[name] = append(es.labels[name], s)
							}
						}
					}
				}
			}
		}
	}
	return es, nil
}

func (l *Linter) lintPackageDir(dir string, enums *enumSets) ([]Finding, error) {
	fset := token.NewFileSet()
	entries, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	// Group files by package name: a directory can hold package x and
	// package main (or x_test externals, already excluded).
	byPkg := map[string][]*ast.File{}
	for _, path := range entries {
		if strings.HasSuffix(path, "_test.go") {
			continue
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("dwslint: %w", err)
		}
		byPkg[file.Name.Name] = append(byPkg[file.Name.Name], file)
	}
	pkgNames := make([]string, 0, len(byPkg))
	for name := range byPkg {
		pkgNames = append(pkgNames, name)
	}
	sort.Strings(pkgNames)

	var all []Finding
	for _, name := range pkgNames {
		files := byPkg[name]
		info := &types.Info{
			Types: make(map[ast.Expr]types.TypeAndValue),
			Uses:  make(map[*ast.Ident]types.Object),
			Defs:  make(map[*ast.Ident]types.Object),
		}
		conf := types.Config{
			Importer: &fakeImporter{pkgs: map[string]*types.Package{}},
			Error:    func(error) {}, // imports are fake: errors are expected
		}
		// Check fills info for everything it can resolve even when the
		// package has type errors; the returned error is ignored on purpose.
		conf.Check(dir, fset, files, info) //nolint:errcheck
		for _, file := range files {
			w := &walker{l: l, fset: fset, info: info, file: file, enums: enums}
			ast.Walk(w, file)
			all = append(all, w.applyIgnores()...)
		}
	}
	return all, nil
}

// fakeImporter resolves every import path to an empty, complete package.
// The default importer needs export data we do not have under the module
// build; the checks only rely on package-qualified identifier *names*.
type fakeImporter struct{ pkgs map[string]*types.Package }

func (f *fakeImporter) Import(path string) (*types.Package, error) {
	if p, ok := f.pkgs[path]; ok {
		return p, nil
	}
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	f.pkgs[path] = p
	return p, nil
}

// walker runs the checks over one file.
type walker struct {
	l        *Linter
	fset     *token.FileSet
	info     *types.Info
	file     *ast.File
	enums    *enumSets
	findings []Finding

	// obsGuards caches the body ranges of `if ...trace != nil` statements
	// in this file (computed lazily by insideTraceGuard).
	obsGuards     [][2]token.Pos
	obsGuardsOnce bool
}

func (w *walker) add(pos token.Pos, check, format string, args ...any) {
	w.findings = append(w.findings, Finding{
		Pos:   w.fset.Position(pos),
		Check: check,
		Msg:   fmt.Sprintf(format, args...),
	})
}

func (w *walker) Visit(n ast.Node) ast.Visitor {
	switch n := n.(type) {
	case *ast.SelectorExpr:
		w.checkPkgSelector(n)
	case *ast.RangeStmt:
		w.checkMapRange(n)
	case *ast.GoStmt:
		w.checkGoroutine(n)
	case *ast.CallExpr:
		w.checkObsGuard(n)
	case *ast.SwitchStmt:
		w.checkExhaustiveSwitch(n)
	}
	return w
}

// checkExhaustiveSwitch flags a switch that dispatches on a guarded schema
// enum (any case expression names one of its enumerators, or is one of its
// label strings) but neither covers the full set nor carries a default.
// Detection is name-based like obsguard: the fake importer cannot type a
// cross-package tag expression, but the case expressions carry the
// enumerator names either way.
func (w *walker) checkExhaustiveSwitch(sw *ast.SwitchStmt) {
	if w.enums == nil {
		return
	}
	covered := map[string]bool{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // a default clause absorbs future enumerators
		}
		for _, e := range cc.List {
			switch v := e.(type) {
			case *ast.Ident:
				covered[v.Name] = true
			case *ast.SelectorExpr:
				covered[v.Sel.Name] = true
			case *ast.BasicLit:
				if v.Kind == token.STRING {
					if s, err := strconv.Unquote(v.Value); err == nil {
						covered[s] = true
					}
				}
			}
		}
	}
	report := func(kind, name string, set []string) {
		hit, missing := false, []string(nil)
		for _, m := range set {
			if covered[m] {
				hit = true
			} else {
				missing = append(missing, m)
			}
		}
		if hit && len(missing) > 0 {
			w.add(sw.Pos(), "exhaustiveswitch",
				"switch over %s %s misses %s: cover every enumerator or add a default clause (schema drift otherwise goes unnoticed until the golden exports fail)",
				name, kind, strings.Join(missing, ", "))
		}
	}
	for _, t := range w.l.exhaustiveEnumTypes() {
		report("enumerators", t, w.enums.members[t])
	}
	for _, a := range w.l.exhaustiveLabelArrays() {
		report("labels", a, w.enums.labels[a])
	}
}

// pkgPathOf resolves the import path when ident names an imported package,
// via the typechecker when possible and the file's import table otherwise.
func (w *walker) pkgPathOf(ident *ast.Ident) string {
	if obj, ok := w.info.Uses[ident]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path()
		}
		return "" // a variable, field, etc. shadowing nothing
	}
	// Unresolved (type errors elsewhere): fall back to the import table.
	for _, imp := range w.file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == ident.Name {
			return path
		}
	}
	return ""
}

// checkPkgSelector implements the wallclock and rand checks.
func (w *walker) checkPkgSelector(sel *ast.SelectorExpr) {
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	switch w.pkgPathOf(ident) {
	case "time":
		switch sel.Sel.Name {
		case "Now", "Since":
			w.add(sel.Pos(), "wallclock",
				"time.%s in simulation code: simulated time is the engine's cycle counter, wall-clock reads are nondeterministic", sel.Sel.Name)
		case "Sleep", "After":
			w.add(sel.Pos(), "wallclock",
				"time.%s in simulation code: simulated delays are engine events (Queue.At), wall-clock waits stall the real machine and are nondeterministic", sel.Sel.Name)
		}
	case "math/rand", "math/rand/v2":
		switch sel.Sel.Name {
		case "New", "NewSource", "Source", "Rand":
			// The approved pattern: rand.New(rand.NewSource(seed)), plus
			// the type names needed to hold one.
		default:
			w.add(sel.Pos(), "rand",
				"rand.%s uses the global math/rand source: construct an explicitly seeded generator with rand.New(rand.NewSource(seed))", sel.Sel.Name)
		}
	}
}

// checkMapRange flags ranging over a map while assigning to state declared
// outside the loop body.
func (w *walker) checkMapRange(rs *ast.RangeStmt) {
	tv, ok := w.info.Types[rs.X]
	if !ok || tv.Type == nil {
		return // unresolved (crosses a fake import): out of scope
	}
	mp, isMap := tv.Type.Underlying().(*types.Map)
	if !isMap {
		return
	}
	// A pointer-keyed map is flagged at the range itself, whatever the body
	// does: addresses differ run to run, so no sort of the keys can make
	// the iteration order reproducible.
	if _, ptrKey := mp.Key().Underlying().(*types.Pointer); ptrKey {
		w.add(rs.Pos(), "ptrmaprange",
			"range over a pointer-keyed map: pointer keys have no run-stable sort key, so no iteration order over this map is reproducible (use an insertion-ordered slice instead)")
	}

	inBody := func(pos token.Pos) bool {
		return pos >= rs.Body.Pos() && pos <= rs.Body.End()
	}
	// declaredInside reports whether the base identifier of an lvalue is
	// the range key/value or declared within the loop body.
	declaredInside := func(e ast.Expr) bool {
		base := baseIdent(e)
		if base == nil {
			return false
		}
		if obj := w.info.Defs[base]; obj != nil {
			return true // the := definition itself
		}
		obj, ok := w.info.Uses[base]
		if !ok || obj == nil {
			return false
		}
		pos := obj.Pos()
		if kv, ok := rs.Key.(*ast.Ident); ok && obj.Pos() == kv.Pos() {
			return true
		}
		if vv, ok := rs.Value.(*ast.Ident); ok && obj.Pos() == vv.Pos() {
			return true
		}
		return inBody(pos)
	}
	rangeVarNames := map[string]bool{}
	if kv, ok := rs.Key.(*ast.Ident); ok {
		rangeVarNames[kv.Name] = true
	}
	if vv, ok := rs.Value.(*ast.Ident); ok {
		rangeVarNames[vv.Name] = true
	}
	// isKeyCollection recognises `x = append(x, k...)` where every appended
	// value is a range variable or literal — the sort-the-keys idiom, which
	// is order-independent once sorted.
	isKeyCollection := func(as *ast.AssignStmt) bool {
		if len(as.Lhs) != 1 || len(as.Rhs) != 1 || as.Tok != token.ASSIGN {
			return false
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" || len(call.Args) < 2 {
			return false
		}
		if first, ok := call.Args[0].(*ast.Ident); !ok || first.Name != lhs.Name {
			return false
		}
		for _, arg := range call.Args[1:] {
			switch a := arg.(type) {
			case *ast.Ident:
				if !rangeVarNames[a.Name] {
					return false
				}
			case *ast.BasicLit:
			default:
				return false
			}
		}
		return true
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if isKeyCollection(n) {
				return true
			}
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				if !declaredInside(lhs) {
					w.add(n.Pos(), "maprange",
						"assignment to state declared outside a map-range loop: map iteration order is randomised, so this write order is nondeterministic (collect and sort the keys first)")
					return true
				}
			}
		case *ast.IncDecStmt:
			if !declaredInside(n.X) {
				w.add(n.Pos(), "maprange",
					"increment of state declared outside a map-range loop: map iteration order is randomised (collect and sort the keys first)")
			}
		case *ast.SendStmt:
			w.add(n.Pos(), "maprange",
				"channel send inside a map-range loop: delivery order follows the randomised map iteration order")
		}
		return true
	})
}

// baseIdent unwraps an lvalue to its base identifier: a[i].b -> a.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.IndexExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// checkGoroutine flags go statements outside the approved executor files.
func (w *walker) checkGoroutine(g *ast.GoStmt) {
	file := filepath.ToSlash(w.fset.Position(g.Pos()).Filename)
	for _, ok := range w.l.ApprovedGoroutineFiles {
		if strings.HasSuffix(file, ok) {
			return
		}
	}
	w.add(g.Pos(), "goroutine",
		"goroutine launched outside the approved executor files (%s): simulator concurrency must flow through the report.Session worker pool",
		strings.Join(w.l.ApprovedGoroutineFiles, ", "))
}

// checkObsGuard flags observability emissions in the hot-path packages
// that are not inside an `if x.trace != nil { ... }` body. Detection is
// syntactic on purpose: the emission methods are recognised by name
// (Emit, AddSample, Record) with a receiver chain that passes through a
// trace or histogram field, so the check works without export data for
// the obs package.
func (w *walker) checkObsGuard(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	switch sel.Sel.Name {
	case "Emit", "AddSample", "Record":
	default:
		return
	}
	if !chainMentionsTrace(sel.X) {
		return
	}
	file := filepath.ToSlash(w.fset.Position(call.Pos()).Filename)
	applies := false
	for _, d := range w.l.obsGuardDirs() {
		if strings.Contains(file, d) {
			applies = true
			break
		}
	}
	if !applies {
		return
	}
	if w.insideTraceGuard(call.Pos()) {
		return
	}
	w.add(call.Pos(), "obsguard",
		"unguarded %s in a hot path: wrap the emission in its enabled check (if x.trace != nil { ... }) so untraced runs pay only the nil-test branch", sel.Sel.Name)
}

// chainMentionsTrace reports whether the selector chain rooted at e passes
// through a trace-ish name (trace, Trace, Hists).
func chainMentionsTrace(e ast.Expr) bool {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return isTraceName(v.Name)
		case *ast.SelectorExpr:
			if isTraceName(v.Sel.Name) {
				return true
			}
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.CallExpr:
			e = v.Fun
		default:
			return false
		}
	}
}

func isTraceName(name string) bool {
	return name == "trace" || name == "Trace" || name == "Hists"
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// insideTraceGuard reports whether pos falls inside the body of an if
// statement whose condition tests a trace-ish chain against nil. The body
// ranges are collected once per file.
func (w *walker) insideTraceGuard(pos token.Pos) bool {
	if !w.obsGuardsOnce {
		w.obsGuardsOnce = true
		ast.Inspect(w.file, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			guards := false
			ast.Inspect(ifs.Cond, func(c ast.Node) bool {
				b, ok := c.(*ast.BinaryExpr)
				if !ok || b.Op != token.NEQ {
					return true
				}
				if (isNilIdent(b.Y) && chainMentionsTrace(b.X)) ||
					(isNilIdent(b.X) && chainMentionsTrace(b.Y)) {
					guards = true
				}
				return true
			})
			if guards {
				w.obsGuards = append(w.obsGuards, [2]token.Pos{ifs.Body.Pos(), ifs.Body.End()})
			}
			return true
		})
	}
	for _, g := range w.obsGuards {
		if pos >= g[0] && pos <= g[1] {
			return true
		}
	}
	return false
}

// applyIgnores drops findings suppressed by a `//dwslint:ignore reason`
// directive on the same line or the line above. Directives themselves are
// checked both ways: one lacking a reason is reported, and so is a
// reasoned one that suppresses nothing — a stale suppression would
// otherwise silently swallow the next diagnostic introduced nearby.
func (w *walker) applyIgnores() []Finding {
	type directive struct {
		pos  token.Pos
		line int
	}
	var directives []directive
	suppressed := map[int]bool{}
	for _, cg := range w.file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, ignoreDirective) {
				continue
			}
			reason := strings.TrimSpace(strings.TrimPrefix(text, ignoreDirective))
			line := w.fset.Position(c.Pos()).Line
			if reason == "" {
				w.add(c.Pos(), "directive", "dwslint:ignore requires a reason")
				continue
			}
			directives = append(directives, directive{c.Pos(), line})
			suppressed[line] = true
			suppressed[line+1] = true
		}
	}
	used := map[int]bool{} // finding lines whose suppression fired
	kept := w.findings[:0]
	for _, f := range w.findings {
		if f.Check != "directive" && suppressed[f.Pos.Line] {
			used[f.Pos.Line] = true
			continue
		}
		kept = append(kept, f)
	}
	w.findings = kept
	for _, d := range directives {
		if !used[d.line] && !used[d.line+1] {
			w.add(d.pos, "directive", "dwslint:ignore suppresses no diagnostic: stale directive (remove it)")
		}
	}
	return w.findings
}
