// Fixture for the obsguard check. The directory sits under an
// internal/wpu path segment so the default ObsGuardDirs match it; the
// types below mirror the shape of the real obs sink closely enough for
// the syntactic receiver-chain detection.
package wpu

type hist struct{ n uint64 }

func (h *hist) Record(v uint64) { h.n += v }

type histSet struct {
	SplitLife hist
}

type sink struct {
	Hists histSet
}

func (t *sink) Emit(e int)      {}
func (t *sink) AddSample(s int) {}

type unit struct {
	trace *sink
}

func (u *unit) unguarded() {
	u.trace.Emit(1)                   // want obsguard
	u.trace.AddSample(2)              // want obsguard
	u.trace.Hists.SplitLife.Record(3) // want obsguard
}

func (u *unit) guarded() {
	if u.trace != nil {
		u.trace.Emit(1)
		u.trace.Hists.SplitLife.Record(3)
	}
	if u.trace != nil && u.trace.Hists.SplitLife.n == 0 {
		u.trace.AddSample(2)
	}
}

func (u *unit) suppressed() {
	//dwslint:ignore fixture: callers of this helper perform the nil check
	u.trace.Emit(4)
}

// unrelated Record calls (no trace in the receiver chain) are out of
// scope for the check.
type recorder struct{}

func (recorder) Record(uint64) {}

func (u *unit) unrelated() {
	var r recorder
	r.Record(5)
}
