// Fixture for the exhaustiveswitch check: the guarded schema enums are
// defined locally (the linter extracts membership from the linted tree),
// with violating, exhaustive, defaulted and suppressed switches over both
// the iota enum and the label array.
package exhaustive

// EventKind mirrors the shape of obs.EventKind: a typed iota enum with an
// unexported count sentinel (which must not be required in switches).
type EventKind uint8

const (
	EvAlpha EventKind = iota
	EvBeta
	EvGamma
	numEventKinds
)

// CycleBucketLabels mirrors the taxonomy label array.
var CycleBucketLabels = [3]string{"busy", "mem_divergent", "idle"}

func badEnum(k EventKind) int {
	switch k { // want exhaustiveswitch
	case EvAlpha:
		return 1
	case EvBeta:
		return 2
	}
	return 0
}

func badLabel(s string) int {
	switch s { // want exhaustiveswitch
	case "busy":
		return 1
	}
	return 0
}

func goodDefault(k EventKind) int {
	switch k {
	case EvAlpha:
		return 1
	default:
		return 0
	}
}

func goodFull(k EventKind) int {
	switch k {
	case EvAlpha, EvBeta:
		return 1
	case EvGamma:
		return 2
	}
	return 0
}

func goodLabels(s string) int {
	switch s {
	case "busy", "mem_divergent":
		return 1
	case "idle":
		return 2
	}
	return 0
}

// A switch on unrelated strings must not trip the label matcher.
func unrelated(s string) int {
	switch s {
	case "north":
		return 1
	case "south":
		return 2
	}
	return 0
}

func suppressed(k EventKind) int {
	switch k { //dwslint:ignore caller dispatches the remaining kinds
	case EvAlpha:
		return 1
	}
	return 0
}

var _ = [...]any{badEnum, badLabel, goodDefault, goodFull, goodLabels, unrelated, suppressed, numEventKinds}
