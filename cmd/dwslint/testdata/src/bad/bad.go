// Package bad seeds one violation of every dwslint check; lint_test.go
// asserts each is caught at the expected line.
package bad

import (
	"math/rand"
	"time"
)

var counters = map[string]int{}

func wallclock() time.Duration {
	start := time.Now()      // want wallclock
	return time.Since(start) // want wallclock
}

func wallclockWaits() {
	time.Sleep(time.Millisecond) // want wallclock
	<-time.After(time.Second)    // want wallclock
}

func globalRand() int {
	rand.Seed(42)        // want rand
	return rand.Intn(10) // want rand
}

func mapOrder() int {
	total := 0
	for _, v := range counters {
		total += v // want maprange
	}
	var sum int
	for k := range counters {
		sum++             // want maprange
		counters[k] = sum // want maprange
	}
	return total + sum
}

func mapSend(ch chan string) {
	for k := range counters {
		ch <- k // want maprange
	}
}

type node struct{ id int }

var owners = map[*node]int{}

func ptrKeyed() {
	for _, v := range owners { // want ptrmaprange
		_ = v
	}
}

func spawn() {
	go func() {}() // want goroutine
}

func emptyReason() {
	//dwslint:ignore
	_ = time.Now() // want wallclock -- a reasonless directive suppresses nothing
}

func staleSuppression() int {
	//dwslint:ignore leftover from a removed time.Now call // want directive
	return 2 + 2
}
