// Package clean exercises the approved patterns dwslint must NOT flag.
package clean

import (
	"math/rand"
	"sort"
	"time"
)

var stats = map[string]int{}

// seededRand is the approved reproducible-randomness pattern.
func seededRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// keysSorted is the approved map-iteration idiom: collect keys, sort,
// iterate the slice.
func keysSorted() []string {
	keys := make([]string, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// localState writes only to state declared inside the loop body.
func localState() {
	for k, v := range stats {
		double := v * 2
		double++
		_ = k
		_ = double
	}
}

// ignored shows a justified suppression.
func ignored() time.Time {
	return time.Now() //dwslint:ignore fixture demonstrating a justified suppression
}

// simTime uses time for formatting only, not wall-clock reads.
func simTime(cycles int64) time.Duration {
	return time.Duration(cycles) * time.Nanosecond
}

// throttled shows a justified wall-clock wait outside the simulated path.
func throttled() {
	time.Sleep(time.Millisecond) //dwslint:ignore fixture: backoff in a host-side tool, not simulation code
}

type handle struct{ id int }

var handles = map[*handle]bool{}

// suppressedPtrRange shows the sanctioned escape hatch for a genuinely
// order-insensitive query over a pointer-keyed map.
func suppressedPtrRange() bool {
	//dwslint:ignore fixture: presence check, independent of iteration order
	for _, live := range handles {
		if live {
			return true
		}
	}
	return false
}
