// dwsim runs one benchmark under one configuration and prints the
// statistics the paper's evaluation is built from.
//
// Usage:
//
//	dwsim -bench Merge -scheme DWS.ReviveSplit
//	dwsim -bench FFT -scheme Conv -width 8 -warps 8 -l1kb 64
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/energy"
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/workloads"
	"repro/internal/wpu"
)

func main() {
	var (
		benchName = flag.String("bench", "Merge", "benchmark: FFT, Filter, HotSpot, LU, Merge, Short, KMeans, SVM, or 'all'")
		scheme    = flag.String("scheme", "DWS.ReviveSplit", "scheme: "+schemeList())
		wpus      = flag.Int("wpus", 4, "number of WPUs")
		width     = flag.Int("width", 16, "SIMD width")
		warps     = flag.Int("warps", 4, "warps per WPU")
		slots     = flag.Int("slots", 0, "scheduler slots (0 = 2x warps)")
		wst       = flag.Int("wst", 16, "warp-split table entries")
		l1kb      = flag.Int("l1kb", 32, "L1 D-cache size in KB")
		l1assoc   = flag.Int("l1assoc", 8, "L1 D-cache associativity (0 = fully associative)")
		l2lat     = flag.Int("l2lat", 30, "L2 lookup latency in cycles")
		l2kb      = flag.Int("l2kb", 4096, "L2 size in KB")
		scale     = flag.Int("scale", 1, "input-size multiplier (power of two; see workloads.AllWithScale)")
		verify    = flag.Bool("verify", true, "verify results against the host reference")
		showDis   = flag.Bool("disasm", false, "print each kernel's disassembly instead of running")
	)
	flag.Parse()

	cfg := sim.DefaultConfig()
	cfg.WPUs = *wpus
	cfg.WPU.Width = *width
	cfg.WPU.Warps = *warps
	cfg.WPU.SchedSlots = *slots
	cfg.WPU.WSTEntries = *wst
	cfg.Hier.L1.SizeBytes = *l1kb * 1024
	cfg.Hier.L1.Ways = *l1assoc
	cfg.Hier.L2.LookupLat = engine.Cycle(*l2lat)
	cfg.Hier.L2.SizeBytes = *l2kb * 1024
	cfg.WPU = wpu.Scheme(*scheme).Apply(cfg.WPU)

	names := []string{*benchName}
	if *benchName == "all" {
		names = names[:0]
		for _, s := range workloads.All() {
			names = append(names, s.Name)
		}
	}
	for _, name := range names {
		if err := runOne(name, cfg, *scheme, *scale, *verify, *showDis); err != nil {
			fmt.Fprintln(os.Stderr, "dwsim:", err)
			os.Exit(1)
		}
	}
}

func schemeList() string {
	var names []string
	for _, s := range wpu.AllSchemes {
		names = append(names, string(s))
	}
	return strings.Join(names, ", ")
}

func runOne(name string, cfg sim.Config, scheme string, scale int, verify, showDis bool) error {
	spec, err := workloads.ByNameScaled(name, scale)
	if err != nil {
		return err
	}
	sys, err := sim.New(cfg)
	if err != nil {
		return err
	}
	inst, err := spec.Build(sys)
	if err != nil {
		return err
	}
	if showDis {
		seen := map[string]bool{}
		for _, st := range inst.Steps() {
			if seen[st.Prog.Name] {
				continue
			}
			seen[st.Prog.Name] = true
			fmt.Printf("== %s ==\n%s\n", st.Prog.Name, st.Prog.Disassemble())
		}
		return nil
	}
	if err := inst.Run(sys); err != nil {
		return err
	}
	if verify {
		if err := inst.Verify(); err != nil {
			return err
		}
	}

	st := sys.TotalStats()
	l1 := sys.L1Stats()
	e := energy.Estimate(sys)
	fmt.Printf("%-8s %-24s cycles=%-9d busy=%.1f%% memstall=%.1f%% width=%.1f/%d\n",
		name, scheme, sys.Cycles(),
		100*float64(st.BusyCycles)/float64(st.Cycles()),
		100*st.MemStallFraction(), st.MeanSIMDWidth(), cfg.WPU.Width)
	fmt.Printf("  instr=%d threadops=%d branches=%d (%.1f%% divergent) memacc=%d (%.1f%% divergent, %.1f%% with miss)\n",
		st.Issued, st.ThreadOps, st.Branches, pct(st.DivBranch, st.Branches),
		st.MemAccesses, pct(st.MemDivergent, st.MemAccesses), pct(st.MemWithMiss, st.MemAccesses))
	fmt.Printf("  L1: %.1f%% miss | subdivisions: branch=%d mem=%d revive=%d | merges: pc=%d scope=%d | peak splits=%d\n",
		100*l1.MissRate(), st.BranchSubdivisions, st.MemSubdivisions, st.Revivals,
		st.PCMerges, st.ScopeMerges, st.PeakSplits)
	if st.SlipEvents > 0 {
		fmt.Printf("  slip: events=%d merges=%d refused=%d\n", st.SlipEvents, st.SlipMerges, st.SlipRefused)
	}
	fmt.Printf("  energy=%.3f mJ (dynamic %.3f, leakage %.3f)\n", e.TotalmJ(), e.DynamicmJ(), e.LeakagemJ())
	return nil
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
