// dwsim runs one benchmark under one configuration and prints the
// statistics the paper's evaluation is built from. Runs go through the
// report.Session executor, so they hit the shared on-disk result store
// and, with -bench all, simulate concurrently under -j.
//
// Usage:
//
//	dwsim -bench Merge -scheme DWS.ReviveSplit
//	dwsim -bench FFT -scheme Conv -width 8 -warps 8 -l1kb 64
//	dwsim -bench all -j 8 -nocache
//	dwsim -bench KMeans -trace trace.json -timeline timeline.csv -stats stats.json
//
// -trace/-timeline attach the observability sink (single benchmark only)
// and force a live simulation, bypassing the result caches; -stats writes
// machine-readable run metrics for any run.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workloads"
	"repro/internal/wpu"
)

func main() {
	var (
		benchName = flag.String("bench", "Merge", "benchmark: FFT, Filter, HotSpot, LU, Merge, Short, KMeans, SVM, or 'all'")
		scheme    = flag.String("scheme", "DWS.ReviveSplit", "scheme: "+schemeList())
		wpus      = flag.Int("wpus", 4, "number of WPUs")
		width     = flag.Int("width", 16, "SIMD width")
		warps     = flag.Int("warps", 4, "warps per WPU")
		slots     = flag.Int("slots", 0, "scheduler slots (0 = 2x warps)")
		wst       = flag.Int("wst", 16, "warp-split table entries")
		l1kb      = flag.Int("l1kb", 32, "L1 D-cache size in KB")
		l1assoc   = flag.Int("l1assoc", 8, "L1 D-cache associativity (0 = fully associative)")
		l2lat     = flag.Int("l2lat", 30, "L2 lookup latency in cycles")
		l2kb      = flag.Int("l2kb", 4096, "L2 size in KB")
		dist      = flag.String("dist", "block", "thread-to-WPU mapping: block or interleave")
		scale     = flag.Int("scale", 1, "input-size multiplier (power of two; see workloads.AllWithScale)")
		noHints   = flag.Bool("nomemhints", false, "ignore the static memory-divergence hints (control arm; behaviour-identical by construction)")
		verify    = flag.Bool("verify", true, "verify results against the host reference")
		showDis   = flag.Bool("disasm", false, "print each kernel's disassembly instead of running")
		jobs      = flag.Int("j", 0, "max concurrent simulations with -bench all (0 = GOMAXPROCS)")
		cacheDir  = flag.String("cachedir", "", "on-disk result store directory (default ~/.cache/dwsim)")
		noCache   = flag.Bool("nocache", false, "disable the on-disk result store")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file ('-' = stdout; single benchmark only)")
		tlOut     = flag.String("timeline", "", "write the interval timeline CSV to this file ('-' = stdout; single benchmark only)")
		statsOut  = flag.String("stats", "", "write machine-readable run metrics JSON to this file ('-' = stdout)")
		httpObs   = flag.String("httpobs", "", "serve live run metrics over HTTP at this address (e.g. :8080) while the process runs: '/' returns a JSON snapshot, '/metrics' the Prometheus text format")
		obsRate   = flag.Uint64("httpobsevery", 0, "live snapshot refresh period in cycles for -httpobs (0 = a coarse default)")
		obsEvery  = flag.Uint64("obsevery", 1000, "timeline sample interval in cycles for -trace/-timeline")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a pprof allocation profile at exit to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dwsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "dwsim: cpuprofile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dwsim:", err)
				return
			}
			defer f.Close()
			// The allocs profile records cumulative allocations, which is
			// what the allocation-free event path is tuned against.
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "dwsim: memprofile:", err)
			}
		}()
	}

	k := report.Knobs{
		WPUs: *wpus, Width: *width, Warps: *warps, Slots: *slots, WST: *wst,
		L1KB: *l1kb, L1Assoc: *l1assoc, L2KB: *l2kb, L2Lat: *l2lat,
		Scheme: wpu.Scheme(*scheme), Scale: *scale,
		NoMemHints: *noHints,
	}
	switch *dist {
	case "block":
		k.Dist = sim.DistBlock
	case "interleave":
		k.Dist = sim.DistInterleave
	default:
		fmt.Fprintf(os.Stderr, "dwsim: unknown -dist %q (want block or interleave)\n", *dist)
		os.Exit(1)
	}

	names := []string{*benchName}
	if *benchName == "all" {
		names = names[:0]
		for _, s := range workloads.All() {
			names = append(names, s.Name)
		}
	}

	if *showDis {
		for _, name := range names {
			if err := disasm(name, k); err != nil {
				fmt.Fprintln(os.Stderr, "dwsim:", err)
				os.Exit(1)
			}
		}
		return
	}

	opts := []report.Option{report.WithJobs(*jobs)}
	if !*noCache {
		st, err := report.OpenStore(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dwsim: %v (continuing without the on-disk store)\n", err)
		} else {
			opts = append(opts, report.WithStore(st))
		}
	}
	s := report.NewSession(opts...)
	s.Verify = *verify

	var live *sim.Live
	var liveSys struct {
		mu  sync.Mutex
		sys *sim.System
	}
	if *httpObs != "" {
		live = sim.NewLive(*obsRate)
		s.OnSystem = func(sys *sim.System) {
			live.Attach(sys)
			liveSys.mu.Lock()
			liveSys.sys = sys
			liveSys.mu.Unlock()
		}
		ln, err := net.Listen("tcp", *httpObs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dwsim: -httpobs:", err)
			os.Exit(1)
		}
		defer ln.Close()
		go http.Serve(ln, live) //nolint:errcheck // serves until process exit
		fmt.Fprintf(os.Stderr, "dwsim: live metrics at http://%s/ (JSON) and http://%s/metrics (Prometheus)\n", ln.Addr(), ln.Addr())
	}

	traced := *traceOut != "" || *tlOut != ""
	if traced && len(names) != 1 {
		fmt.Fprintln(os.Stderr, "dwsim: -trace/-timeline need a single benchmark, not -bench all")
		os.Exit(1)
	}

	var docs []report.RunDoc
	if traced {
		tr := obs.New(*obsEvery)
		if live != nil {
			live.SetMeta(names[0], string(k.Scheme))
		}
		start := time.Now()
		r, err := s.RunTraced(names[0], k, tr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dwsim:", err)
			os.Exit(1)
		}
		wall := time.Since(start).Seconds()
		printRun(names[0], k, r)
		if *traceOut != "" {
			if err := writeTo(*traceOut, func(w io.Writer) error { return obs.WriteChromeTrace(w, tr) }); err != nil {
				fmt.Fprintln(os.Stderr, "dwsim: write trace:", err)
				os.Exit(1)
			}
		}
		if *tlOut != "" {
			if err := writeTo(*tlOut, func(w io.Writer) error { return report.TimelineCSV(w, tr) }); err != nil {
				fmt.Fprintln(os.Stderr, "dwsim: write timeline:", err)
				os.Exit(1)
			}
		}
		doc := report.NewRunDoc(r, k, "traced-live", wall)
		doc.Hists = &tr.Hists
		docs = append(docs, doc)
	} else {
		// Prefetch only pays off with several points; for a single bench run
		// it directly so the measured wall time is the simulation itself.
		if len(names) > 1 {
			var grid []report.Job
			for _, name := range names {
				grid = append(grid, report.Job{Bench: name, Knobs: k})
			}
			if err := s.Prefetch(grid); err != nil {
				fmt.Fprintln(os.Stderr, "dwsim:", err)
				os.Exit(1)
			}
		}
		for _, name := range names {
			if live != nil {
				live.SetMeta(name, string(k.Scheme))
			}
			start := time.Now()
			r, err := s.Run(name, k)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dwsim:", err)
				os.Exit(1)
			}
			printRun(name, k, r)
			docs = append(docs, report.NewRunDoc(r, k, s.Provenance(name, k), time.Since(start).Seconds()))
		}
	}

	if live != nil {
		liveSys.mu.Lock()
		if liveSys.sys != nil {
			live.Finish(liveSys.sys)
		}
		liveSys.mu.Unlock()
	}

	if *statsOut != "" {
		err := writeTo(*statsOut, func(w io.Writer) error { return report.WriteStatsDoc(w, docs, s.Stats()) })
		if err != nil {
			fmt.Fprintln(os.Stderr, "dwsim: write stats:", err)
			os.Exit(1)
		}
	}
}

// writeTo streams fn's output to path, with "-" meaning stdout.
func writeTo(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func schemeList() string {
	var names []string
	for _, s := range wpu.AllSchemes {
		names = append(names, string(s))
	}
	return strings.Join(names, ", ")
}

// disasm prints each kernel's disassembly; it builds the workload against
// a throwaway machine instead of simulating it.
func disasm(name string, k report.Knobs) error {
	spec, err := workloads.ByNameScaled(name, k.Scale)
	if err != nil {
		return err
	}
	sys, err := sim.New(k.Config())
	if err != nil {
		return err
	}
	inst, err := spec.Build(sys)
	if err != nil {
		return err
	}
	seen := map[string]bool{}
	for _, st := range inst.Steps() {
		if seen[st.Prog.Name] {
			continue
		}
		seen[st.Prog.Name] = true
		fmt.Printf("== %s ==\n%s\n", st.Prog.Name, st.Prog.Disassemble())
	}
	return nil
}

func printRun(name string, k report.Knobs, r report.Result) {
	st := r.Stats
	l1 := r.L1
	e := r.Energy
	fmt.Printf("%-8s %-24s cycles=%-9d busy=%.1f%% memstall=%.1f%% width=%.1f/%d\n",
		name, k.Scheme, r.Cycles,
		100*float64(st.BusyCycles)/float64(st.Cycles()),
		100*st.MemStallFraction(), st.MeanSIMDWidth(), k.Width)
	fmt.Printf("  instr=%d threadops=%d branches=%d (%.1f%% divergent) memacc=%d (%.1f%% divergent, %.1f%% with miss)\n",
		st.Issued, st.ThreadOps, st.Branches, pct(st.DivBranch, st.Branches),
		st.MemAccesses, pct(st.MemDivergent, st.MemAccesses), pct(st.MemWithMiss, st.MemAccesses))
	fmt.Printf("  L1: %.1f%% miss | subdivisions: branch=%d mem=%d revive=%d | merges: pc=%d scope=%d | peak splits=%d\n",
		100*l1.MissRate(), st.BranchSubdivisions, st.MemSubdivisions, st.Revivals,
		st.PCMerges, st.ScopeMerges, st.PeakSplits)
	if st.SlipEvents > 0 {
		fmt.Printf("  slip: events=%d merges=%d refused=%d\n", st.SlipEvents, st.SlipMerges, st.SlipRefused)
	}
	fmt.Printf("  energy=%.3f mJ (dynamic %.3f, leakage %.3f)\n", e.TotalmJ(), e.DynamicmJ(), e.LeakagemJ())
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
