// dwsreport regenerates every table and figure of the paper's evaluation
// in one run (see DESIGN.md's experiment index). Results are printed as
// text tables; EXPERIMENTS.md records a reference run next to the paper's
// numbers.
//
// Usage:
//
//	dwsreport                 # the full set (several minutes)
//	dwsreport -quick          # trimmed Figure 18 grid
//	dwsreport -only 13        # a single exhibit (t1, 1a, 1b, 1c, 7, 11, 13,
//	                          # 14, 15, 16, 17, 18, 19, 20, 21, headline,
//	                          # stalls, ablation, access, costmodel)
//	dwsreport -csv out/       # additionally write one CSV per exhibit
//	dwsreport -j 8            # simulate up to 8 points concurrently
//	dwsreport -nocache        # ignore the on-disk result store
//	dwsreport -stats run.json # machine-readable per-exhibit timing/cache stats
//
// Exhibit text goes to stdout and is byte-identical across -j values and
// cache states; per-exhibit timing and cache counters go to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/report"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "trim the Figure 18 grid")
		only     = flag.String("only", "", "run a single exhibit")
		csvDir   = flag.String("csv", "", "directory to write per-exhibit CSV files")
		jobs     = flag.Int("j", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		cacheDir = flag.String("cachedir", "", "on-disk result store directory (default ~/.cache/dwsim)")
		noCache  = flag.Bool("nocache", false, "disable the on-disk result store")
		statsOut = flag.String("stats", "", "write per-exhibit timing and cache stats JSON to this file ('-' = stdout)")
	)
	flag.Parse()

	opts := []report.Option{report.WithJobs(*jobs)}
	if !*noCache {
		st, err := report.OpenStore(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dwsreport: %v (continuing without the on-disk store)\n", err)
		} else {
			opts = append(opts, report.WithStore(st))
		}
	}
	s := report.NewSession(opts...)
	w := os.Stdout
	csvOut := func(fn func(dir string) error) error {
		if *csvDir == "" {
			return nil
		}
		return fn(*csvDir)
	}

	type exhibit struct {
		id  string
		fn  func() error
		doc string
	}
	exhibits := []exhibit{
		{"t1", func() error {
			rows, err := s.Table1(w)
			if err != nil {
				return err
			}
			return csvOut(func(d string) error { return report.Table1CSV(d, rows) })
		}, "Table 1"},
		{"1a", func() error {
			pts, err := s.Figure1a(w)
			if err != nil {
				return err
			}
			return csvOut(func(d string) error { return report.SweepCSV(d, "figure1a.csv", pts) })
		}, "Figure 1a"},
		{"1b", func() error {
			pts, err := s.Figure1b(w)
			if err != nil {
				return err
			}
			return csvOut(func(d string) error { return report.SweepCSV(d, "figure1b.csv", pts) })
		}, "Figure 1b"},
		{"1c", func() error {
			pts, err := s.Figure1c(w)
			if err != nil {
				return err
			}
			return csvOut(func(d string) error { return report.SweepCSV(d, "figure1c.csv", pts) })
		}, "Figure 1c"},
		{"7", func() error {
			out, err := s.Figure7(w)
			if err != nil {
				return err
			}
			return csvOut(func(d string) error { return report.SchemeCSV(d, "figure7.csv", out) })
		}, "Figure 7"},
		{"11", func() error {
			out, err := s.Figure11(w)
			if err != nil {
				return err
			}
			return csvOut(func(d string) error { return report.SchemeCSV(d, "figure11.csv", out) })
		}, "Figure 11"},
		{"13", func() error {
			out, err := s.Figure13(w)
			if err != nil {
				return err
			}
			return csvOut(func(d string) error { return report.SchemeCSV(d, "figure13.csv", out) })
		}, "Figure 13"},
		{"headline", func() error { return s.Headline(w) }, "§5.5 headline"},
		{"14", func() error {
			grids, err := s.Figure14(w)
			if err != nil {
				return err
			}
			return csvOut(func(d string) error { return report.Figure14CSV(d, grids) })
		}, "Figure 14"},
		{"15", func() error {
			pts, err := s.Figure15(w)
			if err != nil {
				return err
			}
			return csvOut(func(d string) error { return report.SensitivityCSV(d, "figure15.csv", pts) })
		}, "Figure 15"},
		{"16", func() error {
			pts, err := s.Figure16(w)
			if err != nil {
				return err
			}
			return csvOut(func(d string) error { return report.SensitivityCSV(d, "figure16.csv", pts) })
		}, "Figure 16"},
		{"17", func() error {
			pts, err := s.Figure17(w)
			if err != nil {
				return err
			}
			return csvOut(func(d string) error { return report.SensitivityCSV(d, "figure17.csv", pts) })
		}, "Figure 17"},
		{"18", func() error {
			pts, err := s.Figure18(w, *quick)
			if err != nil {
				return err
			}
			return csvOut(func(d string) error { return report.Figure18CSV(d, pts) })
		}, "Figure 18"},
		{"19", func() error {
			rows, err := s.Figure19(w)
			if err != nil {
				return err
			}
			return csvOut(func(d string) error { return report.EnergyCSV(d, rows) })
		}, "Figure 19"},
		{"20", func() error {
			pts, err := s.Figure20(w)
			if err != nil {
				return err
			}
			return csvOut(func(d string) error { return report.SensitivityCSV(d, "figure20.csv", pts) })
		}, "Figure 20"},
		{"21", func() error {
			pts, err := s.Figure21(w)
			if err != nil {
				return err
			}
			return csvOut(func(d string) error { return report.SensitivityCSV(d, "figure21.csv", pts) })
		}, "Figure 21"},
		{"stalls", func() error {
			rows, err := s.StallBreakdown(w)
			if err != nil {
				return err
			}
			return csvOut(func(d string) error { return report.StallBreakdownCSV(d, rows) })
		}, "Stall breakdown (§5.5)"},
		{"ablation", func() error {
			rows, err := s.Ablation(w)
			if err != nil {
				return err
			}
			return csvOut(func(d string) error { return report.AblationCSV(d, rows) })
		}, "Ablation (beyond paper)"},
		{"access", func() error {
			rows, err := s.MemAccessClasses(w)
			if err != nil {
				return err
			}
			return csvOut(func(d string) error { return report.MemAccessCSV(d, rows) })
		}, "Access classes (static analysis)"},
		{"costmodel", func() error {
			rows, err := s.CostModel(w)
			if err != nil {
				return err
			}
			return csvOut(func(d string) error { return report.CostModelCSV(d, rows) })
		}, "Cost model (static analysis)"},
	}
	// exhibitStat mirrors the stderr progress line as machine-readable JSON
	// for -stats; Seconds is wall-clock and therefore volatile.
	type exhibitStat struct {
		ID      string  `json:"id"`
		Title   string  `json:"title"`
		Seconds float64 `json:"seconds"`
		Sims    uint64  `json:"sims"`
		Disk    uint64  `json:"disk_hits"`
		Mem     uint64  `json:"mem_hits"`
	}
	var perExhibit []exhibitStat
	allStart := time.Now()
	for _, e := range exhibits {
		if *only != "" && e.id != *only {
			continue
		}
		start := time.Now()
		before := s.Stats()
		if err := e.fn(); err != nil {
			fmt.Fprintf(os.Stderr, "dwsreport: %s: %v\n", e.doc, err)
			os.Exit(1)
		}
		d := delta(before, s.Stats())
		secs := time.Since(start).Seconds()
		fmt.Fprintf(os.Stderr, "[%s in %.1fs: sims=%d disk-hits=%d mem-hits=%d]\n",
			e.doc, secs, d.Misses, d.DiskHits, d.MemHits)
		perExhibit = append(perExhibit, exhibitStat{
			ID: e.id, Title: e.doc, Seconds: secs,
			Sims: d.Misses, Disk: d.DiskHits, Mem: d.MemHits,
		})
		fmt.Fprintln(w)
	}
	t := s.Stats()
	totalSecs := time.Since(allStart).Seconds()
	fmt.Fprintf(os.Stderr, "[total %.1fs at -j %d: sims=%d disk-hits=%d mem-hits=%d]\n",
		totalSecs, s.Jobs(), t.Misses, t.DiskHits, t.MemHits)

	if *statsOut != "" {
		doc := struct {
			Schema   string            `json:"schema"`
			Jobs     int               `json:"jobs"`
			Seconds  float64           `json:"seconds"`
			Exhibits []exhibitStat     `json:"exhibits"`
			Cache    report.CacheStats `json:"session_cache"`
		}{"dwsreport-stats-v1", s.Jobs(), totalSecs, perExhibit, t}
		out := os.Stdout
		if *statsOut != "-" {
			f, err := os.Create(*statsOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dwsreport:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(os.Stderr, "dwsreport:", err)
			os.Exit(1)
		}
	}
}

func delta(before, after report.CacheStats) report.CacheStats {
	return report.CacheStats{
		MemHits:  after.MemHits - before.MemHits,
		DiskHits: after.DiskHits - before.DiskHits,
		Misses:   after.Misses - before.Misses,
	}
}
