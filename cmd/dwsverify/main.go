// dwsverify runs the static program verifier (internal/program/verify.go)
// over every kernel of the benchmark suite and prints the findings. It is
// the CI gate for program well-formedness: the build fails if any kernel
// has a finding, warnings included.
//
// Usage:
//
//	dwsverify                 # verify all eight benchmarks
//	dwsverify -bench Merge    # one benchmark
//	dwsverify -scale 4        # verify at a scaled input size
//	dwsverify -disasm         # also print each kernel's disassembly
//	dwsverify -divergence     # also print each kernel's divergence report
//	dwsverify -memaccess      # also print each kernel's memory-access report
//
// Exit status 1 when any kernel fails to build or has verifier findings.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	var (
		benchName = flag.String("bench", "all", "benchmark: FFT, Filter, HotSpot, LU, Merge, Short, KMeans, SVM, or 'all'")
		scale     = flag.Int("scale", 1, "input-size multiplier (power of two; see workloads.AllWithScale)")
		showDis   = flag.Bool("disasm", false, "print each kernel's disassembly with block and branch metadata")
		showDiv   = flag.Bool("divergence", false, "print each kernel's divergence-analysis report (branch and access classes)")
		showMem   = flag.Bool("memaccess", false, "print each kernel's memory-access report (access classes, transaction and bank-conflict bounds)")
		showCost  = flag.Bool("costmodel", false, "print each kernel's static cost model (trip counts, cycle bounds, benefit scores, scheme ranking)")
	)
	flag.Parse()

	specs := workloads.AllWithScale(*scale)
	if *benchName != "all" {
		spec, err := workloads.ByNameScaled(*benchName, *scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dwsverify: %v\n", err)
			os.Exit(1)
		}
		specs = []workloads.Spec{spec}
	}

	bad := 0
	kernels := 0
	for _, spec := range specs {
		progs, err := buildPrograms(spec)
		if err != nil {
			fmt.Printf("%-8s BUILD FAILED\n%v\n", spec.Name, err)
			bad++
			continue
		}
		names := make([]string, 0, len(progs))
		for name := range progs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			p := progs[name]
			kernels++
			findings := p.Verify()
			if len(findings) == 0 {
				fmt.Printf("%-8s %-16s ok  (%d insts, %d blocks, %d branches%s)\n",
					spec.Name, name, len(p.Code), len(p.Blocks), p.NumBranches(), regionSummary(p))
			} else {
				bad++
				fmt.Printf("%-8s %-16s %d finding(s):\n%s",
					spec.Name, name, len(findings), program.FormatFindings(findings))
			}
			if *showDis {
				fmt.Print(p.Disassemble())
			}
			if *showDiv {
				fmt.Print(p.DivergenceReport())
			}
			if *showMem {
				fmt.Print(p.MemAccessReport())
			}
			if *showCost {
				fmt.Print(p.CostModelReport())
			}
		}
	}
	if bad > 0 {
		fmt.Printf("dwsverify: FAIL (%d kernel(s)/benchmark(s) with findings)\n", bad)
		os.Exit(1)
	}
	fmt.Printf("dwsverify: ok (%d kernels verified clean)\n", kernels)
}

// buildPrograms instantiates the benchmark on a scratch machine and collects
// its distinct kernels. Kernels are built with MustVerify, so a regression
// surfaces as a panic; convert it to an error so every benchmark reports.
func buildPrograms(spec workloads.Spec) (progs map[string]*program.Program, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	sys, err := sim.New(sim.DefaultConfig())
	if err != nil {
		return nil, err
	}
	inst, err := spec.Build(sys)
	if err != nil {
		return nil, err
	}
	progs = make(map[string]*program.Program)
	for _, st := range inst.Steps() {
		progs[st.Prog.Name] = st.Prog
	}
	return progs, nil
}

func regionSummary(p *program.Program) string {
	regions := p.Regions()
	if len(regions) == 0 {
		return ""
	}
	return fmt.Sprintf(", %d regions", len(regions))
}
