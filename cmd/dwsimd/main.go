// dwsimd is the simulation-as-a-service daemon: a long-running HTTP
// server that accepts simulation and sweep jobs as validated JSON,
// deduplicates them through the singleflight report.Session, executes
// them on a bounded worker pool over the sharded on-disk result store,
// and streams observability events for traced runs as Server-Sent
// Events. See README "Running the server" for the endpoint reference.
//
// Usage:
//
//	dwsimd -addr :8091
//	dwsimd -addr :8091 -j 4 -cachemb 256 -shards 16
//
//	curl -s localhost:8091/healthz
//	curl -s -X POST localhost:8091/v1/jobs -d '{"schema_version":1,"bench":"Merge","knobs":{"scheme":"DWS.ReviveSplit"}}'
//	curl -s localhost:8091/v1/jobs/j001
//	curl -s localhost:8091/v1/results/<result_key>
//	curl -sN localhost:8091/v1/jobs/j002/stream        # traced job: SSE
//	curl -s localhost:8091/metrics                     # Prometheus text
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"repro/internal/report"
	"repro/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8091", "listen address")
		jobs        = flag.Int("j", 0, "max concurrently executing jobs (0 = GOMAXPROCS)")
		cacheDir    = flag.String("cachedir", "", "on-disk result store directory (default ~/.cache/dwsim)")
		noCache     = flag.Bool("nocache", false, "disable the on-disk result store")
		cacheMB     = flag.Int64("cachemb", 0, "LRU byte cap on the store in MiB (0 = unbounded)")
		shards      = flag.Int("shards", 0, "store shard count (0 = the default, 16)")
		streamEvery = flag.Uint64("streamevery", 0, "SSE publish cadence in simulated cycles for traced jobs (0 = a coarse default)")
		noVerify    = flag.Bool("noverify", false, "skip functional verification of results against the host reference")
	)
	flag.Parse()

	opts := []report.Option{report.WithJobs(*jobs)}
	var st *report.Store
	if !*noCache {
		var err error
		st, err = report.OpenStoreWith(*cacheDir, report.StoreOptions{
			MaxBytes: *cacheMB << 20,
			Shards:   *shards,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dwsimd: %v (continuing without the on-disk store)\n", err)
		} else {
			opts = append(opts, report.WithStore(st))
		}
	}
	session := report.NewSession(opts...)
	session.Verify = !*noVerify

	srv := serve.New(serve.Config{
		Session:     session,
		Store:       st,
		Workers:     *jobs,
		StreamEvery: *streamEvery,
	})
	srv.Start()
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dwsimd:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "dwsimd: serving on http://%s/ (POST /v1/jobs, GET /metrics; schema v%d)\n",
		ln.Addr(), serve.WireSchemaVersion)
	if err := http.Serve(ln, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "dwsimd:", err)
		os.Exit(1)
	}
}
