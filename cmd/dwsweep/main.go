// dwsweep runs a one-dimensional parameter sweep for a benchmark (or the
// whole suite) comparing two schemes, printing one row per sweep point.
//
// Usage:
//
//	dwsweep -param l2lat -values 10,30,100,300 -bench Filter
//	dwsweep -param width -values 1,2,4,8,16 -scheme Conv -alt ""
//	dwsweep -param l1kb -values 8,16,32,64,128 -bench all
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/report"
	"repro/internal/wpu"
)

func main() {
	var (
		param    = flag.String("param", "l2lat", "knob to sweep: width, warps, slots, wst, l1kb, l1assoc, l2kb, l2lat")
		values   = flag.String("values", "10,30,100,200,300", "comma-separated sweep values")
		bench    = flag.String("bench", "all", "benchmark name or 'all' (h-mean)")
		scheme   = flag.String("scheme", "Conv", "baseline scheme")
		alt      = flag.String("alt", "DWS.ReviveSplit", "comparison scheme ('' to disable)")
		jobs     = flag.Int("j", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		cacheDir = flag.String("cachedir", "", "on-disk result store directory (default ~/.cache/dwsim)")
		noCache  = flag.Bool("nocache", false, "disable the on-disk result store")
		statsOut = flag.String("stats", "", "write the sweep rows and cache stats as JSON to this file ('-' = stdout)")
	)
	flag.Parse()

	var vals []int
	for _, v := range strings.Split(*values, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil {
			fmt.Fprintf(os.Stderr, "dwsweep: bad value %q\n", v)
			os.Exit(1)
		}
		vals = append(vals, n)
	}

	apply := func(k *report.Knobs, v int) {
		switch *param {
		case "width":
			k.Width = v
		case "warps":
			k.Warps = v
		case "slots":
			k.Slots = v
		case "wst":
			k.WST = v
		case "l1kb":
			k.L1KB = v
		case "l1assoc":
			k.L1Assoc = v
		case "l2kb":
			k.L2KB = v
		case "l2lat":
			k.L2Lat = v
		default:
			fmt.Fprintf(os.Stderr, "dwsweep: unknown param %q\n", *param)
			os.Exit(1)
		}
	}

	benches := []string{*bench}
	if *bench == "all" {
		benches = report.BenchNames()
	}

	opts := []report.Option{report.WithJobs(*jobs)}
	if !*noCache {
		st, err := report.OpenStore(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dwsweep: %v (continuing without the on-disk store)\n", err)
		} else {
			opts = append(opts, report.WithStore(st))
		}
	}
	s := report.NewSession(opts...)

	// Submit the whole sweep grid to the worker pool up front; the print
	// loop below then renders from the warm cache in deterministic order.
	var grid []report.Job
	for _, v := range vals {
		kb := report.DefaultKnobs(wpu.Scheme(*scheme))
		apply(&kb, v)
		for _, b := range benches {
			grid = append(grid, report.Job{Bench: b, Knobs: kb})
			if *alt != "" {
				ka := report.DefaultKnobs(wpu.Scheme(*alt))
				apply(&ka, v)
				grid = append(grid, report.Job{Bench: b, Knobs: ka})
			}
		}
	}
	if err := s.Prefetch(grid); err != nil {
		fmt.Fprintln(os.Stderr, "dwsweep:", err)
		os.Exit(1)
	}

	// sweepRow is the machine-readable form of one printed line.
	type sweepRow struct {
		Value      int     `json:"value"`
		BaseCycles float64 `json:"base_cycles"`
		AltCycles  float64 `json:"alt_cycles,omitempty"`
		Speedup    float64 `json:"speedup,omitempty"`
	}
	var rows []sweepRow

	fmt.Printf("%-10s  %-12s", *param, *scheme+" cyc")
	if *alt != "" {
		fmt.Printf("  %-12s  %s", *alt+" cyc", "speedup")
	}
	fmt.Println()
	for _, v := range vals {
		kb := report.DefaultKnobs(wpu.Scheme(*scheme))
		apply(&kb, v)
		var baseCycles, altCycles, speedups []float64
		for _, b := range benches {
			rb, err := s.Run(b, kb)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dwsweep:", err)
				os.Exit(1)
			}
			baseCycles = append(baseCycles, float64(rb.Cycles))
			if *alt != "" {
				ka := report.DefaultKnobs(wpu.Scheme(*alt))
				apply(&ka, v)
				ra, err := s.Run(b, ka)
				if err != nil {
					fmt.Fprintln(os.Stderr, "dwsweep:", err)
					os.Exit(1)
				}
				altCycles = append(altCycles, float64(ra.Cycles))
				speedups = append(speedups, float64(rb.Cycles)/float64(ra.Cycles))
			}
		}
		row := sweepRow{Value: v, BaseCycles: mean(baseCycles)}
		fmt.Printf("%-10d  %-12.0f", v, row.BaseCycles)
		if *alt != "" {
			row.AltCycles = mean(altCycles)
			row.Speedup = report.HarmonicMean(speedups)
			fmt.Printf("  %-12.0f  %.3f", row.AltCycles, row.Speedup)
		}
		fmt.Println()
		rows = append(rows, row)
	}

	if *statsOut != "" {
		doc := struct {
			Schema string            `json:"schema"`
			Param  string            `json:"param"`
			Bench  string            `json:"bench"`
			Base   string            `json:"base_scheme"`
			Alt    string            `json:"alt_scheme,omitempty"`
			Rows   []sweepRow        `json:"rows"`
			Cache  report.CacheStats `json:"session_cache"`
		}{"dwsweep-stats-v1", *param, *bench, *scheme, *alt, rows, s.Stats()}
		out := os.Stdout
		if *statsOut != "-" {
			f, err := os.Create(*statsOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dwsweep:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(os.Stderr, "dwsweep:", err)
			os.Exit(1)
		}
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
