// Divergence: author a kernel with both branch and memory divergence using
// the program builder, inspect what the "compiler" layer derives
// (post-dominators, subdividable branches), and watch the warp-split table
// dynamics under DWS — subdivisions, re-convergence events, peak
// scheduling entities.
//
//	go run ./examples/divergence
package main

import (
	"fmt"
	"log"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/wpu"
)

// kernel walks a linked structure: each thread chases `hops` pointers
// through a table, branching on the low bit of each value it finds.
// Pointer chasing gives per-thread addresses nothing can coalesce —
// memory divergence on every load — and the bit test diverges half the
// warp. ABI: R4 = &table, R5 = &out, R6 = hops, R7 = table mask.
func kernel() *program.Program {
	b := program.NewBuilder("pointer-chase")
	b.Muli(8, 1, 131) // cursor = tid*131: threads scatter across blocks
	b.Movi(9, 0)      // acc
	b.Movi(10, 0)     // hop
	b.Label("loop")
	b.Slt(11, 10, 6)
	b.Beqz(11, "done")
	b.And(12, 8, 7)
	b.Shli(12, 12, 3)
	b.Add(13, 4, 12)
	b.Ld(8, 13, 0) // cursor = table[cursor & mask]: divergent gather
	b.Andi(14, 8, 1)
	b.Bnez(14, "odd") // divergent branch on the fetched value
	b.Addi(9, 9, 1)
	b.Jmp("next")
	b.Label("odd")
	b.Add(9, 9, 8)
	b.Label("next")
	b.Addi(10, 10, 1)
	b.Jmp("loop")
	b.Label("done")
	b.Shli(15, 1, 3)
	b.Add(16, 5, 15)
	b.St(9, 16, 0)
	b.Halt()
	return b.MustBuild()
}

func main() {
	p := kernel()
	fmt.Println("What the compiler layer derived (ipdom = immediate post-dominator):")
	fmt.Println(p.Disassemble())

	const (
		tableWords = 8 * 1024 // 64 KB
		hops       = 64
	)
	for _, scheme := range []wpu.Scheme{wpu.SchemeConv, wpu.SchemeBranchOnly, wpu.SchemeRevive} {
		cfg := sim.DefaultConfig()
		cfg.WPU = scheme.Apply(cfg.WPU)
		sys, err := sim.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		m := sys.Memory()
		table := m.AllocWords(tableWords)
		out := m.AllocWords(sys.ThreadCapacity())
		for i := 0; i < tableWords; i++ {
			// Block-local permutation: each chase stays inside a 1024-entry
			// (8 KB) block, so loads mix hits and misses instead of
			// saturating the crossbar with a full-random walk.
			next := i&^1023 | (i*13+7)&1023
			m.Write(table+uint64(i)*8, int64(next))
		}
		threads := sim.Threads(sys.ThreadCapacity(), func(tid int, r *isa.RegFile) {
			r.Set(4, int64(table))
			r.Set(5, int64(out))
			r.Set(6, hops)
			r.Set(7, tableWords-1)
		})
		cycles, err := sys.RunKernel(p, threads)
		if err != nil {
			log.Fatal(err)
		}
		st := sys.TotalStats()
		fmt.Printf("%-16s %8d cycles | div branches %4.1f%% | div mem %4.1f%% | width %4.1f\n",
			scheme, cycles,
			pct(st.DivBranch, st.Branches), pct(st.MemDivergent, st.MemAccesses),
			st.MeanSIMDWidth())
		fmt.Printf("                 WST dynamics: %d branch + %d mem subdivisions, %d revivals,\n",
			st.BranchSubdivisions, st.MemSubdivisions, st.Revivals)
		fmt.Printf("                 %d PC merges, %d wait merges, %d scope merges, peak %d entities\n",
			st.PCMerges, st.WaitMerges, st.ScopeMerges, st.PeakSplits)
	}
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
