// Policystudy: run one benchmark from the paper's suite under every named
// scheme — Conv, the DWS subdivision/re-convergence combinations, and the
// adaptive-slip baselines — and print a side-by-side comparison, the
// programmatic equivalent of one column of the paper's Figure 13.
//
//	go run ./examples/policystudy            # KMeans
//	go run ./examples/policystudy Filter     # any suite benchmark
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/energy"
	"repro/internal/sim"
	"repro/internal/workloads"
	"repro/internal/wpu"
)

func main() {
	bench := "KMeans"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	spec, err := workloads.ByName(bench)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %s\n\n", spec.Name, spec.Desc)
	fmt.Printf("%-24s %10s %8s %9s %7s %12s %10s\n",
		"scheme", "cycles", "speedup", "memstall", "width", "subdivisions", "energy(mJ)")

	var convCycles uint64
	for _, scheme := range wpu.AllSchemes {
		cfg := sim.DefaultConfig()
		cfg.WPU = scheme.Apply(cfg.WPU)
		sys, err := sim.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		inst, err := spec.Build(sys)
		if err != nil {
			log.Fatal(err)
		}
		if err := inst.Run(sys); err != nil {
			log.Fatal(err)
		}
		if err := inst.Verify(); err != nil {
			log.Fatalf("%s mis-executed under %s: %v", bench, scheme, err)
		}
		st := sys.TotalStats()
		if scheme == wpu.SchemeConv {
			convCycles = sys.Cycles()
		}
		fmt.Printf("%-24s %10d %7.2fx %8.1f%% %7.1f %12d %10.3f\n",
			scheme, sys.Cycles(),
			float64(convCycles)/float64(sys.Cycles()),
			100*st.MemStallFraction(), st.MeanSIMDWidth(),
			st.BranchSubdivisions+st.MemSubdivisions,
			energy.Estimate(sys).TotalmJ())
	}
}
