// Cachestudy: the paper's §6 sensitivity analysis in miniature — sweep the
// D-cache size and associativity for one benchmark and watch how the DWS
// advantage shrinks as the cache grows ("employing DWS generates similar
// effects as doubling the D-cache size", §6.3).
//
//	go run ./examples/cachestudy            # KMeans
//	go run ./examples/cachestudy Short
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/report"
	"repro/internal/wpu"
)

func main() {
	bench := "KMeans"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	s := report.NewSession()

	fmt.Printf("%s: DWS.ReviveSplit speedup over Conv across D-cache configurations\n\n", bench)
	fmt.Printf("%-10s", "size\\assoc")
	assocs := []int{4, 8, 0}
	for _, a := range assocs {
		if a == 0 {
			fmt.Printf(" %10s", "full")
		} else {
			fmt.Printf(" %9d-way", a)
		}
	}
	fmt.Println()

	for _, kb := range []int{8, 16, 32, 64, 128} {
		fmt.Printf("%6d KB ", kb)
		for _, assoc := range assocs {
			kc := report.DefaultKnobs(wpu.SchemeConv)
			kc.L1KB, kc.L1Assoc = kb, assoc
			kd := report.DefaultKnobs(wpu.SchemeRevive)
			kd.L1KB, kd.L1Assoc = kb, assoc
			rc, err := s.Run(bench, kc)
			if err != nil {
				log.Fatal(err)
			}
			rd, err := s.Run(bench, kd)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %9.2fx", float64(rc.Cycles)/float64(rd.Cycles))
		}
		fmt.Println()
	}
	fmt.Println("\n(compare against Figure 17's suite-wide sweep: go run ./cmd/dwsreport -only 17)")
}
