// Quickstart: build a tiny data-parallel kernel with the program builder,
// run it on the simulated machine under the conventional policy and under
// dynamic warp subdivision, verify the results, and compare cycle counts.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/wpu"
)

// kernel computes out[i] = f(in[(i*9973) mod n]) — a gather, the access
// pattern that motivates the paper: neighbouring threads pull from
// scattered lines, so within one SIMD load some threads hit the D-cache
// and others miss (memory-latency divergence). f triples odd values and
// halves even ones — a data-dependent, divergent branch.
// ABI: R1 = thread id, R2 = thread count (set by the launcher),
// R4 = &in, R5 = &out, R6 = n.
func kernel() *program.Program {
	b := program.NewBuilder("quickstart")
	b.Mov(8, 1) // i = tid
	b.Label("loop")
	b.Slt(9, 8, 6)
	b.Beqz(9, "done")
	// Gather index: a permutation within 64-element blocks, so one SIMD
	// load touches a handful of lines with mixed residency (divergent)
	// without degenerating into a bandwidth-bound full-random gather.
	b.Andi(16, 8, ^int64(63))
	b.Muli(17, 8, 13)
	b.Andi(17, 17, 63)
	b.Or(16, 16, 17)
	b.Shli(10, 16, 3)
	b.Add(11, 4, 10)
	b.Ld(12, 11, 0) // in[gather]
	b.Shli(10, 8, 3)
	b.Andi(13, 12, 1)
	b.Bnez(13, "odd") // data-dependent: this branch diverges
	b.Shri(14, 12, 1) // even: halve
	b.Jmp("store")
	b.Label("odd")
	b.Muli(14, 12, 3) // odd: triple
	b.Label("store")
	// A short polynomial on the result models the arithmetic a real kernel
	// does per element (and keeps the example latency- rather than
	// crossbar-bound).
	b.Mov(17, 14)
	for k := 0; k < 6; k++ {
		b.Muli(17, 17, 3)
		b.Addi(17, 17, 1)
	}
	b.Andi(17, 17, 255)
	b.Add(14, 14, 17)
	b.Add(15, 5, 10)
	b.St(14, 15, 0)
	b.Add(8, 8, 2) // i += nthreads
	b.Jmp("loop")
	b.Label("done")
	b.Halt()
	return b.MustBuild()
}

func run(scheme wpu.Scheme, n int) (cycles uint64, err error) {
	cfg := sim.DefaultConfig() // Table 3: 4 WPUs x 4 warps x 16 lanes
	cfg.WPU = scheme.Apply(cfg.WPU)
	sys, err := sim.New(cfg)
	if err != nil {
		return 0, err
	}

	m := sys.Memory()
	in := m.AllocWords(n)
	out := m.AllocWords(n)
	for i := 0; i < n; i++ {
		m.Write(in+uint64(i)*8, int64(i*7%1000))
	}

	threads := sim.Threads(sys.ThreadCapacity(), func(tid int, r *isa.RegFile) {
		r.Set(4, int64(in))
		r.Set(5, int64(out))
		r.Set(6, int64(n))
	})
	cycles, err = sys.RunKernel(kernel(), threads)
	if err != nil {
		return 0, err
	}

	for i := 0; i < n; i++ {
		idx := i&^63 | (i*13)&63
		v := int64(idx * 7 % 1000)
		want := v >> 1
		if v%2 == 1 {
			want = v * 3
		}
		poly := want
		for k := 0; k < 6; k++ {
			poly = poly*3 + 1
		}
		want += poly & 255
		if got := m.Read(out + uint64(i)*8); got != want {
			return 0, fmt.Errorf("out[%d] = %d, want %d", i, got, want)
		}
	}

	st := sys.TotalStats()
	fmt.Printf("%-18s %8d cycles  busy %4.1f%%  mem-stall %4.1f%%  mean width %4.1f  subdivisions %d\n",
		scheme, cycles,
		100*float64(st.BusyCycles)/float64(st.Cycles()),
		100*st.MemStallFraction(), st.MeanSIMDWidth(),
		st.BranchSubdivisions+st.MemSubdivisions)
	return cycles, nil
}

func main() {
	const n = 16 * 1024 // 128 KB: four times an L1 D-cache, so gathers mix hits and misses
	conv, err := run(wpu.SchemeConv, n)
	if err != nil {
		log.Fatal(err)
	}
	dws, err := run(wpu.SchemeRevive, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDWS.ReviveSplit speedup over Conv: %.2fx\n", float64(conv)/float64(dws))
}
