package repro

import (
	"io"
	"testing"

	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/wpu"
)

// The benchmarks below regenerate the paper's tables and figures — one
// bench target per exhibit, as indexed in DESIGN.md. Each reports the
// exhibit's headline number as a custom metric so `go test -bench=.`
// doubles as the reproduction run. They are simulations, not
// micro-benchmarks: prefer -benchtime=1x.

func benchSession(b *testing.B) *report.Session {
	b.Helper()
	return report.NewSession()
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b)
		rows, err := s.Table1(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		var divAcc float64
		for _, r := range rows {
			divAcc += r.DivergentAccessPct
		}
		b.ReportMetric(100*divAcc/float64(len(rows)), "mean-div-access-%")
	}
}

func BenchmarkFigure1a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b)
		pts, err := s.Figure1a(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*pts[len(pts)-1].MemStallFrac, "w16-memstall-%")
	}
}

func BenchmarkFigure1b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b)
		pts, err := s.Figure1b(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*pts[len(pts)-1].MemStallFrac, "fullyassoc-memstall-%")
	}
}

func BenchmarkFigure1c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b)
		pts, err := s.Figure1c(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[len(pts)-1].NormTime, "16warps-normtime")
	}
}

func reportSchemeHMean(b *testing.B, out []report.SchemeSpeedups, scheme wpu.Scheme, metric string) {
	b.Helper()
	for _, o := range out {
		if o.Scheme == scheme {
			b.ReportMetric(o.HMean, metric)
			return
		}
	}
	b.Fatalf("scheme %s missing from results", scheme)
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b)
		out, err := s.Figure7(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		reportSchemeHMean(b, out, wpu.SchemeBranchOnly, "pc-based-hmean")
	}
}

func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b)
		out, err := s.Figure11(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		reportSchemeHMean(b, out, wpu.SchemeReviveBL, "revive-bl-hmean")
	}
}

func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b)
		out, err := s.Figure13(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		reportSchemeHMean(b, out, wpu.SchemeRevive, "dws-revive-hmean")
	}
}

func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b)
		grids, err := s.Figure14(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(grids)), "benchmarks")
	}
}

func lastSpeedup(b *testing.B, pts []report.SensitivityPoint, err error, metric string) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(pts[len(pts)-1].Speedup, metric)
}

func BenchmarkFigure15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b)
		pts, err := s.Figure15(io.Discard)
		lastSpeedup(b, pts, err, "fullyassoc-speedup")
	}
}

func BenchmarkFigure16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b)
		pts, err := s.Figure16(io.Discard)
		lastSpeedup(b, pts, err, "l2lat300-speedup")
	}
}

func BenchmarkFigure17(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b)
		pts, err := s.Figure17(io.Discard)
		lastSpeedup(b, pts, err, "l1-128kb-speedup")
	}
}

func BenchmarkFigure18(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b)
		pts, err := s.Figure18(io.Discard, true /* quick grid */)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(pts)), "grid-points")
	}
}

func BenchmarkFigure19(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b)
		rows, err := s.Figure19(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		var dws float64
		for _, r := range rows {
			dws += r.DWS
		}
		b.ReportMetric(100*dws/float64(len(rows)), "dws-energy-%")
	}
}

func BenchmarkFigure20(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b)
		pts, err := s.Figure20(io.Discard)
		lastSpeedup(b, pts, err, "32slots-speedup")
	}
}

func BenchmarkFigure21(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b)
		pts, err := s.Figure21(io.Discard)
		lastSpeedup(b, pts, err, "wst64-speedup")
	}
}

// BenchmarkFullReport times the complete exhibit set (the whole dwsreport
// run, quick Figure 18 grid) through the parallel executor — the baseline
// perf snapshot future PRs compare against (see EXPERIMENTS.md). Run as:
//
//	go test -bench FullReport -benchtime 1x -run '^$' .
//
// The j1 variant pins one worker; the default variant uses GOMAXPROCS
// workers, so the ratio is the executor's wall-clock speedup on this host.
func BenchmarkFullReport(b *testing.B) {
	for _, bc := range []struct {
		name string
		opts []report.Option
	}{
		{"j1", []report.Option{report.WithJobs(1)}},
		{"jmax", nil},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := report.NewSession(bc.opts...)
				if err := runFullReport(s); err != nil {
					b.Fatal(err)
				}
				st := s.Stats()
				b.ReportMetric(float64(st.Misses), "sims")
				b.ReportMetric(float64(st.Misses)/b.Elapsed().Seconds(), "sims/s")
			}
		})
	}
}

// BenchmarkFullReportShort is the end-to-end half of the `make
// bench-check` CI gate (cmd/dwsbench): Table 1 regenerated from a cold
// in-memory session — eight full simulations touching every kernel — so
// wall-time regressions outside the event engine's micro-benchmarks
// (scheduler, caches, functional execution) are caught as well.
func BenchmarkFullReportShort(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b)
		if _, err := s.Table1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// runFullReport regenerates every exhibit into io.Discard.
func runFullReport(s *report.Session) error {
	w := io.Discard
	steps := []func() error{
		func() error { _, err := s.Table1(w); return err },
		func() error { _, err := s.Figure1a(w); return err },
		func() error { _, err := s.Figure1b(w); return err },
		func() error { _, err := s.Figure1c(w); return err },
		func() error { _, err := s.Figure7(w); return err },
		func() error { _, err := s.Figure11(w); return err },
		func() error { _, err := s.Figure13(w); return err },
		func() error { return s.Headline(w) },
		func() error { _, err := s.Figure14(w); return err },
		func() error { _, err := s.Figure15(w); return err },
		func() error { _, err := s.Figure16(w); return err },
		func() error { _, err := s.Figure17(w); return err },
		func() error { _, err := s.Figure18(w, true); return err },
		func() error { _, err := s.Figure19(w); return err },
		func() error { _, err := s.Figure20(w); return err },
		func() error { _, err := s.Figure21(w); return err },
		func() error { _, err := s.StallBreakdown(w); return err },
		func() error { _, err := s.Ablation(w); return err },
	}
	for _, f := range steps {
		if err := f(); err != nil {
			return err
		}
	}
	return nil
}

// BenchmarkObsOverhead measures the cost of the internal/obs hooks on a
// KMeans run (the heaviest single benchmark): "off" is the production
// path (nil sink — every emission site reduces to one nil check), "on"
// attaches a full event trace plus timeline sampler. The acceptance bar
// is that "off" stays within 2% of the pre-instrumentation baseline
// recorded in EXPERIMENTS.md; timing is asserted there, not here, because
// wall-clock asserts in tests are flaky. Run as:
//
//	go test -bench ObsOverhead -benchtime 20x -run '^$' .
func BenchmarkObsOverhead(b *testing.B) {
	k := report.DefaultKnobs(wpu.SchemeRevive)
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := report.NewSession()
			if _, err := s.Run("KMeans", k); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		var events int
		for i := 0; i < b.N; i++ {
			s := report.NewSession()
			tr := obs.New(1000)
			if _, err := s.RunTraced("KMeans", k, tr); err != nil {
				b.Fatal(err)
			}
			events = len(tr.Events)
		}
		b.ReportMetric(float64(events), "events")
	})
}

// BenchmarkSimulatorThroughput measures raw simulation speed (simulated
// cycles per wall-second) on the default configuration — useful when
// tuning the simulator itself rather than reproducing exhibits.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var cycles uint64
	for i := 0; i < b.N; i++ {
		s := report.NewSession()
		r, err := s.Run("Filter", report.DefaultKnobs(wpu.SchemeRevive))
		if err != nil {
			b.Fatal(err)
		}
		cycles += r.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BenchmarkAblation regenerates the beyond-paper ablation study (the
// design choices DESIGN.md documents: wait-merge, least-progressed-first
// scheduling, lazy branch gating, and the §8 predictive extension).
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b)
		rows, err := s.Ablation(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].HMean, "revive-hmean")
		b.ReportMetric(rows[len(rows)-1].HMean, "predictive-hmean")
	}
}
